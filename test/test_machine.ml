(* Tests for Mdsp_machine: interpolation-table format, HTIS functional model
   (accuracy + bit-level determinism), configuration, performance model. *)

open Mdsp_util
open Mdsp_machine
open Testsupport

(* --- Interp_table --- *)

let linear_table ~quantize =
  (* Table representing e(r2) = r2, f(r2) = 2 r2 exactly (cubics suffice). *)
  let n = 4 in
  let r_min = 1. and r_cut = 3. in
  let s0 = r_min *. r_min and s1 = r_cut *. r_cut in
  let width = (s1 -. s0) /. float_of_int n in
  let e_coeffs =
    Array.init n (fun i ->
        let base = s0 +. (float_of_int i *. width) in
        [| base; 1.; 0.; 0. |])
  in
  let f_coeffs =
    Array.init n (fun i ->
        let base = s0 +. (float_of_int i *. width) in
        [| 2. *. base; 2.; 0.; 0. |])
  in
  Interp_table.make ~r_min ~r_cut ~n ~quantize ~energy_coeffs:e_coeffs
    ~force_coeffs:f_coeffs ()

let test_interp_table_exact_polynomial () =
  let t = linear_table ~quantize:false in
  List.iter
    (fun r2 ->
      let e, f = Interp_table.eval t r2 in
      check_close ~rel:1e-12 "energy" r2 e;
      check_close ~rel:1e-12 "force" (2. *. r2) f)
    [ 1.0; 2.5; 5.3; 8.9 ]

let test_interp_table_cutoff_and_clamp () =
  let t = linear_table ~quantize:false in
  let e, f = Interp_table.eval t 9.5 in
  check_float ~eps:0. "zero beyond cutoff (e)" 0. e;
  check_float ~eps:0. "zero beyond cutoff (f)" 0. f;
  (* Below r_min^2: clamped to the first knot. *)
  let e_low, _ = Interp_table.eval t 0.1 in
  check_close ~rel:1e-12 "clamped at r_min^2" 1. e_low

let test_interp_table_quantization_error_bounded () =
  let t = linear_table ~quantize:true in
  List.iter
    (fun r2 ->
      let e, _ = Interp_table.eval t r2 in
      (* Block quantization with 24 fractional bits: relative error per
         coefficient below 2^-24 * (block scale / coeff). *)
      check_close ~rel:1e-5 "quantized close" r2 e)
    [ 1.0; 2.5; 5.3 ]

let test_interp_table_validation () =
  Alcotest.check_raises "bad n"
    (Invalid_argument "Interp_table.make: n must be positive") (fun () ->
      ignore
        (Interp_table.make ~r_min:1. ~r_cut:2. ~n:0 ~quantize:false
           ~energy_coeffs:[||] ~force_coeffs:[||] ()));
  Alcotest.check_raises "bad range"
    (Invalid_argument "Interp_table.make: need 0 <= r_min < r_cut") (fun () ->
      ignore
        (Interp_table.make ~r_min:3. ~r_cut:2. ~n:1 ~quantize:false
           ~energy_coeffs:[| [| 0.; 0.; 0.; 0. |] |]
           ~force_coeffs:[| [| 0.; 0.; 0.; 0. |] |] ()))

let test_interp_table_sram () =
  let t = linear_table ~quantize:true in
  check_true "sram scales with n" (Interp_table.sram_bytes t > 0)

(* --- Config --- *)

let test_config_throughputs () =
  let cfg = Config.anton_like () in
  Alcotest.(check int) "512 nodes" 512 (Config.node_count cfg);
  (* 512 * 32 pipelines at 0.8 GHz. *)
  check_close ~rel:1e-9 "pair throughput" (512. *. 32. *. 0.8e9)
    (Config.pair_throughput cfg);
  check_true "flex throughput positive" (Config.flex_throughput cfg > 0.);
  Alcotest.(check int) "torus diameter" 12 (Config.max_hops cfg)

(* --- Htis over real tables --- *)

let lj_machine_setup n =
  let sys = Mdsp_workload.Workloads.lj_fluid ~n () in
  let cutoff = 8.0 in
  let ts =
    Mdsp_core.Table.table_set_of_topology sys.Mdsp_workload.Workloads.topo
      ~cutoff ~elec:Mdsp_ff.Pair_interactions.No_coulomb ~n:2048 ()
  in
  let topo = sys.Mdsp_workload.Workloads.topo in
  let types =
    Array.map
      (fun (a : Mdsp_ff.Topology.atom) -> a.Mdsp_ff.Topology.type_id)
      topo.Mdsp_ff.Topology.atoms
  in
  let charges = Mdsp_ff.Topology.charges topo in
  (sys, ts, types, charges, cutoff)

let test_htis_matches_reference () =
  let sys, ts, types, charges, cutoff = lj_machine_setup 150 in
  let topo = sys.Mdsp_workload.Workloads.topo in
  let box = sys.Mdsp_workload.Workloads.box in
  let pos = sys.Mdsp_workload.Workloads.positions in
  let mach_ev = Htis.evaluator ts ~types ~charges ~cutoff in
  let ref_ev =
    Mdsp_ff.Pair_interactions.of_topology topo ~cutoff
      ~trunc:Mdsp_ff.Nonbonded.Shift ~elec:Mdsp_ff.Pair_interactions.No_coulomb
  in
  let r_ref = Mdsp_baseline.Reference.compute topo box pos ~evaluator:ref_ev in
  let r_mach = Mdsp_baseline.Reference.compute topo box pos ~evaluator:mach_ev in
  let err =
    Mdsp_baseline.Reference.max_force_error
      r_ref.Mdsp_baseline.Reference.forces r_mach.Mdsp_baseline.Reference.forces
  in
  check_true (Printf.sprintf "force error %.2e < 1e-5" err) (err < 1e-5);
  check_close ~rel:1e-5 "pair energy"
    r_ref.Mdsp_baseline.Reference.pair_energy
    r_mach.Mdsp_baseline.Reference.pair_energy

let test_htis_determinism_under_permutation () =
  let sys, ts, types, charges, cutoff = lj_machine_setup 120 in
  let box = sys.Mdsp_workload.Workloads.box in
  let pos = sys.Mdsp_workload.Workloads.positions in
  let nlist = Mdsp_space.Neighbor_list.create ~cutoff ~skin:1. box pos in
  let r0 = Htis.compute_forces ts ~types ~charges ~cutoff box nlist pos in
  Alcotest.(check int) "no silent saturation" 0 r0.Htis.saturations;
  let np = Mdsp_space.Neighbor_list.length nlist in
  let rng = Rng.create 81 in
  for _ = 1 to 5 do
    let perm = Array.init np Fun.id in
    Rng.shuffle rng perm;
    let r =
      Htis.compute_forces ~perm ts ~types ~charges ~cutoff box nlist pos
    in
    check_true "energy bitwise equal" (r.Htis.energy = r0.Htis.energy);
    Alcotest.(check int) "no silent saturation" 0 r.Htis.saturations;
    Array.iteri
      (fun i v ->
        if v <> r0.Htis.forces.(i) then
          Alcotest.failf "force %d differs under permutation" i)
      r.Htis.forces
  done

let test_htis_float_accumulation_is_order_dependent () =
  (* Sanity check on the premise: plain float accumulation differs under
     reordering, which is exactly why the machine uses fixed point. *)
  let rng = Rng.create 82 in
  let xs = Array.init 1000 (fun _ -> Rng.uniform_in rng (-1e6) 1e6) in
  let s1 = Array.fold_left ( +. ) 0. xs in
  let rev = Array.copy xs in
  Rng.shuffle rng rev;
  let s2 = Array.fold_left ( +. ) 0. rev in
  check_true "float sums differ under reorder" (s1 <> s2)

let test_htis_cycles () =
  let cfg = Config.anton_like () in
  check_close ~rel:1e-12 "pairs over pipelines" (1000. /. 32.)
    (Htis.cycles cfg ~pairs:1000)

(* --- Perf model --- *)

let workload n =
  Perf.plain_workload ~n_atoms:n ~density:0.1 ~cutoff:9.0 ~dt_fs:2.5

let test_perf_monotone_in_atoms () =
  let cfg = Config.anton_like () in
  let t n = (Perf.step_time cfg (workload n)).Perf.step_s in
  check_true "more atoms, longer steps" (t 100_000 > t 10_000);
  check_true "ns/day decreases"
    (Perf.ns_per_day cfg (workload 100_000)
    < Perf.ns_per_day cfg (workload 10_000))

let test_perf_strong_scaling_helps_then_saturates () =
  let w = workload 25_000 in
  let t nodes =
    (Perf.step_time (Config.anton_like ~nodes ()) w).Perf.step_s
  in
  let t64 = t (4, 4, 4) and t512 = t (8, 8, 8) in
  check_true "512 nodes faster than 64" (t512 < t64);
  (* Speedup is sub-linear: latency terms keep it below 8x. *)
  check_true "sub-linear speedup" (t64 /. t512 < 8.)

let test_perf_fft_adds_time () =
  let cfg = Config.anton_like () in
  let w = workload 25_000 in
  let w_fft = { w with Perf.fft_grid = Some (64, 64, 64) } in
  check_true "FFT costs time"
    ((Perf.step_time cfg w_fft).Perf.step_s > (Perf.step_time cfg w).Perf.step_s)

let test_perf_pair_passes_multiplier () =
  let cfg = Config.anton_like () in
  let w = workload 200_000 in
  (* Large system: HTIS-bound, so doubling pair passes nearly doubles the
     pipeline time. *)
  let w2 = { w with Perf.pair_passes = 2.0 } in
  let b1 = Perf.step_time cfg w and b2 = Perf.step_time cfg w2 in
  check_close ~rel:1e-9 "htis time doubles" (2. *. b1.Perf.htis_s) b2.Perf.htis_s

let test_perf_of_system () =
  let sys = Mdsp_workload.Workloads.water_box ~n_side:6 () in
  let w =
    Perf.of_system sys.Mdsp_workload.Workloads.topo
      sys.Mdsp_workload.Workloads.box
  in
  Alcotest.(check int) "atoms" 648 w.Perf.n_atoms;
  Alcotest.(check int) "constraints" 648 w.Perf.n_constraints;
  check_close ~rel:0.05 "density is waterlike" 0.1 w.Perf.density

let test_perf_breakdown_components_sum () =
  let cfg = Config.anton_like () in
  let w = { (workload 25_000) with Perf.fft_grid = Some (32, 32, 32) } in
  let b = Perf.step_time cfg w in
  check_true "all components positive"
    (b.Perf.htis_s > 0. && b.Perf.flex_s > 0. && b.Perf.comm_s > 0.
   && b.Perf.fft_s > 0. && b.Perf.sync_s > 0.);
  check_true "step at least max of compute resources"
    (b.Perf.step_s
    >= Float.max b.Perf.htis_s (Float.max b.Perf.flex_s b.Perf.comm_s))

let test_machine_sim_parallel_determinism () =
  let sys, ts, types, charges, cutoff = lj_machine_setup 200 in
  let box = sys.Mdsp_workload.Workloads.box in
  let pos = sys.Mdsp_workload.Workloads.positions in
  let nlist = Mdsp_space.Neighbor_list.create ~cutoff ~skin:1. box pos in
  (* Single-stream reference. *)
  let r1 = Htis.compute_forces ts ~types ~charges ~cutoff box nlist pos in
  (* Decomposed across several torus sizes: bitwise identical. *)
  List.iter
    (fun nodes ->
      let r =
        Machine_sim.compute ~nodes ts ~types ~charges ~cutoff box nlist pos
      in
      check_true "energy bitwise equal" (r.Machine_sim.energy = r1.Htis.energy);
      Alcotest.(check int) "no silent saturation" 0 r.Machine_sim.saturations;
      Array.iteri
        (fun i v ->
          if v <> r1.Htis.forces.(i) then
            Alcotest.failf "parallel forces differ at atom %d" i)
        r.Machine_sim.forces;
      check_true "pair conservation"
        (Array.fold_left ( + ) 0 r.Machine_sim.pairs_per_node
        = Mdsp_space.Neighbor_list.length nlist))
    [ (1, 1, 1); (2, 2, 2); (4, 4, 4); (3, 2, 1) ]

let test_machine_sim_load_balance () =
  let sys, ts, types, charges, cutoff = lj_machine_setup 500 in
  let box = sys.Mdsp_workload.Workloads.box in
  let pos = sys.Mdsp_workload.Workloads.positions in
  let nlist = Mdsp_space.Neighbor_list.create ~cutoff ~skin:1. box pos in
  let r =
    Machine_sim.compute ~nodes:(2, 2, 2) ts ~types ~charges ~cutoff box nlist
      pos
  in
  (* A homogeneous fluid should balance within a factor ~2. *)
  check_true
    (Printf.sprintf "imbalance %.2f < 2" (Machine_sim.imbalance r))
    (Machine_sim.imbalance r < 2.)

let prop_machine_sim_any_nodes =
  qtest "parallel decomposition bitwise-equal for random torus dims" ~count:12
    QCheck.(triple (int_range 1 5) (int_range 1 5) (int_range 1 5))
    (fun (px, py, pz) ->
      let sys, ts, types, charges, cutoff = lj_machine_setup 120 in
      let box = sys.Mdsp_workload.Workloads.box in
      let pos = sys.Mdsp_workload.Workloads.positions in
      let nlist = Mdsp_space.Neighbor_list.create ~cutoff ~skin:1. box pos in
      let r1 =
        Htis.compute_forces ts ~types ~charges ~cutoff box nlist pos
      in
      let r =
        Machine_sim.compute ~nodes:(px, py, pz) ts ~types ~charges ~cutoff box
          nlist pos
      in
      r.Machine_sim.energy = r1.Htis.energy
      && r.Machine_sim.saturations = 0
      && Array.for_all2 ( = ) r.Machine_sim.forces r1.Htis.forces)

let test_table_sram_budget () =
  let cfg = Config.anton_like () in
  let sys = Mdsp_workload.Workloads.water_box ~n_side:3 () in
  let small =
    Mdsp_core.Table.table_set_of_topology sys.Mdsp_workload.Workloads.topo
      ~cutoff:8.
      ~elec:(Mdsp_ff.Pair_interactions.Reaction_field { epsilon_rf = 78.5 })
      ~n:256 ()
  in
  let big =
    Mdsp_core.Table.table_set_of_topology sys.Mdsp_workload.Workloads.topo
      ~cutoff:8.
      ~elec:(Mdsp_ff.Pair_interactions.Reaction_field { epsilon_rf = 78.5 })
      ~n:8192 ()
  in
  check_true "bytes monotone in width"
    (Htis.table_set_bytes big > Htis.table_set_bytes small);
  check_true "small set fits" (Htis.tables_fit cfg small);
  check_true "huge set does not" (not (Htis.tables_fit cfg big))

(* --- Flex budget --- *)

let test_flex_budget_sane () =
  let cfg = Config.anton_like () in
  let w = workload 23_500 in
  let b = Flex.budget cfg w in
  check_true "available positive" (b.Flex.ops_available > 0.);
  check_true "used positive" (b.Flex.ops_used > 0.);
  check_true "slack consistent"
    (abs_float (b.Flex.ops_slack -. Float.max 0. (b.Flex.ops_available -. b.Flex.ops_used)) < 1e-6);
  (* A water-class workload at 512 nodes leaves plenty of headroom. *)
  check_true "has headroom" (b.Flex.slack_fraction > 0.2)

let test_flex_fits_monotone () =
  let cfg = Config.anton_like () in
  let w = workload 23_500 in
  let h = Flex.headroom cfg w in
  check_true "small method fits" (Flex.fits cfg w ~extra_ops:(h /. 10.));
  check_true "oversized method does not" (not (Flex.fits cfg w ~extra_ops:(h *. 2.)))

(* --- machine vs cluster baseline --- *)

let test_machine_beats_cluster_by_orders_of_magnitude () =
  let w = { (workload 25_000) with Perf.fft_grid = Some (64, 64, 64) } in
  let machine = Perf.ns_per_day (Config.anton_like ()) w in
  let cluster = Mdsp_baseline.Cluster.ns_per_day (Mdsp_baseline.Cluster.commodity ()) w in
  let ratio = machine /. cluster in
  check_true
    (Printf.sprintf "speedup %.0fx in [10, 1000]" ratio)
    (ratio > 10. && ratio < 1000.)

(* --- Multi-node decomposition + torus network --- *)

let decomp_frame ?(seed = 7) ?(n = 90) () =
  random_positions ~seed ~n ~box_l:12.0 ~min_dist:1.0

let test_decomp_exactly_once_vs_brute () =
  let box, pos = decomp_frame () in
  List.iter
    (fun nodes ->
      let d = Decomp.create box ~nodes ~cutoff:4.0 in
      let stats = Decomp.analyze d pos in
      let brute = Decomp.brute_pairs d pos in
      Alcotest.(check int) "assigned = brute force" brute stats.Decomp.n_pairs;
      Alcotest.(check int)
        "cell list = brute force" brute stats.Decomp.singlenode_pairs;
      Alcotest.(check int)
        "no residency violations" 0 stats.Decomp.residency_violations;
      check_true "pair_once_ok" stats.Decomp.pair_once_ok;
      check_true "per-node counts sum to total"
        (Array.fold_left ( + ) 0 stats.Decomp.pairs_per_node
        = stats.Decomp.n_pairs))
    [ (1, 1, 1); (2, 2, 2); (3, 2, 1); (4, 4, 4) ]

let test_torus_wraparound () =
  Alcotest.(check int) "ring of 8: 0 to 7 is 1 hop" 1 (Torus.axis_hops 8 0 7);
  Alcotest.(check int) "ring of 8: 1 to 5 is 4 hops" 4 (Torus.axis_hops 8 1 5);
  Alcotest.(check int) "ring of 1 has no hops" 0 (Torus.axis_hops 1 0 5);
  let t = Torus.create (4, 4, 4) in
  Alcotest.(check int) "diameter of 4x4x4" 6 (Torus.diameter t);
  (* Opposite corners wrap: one hop per axis, not three. *)
  Alcotest.(check int)
    "corner wrap" 3
    (Torus.hops t (Torus.rank t (0, 0, 0)) (Torus.rank t (3, 3, 3)))

let prop_torus_hops =
  qtest "torus hops symmetric, bounded by diameter, zero iff equal"
    ~count:200
    QCheck.(
      pair
        (triple (int_range 1 6) (int_range 1 6) (int_range 1 6))
        (pair (int_range 0 1000) (int_range 0 1000)))
    (fun (dims, (i, j)) ->
      let t = Torus.create dims in
      let nn = Torus.node_count t in
      let a = i mod nn and b = j mod nn in
      let h = Torus.hops t a b in
      h = Torus.hops t b a
      && h = 0 = (a = b)
      && h <= Torus.diameter t
      && Torus.rank t (Torus.coords t a) = a)

let test_comm_volume_conservation () =
  let box, pos = decomp_frame () in
  let d = Decomp.create box ~nodes:(3, 2, 2) ~cutoff:4.0 in
  let stats = Decomp.analyze d pos in
  let cfg = Config.anton_like ~nodes:(3, 2, 2) () in
  let step = Comm_model.of_stats cfg ~grid:(16, 16, 16) stats in
  let sum = Array.fold_left ( +. ) 0. in
  check_true "import traffic nonzero" (step.Comm_model.import.Comm_model.bytes > 0.);
  List.iter
    (fun (p : Comm_model.phase) ->
      check_close ~rel:1e-12
        (p.Comm_model.label ^ ": bytes sent = total")
        p.Comm_model.bytes (sum p.Comm_model.sent_bytes);
      check_close ~rel:1e-12
        (p.Comm_model.label ^ ": bytes received = total")
        p.Comm_model.bytes (sum p.Comm_model.recv_bytes);
      check_true
        (p.Comm_model.label ^ ": finite non-negative time")
        (Float.is_finite p.Comm_model.time_s && p.Comm_model.time_s >= 0.))
    (Comm_model.phases step);
  check_close ~rel:1e-12 "force return mirrors import"
    step.Comm_model.import.Comm_model.bytes
    step.Comm_model.force_return.Comm_model.bytes

let test_decomp_determinism_slots () =
  let box, pos = decomp_frame ~n:120 () in
  let d = Decomp.create box ~nodes:(2, 2, 2) ~cutoff:4.0 in
  let runs =
    List.map
      (fun slots ->
        let exec =
          if slots = 1 then Exec.create ~sanitize:true Exec.Serial
          else Exec.create ~sanitize:true (Exec.Domains { n = slots })
        in
        Fun.protect
          ~finally:(fun () -> Exec.shutdown exec)
          (fun () -> Decomp.analyze ~exec d pos))
      [ 1; 2; 4 ]
  in
  match runs with
  | [] -> assert false
  | r1 :: rest ->
      check_true "reference frame checks out" r1.Decomp.pair_once_ok;
      List.iteri
        (fun k r ->
          let tag = Printf.sprintf "%d slots" (1 lsl (k + 1)) in
          check_true (tag ^ ": owners equal")
            (r.Decomp.owner_of_atom = r1.Decomp.owner_of_atom);
          check_true (tag ^ ": pairs per node equal")
            (r.Decomp.pairs_per_node = r1.Decomp.pairs_per_node);
          check_true (tag ^ ": import edges equal")
            (r.Decomp.imports = r1.Decomp.imports);
          Alcotest.(check int)
            (tag ^ ": total pairs") r1.Decomp.n_pairs r.Decomp.n_pairs)
        rest

let () =
  Alcotest.run "mdsp_machine"
    [
      ( "interp_table",
        [
          Alcotest.test_case "exact polynomial" `Quick
            test_interp_table_exact_polynomial;
          Alcotest.test_case "cutoff and clamp" `Quick
            test_interp_table_cutoff_and_clamp;
          Alcotest.test_case "quantization bounded" `Quick
            test_interp_table_quantization_error_bounded;
          Alcotest.test_case "validation" `Quick test_interp_table_validation;
          Alcotest.test_case "sram" `Quick test_interp_table_sram;
        ] );
      ("config", [ Alcotest.test_case "throughputs" `Quick test_config_throughputs ]);
      ( "htis",
        [
          Alcotest.test_case "matches reference forces" `Quick
            test_htis_matches_reference;
          Alcotest.test_case "bitwise determinism" `Quick
            test_htis_determinism_under_permutation;
          Alcotest.test_case "float premise" `Quick
            test_htis_float_accumulation_is_order_dependent;
          Alcotest.test_case "cycle count" `Quick test_htis_cycles;
        ] );
      ( "machine_sim",
        [
          Alcotest.test_case "parallel bitwise determinism" `Quick
            test_machine_sim_parallel_determinism;
          Alcotest.test_case "load balance" `Quick
            test_machine_sim_load_balance;
          prop_machine_sim_any_nodes;
        ] );
      ( "sram",
        [ Alcotest.test_case "table budget" `Quick test_table_sram_budget ] );
      ( "flex",
        [
          Alcotest.test_case "budget sane" `Quick test_flex_budget_sane;
          Alcotest.test_case "fits monotone" `Quick test_flex_fits_monotone;
        ] );
      ( "perf",
        [
          Alcotest.test_case "monotone in atoms" `Quick
            test_perf_monotone_in_atoms;
          Alcotest.test_case "strong scaling" `Quick
            test_perf_strong_scaling_helps_then_saturates;
          Alcotest.test_case "fft adds time" `Quick test_perf_fft_adds_time;
          Alcotest.test_case "pair passes multiplier" `Quick
            test_perf_pair_passes_multiplier;
          Alcotest.test_case "of_system" `Quick test_perf_of_system;
          Alcotest.test_case "breakdown" `Quick
            test_perf_breakdown_components_sum;
          Alcotest.test_case "machine vs cluster" `Quick
            test_machine_beats_cluster_by_orders_of_magnitude;
        ] );
      ( "multi_node",
        [
          Alcotest.test_case "exactly-once vs brute force" `Quick
            test_decomp_exactly_once_vs_brute;
          Alcotest.test_case "torus wraparound" `Quick test_torus_wraparound;
          prop_torus_hops;
          Alcotest.test_case "comm volume conservation" `Quick
            test_comm_volume_conservation;
          Alcotest.test_case "determinism at 1/2/4 slots" `Quick
            test_decomp_determinism_slots;
        ] );
    ]
