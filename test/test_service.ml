(* The simulation job service: job/protocol codecs must round-trip
   exactly (qcheck fuzz), the spool queue must survive restarts, a job
   preempted repeatedly — including across a simulated server restart —
   must end bitwise identical to an uninterrupted run at 1/2/4 slots, the
   serve loop must answer malformed requests with errors instead of dying,
   and the checkpoint loaders must fail with clear messages on missing /
   truncated / mismatched files. *)

open Mdsp_util
open Testsupport
module Job = Mdsp_service.Job
module Q = Mdsp_service.Queue
module Sch = Mdsp_service.Scheduler
module P = Mdsp_service.Protocol
module Server = Mdsp_service.Server

(* --- helpers --- *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let rm_rf dir =
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let lj_spec ?(label = "t") ?(steps = 120) ?(seed = 7) () =
  {
    Job.label;
    preset = "lj64";
    steps;
    dt_fs = 2.0;
    temperature = 120.;
    seed;
    kind = Job.Single;
  }

let contains ~needle hay =
  let nn = String.length needle and nh = String.length hay in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let fails_with needle f =
  match f () with
  | _ -> Alcotest.failf "expected Failure mentioning %S" needle
  | exception Failure msg ->
      if not (contains ~needle msg) then
        Alcotest.failf "Failure %S does not mention %S" msg needle

(* --- job codec --- *)

let test_job_codec_basic () =
  let single = lj_spec ~label:"a label with spaces" () in
  let remd =
    {
      single with
      Job.kind =
        Job.Remd { replicas = 4; temp_min = 120.; temp_max = 160.; stride = 25 };
    }
  in
  List.iter
    (fun spec ->
      match Job.decode (Job.encode spec) with
      | Ok back -> check_true "round trip" (back = spec)
      | Error m -> Alcotest.failf "decode failed: %s" m)
    [ single; remd ];
  check_true "deterministic id" (Job.id single = Job.id single);
  check_true "kind changes id" (Job.id single <> Job.id remd);
  check_true "id shape"
    (String.length (Job.id single) = 17 && (Job.id single).[0] = 'j')

let test_job_decode_errors () =
  let bad l =
    match Job.decode l with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "decoded %S" l
  in
  bad "";
  bad "not a job\n";
  bad "mdsp-job 1\nlabel x\n";
  (* a validation failure, not just a parse failure *)
  bad
    (String.concat "\n"
       [
         "mdsp-job 1"; "label x"; "preset lj64"; "steps 0"; "dt 2";
         "temperature 120"; "seed 1"; "kind single"; "";
       ])

let spec_arb =
  let label_gen =
    QCheck.Gen.(
      string_size ~gen:(map Char.chr (int_range 32 126)) (int_range 0 16))
  in
  QCheck.map
    (fun ((label, preset, steps, seed), (dt, temp, is_remd, (replicas, stride)))
       ->
      let kind =
        if is_remd then
          Job.Remd
            { replicas; temp_min = temp; temp_max = temp +. 25.; stride }
        else Job.Single
      in
      { Job.label; preset; steps; dt_fs = dt; temperature = temp; seed; kind })
    QCheck.(
      pair
        (quad
           (make ~print:(Printf.sprintf "%S") label_gen)
           (oneofl [ "lj64"; "lj1k"; "water6k"; "chain2k" ])
           (int_range 1 100_000) (int_range 0 9999))
        (quad (float_range 0.5 4.0) (float_range 50. 400.) bool
           (pair (int_range 2 8) (int_range 1 50))))

let job_codec_fuzz =
  qtest "job codec round-trips" ~count:300 spec_arb (fun spec ->
      Job.decode (Job.encode spec) = Ok spec
      && Job.id spec = Job.id spec)

(* --- json --- *)

let json_float_fuzz =
  qtest "json numbers round-trip bitwise" ~count:300
    QCheck.(float_range (-1e12) 1e12)
    (fun f -> Json.of_string (Json.to_string (Json.Num f)) = Ok (Json.Num f))

let test_json_errors () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "parsed %S" s)
    [ "{"; "[1,]"; "1 2"; "\"unterminated"; "{\"a\" 1}"; "nul" ]

(* --- protocol codec --- *)

let request_arb =
  QCheck.map
    (fun (sel, spec, id) ->
      match sel with
      | 0 -> P.Submit spec
      | 1 -> P.Status id
      | 2 -> P.Result id
      | 3 -> P.Cancel id
      | 4 -> P.Jobs
      | _ -> P.Shutdown)
    QCheck.(
      triple (int_range 0 5) spec_arb
        (oneofl [ "j0000000000000000"; "jdeadbeef12345678"; "x" ]))

let view_arb =
  QCheck.map
    (fun ((id, label), (status, d, t)) ->
      {
        P.v_id = id;
        v_label = label;
        v_status = status;
        v_steps_done = d;
        v_steps_total = t;
      })
    QCheck.(
      pair
        (pair (oneofl [ "j1"; "j2" ]) (oneofl [ ""; "a label"; "x\"y" ]))
        (triple
           (oneofl [ "pending"; "running"; "paused"; "done"; "failed" ])
           (int_range 0 1000) (int_range 0 1000)))

let response_arb =
  QCheck.map
    (fun (sel, v, vs, (id, msg, obs)) ->
      match sel with
      | 0 -> P.Submitted v
      | 1 -> P.Job_status v
      | 2 -> P.Job_result { r_id = id; observables = obs }
      | 3 -> P.Cancelled id
      | 4 -> P.Job_list vs
      | 5 -> P.Bye
      | _ -> P.Error msg
    )
    QCheck.(
      quad (int_range 0 6) view_arb (list_of_size (Gen.int_range 0 4) view_arb)
        (triple (oneofl [ "j1"; "j2" ])
           (oneofl [ "boom"; "no such job"; "quote \" backslash \\" ])
           (list_of_size (Gen.int_range 0 4)
              (pair
                 (oneofl [ "steps"; "e_total"; "temperature" ])
                 (float_range (-1e6) 1e6)))))

let request_codec_fuzz =
  qtest "request codec round-trips" ~count:300 request_arb (fun r ->
      P.decode_request (P.encode_request r) = Ok r)

let response_codec_fuzz =
  qtest "response codec round-trips" ~count:300 response_arb (fun r ->
      P.decode_response (P.encode_response r) = Ok r)

let test_malformed_requests () =
  List.iter
    (fun line ->
      match P.decode_request line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" line)
    [
      "not json";
      "{}";
      "{\"op\":\"frobnicate\"}";
      "{\"op\":\"status\"}";
      "{\"op\":\"submit\",\"spec\":{\"label\":\"x\"}}";
      "{\"op\":\"submit\",\"spec\":{\"label\":\"x\",\"preset\":\"lj64\",\
       \"steps\":0,\"dt\":2,\"temperature\":120,\"seed\":1,\
       \"kind\":\"single\"}}";
    ]

(* --- queue persistence across restart --- *)

let test_queue_restart () =
  let dir = Atomic_file.fresh_dir ~prefix:"mdsp_test_q" () in
  let a = lj_spec ~label:"a" ~seed:11 () in
  let b = lj_spec ~label:"b" ~seed:12 () in
  let q1 = Q.create ~dir in
  let ea = Result.get_ok (Q.submit q1 a) in
  let _ = Result.get_ok (Q.submit q1 b) in
  check_true "idempotent resubmit"
    (Q.submit q1 a = Ok ea && List.length (Q.entries q1) = 2);
  let sched = Sch.create ~quantum:40 ~exec:Exec.serial q1 in
  check_true "one job advanced" (Sch.run_slice sched = 1);
  check_true "a paused at quantum"
    (ea.Q.status = Q.Paused && ea.Q.steps_done = 40);
  (* Simulated restart: reload everything from the spool. *)
  let q2 = Q.create ~dir in
  let ea2 = Option.get (Q.find q2 (Job.id a)) in
  let eb2 = Option.get (Q.find q2 (Job.id b)) in
  check_true "a recovered paused"
    (ea2.Q.status = Q.Paused && ea2.Q.steps_done = 40);
  check_true "b recovered pending" (eb2.Q.status = Q.Pending);
  check_true "round robin: b before a" (eb2.Q.seq < ea2.Q.seq);
  (* A job caught mid-run by a crash: Running demotes to Paused when its
     checkpoint landed, Pending when it never got one. *)
  Q.set_status q2 ea2 Q.Running;
  Q.set_status q2 eb2 Q.Running;
  let q3 = Q.create ~dir in
  check_true "running+ckpt -> paused"
    ((Option.get (Q.find q3 (Job.id a))).Q.status = Q.Paused);
  check_true "running without ckpt -> pending"
    ((Option.get (Q.find q3 (Job.id b))).Q.status = Q.Pending);
  let sched3 = Sch.create ~quantum:40 ~exec:Exec.serial q3 in
  Sch.drain sched3;
  List.iter
    (fun (e : Q.entry) -> check_true "drained to done" (e.Q.status = Q.Done))
    (Q.entries q3);
  check_true "no orphans" (Q.orphans ~dir = []);
  rm_rf dir

(* --- preempted = uninterrupted, bitwise, at 1/2/4 slots --- *)

let identity_specs =
  [ lj_spec ~label:"i1" ~seed:21 (); lj_spec ~label:"i2" ~seed:22 ();
    lj_spec ~label:"i3" ~seed:23 () ]

let test_preemption_identity () =
  (* steps 120, quantum 40: every job is preempted twice before its final
     slice. Mid-drain the queue and scheduler are rebuilt from the spool —
     a simulated server restart — so at least one resume goes through the
     checkpoint file. *)
  let refs =
    List.map
      (fun spec ->
        let ckpt = Filename.temp_file "mdsp_test_ref" ".ckpt" in
        let obs = Sch.uninterrupted spec ~ckpt in
        let bytes = read_file ckpt in
        Sys.remove ckpt;
        (spec, bytes, obs))
      identity_specs
  in
  let baseline = ref None in
  List.iter
    (fun slots ->
      let dir = Atomic_file.fresh_dir ~prefix:"mdsp_test_id" () in
      let exec =
        if slots = 1 then Exec.serial
        else Exec.create (Exec.Domains { n = slots })
      in
      let q1 = Q.create ~dir in
      List.iter
        (fun s -> ignore (Result.get_ok (Q.submit q1 s)))
        identity_specs;
      let s1 = Sch.create ~quantum:40 ~exec q1 in
      ignore (Sch.run_slice s1);
      ignore (Sch.run_slice s1);
      (* server restart: fresh queue + scheduler, instances rebuilt from
         the preemption checkpoints *)
      let q2 = Q.create ~dir in
      let s2 = Sch.create ~quantum:40 ~exec q2 in
      Sch.drain s2;
      let outputs =
        List.map
          (fun (spec, ref_bytes, _) ->
            let e = Option.get (Q.find q2 (Job.id spec)) in
            check_true
              (Printf.sprintf "%s done at %d slots" e.Q.id slots)
              (e.Q.status = Q.Done);
            let ckpt = read_file (Q.ckpt_path q2 e) in
            check_true
              (Printf.sprintf "ckpt bitwise at %d slots" slots)
              (ckpt = ref_bytes);
            Option.get (Q.read_result q2 e.Q.id))
          refs
      in
      (match !baseline with
      | None -> baseline := Some outputs
      | Some base ->
          check_true
            (Printf.sprintf "results identical across slot counts (%d)" slots)
            (base = outputs));
      Exec.shutdown exec;
      rm_rf dir)
    [ 1; 2; 4 ]

let test_unknown_preset_fails_job () =
  let dir = Atomic_file.fresh_dir ~prefix:"mdsp_test_bad" () in
  let q = Q.create ~dir in
  let e =
    Result.get_ok (Q.submit q { (lj_spec ()) with Job.preset = "nosuch" })
  in
  let sched = Sch.create ~quantum:40 ~exec:Exec.serial q in
  Sch.drain sched;
  (match e.Q.status with
  | Q.Failed msg -> check_true "mentions preset" (String.length msg > 0)
  | _ -> Alcotest.fail "unknown preset should fail the job");
  rm_rf dir

(* --- serve loop end to end --- *)

let test_serve_end_to_end () =
  let dir = Atomic_file.fresh_dir ~prefix:"mdsp_test_serve" () in
  let spec = lj_spec ~label:"served" ~steps:90 ~seed:31 () in
  let id = Job.id spec in
  let script =
    String.concat "\n"
      [
        P.encode_request (P.Submit spec);
        "this is not json";
        P.encode_request (P.Status id);
        P.encode_request (P.Result id);
      ]
    ^ "\n"
  in
  let in_path = Filename.temp_file "mdsp_serve" ".in" in
  let oc = open_out in_path in
  output_string oc script;
  close_out oc;
  let out_path = Filename.temp_file "mdsp_serve" ".out" in
  let input = Unix.openfile in_path [ Unix.O_RDONLY ] 0 in
  let output = open_out out_path in
  Server.serve ~quantum:30 ~dir ~input ~output ();
  Unix.close input;
  close_out output;
  let responses =
    String.split_on_char '\n' (String.trim (read_file out_path))
    |> List.map (fun l -> Result.get_ok (P.decode_response l))
  in
  (match responses with
  | [ P.Submitted v; P.Error err; P.Job_status _; P.Job_result r ] ->
      check_true "submitted id" (v.P.v_id = id);
      check_true "malformed line rejected"
        (String.length err > 0);
      check_true "result id" (r.r_id = id);
      check_true "observed steps" (List.assoc "steps" r.observables = 90.)
  | rs -> Alcotest.failf "unexpected response sequence (%d)" (List.length rs));
  check_true "spool clean after serve" (Q.orphans ~dir = []);
  Sys.remove in_path;
  Sys.remove out_path;
  rm_rf dir

(* --- checkpoint error paths --- *)

let test_checkpoint_errors () =
  let module T = Mdsp_md.Trajectory.Checkpoint in
  fails_with "cannot open" (fun () -> T.load "/nonexistent/ckpt");
  let tmp = Filename.temp_file "mdsp_test_ck" ".ckpt" in
  let write s =
    let oc = open_out tmp in
    output_string oc s;
    close_out oc
  in
  write "garbage\n";
  fails_with "bad header" (fun () -> T.load tmp);
  write "mdsp-checkpoint 2\npreset lj64\n";
  fails_with "truncated" (fun () -> T.load tmp);
  (* preset guard, through a real save *)
  let eng = lj_engine ~n:32 ~equil:10 () in
  T.save ~preset:"lj32" tmp (Mdsp_md.Engine.state eng) ~step:10;
  check_true "no staging leftover"
    (not (Sys.file_exists (tmp ^ Atomic_file.tmp_suffix)));
  fails_with "preset" (fun () -> T.load ~expect_preset:"water6k" tmp);
  let st, step = T.load ~expect_preset:"lj32" tmp in
  check_true "matching preset loads"
    (step = 10 && Mdsp_md.State.n st = 32);
  (* ensemble checkpoint: replica-count and preset guards *)
  let module EC = Mdsp_ensemble.Checkpoint in
  let snap = Mdsp_md.Engine.snapshot eng in
  EC.save ~preset:"lj32" tmp ~engines:[| snap |] ();
  check_true "ensemble save atomic"
    (not (Sys.file_exists (tmp ^ Atomic_file.tmp_suffix)));
  fails_with "replicas" (fun () -> EC.load ~expect_replicas:4 tmp);
  fails_with "preset" (fun () -> EC.load ~expect_preset:"water6k" tmp);
  (let remd, engines = EC.load ~expect_replicas:1 ~expect_preset:"lj32" tmp in
   check_true "single-engine checkpoint has no exchange section"
     (remd = None && Array.length engines = 1));
  fails_with "cannot open" (fun () -> EC.load "/nonexistent/ckpt");
  Sys.remove tmp

let () =
  Alcotest.run "service"
    [
      ( "job",
        [
          Alcotest.test_case "codec basics" `Quick test_job_codec_basic;
          Alcotest.test_case "decode errors" `Quick test_job_decode_errors;
          job_codec_fuzz;
        ] );
      ( "json",
        [
          json_float_fuzz;
          Alcotest.test_case "parse errors" `Quick test_json_errors;
        ] );
      ( "protocol",
        [
          request_codec_fuzz;
          response_codec_fuzz;
          Alcotest.test_case "malformed requests" `Quick
            test_malformed_requests;
        ] );
      ( "queue",
        [
          Alcotest.test_case "persistence across restart" `Quick
            test_queue_restart;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "preempted = uninterrupted (1/2/4 slots)"
            `Quick test_preemption_identity;
          Alcotest.test_case "unknown preset fails the job" `Quick
            test_unknown_preset_fails_job;
        ] );
      ( "serve",
        [
          Alcotest.test_case "end to end over a scripted fd" `Quick
            test_serve_end_to_end;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "clear errors, atomic writes" `Quick
            test_checkpoint_errors;
        ] );
    ]
