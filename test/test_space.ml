(* Tests for Mdsp_space: cell lists, exclusions, neighbor lists, and the
   spatial decomposition used by the machine model. *)

open Mdsp_util
open Mdsp_space
open Testsupport

(* Brute-force pair set within a cutoff, as (i, j) with i < j. *)
let brute_force_pairs box positions cutoff =
  let n = Array.length positions in
  let acc = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Pbc.dist2 box positions.(i) positions.(j) <= cutoff *. cutoff then
        acc := (i, j) :: !acc
    done
  done;
  List.sort_uniq compare !acc

let norm_pair (i, j) = if i < j then (i, j) else (j, i)

(* --- Cell_list --- *)

let test_cell_list_pair_completeness () =
  let box, positions = random_positions ~seed:21 ~n:150 ~box_l:18. ~min_dist:0.8 in
  let cutoff = 4.0 in
  let cl = Cell_list.build box positions ~cutoff in
  let seen = Hashtbl.create 1024 in
  Cell_list.iter_pairs cl (fun i j ->
      let key = norm_pair (i, j) in
      if Hashtbl.mem seen key then
        Alcotest.failf "pair (%d,%d) enumerated twice" i j;
      Hashtbl.add seen key ());
  (* Every within-cutoff pair must be among the candidates. *)
  List.iter
    (fun p ->
      if not (Hashtbl.mem seen p) then
        Alcotest.failf "missing pair (%d,%d)" (fst p) (snd p))
    (brute_force_pairs box positions cutoff)

let test_cell_list_degenerate_small_box () =
  (* Box smaller than 3 cutoffs per dim: falls back to all-pairs. *)
  let box, positions = random_positions ~seed:22 ~n:30 ~box_l:6. ~min_dist:0.5 in
  let cl = Cell_list.build box positions ~cutoff:2.5 in
  let count = ref 0 in
  Cell_list.iter_pairs cl (fun _ _ -> incr count);
  Alcotest.(check int) "all pairs enumerated" (30 * 29 / 2) !count

let test_cell_list_neighbors_include_all () =
  let box, positions = random_positions ~seed:23 ~n:120 ~box_l:16. ~min_dist:0.7 in
  let cutoff = 3.5 in
  let cl = Cell_list.build box positions ~cutoff in
  let pairs = brute_force_pairs box positions cutoff in
  List.iter
    (fun (i, j) ->
      let found = ref false in
      Cell_list.iter_neighbors cl i (fun k -> if k = j then found := true);
      check_true "neighbor found" !found)
    pairs

let prop_cell_list_counts_match =
  qtest "cell list candidate pairs are a superset of in-range pairs" ~count:20
    QCheck.(pair (int_range 30 120) (float_range 2.0 4.5))
    (fun (n, cutoff) ->
      let box, positions =
        random_positions ~seed:(n * 7) ~n ~box_l:15. ~min_dist:0.6
      in
      let cl = Cell_list.build box positions ~cutoff in
      let candidates = Hashtbl.create 256 in
      Cell_list.iter_pairs cl (fun i j ->
          Hashtbl.replace candidates (norm_pair (i, j)) ());
      List.for_all
        (fun p -> Hashtbl.mem candidates p)
        (brute_force_pairs box positions cutoff))

let test_cell_list_out_of_box_coordinates () =
  (* Atoms just outside the primary box (negative coordinates and beyond
     +L). Binning must use floored division/modulo so these land in the
     wrapped cell: with truncating [mod], an atom at -0.3 would bin to cell
     0 instead of cell nx-1 and its pairs across the face would be lost. *)
  let box_l = 18.0 and cutoff = 4.0 in
  let box, positions =
    random_positions ~seed:24 ~n:150 ~box_l ~min_dist:0.8
  in
  (* Push a band of atoms just below 0 and another just above L, and
     translate a third band by whole box lengths. *)
  Array.iteri
    (fun i p ->
      let open Vec3 in
      if i mod 5 = 0 then positions.(i) <- make (p.x -. box_l) p.y p.z
      else if i mod 5 = 1 then
        positions.(i) <- make p.x (p.y +. box_l) (p.z -. (2. *. box_l))
      else if i mod 5 = 2 then
        positions.(i) <- make (p.x -. (Float.min p.x 0.4) -. 0.05) p.y p.z)
    positions;
  let cl = Cell_list.build box positions ~cutoff in
  let seen = Hashtbl.create 1024 in
  Cell_list.iter_pairs cl (fun i j ->
      let key = norm_pair (i, j) in
      if Hashtbl.mem seen key then
        Alcotest.failf "pair (%d,%d) enumerated twice" i j;
      Hashtbl.add seen key ());
  List.iter
    (fun p ->
      if not (Hashtbl.mem seen p) then
        Alcotest.failf "missing pair (%d,%d) with out-of-box coordinates"
          (fst p) (snd p))
    (brute_force_pairs box positions cutoff)

let test_cell_list_parallel_bin_matches_serial () =
  let box, positions =
    random_positions ~seed:25 ~n:200 ~box_l:20. ~min_dist:0.7
  in
  let cutoff = 4.0 in
  let serial = Cell_list.build box positions ~cutoff in
  let pool = Exec.create (Exec.Domains { n = 4 }) in
  let parallel = Cell_list.build ~exec:pool box positions ~cutoff in
  Exec.shutdown pool;
  let collect cl =
    let acc = ref [] in
    Cell_list.iter_pairs cl (fun i j -> acc := norm_pair (i, j) :: !acc);
    List.sort compare !acc
  in
  check_true "parallel binning yields the identical candidate set"
    (collect serial = collect parallel)

(* --- Exclusions --- *)

let test_exclusions_of_pairs () =
  let ex = Exclusions.of_pairs ~n:5 [ (0, 1); (1, 0); (2, 3); (3, 3) ] in
  check_true "0-1 excluded" (Exclusions.excluded ex 0 1);
  check_true "1-0 excluded" (Exclusions.excluded ex 1 0);
  check_true "2-3 excluded" (Exclusions.excluded ex 2 3);
  check_true "self ignored" (not (Exclusions.excluded ex 3 3));
  check_true "0-2 not excluded" (not (Exclusions.excluded ex 0 2));
  Alcotest.(check int) "dedup count" 2 (Exclusions.count ex)

let test_exclusions_from_bonds_linear_chain () =
  (* Chain 0-1-2-3-4. through=2: 1-2 and 1-3 neighbors excluded. *)
  let bonds = [ (0, 1); (1, 2); (2, 3); (3, 4) ] in
  let ex = Exclusions.from_bonds ~n:5 ~bonds ~through:2 in
  check_true "1-2 bond" (Exclusions.excluded ex 0 1);
  check_true "1-3" (Exclusions.excluded ex 0 2);
  check_true "not 1-4" (not (Exclusions.excluded ex 0 3));
  let ex3 = Exclusions.from_bonds ~n:5 ~bonds ~through:3 in
  check_true "1-4 with through=3" (Exclusions.excluded ex3 0 3);
  check_true "not 1-5" (not (Exclusions.excluded ex3 0 4))

let test_exclusions_ring () =
  (* 4-ring: everything within 2 bonds of everything. *)
  let bonds = [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  let ex = Exclusions.from_bonds ~n:4 ~bonds ~through:2 in
  for i = 0 to 3 do
    for j = i + 1 to 3 do
      check_true "ring fully excluded" (Exclusions.excluded ex i j)
    done
  done

let test_exclusions_pairs_listing () =
  let ex = Exclusions.of_pairs ~n:4 [ (0, 1); (2, 3) ] in
  Alcotest.(check (list (pair int int)))
    "pairs" [ (0, 1); (2, 3) ] (Exclusions.pairs ex)

let test_exclusions_out_of_range () =
  Alcotest.check_raises "bad index"
    (Invalid_argument "Exclusions.of_pairs: atom index out of range")
    (fun () -> ignore (Exclusions.of_pairs ~n:3 [ (0, 7) ]))

(* --- Neighbor_list --- *)

let test_neighbor_list_matches_brute_force () =
  let box, positions = random_positions ~seed:31 ~n:200 ~box_l:20. ~min_dist:0.8 in
  let cutoff = 4.0 and skin = 1.0 in
  let nl = Neighbor_list.create ~cutoff ~skin box positions in
  let stored = Hashtbl.create 1024 in
  Neighbor_list.iter nl (fun i j -> Hashtbl.replace stored (i, j) ());
  (* All pairs within cutoff+skin must be present. *)
  List.iter
    (fun p -> check_true "pair within cutoff+skin stored" (Hashtbl.mem stored p))
    (brute_force_pairs box positions (cutoff +. skin));
  (* No pair beyond cutoff+skin may be present. *)
  Hashtbl.iter
    (fun (i, j) () ->
      check_true "no spurious pair"
        (Pbc.dist box positions.(i) positions.(j) <= cutoff +. skin +. 1e-9))
    stored

let test_neighbor_list_respects_exclusions () =
  let box, positions = random_positions ~seed:32 ~n:50 ~box_l:12. ~min_dist:0.8 in
  let ex = Exclusions.of_pairs ~n:50 [ (0, 1); (2, 3); (10, 20) ] in
  let nl = Neighbor_list.create ~exclusions:ex ~cutoff:5. ~skin:1. box positions in
  Neighbor_list.iter nl (fun i j ->
      check_true "excluded pair absent" (not (Exclusions.excluded ex i j)))

let test_neighbor_list_rebuild_trigger () =
  let box, positions = random_positions ~seed:33 ~n:60 ~box_l:14. ~min_dist:0.9 in
  let nl = Neighbor_list.create ~cutoff:4. ~skin:1. box positions in
  check_true "fresh list valid" (not (Neighbor_list.needs_rebuild nl positions));
  let moved = Array.copy positions in
  moved.(5) <- Vec3.add moved.(5) (Vec3.make 0.6 0. 0.);
  check_true "movement beyond skin/2 triggers"
    (Neighbor_list.needs_rebuild nl moved);
  let small = Array.copy positions in
  small.(5) <- Vec3.add small.(5) (Vec3.make 0.3 0. 0.);
  check_true "movement within skin/2 does not trigger"
    (not (Neighbor_list.needs_rebuild nl small))

let test_neighbor_list_maybe_rebuild_counts () =
  let box, positions = random_positions ~seed:34 ~n:40 ~box_l:12. ~min_dist:0.9 in
  let nl = Neighbor_list.create ~cutoff:3.5 ~skin:0.8 box positions in
  Alcotest.(check int) "initial build counted once" 0
    (Neighbor_list.rebuild_count nl);
  check_true "no rebuild" (not (Neighbor_list.maybe_rebuild nl positions));
  let moved = Array.map (fun p -> Vec3.add p (Vec3.make 0.5 0.5 0.)) positions in
  (* Uniform translation moves everything by > skin/2. *)
  check_true "rebuild happened" (Neighbor_list.maybe_rebuild nl moved);
  Alcotest.(check int) "rebuild counted" 1 (Neighbor_list.rebuild_count nl)

let test_neighbor_list_box_change () =
  let box, positions = random_positions ~seed:35 ~n:40 ~box_l:12. ~min_dist:0.9 in
  let nl = Neighbor_list.create ~cutoff:3.5 ~skin:0.8 box positions in
  let box2 = Pbc.scale box 1.01 in
  check_true "box change forces rebuild"
    (Neighbor_list.maybe_rebuild ~box:box2 nl positions);
  check_true "box updated" (Neighbor_list.box nl = box2)

let prop_neighbor_list_skin_sweep =
  qtest "neighbor list complete across skin choices" ~count:10
    QCheck.(float_range 0.2 2.0)
    (fun skin ->
      let box, positions =
        random_positions ~seed:36 ~n:80 ~box_l:14. ~min_dist:0.7
      in
      let cutoff = 3.0 in
      let nl = Neighbor_list.create ~cutoff ~skin box positions in
      let stored = Hashtbl.create 512 in
      Neighbor_list.iter nl (fun i j -> Hashtbl.replace stored (i, j) ());
      List.for_all
        (fun p -> Hashtbl.mem stored p)
        (brute_force_pairs box positions cutoff))

let test_neighbor_list_parallel_rebuild_identical () =
  (* The tiled rebuild uses a fixed tile count, so the stored pair list —
     content *and order* — is a pure function of the positions, bitwise
     identical across executor widths. *)
  let box, positions =
    random_positions ~seed:37 ~n:300 ~box_l:20. ~min_dist:0.7
  in
  let build exec =
    let nl =
      Neighbor_list.create ~exec ~cutoff:4. ~skin:1. box positions
    in
    let moved =
      Array.map (fun p -> Vec3.add p (Vec3.make 0.9 0.4 (-0.7))) positions
    in
    ignore (Neighbor_list.rebuild nl moved);
    let is, js = Neighbor_list.raw_pairs nl in
    let n = Neighbor_list.length nl in
    (Array.sub is 0 n, Array.sub js 0 n)
  in
  let ref_is, ref_js = build Exec.serial in
  check_true "serial rebuild found pairs" (Array.length ref_is > 0);
  List.iter
    (fun slots ->
      let pool = Exec.create (Exec.Domains { n = slots }) in
      let is, js = build pool in
      Exec.shutdown pool;
      check_true
        (Printf.sprintf "%d-slot rebuild identical to serial" slots)
        (is = ref_is && js = ref_js))
    [ 2; 4 ]

let test_neighbor_list_parallel_rebuild_race_free () =
  (* The rebuild's parallel phases ("cell.bin", "nlist.tiles") under the
     write-set sanitizer: any overlapping write raises Exec.Race. *)
  let box, positions =
    random_positions ~seed:38 ~n:200 ~box_l:18. ~min_dist:0.7
  in
  let exec = Exec.create ~sanitize:true (Exec.Domains { n = 4 }) in
  Fun.protect
    ~finally:(fun () -> Exec.shutdown exec)
    (fun () ->
      let nl = Neighbor_list.create ~exec ~cutoff:4. ~skin:1. box positions in
      let moved =
        Array.map (fun p -> Vec3.add p (Vec3.make 0.8 0. 0.)) positions
      in
      ignore (Neighbor_list.rebuild nl moved);
      check_true "sanitized rebuild completed" (Neighbor_list.length nl > 0))

let test_neighbor_list_build_seconds () =
  let box, positions =
    random_positions ~seed:39 ~n:100 ~box_l:14. ~min_dist:0.8
  in
  let nl = Neighbor_list.create ~cutoff:3.5 ~skin:1. box positions in
  let t0 = Neighbor_list.build_seconds nl in
  check_true "creation time accounted" (t0 >= 0.);
  ignore (Neighbor_list.rebuild nl positions);
  check_true "rebuild time accumulates"
    (Neighbor_list.build_seconds nl >= t0)

(* --- Decomp --- *)

let test_decomp_assign_partitions () =
  let box, positions = random_positions ~seed:41 ~n:100 ~box_l:16. ~min_dist:0.6 in
  let d = Decomp.create box ~nodes:(2, 2, 2) ~cutoff:3. ~policy:Decomp.Half_shell in
  Alcotest.(check int) "node count" 8 (Decomp.node_count d);
  let home = Decomp.assign d positions in
  let total = Array.fold_left (fun a h -> a + Array.length h) 0 home in
  Alcotest.(check int) "every atom assigned once" 100 total;
  (* Owner consistency. *)
  Array.iteri
    (fun node atoms ->
      Array.iter
        (fun i ->
          Alcotest.(check int) "owner matches bucket" node
            (Decomp.owner d positions.(i)))
        atoms)
    home

let test_decomp_import_volume_halved () =
  let box = Pbc.cubic 40. in
  let full =
    Decomp.create box ~nodes:(4, 4, 4) ~cutoff:4. ~policy:Decomp.Full_shell
  in
  let half =
    Decomp.create box ~nodes:(4, 4, 4) ~cutoff:4. ~policy:Decomp.Half_shell
  in
  check_close ~rel:1e-9 "half-shell imports half the volume"
    (Decomp.import_volume full /. 2.)
    (Decomp.import_volume half)

let test_decomp_import_counts_scale_with_cutoff () =
  let box, positions = random_positions ~seed:42 ~n:400 ~box_l:24. ~min_dist:0.5 in
  let counts r =
    let d = Decomp.create box ~nodes:(2, 2, 2) ~cutoff:r ~policy:Decomp.Full_shell in
    Array.fold_left ( + ) 0 (Decomp.import_counts d positions)
  in
  let c_small = counts 2. and c_large = counts 5. in
  check_true "larger cutoff imports more" (c_large > c_small);
  check_true "some imports happen" (c_small > 0)

let test_decomp_home_volume () =
  let box = Pbc.cubic 30. in
  let d = Decomp.create box ~nodes:(3, 5, 2) ~cutoff:3. ~policy:Decomp.Half_shell in
  check_close ~rel:1e-12 "home volume" (27000. /. 30.) (Decomp.home_volume d)

let () =
  Alcotest.run "mdsp_space"
    [
      ( "cell_list",
        [
          Alcotest.test_case "pair completeness, no duplicates" `Quick
            test_cell_list_pair_completeness;
          Alcotest.test_case "degenerate small box" `Quick
            test_cell_list_degenerate_small_box;
          Alcotest.test_case "per-particle neighbors" `Quick
            test_cell_list_neighbors_include_all;
          Alcotest.test_case "floored binning outside the box" `Quick
            test_cell_list_out_of_box_coordinates;
          Alcotest.test_case "parallel binning matches serial" `Quick
            test_cell_list_parallel_bin_matches_serial;
          prop_cell_list_counts_match;
        ] );
      ( "exclusions",
        [
          Alcotest.test_case "of_pairs" `Quick test_exclusions_of_pairs;
          Alcotest.test_case "from_bonds chain" `Quick
            test_exclusions_from_bonds_linear_chain;
          Alcotest.test_case "ring" `Quick test_exclusions_ring;
          Alcotest.test_case "pairs listing" `Quick
            test_exclusions_pairs_listing;
          Alcotest.test_case "out of range" `Quick
            test_exclusions_out_of_range;
        ] );
      ( "neighbor_list",
        [
          Alcotest.test_case "matches brute force" `Quick
            test_neighbor_list_matches_brute_force;
          Alcotest.test_case "respects exclusions" `Quick
            test_neighbor_list_respects_exclusions;
          Alcotest.test_case "rebuild trigger" `Quick
            test_neighbor_list_rebuild_trigger;
          Alcotest.test_case "maybe_rebuild counting" `Quick
            test_neighbor_list_maybe_rebuild_counts;
          Alcotest.test_case "box change" `Quick test_neighbor_list_box_change;
          Alcotest.test_case "parallel rebuild bitwise at 1/2/4 slots" `Quick
            test_neighbor_list_parallel_rebuild_identical;
          Alcotest.test_case "sanitized parallel rebuild race-free" `Quick
            test_neighbor_list_parallel_rebuild_race_free;
          Alcotest.test_case "build time accounting" `Quick
            test_neighbor_list_build_seconds;
          prop_neighbor_list_skin_sweep;
        ] );
      ( "decomp",
        [
          Alcotest.test_case "assignment partitions atoms" `Quick
            test_decomp_assign_partitions;
          Alcotest.test_case "half-shell volume" `Quick
            test_decomp_import_volume_halved;
          Alcotest.test_case "imports scale with cutoff" `Quick
            test_decomp_import_counts_scale_with_cutoff;
          Alcotest.test_case "home volume" `Quick test_decomp_home_volume;
        ] );
    ]
