(* The verification layer: interval arithmetic soundness, the kernel
   interval analyzer (hazardous and safe kernels), the table-domain
   checker, the Exec write-set race sanitizer, and the mdsp-check
   registry end to end. *)

open Testsupport
module I = Mdsp_verify.Interval
module KC = Mdsp_verify.Kernel_check
module TC = Mdsp_verify.Table_check
module Check = Mdsp_verify.Check
module K = Mdsp_core.Kernel
module Exec = Mdsp_util.Exec

let iv lo hi = I.make lo hi

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let check_iv msg expected actual =
  if actual.I.lo <> expected.I.lo || actual.I.hi <> expected.I.hi then
    Alcotest.failf "%s: expected %s, got %s" msg (I.to_string expected)
      (I.to_string actual)

(* --- interval arithmetic --- *)

let test_interval_construction () =
  check_iv "swapped bounds normalize" (iv 1. 2.) (I.make 2. 1.);
  check_iv "nan widens to top" I.top (I.make Float.nan 1.);
  check_true "contains endpoint" (I.contains (iv 1. 2.) 2.);
  check_true "top contains everything" (I.contains I.top 1e308);
  check_true "contains_zero" (I.contains_zero (iv (-1.) 1.));
  check_true "positive misses zero" (not (I.contains_zero (iv 0.5 1.)));
  check_true "finite" (I.is_finite (iv (-3.) 7.));
  check_true "top not finite" (not (I.is_finite I.top));
  check_iv "hull" (iv (-1.) 5.) (I.hull (iv (-1.) 2.) (iv 3. 5.))

let test_interval_monotone_ops () =
  check_iv "add" (iv 3. 7.) (I.add (iv 1. 2.) (iv 2. 5.));
  check_iv "sub" (iv (-4.) 0.) (I.sub (iv 1. 2.) (iv 2. 5.));
  check_iv "neg" (iv (-2.) (-1.)) (I.neg (iv 1. 2.));
  check_iv "mul positive" (iv 2. 10.) (I.mul (iv 1. 2.) (iv 2. 5.));
  check_iv "mul mixed" (iv (-10.) 10.) (I.mul (iv (-2.) 2.) (iv 2. 5.));
  check_iv "sqrt" (iv 2. 3.) (I.sqrt_ (iv 4. 9.));
  check_iv "sqrt clips negatives" (iv 0. 2.) (I.sqrt_ (iv (-1.) 4.));
  check_iv "exp" (iv 1. (exp 1.)) (I.exp_ (iv 0. 1.));
  check_iv "log" (iv 0. (log 2.)) (I.log_ (iv 1. 2.));
  check_true "log of zero-reaching is unbounded below"
    ((I.log_ (iv 0. 2.)).I.lo = neg_infinity);
  check_iv "log of nothing positive" I.top (I.log_ (iv (-2.) (-1.)));
  check_iv "min" (iv (-1.) 2.) (I.min_ (iv (-1.) 2.) (iv 0. 5.));
  check_iv "max" (iv 0. 5.) (I.max_ (iv (-1.) 2.) (iv 0. 5.))

let test_interval_division () =
  check_iv "positive divisor" (iv 1. 4.) (I.div (iv 2. 4.) (iv 1. 2.));
  check_iv "negative divisor" (iv (-4.) (-1.)) (I.div (iv 2. 4.) (iv (-2.) (-1.)));
  check_iv "divisor spanning zero is top" I.top (I.div (iv 2. 4.) (iv (-1.) 1.));
  check_iv "divisor touching zero is top" I.top (I.div (iv 2. 4.) (iv 0. 1.));
  (* The 0 * inf bound convention must not leak infinities into products
     of finite intervals with [0, 0]. *)
  check_iv "zero times top" (iv 0. 0.) (I.mul (I.point 0.) I.top)

let test_interval_pow_sign () =
  check_iv "square folds sign" (iv 0. 9.) (I.pow_int (iv (-3.) 2.) 2);
  check_iv "square positive" (iv 4. 9.) (I.pow_int (iv 2. 3.) 2);
  check_iv "square negative" (iv 1. 9.) (I.pow_int (iv (-3.) (-1.)) 2);
  check_iv "cube keeps sign" (iv (-27.) 8.) (I.pow_int (iv (-3.) 2.) 3);
  check_iv "zeroth power" (iv 1. 1.) (I.pow_int (iv (-3.) 2.) 0);
  check_iv "inverse square" (iv 0.25 1.) (I.pow_int (iv 1. 2.) (-2));
  check_iv "negative power over zero is top" I.top
    (I.pow_int (iv (-1.) 2.) (-1))

let test_interval_trig () =
  let width_ok name a =
    check_true (name ^ " within [-1,1]") (a.I.lo >= -1. && a.I.hi <= 1.)
  in
  width_ok "cos" (I.cos_ (iv 0. 1.));
  check_iv "cos through pi dips to -1" (iv (-1.) (cos 2.))
    (I.cos_ (iv 2. 4.));
  check_iv "cos over a full period" (iv (-1.) 1.) (I.cos_ (iv 0. 7.));
  check_iv "unbounded angle" (iv (-1.) 1.) (I.cos_ I.top);
  check_true "sin of [0, pi/2] hits 1"
    ((I.sin_ (iv 0. (Float.pi /. 2.))).I.hi >= 1. -. 1e-12);
  width_ok "sin" (I.sin_ (iv 0.2 0.9))

(* Soundness property: for x drawn inside the operand interval, the
   concrete result lies inside the interval result. *)
let interval_gen =
  QCheck.(
    map
      (fun (a, b) -> (I.make a b, a, b))
      (pair (float_range (-50.) 50.) (float_range (-50.) 50.)))

let pick_inside (lo, hi) t = lo +. (t *. (hi -. lo))

let prop_unary_sound =
  qtest "unary interval ops are sound" ~count:500
    QCheck.(pair interval_gen (float_range 0. 1.))
    (fun ((a, lo, hi), t) ->
      let x = pick_inside (lo, hi) t in
      let sound f fi =
        let y = f x in
        Float.is_nan y || I.contains (fi a) y
      in
      sound (fun x -> -.x) I.neg
      && sound sqrt I.sqrt_ && sound exp I.exp_ && sound log I.log_
      && sound cos I.cos_ && sound sin I.sin_
      && List.for_all
           (fun n -> sound (fun x -> x ** float_of_int n)
                (fun a -> I.pow_int a n))
           [ -3; -2; -1; 0; 1; 2; 3; 4 ])

let prop_binary_sound =
  qtest "binary interval ops are sound" ~count:500
    QCheck.(triple interval_gen interval_gen (pair (float_range 0. 1.) (float_range 0. 1.)))
    (fun ((a, alo, ahi), (b, blo, bhi), (s, t)) ->
      let x = pick_inside (alo, ahi) s and y = pick_inside (blo, bhi) t in
      let sound f fi =
        let r = f x y in
        Float.is_nan r || I.contains (fi a b) r
      in
      sound ( +. ) I.add && sound ( -. ) I.sub && sound ( *. ) I.mul
      && sound ( /. ) I.div && sound Float.min I.min_
      && sound Float.max I.max_)

(* --- the kernel analyzer --- *)

let box = Mdsp_util.Pbc.cubic 20.

let analyze_kernel k =
  KC.check_kernel ~env:(KC.env ~box (K.params k)) k

let test_hazardous_kernel_flagged () =
  let r = analyze_kernel (Check.hazardous_kernel ()) in
  check_true "flagged" (not (KC.report_ok r));
  let hs = KC.report_hazards r in
  check_true "division hazard found"
    (List.exists
       (fun (_, h) -> match h with KC.Div_by_zero _ -> true | _ -> false)
       hs);
  check_true "log hazard found"
    (List.exists
       (fun (_, h) -> match h with KC.Log_domain _ -> true | _ -> false)
       hs);
  (* The report must pretty-print the offending denominator. *)
  check_true "offending subexpression printed"
    (List.exists
       (fun (_, h) ->
         match h with
         | KC.Div_by_zero (e, _) -> K.expr_to_string e = "x"
         | _ -> false)
       hs)

let test_safe_kernels_prove_clean () =
  (* The shipped kernels are the regression proofs: the epsilon guards
     Kernel.diff inserts must be recognized as positive. *)
  List.iter
    (fun k ->
      let r = analyze_kernel k in
      if not (KC.report_ok r) then
        Alcotest.failf "kernel %s flagged:@ %s" (K.name k)
          (Format.asprintf "%a" KC.pp_report r))
    (Check.builtin_kernels ())

let test_square_dependency_precision () =
  (* x * x evaluated as a square, not as a naive product of [-l, h] with
     itself — the fix that lets the flat-bottom sqrt guard verify. *)
  let e = K.(Sub (Mul (X, X), Const 1e-16)) in
  let env = KC.env ~box [] in
  let range, hazards = KC.analyze env e in
  check_true "no hazards" (hazards = []);
  check_true "square nonnegative" (range.I.lo >= -1e-16);
  let range2, _ = KC.analyze env K.(Sqrt (Add (Mul (X, X), Const 1e-16))) in
  check_true "sqrt of guarded square is positive" (range2.I.lo > 0.)

let test_exp_overflow_flagged () =
  let e = K.Exp K.(Mul (Const 1e6, X)) in
  let _, hazards = KC.analyze (KC.env ~box []) e in
  check_true "exp overflow flagged"
    (List.exists
       (function KC.Exp_overflow _ -> true | _ -> false)
       hazards)

let test_pp_expr_precedence () =
  let s = K.expr_to_string K.(Mul (Add (X, Const 1.), Pow_int (Y, 2))) in
  check_true (Printf.sprintf "infix with parens: %s" s)
    (s = "(x + 1) * y^2")

(* --- the table checker --- *)

let lj_radial =
  Mdsp_core.Table.of_form
    (Mdsp_ff.Nonbonded.Lennard_jones { epsilon = 0.238; sigma = 3.405 })
    ~cutoff:9.

let test_table_sound () =
  let table = Mdsp_core.Table.compile ~r_min:2. ~r_cut:9. ~n:1024 lj_radial in
  let r = TC.check ~name:"lj" ~min_separation:2.5 ~table ~radial:lj_radial () in
  check_true "sound" (TC.report_ok r);
  check_true "fit bounded" r.TC.fit_ok;
  check_true "quantization clean" r.TC.quant_ok

let test_table_rmin_margin () =
  let table = Mdsp_core.Table.compile ~r_min:2. ~r_cut:9. ~n:1024 lj_radial in
  let r =
    TC.check ~name:"lj" ~min_separation:1.5 ~table ~radial:lj_radial ()
  in
  check_true "r_min above the physical minimum is flagged"
    ((not r.TC.r_min_ok) && not (TC.report_ok r))

let test_table_fit_bound () =
  (* Four intervals cannot fit r^-12 over [2, 9]: the fit gate must trip. *)
  let table = Mdsp_core.Table.compile ~r_min:2. ~r_cut:9. ~n:4 lj_radial in
  let r = TC.check ~name:"lj-coarse" ~table ~radial:lj_radial () in
  check_true "coarse fit flagged" ((not r.TC.fit_ok) && not (TC.report_ok r))

let test_table_source_finite () =
  (* log(r^2 - 25) is NaN over most of [2, 5): the source sweep must see
     it even though the knots happen to produce numbers. *)
  let radial r2 = (Float.log (r2 -. 25.), 0.) in
  let table = Mdsp_core.Table.compile ~r_min:2. ~r_cut:9. ~n:64 radial in
  let r = TC.check ~name:"log-pole" ~table ~radial () in
  check_true "non-finite source flagged" (not r.TC.source_finite)

let test_table_quantization_audit () =
  (* A non-finite coefficient smuggled past quantize:false must be caught
     by the audit. *)
  let coeffs bad =
    Array.init 4 (fun i ->
        Array.init 4 (fun d ->
            if bad && i = 2 && d = 3 then infinity else 1e-3))
  in
  let table =
    Mdsp_machine.Interp_table.make ~r_min:2. ~r_cut:9. ~n:4 ~quantize:false
      ~energy_coeffs:(coeffs true) ~force_coeffs:(coeffs false) ()
  in
  let radial _ = (1e-3, 1e-3) in
  let r = TC.check ~name:"inf-coeff" ~table ~radial () in
  check_true "non-finite coefficient flagged" (not r.TC.quant_ok)

(* --- the write-set sanitizer --- *)

let with_pool ?(sanitize = true) n f =
  let pool = Exec.create ~sanitize (Exec.Domains { n }) in
  Fun.protect ~finally:(fun () -> Exec.shutdown pool) (fun () -> f pool)

let test_sanitizer_overlap_raises () =
  with_pool 2 (fun pool ->
      let raised =
        try
          (* Both slots claim [0, 10): a deliberate race. *)
          Exec.parallel_run pool (fun s ->
              Exec.declare_write ~slot:s ~resource:"overlap" ~lo:0 ~hi:10
                pool);
          false
        with Exec.Race msg ->
          check_true "message names the resource"
            (contains_sub ~sub:"overlap" msg);
          true
      in
      check_true "overlap raised" raised;
      (* The pool must survive and validate a clean schedule afterwards. *)
      let tiles = Exec.tile_bounds ~total:10 ~ntiles:2 in
      Exec.parallel_run pool (fun s ->
          let lo, hi = tiles.(s) in
          Exec.declare_write ~slot:s ~resource:"clean" ~total:10 ~lo ~hi pool))

let test_sanitizer_coverage_gap_raises () =
  with_pool 2 (fun pool ->
      let raised =
        try
          Exec.parallel_run pool (fun s ->
              (* Slot 1's tile is missing: [5, 10) of the extent is never
                 written. *)
              if s = 0 then
                Exec.declare_write ~slot:0 ~resource:"gap" ~total:10 ~lo:0
                  ~hi:5 pool);
          false
        with Exec.Race _ -> true
      in
      check_true "coverage gap raised" raised)

let test_sanitizer_extent_mismatch_raises () =
  with_pool 2 (fun pool ->
      let raised =
        try
          Exec.parallel_run pool (fun s ->
              Exec.declare_write ~slot:s ~resource:"extent"
                ~total:(10 + s) ~lo:(5 * s) ~hi:(5 * (s + 1)) pool);
          false
        with Exec.Race _ -> true
      in
      check_true "extent disagreement raised" raised)

let test_sanitizer_off_is_noop () =
  with_pool ~sanitize:false 2 (fun pool ->
      check_true "not sanitizing" (not (Exec.sanitizing pool));
      (* The same deliberate overlap is ignored without the sanitizer. *)
      Exec.parallel_run pool (fun s ->
          Exec.declare_write ~slot:s ~resource:"overlap" ~lo:0 ~hi:10 pool))

let test_sanitizer_same_slot_overlap_ok () =
  with_pool 2 (fun pool ->
      (* A slot may revisit its own range (e.g. two passes over one tile). *)
      Exec.parallel_run pool (fun s ->
          let lo = 10 * s in
          Exec.declare_write ~slot:s ~resource:"revisit" ~lo ~hi:(lo + 10)
            pool;
          Exec.declare_write ~slot:s ~resource:"revisit" ~lo ~hi:(lo + 5)
            pool))

let test_map_slots_sanitized () =
  with_pool 3 (fun pool ->
      let r = Exec.map_slots pool (fun s -> s * s) in
      check_true "map_slots declares cleanly" (r = [| 0; 1; 4 |]))

let test_phases_race_free () =
  (* Every declared parallel phase in the force stack, at 1 / 2 / 4
     slots. *)
  List.iter
    (fun slots ->
      let phases = Mdsp_verify.Phase_check.run_phases ~slots in
      check_true
        (Printf.sprintf "phases checked at %d slots" slots)
        (List.length phases >= 15))
    [ 1; 2; 4 ]

(* --- the read-set side of the conflict matrix --- *)

let test_read_write_overlap_raises () =
  with_pool 2 (fun pool ->
      let raised =
        try
          Exec.parallel_run pool (fun s ->
              let lo = 10 * s in
              Exec.declare_write ~slot:s ~resource:"rwrace" ~lo ~hi:(lo + 10)
                pool;
              (* Every slot also claims to read the whole array: slot 0's
                 read overlaps slot 1's write. *)
              Exec.declare_read ~slot:s ~resource:"rwrace" ~lo:0 ~hi:20 pool);
          false
        with Exec.Race msg ->
          check_true "message names the resource"
            (contains_sub ~sub:"rwrace" msg);
          true
      in
      check_true "cross-slot read-write overlap raised" raised)

let test_masked_read_conflict_raises () =
  with_pool 2 (fun pool ->
      let raised =
        try
          (* Slot 0's whole-array read reaches furthest, so a scan carrying
             only the single max-hi read would check slot 0's write against
             slot 0's own read and miss slot 1's shorter one underneath. *)
          Exec.parallel_run pool (fun s ->
              if s = 0 then begin
                Exec.declare_read ~slot:0 ~resource:"masked" ~lo:0 ~hi:100
                  pool;
                Exec.declare_write ~slot:0 ~resource:"masked" ~lo:15 ~hi:30
                  pool
              end
              else
                Exec.declare_read ~slot:1 ~resource:"masked" ~lo:10 ~hi:20
                  pool);
          false
        with Exec.Race msg ->
          check_true "message names the resource"
            (contains_sub ~sub:"masked" msg);
          true
      in
      check_true "read masked by the writer's own wider read raised" raised)

let test_overlapping_reads_ok () =
  with_pool 2 (fun pool ->
      (* Reads may overlap freely when nobody writes the resource. *)
      Exec.parallel_run pool (fun s ->
          ignore s;
          Exec.declare_read ~slot:s ~resource:"shared_ro" ~lo:0 ~hi:100 pool))

let test_same_slot_rmw_ok () =
  with_pool 2 (fun pool ->
      (* A slot reading its own write range is an ordinary
         read-modify-write (force accumulation), not a race. *)
      Exec.parallel_run pool (fun s ->
          let lo = 50 * s in
          Exec.declare_read ~slot:s ~resource:"rmw" ~lo ~hi:(lo + 50) pool;
          Exec.declare_write ~slot:s ~resource:"rmw" ~total:100 ~lo
            ~hi:(lo + 50) pool))

let test_read_beyond_extent_raises () =
  with_pool 2 (fun pool ->
      let raised =
        try
          Exec.parallel_run pool (fun s ->
              let lo = 5 * s in
              Exec.declare_write ~slot:s ~resource:"short" ~total:10 ~lo
                ~hi:(lo + 5) pool;
              (* The read range runs past the declared extent. *)
              Exec.declare_read ~slot:s ~resource:"short" ~lo ~hi:15 pool);
          false
        with Exec.Race _ -> true
      in
      check_true "read beyond the declared extent raised" raised)

(* --- phase dataflow --- *)

module DF = Mdsp_verify.Dataflow

let dataflow_report = lazy (DF.run ~slots:[ 1; 2 ] ())

let test_dataflow_certified () =
  let r = Lazy.force dataflow_report in
  check_true "acyclic" r.DF.df_acyclic;
  check_true "invariant across slot counts" r.DF.df_invariant;
  check_true "no missing phase" (r.DF.df_missing = []);
  check_true "every phase has a read-set" (r.DF.df_no_reads = []);
  check_true "every phase has a write-set" (r.DF.df_no_writes = []);
  check_true "report ok" (DF.ok r);
  List.iter
    (fun g ->
      check_true
        (Printf.sprintf "exactly the expected phase set at %d slots"
           g.DF.g_slots)
        (List.map (fun p -> p.DF.ph_name) g.DF.g_phases
        = List.sort compare DF.expected_phases))
    r.DF.df_graphs

let test_dataflow_edges_expected () =
  let r = Lazy.force dataflow_report in
  let g = List.hd r.DF.df_graphs in
  let has e = List.mem e g.DF.g_edges in
  check_true "rebuild feeds the pair phase"
    (has ("nbuild", "pair", "nlist.tiles"));
  check_true "first kick precedes the drift"
    (has ("integrate.kick1", "integrate.drift", "state.velocities"));
  check_true "the boxed reduction precedes the second kick"
    (has ("bonded.reduce", "integrate.kick2", "state.forces"));
  check_true "the grid pipeline chains into the gather"
    (has ("gse.phi_scale", "gse.gather", "gse.grid"));
  check_true "the SoA reduction drains into the store"
    (has ("soa.reduce", "soa.store", "soa.forces"))

let test_dataflow_dot_deterministic () =
  let r = Lazy.force dataflow_report in
  match r.DF.df_graphs with
  | [ g1; g2 ] ->
      let d1 = DF.dot g1 and d2 = DF.dot g2 in
      check_true "DOT nonempty" (String.length d1 > 0);
      check_true "DOT names the pair edge"
        (contains_sub ~sub:"\"nbuild\" -> \"pair\"" d1);
      Alcotest.(check string) "byte-identical DOT at 1 and 2 slots" d1 d2
  | _ -> Alcotest.fail "expected graphs at two slot counts"

let test_dataflow_seed_race_fails () =
  let r = DF.run ~slots:[ 2 ] ~seed_race:true () in
  check_true "seeded" r.DF.df_seeded;
  check_true "the seeded race is caught and named"
    (match r.DF.df_failure with
    | Some msg -> contains_sub ~sub:"seed.race" msg
    | None -> false);
  check_true "report fails" (not (DF.ok r))

let test_dataflow_unregistered_phase_fails () =
  (* At one slot the seeded window is a plain same-slot read-modify-write,
     so no race fires — the only defect left is that "seed.race" is not in
     [expected_phases], and that alone must fail the report. *)
  let r = DF.run ~slots:[ 1 ] ~seed_race:true () in
  check_true "no race at one slot" (r.DF.df_failure = None);
  check_true "the unregistered phase is flagged"
    (r.DF.df_unexpected = [ "seed.race" ]);
  check_true "report fails" (not (DF.ok r))

(* The acyclicity checker itself, property-tested: edges that only point
   forward in some node order form a DAG; reversing any one of them closes
   a cycle Kahn's algorithm must find. *)
let mk_dag_graph n edges =
  let phases =
    List.init n (fun i ->
        {
          DF.ph_name = Printf.sprintf "p%d" i;
          ph_reads = [];
          ph_writes = [];
          ph_barriers = 1;
        })
  in
  { DF.g_slots = 1; g_phases = phases; g_edges = edges; g_unlabeled = 0 }

let prop_acyclic_sound =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200
       ~name:"forward edges are a DAG; one reversed edge is a cycle"
       QCheck.(
         pair (int_range 2 8)
           (small_list (pair (int_range 0 7) (int_range 0 7))))
       (fun (n, raw) ->
         let name i = Printf.sprintf "p%d" i in
         let edges =
           List.sort_uniq compare
             (List.filter_map
                (fun (a, b) ->
                  let a = a mod n and b = b mod n in
                  if a < b then Some (name a, name b, "r") else None)
                raw)
         in
         DF.acyclic (mk_dag_graph n edges)
         &&
         match edges with
         | [] -> true
         | (a, b, _) :: _ ->
             not (DF.acyclic (mk_dag_graph n ((b, a, "r") :: edges)))))

let test_dataflow_seed_cycle_fails () =
  (* The planted cyclic pair is race-free — its tiles are sound — so the
     only defect the acyclicity branch can blame is the cycle itself, and
     it must find it even at one slot. *)
  let r = DF.run ~slots:[ 1 ] ~seed_cycle:true () in
  check_true "seeded" r.DF.df_seeded;
  check_true "no race" (r.DF.df_failure = None);
  check_true "acyclicity fails" (not r.DF.df_acyclic);
  check_true "report fails" (not (DF.ok r));
  let g = List.hd r.DF.df_graphs in
  check_true "the planted a->b edge is derived"
    (List.mem ("seed.cycle.a", "seed.cycle.b", "seed.x") g.DF.g_edges);
  check_true "the planted b->a edge is derived"
    (List.mem ("seed.cycle.b", "seed.cycle.a", "seed.y") g.DF.g_edges)

(* --- constraint schedules --- *)

module Sched = Mdsp_verify.Schedule
module TP = Mdsp_ff.Topology

let test_schedule_builtins_certified () =
  let reports = Sched.run ~slots:[ 1; 2; 4 ] () in
  check_true "all builtin envelopes certified" (Sched.ok reports);
  let water = List.find (fun r -> r.Sched.rp_name = "water6k") reports in
  check_true "water6k fuses into 3-constraint clusters"
    (water.Sched.rp_max_cluster = 3);
  check_true "fused water clusters are atom-disjoint: one batch"
    (water.Sched.rp_n_batches = 1);
  check_true "every constraint clustered"
    (water.Sched.rp_n_constraints = 3 * water.Sched.rp_n_clusters);
  let chain = List.find (fun r -> r.Sched.rp_name = "chain10k") reports in
  check_true "chain10k has the empty schedule"
    (chain.Sched.rp_n_constraints = 0 && chain.Sched.rp_n_batches = 0)

let test_schedule_water_triangle () =
  (* Unfused, every rigid water is a triangle: three mutually adjacent
     single-constraint units per molecule, so DSATUR needs exactly three
     batches — disjoint triangles all reuse the same three colors. *)
  let topo =
    (Mdsp_workload.Workloads.water_box ~n_side:2 ())
      .Mdsp_workload.Workloads.topo
  in
  let p = Sched.plan ~fuse:false ~name:"water8" topo in
  check_true "one unit per constraint"
    (Array.length p.Sched.pl_units = Array.length topo.TP.constraints);
  check_true "three batches" (Array.length p.Sched.pl_batches = 3);
  check_true "certified" (Sched.cert_ok (Sched.certify p));
  let d = Sched.dot p in
  check_true "DOT names the triangle edge" (contains_sub ~sub:"u0 -- u1" d)

let test_schedule_seed_conflict_fails () =
  let c = Sched.certify (Sched.seed_conflict_plan ()) in
  check_true "planted same-batch neighbors fail the proper check"
    (not c.Sched.crt_proper);
  check_true "and the cross-slot footprint check"
    (not c.Sched.crt_disjoint);
  check_true "certificate fails" (not (Sched.cert_ok c));
  check_true "violations name the batch"
    (List.exists (contains_sub ~sub:"batch") c.Sched.crt_violations)

(* Random constraint topologies: the unfused coloring is always proper
   over the recomputed adjacency, and both the unfused and the fused
   (production) plans pass the full certificate. *)
let prop_schedule_certified =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100
       ~name:"random topologies: coloring proper, plans certified"
       QCheck.(
         pair (int_range 3 24)
           (small_list (pair (int_range 0 23) (int_range 0 23))))
       (fun (n, raw) ->
         let edges =
           List.sort_uniq compare
             (List.filter_map
                (fun (a, b) ->
                  let a = a mod n and b = b mod n in
                  if a < b then Some (a, b) else None)
                raw)
         in
         let b = TP.Builder.create () in
         TP.Builder.set_lj_types b [| (0.1, 1.0) |];
         for _ = 1 to n do
           ignore
             (TP.Builder.add_atom b ~mass:1. ~charge:0. ~type_id:0 ~name:"X")
         done;
         List.iter
           (fun (i, j) -> TP.Builder.add_constraint b ~i ~j ~dist:1.)
           edges;
         let topo = TP.Builder.finish b in
         let p = Sched.plan ~fuse:false ~name:"prop" topo in
         let adj = TP.cluster_adjacency p.Sched.pl_units in
         Mdsp_util.Coloring.proper ~adj p.Sched.pl_colors
         && Sched.cert_ok (Sched.certify p)
         && Sched.cert_ok (Sched.certify (Sched.plan ~name:"prop-fused" topo))))

(* --- the registry --- *)

(* --- fixed-point datapath certifier --- *)

module FC = Mdsp_verify.Fixed_check
module FI = Mdsp_verify.Fixed_interval
module Fixed = Mdsp_util.Fixed

let water_env = lazy (List.hd (Check.builtin_envelopes ()))

let test_fixed_interval_domain () =
  let fmt = Mdsp_util.Fixed.format ~frac_bits:10 ~total_bits:24 in
  let qerr = Fixed.quantization_error fmt in
  let a = FI.quantize fmt (FI.of_magnitude 3.) in
  check_float "quantize adds half a resolution" qerr a.FI.err;
  let s = FI.add a a in
  check_float "errors add through addition" (2. *. qerr) s.FI.err;
  let r = FI.repeat_add ~count:100 a in
  check_true "repeat_add scales value and error"
    (FI.worst_magnitude r >= 300. && r.FI.err = 100. *. qerr);
  check_true "fits the 24-bit format" (FI.fits fmt r);
  check_true "positive margin" (FI.margin_bits fmt r > 0.);
  let m = FI.of_magnitude 100. in
  match FI.min_safe_total_bits fmt m with
  | None -> Alcotest.fail "expected a finite safe width"
  | Some tb ->
      check_true "reported width fits"
        (FI.fits (Fixed.format ~frac_bits:10 ~total_bits:tb) m);
      check_true "one bit fewer does not"
        (tb <= 11
        || not (FI.fits (Fixed.format ~frac_bits:10 ~total_bits:(tb - 1)) m))

let test_datapath_water_proved () =
  let r = FC.certify (Lazy.force water_env) in
  check_true "water datapath proved safe" (FC.proved r);
  List.iter
    (fun name ->
      check_true (name ^ " proved") (FC.format_ok r name);
      check_true
        (Printf.sprintf "%s margin %.2f >= 1 bit" name (FC.format_margin r name))
        (FC.format_margin r name >= 1.))
    (FC.format_names r);
  check_true "certificate covers all four formats"
    (List.sort compare (FC.format_names r)
    = List.sort compare
        [ "force_format"; "energy_format"; "position_format"; "coeff_format" ]);
  check_true "every accumulator row has a finite worst case"
    (List.for_all
       (fun a -> Float.is_finite a.FC.worst && a.FC.worst >= 0.)
       r.FC.accs)

let test_datapath_narrow_flagged () =
  let env = Lazy.force water_env in
  let r = FC.certify ~format:Check.narrow_format env in
  check_true "narrow format rejected" (not (FC.proved r));
  check_true "force format flagged" (not (FC.format_ok r "force_format"));
  check_true "position datapath unaffected by the force narrowing"
    (FC.format_ok r "position_format");
  let acc =
    List.find
      (fun a -> a.FC.acc = "HTIS per-atom component accumulator")
      r.FC.accs
  in
  check_true "per-atom accumulator row unsafe" (not acc.FC.safe);
  check_true "negative margin" (acc.FC.margin_bits < 0.);
  (* the verdict is actionable: the reported minimal width really is
     minimal — certifying at that width clears the row, one bit fewer
     does not *)
  match acc.FC.min_safe_bits with
  | None -> Alcotest.fail "expected a minimal safe width"
  | Some bits ->
      check_true "minimal width at most the default 48" (bits <= 48);
      let row_at tb =
        let f = { Check.narrow_format with Fixed.total_bits = tb } in
        let r = FC.certify ~format:f env in
        List.find (fun a -> a.FC.acc = acc.FC.acc) r.FC.accs
      in
      check_true "reported width is safe" (row_at bits).FC.safe;
      check_true "one bit fewer is not" (not (row_at (bits - 1)).FC.safe)

let test_datapath_runtime_cross_check () =
  let env = Lazy.force water_env in
  let sys = Mdsp_workload.Workloads.water_box ~n_side:2 () in
  let topo = sys.Mdsp_workload.Workloads.topo in
  let types =
    Array.map
      (fun (a : Mdsp_ff.Topology.atom) -> a.Mdsp_ff.Topology.type_id)
      topo.Mdsp_ff.Topology.atoms
  in
  let charges = Mdsp_ff.Topology.charges topo in
  let box = sys.Mdsp_workload.Workloads.box in
  let pos = sys.Mdsp_workload.Workloads.positions in
  let cutoff = env.FC.cutoff in
  let nlist = Mdsp_space.Neighbor_list.create ~cutoff ~skin:1. box pos in
  let run format =
    Mdsp_machine.Htis.compute_forces ~format env.FC.tables ~types ~charges
      ~cutoff box nlist pos
  in
  (* The certified direction: the format the certifier proves safe runs
     with a clean saturation counter, on both execution paths. *)
  check_true "default format proved" (FC.proved (FC.certify env));
  let r = run Fixed.force_format in
  Alcotest.(check int) "proved-safe run is clean" 0 r.Mdsp_machine.Htis.saturations;
  let rm =
    Mdsp_machine.Machine_sim.compute ~nodes:env.FC.nodes env.FC.tables ~types
      ~charges ~cutoff box nlist pos
  in
  Alcotest.(check int) "proved-safe machine-sim run is clean" 0
    rm.Mdsp_machine.Machine_sim.saturations;
  (* The other direction: a format the certifier rejects — narrow enough
     that the real configuration (not just the adversarial worst case)
     overflows — must trip the runtime counter. *)
  let tiny = { Fixed.force_format with Fixed.total_bits = 26 } in
  check_true "certifier rejects the tiny format"
    (not (FC.proved (FC.certify ~format:tiny env)));
  let r = run tiny in
  check_true "tiny-format run actually saturates"
    (r.Mdsp_machine.Htis.saturations > 0)

let test_registry_end_to_end () =
  let s = Check.run ~seed_hazard:true ~seed_narrow:true ~slots:[ 2 ] () in
  check_true "seeded summary fails" (not (Check.ok s));
  check_true "only the seeded kernel fails"
    (List.for_all
       (fun (r : KC.report) ->
         KC.report_ok r = (r.KC.kernel <> "seeded_hazard"))
       s.Check.kernels);
  check_true "all tables sound"
    (List.for_all TC.report_ok s.Check.tables);
  check_true "sanitizer clean"
    (List.for_all (fun r -> r.Check.failure = None) s.Check.sanitize);
  check_true "only the narrowed datapaths fail"
    (List.for_all
       (fun (r : FC.report) ->
         FC.proved r = not (contains_sub ~sub:"[narrow" r.FC.workload))
       s.Check.datapath);
  check_true "all three envelopes in the registry"
    (List.exists (fun (r : FC.report) -> r.FC.workload = "water6k")
       s.Check.datapath
    && List.exists (fun (r : FC.report) -> r.FC.workload = "chain10k")
         s.Check.datapath);
  let json = Check.to_json s in
  let has sub = contains_sub ~sub json in
  check_true "json verdict keys"
    (has "\"verify.ok\": 0"
    && has "\"kernel.seeded_hazard\": 0"
    && has "\"kernel.flat_bottom\": 1"
    && has "\"table.lj\": 1"
    && has "\"sanitize.slots2\": 1"
    && has "\"datapath.water.ok\": 1"
    && has "\"datapath.water.force_format\": 1"
    && has "\"datapath.water[narrow32].ok\": 0"
    && has "\"datapath.water[narrow32].force_format\": 0")

let () =
  Alcotest.run "verify"
    [
      ( "interval",
        [
          Alcotest.test_case "construction and predicates" `Quick
            test_interval_construction;
          Alcotest.test_case "monotone ops" `Quick test_interval_monotone_ops;
          Alcotest.test_case "division spanning zero" `Quick
            test_interval_division;
          Alcotest.test_case "pow_int sign handling" `Quick
            test_interval_pow_sign;
          Alcotest.test_case "trig widening" `Quick test_interval_trig;
          prop_unary_sound;
          prop_binary_sound;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "hazardous kernel flagged" `Quick
            test_hazardous_kernel_flagged;
          Alcotest.test_case "shipped kernels prove clean" `Quick
            test_safe_kernels_prove_clean;
          Alcotest.test_case "x*x is a square" `Quick
            test_square_dependency_precision;
          Alcotest.test_case "exp overflow flagged" `Quick
            test_exp_overflow_flagged;
          Alcotest.test_case "expression pretty-printer" `Quick
            test_pp_expr_precedence;
        ] );
      ( "table",
        [
          Alcotest.test_case "sound table passes" `Quick test_table_sound;
          Alcotest.test_case "r_min margin" `Quick test_table_rmin_margin;
          Alcotest.test_case "fit error bound" `Quick test_table_fit_bound;
          Alcotest.test_case "source finiteness sweep" `Quick
            test_table_source_finite;
          Alcotest.test_case "quantization audit" `Quick
            test_table_quantization_audit;
        ] );
      ( "sanitizer",
        [
          Alcotest.test_case "cross-slot overlap raises" `Quick
            test_sanitizer_overlap_raises;
          Alcotest.test_case "coverage gap raises" `Quick
            test_sanitizer_coverage_gap_raises;
          Alcotest.test_case "extent mismatch raises" `Quick
            test_sanitizer_extent_mismatch_raises;
          Alcotest.test_case "off by default" `Quick test_sanitizer_off_is_noop;
          Alcotest.test_case "same-slot revisits allowed" `Quick
            test_sanitizer_same_slot_overlap_ok;
          Alcotest.test_case "map_slots declares" `Quick
            test_map_slots_sanitized;
          Alcotest.test_case "force phases race-free at 1/2/4 slots" `Quick
            test_phases_race_free;
          Alcotest.test_case "cross-slot read-write overlap raises" `Quick
            test_read_write_overlap_raises;
          Alcotest.test_case "read masked by writer's wider read raises"
            `Quick test_masked_read_conflict_raises;
          Alcotest.test_case "overlapping reads allowed" `Quick
            test_overlapping_reads_ok;
          Alcotest.test_case "same-slot read-modify-write allowed" `Quick
            test_same_slot_rmw_ok;
          Alcotest.test_case "read beyond extent raises" `Quick
            test_read_beyond_extent_raises;
        ] );
      ( "dataflow",
        [
          Alcotest.test_case "happens-before graph certified" `Quick
            test_dataflow_certified;
          Alcotest.test_case "expected edges present" `Quick
            test_dataflow_edges_expected;
          Alcotest.test_case "DOT deterministic across slot counts" `Quick
            test_dataflow_dot_deterministic;
          Alcotest.test_case "seeded race fails the report" `Quick
            test_dataflow_seed_race_fails;
          Alcotest.test_case "unregistered phase fails the report" `Quick
            test_dataflow_unregistered_phase_fails;
          Alcotest.test_case "seeded cycle fails acyclicity" `Quick
            test_dataflow_seed_cycle_fails;
          prop_acyclic_sound;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "builtin envelopes certified" `Quick
            test_schedule_builtins_certified;
          Alcotest.test_case "unfused water is a 3-color triangle" `Quick
            test_schedule_water_triangle;
          Alcotest.test_case "seeded conflict fails the certificate" `Quick
            test_schedule_seed_conflict_fails;
          prop_schedule_certified;
        ] );
      ( "datapath",
        [
          Alcotest.test_case "fixed-interval abstract domain" `Quick
            test_fixed_interval_domain;
          Alcotest.test_case "water datapath proved safe" `Quick
            test_datapath_water_proved;
          Alcotest.test_case "narrowed format flagged with minimal width"
            `Quick test_datapath_narrow_flagged;
          Alcotest.test_case "static verdicts match runtime saturation"
            `Quick test_datapath_runtime_cross_check;
        ] );
      ( "registry",
        [
          Alcotest.test_case "seeded run end to end" `Quick
            test_registry_end_to_end;
        ] );
    ]
