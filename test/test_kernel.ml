(* Tests for the programmable-core kernel DSL: symbolic differentiation,
   simplification, op counting, parameter handling, and the restraint
   kernels built on it. *)

open Mdsp_util
open Mdsp_core
open! Mdsp_core.Kernel
open Testsupport

let params_fn bindings p =
  match List.assoc_opt p bindings with
  | Some v -> v
  | None -> Alcotest.failf "unbound parameter %s" p

let eval_at ?(params = []) ?(time = 0.) ?(vel = Vec3.zero) ?(aux = [||]) e pos =
  eval_expr e ~params:(params_fn params) ~time ~pos ~vel ~aux

(* Numeric partial derivative of an expression along x/y/z. *)
let numeric_diff e axis pos =
  let h = 1e-6 in
  let shift d =
    match axis with
    | `X -> Vec3.make (pos.Vec3.x +. d) pos.Vec3.y pos.Vec3.z
    | `Y -> Vec3.make pos.Vec3.x (pos.Vec3.y +. d) pos.Vec3.z
    | `Z -> Vec3.make pos.Vec3.x pos.Vec3.y (pos.Vec3.z +. d)
  in
  (eval_at e (shift h) -. eval_at e (shift (-.h))) /. (2. *. h)

let check_diff ?(rel = 1e-4) e pos =
  List.iter
    (fun axis ->
      let analytic = eval_at (simplify (diff e axis)) pos in
      let numeric = numeric_diff e axis pos in
      let tol = Float.max (abs_float numeric *. rel) 1e-6 in
      if abs_float (analytic -. numeric) > tol then
        Alcotest.failf "derivative mismatch: analytic %g vs numeric %g"
          analytic numeric)
    [ `X; `Y; `Z ]

let test_diff_polynomial () =
  (* E = x^2 y + 3 z *)
  let e = (sq X * Y) + (c 3. * Z) in
  let pos = Vec3.make 2. 5. (-1.) in
  check_diff e pos;
  check_float ~eps:1e-12 "dE/dx = 2xy" 20. (eval_at (simplify (diff e `X)) pos);
  check_float ~eps:1e-12 "dE/dz = 3" 3. (eval_at (simplify (diff e `Z)) pos)

let test_diff_transcendentals () =
  let exprs =
    [
      Exp (Neg (sq X));
      Log (c 1. + sq X + sq Y);
      Cos (X * Y);
      Sin (X / (c 1. + sq Z));
      Sqrt (c 1. + sq X + sq Y + sq Z);
      Pow_int (c 1. + sq X, 3);
    ]
  in
  let pos = Vec3.make 0.7 (-0.4) 1.2 in
  List.iter (fun e -> check_diff e pos) exprs

let test_diff_min_max_smoothed () =
  (* Flat-bottom style expression: max(r - r0, 0)^2. *)
  let r = Sqrt (sq X + sq Y + sq Z) in
  let e = sq (Max (r - c 2., c 0.)) in
  (* Outside the flat region. *)
  check_diff e (Vec3.make 2.5 1. 0.5);
  (* Well inside: derivative must be ~0. *)
  let dx = simplify (diff e `X) in
  check_true "flat inside"
    (abs_float (eval_at dx (Vec3.make 0.5 0.3 0.2)) < 1e-6)

let test_simplify_constant_folding () =
  check_true "adds" (simplify (c 2. + c 3.) = Const 5.);
  check_true "mul zero" (simplify (X * c 0.) = Const 0.);
  check_true "mul one" (simplify (X * c 1.) = X);
  check_true "add zero" (simplify (X + c 0.) = X);
  check_true "pow zero" (simplify (Pow_int (X, 0)) = Const 1.);
  check_true "neg neg" (simplify (Neg (Neg X)) = X);
  check_true "nested" (simplify ((c 1. * X) + (c 0. * Y)) = X)

let test_expr_ops_counts () =
  Alcotest.(check int) "leaf" 0 (expr_ops X);
  Alcotest.(check int) "one add" 1 (expr_ops (X + Y));
  check_true "transcendental costs more" (expr_ops (Exp X) >= 4)

let test_kernel_create_rejects_velocity () =
  Alcotest.check_raises "velocity in energy"
    (Invalid_argument "Kernel.create: energy must not reference velocities")
    (fun () ->
      ignore (create ~name:"bad" ~energy:(Vx * X) ~particles:[| 0 |] ~params:[]))

let test_kernel_create_rejects_unbound_param () =
  Alcotest.check_raises "unbound parameter"
    (Invalid_argument "Kernel.create: unbound parameter \"k\"") (fun () ->
      ignore
        (create ~name:"bad" ~energy:(Param "k" * X) ~particles:[| 0 |]
           ~params:[]))

let test_kernel_params () =
  let k =
    create ~name:"t" ~energy:(Param "a" * X) ~particles:[| 0 |]
      ~params:[ ("a", 2.) ]
  in
  check_float ~eps:0. "get" 2. (get_param k "a");
  set_param k "a" 5.;
  check_float ~eps:0. "set" 5. (get_param k "a");
  Alcotest.check_raises "unknown set"
    (Invalid_argument "Kernel.set_param: unknown parameter \"zz\"") (fun () ->
      set_param k "zz" 0.)

let test_kernel_bias_forces_match_numeric () =
  (* Anisotropic quartic restraint through the full bias path. *)
  let energy =
    (c 0.5 * sq (X - Param "x0"))
    + (c 0.25 * Pow_int (Y, 4))
    + (c 2.0 * sq Z)
  in
  let k =
    create ~name:"quartic" ~energy ~particles:[| 0; 2 |]
      ~params:[ ("x0", 1.0) ]
  in
  let bias = Kernel.to_bias ~time:(fun () -> 0.) k in
  let box = Pbc.cubic 20. in
  let positions =
    [| Vec3.make 11. 12. 9.5; Vec3.make 3. 3. 3.; Vec3.make 8.7 10.2 10.9 |]
  in
  let acc = Mdsp_ff.Bonded.make_accum 3 in
  let e = bias.Mdsp_md.Force_calc.bias_compute box positions acc in
  check_true "energy positive" (e > 0.);
  let numeric =
    numeric_forces ~h:1e-6
      (fun p ->
        let a = Mdsp_ff.Bonded.make_accum 3 in
        bias.Mdsp_md.Force_calc.bias_compute box p a)
      positions
  in
  check_true "bias forces match numeric"
    (max_vec_diff acc.Mdsp_ff.Bonded.forces numeric < 1e-4);
  (* Particle 1 is not in the kernel's set. *)
  check_true "unlisted particle untouched"
    (Vec3.norm acc.Mdsp_ff.Bonded.forces.(1) = 0.)

let test_kernel_time_dependence () =
  (* Moving restraint center via Time. *)
  let energy = sq (X - (Param "v" * Time)) in
  let k =
    create ~name:"mover" ~energy ~particles:[| 0 |] ~params:[ ("v", 2.) ]
  in
  let now = ref 0. in
  let bias = Kernel.to_bias ~time:(fun () -> !now) k in
  let box = Pbc.cubic 20. in
  let positions = [| Vec3.make 10. 10. 10. |] in
  (* x relative to center = 0. *)
  let acc = Mdsp_ff.Bonded.make_accum 1 in
  let e0 = bias.Mdsp_md.Force_calc.bias_compute box positions acc in
  check_float ~eps:1e-12 "at t=0 center is origin" 0. e0;
  now := 1.5;
  let acc2 = Mdsp_ff.Bonded.make_accum 1 in
  let e1 = bias.Mdsp_md.Force_calc.bias_compute box positions acc2 in
  check_close ~rel:1e-12 "center moved to v t = 3" 9. e1

let test_kernel_aux_and_time_leaves () =
  (* Aux and Time are constants under spatial differentiation. *)
  let e = (Aux 0 * X) + (Time * Y) in
  let dx = simplify (diff e `X) in
  let v =
    eval_expr dx
      ~params:(fun _ -> 0.)
      ~time:7.
      ~pos:(Vec3.make 2. 3. 4.)
      ~vel:Vec3.zero ~aux:[| 5. |]
  in
  check_float ~eps:1e-12 "d/dx = aux0" 5. v;
  let dy = simplify (diff e `Y) in
  let v2 =
    eval_expr dy
      ~params:(fun _ -> 0.)
      ~time:7.
      ~pos:(Vec3.make 2. 3. 4.)
      ~vel:Vec3.zero ~aux:[| 5. |]
  in
  check_float ~eps:1e-12 "d/dy = time" 7. v2;
  (* Out-of-range aux slots read as zero. *)
  let v3 =
    eval_expr (Aux 3)
      ~params:(fun _ -> 0.)
      ~time:0. ~pos:Vec3.zero ~vel:Vec3.zero ~aux:[| 1. |]
  in
  check_float ~eps:0. "missing aux is zero" 0. v3

let test_negative_power () =
  (* Pow_int with a negative exponent: x^-2. *)
  let e = Pow_int (X, -2) in
  let v =
    eval_expr e
      ~params:(fun _ -> 0.)
      ~time:0.
      ~pos:(Vec3.make 2. 0. 0.)
      ~vel:Vec3.zero ~aux:[||]
  in
  check_close ~rel:1e-12 "x^-2" 0.25 v

let test_ops_and_flex_cost () =
  let k =
    create ~name:"posre"
      ~energy:(c 1.5 * (sq (X - c 0.) + sq (Y - c 0.) + sq (Z - c 0.)))
      ~particles:(Array.init 10 Fun.id)
      ~params:[]
  in
  check_true "ops positive" (ops_per_particle k > 0);
  check_close ~rel:1e-12 "flex ops = ops * particles"
    (float_of_int (Stdlib.( * ) (ops_per_particle k) 10))
    (flex_ops k)

(* --- Restraints built on the DSL --- *)

let test_position_restraint () =
  let kern =
    Restraints.position ~name:"posre" ~particles:[| 0 |] ~k:3.
      ~reference:(Vec3.make 1. 0. (-1.))
  in
  let bias = Kernel.to_bias ~time:(fun () -> 0.) kern in
  let box = Pbc.cubic 20. in
  (* Particle at center+(2,0,-1): displacement from ref = (1,0,0). *)
  let positions = [| Vec3.make 12. 10. 9. |] in
  let acc = Mdsp_ff.Bonded.make_accum 1 in
  let e = bias.Mdsp_md.Force_calc.bias_compute box positions acc in
  check_close ~rel:1e-9 "energy k dx^2" 3. e;
  check_close ~rel:1e-9 "restoring force" (-6.)
    acc.Mdsp_ff.Bonded.forces.(0).Vec3.x

let test_flat_bottom_restraint () =
  let kern =
    Restraints.flat_bottom ~name:"fb" ~particles:[| 0 |] ~k:2. ~radius:3.
  in
  let bias = Kernel.to_bias ~time:(fun () -> 0.) kern in
  let box = Pbc.cubic 20. in
  (* Inside the bubble: no force, no energy. *)
  let acc = Mdsp_ff.Bonded.make_accum 1 in
  let e_in =
    bias.Mdsp_md.Force_calc.bias_compute box [| Vec3.make 11. 10. 10. |] acc
  in
  check_true "inside free" (abs_float e_in < 1e-8);
  check_true "inside no force" (Vec3.norm acc.Mdsp_ff.Bonded.forces.(0) < 1e-6);
  (* Outside at r=5: E = k (r - r0)^2 = 2 * 4 = 8, force points inward. *)
  let acc2 = Mdsp_ff.Bonded.make_accum 1 in
  let e_out =
    bias.Mdsp_md.Force_calc.bias_compute box [| Vec3.make 15. 10. 10. |] acc2
  in
  check_close ~rel:1e-6 "wall energy" 8. e_out;
  check_true "wall pushes inward" (acc2.Mdsp_ff.Bonded.forces.(0).Vec3.x < 0.)

let test_distance_restraint () =
  let bias = Restraints.distance ~name:"dr" ~i:0 ~j:1 ~k:10. ~target:2. in
  let box = Pbc.cubic 20. in
  let positions = [| Vec3.make 10. 10. 10.; Vec3.make 13. 10. 10. |] in
  let acc = Mdsp_ff.Bonded.make_accum 2 in
  let e = bias.Mdsp_md.Force_calc.bias_compute box positions acc in
  (* (3 - 2)^2 * 10 *)
  check_close ~rel:1e-9 "energy" 10. e;
  check_true "attractive"
    (acc.Mdsp_ff.Bonded.forces.(0).Vec3.x > 0.
    && acc.Mdsp_ff.Bonded.forces.(1).Vec3.x < 0.);
  check_true "Newton pairwise"
    (Vec3.equal_eps ~eps:1e-9 acc.Mdsp_ff.Bonded.forces.(0)
       (Vec3.neg acc.Mdsp_ff.Bonded.forces.(1)))

let prop_random_polynomials_differentiate =
  (* Random polynomial energies in x, y, z: symbolic = numeric. *)
  let gen =
    QCheck.(
      quad (float_range (-2.) 2.) (float_range (-2.) 2.) (float_range (-2.) 2.)
        (int_range 1 3))
  in
  qtest "random polynomial derivatives" ~count:50 gen
    (fun (a, b, cc, p) ->
      let e =
        (c a * Pow_int (X, p) * Y) + (c b * sq Y * Z) + (c cc * Pow_int (Z, p))
      in
      let pos = Vec3.make 0.9 (-1.1) 0.6 in
      List.for_all
        (fun axis ->
          let analytic = eval_at (simplify (diff e axis)) pos in
          let numeric = numeric_diff e axis pos in
          abs_float (analytic -. numeric)
          <= Float.max (1e-4 *. abs_float numeric) 1e-5)
        [ `X; `Y; `Z ])

let () =
  Alcotest.run "mdsp_core_kernel"
    [
      ( "differentiation",
        [
          Alcotest.test_case "polynomial" `Quick test_diff_polynomial;
          Alcotest.test_case "transcendentals" `Quick
            test_diff_transcendentals;
          Alcotest.test_case "min/max smoothing" `Quick
            test_diff_min_max_smoothed;
          prop_random_polynomials_differentiate;
        ] );
      ( "compiler",
        [
          Alcotest.test_case "constant folding" `Quick
            test_simplify_constant_folding;
          Alcotest.test_case "op counting" `Quick test_expr_ops_counts;
          Alcotest.test_case "rejects velocity" `Quick
            test_kernel_create_rejects_velocity;
          Alcotest.test_case "rejects unbound param" `Quick
            test_kernel_create_rejects_unbound_param;
          Alcotest.test_case "parameters" `Quick test_kernel_params;
          Alcotest.test_case "flex cost" `Quick test_ops_and_flex_cost;
          Alcotest.test_case "aux and time leaves" `Quick
            test_kernel_aux_and_time_leaves;
          Alcotest.test_case "negative power" `Quick test_negative_power;
        ] );
      ( "bias",
        [
          Alcotest.test_case "forces match numeric" `Quick
            test_kernel_bias_forces_match_numeric;
          Alcotest.test_case "time dependence" `Quick
            test_kernel_time_dependence;
        ] );
      ( "restraints",
        [
          Alcotest.test_case "position" `Quick test_position_restraint;
          Alcotest.test_case "flat bottom" `Quick test_flat_bottom_restraint;
          Alcotest.test_case "distance" `Quick test_distance_restraint;
        ] );
    ]
