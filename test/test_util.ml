(* Unit and property tests for Mdsp_util: vectors, PBC, RNG, fixed point,
   polynomials, statistics, histograms, special functions. *)

open Mdsp_util
open Testsupport

let vec_gen =
  QCheck.(
    map
      (fun (x, y, z) -> Vec3.make x y z)
      (triple (float_range (-100.) 100.) (float_range (-100.) 100.)
         (float_range (-100.) 100.)))

(* --- Vec3 --- *)

let test_vec_basic () =
  let a = Vec3.make 1. 2. 3. and b = Vec3.make 4. (-5.) 6. in
  check_float "dot" (1. *. 4. +. (2. *. -5.) +. (3. *. 6.)) (Vec3.dot a b);
  check_float "norm2" 14. (Vec3.norm2 a);
  check_float "dist" (Vec3.norm (Vec3.sub a b)) (Vec3.dist a b);
  let c = Vec3.cross (Vec3.make 1. 0. 0.) (Vec3.make 0. 1. 0.) in
  check_true "cross z" (Vec3.equal_eps ~eps:1e-12 c (Vec3.make 0. 0. 1.))

let test_vec_angle () =
  check_float ~eps:1e-9 "right angle" (Float.pi /. 2.)
    (Vec3.angle (Vec3.make 1. 0. 0.) (Vec3.make 0. 3. 0.));
  check_float ~eps:1e-6 "parallel" 0.
    (Vec3.angle (Vec3.make 1. 1. 0.) (Vec3.make 2. 2. 0.));
  check_float ~eps:1e-6 "antiparallel" Float.pi
    (Vec3.angle (Vec3.make 1. 0. 0.) (Vec3.make (-2.) 0. 0.))

let test_vec_normalize_zero () =
  Alcotest.check_raises "zero vector"
    (Invalid_argument "Vec3.normalize: zero vector") (fun () ->
      ignore (Vec3.normalize Vec3.zero))

let test_axpy () =
  let r = Vec3.axpy 2. (Vec3.make 1. 1. 1.) (Vec3.make 0. 1. 2.) in
  check_true "axpy" (Vec3.equal_eps ~eps:1e-12 r (Vec3.make 2. 3. 4.))

let prop_cross_orthogonal =
  qtest "cross product orthogonal to operands"
    QCheck.(pair vec_gen vec_gen)
    (fun (a, b) ->
      let c = Vec3.cross a b in
      let scale = Float.max 1. (Vec3.norm a *. Vec3.norm b) in
      abs_float (Vec3.dot c a) /. scale < 1e-9
      && abs_float (Vec3.dot c b) /. scale < 1e-9)

let prop_triangle_inequality =
  qtest "triangle inequality"
    QCheck.(pair vec_gen vec_gen)
    (fun (a, b) ->
      Vec3.norm (Vec3.add a b) <= Vec3.norm a +. Vec3.norm b +. 1e-9)

let prop_dot_bilinear =
  qtest "dot product bilinearity"
    QCheck.(triple vec_gen vec_gen (float_range (-10.) 10.))
    (fun (a, b, s) ->
      let lhs = Vec3.dot (Vec3.scale s a) b in
      let rhs = s *. Vec3.dot a b in
      abs_float (lhs -. rhs) <= 1e-6 *. Float.max 1. (abs_float rhs))

(* --- Pbc --- *)

let test_pbc_wrap () =
  let b = Pbc.cubic 10. in
  let w = Pbc.wrap b (Vec3.make 12. (-3.) 10.) in
  check_float "x" 2. w.Vec3.x;
  check_float "y" 7. w.Vec3.y;
  check_float "z" 0. w.Vec3.z

let test_pbc_min_image () =
  let b = Pbc.cubic 10. in
  let d = Pbc.min_image b (Vec3.make 9.5 0. 0.) (Vec3.make 0.5 0. 0.) in
  check_float ~eps:1e-12 "wraps across boundary" (-1.) d.Vec3.x

let test_pbc_volume_scale () =
  let b = Pbc.make ~lx:2. ~ly:3. ~lz:4. in
  check_float "volume" 24. (Pbc.volume b);
  check_float "scaled volume" (24. *. 8.) (Pbc.volume (Pbc.scale b 2.));
  check_float "min edge" 2. (Pbc.min_edge b)

let test_pbc_fractional_roundtrip () =
  let b = Pbc.make ~lx:7. ~ly:11. ~lz:13. in
  let p = Vec3.make 3.5 10.9 0.1 in
  let f = Pbc.to_fractional b p in
  let q = Pbc.of_fractional b f in
  check_true "roundtrip" (Vec3.equal_eps ~eps:1e-9 p q)

let prop_min_image_symmetric =
  qtest "min image antisymmetric"
    QCheck.(pair vec_gen vec_gen)
    (fun (a, b) ->
      let box = Pbc.cubic 50. in
      let d1 = Pbc.min_image box a b in
      let d2 = Pbc.min_image box b a in
      Vec3.equal_eps ~eps:1e-9 d1 (Vec3.neg d2))

let prop_min_image_within_half_box =
  qtest "min image components within half box"
    QCheck.(pair vec_gen vec_gen)
    (fun (a, b) ->
      let box = Pbc.cubic 20. in
      let d = Pbc.min_image box a b in
      abs_float d.Vec3.x <= 10. +. 1e-9
      && abs_float d.Vec3.y <= 10. +. 1e-9
      && abs_float d.Vec3.z <= 10. +. 1e-9)

let prop_wrap_idempotent =
  qtest "wrap idempotent" vec_gen (fun p ->
      let box = Pbc.cubic 17. in
      let w1 = Pbc.wrap box p in
      let w2 = Pbc.wrap box w1 in
      Vec3.equal_eps ~eps:1e-9 w1 w2)

(* --- Rng --- *)

let test_rng_determinism () =
  let a = Rng.create 12345 and b = Rng.create 12345 in
  for _ = 1 to 100 do
    check_true "same stream" (Rng.bits64 a = Rng.bits64 b)
  done

let test_rng_uniform_range () =
  let rng = Rng.create 1 in
  for _ = 1 to 10_000 do
    let u = Rng.uniform rng in
    check_true "in [0,1)" (u >= 0. && u < 1.)
  done

let test_rng_uniform_mean () =
  let rng = Rng.create 2 in
  let acc = Stats.Online.create () in
  for _ = 1 to 50_000 do
    Stats.Online.add acc (Rng.uniform rng)
  done;
  check_close ~rel:0.02 "mean 0.5" 0.5 (Stats.Online.mean acc)

let test_rng_gaussian_moments () =
  let rng = Rng.create 3 in
  let acc = Stats.Online.create () in
  for _ = 1 to 100_000 do
    Stats.Online.add acc (Rng.gaussian rng)
  done;
  check_true "mean near 0" (abs_float (Stats.Online.mean acc) < 0.02);
  check_close ~rel:0.03 "variance 1" 1. (Stats.Online.variance acc)

let test_rng_int_bounds () =
  let rng = Rng.create 4 in
  let seen = Array.make 7 0 in
  for _ = 1 to 7000 do
    let k = Rng.int rng 7 in
    check_true "bound" (k >= 0 && k < 7);
    seen.(k) <- seen.(k) + 1
  done;
  Array.iter (fun c -> check_true "all buckets populated" (c > 700)) seen

let test_rng_int_invalid () =
  let rng = Rng.create 5 in
  Alcotest.check_raises "nonpositive bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let test_rng_split_decorrelated () =
  let parent = Rng.create 6 in
  let child = Rng.split parent in
  (* Streams should differ immediately. *)
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 parent = Rng.bits64 child then incr same
  done;
  check_true "streams differ" (!same = 0)

let test_rng_unit_vector () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    check_close ~rel:1e-9 "unit norm" 1. (Vec3.norm (Rng.unit_vector rng))
  done

let test_rng_shuffle_permutation () =
  let rng = Rng.create 8 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check_true "is a permutation" (sorted = Array.init 50 Fun.id);
  check_true "actually shuffled" (a <> Array.init 50 Fun.id)

(* --- Fixed --- *)

let test_fixed_roundtrip () =
  let fmt = Fixed.format ~frac_bits:16 ~total_bits:32 in
  let xs = [ 0.; 1.; -1.; 0.5; 123.456; -99.0001 ] in
  List.iter
    (fun x ->
      let q = Fixed.quantize fmt x in
      check_true "roundtrip within resolution"
        (abs_float (q -. x) <= Fixed.quantization_error fmt +. 1e-12))
    xs

let test_fixed_saturation () =
  let fmt = Fixed.format ~frac_bits:8 ~total_bits:16 in
  let max_v = Fixed.max_value fmt in
  check_true "saturates" (Fixed.quantize fmt 1e9 <= max_v);
  Alcotest.check_raises "overflow raises" (Fixed.Overflow 1e9) (fun () ->
      ignore (Fixed.of_float_exn fmt 1e9))

let test_fixed_sum_order_independent () =
  let fmt = Fixed.force_format in
  let rng = Rng.create 9 in
  let xs = Array.init 500 (fun _ -> Rng.uniform_in rng (-100.) 100.) in
  let s1 = Fixed.sum fmt xs in
  let rev = Array.copy xs in
  let n = Array.length rev in
  for i = 0 to (n / 2) - 1 do
    let t = rev.(i) in
    rev.(i) <- rev.(n - 1 - i);
    rev.(n - 1 - i) <- t
  done;
  let s2 = Fixed.sum fmt rev in
  check_float "bitwise equal sums" s1 s2;
  Rng.shuffle rng rev;
  check_float "shuffled equal" s1 (Fixed.sum fmt rev)

let prop_fixed_add_exact =
  qtest "fixed add is exact on representable values"
    QCheck.(pair (float_range (-1000.) 1000.) (float_range (-1000.) 1000.))
    (fun (a, b) ->
      let fmt = Fixed.format ~frac_bits:20 ~total_bits:52 in
      let qa = Fixed.quantize fmt a and qb = Fixed.quantize fmt b in
      let s =
        Fixed.to_float fmt
          (Fixed.add fmt (Fixed.of_float fmt a) (Fixed.of_float fmt b))
      in
      abs_float (s -. (qa +. qb)) < 1e-12)

let test_fixed_bad_format () =
  Alcotest.check_raises "too wide"
    (Invalid_argument "Fixed.format: total_bits must be in [2, 63]")
    (fun () -> ignore (Fixed.format ~frac_bits:10 ~total_bits:64))

(* Random formats with 4-24 fractional and 4-20 integer bits — wide enough
   to be useful, narrow enough that the saturating paths get exercised. *)
let fixed_fmt_gen =
  QCheck.(
    map
      (fun (frac, extra) -> Fixed.format ~frac_bits:frac ~total_bits:(frac + extra))
      (pair (int_range 4 24) (int_range 4 20)))

let prop_fixed_roundtrip_error =
  qtest "round-trip error is at most the quantization error"
    QCheck.(pair fixed_fmt_gen (float_range (-1000.) 1000.))
    (fun (fmt, x) ->
      (* out-of-range values clamp (covered by the saturation property) *)
      abs_float x >= Fixed.max_value fmt
      || abs_float (Fixed.quantize fmt x -. x)
         <= Fixed.quantization_error fmt +. 1e-12)

let prop_fixed_of_float_saturates =
  qtest "of_float clamps out-of-range values to the format extremes"
    QCheck.(pair fixed_fmt_gen (float_range 1.5 1e6))
    (fun (fmt, mult) ->
      let m = Fixed.max_value fmt in
      let hi, sat_hi = Fixed.of_float_checked fmt (m *. mult) in
      let lo, sat_lo = Fixed.of_float_checked fmt (-.m *. mult) in
      sat_hi && sat_lo
      && Fixed.to_float fmt hi = m
      && Fixed.to_float fmt lo <= -.m
      && not (snd (Fixed.of_float_checked fmt (m /. 2.))))

let prop_fixed_sum_order_independent =
  qtest "fixed sum is independent of accumulation order"
    QCheck.(pair (list_of_size (Gen.int_range 0 64) (float_range (-50.) 50.))
              (int_range 0 1000))
    (fun (xs, seed) ->
      let fmt = Fixed.force_format in
      let a = Array.of_list xs in
      let b = Array.copy a in
      Rng.shuffle (Rng.create seed) b;
      Fixed.sum fmt a = Fixed.sum fmt b)

let prop_fixed_add_monotone =
  (* Saturating addition keeps order: clamping both ends of the range
     cannot swap a <= b. The narrow format makes the clamp actually fire. *)
  qtest "saturating add is monotone under clamping"
    QCheck.(triple (float_range (-1e5) 1e5) (float_range (-1e5) 1e5)
              (float_range (-1e5) 1e5))
    (fun (c, a, b) ->
      let fmt = Fixed.format ~frac_bits:8 ~total_bits:20 in
      let a, b = if a <= b then (a, b) else (b, a) in
      let qc = Fixed.of_float fmt c in
      let r1 = Fixed.add fmt qc (Fixed.of_float fmt a) in
      let r2 = Fixed.add fmt qc (Fixed.of_float fmt b) in
      Int64.compare r1 r2 <= 0)

let prop_fixed_add_checked_flag =
  qtest "add_checked flags exactly the unrepresentable sums"
    QCheck.(pair (float_range (-5e3) 5e3) (float_range (-5e3) 5e3))
    (fun (a, b) ->
      let fmt = Fixed.format ~frac_bits:8 ~total_bits:20 in
      let qa = Fixed.of_float fmt a and qb = Fixed.of_float fmt b in
      let s, sat = Fixed.add_checked fmt qa qb in
      let exact = Fixed.to_float fmt qa +. Fixed.to_float fmt qb in
      if sat then abs_float exact > Fixed.max_value fmt
      else Fixed.to_float fmt s = exact)

(* --- Poly --- *)

let test_poly_eval () =
  (* 2 + 3x + x^2 at x = 2 -> 12 *)
  check_float "horner" 12. (Poly.eval [| 2.; 3.; 1. |] 2.)

let test_poly_derivative () =
  let d = Poly.derivative [| 5.; 2.; 3. |] in
  check_float "c0" 2. d.(0);
  check_float "c1" 6. d.(1)

let test_poly_hermite_matches_endpoints () =
  let p = Poly.hermite_cubic ~x0:1. ~x1:3. ~f0:2. ~f1:(-1.) ~d0:0.5 ~d1:(-2.) in
  let d = Poly.derivative p in
  check_float ~eps:1e-9 "f(x0)" 2. (Poly.eval p 0.);
  check_float ~eps:1e-9 "f(x1)" (-1.) (Poly.eval p 2.);
  check_float ~eps:1e-9 "f'(x0)" 0.5 (Poly.eval d 0.);
  check_float ~eps:1e-9 "f'(x1)" (-2.) (Poly.eval d 2.)

let test_poly_solve () =
  let a = [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let x = Poly.solve a [| 5.; 10. |] in
  check_float ~eps:1e-9 "x0" 1. x.(0);
  check_float ~eps:1e-9 "x1" 3. x.(1)

let test_poly_solve_singular () =
  let a = [| [| 1.; 1. |]; [| 2.; 2. |] |] in
  Alcotest.check_raises "singular" (Failure "Poly.solve: singular matrix")
    (fun () -> ignore (Poly.solve a [| 1.; 2. |]))

let test_poly_least_squares_exact () =
  (* Quadratic data should be recovered exactly. *)
  let xs = Array.init 20 (fun i -> float_of_int i /. 4.) in
  let ys = Array.map (fun x -> 1. -. (2. *. x) +. (0.5 *. x *. x)) xs in
  let c = Poly.least_squares ~degree:2 xs ys in
  check_float ~eps:1e-8 "c0" 1. c.(0);
  check_float ~eps:1e-8 "c1" (-2.) c.(1);
  check_float ~eps:1e-8 "c2" 0.5 c.(2)

let test_chebyshev_nodes () =
  let nodes = Poly.chebyshev_nodes ~a:(-1.) ~b:1. ~n:5 in
  Array.iter (fun x -> check_true "in range" (x >= -1. && x <= 1.)) nodes;
  check_true "descending order distinct"
    (Array.length (Array.of_seq (Seq.map Fun.id (Array.to_seq nodes))) = 5)

(* --- Stats --- *)

let test_online_matches_batch () =
  let rng = Rng.create 10 in
  let xs = Array.init 1000 (fun _ -> Rng.gaussian rng) in
  let o = Stats.Online.create () in
  Array.iter (Stats.Online.add o) xs;
  check_close ~rel:1e-9 "mean" (Stats.mean xs) (Stats.Online.mean o);
  check_close ~rel:1e-9 "variance" (Stats.variance xs)
    (Stats.Online.variance o)

let test_autocorrelation_white_noise () =
  let rng = Rng.create 11 in
  let xs = Array.init 20_000 (fun _ -> Rng.gaussian rng) in
  check_float ~eps:1e-12 "lag 0" 1. (Stats.autocorrelation xs 0);
  check_true "lag 5 near zero" (abs_float (Stats.autocorrelation xs 5) < 0.03)

let test_autocorrelation_ar1 () =
  (* AR(1) with coefficient phi: autocorrelation at lag k is phi^k. *)
  let rng = Rng.create 12 in
  let phi = 0.8 in
  let n = 100_000 in
  let xs = Array.make n 0. in
  for i = 1 to n - 1 do
    xs.(i) <- (phi *. xs.(i - 1)) +. Rng.gaussian rng
  done;
  check_close ~rel:0.05 "lag 1" phi (Stats.autocorrelation xs 1);
  check_close ~rel:0.1 "lag 3" (phi ** 3.) (Stats.autocorrelation xs 3);
  let tau = Stats.integrated_autocorrelation_time xs in
  (* tau = (1 + phi) / (1 - phi) = 9 for AR(1). *)
  check_close ~rel:0.2 "integrated act" 9. tau

let test_block_standard_error () =
  let rng = Rng.create 13 in
  let xs = Array.init 10_000 (fun _ -> Rng.gaussian rng) in
  let se = Stats.block_standard_error ~block:100 xs in
  (* Independent samples: SE ~ 1/sqrt(N). *)
  check_close ~rel:0.25 "standard error" 0.01 se

let test_linear_fit () =
  let xs = Array.init 50 float_of_int in
  let ys = Array.map (fun x -> 3. +. (2.5 *. x)) xs in
  let slope, intercept = Stats.linear_fit xs ys in
  check_float ~eps:1e-9 "slope" 2.5 slope;
  check_float ~eps:1e-7 "intercept" 3. intercept

let test_max_relative_drift () =
  check_float ~eps:1e-12 "drift" 0.1
    (Stats.max_relative_drift [| 10.; 10.5; 11.; 10.2 |])

(* --- Histogram --- *)

let test_histogram_basic () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:10 in
  Histogram.add h 0.5;
  Histogram.add h 0.7;
  Histogram.add h 9.99;
  Histogram.add h 10.0;
  (* out of range *)
  check_float "total" 3. (Histogram.total h);
  Alcotest.(check int) "oor" 1 (Histogram.out_of_range h);
  check_float "bin 0" 2. (Histogram.counts h).(0);
  check_float "bin 9" 1. (Histogram.counts h).(9);
  check_float "center 0" 0.5 (Histogram.center h 0)

let test_histogram_density_normalized () =
  let h = Histogram.create ~lo:(-1.) ~hi:1. ~bins:20 in
  let rng = Rng.create 14 in
  for _ = 1 to 10_000 do
    Histogram.add h (Rng.uniform_in rng (-1.) 1.)
  done;
  let d = Histogram.density h in
  let integral =
    Array.fold_left (fun a x -> a +. (x *. Histogram.bin_width h)) 0. d
  in
  check_close ~rel:1e-9 "integrates to 1" 1. integral

let test_h2 () =
  let h = Histogram.H2.create ~xlo:0. ~xhi:2. ~xbins:2 ~ylo:0. ~yhi:2. ~ybins:2 in
  Histogram.H2.add h 0.5 0.5;
  Histogram.H2.add h 1.5 0.5;
  Histogram.H2.add h 1.5 1.5;
  let c = Histogram.H2.counts h in
  check_float "00" 1. c.(0).(0);
  check_float "10" 1. c.(1).(0);
  check_float "11" 1. c.(1).(1);
  check_float "xcenter" 0.5 (Histogram.H2.xcenter h 0)

(* --- Specfun --- *)

let test_erfc_values () =
  (* Reference values. *)
  check_float ~eps:2e-7 "erfc 0" 1. (Specfun.erfc 0.);
  check_float ~eps:2e-7 "erfc 1" 0.157299207 (Specfun.erfc 1.);
  check_float ~eps:2e-7 "erfc 2" 0.004677735 (Specfun.erfc 2.);
  check_float ~eps:2e-7 "erfc -1" (2. -. 0.157299207) (Specfun.erfc (-1.))

let test_erf_complement () =
  List.iter
    (fun x ->
      check_float ~eps:1e-12 "erf + erfc = 1" 1.
        (Specfun.erf x +. Specfun.erfc x))
    [ -2.; -0.3; 0.; 0.7; 1.9 ]

let test_gamma_ln () =
  (* Gamma(5) = 24. *)
  check_close ~rel:1e-8 "ln Gamma(5)" (log 24.) (Specfun.gamma_ln 5.);
  check_close ~rel:1e-7 "ln Gamma(0.5)" (log (sqrt Float.pi))
    (Specfun.gamma_ln 0.5)

let test_sinc () =
  check_float ~eps:1e-12 "sinc 0" 1. (Specfun.sinc 0.);
  check_float ~eps:1e-9 "sinc pi" 0. (Specfun.sinc Float.pi)

(* --- Units --- *)

let test_units () =
  check_close ~rel:1e-6 "fs roundtrip" 7.5 (Units.to_fs (Units.fs 7.5));
  check_close ~rel:1e-4 "kT at 300K" 0.59616 (Units.kt 300.);
  check_close ~rel:1e-3 "ns conversion" 1e-6 (Units.to_ns (Units.fs 1.))

(* --- Table_text --- *)

let test_table_text_render () =
  let t =
    Table_text.create ~title:"T" ~columns:[ ("a", Table_text.Left); ("b", Table_text.Right) ]
  in
  Table_text.row t [ "x"; "1" ];
  Table_text.row t [ "yy"; "22" ];
  let s = Table_text.render t in
  check_true "has title" (String.length s > 0 && s.[0] = 'T');
  check_true "contains row" (String.length s > 10)

let test_table_text_mismatch () =
  let t = Table_text.create ~title:"T" ~columns:[ ("a", Table_text.Left) ] in
  Alcotest.check_raises "cell count"
    (Invalid_argument "Table_text.row: cell count mismatch") (fun () ->
      Table_text.row t [ "x"; "y" ])

let () =
  Alcotest.run "mdsp_util"
    [
      ( "vec3",
        [
          Alcotest.test_case "basics" `Quick test_vec_basic;
          Alcotest.test_case "angle" `Quick test_vec_angle;
          Alcotest.test_case "normalize zero" `Quick test_vec_normalize_zero;
          Alcotest.test_case "axpy" `Quick test_axpy;
          prop_cross_orthogonal;
          prop_triangle_inequality;
          prop_dot_bilinear;
        ] );
      ( "pbc",
        [
          Alcotest.test_case "wrap" `Quick test_pbc_wrap;
          Alcotest.test_case "min image" `Quick test_pbc_min_image;
          Alcotest.test_case "volume/scale" `Quick test_pbc_volume_scale;
          Alcotest.test_case "fractional roundtrip" `Quick
            test_pbc_fractional_roundtrip;
          prop_min_image_symmetric;
          prop_min_image_within_half_box;
          prop_wrap_idempotent;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "uniform range" `Quick test_rng_uniform_range;
          Alcotest.test_case "uniform mean" `Quick test_rng_uniform_mean;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int invalid" `Quick test_rng_int_invalid;
          Alcotest.test_case "split decorrelated" `Quick
            test_rng_split_decorrelated;
          Alcotest.test_case "unit vector" `Quick test_rng_unit_vector;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutation;
        ] );
      ( "fixed",
        [
          Alcotest.test_case "roundtrip" `Quick test_fixed_roundtrip;
          Alcotest.test_case "saturation" `Quick test_fixed_saturation;
          Alcotest.test_case "order independence" `Quick
            test_fixed_sum_order_independent;
          Alcotest.test_case "bad format" `Quick test_fixed_bad_format;
          prop_fixed_add_exact;
          prop_fixed_roundtrip_error;
          prop_fixed_of_float_saturates;
          prop_fixed_sum_order_independent;
          prop_fixed_add_monotone;
          prop_fixed_add_checked_flag;
        ] );
      ( "poly",
        [
          Alcotest.test_case "eval" `Quick test_poly_eval;
          Alcotest.test_case "derivative" `Quick test_poly_derivative;
          Alcotest.test_case "hermite endpoints" `Quick
            test_poly_hermite_matches_endpoints;
          Alcotest.test_case "solve" `Quick test_poly_solve;
          Alcotest.test_case "solve singular" `Quick test_poly_solve_singular;
          Alcotest.test_case "least squares exact" `Quick
            test_poly_least_squares_exact;
          Alcotest.test_case "chebyshev nodes" `Quick test_chebyshev_nodes;
        ] );
      ( "stats",
        [
          Alcotest.test_case "online vs batch" `Quick test_online_matches_batch;
          Alcotest.test_case "autocorr white noise" `Quick
            test_autocorrelation_white_noise;
          Alcotest.test_case "autocorr AR(1)" `Quick test_autocorrelation_ar1;
          Alcotest.test_case "block standard error" `Quick
            test_block_standard_error;
          Alcotest.test_case "linear fit" `Quick test_linear_fit;
          Alcotest.test_case "max relative drift" `Quick
            test_max_relative_drift;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "basic" `Quick test_histogram_basic;
          Alcotest.test_case "density normalized" `Quick
            test_histogram_density_normalized;
          Alcotest.test_case "2d" `Quick test_h2;
        ] );
      ( "specfun",
        [
          Alcotest.test_case "erfc values" `Quick test_erfc_values;
          Alcotest.test_case "erf complement" `Quick test_erf_complement;
          Alcotest.test_case "gamma_ln" `Quick test_gamma_ln;
          Alcotest.test_case "sinc" `Quick test_sinc;
        ] );
      ("units", [ Alcotest.test_case "conversions" `Quick test_units ]);
      ( "table_text",
        [
          Alcotest.test_case "render" `Quick test_table_text_render;
          Alcotest.test_case "mismatch" `Quick test_table_text_mismatch;
        ] );
    ]
