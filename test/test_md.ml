(* Tests for Mdsp_md: state, constraints, force aggregation, integrators,
   thermostats, barostats, RESPA. *)

open Mdsp_util
open Mdsp_md
open Testsupport
module E = Engine

(* --- State --- *)

let test_state_kinetic_temperature () =
  let st =
    State.create
      ~positions:[| Vec3.zero; Vec3.make 1. 0. 0. |]
      ~masses:[| 2.; 4. |] ~box:(Pbc.cubic 10.)
  in
  st.State.velocities.(0) <- Vec3.make 3. 0. 0.;
  st.State.velocities.(1) <- Vec3.make 0. 1. 0.;
  (* KE = 0.5*2*9 + 0.5*4*1 = 11 *)
  check_float ~eps:1e-12 "kinetic" 11. (State.kinetic_energy st);
  check_close ~rel:1e-9 "temperature" (22. /. (3. *. Units.k_b))
    (State.temperature st ~dof:3)

let test_state_thermalize_temperature () =
  let n = 2000 in
  let st =
    State.create
      ~positions:(Array.make n Vec3.zero)
      ~masses:(Array.make n 12.) ~box:(Pbc.cubic 100.)
  in
  State.thermalize st (Rng.create 71) ~temp:300.;
  let t = State.temperature st ~dof:((3 * n) - 3) in
  check_close ~rel:0.05 "thermalized temperature" 300. t;
  (* COM at rest. *)
  let p = ref Vec3.zero in
  Array.iteri
    (fun i v -> p := Vec3.add !p (Vec3.scale st.State.masses.(i) v))
    st.State.velocities;
  check_true "zero total momentum" (Vec3.norm !p < 1e-9)

let test_state_copy_blit () =
  let st =
    State.create
      ~positions:[| Vec3.make 1. 2. 3. |]
      ~masses:[| 1. |] ~box:(Pbc.cubic 5.)
  in
  let c = State.copy st in
  c.State.positions.(0) <- Vec3.zero;
  check_true "copy is deep"
    (Vec3.equal_eps ~eps:0. st.State.positions.(0) (Vec3.make 1. 2. 3.));
  State.blit ~src:c ~dst:st;
  check_true "blit copies" (Vec3.norm st.State.positions.(0) = 0.)

let test_scale_velocities () =
  let st =
    State.create ~positions:[| Vec3.zero |] ~masses:[| 1. |]
      ~box:(Pbc.cubic 5.)
  in
  st.State.velocities.(0) <- Vec3.make 1. 2. 3.;
  State.scale_velocities st 2.;
  check_true "scaled"
    (Vec3.equal_eps ~eps:1e-12 st.State.velocities.(0) (Vec3.make 2. 4. 6.))

(* --- Constraints --- *)

let water_topology () =
  let b = Mdsp_ff.Topology.Builder.create () in
  Mdsp_ff.Topology.Builder.set_lj_types b [| Mdsp_ff.Water.o_lj; (0., 1.) |];
  let rng = Rng.create 72 in
  let _, pos =
    Mdsp_ff.Water.add_molecule b ~o_type:0 ~h_type:1
      ~center:(Vec3.make 5. 5. 5.) ~orient:rng
  in
  (Mdsp_ff.Topology.Builder.finish b, pos)

let test_shake_restores_constraints () =
  let topo, pos = water_topology () in
  let cons = Constraints.create topo in
  let box = Pbc.cubic 10. in
  let masses = Mdsp_ff.Topology.masses topo in
  (* Distort the molecule and let SHAKE repair it using the undistorted
     geometry as the reference. *)
  let distorted = Array.copy pos in
  distorted.(1) <- Vec3.add distorted.(1) (Vec3.make 0.1 (-0.05) 0.02);
  distorted.(2) <- Vec3.add distorted.(2) (Vec3.make (-0.03) 0.08 0.01);
  Constraints.shake cons box ~prev:pos distorted ~masses;
  check_true "constraints satisfied"
    (Constraints.max_violation cons box distorted < 1e-7)

let test_rattle_removes_radial_velocity () =
  let topo, pos = water_topology () in
  let cons = Constraints.create topo in
  let box = Pbc.cubic 10. in
  let masses = Mdsp_ff.Topology.masses topo in
  let rng = Rng.create 73 in
  let vel = Array.init 3 (fun _ -> Rng.gaussian_vec rng) in
  Constraints.rattle cons box pos vel ~masses;
  (* After RATTLE, relative velocity along each constraint is zero. *)
  List.iter
    (fun (i, j, _) ->
      let rij = Pbc.min_image box pos.(i) pos.(j) in
      let vij = Vec3.sub vel.(i) vel.(j) in
      check_true "no radial relative velocity"
        (abs_float (Vec3.dot rij vij) < 1e-6))
    [ (0, 1, ()); (0, 2, ()); (1, 2, ()) ]

let test_constraints_none () =
  Alcotest.(check int) "no constraints" 0 (Constraints.count Constraints.none)

let test_shake_unconverged_structured () =
  (* Three constraints violating the triangle inequality (1 + 1 < 3) can
     never all hold, so SHAKE must give up with the structured payload —
     naming the fused cluster — rather than silently returning broken
     geometry. *)
  let b = Mdsp_ff.Topology.Builder.create () in
  Mdsp_ff.Topology.Builder.set_lj_types b [| (0.1, 1.0) |];
  for _ = 1 to 3 do
    ignore
      (Mdsp_ff.Topology.Builder.add_atom b ~mass:1. ~charge:0. ~type_id:0
         ~name:"X")
  done;
  Mdsp_ff.Topology.Builder.add_constraint b ~i:0 ~j:1 ~dist:1.;
  Mdsp_ff.Topology.Builder.add_constraint b ~i:1 ~j:2 ~dist:1.;
  Mdsp_ff.Topology.Builder.add_constraint b ~i:0 ~j:2 ~dist:3.;
  let topo = Mdsp_ff.Topology.Builder.finish b in
  let cons = Constraints.create ~max_iter:25 topo in
  Alcotest.(check int) "one fused cluster" 1 (Constraints.n_clusters cons);
  let box = Pbc.cubic 50. in
  let masses = Mdsp_ff.Topology.masses topo in
  let pos =
    [| Vec3.make 0. 0. 0.; Vec3.make 1. 0. 0.; Vec3.make 2. 0. 0. |]
  in
  let prev = Array.copy pos in
  match Constraints.shake cons box ~prev pos ~masses with
  | () -> Alcotest.fail "expected Constraints.Unconverged"
  | exception Constraints.Unconverged u ->
      Alcotest.(check string) "solver named" "SHAKE" u.Constraints.uc_solver;
      Alcotest.(check int) "cluster id" 0 u.Constraints.uc_cluster;
      Alcotest.(check int) "first constraint" 0
        u.Constraints.uc_first_constraint;
      Alcotest.(check int) "iteration budget spent" 25 u.Constraints.uc_iters;
      check_true "residual violation reported"
        (u.Constraints.uc_max_violation > 0.1);
      let msg = Constraints.unconverged_message u in
      check_true "message names the cluster"
        (let sub = "cluster" in
         let n = String.length sub and m = String.length msg in
         let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
         go 0)

(* --- Engines on the LJ fluid --- *)

let test_nve_energy_conservation () =
  let eng = lj_engine ~n:108 ~equil:1000 () in
  (* Switch to NVE by building a fresh engine at the equilibrated state. *)
  let st = E.state eng in
  let sys = Mdsp_workload.Workloads.lj_fluid ~n:108 () in
  let sys = { sys with Mdsp_workload.Workloads.positions = Array.copy st.State.positions } in
  let cfg = { E.default_config with dt_fs = 2.0; temperature = 120. } in
  let nve = Mdsp_workload.Workloads.make_engine ~config:cfg sys in
  Array.blit st.State.velocities 0 (E.state nve).State.velocities 0 108;
  E.refresh_forces nve;
  let e0 = E.total_energy nve in
  let worst = ref 0. in
  for _ = 1 to 10 do
    E.run nve 100;
    worst :=
      Float.max !worst (abs_float (E.total_energy nve -. e0) /. abs_float e0)
  done;
  check_true
    (Printf.sprintf "NVE drift %.2e < 5e-4 over 2 ps" !worst)
    (!worst < 5e-4)

let test_nve_timestep_scaling () =
  (* Velocity Verlet: energy error should drop ~4x when dt halves. *)
  let drift dt_fs =
    let eng = lj_engine ~n:64 ~equil:500 () in
    let st = E.state eng in
    let sys = Mdsp_workload.Workloads.lj_fluid ~n:64 () in
    let sys = { sys with Mdsp_workload.Workloads.positions = Array.copy st.State.positions } in
    let cfg = { E.default_config with dt_fs; temperature = 120. } in
    let nve = Mdsp_workload.Workloads.make_engine ~config:cfg sys in
    Array.blit st.State.velocities 0 (E.state nve).State.velocities 0 64;
    E.refresh_forces nve;
    let e0 = E.total_energy nve in
    let acc = Stats.Online.create () in
    for _ = 1 to 200 do
      E.step nve;
      Stats.Online.add acc (abs_float (E.total_energy nve -. e0))
    done;
    Stats.Online.mean acc
  in
  let d4 = drift 4.0 and d2 = drift 2.0 in
  check_true
    (Printf.sprintf "dt scaling: %.2e (4fs) vs %.2e (2fs)" d4 d2)
    (d4 > 2. *. d2)

let test_langevin_temperature () =
  let eng = lj_engine ~n:108 ~temp:120. ~equil:2000 () in
  let acc = Stats.Online.create () in
  for _ = 1 to 2000 do
    E.step eng;
    Stats.Online.add acc (E.temperature eng)
  done;
  check_close ~rel:0.05 "Langevin mean temperature" 120. (Stats.Online.mean acc)

let test_nose_hoover_temperature () =
  let sys = Mdsp_workload.Workloads.lj_fluid ~n:108 () in
  let cfg =
    {
      E.default_config with
      dt_fs = 2.0;
      temperature = 120.;
      thermostat = E.Nose_hoover { tau_fs = 50. };
    }
  in
  let eng = Mdsp_workload.Workloads.make_engine ~config:cfg sys in
  E.run eng 4000;
  let acc = Stats.Online.create () in
  for _ = 1 to 2000 do
    E.step eng;
    Stats.Online.add acc (E.temperature eng)
  done;
  check_close ~rel:0.05 "NHC mean temperature" 120. (Stats.Online.mean acc)

let test_berendsen_temperature () =
  let sys = Mdsp_workload.Workloads.lj_fluid ~n:108 () in
  let cfg =
    {
      E.default_config with
      dt_fs = 2.0;
      temperature = 150.;
      thermostat = E.Berendsen { tau_fs = 100. };
    }
  in
  let eng = Mdsp_workload.Workloads.make_engine ~config:cfg sys in
  E.run eng 3000;
  let acc = Stats.Online.create () in
  for _ = 1 to 1500 do
    E.step eng;
    Stats.Online.add acc (E.temperature eng)
  done;
  check_close ~rel:0.05 "Berendsen mean temperature" 150. (Stats.Online.mean acc)

let test_velocity_distribution_maxwell () =
  (* Under a Langevin thermostat, velocity components should be Gaussian
     with variance kT/m; pool across particles and time for statistics. *)
  let eng = lj_engine ~n:64 ~temp:120. ~equil:2000 () in
  let acc = Stats.Online.create () in
  for _ = 1 to 100 do
    E.run eng 25;
    Array.iter
      (fun v ->
        Stats.Online.add acc v.Vec3.x;
        Stats.Online.add acc v.Vec3.y;
        Stats.Online.add acc v.Vec3.z)
      (E.state eng).State.velocities
  done;
  let kt_over_m = Units.kt 120. /. 39.948 in
  check_close ~rel:0.05 "velocity variance = kT/m" kt_over_m
    (Stats.Online.variance acc);
  (* Langevin dynamics does not conserve momentum, so each snapshot's
     per-atom mean is the COM velocity — an OU walk with std
     sigma/sqrt(64) — and the pooled mean has a standard error near
     0.0125 sigma even with perfectly decorrelated snapshots. Bound at
     4 of those standard errors. *)
  check_true "mean near zero"
    (abs_float (Stats.Online.mean acc) < 0.05 *. sqrt kt_over_m)

let test_com_removal () =
  let sys = Mdsp_workload.Workloads.lj_fluid ~n:64 () in
  let cfg =
    {
      E.default_config with
      dt_fs = 2.0;
      temperature = 120.;
      thermostat = E.Langevin { gamma_fs = 0.02 };
      remove_com_interval = 10;
    }
  in
  let eng = Mdsp_workload.Workloads.make_engine ~config:cfg sys in
  E.run eng 100;
  let st = E.state eng in
  let p = ref Vec3.zero in
  Array.iteri
    (fun i v -> p := Vec3.add !p (Vec3.scale st.State.masses.(i) v))
    st.State.velocities;
  check_true "momentum removed" (Vec3.norm !p < 1e-9)

let test_post_step_hooks () =
  let eng = lj_engine ~n:32 ~equil:10 () in
  let count = ref 0 in
  E.add_post_step eng ~name:"counter" (fun _ -> incr count);
  E.run eng 25;
  Alcotest.(check int) "hook ran each step" 25 !count;
  check_true "hook removal" (E.remove_post_step eng "counter");
  check_true "hook removal idempotent" (not (E.remove_post_step eng "counter"));
  E.run eng 5;
  Alcotest.(check int) "hook no longer runs" 25 !count

let test_berendsen_barostat_relaxes_pressure () =
  (* An over-compressed LJ fluid under a Berendsen barostat should expand
     (volume grows) toward the target pressure. *)
  let sys = Mdsp_workload.Workloads.lj_fluid ~rho_star:1.05 ~n:108 () in
  let cfg =
    {
      E.default_config with
      dt_fs = 2.0;
      temperature = 120.;
      thermostat = E.Langevin { gamma_fs = 0.02 };
      barostat = E.Berendsen_baro { tau_fs = 500.; pressure_atm = 1. };
    }
  in
  let eng = Mdsp_workload.Workloads.make_engine ~config:cfg sys in
  let v0 = Pbc.volume (E.state eng).State.box in
  let p0 = E.pressure_atm eng in
  E.run eng 3000;
  let v1 = Pbc.volume (E.state eng).State.box in
  let p1 = E.pressure_atm eng in
  check_true "initially over-pressurized" (p0 > 1000.);
  check_true "volume expanded" (v1 > v0 *. 1.02);
  check_true "pressure dropped" (p1 < p0 /. 2.)

let test_mc_barostat_runs_and_relaxes () =
  let sys = Mdsp_workload.Workloads.lj_fluid ~rho_star:1.05 ~n:64 () in
  let cfg =
    {
      E.default_config with
      dt_fs = 2.0;
      temperature = 120.;
      thermostat = E.Langevin { gamma_fs = 0.02 };
      barostat =
        E.Monte_carlo_baro { interval = 20; pressure_atm = 1.; max_dlnv = 0.02 };
    }
  in
  let eng = Mdsp_workload.Workloads.make_engine ~config:cfg sys in
  let v0 = Pbc.volume (E.state eng).State.box in
  E.run eng 2000;
  let v1 = Pbc.volume (E.state eng).State.box in
  check_true "volume expanded under MC barostat" (v1 > v0)

let test_respa_energy_and_agreement () =
  (* RESPA with inner bonded steps should track the bead-chain dynamics
     with stable energies. *)
  let sys = Mdsp_workload.Workloads.bead_chain ~n_beads:8 ~n_total:64 () in
  let cfg =
    {
      E.default_config with
      dt_fs = 2.0;
      temperature = 120.;
      thermostat = E.Langevin { gamma_fs = 0.02 };
      respa_inner = Some 4;
    }
  in
  let eng = Mdsp_workload.Workloads.make_engine ~config:cfg sys in
  E.run eng 500;
  check_true "RESPA run stays finite" (Float.is_finite (E.total_energy eng));
  let t = E.temperature eng in
  check_true
    (Printf.sprintf "RESPA temperature sane (%.0f K)" t)
    (t > 30. && t < 400.)

let test_water_constrained_dynamics () =
  let sys = Mdsp_workload.Workloads.water_box ~n_side:3 () in
  let cfg =
    {
      E.default_config with
      dt_fs = 1.0;
      temperature = 300.;
      thermostat = E.Langevin { gamma_fs = 0.02 };
    }
  in
  let eng = Mdsp_workload.Workloads.make_engine ~config:cfg sys in
  E.run eng 500;
  let st = E.state eng in
  check_true "constraints hold during dynamics"
    (Constraints.max_violation (E.constraints eng) st.State.box
       st.State.positions
    < 1e-6);
  check_close ~rel:0.35 "water temperature within range" 300.
    (E.temperature eng)

let test_set_temperature_switches_target () =
  let eng = lj_engine ~n:64 ~temp:100. ~equil:1500 () in
  E.set_temperature eng 200.;
  E.run eng 3000;
  let acc = Stats.Online.create () in
  for _ = 1 to 1500 do
    E.step eng;
    Stats.Online.add acc (E.temperature eng)
  done;
  check_close ~rel:0.08 "thermostat retargeted" 200. (Stats.Online.mean acc)

let test_pressure_virial_ideal_gas_limit () =
  (* A very dilute LJ gas should be close to ideal: P V = N k T. *)
  let sys = Mdsp_workload.Workloads.lj_fluid ~rho_star:0.05 ~n:108 () in
  let cfg =
    {
      E.default_config with
      dt_fs = 4.0;
      temperature = 300.;
      thermostat = E.Langevin { gamma_fs = 0.01 };
    }
  in
  let eng = Mdsp_workload.Workloads.make_engine ~config:cfg sys in
  E.run eng 2000;
  let acc = Stats.Online.create () in
  for _ = 1 to 4000 do
    E.step eng;
    Stats.Online.add acc (E.pressure_atm eng)
  done;
  let v = Pbc.volume (E.state eng).State.box in
  let p_ideal =
    Units.pressure_to_atm (108. *. Units.kt 300. /. v)
  in
  check_close ~rel:0.15 "dilute gas near ideal" p_ideal (Stats.Online.mean acc)

(* --- Virtual sites --- *)

let test_virtual_site_placement_and_spreading () =
  (* A site at the midpoint of two parents. *)
  let b = Mdsp_ff.Topology.Builder.create () in
  Mdsp_ff.Topology.Builder.set_lj_types b [| (0., 1.) |];
  let a0 = Mdsp_ff.Topology.Builder.add_atom b ~mass:10. ~charge:0. ~type_id:0 ~name:"A" in
  let a1 = Mdsp_ff.Topology.Builder.add_atom b ~mass:10. ~charge:0. ~type_id:0 ~name:"B" in
  let s = Mdsp_ff.Topology.Builder.add_atom b ~mass:1. ~charge:(-1.) ~type_id:0 ~name:"M" in
  Mdsp_ff.Topology.Builder.add_virtual_site b ~site:s
    ~parents:[| (a0, 0.5); (a1, 0.5) |];
  let topo = Mdsp_ff.Topology.Builder.finish b in
  check_true "is_virtual" (Mdsp_ff.Topology.is_virtual topo s);
  check_true "not virtual" (not (Mdsp_ff.Topology.is_virtual topo a0));
  Alcotest.(check int) "dof excludes site" (6 - 3) (Mdsp_ff.Topology.dof topo);
  let vs = Virtual_sites.create topo in
  let box = Pbc.cubic 10. in
  let pos = [| Vec3.make 1. 1. 1.; Vec3.make 3. 1. 1.; Vec3.zero |] in
  Virtual_sites.place vs box pos;
  check_true "placed at midpoint"
    (Vec3.equal_eps ~eps:1e-12 pos.(2) (Vec3.make 2. 1. 1.));
  (* Force on the site spreads half-half onto parents. *)
  let acc = Mdsp_ff.Bonded.make_accum 3 in
  acc.Mdsp_ff.Bonded.forces.(2) <- Vec3.make 4. 0. 0.;
  Virtual_sites.spread_forces vs acc;
  check_true "site zeroed" (Vec3.norm acc.Mdsp_ff.Bonded.forces.(2) = 0.);
  check_close ~rel:1e-12 "parent share" 2. acc.Mdsp_ff.Bonded.forces.(0).Vec3.x;
  check_close ~rel:1e-12 "parent share" 2. acc.Mdsp_ff.Bonded.forces.(1).Vec3.x

let test_virtual_site_pbc_placement () =
  (* Parents straddling the periodic boundary: the site must follow the
     molecule, not jump across the box. *)
  let b = Mdsp_ff.Topology.Builder.create () in
  Mdsp_ff.Topology.Builder.set_lj_types b [| (0., 1.) |];
  let a0 = Mdsp_ff.Topology.Builder.add_atom b ~mass:10. ~charge:0. ~type_id:0 ~name:"A" in
  let a1 = Mdsp_ff.Topology.Builder.add_atom b ~mass:10. ~charge:0. ~type_id:0 ~name:"B" in
  let s = Mdsp_ff.Topology.Builder.add_atom b ~mass:1. ~charge:0. ~type_id:0 ~name:"M" in
  Mdsp_ff.Topology.Builder.add_virtual_site b ~site:s
    ~parents:[| (a0, 0.5); (a1, 0.5) |];
  let topo = Mdsp_ff.Topology.Builder.finish b in
  let vs = Virtual_sites.create topo in
  let box = Pbc.cubic 10. in
  let pos = [| Vec3.make 9.8 0. 0.; Vec3.make 10.6 0. 0.; Vec3.zero |] in
  Virtual_sites.place vs box pos;
  check_close ~rel:1e-9 "follows the molecule across the boundary" 10.2
    pos.(2).Vec3.x

let test_virtual_site_validation () =
  let b = Mdsp_ff.Topology.Builder.create () in
  Mdsp_ff.Topology.Builder.set_lj_types b [| (0., 1.) |];
  let a0 = Mdsp_ff.Topology.Builder.add_atom b ~mass:1. ~charge:0. ~type_id:0 ~name:"A" in
  let a1 = Mdsp_ff.Topology.Builder.add_atom b ~mass:1. ~charge:0. ~type_id:0 ~name:"B" in
  Alcotest.check_raises "weights must sum to 1"
    (Invalid_argument "Topology.add_virtual_site: weights must sum to 1")
    (fun () ->
      Mdsp_ff.Topology.Builder.add_virtual_site b ~site:a0
        ~parents:[| (a1, 0.5) |]
      |> ignore);
  Alcotest.check_raises "self parent"
    (Invalid_argument "Topology.add_virtual_site: site cannot parent itself")
    (fun () ->
      Mdsp_ff.Topology.Builder.add_virtual_site b ~site:a0
        ~parents:[| (a0, 1.0) |]
      |> ignore)

let test_tip4p_dynamics () =
  let sys = Mdsp_workload.Workloads.water_box_tip4p ~n_side:3 () in
  Alcotest.(check int) "27 virtual sites" 27
    (Mdsp_ff.Topology.n_virtual_sites sys.Mdsp_workload.Workloads.topo);
  let cfg =
    {
      E.default_config with
      dt_fs = 1.0;
      temperature = 300.;
      thermostat = E.Langevin { gamma_fs = 0.02 };
    }
  in
  let eng = Mdsp_workload.Workloads.make_engine ~config:cfg sys in
  E.run eng 800;
  check_true "stays finite" (Float.is_finite (E.total_energy eng));
  (* Every M site sits exactly 0.15 A from its oxygen throughout. *)
  let st = E.state eng in
  let p = st.State.positions in
  for m = 0 to 26 do
    let d = Pbc.dist st.State.box p.(4 * m) p.((4 * m) + 3) in
    check_close ~rel:1e-6 "O-M distance held" Mdsp_ff.Water.Tip4p.om_dist d
  done;
  (* Virtual sites carry no velocity. *)
  for m = 0 to 26 do
    check_true "site velocity zero"
      (Vec3.norm st.State.velocities.((4 * m) + 3) = 0.)
  done

(* --- Observables --- *)

let test_observables_record_and_summarize () =
  let eng = lj_engine ~n:64 ~temp:120. ~equil:500 () in
  let obs = Observables.attach eng ~stride:5 in
  Observables.temperature obs;
  Observables.potential_energy obs;
  Observables.custom obs ~name:"half_T" (fun e -> E.temperature e /. 2.);
  E.run eng 500;
  let temps = Observables.series obs "temperature" in
  Alcotest.(check int) "100 samples" 100 (Array.length temps);
  let halves = Observables.series obs "half_T" in
  Array.iteri
    (fun i h -> check_close ~rel:1e-12 "custom channel" (temps.(i) /. 2.) h)
    halves;
  let sums = Observables.summaries obs in
  Alcotest.(check int) "three channels" 3 (List.length sums);
  let t_sum = List.find (fun s -> s.Observables.name = "temperature") sums in
  check_close ~rel:0.15 "mean temperature" 120. t_sum.Observables.mean;
  check_true "stderr positive" (t_sum.Observables.stderr > 0.);
  (* Detach stops recording. *)
  Observables.detach obs;
  E.run eng 50;
  Alcotest.(check int) "no more samples" 100
    (Array.length (Observables.series obs "temperature"))

let test_observables_validation () =
  let eng = lj_engine ~n:32 ~equil:10 () in
  let obs = Observables.attach eng ~stride:5 in
  Observables.temperature obs;
  Alcotest.check_raises "duplicate channel"
    (Invalid_argument "Observables.custom: duplicate channel \"temperature\"")
    (fun () -> Observables.temperature obs);
  (try
     ignore (Observables.series obs "nope");
     Alcotest.fail "expected Not_found"
   with Not_found -> ())

(* --- Minimizer --- *)

let test_minimize_reduces_energy () =
  (* The bead chain starts with overlaps: minimization must drop the
     potential energy dramatically and never increase it. *)
  let sys = Mdsp_workload.Workloads.bead_chain ~n_beads:12 ~n_total:96 () in
  let cfg = { E.default_config with dt_fs = 2.0; temperature = 120. } in
  let eng = Mdsp_workload.Workloads.make_engine ~config:cfg sys in
  let e0 = E.potential_energy eng in
  E.minimize eng ~steps:50;
  let e1 = E.potential_energy eng in
  E.minimize eng ~steps:150;
  let e2 = E.potential_energy eng in
  check_true "first phase reduces" (e1 < e0);
  check_true "monotone overall" (e2 <= e1 +. 1e-9);
  check_true "large reduction" (e2 < e0 /. 2.)

let test_minimize_respects_constraints () =
  let sys = Mdsp_workload.Workloads.water_box ~n_side:3 () in
  let cfg = { E.default_config with dt_fs = 1.0; temperature = 300. } in
  let eng = Mdsp_workload.Workloads.make_engine ~config:cfg sys in
  E.minimize eng ~steps:100;
  let st = E.state eng in
  check_true "constraints hold after minimization"
    (Constraints.max_violation (E.constraints eng) st.State.box
       st.State.positions
    < 1e-6)

(* --- Trajectory and checkpoints --- *)

let test_xyz_roundtrip () =
  let path = Filename.temp_file "mdsp_traj" ".xyz" in
  let box = Pbc.cubic 10. in
  let names = [| "AR"; "AR"; "OW" |] in
  let t = Trajectory.open_xyz path ~names in
  let f1 = [| Vec3.make 1. 2. 3.; Vec3.make 4. 5. 6.; Vec3.make 7. 8. 9. |] in
  let f2 = [| Vec3.make 1.5 2. 3.; Vec3.make 4. 5.5 6.; Vec3.make 7. 8. 9.5 |] in
  Trajectory.write_frame t box ~time_fs:0. f1;
  Trajectory.write_frame t box ~time_fs:2. f2;
  Trajectory.close_xyz t;
  let frames = Trajectory.read_xyz path in
  Sys.remove path;
  Alcotest.(check int) "two frames" 2 (List.length frames);
  let _, p1 = List.nth frames 0 in
  let _, p2 = List.nth frames 1 in
  check_true "frame 1" (max_vec_diff p1 f1 < 1e-5);
  check_true "frame 2" (max_vec_diff p2 f2 < 1e-5)

let test_xyz_wraps_positions () =
  let path = Filename.temp_file "mdsp_traj" ".xyz" in
  let box = Pbc.cubic 10. in
  let t = Trajectory.open_xyz path ~names:[| "X" |] in
  Trajectory.write_frame t box ~time_fs:0. [| Vec3.make 12. (-3.) 5. |];
  Trajectory.close_xyz t;
  let frames = Trajectory.read_xyz path in
  Sys.remove path;
  let _, p = List.hd frames in
  check_true "wrapped into the box"
    (Vec3.equal_eps ~eps:1e-5 p.(0) (Vec3.make 2. 7. 5.))

let test_checkpoint_roundtrip () =
  let eng = lj_engine ~n:32 ~equil:200 () in
  let st = E.state eng in
  let path = Filename.temp_file "mdsp_ckpt" ".txt" in
  Trajectory.Checkpoint.save path st ~step:123;
  let loaded, step = Trajectory.Checkpoint.load path in
  Sys.remove path;
  Alcotest.(check int) "step" 123 step;
  check_true "positions exact" (max_vec_diff loaded.State.positions st.State.positions = 0.);
  check_true "velocities exact"
    (max_vec_diff loaded.State.velocities st.State.velocities = 0.);
  check_float ~eps:0. "time exact" st.State.time loaded.State.time;
  check_true "box exact" (loaded.State.box = st.State.box);
  check_true "masses exact" (loaded.State.masses = st.State.masses)

let test_checkpoint_restart_equivalence () =
  (* NVE from a checkpoint must bitwise-track the original run. *)
  let eng = lj_engine ~n:32 ~equil:300 () in
  let st = E.state eng in
  let sys = Mdsp_workload.Workloads.lj_fluid ~n:32 () in
  let build positions velocities =
    let sys = { sys with Mdsp_workload.Workloads.positions } in
    let cfg = { E.default_config with dt_fs = 2.0; temperature = 120. } in
    let e = Mdsp_workload.Workloads.make_engine ~config:cfg sys in
    Array.blit velocities 0 (E.state e).State.velocities 0 32;
    E.refresh_forces e;
    e
  in
  let e1 = build (Array.copy st.State.positions) st.State.velocities in
  (* Save, load, and build a second engine from the loaded state. *)
  let path = Filename.temp_file "mdsp_ckpt" ".txt" in
  Trajectory.Checkpoint.save path (E.state e1) ~step:0;
  let loaded, _ = Trajectory.Checkpoint.load path in
  Sys.remove path;
  let e2 = build loaded.State.positions loaded.State.velocities in
  E.run e1 100;
  E.run e2 100;
  check_true "restart is exact"
    (max_vec_diff (E.state e1).State.positions (E.state e2).State.positions
     = 0.)

let test_checkpoint_rejects_garbage () =
  let path = Filename.temp_file "mdsp_ckpt" ".txt" in
  let oc = open_out path in
  output_string oc "not a checkpoint\n";
  close_out oc;
  (try
     ignore (Trajectory.Checkpoint.load path);
     Alcotest.fail "expected failure"
   with Failure _ -> ());
  Sys.remove path

(* --- Soa: the flat (structure-of-arrays) store --- *)

let random_state ~seed ~n =
  let rng = Rng.create seed in
  let positions =
    Array.init n (fun _ ->
        Vec3.make
          (Rng.uniform_in rng (-3.) 15.)
          (Rng.uniform_in rng (-3.) 15.)
          (Rng.uniform_in rng (-3.) 15.))
  in
  let masses = Array.init n (fun i -> 1. +. (0.125 *. float_of_int i)) in
  let st = State.create ~positions ~masses ~box:(Pbc.cubic 12.375) in
  State.thermalize st rng ~temp:250.;
  st.State.time <- 17.25;
  st

let test_soa_round_trip_exact () =
  let st = random_state ~seed:11 ~n:97 in
  let soa = Soa.of_state st in
  let st2 = Soa.to_state soa in
  check_true "of_state/to_state round-trips bit for bit" (State.equal st st2);
  (* Column contents are exact copies, not recomputations. *)
  Array.iteri
    (fun i p ->
      check_true "x column exact" (soa.Soa.x.{i} = p.Vec3.x);
      check_true "y column exact" (soa.Soa.y.{i} = p.Vec3.y);
      check_true "z column exact" (soa.Soa.z.{i} = p.Vec3.z))
    st.State.positions

let test_soa_scatter_overwrites () =
  let st = random_state ~seed:12 ~n:16 in
  let soa = Soa.of_state st in
  for i = 0 to 15 do
    soa.Soa.fx.{i} <- float_of_int i;
    soa.Soa.fy.{i} <- -.float_of_int i;
    soa.Soa.fz.{i} <- 0.5 *. float_of_int i
  done;
  let acc = Mdsp_ff.Bonded.make_accum 16 in
  (* Pre-existing accumulator content must be replaced, not added to. *)
  acc.Mdsp_ff.Bonded.forces.(3) <- Vec3.make 100. 100. 100.;
  Soa.scatter_forces soa acc;
  Array.iteri
    (fun i f ->
      check_true "scatter overwrites"
        (f.Vec3.x = float_of_int i
        && f.Vec3.y = -.float_of_int i
        && f.Vec3.z = 0.5 *. float_of_int i))
    acc.Mdsp_ff.Bonded.forces

let test_soa_load_clear () =
  let st = random_state ~seed:13 ~n:33 in
  let soa = Soa.create ~box:st.State.box 33 in
  Soa.load_positions soa st.State.positions;
  Soa.load_velocities soa st.State.velocities;
  soa.Soa.fx.{7} <- 3.25;
  Soa.clear_forces soa;
  check_true "forces cleared" (soa.Soa.fx.{7} = 0.);
  check_true "velocity column exact"
    (soa.Soa.vy.{5} = st.State.velocities.(5).Vec3.y)

let () =
  Alcotest.run "mdsp_md"
    [
      ( "state",
        [
          Alcotest.test_case "kinetic/temperature" `Quick
            test_state_kinetic_temperature;
          Alcotest.test_case "thermalize" `Quick
            test_state_thermalize_temperature;
          Alcotest.test_case "copy/blit" `Quick test_state_copy_blit;
          Alcotest.test_case "scale velocities" `Quick test_scale_velocities;
        ] );
      ( "soa",
        [
          Alcotest.test_case "of_state/to_state round-trip" `Quick
            test_soa_round_trip_exact;
          Alcotest.test_case "scatter_forces overwrites" `Quick
            test_soa_scatter_overwrites;
          Alcotest.test_case "load/clear columns" `Quick test_soa_load_clear;
        ] );
      ( "constraints",
        [
          Alcotest.test_case "SHAKE restores" `Quick
            test_shake_restores_constraints;
          Alcotest.test_case "RATTLE projects velocities" `Quick
            test_rattle_removes_radial_velocity;
          Alcotest.test_case "none" `Quick test_constraints_none;
          Alcotest.test_case "unconverged SHAKE names its cluster" `Quick
            test_shake_unconverged_structured;
        ] );
      ( "integration",
        [
          Alcotest.test_case "NVE conservation" `Slow
            test_nve_energy_conservation;
          Alcotest.test_case "timestep scaling" `Slow test_nve_timestep_scaling;
          Alcotest.test_case "RESPA stability" `Slow
            test_respa_energy_and_agreement;
          Alcotest.test_case "water constrained dynamics" `Slow
            test_water_constrained_dynamics;
        ] );
      ( "thermostats",
        [
          Alcotest.test_case "Langevin" `Slow test_langevin_temperature;
          Alcotest.test_case "Nose-Hoover" `Slow test_nose_hoover_temperature;
          Alcotest.test_case "Berendsen" `Slow test_berendsen_temperature;
          Alcotest.test_case "Maxwell velocities" `Slow
            test_velocity_distribution_maxwell;
          Alcotest.test_case "retarget temperature" `Slow
            test_set_temperature_switches_target;
        ] );
      ( "barostats",
        [
          Alcotest.test_case "Berendsen relaxes pressure" `Slow
            test_berendsen_barostat_relaxes_pressure;
          Alcotest.test_case "MC barostat" `Slow test_mc_barostat_runs_and_relaxes;
          Alcotest.test_case "ideal gas pressure" `Slow
            test_pressure_virial_ideal_gas_limit;
        ] );
      ( "engine",
        [
          Alcotest.test_case "COM removal" `Quick test_com_removal;
          Alcotest.test_case "post-step hooks" `Quick test_post_step_hooks;
        ] );
      ( "observables",
        [
          Alcotest.test_case "record and summarize" `Quick
            test_observables_record_and_summarize;
          Alcotest.test_case "validation" `Quick test_observables_validation;
        ] );
      ( "minimizer",
        [
          Alcotest.test_case "reduces energy" `Quick
            test_minimize_reduces_energy;
          Alcotest.test_case "respects constraints" `Quick
            test_minimize_respects_constraints;
        ] );
      ( "trajectory",
        [
          Alcotest.test_case "xyz roundtrip" `Quick test_xyz_roundtrip;
          Alcotest.test_case "xyz wraps" `Quick test_xyz_wraps_positions;
          Alcotest.test_case "checkpoint roundtrip" `Quick
            test_checkpoint_roundtrip;
          Alcotest.test_case "restart equivalence" `Quick
            test_checkpoint_restart_equivalence;
          Alcotest.test_case "rejects garbage" `Quick
            test_checkpoint_rejects_garbage;
        ] );
      ( "virtual_sites",
        [
          Alcotest.test_case "placement and spreading" `Quick
            test_virtual_site_placement_and_spreading;
          Alcotest.test_case "PBC placement" `Quick
            test_virtual_site_pbc_placement;
          Alcotest.test_case "validation" `Quick test_virtual_site_validation;
          Alcotest.test_case "TIP4P dynamics" `Slow test_tip4p_dynamics;
        ] );
    ]
