(* The execution-backend layer: Serial vs Domains agreement on energies,
   forces, and virial; bit-level determinism of the static tiling + tree
   reduction; and the per-resource step-timing instrumentation. *)

open Mdsp_util
open Testsupport
module E = Mdsp_md.Engine
module FC = Mdsp_md.Force_calc

(* --- Exec primitives --- *)

let test_tile_bounds () =
  List.iter
    (fun (total, ntiles) ->
      let b = Exec.tile_bounds ~total ~ntiles in
      check_true "tile count" (Array.length b = ntiles);
      let covered = ref 0 in
      Array.iteri
        (fun k (lo, hi) ->
          check_true "monotone" (lo <= hi);
          if k > 0 then
            check_true "contiguous" (lo = snd b.(k - 1));
          covered := !covered + (hi - lo))
        b;
      check_true "covers all" (!covered = total);
      let sizes = Array.map (fun (lo, hi) -> hi - lo) b in
      let mn = Array.fold_left min max_int sizes in
      let mx = Array.fold_left max 0 sizes in
      check_true "balanced" (mx - mn <= 1))
    [ (0, 1); (0, 4); (1, 4); (7, 3); (100, 7); (156944, 4) ]

let test_reduce_tree () =
  let a = Array.init 13 (fun i -> float_of_int (i + 1)) in
  check_float ~eps:1e-12 "tree sum" 91. (Exec.reduce_tree ( +. ) a);
  check_true "sum_tree matches reduce_tree"
    (Exec.reduce_tree ( +. ) a = Exec.sum_tree a);
  check_true "max via tree"
    (Exec.reduce_tree max [| 3; 1; 4; 1; 5; 9; 2; 6 |] = 9)

let test_parallel_run_covers_slots () =
  let pool = Exec.create (Exec.Domains { n = 4 }) in
  check_true "n_slots" (Exec.n_slots pool = 4);
  let hits = Array.make 4 0 in
  for _ = 1 to 5 do
    Exec.parallel_run pool (fun s -> hits.(s) <- hits.(s) + 1)
  done;
  Exec.shutdown pool;
  Array.iter (fun h -> check_true "each slot ran each job" (h = 5)) hits

let test_parallel_run_propagates_exceptions () =
  let pool = Exec.create (Exec.Domains { n = 3 }) in
  let raised =
    try
      Exec.parallel_run pool (fun s -> if s = 2 then failwith "slot boom");
      false
    with Failure _ -> true
  in
  (* The pool must survive a failed job. *)
  let hits = Array.make 3 false in
  Exec.parallel_run pool (fun s -> hits.(s) <- true);
  Exec.shutdown pool;
  check_true "worker exception re-raised on caller" raised;
  check_true "pool usable after failure" (Array.for_all Fun.id hits)

(* --- a solvated box exercising every force class ---

   Rigid water (SHAKE constraints), real-space Ewald pairs + reciprocal
   Ewald long-range, plus a registered bias: the workload from the
   integration suite, evaluated on both backends. *)

let solvated_fc ~exec () =
  let sys = Mdsp_workload.Workloads.water_box ~n_side:4 () in
  let open Mdsp_workload.Workloads in
  let cutoff = 0.45 *. Pbc.min_edge sys.box in
  let beta = 3.0 /. cutoff in
  let evaluator =
    Mdsp_ff.Pair_interactions.of_topology sys.topo ~cutoff
      ~trunc:Mdsp_ff.Nonbonded.Shift
      ~elec:(Mdsp_ff.Pair_interactions.Ewald_real { beta })
  in
  let nlist =
    Mdsp_space.Neighbor_list.create
      ~exclusions:sys.topo.Mdsp_ff.Topology.exclusions ~cutoff ~skin:1.
      sys.box sys.positions
  in
  let ew = Mdsp_longrange.Ewald.create ~beta ~kmax:5 sys.box in
  let fc =
    FC.create ~exec sys.topo ~evaluator ~longrange:(FC.Lr_ewald ew) ~nlist
  in
  FC.add_bias fc
    (Mdsp_workload.Workloads.double_well_bias ~barrier:1.0 ~half_width:4.0);
  (sys, fc)

let compute_once ~exec () =
  let sys, fc = solvated_fc ~exec () in
  let n = Mdsp_ff.Topology.n_atoms sys.Mdsp_workload.Workloads.topo in
  let acc = Mdsp_ff.Bonded.make_accum n in
  let e =
    FC.compute fc sys.Mdsp_workload.Workloads.box
      sys.Mdsp_workload.Workloads.positions acc
  in
  (e, acc)

let rel_force_diff a b =
  let fmax = ref 1e-30 and dmax = ref 0. in
  Array.iteri
    (fun i f ->
      fmax := Float.max !fmax (Vec3.norm f);
      dmax := Float.max !dmax (Vec3.dist f b.(i)))
    a;
  !dmax /. !fmax

let test_serial_vs_domains_agree () =
  let e_s, acc_s = compute_once ~exec:Exec.serial () in
  let pool = Exec.create (Exec.Domains { n = 4 }) in
  let e_p, acc_p = compute_once ~exec:pool () in
  Exec.shutdown pool;
  let open FC in
  check_close ~rel:1e-10 "bond energy" e_s.bond e_p.bond;
  check_close ~rel:1e-10 "pair energy" e_s.pair e_p.pair;
  check_close ~rel:1e-10 "recip energy" e_s.recip e_p.recip;
  check_close ~rel:1e-10 "correction" e_s.correction e_p.correction;
  check_close ~rel:1e-10 "bias energy" e_s.bias e_p.bias;
  check_close ~rel:1e-10 "total energy" (total e_s) (total e_p);
  check_close ~rel:1e-10 "virial" acc_s.Mdsp_ff.Bonded.virial
    acc_p.Mdsp_ff.Bonded.virial;
  let rel =
    rel_force_diff acc_s.Mdsp_ff.Bonded.forces acc_p.Mdsp_ff.Bonded.forces
  in
  check_true
    (Printf.sprintf "forces agree (rel %.2e <= 1e-10)" rel)
    (rel <= 1e-10)

let test_bonded_workload_agrees () =
  (* A charged bead chain: bonds, angles, dihedrals, 1-4 pairs and
     reaction-field electrostatics through the parallel tiles. *)
  let sys = Mdsp_workload.Workloads.bead_chain ~n_beads:16 ~n_total:256 () in
  let compute exec =
    let eng =
      Mdsp_workload.Workloads.make_engine ~seed:5 ~exec sys
    in
    let acc = Mdsp_ff.Bonded.make_accum 256 in
    let e =
      FC.compute (E.force_calc eng) (E.state eng).Mdsp_md.State.box
        (E.state eng).Mdsp_md.State.positions acc
    in
    (e, acc)
  in
  let e_s, acc_s = compute Exec.serial in
  let pool = Exec.create (Exec.Domains { n = 3 }) in
  let e_p, acc_p = compute pool in
  Exec.shutdown pool;
  let open FC in
  check_close ~rel:1e-10 "bond" e_s.bond e_p.bond;
  check_close ~rel:1e-10 "angle" e_s.angle e_p.angle;
  check_close ~rel:1e-10 "dihedral" e_s.dihedral e_p.dihedral;
  check_close ~rel:1e-10 "pair (incl. 1-4)" e_s.pair e_p.pair;
  check_close ~rel:1e-10 "virial" acc_s.Mdsp_ff.Bonded.virial
    acc_p.Mdsp_ff.Bonded.virial;
  let rel =
    rel_force_diff acc_s.Mdsp_ff.Bonded.forces acc_p.Mdsp_ff.Bonded.forces
  in
  check_true
    (Printf.sprintf "forces agree (rel %.2e <= 1e-10)" rel)
    (rel <= 1e-10)

let test_respa_classes_agree () =
  let run exec cls =
    let sys, fc = solvated_fc ~exec () in
    let n = Mdsp_ff.Topology.n_atoms sys.Mdsp_workload.Workloads.topo in
    let acc = Mdsp_ff.Bonded.make_accum n in
    let e =
      FC.compute_class fc cls sys.Mdsp_workload.Workloads.box
        sys.Mdsp_workload.Workloads.positions acc
    in
    (e, acc)
  in
  let pool = Exec.create (Exec.Domains { n = 4 }) in
  List.iter
    (fun cls ->
      let e_s, acc_s = run Exec.serial cls in
      let e_p, acc_p = run pool cls in
      check_close ~rel:1e-10 "class energy" (FC.total e_s) (FC.total e_p);
      let rel =
        rel_force_diff acc_s.Mdsp_ff.Bonded.forces
          acc_p.Mdsp_ff.Bonded.forces
      in
      check_true "class forces" (rel <= 1e-10))
    [ `Fast; `Slow ];
  Exec.shutdown pool

(* --- determinism --- *)

let test_parallel_determinism_single_eval () =
  (* Two evaluations on two fresh pools of the same width must be
     bit-for-bit identical: static tiles + fixed-shape tree reduction. *)
  let run () =
    let pool = Exec.create (Exec.Domains { n = 4 }) in
    let r = compute_once ~exec:pool () in
    Exec.shutdown pool;
    r
  in
  let e1, acc1 = run () in
  let e2, acc2 = run () in
  check_true "energies bit-identical" (e1 = e2);
  check_true "virial bit-identical"
    (acc1.Mdsp_ff.Bonded.virial = acc2.Mdsp_ff.Bonded.virial);
  let identical = ref true in
  Array.iteri
    (fun i f -> if f <> acc2.Mdsp_ff.Bonded.forces.(i) then identical := false)
    acc1.Mdsp_ff.Bonded.forces;
  check_true "forces bit-identical" !identical

let test_parallel_determinism_trajectory () =
  (* A full dynamical run (thermostat, constraints, rebuilds) repeated on a
     parallel backend stays bit-identical. *)
  let run () =
    let sys = Mdsp_workload.Workloads.water_box ~n_side:3 () in
    let pool = Exec.create (Exec.Domains { n = 4 }) in
    let cfg =
      {
        E.default_config with
        dt_fs = 1.0;
        temperature = 300.;
        thermostat = E.Langevin { gamma_fs = 0.02 };
      }
    in
    let eng = Mdsp_workload.Workloads.make_engine ~config:cfg ~seed:7 ~exec:pool sys in
    E.run eng 25;
    let st = E.state eng in
    let pos = Array.copy st.Mdsp_md.State.positions in
    Exec.shutdown pool;
    (pos, E.total_energy eng)
  in
  let pos1, e1 = run () in
  let pos2, e2 = run () in
  check_true "trajectory energy bit-identical" (e1 = e2);
  let identical = ref true in
  Array.iteri (fun i p -> if p <> pos2.(i) then identical := false) pos1;
  check_true "trajectory positions bit-identical" !identical

let test_integrator_sweeps_bitwise () =
  (* The kick/drift sweeps are per-atom independent, so running them tiled
     over the pool must reproduce the serial sweeps bit-for-bit at every
     slot count — same pool for the forces, only the integrator differs.
     Constraints, thermostat and rebuilds all stay in the loop. *)
  let run ~slots ~serial_integrator =
    let sys = Mdsp_workload.Workloads.water_box ~n_side:3 () in
    let exec =
      if slots = 1 then Exec.serial
      else Exec.create (Exec.Domains { n = slots })
    in
    let cfg =
      {
        E.default_config with
        dt_fs = 1.0;
        temperature = 300.;
        thermostat = E.Langevin { gamma_fs = 0.02 };
      }
    in
    let eng = Mdsp_workload.Workloads.make_engine ~config:cfg ~seed:11 ~exec sys in
    E.set_serial_integrator eng serial_integrator;
    E.run eng 20;
    let st = E.state eng in
    let pos = Array.copy st.Mdsp_md.State.positions in
    let vel = Array.copy st.Mdsp_md.State.velocities in
    if slots > 1 then Exec.shutdown exec;
    (pos, vel)
  in
  List.iter
    (fun slots ->
      let pos_p, vel_p = run ~slots ~serial_integrator:false in
      let pos_s, vel_s = run ~slots ~serial_integrator:true in
      check_true
        (Printf.sprintf "positions bitwise at %d slots" slots)
        (pos_p = pos_s);
      check_true
        (Printf.sprintf "velocities bitwise at %d slots" slots)
        (vel_p = vel_s))
    [ 1; 2; 4 ]

let test_constraint_sweeps_bitwise () =
  (* The batched SHAKE/RATTLE cluster sweeps, the constraint velocity fold
     and the Langevin O-step all run over the pool; the coloring
     certificate (Mdsp_verify.Schedule) says same-batch clusters are
     atom-disjoint and the O-step uses per-atom derived streams, so the
     tiled sweeps must reproduce the serial solver bit-for-bit at every
     slot count — same pool for the forces, only the constraint/thermostat
     executor differs. *)
  let run ~slots ~serial =
    let sys = Mdsp_workload.Workloads.water_box ~n_side:3 () in
    let exec =
      if slots = 1 then Exec.serial
      else Exec.create (Exec.Domains { n = slots })
    in
    let cfg =
      {
        E.default_config with
        dt_fs = 1.0;
        temperature = 300.;
        thermostat = E.Langevin { gamma_fs = 0.02 };
      }
    in
    let eng = Mdsp_workload.Workloads.make_engine ~config:cfg ~seed:11 ~exec sys in
    E.set_serial_constraints eng serial;
    E.run eng 20;
    let st = E.state eng in
    let pos = Array.copy st.Mdsp_md.State.positions in
    let vel = Array.copy st.Mdsp_md.State.velocities in
    if slots > 1 then Exec.shutdown exec;
    (pos, vel)
  in
  List.iter
    (fun slots ->
      let pos_p, vel_p = run ~slots ~serial:false in
      let pos_s, vel_s = run ~slots ~serial:true in
      check_true
        (Printf.sprintf "positions bitwise at %d slots" slots)
        (pos_p = pos_s);
      check_true
        (Printf.sprintf "velocities bitwise at %d slots" slots)
        (vel_p = vel_s))
    [ 1; 2; 4 ]

let test_water6k_constraint_sweeps_bitwise () =
  (* The registry workload the schedule gate certifies: 2197 rigid waters
     fused into one batch, Berendsen rescale at the end of the step. Two
     steps suffice — a cross-slot disagreement in the very first SHAKE
     batch is already a bitwise diff. *)
  let run ~slots ~serial =
    let sys = Mdsp_workload.Workloads.water_box ~n_side:13 () in
    let exec =
      if slots = 1 then Exec.serial
      else Exec.create (Exec.Domains { n = slots })
    in
    let cfg =
      {
        E.default_config with
        dt_fs = 1.0;
        temperature = 300.;
        thermostat = E.Berendsen { tau_fs = 100. };
      }
    in
    let eng = Mdsp_workload.Workloads.make_engine ~config:cfg ~seed:3 ~exec sys in
    E.set_serial_constraints eng serial;
    E.run eng 2;
    let st = E.state eng in
    let pos = Array.copy st.Mdsp_md.State.positions in
    let vel = Array.copy st.Mdsp_md.State.velocities in
    if slots > 1 then Exec.shutdown exec;
    (pos, vel)
  in
  List.iter
    (fun slots ->
      let pos_p, vel_p = run ~slots ~serial:false in
      let pos_s, vel_s = run ~slots ~serial:true in
      check_true
        (Printf.sprintf "water6k positions bitwise at %d slots" slots)
        (pos_p = pos_s);
      check_true
        (Printf.sprintf "water6k velocities bitwise at %d slots" slots)
        (vel_p = vel_s))
    [ 1; 4 ]

let test_chain10k_thermostat_bitwise () =
  (* chain10k carries no constraints at all, so flipping the switch
     isolates the thermostat sweeps: the per-atom derived Langevin
     streams must make the O-step independent of the tiling. *)
  let run ~slots ~serial =
    let sys = Mdsp_workload.Workloads.bead_chain ~n_beads:256 ~n_total:10_000 () in
    let exec =
      if slots = 1 then Exec.serial
      else Exec.create (Exec.Domains { n = slots })
    in
    let cfg =
      {
        E.default_config with
        dt_fs = 2.0;
        temperature = 120.;
        thermostat = E.Langevin { gamma_fs = 0.02 };
      }
    in
    let eng = Mdsp_workload.Workloads.make_engine ~config:cfg ~seed:21 ~exec sys in
    E.set_serial_constraints eng serial;
    E.run eng 3;
    let st = E.state eng in
    let vel = Array.copy st.Mdsp_md.State.velocities in
    if slots > 1 then Exec.shutdown exec;
    vel
  in
  List.iter
    (fun slots ->
      check_true
        (Printf.sprintf "chain10k velocities bitwise at %d slots" slots)
        (run ~slots ~serial:false = run ~slots ~serial:true))
    [ 1; 4 ]

let test_engine_backends_consistent () =
  (* Short run: backends may differ only by rounding, which cannot grow far
     in a few steps. *)
  let run exec =
    let sys = Mdsp_workload.Workloads.water_box ~n_side:3 () in
    let eng = Mdsp_workload.Workloads.make_engine ~seed:9 ~exec sys in
    E.run eng 5;
    E.total_energy eng
  in
  let e_s = run Exec.serial in
  let pool = Exec.create (Exec.Domains { n = 2 }) in
  let e_p = run pool in
  Exec.shutdown pool;
  check_close ~rel:1e-6 "5-step total energy" e_s e_p

(* --- the GSE grid pipeline on the pool ---

   Charged solvated water with grid electrostatics: real-space Ewald pairs
   plus the GSE reciprocal solver, every stage of which (spread / fft /
   convolve / gather) is tiled over the Exec pool. *)

let gse_grid = (16, 16, 16)

let gse_engine ~exec () =
  let sys = Mdsp_workload.Workloads.water_box ~n_side:3 () in
  let cfg =
    {
      E.default_config with
      dt_fs = 1.0;
      temperature = 300.;
      thermostat = E.Langevin { gamma_fs = 0.02 };
    }
  in
  Mdsp_workload.Workloads.make_engine ~config:cfg ~seed:13 ~exec ~gse_grid
    sys

let gse_compute_once ~exec () =
  let eng = gse_engine ~exec () in
  let fc = E.force_calc eng in
  (match FC.longrange_kind fc with
  | `Gse g -> check_true "GSE solver installed" (g = gse_grid)
  | _ -> Alcotest.fail "expected a GSE long-range solver");
  let st = E.state eng in
  let acc = Mdsp_ff.Bonded.make_accum (Mdsp_md.State.n st) in
  let e = FC.compute fc st.Mdsp_md.State.box st.Mdsp_md.State.positions acc in
  (e, acc)

let test_gse_serial_vs_domains_agree () =
  let e_s, acc_s = gse_compute_once ~exec:Exec.serial () in
  let pool = Exec.create (Exec.Domains { n = 4 }) in
  let e_p, acc_p = gse_compute_once ~exec:pool () in
  Exec.shutdown pool;
  let open FC in
  check_close ~rel:1e-10 "pair energy" e_s.pair e_p.pair;
  check_close ~rel:1e-10 "GSE recip energy" e_s.recip e_p.recip;
  check_close ~rel:1e-10 "correction" e_s.correction e_p.correction;
  check_close ~rel:1e-10 "total energy" (total e_s) (total e_p);
  check_close ~rel:1e-10 "virial" acc_s.Mdsp_ff.Bonded.virial
    acc_p.Mdsp_ff.Bonded.virial;
  let rel =
    rel_force_diff acc_s.Mdsp_ff.Bonded.forces acc_p.Mdsp_ff.Bonded.forces
  in
  check_true
    (Printf.sprintf "forces agree (rel %.2e <= 1e-10)" rel)
    (rel <= 1e-10)

let test_gse_reciprocal_backends () =
  (* The grid phase in isolation: Gse.reciprocal on the serial backend vs
     a pool, and two fresh pools against each other (bitwise). *)
  let sys = Mdsp_workload.Workloads.water_box ~n_side:3 () in
  let open Mdsp_workload.Workloads in
  let n = Mdsp_ff.Topology.n_atoms sys.topo in
  let charges = Mdsp_ff.Topology.charges sys.topo in
  let run exec =
    let gse = Mdsp_longrange.Gse.create ~beta:0.4 ~grid:gse_grid sys.box in
    let acc = Mdsp_ff.Bonded.make_accum n in
    let ph = Mdsp_longrange.Gse.zero_phases () in
    let e =
      Mdsp_longrange.Gse.reciprocal ~exec ~phases:ph gse charges
        sys.positions acc
    in
    (e, acc, ph)
  in
  let e_s, acc_s, _ = run Exec.serial in
  let with_pool () =
    let pool = Exec.create (Exec.Domains { n = 4 }) in
    let r = run pool in
    Exec.shutdown pool;
    r
  in
  let e_p, acc_p, ph_p = with_pool () in
  check_close ~rel:1e-10 "reciprocal energy" e_s e_p;
  check_close ~rel:1e-10 "reciprocal virial" acc_s.Mdsp_ff.Bonded.virial
    acc_p.Mdsp_ff.Bonded.virial;
  let rel =
    rel_force_diff acc_s.Mdsp_ff.Bonded.forces acc_p.Mdsp_ff.Bonded.forces
  in
  check_true "reciprocal forces (rel <= 1e-10)" (rel <= 1e-10);
  check_true "phases were timed"
    (Mdsp_longrange.Gse.phases_total ph_p > 0.);
  let e_p2, acc_p2, _ = with_pool () in
  check_true "grid-phase energy bit-identical" (e_p = e_p2);
  check_true "grid-phase virial bit-identical"
    (acc_p.Mdsp_ff.Bonded.virial = acc_p2.Mdsp_ff.Bonded.virial);
  let identical = ref true in
  Array.iteri
    (fun i f ->
      if f <> acc_p2.Mdsp_ff.Bonded.forces.(i) then identical := false)
    acc_p.Mdsp_ff.Bonded.forces;
  check_true "grid-phase forces bit-identical" !identical

let test_gse_trajectory_determinism () =
  (* A short dynamical GSE run (spread/fft/convolve/gather every step plus
     rebuilds and the thermostat) repeated on fresh pools stays
     bit-identical. *)
  let run () =
    let pool = Exec.create (Exec.Domains { n = 4 }) in
    let eng = gse_engine ~exec:pool () in
    E.run eng 10;
    let pos = Array.copy (E.state eng).Mdsp_md.State.positions in
    Exec.shutdown pool;
    (pos, E.total_energy eng)
  in
  let pos1, e1 = run () in
  let pos2, e2 = run () in
  check_true "GSE trajectory energy bit-identical" (e1 = e2);
  let identical = ref true in
  Array.iteri (fun i p -> if p <> pos2.(i) then identical := false) pos1;
  check_true "GSE trajectory positions bit-identical" !identical

let test_gse_subphase_timings () =
  let eng = gse_engine ~exec:Exec.serial () in
  E.reset_timings eng;
  E.run eng 5;
  let tm = E.timings eng in
  let open FC in
  check_true "calls counted" (tm.calls = 5);
  check_true "spread time recorded" (tm.lr_spread_s > 0.);
  check_true "fft time recorded" (tm.lr_fft_s > 0.);
  check_true "convolve time recorded" (tm.lr_convolve_s > 0.);
  check_true "gather time recorded" (tm.lr_gather_s > 0.);
  let sub =
    tm.lr_spread_s +. tm.lr_fft_s +. tm.lr_convolve_s +. tm.lr_gather_s
  in
  (* The sub-phases partition the grid pipeline; the longrange bucket also
     holds the Ewald self/excluded correction work on top. *)
  check_true "sub-phases within the longrange bucket"
    (sub <= tm.longrange_s +. 1e-9);
  let per = timings_per_call tm in
  check_close ~rel:1e-9 "per-call scaling of sub-phases"
    (tm.lr_spread_s /. 5.) per.lr_spread_s;
  (* timings_total must not double-count the breakdown. *)
  check_true "total excludes the sub-phase breakdown"
    (abs_float
       (timings_total tm
       -. (tm.pair_s +. tm.bonded_s +. tm.longrange_s +. tm.bias_s
          +. tm.neighbor_s +. tm.integrate_s +. tm.constraints_s
          +. tm.thermostat_s))
    < 1e-12);
  E.reset_timings eng;
  check_true "reset clears sub-phases" ((E.timings eng).lr_spread_s = 0.);
  (* A solver-free workload must leave the grid sub-phases untouched. *)
  let plain =
    Mdsp_workload.Workloads.make_engine ~seed:3
      (Mdsp_workload.Workloads.lj_fluid ~n:64 ())
  in
  E.run plain 3;
  check_true "no GSE -> no sub-phase time"
    ((E.timings plain).lr_spread_s = 0.
    && (E.timings plain).lr_fft_s = 0.)

(* --- the flat (SoA) hot path ---

   The Soa_kernels pair/bonded loops are expression-for-expression mirrors
   of the boxed reference kernels, so the SoA path must agree with the
   boxed path *bitwise* — energies, every force component and the virial —
   on every seed workload, serially and on a pool. *)

let soa_systems () =
  [
    ("lj fluid", Mdsp_workload.Workloads.lj_fluid ~n:256 ());
    ("water box", Mdsp_workload.Workloads.water_box ~n_side:3 ());
    ( "bead chain",
      Mdsp_workload.Workloads.bead_chain ~n_beads:16 ~n_total:256 () );
  ]

let compute_sys ?gse_grid ~exec ~soa sys =
  let eng =
    Mdsp_workload.Workloads.make_engine ?gse_grid ~seed:5 ~exec ~soa sys
  in
  check_true "soa flag surfaced" (E.soa_active eng = soa);
  let st = E.state eng in
  let acc = Mdsp_ff.Bonded.make_accum (Mdsp_md.State.n st) in
  let e =
    FC.compute (E.force_calc eng) st.Mdsp_md.State.box
      st.Mdsp_md.State.positions acc
  in
  (e, acc)

let check_bitwise name (e_a, acc_a) (e_b, acc_b) =
  check_true (name ^ ": energies bit-identical") (e_a = e_b);
  check_true
    (name ^ ": virial bit-identical")
    (acc_a.Mdsp_ff.Bonded.virial = acc_b.Mdsp_ff.Bonded.virial);
  let identical = ref true in
  Array.iteri
    (fun i f ->
      if f <> acc_b.Mdsp_ff.Bonded.forces.(i) then identical := false)
    acc_a.Mdsp_ff.Bonded.forces;
  check_true (name ^ ": forces bit-identical") !identical

let test_soa_matches_boxed_serial () =
  List.iter
    (fun (name, sys) ->
      check_bitwise name
        (compute_sys ~exec:Exec.serial ~soa:false sys)
        (compute_sys ~exec:Exec.serial ~soa:true sys))
    (soa_systems ())

let test_soa_matches_boxed_domains () =
  (* The SoA parallel phases mirror the boxed tile decomposition and
     reduction tree shape, so agreement holds bitwise on a pool too. *)
  let pool = Exec.create (Exec.Domains { n = 3 }) in
  List.iter
    (fun (name, sys) ->
      check_bitwise name
        (compute_sys ~exec:pool ~soa:false sys)
        (compute_sys ~exec:pool ~soa:true sys))
    (soa_systems ());
  Exec.shutdown pool

let test_soa_matches_boxed_gse () =
  (* Ewald real-space pairs + GSE reciprocal: the SoA pair kernel covers
     the erfc path; the grid phase stays boxed on both sides. *)
  let sys () = Mdsp_workload.Workloads.water_box ~n_side:3 () in
  check_bitwise "gse water (serial)"
    (compute_sys ~gse_grid:(16, 16, 16) ~exec:Exec.serial ~soa:false (sys ()))
    (compute_sys ~gse_grid:(16, 16, 16) ~exec:Exec.serial ~soa:true (sys ()));
  let pool = Exec.create (Exec.Domains { n = 4 }) in
  check_bitwise "gse water (domains)"
    (compute_sys ~gse_grid:(16, 16, 16) ~exec:pool ~soa:false (sys ()))
    (compute_sys ~gse_grid:(16, 16, 16) ~exec:pool ~soa:true (sys ()));
  Exec.shutdown pool

let test_soa_respa_classes_match () =
  let sys = Mdsp_workload.Workloads.bead_chain ~n_beads:16 ~n_total:256 () in
  let run soa cls =
    let eng =
      Mdsp_workload.Workloads.make_engine ~seed:5 ~exec:Exec.serial ~soa sys
    in
    let st = E.state eng in
    let acc = Mdsp_ff.Bonded.make_accum (Mdsp_md.State.n st) in
    let e =
      FC.compute_class (E.force_calc eng) cls st.Mdsp_md.State.box
        st.Mdsp_md.State.positions acc
    in
    (e, acc)
  in
  List.iter
    (fun (name, cls) ->
      check_bitwise name (run false cls) (run true cls))
    [ ("fast class", `Fast); ("slow class", `Slow) ]

let test_soa_trajectory_matches_boxed () =
  (* Bitwise force identity implies bitwise trajectory identity: same
     seed, same thermostat noise stream, 25 steps with rebuilds and
     constraints. *)
  let run soa =
    let sys = Mdsp_workload.Workloads.water_box ~n_side:3 () in
    let cfg =
      {
        E.default_config with
        dt_fs = 1.0;
        temperature = 300.;
        thermostat = E.Langevin { gamma_fs = 0.02 };
      }
    in
    let eng = Mdsp_workload.Workloads.make_engine ~config:cfg ~seed:7 ~soa sys in
    E.run eng 25;
    (Array.copy (E.state eng).Mdsp_md.State.positions, E.total_energy eng)
  in
  let pos_b, e_b = run false in
  let pos_s, e_s = run true in
  check_true "trajectory energy bit-identical" (e_b = e_s);
  let identical = ref true in
  Array.iteri (fun i p -> if p <> pos_s.(i) then identical := false) pos_b;
  check_true "trajectory positions bit-identical" !identical

let test_soa_parallel_determinism () =
  let run () =
    let pool = Exec.create (Exec.Domains { n = 4 }) in
    let r =
      compute_sys ~exec:pool ~soa:true
        (Mdsp_workload.Workloads.water_box ~n_side:3 ())
    in
    Exec.shutdown pool;
    r
  in
  check_bitwise "fresh pools" (run ()) (run ())

let test_soa_pair_loop_zero_alloc () =
  (* The serial SoA pair window is measured with Gc.minor_words: the flat
     loops must not allocate at all once warm. *)
  let sys = Mdsp_workload.Workloads.lj_fluid ~n:500 () in
  let eng = Mdsp_workload.Workloads.make_engine ~seed:3 ~soa:true sys in
  check_true "soa active" (E.soa_active eng);
  E.run eng 2;
  E.reset_timings eng;
  E.run eng 10;
  let tm = E.timings eng in
  check_true "10 evaluations measured" (tm.FC.calls = 10);
  check_true
    (Printf.sprintf "pair loop allocates zero minor words (got %.1f)"
       tm.FC.pair_words)
    (tm.FC.pair_words = 0.)

let test_soa_phases_race_free () =
  (* The SoA parallel phases under the write-set sanitizer at 2 and 4
     slots: pair tiles, 1-4 pairs, the four bonded terms, the per-atom
     reduction, plus the cell-list bin and pair-list build phases. *)
  List.iter
    (fun slots ->
      let exec = Exec.create ~sanitize:true (Exec.Domains { n = slots }) in
      Fun.protect
        ~finally:(fun () -> Exec.shutdown exec)
        (fun () ->
          ignore
            (compute_sys ~exec ~soa:true
               (Mdsp_workload.Workloads.bead_chain ~n_beads:16 ~n_total:256
                  ()));
          ignore
            (compute_sys ~gse_grid:(16, 16, 16) ~exec ~soa:true
               (Mdsp_workload.Workloads.water_box ~n_side:3 ()))))
    [ 2; 4 ]

let test_nbuild_subphase_timed () =
  let sys = Mdsp_workload.Workloads.lj_fluid ~n:256 () in
  let cfg =
    {
      E.default_config with
      dt_fs = 2.0;
      temperature = 120.;
      thermostat = E.Langevin { gamma_fs = 0.02 };
    }
  in
  let eng = Mdsp_workload.Workloads.make_engine ~config:cfg ~seed:3 sys in
  E.reset_timings eng;
  E.run eng 40;
  let tm = E.timings eng in
  let rebuilt =
    Mdsp_space.Neighbor_list.rebuild_count (FC.nlist (E.force_calc eng)) > 0
  in
  check_true "nbuild within the neighbor bucket"
    (tm.FC.nbuild_s >= 0. && tm.FC.nbuild_s <= tm.FC.neighbor_s +. 1e-9);
  if rebuilt then check_true "rebuilds were timed" (tm.FC.nbuild_s > 0.)

(* --- timing instrumentation --- *)

let test_step_timings_populated () =
  let sys = Mdsp_workload.Workloads.lj_fluid ~n:256 () in
  let eng = Mdsp_workload.Workloads.make_engine ~seed:3 sys in
  E.reset_timings eng;
  E.run eng 10;
  let tm = E.timings eng in
  let open FC in
  check_true "one force evaluation per step" (tm.calls = 10);
  check_true "pair time recorded" (tm.pair_s > 0.);
  check_true "phases non-negative"
    (tm.bonded_s >= 0. && tm.longrange_s >= 0. && tm.bias_s >= 0.
    && tm.neighbor_s >= 0.);
  check_true "integrator sweep time recorded" (tm.integrate_s > 0.);
  let per = timings_per_call tm in
  check_close ~rel:1e-9 "per-call scaling" (tm.pair_s /. 10.) per.pair_s;
  check_true "total is the sum"
    (abs_float
       (timings_total tm
       -. (tm.pair_s +. tm.bonded_s +. tm.longrange_s +. tm.bias_s
          +. tm.neighbor_s +. tm.integrate_s))
    < 1e-12);
  E.reset_timings eng;
  check_true "reset clears" ((E.timings eng).calls = 0)

let test_resource_rows_mapping () =
  let w =
    Mdsp_machine.Perf.plain_workload ~n_atoms:1000 ~density:0.1 ~cutoff:9.
      ~dt_fs:2.
  in
  let b = Mdsp_machine.Perf.step_time (Mdsp_machine.Config.anton_like ()) w in
  let tm = FC.zero_timings () in
  tm.FC.pair_s <- 2.0;
  tm.FC.bonded_s <- 0.5;
  tm.FC.bias_s <- 0.25;
  tm.FC.calls <- 10;
  let rows = Mdsp_machine.Perf.resource_rows b tm in
  let find name =
    List.find (fun r -> r.Mdsp_machine.Perf.resource = name) rows
  in
  (match (find "pair pipelines").Mdsp_machine.Perf.measured_s with
  | Some v -> check_float ~eps:1e-12 "pair maps per-call" 0.2 v
  | None -> Alcotest.fail "pair row unmapped");
  (match (find "flex cores").Mdsp_machine.Perf.measured_s with
  | Some v -> check_float ~eps:1e-12 "flex = bonded + bias" 0.075 v
  | None -> Alcotest.fail "flex row unmapped");
  check_true "sync has no host analogue"
    ((find "sync").Mdsp_machine.Perf.measured_s = None);
  (* The neighbor-build sub-phase row maps timings.nbuild_s. *)
  tm.FC.nbuild_s <- 1.0;
  let rows' = Mdsp_machine.Perf.resource_rows b tm in
  (match
     (List.find
        (fun r -> r.Mdsp_machine.Perf.resource = "  nbuild")
        rows')
       .Mdsp_machine.Perf.measured_s
   with
  | Some v -> check_float ~eps:1e-12 "nbuild maps per-call" 0.1 v
  | None -> Alcotest.fail "nbuild row unmapped");
  (* Unmeasured timings map to nothing. *)
  let rows0 = Mdsp_machine.Perf.resource_rows b (FC.zero_timings ()) in
  check_true "no calls -> no measured columns"
    (List.for_all
       (fun r -> r.Mdsp_machine.Perf.measured_s = None)
       rows0)

let () =
  Alcotest.run "parallel"
    [
      ( "exec",
        [
          Alcotest.test_case "tile_bounds static partition" `Quick
            test_tile_bounds;
          Alcotest.test_case "tree reduction" `Quick test_reduce_tree;
          Alcotest.test_case "pool covers all slots" `Quick
            test_parallel_run_covers_slots;
          Alcotest.test_case "exceptions propagate" `Quick
            test_parallel_run_propagates_exceptions;
        ] );
      ( "agreement",
        [
          Alcotest.test_case "solvated box: serial vs domains" `Quick
            test_serial_vs_domains_agree;
          Alcotest.test_case "bonded chain: serial vs domains" `Quick
            test_bonded_workload_agrees;
          Alcotest.test_case "RESPA fast/slow classes" `Quick
            test_respa_classes_agree;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "single evaluation bit-identical" `Quick
            test_parallel_determinism_single_eval;
          Alcotest.test_case "25-step trajectory bit-identical" `Quick
            test_parallel_determinism_trajectory;
          Alcotest.test_case "integrator sweeps bitwise vs serial at 1/2/4"
            `Quick test_integrator_sweeps_bitwise;
          Alcotest.test_case "constraint sweeps bitwise vs serial at 1/2/4"
            `Quick test_constraint_sweeps_bitwise;
          Alcotest.test_case "water6k constraint sweeps bitwise" `Quick
            test_water6k_constraint_sweeps_bitwise;
          Alcotest.test_case "chain10k thermostat sweeps bitwise" `Quick
            test_chain10k_thermostat_bitwise;
          Alcotest.test_case "backends consistent over a short run" `Quick
            test_engine_backends_consistent;
        ] );
      ( "gse",
        [
          Alcotest.test_case "charged box: serial vs domains" `Quick
            test_gse_serial_vs_domains_agree;
          Alcotest.test_case "grid phase backends + bitwise repeat" `Quick
            test_gse_reciprocal_backends;
          Alcotest.test_case "10-step GSE trajectory bit-identical" `Quick
            test_gse_trajectory_determinism;
          Alcotest.test_case "sub-phase timing sanity" `Quick
            test_gse_subphase_timings;
        ] );
      ( "soa",
        [
          Alcotest.test_case "SoA = boxed bitwise (serial)" `Quick
            test_soa_matches_boxed_serial;
          Alcotest.test_case "SoA = boxed bitwise (domains)" `Quick
            test_soa_matches_boxed_domains;
          Alcotest.test_case "SoA = boxed bitwise (GSE/Ewald)" `Quick
            test_soa_matches_boxed_gse;
          Alcotest.test_case "RESPA fast/slow classes bitwise" `Quick
            test_soa_respa_classes_match;
          Alcotest.test_case "25-step trajectory bitwise" `Quick
            test_soa_trajectory_matches_boxed;
          Alcotest.test_case "parallel SoA deterministic" `Quick
            test_soa_parallel_determinism;
          Alcotest.test_case "pair loop allocation-free" `Quick
            test_soa_pair_loop_zero_alloc;
          Alcotest.test_case "sanitized SoA phases race-free" `Quick
            test_soa_phases_race_free;
        ] );
      ( "timing",
        [
          Alcotest.test_case "per-resource step timings" `Quick
            test_step_timings_populated;
          Alcotest.test_case "nbuild sub-phase" `Quick
            test_nbuild_subphase_timed;
          Alcotest.test_case "model vs measured resource rows" `Quick
            test_resource_rows_mapping;
        ] );
    ]
