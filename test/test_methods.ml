(* Tests for the generality-layer methods: CVs, metadynamics, steered MD,
   umbrella sampling, tempering, REMD, FEP, TAMD, accelerated MD, string
   method, and the machine mapping. *)

open Mdsp_util
open Mdsp_core
open Testsupport
module E = Mdsp_md.Engine

(* --- Collective variables: gradients vs numerics --- *)

let check_cv_gradient ?(rel = 1e-4) (cv : Cv.t) box positions =
  let grads = cv.Cv.gradient box positions in
  let h = 1e-6 in
  List.iter
    (fun (i, g) ->
      let num axis =
        let shift d =
          let p = Array.copy positions in
          let v = p.(i) in
          p.(i) <-
            (match axis with
            | `X -> Vec3.make (v.Vec3.x +. d) v.Vec3.y v.Vec3.z
            | `Y -> Vec3.make v.Vec3.x (v.Vec3.y +. d) v.Vec3.z
            | `Z -> Vec3.make v.Vec3.x v.Vec3.y (v.Vec3.z +. d));
          cv.Cv.value box p
        in
        (shift h -. shift (-.h)) /. (2. *. h)
      in
      let n = Vec3.make (num `X) (num `Y) (num `Z) in
      let tol = Float.max (rel *. Vec3.norm n) 1e-6 in
      if Vec3.dist g n > tol then
        Alcotest.failf "CV %s gradient mismatch on atom %d: %s vs %s"
          cv.Cv.cv_name i (Vec3.to_string g) (Vec3.to_string n))
    grads

let test_cv_distance () =
  let box = Pbc.cubic 20. in
  let pos = [| Vec3.make 3. 4. 5.; Vec3.make 6. 8. 9. |] in
  let cv = Cv.distance ~i:0 ~j:1 in
  check_close ~rel:1e-12 "value" (sqrt 41.) (cv.Cv.value box pos);
  check_cv_gradient cv box pos;
  (* Across the periodic boundary. *)
  let pos2 = [| Vec3.make 0.5 0. 0.; Vec3.make 19.5 0. 0. |] in
  check_close ~rel:1e-9 "min image distance" 1. (cv.Cv.value box pos2)

let test_cv_position () =
  let box = Pbc.cubic 20. in
  let pos = [| Vec3.make 13. 9. 10. |] in
  let cvx = Cv.position ~axis:`X ~i:0 in
  let cvy = Cv.position ~axis:`Y ~i:0 in
  check_close ~rel:1e-12 "x rel center" 3. (cvx.Cv.value box pos);
  check_close ~rel:1e-12 "y rel center" (-1.) (cvy.Cv.value box pos);
  check_cv_gradient cvx box pos

let test_cv_com_distance () =
  let box = Pbc.cubic 30. in
  let masses = [| 2.; 2.; 4.; 4. |] in
  let pos =
    [|
      Vec3.make 10. 10. 10.; Vec3.make 12. 10. 10.;
      Vec3.make 20. 10. 10.; Vec3.make 22. 10. 10.;
    |]
  in
  let cv =
    Cv.com_distance ~group_a:[| 0; 1 |] ~group_b:[| 2; 3 |] ~masses
  in
  check_close ~rel:1e-9 "COM distance" 10. (cv.Cv.value box pos);
  check_cv_gradient cv box pos

let test_cv_coordination () =
  let box = Pbc.cubic 30. in
  let pos =
    [|
      Vec3.make 10. 10. 10.;
      Vec3.make 12. 10. 10.;  (* r = 2 = r0: contributes 1/2 *)
      Vec3.make 24. 10. 10.;  (* far: ~ 0 *)
    |]
  in
  let cv = Cv.coordination ~i:0 ~others:[| 1; 2 |] ~r0:2.0 in
  check_close ~rel:1e-3 "coordination half at r0" 0.5 (cv.Cv.value box pos);
  check_cv_gradient cv box pos

let test_cv_angle () =
  let box = Pbc.cubic 20. in
  (* 90-degree angle at atom 1. *)
  let pos = [| Vec3.make 2. 1. 1.; Vec3.make 1. 1. 1.; Vec3.make 1. 3. 1. |] in
  let cv = Cv.angle ~i:0 ~j:1 ~k:2 in
  check_close ~rel:1e-9 "right angle" (Float.pi /. 2.) (cv.Cv.value box pos);
  check_cv_gradient cv box pos;
  (* A generic non-degenerate geometry too. *)
  let pos2 =
    [| Vec3.make 2. 1.5 0.8; Vec3.make 1. 1. 1.; Vec3.make 0.7 2.8 1.9 |]
  in
  check_cv_gradient cv box pos2

let test_cv_gyration_radius () =
  let box = Pbc.cubic 30. in
  let masses = [| 1.; 1.; 1.; 1. |] in
  (* Four unit-mass atoms at the corners of a square of side 2: every atom
     sits sqrt(2) from the COM. *)
  let pos =
    [|
      Vec3.make 9. 9. 10.; Vec3.make 11. 9. 10.;
      Vec3.make 11. 11. 10.; Vec3.make 9. 11. 10.;
    |]
  in
  let cv = Cv.gyration_radius ~atoms:[| 0; 1; 2; 3 |] ~masses in
  check_close ~rel:1e-9 "Rg of square" (sqrt 2.) (cv.Cv.value box pos);
  check_cv_gradient cv box pos;
  (* Uniform translation leaves Rg unchanged. *)
  let shifted = Array.map (fun p -> Vec3.add p (Vec3.make 3. (-1.) 2.)) pos in
  check_close ~rel:1e-9 "translation invariant" (sqrt 2.)
    (cv.Cv.value box shifted)

let test_cv_dihedral () =
  let box = Pbc.cubic 30. in
  (* Trans-like geometry: phi near pi. *)
  let pos =
    [|
      Vec3.make 9. 11. 10.; Vec3.make 10. 10. 10.;
      Vec3.make 11. 10. 10.; Vec3.make 12. 9. 10.;
    |]
  in
  let cv = Cv.dihedral ~i:0 ~j:1 ~k:2 ~l:3 in
  check_close ~rel:1e-6 "trans is pi" Float.pi
    (abs_float (cv.Cv.value box pos));
  (* A generic twisted geometry: gradient vs numerics. *)
  let pos2 =
    [|
      Vec3.make 9. 11. 10.3; Vec3.make 10. 10. 10.;
      Vec3.make 11. 10.2 10.1; Vec3.make 12. 10.9 11.2;
    |]
  in
  check_cv_gradient cv box pos2;
  (* Gradient sums to zero (translation invariance). *)
  let total =
    List.fold_left
      (fun acc (_, g) -> Vec3.add acc g)
      Vec3.zero
      (cv.Cv.gradient box pos2)
  in
  check_true "gradient translation-invariant" (Vec3.norm total < 1e-9)

let test_harmonic_bias_energy_and_tracking () =
  let box = Pbc.cubic 20. in
  let pos = [| Vec3.make 10. 10. 10.; Vec3.make 13. 10. 10. |] in
  let cv = Cv.distance ~i:0 ~j:1 in
  let bias, last =
    Cv.harmonic_bias_tracked ~name:"t" ~cv ~k:5. ~center:(fun () -> 2.)
  in
  let acc = Mdsp_ff.Bonded.make_accum 2 in
  let e = bias.Mdsp_md.Force_calc.bias_compute box pos acc in
  check_close ~rel:1e-9 "bias energy" 5. e;
  check_close ~rel:1e-9 "tracked value" 3. (last ())

(* --- Metadynamics --- *)

let test_metadynamics_bias_math () =
  let cv = Cv.position ~axis:`X ~i:0 in
  let m =
    Metadynamics.create ~cv ~sigma:0.5 ~height:1.0 ~stride:10 ~temp:300. ()
  in
  check_float ~eps:0. "no hills yet" 0. (Metadynamics.bias_energy m 0.);
  Alcotest.(check int) "count" 0 (Metadynamics.n_hills m)

let test_metadynamics_deposits_and_biases () =
  let sys = Mdsp_workload.Workloads.double_well () in
  let cfg =
    {
      E.default_config with
      dt_fs = 2.0;
      temperature = 300.;
      thermostat = E.Langevin { gamma_fs = 0.01 };
    }
  in
  let eng = Mdsp_workload.Workloads.make_engine ~config:cfg sys in
  let cv = Cv.position ~axis:`X ~i:0 in
  let m =
    Metadynamics.create ~cv ~sigma:0.3 ~height:0.05 ~stride:25 ~temp:300. ()
  in
  Metadynamics.attach m eng;
  (* Deposit little enough total bias (24 * 0.05 = 1.2 kcal/mol << 3
     kcal/mol barrier) that the walker cannot yet have escaped. *)
  E.run eng 600;
  Alcotest.(check int) "one hill per stride" 24 (Metadynamics.n_hills m);
  check_true "starting well filled first"
    (Metadynamics.bias_energy m (-2.5) > Metadynamics.bias_energy m 2.5)

let test_metadynamics_well_tempered_heights_decay () =
  let sys = Mdsp_workload.Workloads.double_well () in
  let cfg =
    {
      E.default_config with
      dt_fs = 2.0;
      temperature = 300.;
      thermostat = E.Langevin { gamma_fs = 0.01 };
    }
  in
  let eng = Mdsp_workload.Workloads.make_engine ~config:cfg sys in
  let cv = Cv.position ~axis:`X ~i:0 in
  let m =
    Metadynamics.create ~well_tempered:1500. ~cv ~sigma:0.3 ~height:0.2
      ~stride:25 ~temp:300. ()
  in
  Metadynamics.attach m eng;
  E.run eng 5000;
  (* Well-tempered bias converges: total bias < plain-deposition total. *)
  let total = Metadynamics.bias_energy m (-2.5) in
  check_true "well-tempered bias stays bounded"
    (total < 0.2 *. float_of_int (Metadynamics.n_hills m))

(* --- 2D metadynamics --- *)

let test_metadynamics2_bias_and_forces () =
  let cv1 = Cv.position ~axis:`X ~i:0 in
  let cv2 = Cv.position ~axis:`Y ~i:0 in
  let m =
    Metadynamics2.create ~cv1 ~cv2 ~sigma1:0.5 ~sigma2:0.7 ~height:1.2
      ~stride:10 ~temp:300. ()
  in
  check_float ~eps:0. "empty" 0. (Metadynamics2.bias_energy m 0. 0.);
  (* Deposit by driving the private path through an engine hook. *)
  let sys = Mdsp_workload.Workloads.double_well_2d () in
  let cfg =
    {
      E.default_config with
      dt_fs = 2.0;
      temperature = 200.;
      thermostat = E.Langevin { gamma_fs = 0.02 };
    }
  in
  let eng = Mdsp_workload.Workloads.make_engine ~config:cfg sys in
  Metadynamics2.attach m eng;
  E.run eng 200;
  Alcotest.(check int) "hills deposited" 20 (Metadynamics2.n_hills m);
  (* The bias is positive where the walker has been. *)
  let st = E.state eng in
  let box = st.Mdsp_md.State.box in
  let s1 = cv1.Cv.value box st.Mdsp_md.State.positions in
  let s2 = cv2.Cv.value box st.Mdsp_md.State.positions in
  check_true "bias accumulated at walker" (Metadynamics2.bias_energy m s1 s2 > 0.);
  (* The surface is -scale * bias everywhere. *)
  let surf =
    Metadynamics2.free_energy_surface m ~lo1:(-3.) ~hi1:3. ~bins1:6 ~lo2:(-3.)
      ~hi2:3. ~bins2:6
  in
  Array.iter
    (Array.iter (fun (a, b, f) ->
         check_close ~rel:1e-9 "surface consistency"
           (-.Metadynamics2.bias_energy m a b)
           f))
    surf

let test_metadynamics2_surface_and_path () =
  let cv1 = Cv.position ~axis:`X ~i:0 in
  let cv2 = Cv.position ~axis:`Y ~i:0 in
  let sys = Mdsp_workload.Workloads.double_well_2d () in
  let cfg =
    {
      E.default_config with
      dt_fs = 2.0;
      temperature = 250.;
      thermostat = E.Langevin { gamma_fs = 0.02 };
    }
  in
  let eng = Mdsp_workload.Workloads.make_engine ~config:cfg sys in
  let m =
    Metadynamics2.create ~well_tempered:2500. ~cv1 ~cv2 ~sigma1:0.4
      ~sigma2:0.4 ~height:0.2 ~stride:20 ~temp:250. ()
  in
  Metadynamics2.attach m eng;
  E.run eng 60_000;
  check_true "many hills" (Metadynamics2.n_hills m > 1000);
  (* Crossings go through the bowed channel, so the accumulated bias at the
     channel apex (0, 1.5) must dominate the straight-line saddle point
     (0, -1), i.e. the free-energy surface prefers the channel. *)
  let b_channel = Metadynamics2.bias_energy m 0. 1.5 in
  let b_straight = Metadynamics2.bias_energy m 0. (-1.0) in
  check_true
    (Printf.sprintf "channel sampled more (%.2f > %.2f)" b_channel b_straight)
    (b_channel > b_straight);
  (* And the ridge path machinery returns one point per x column. *)
  let path =
    Metadynamics2.ridge_path m ~lo1:(-3.) ~hi1:3. ~bins1:13 ~lo2:(-1.) ~hi2:3.
      ~bins2:17
  in
  Alcotest.(check int) "path columns" 13 (Array.length path)

(* --- Steered MD --- *)

let test_smd_pulls_and_accumulates_work () =
  let eng = lj_engine ~n:64 ~equil:500 () in
  let cv = Cv.distance ~i:0 ~j:1 in
  let st = E.state eng in
  let start = cv.Cv.value st.Mdsp_md.State.box st.Mdsp_md.State.positions in
  let smd =
    Smd.create ~cv ~k:20. ~start ~speed_per_step:0.002 ~record_stride:10 ()
  in
  Smd.attach smd eng;
  E.run eng 2000;
  let final = cv.Cv.value st.Mdsp_md.State.box st.Mdsp_md.State.positions in
  check_close ~rel:1e-9 "center advanced" (start +. (0.002 *. 2000.))
    (Smd.center smd);
  check_true "CV followed the restraint" (final > start +. 2.);
  check_true "trace recorded" (List.length (Smd.trace smd) >= 190);
  check_true "work finite" (Float.is_finite (Smd.work smd))

(* --- Umbrella sampling --- *)

let test_umbrella_recovers_double_well_pmf () =
  let make_engine () =
    let sys = Mdsp_workload.Workloads.double_well () in
    let cfg =
      {
        E.default_config with
        dt_fs = 2.0;
        temperature = 300.;
        thermostat = E.Langevin { gamma_fs = 0.02 };
      }
    in
    Mdsp_workload.Workloads.make_engine ~config:cfg sys
  in
  let cv = Cv.position ~axis:`X ~i:0 in
  let centers = Array.init 13 (fun i -> -3.0 +. (0.5 *. float_of_int i)) in
  let plan =
    Umbrella.make_plan ~cv ~k:4.0 ~centers ~equil_steps:400 ~sample_steps:3000
      ~sample_stride:5
  in
  let results = Umbrella.run plan ~make_engine in
  let p = Umbrella.solve ~temp:300. ~lo:(-3.4) ~hi:3.4 ~bins:40 results in
  (* The recovered PMF should show the 3 kcal/mol barrier at x ~ 0. *)
  let f_at x =
    let best = ref infinity and bf = ref nan in
    Array.iteri
      (fun b c ->
        if abs_float (c -. x) < !best && not (Float.is_nan p.Mdsp_analysis.Wham.free_energy.(b))
        then begin
          best := abs_float (c -. x);
          bf := p.Mdsp_analysis.Wham.free_energy.(b)
        end)
      p.Mdsp_analysis.Wham.centers;
    !bf
  in
  let barrier = f_at 0. -. Float.min (f_at (-2.5)) (f_at 2.5) in
  check_true
    (Printf.sprintf "umbrella/WHAM barrier %.2f in [2, 4]" barrier)
    (barrier > 2.0 && barrier < 4.0)

(* --- Simulated tempering --- *)

let test_tempering_walks_ladder () =
  let eng = lj_engine ~n:108 ~temp:120. ~equil:1000 () in
  let temps = [| 120.; 132.; 145.; 160. |] in
  let st = Tempering.create ~temps ~stride:50 () in
  Tempering.attach st eng;
  E.run eng 30_000;
  let visits = Tempering.visits st in
  Array.iteri
    (fun i v ->
      check_true (Printf.sprintf "rung %d visited (%d)" i v) (v > 10))
    visits;
  check_true "healthy acceptance"
    (Tempering.acceptance_rate st > 0.1);
  check_true "weights ordered sensibly"
    (Array.length (Tempering.weights st) = 4)

let test_tempering_freeze () =
  let eng = lj_engine ~n:64 ~temp:120. ~equil:200 () in
  let st = Tempering.create ~temps:[| 120.; 140. |] ~stride:20 () in
  Tempering.attach st eng;
  E.run eng 2000;
  Tempering.freeze_adaption st;
  let w = Tempering.weights st in
  E.run eng 2000;
  Alcotest.check Alcotest.(array (Alcotest.float 1e-12))
    "weights frozen" w (Tempering.weights st)

let test_tempering_validation () =
  Alcotest.check_raises "decreasing temps"
    (Invalid_argument "Tempering.create: temperatures must increase")
    (fun () -> ignore (Tempering.create ~temps:[| 300.; 200. |] ~stride:10 ()))

(* --- REMD --- *)

let test_remd_exchanges_and_bookkeeping () =
  let temps = [| 120.; 135.; 150. |] in
  let engines =
    Array.mapi
      (fun i t ->
        let sys = Mdsp_workload.Workloads.lj_fluid ~n:64 () in
        let cfg =
          {
            E.default_config with
            dt_fs = 2.0;
            temperature = t;
            thermostat = E.Langevin { gamma_fs = 0.02 };
          }
        in
        Mdsp_workload.Workloads.make_engine ~config:cfg ~seed:(100 + i) sys)
      temps
  in
  Array.iter (fun e -> E.run e 500) engines;
  let remd = Remd.create ~engines ~temps ~stride:25 ~seed:7 in
  Remd.run remd ~sweeps:80;
  let acc = Remd.acceptance remd in
  Array.iteri
    (fun i a ->
      check_true (Printf.sprintf "pair %d acceptance %.2f > 0.05" i a) (a > 0.05))
    acc;
  (* Config tracking is a permutation of rungs. *)
  let cfg_of = Remd.replica_of_config remd in
  let sorted = Array.copy cfg_of in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" [| 0; 1; 2 |] sorted;
  check_true "bytes model positive" (Remd.method_bytes_per_step remd ~n_atoms:64 > 0.)

(* --- FEP --- *)

let test_fep_evaluator_limits () =
  let sys = Mdsp_workload.Workloads.lj_fluid ~n:20 () in
  let topo = sys.Mdsp_workload.Workloads.topo in
  let solute = Array.init 20 (fun i -> i = 0) in
  let info =
    Fep.make_info topo ~solute ~cutoff:8.
      ~elec:Mdsp_ff.Pair_interactions.No_coulomb
  in
  let base =
    Mdsp_ff.Pair_interactions.of_topology topo ~cutoff:8.
      ~trunc:Mdsp_ff.Nonbonded.Shift ~elec:Mdsp_ff.Pair_interactions.No_coulomb
  in
  let ev1 = Fep.evaluator info ~lambda:1.0 in
  let ev0 = Fep.evaluator info ~lambda:0.0 in
  (* lambda = 1: cross pair matches the unmodified evaluator. *)
  let e1, f1 = ev1.Mdsp_ff.Pair_interactions.eval 0 5 16. in
  let eb, fb = base.Mdsp_ff.Pair_interactions.eval 0 5 16. in
  check_close ~rel:1e-9 "lambda=1 energy" eb e1;
  check_close ~rel:1e-9 "lambda=1 force" fb f1;
  (* lambda = 0: cross pair decoupled. *)
  let e0, _ = ev0.Mdsp_ff.Pair_interactions.eval 0 5 16. in
  check_float ~eps:1e-12 "lambda=0 decoupled" 0. e0;
  (* Environment-environment pairs never change. *)
  let ee1, _ = ev0.Mdsp_ff.Pair_interactions.eval 3 5 16. in
  let ee2, _ = base.Mdsp_ff.Pair_interactions.eval 3 5 16. in
  check_close ~rel:1e-12 "env-env untouched" ee2 ee1

let test_fep_cross_energy_monotone_in_lambda () =
  let sys = Mdsp_workload.Workloads.lj_fluid ~n:50 () in
  let topo = sys.Mdsp_workload.Workloads.topo in
  let solute = Array.init 50 (fun i -> i = 0) in
  let info =
    Fep.make_info topo ~solute ~cutoff:8.
      ~elec:Mdsp_ff.Pair_interactions.No_coulomb
  in
  let box = sys.Mdsp_workload.Workloads.box in
  let pos = sys.Mdsp_workload.Workloads.positions in
  let e l = Fep.cross_energy info ~lambda:l box pos in
  check_float ~eps:1e-12 "decoupled zero" 0. (e 0.);
  check_true "coupling changes energy" (abs_float (e 1.) > 1e-6)

let test_fep_table_evaluator_matches_analytic () =
  (* The per-window table compilation must agree with the analytic
     lambda evaluator across the schedule — the machine runs FEP windows
     at full pipeline speed with no change in physics. *)
  let sys = Mdsp_workload.Workloads.bead_chain ~n_beads:8 ~n_total:60 () in
  let topo = sys.Mdsp_workload.Workloads.topo in
  let solute = Array.init 60 (fun i -> i < 8) in
  let info =
    Fep.make_info topo ~solute ~cutoff:8.
      ~elec:Mdsp_ff.Pair_interactions.Cutoff_coulomb
  in
  let box = sys.Mdsp_workload.Workloads.box in
  let pos = sys.Mdsp_workload.Workloads.positions in
  List.iter
    (fun lambda ->
      let analytic = Fep.evaluator info ~lambda in
      let tabled = Fep.table_evaluator info ~lambda ~n:4096 in
      let r1 =
        Mdsp_baseline.Reference.compute topo box pos ~evaluator:analytic
      in
      let r2 = Mdsp_baseline.Reference.compute topo box pos ~evaluator:tabled in
      let err =
        Mdsp_baseline.Reference.max_force_error
          r1.Mdsp_baseline.Reference.forces r2.Mdsp_baseline.Reference.forces
      in
      check_true
        (Printf.sprintf "lambda=%.1f force error %.1e < 1e-4" lambda err)
        (err < 1e-4);
      check_close ~rel:1e-4
        (Printf.sprintf "lambda=%.1f energy" lambda)
        r1.Mdsp_baseline.Reference.pair_energy
        r2.Mdsp_baseline.Reference.pair_energy)
    [ 0.0; 0.3; 0.7; 1.0 ]

let test_fep_harmonic_analytic () =
  (* Alchemical change of a harmonic spring constant on one particle:
     dF = (3/2) kT ln (k1 / k0) for an isotropic 3D harmonic well with
     energy k x^2 (effective spring 2k per dof). Sample state 0 exactly and
     use exponential averaging; this validates the estimator chain against
     an analytic answer independent of MD. *)
  let temp = 300. in
  let kt = Units.kt temp in
  let k0 = 1.0 and k1 = 2.0 in
  let rng = Rng.create 95 in
  let sigma = sqrt (kt /. (2. *. k0)) in
  let du =
    Array.init 400_000 (fun _ ->
        let x = Rng.gaussian_ms rng ~mean:0. ~sigma in
        let y = Rng.gaussian_ms rng ~mean:0. ~sigma in
        let z = Rng.gaussian_ms rng ~mean:0. ~sigma in
        (k1 -. k0) *. ((x *. x) +. (y *. y) +. (z *. z)))
  in
  let df = Mdsp_analysis.Free_energy.exp_averaging ~temp du in
  let expected = 1.5 *. kt *. log (k1 /. k0) in
  check_close ~rel:0.05 "harmonic alchemy" expected df

let test_fep_run_produces_windows () =
  let sys = Mdsp_workload.Workloads.lj_fluid ~n:50 () in
  let topo = sys.Mdsp_workload.Workloads.topo in
  let solute = Array.init 50 (fun i -> i = 0) in
  let info =
    Fep.make_info topo ~solute ~cutoff:8.
      ~elec:Mdsp_ff.Pair_interactions.No_coulomb
  in
  let cfg =
    {
      E.default_config with
      dt_fs = 2.0;
      temperature = 120.;
      thermostat = E.Langevin { gamma_fs = 0.02 };
    }
  in
  let eng = Mdsp_workload.Workloads.make_engine ~config:cfg ~cutoff:8. sys in
  E.run eng 300;
  let res =
    Fep.run info ~engine:eng ~lambdas:[| 0.; 0.5; 1.0 |] ~temp:120.
      ~equil_steps:100 ~sample_steps:400 ~sample_stride:10
  in
  Alcotest.(check int) "three windows" 3 (List.length res.Fep.windows);
  Alcotest.(check int) "two stages" 2 (Array.length res.Fep.per_stage);
  check_true "finite dF" (Float.is_finite res.Fep.delta_f);
  (* Forward samples exist in all but the last window. *)
  List.iteri
    (fun i w ->
      if i < 2 then check_true "forward samples" (Array.length w.Fep.du_forward = 40))
    res.Fep.windows

(* --- Widom insertion --- *)

let test_widom_ghost_with_zero_epsilon () =
  (* A ghost that does not interact: every insertion energy is 0, mu_ex = 0. *)
  let eng = lj_engine ~n:64 ~equil:200 () in
  let w =
    Widom.create ~epsilon:0. ~sigma:3.4 ~cutoff:8. ~insertions_per_frame:10
      ~seed:2
  in
  Widom.sample w eng;
  Alcotest.(check int) "samples" 10 (Widom.n_samples w);
  Array.iter
    (fun du -> check_float ~eps:1e-12 "no interaction" 0. du)
    (Widom.insertion_energies w);
  check_float ~eps:1e-9 "mu_ex zero" 0. (Widom.mu_excess w ~temp:120.)

let test_widom_dense_fluid_positive_at_high_density () =
  (* At rho* = 1.05 and modest T, insertions mostly hit cores: mu_ex > 0. *)
  let sys = Mdsp_workload.Workloads.lj_fluid ~rho_star:1.05 ~n:108 () in
  let cfg =
    {
      E.default_config with
      dt_fs = 2.0;
      temperature = 120.;
      thermostat = E.Langevin { gamma_fs = 0.02 };
    }
  in
  let eng = Mdsp_workload.Workloads.make_engine ~config:cfg ~cutoff:8. sys in
  E.run eng 1500;
  let w =
    Widom.create ~epsilon:0.238 ~sigma:3.405 ~cutoff:8.
      ~insertions_per_frame:200 ~seed:4
  in
  Widom.attach w ~stride:25 eng;
  E.run eng 5000;
  check_true "dense fluid resists insertion"
    (Widom.mu_excess w ~temp:120. > 0.5)

(* --- TAMD --- *)

let test_tamd_accelerates_crossing () =
  let crossings trace =
    let n = ref 0 and side = ref 0 in
    List.iter
      (fun x ->
        let s = if x > 0.5 then 1 else if x < -0.5 then -1 else 0 in
        if s <> 0 && !side <> 0 && s <> !side then incr n;
        if s <> 0 then side := s)
      trace;
    !n
  in
  let run ~tamd seed =
    let sys = Mdsp_workload.Workloads.double_well () in
    let cfg =
      {
        E.default_config with
        dt_fs = 2.0;
        temperature = 200.;
        thermostat = E.Langevin { gamma_fs = 0.02 };
      }
    in
    let eng = Mdsp_workload.Workloads.make_engine ~config:cfg ~seed sys in
    let cv = Cv.position ~axis:`X ~i:0 in
    if tamd then begin
      let t =
        Tamd.create ~cv ~k:10. ~s0:(-2.5) ~gamma:0.1 ~s_temp:1500. ~seed ()
      in
      Tamd.attach t eng
    end;
    let trace = ref [] in
    E.add_post_step eng ~name:"trace" (fun eng ->
        let st = E.state eng in
        trace :=
          cv.Cv.value st.Mdsp_md.State.box st.Mdsp_md.State.positions :: !trace);
    E.run eng 15_000;
    crossings (List.rev !trace)
  in
  let plain = run ~tamd:false 3 + run ~tamd:false 4 in
  let accel = run ~tamd:true 3 + run ~tamd:true 4 in
  check_true
    (Printf.sprintf "TAMD crossings %d > plain %d" accel plain)
    (accel > plain)

let test_tamd_validation () =
  let cv = Cv.position ~axis:`X ~i:0 in
  Alcotest.check_raises "bad gamma"
    (Invalid_argument "Tamd.create: gamma must be in (0, 1] (per-step mobility)")
    (fun () ->
      ignore (Tamd.create ~cv ~k:1. ~s0:0. ~gamma:2. ~s_temp:300. ~seed:1 ()))

(* --- Accelerated MD --- *)

let test_amd_boost_formula () =
  let a = Amd.create ~threshold:10. ~alpha:2. in
  (* Above threshold: nothing. *)
  let dv, s = Amd.boost a 12. in
  check_float ~eps:0. "no boost above E" 0. dv;
  check_float ~eps:0. "unscaled above E" 1. s;
  (* Below: dV = (E-V)^2/(alpha+E-V); at V=6: 16/6. *)
  let dv, s = Amd.boost a 6. in
  check_close ~rel:1e-12 "boost value" (16. /. 6.) dv;
  check_true "scale in (0,1)" (s > 0. && s < 1.);
  (* Modified potential V + dV is monotone in V (no force inversion). *)
  let v_star v = v +. fst (Amd.boost a v) in
  check_true "monotone modified potential"
    (v_star 4. < v_star 6. && v_star 6. < v_star 9.9)

let test_amd_transform_scales_forces () =
  let sys = Mdsp_workload.Workloads.double_well () in
  let cfg =
    {
      E.default_config with
      dt_fs = 2.0;
      temperature = 200.;
      thermostat = E.Langevin { gamma_fs = 0.02 };
    }
  in
  let eng = Mdsp_workload.Workloads.make_engine ~config:cfg sys in
  let e0 = E.potential_energy eng in
  let amd = Amd.create ~threshold:(e0 +. 5.) ~alpha:1. in
  Amd.attach amd eng;
  check_true "boost recorded" (Amd.last_boost amd > 0.);
  E.run eng 200;
  let samples = Amd.boost_samples amd in
  check_true "boost samples accumulate" (Array.length samples > 100);
  let w = Amd.reweighting_factors amd ~temp:200. in
  Array.iter (fun x -> check_true "reweights >= 1" (x >= 1.)) w;
  Amd.detach eng;
  E.run eng 10;
  check_true "detached cleanly" (Float.is_finite (E.total_energy eng))

(* --- String method --- *)

let test_string_reparametrize_equal_arcs () =
  let images =
    [| [| 0.; 0. |]; [| 0.1; 0. |]; [| 3.; 0. |]; [| 4.; 0. |] |]
  in
  let r = String_method.reparametrize images in
  (* Endpoints fixed. *)
  check_float ~eps:1e-12 "first fixed" 0. r.(0).(0);
  check_float ~eps:1e-12 "last fixed" 4. r.(3).(0);
  (* Interior at 4/3 and 8/3. *)
  check_close ~rel:1e-9 "interior 1" (4. /. 3.) r.(1).(0);
  check_close ~rel:1e-9 "interior 2" (8. /. 3.) r.(2).(0)

let test_string_finds_bowed_path () =
  let sys = Mdsp_workload.Workloads.double_well_2d () in
  let cfg =
    {
      E.default_config with
      dt_fs = 2.0;
      temperature = 150.;
      thermostat = E.Langevin { gamma_fs = 0.05 };
    }
  in
  let eng = Mdsp_workload.Workloads.make_engine ~config:cfg sys in
  let cvx = Cv.position ~axis:`X ~i:0 in
  let cvy = Cv.position ~axis:`Y ~i:0 in
  let sm =
    String_method.create ~cvs:[| cvx; cvy |] ~start:[| -2.5; 0. |]
      ~stop:[| 2.5; 0. |] ~n_images:9 ~engine:eng ~k:20. ~equil_steps:200
      ~n_swarms:10 ~swarm_steps:40 ~seed:5
  in
  for _ = 1 to 20 do
    ignore (String_method.iterate sm)
  done;
  let images = String_method.images sm in
  (* The middle image must lift off the straight line toward the bowed
     channel at y ~ 1.5. *)
  let mid = images.(4) in
  check_true
    (Printf.sprintf "saddle image lifted: y = %.2f > 0.8" mid.(1))
    (mid.(1) > 0.8);
  Alcotest.(check int) "iteration count" 20 (String_method.iterations sm);
  Alcotest.(check int) "history recorded" 20
    (List.length (String_method.history sm))

(* --- Mapping --- *)

let test_mapping_overheads_small () =
  let cfg = Mdsp_machine.Config.anton_like () in
  let base =
    Mdsp_machine.Perf.plain_workload ~n_atoms:25_000 ~density:0.1 ~cutoff:9.
      ~dt_fs:2.5
  in
  let cv = Cv.distance ~i:0 ~j:1 in
  let meta = Metadynamics.create ~cv ~sigma:0.3 ~height:0.1 ~stride:100 ~temp:300. () in
  let smd = Smd.create ~cv ~k:10. ~start:0. ~speed_per_step:1e-4 () in
  let temper = Tempering.create ~temps:[| 300.; 320. |] ~stride:100 () in
  let costs =
    [
      Mapping.plain;
      Mapping.of_metadynamics meta;
      Mapping.of_smd smd;
      Mapping.of_tempering temper;
    ]
  in
  let rows = Mapping.table cfg base costs in
  Alcotest.(check int) "row per method" 4 (List.length rows);
  List.iter
    (fun r ->
      check_true
        (Printf.sprintf "%s overhead %.2f%% < 5%%" r.Mapping.name
           r.Mapping.overhead_pct)
        (r.Mapping.overhead_pct < 5.))
    rows

let test_mapping_fep_costs_more () =
  let cfg = Mdsp_machine.Config.anton_like () in
  let base =
    Mdsp_machine.Perf.plain_workload ~n_atoms:200_000 ~density:0.1 ~cutoff:9.
      ~dt_fs:2.5
  in
  let sys = Mdsp_workload.Workloads.lj_fluid ~n:20 () in
  let info =
    Fep.make_info sys.Mdsp_workload.Workloads.topo
      ~solute:(Array.init 20 (fun i -> i = 0))
      ~cutoff:8. ~elec:Mdsp_ff.Pair_interactions.No_coulomb
  in
  let fep_over = Mapping.overhead cfg base (Mapping.of_fep info) in
  let rest_over = Mapping.overhead cfg base Mapping.plain in
  check_true "FEP costs more than plain" (fep_over > rest_over);
  check_true "but still moderate" (fep_over < 0.5)

let () =
  Alcotest.run "mdsp_core_methods"
    [
      ( "cv",
        [
          Alcotest.test_case "distance" `Quick test_cv_distance;
          Alcotest.test_case "position" `Quick test_cv_position;
          Alcotest.test_case "com distance" `Quick test_cv_com_distance;
          Alcotest.test_case "coordination" `Quick test_cv_coordination;
          Alcotest.test_case "angle" `Quick test_cv_angle;
          Alcotest.test_case "gyration radius" `Quick test_cv_gyration_radius;
          Alcotest.test_case "dihedral" `Quick test_cv_dihedral;
          Alcotest.test_case "harmonic bias" `Quick
            test_harmonic_bias_energy_and_tracking;
        ] );
      ( "metadynamics",
        [
          Alcotest.test_case "bias math" `Quick test_metadynamics_bias_math;
          Alcotest.test_case "deposits and biases" `Slow
            test_metadynamics_deposits_and_biases;
          Alcotest.test_case "well-tempered decay" `Slow
            test_metadynamics_well_tempered_heights_decay;
          Alcotest.test_case "2D deposits" `Quick
            test_metadynamics2_bias_and_forces;
          Alcotest.test_case "2D surface path" `Slow
            test_metadynamics2_surface_and_path;
        ] );
      ( "smd",
        [ Alcotest.test_case "pulls and records" `Slow test_smd_pulls_and_accumulates_work ] );
      ( "umbrella",
        [
          Alcotest.test_case "recovers double-well PMF" `Slow
            test_umbrella_recovers_double_well_pmf;
        ] );
      ( "tempering",
        [
          Alcotest.test_case "walks the ladder" `Slow
            test_tempering_walks_ladder;
          Alcotest.test_case "freeze" `Slow test_tempering_freeze;
          Alcotest.test_case "validation" `Quick test_tempering_validation;
        ] );
      ( "remd",
        [ Alcotest.test_case "exchanges" `Slow test_remd_exchanges_and_bookkeeping ] );
      ( "fep",
        [
          Alcotest.test_case "evaluator limits" `Quick test_fep_evaluator_limits;
          Alcotest.test_case "cross energy" `Quick
            test_fep_cross_energy_monotone_in_lambda;
          Alcotest.test_case "harmonic analytic" `Quick
            test_fep_harmonic_analytic;
          Alcotest.test_case "per-window tables match analytic" `Quick
            test_fep_table_evaluator_matches_analytic;
          Alcotest.test_case "window run" `Slow test_fep_run_produces_windows;
        ] );
      ( "widom",
        [
          Alcotest.test_case "zero-epsilon ghost" `Quick
            test_widom_ghost_with_zero_epsilon;
          Alcotest.test_case "dense fluid" `Slow
            test_widom_dense_fluid_positive_at_high_density;
        ] );
      ( "tamd",
        [
          Alcotest.test_case "accelerates crossing" `Slow
            test_tamd_accelerates_crossing;
          Alcotest.test_case "validation" `Quick test_tamd_validation;
        ] );
      ( "amd",
        [
          Alcotest.test_case "boost formula" `Quick test_amd_boost_formula;
          Alcotest.test_case "transform scales forces" `Slow
            test_amd_transform_scales_forces;
        ] );
      ( "string",
        [
          Alcotest.test_case "reparametrize" `Quick
            test_string_reparametrize_equal_arcs;
          Alcotest.test_case "finds bowed path" `Slow
            test_string_finds_bowed_path;
        ] );
      ( "mapping",
        [
          Alcotest.test_case "small overheads" `Quick
            test_mapping_overheads_small;
          Alcotest.test_case "FEP pair passes" `Quick test_mapping_fep_costs_more;
        ] );
    ]
