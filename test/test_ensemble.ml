(* The ensemble orchestration subsystem: sharded REMD must be bitwise
   identical to the sequential Remd.run path for any slot count, a
   checkpoint -> restore -> continue must equal the uninterrupted run
   exactly, tempering walkers must be interleaving-independent, and
   Remd.create must reject malformed ladders up front. *)

open Mdsp_util
open Testsupport
module E = Mdsp_md.Engine
module State = Mdsp_md.State
module Remd = Mdsp_core.Remd
module Tempering = Mdsp_core.Tempering
module Shard = Mdsp_ensemble.Shard
module Ensemble = Mdsp_ensemble.Ensemble

(* --- fixtures --- *)

let temps = [| 120.; 132.; 145.; 160. |]

(* A fresh, deterministically-seeded REMD ladder of small LJ replicas.
   Reconstructing with the same seeds gives bit-identical engines, which is
   what lets us compare the sequential and sharded runners. *)
let make_ladder ?(stride = 10) () =
  let engines =
    Array.mapi
      (fun i temp ->
        let sys = Mdsp_workload.Workloads.lj_fluid ~n:64 () in
        let cfg =
          {
            E.default_config with
            dt_fs = 2.0;
            temperature = temp;
            thermostat = E.Langevin { gamma_fs = 0.02 };
          }
        in
        Mdsp_workload.Workloads.make_engine ~config:cfg ~seed:(300 + i) sys)
      temps
  in
  Remd.create ~engines ~temps ~stride ~seed:11

let assert_ladders_identical msg a b =
  let ea = Remd.engines a and eb = Remd.engines b in
  check_true (msg ^ ": replica count") (Array.length ea = Array.length eb);
  Array.iteri
    (fun i e ->
      check_true
        (Printf.sprintf "%s: replica %d state bitwise" msg i)
        (State.equal (E.state e) (E.state eb.(i)));
      check_true
        (Printf.sprintf "%s: replica %d potential energy bitwise" msg i)
        (E.potential_energy e = E.potential_energy eb.(i));
      check_true
        (Printf.sprintf "%s: replica %d step counter" msg i)
        (E.steps_done e = E.steps_done eb.(i)))
    ea;
  check_true (msg ^ ": replica_of_config")
    (Remd.replica_of_config a = Remd.replica_of_config b);
  check_true (msg ^ ": attempts") (Remd.attempts a = Remd.attempts b);
  check_true (msg ^ ": accepts") (Remd.accepts a = Remd.accepts b);
  check_true (msg ^ ": sweep counter")
    (Remd.sweeps_done a = Remd.sweeps_done b)

(* --- Remd.create validation --- *)

let expect_invalid msg f =
  let raised = try ignore (f ()); false with Invalid_argument _ -> true in
  check_true msg raised

let two_engines ?(thermostat = E.Langevin { gamma_fs = 0.02 }) () =
  Array.init 2 (fun i ->
      let sys = Mdsp_workload.Workloads.lj_fluid ~n:32 () in
      let cfg = { E.default_config with thermostat } in
      Mdsp_workload.Workloads.make_engine ~config:cfg ~seed:(50 + i) sys)

let test_create_validation () =
  expect_invalid "length mismatch" (fun () ->
      Remd.create ~engines:(two_engines ()) ~temps:[| 300. |] ~stride:10
        ~seed:1);
  expect_invalid "single rung" (fun () ->
      Remd.create
        ~engines:(Array.sub (two_engines ()) 0 1)
        ~temps:[| 300. |] ~stride:10 ~seed:1);
  expect_invalid "non-positive temperature" (fun () ->
      Remd.create ~engines:(two_engines ()) ~temps:[| -10.; 300. |]
        ~stride:10 ~seed:1);
  expect_invalid "non-increasing ladder" (fun () ->
      Remd.create ~engines:(two_engines ()) ~temps:[| 300.; 300. |]
        ~stride:10 ~seed:1);
  expect_invalid "stride < 1" (fun () ->
      Remd.create ~engines:(two_engines ()) ~temps:[| 300.; 330. |] ~stride:0
        ~seed:1);
  expect_invalid "engine without thermostat" (fun () ->
      Remd.create
        ~engines:(two_engines ~thermostat:E.No_thermostat ())
        ~temps:[| 300.; 330. |] ~stride:10 ~seed:1);
  (* A well-formed ladder still assembles. *)
  ignore
    (Remd.create ~engines:(two_engines ()) ~temps:[| 300.; 330. |] ~stride:10
       ~seed:1)

(* --- shard placement and accounting --- *)

let test_shard_placement () =
  let pool = Exec.create (Exec.Domains { n = 2 }) in
  let sh = Shard.create ~exec:pool ~n_replicas:5 in
  check_true "n_replicas" (Shard.n_replicas sh = 5);
  check_true "n_slots" (Shard.n_slots sh = 2);
  check_true "round-robin placement"
    (Array.init 5 (Shard.slot_of_replica sh) = [| 0; 1; 0; 1; 0 |]);
  check_true "slot 0 replicas" (Shard.replicas_of_slot sh 0 = [| 0; 2; 4 |]);
  check_true "slot 1 replicas" (Shard.replicas_of_slot sh 1 = [| 1; 3 |]);
  let hits = Array.make 5 0 in
  for _ = 1 to 3 do
    Shard.run_stride sh (fun r ->
        hits.(r) <- hits.(r) + 1;
        7)
  done;
  Exec.shutdown pool;
  check_true "every replica ran every stride"
    (Array.for_all (fun h -> h = 3) hits);
  check_true "strides counted" (Shard.strides_done sh = 3);
  check_true "steps accumulated"
    (Array.for_all (fun s -> s = 21) (Shard.steps_done sh));
  check_true "wall clock non-negative"
    (Array.for_all (fun w -> w >= 0.) (Shard.wall_seconds sh));
  (* Out of replicas: spare slots stay idle. *)
  let pool4 = Exec.create (Exec.Domains { n = 4 }) in
  let sh2 = Shard.create ~exec:pool4 ~n_replicas:2 in
  check_true "idle slot has no replicas"
    (Shard.replicas_of_slot sh2 2 = [||]);
  Shard.run_stride sh2 (fun _ -> 1);
  Exec.shutdown pool4;
  check_true "two replicas stepped" (Shard.steps_done sh2 = [| 1; 1 |])

(* --- sharded vs sequential bitwise identity --- *)

let test_sharded_matches_sequential () =
  let sweeps = 8 in
  let seq = make_ladder () in
  Remd.run seq ~sweeps;
  List.iter
    (fun slots ->
      let pool = Exec.create (Exec.Domains { n = slots }) in
      let ladder = make_ladder () in
      let ens = Ensemble.create ~exec:pool ladder in
      Ensemble.run ens ~sweeps;
      Exec.shutdown pool;
      assert_ladders_identical
        (Printf.sprintf "%d slot(s) vs sequential" slots)
        seq ladder;
      (* Every replica advanced sweeps * stride steps under the runner. *)
      check_true "shard accounting"
        (Array.for_all
           (fun s -> s = sweeps * Remd.stride ladder)
           (Shard.steps_done (Ensemble.shard ens))))
    [ 1; 2; 4 ]

let test_metrics_populated () =
  let pool = Exec.create (Exec.Domains { n = 2 }) in
  let ens = Ensemble.create ~exec:pool (make_ladder ()) in
  Ensemble.run ens ~sweeps:4;
  let ms = Ensemble.metrics ens in
  Exec.shutdown pool;
  check_true "one row per replica" (List.length ms = Array.length temps);
  List.iteri
    (fun i (m : Ensemble.replica_metrics) ->
      check_true "replica index" (m.Ensemble.replica = i);
      check_true "slot matches placement" (m.Ensemble.slot = i mod 2);
      check_float ~eps:1e-12 "rung temperature" temps.(i) m.Ensemble.temp;
      check_true "steps counted" (m.Ensemble.steps = 4 * 10);
      check_true "wall time recorded" (m.Ensemble.wall_s > 0.);
      check_true "config tracked"
        (m.Ensemble.config_at >= 0
        && m.Ensemble.config_at < Array.length temps))
    ms;
  let rendered = Ensemble.metrics_table ens in
  check_true "table mentions every replica"
    (String.length rendered > 0)

(* --- checkpoint / restore --- *)

let test_checkpoint_roundtrip_exact () =
  (* Uninterrupted reference. *)
  let whole = make_ladder () in
  Remd.run whole ~sweeps:10;
  (* Interrupted run: 4 sweeps, checkpoint to disk, resume into a FRESH
     ladder (same constructor), 6 more sweeps — must land exactly where the
     uninterrupted run did. *)
  let first = make_ladder () in
  let pool = Exec.create (Exec.Domains { n = 2 }) in
  let ens1 = Ensemble.create ~exec:pool first in
  Ensemble.run ens1 ~sweeps:4;
  let path = Filename.temp_file "mdsp_ensemble" ".ckpt" in
  Ensemble.save_checkpoint ens1 path;
  let resumed = make_ladder () in
  let ens2 = Ensemble.create ~exec:pool resumed in
  (* Desynchronize the fresh ladder first to prove restore really rewinds. *)
  Ensemble.run ens2 ~sweeps:1;
  Ensemble.resume_checkpoint ens2 path;
  check_true "sweep counter restored" (Remd.sweeps_done resumed = 4);
  Ensemble.run ens2 ~sweeps:6;
  Exec.shutdown pool;
  Sys.remove path;
  assert_ladders_identical "checkpointed continuation vs uninterrupted"
    whole resumed

let test_checkpoint_file_exact () =
  (* The text format itself round-trips snapshots bit-for-bit. *)
  let ladder = make_ladder () in
  Remd.run ladder ~sweeps:3;
  let remd_snap = Remd.snapshot ladder in
  let engine_snaps = Array.map E.snapshot (Remd.engines ladder) in
  let path = Filename.temp_file "mdsp_ensemble" ".ckpt" in
  Mdsp_ensemble.Checkpoint.save path ~remd:remd_snap ~engines:engine_snaps ();
  let remd_back, engines_back = Mdsp_ensemble.Checkpoint.load path in
  Sys.remove path;
  let remd_back =
    match remd_back with
    | Some s -> s
    | None -> Alcotest.fail "checkpoint lost its exchange section"
  in
  check_true "remd sweep" (remd_back.Remd.snap_sweep = remd_snap.Remd.snap_sweep);
  check_true "remd attempts"
    (remd_back.Remd.snap_attempts = remd_snap.Remd.snap_attempts);
  check_true "remd rng streams"
    (remd_back.Remd.snap_rngs = remd_snap.Remd.snap_rngs);
  check_true "remd config walk"
    (remd_back.Remd.snap_config = remd_snap.Remd.snap_config);
  Array.iteri
    (fun i (s : E.snapshot) ->
      let b = engines_back.(i) in
      check_true "state" (State.equal s.E.snap_state b.E.snap_state);
      check_true "masses"
        (s.E.snap_state.State.masses = b.E.snap_state.State.masses);
      check_true "steps" (s.E.snap_steps = b.E.snap_steps);
      check_true "temperature" (s.E.snap_temperature = b.E.snap_temperature);
      check_true "rng" (s.E.snap_rng = b.E.snap_rng);
      check_true "nhc" (s.E.snap_nhc = b.E.snap_nhc);
      check_true "mc_baro" (s.E.snap_mc_baro = b.E.snap_mc_baro);
      check_true "energies" (s.E.snap_energies = b.E.snap_energies);
      check_true "forces" (s.E.snap_forces = b.E.snap_forces);
      check_true "virial" (s.E.snap_virial = b.E.snap_virial);
      check_true "nlist box" (s.E.snap_nlist_box = b.E.snap_nlist_box);
      check_true "nlist reference"
        (s.E.snap_nlist_ref = b.E.snap_nlist_ref))
    engine_snaps

let test_engine_snapshot_restore () =
  (* Engine-level restart exactness on a constrained, thermostatted system
     (water: SHAKE + Langevin RNG draws + neighbor rebuilds). *)
  let make () =
    let sys = Mdsp_workload.Workloads.water_box ~n_side:2 () in
    let cfg =
      {
        E.default_config with
        dt_fs = 1.0;
        temperature = 300.;
        thermostat = E.Langevin { gamma_fs = 0.02 };
      }
    in
    Mdsp_workload.Workloads.make_engine ~config:cfg ~seed:7 sys
  in
  let eng = make () in
  E.run eng 10;
  let snap = E.snapshot eng in
  E.run eng 15;
  let ref_state = State.copy (E.state eng) in
  let ref_pe = E.potential_energy eng in
  E.restore eng snap;
  check_true "rewound step counter" (E.steps_done eng = 10);
  E.run eng 15;
  check_true "restart reproduces the state bitwise"
    (State.equal (E.state eng) ref_state);
  check_true "restart reproduces the energy bitwise"
    (E.potential_energy eng = ref_pe);
  (* Restoring into a fresh engine for the same system works too. *)
  let eng2 = make () in
  E.restore eng2 snap;
  E.run eng2 15;
  check_true "fresh engine + snapshot reproduces the state bitwise"
    (State.equal (E.state eng2) ref_state)

(* --- tempering walkers --- *)

let make_walker_fleet () =
  let n_walkers = 3 in
  let wtemps = [| 120.; 135.; 150. |] in
  let engines =
    Array.init n_walkers (fun i ->
        let sys = Mdsp_workload.Workloads.lj_fluid ~n:32 () in
        let cfg =
          {
            E.default_config with
            dt_fs = 2.0;
            temperature = wtemps.(0);
            thermostat = E.Langevin { gamma_fs = 0.02 };
          }
        in
        Mdsp_workload.Workloads.make_engine ~config:cfg ~seed:(80 + i) sys)
  in
  let ladders =
    Array.init n_walkers (fun _ ->
        Tempering.create ~temps:wtemps ~stride:5 ())
  in
  (engines, ladders)

let test_tempering_walkers () =
  let strides = 40 in
  (* Sequential reference: walkers stepped one after another. *)
  let seq_engines, seq_ladders = make_walker_fleet () in
  Array.iteri (fun i l -> Tempering.attach l seq_engines.(i)) seq_ladders;
  for _ = 1 to strides do
    Array.iteri
      (fun i e -> E.run e (Tempering.stride seq_ladders.(i)))
      seq_engines
  done;
  (* Concurrent walkers on a pool. *)
  let engines, ladders = make_walker_fleet () in
  let pool = Exec.create (Exec.Domains { n = 2 }) in
  let w = Ensemble.create_tempering ~exec:pool ~engines ~ladders in
  Ensemble.run_tempering w ~strides;
  Exec.shutdown pool;
  Array.iteri
    (fun i e ->
      check_true
        (Printf.sprintf "walker %d state bitwise" i)
        (State.equal (E.state e) (E.state seq_engines.(i)));
      check_true
        (Printf.sprintf "walker %d rung" i)
        (Tempering.rung ladders.(i) = Tempering.rung seq_ladders.(i));
      check_true
        (Printf.sprintf "walker %d visits" i)
        (Tempering.visits ladders.(i) = Tempering.visits seq_ladders.(i)))
    engines;
  (* The ladder actually walks: every walker logged visits, and the fleet
     together reached more than one rung. *)
  let occ = Ensemble.occupancy w in
  Array.iter
    (fun visits ->
      check_true "walker visited rungs"
        (Array.fold_left ( + ) 0 visits > 0))
    occ;
  let rungs_reached =
    Array.fold_left
      (fun acc visits ->
        acc + (if Array.exists (fun v -> v > 0) visits then 1 else 0))
      0 occ
  in
  check_true "all walkers sampled" (rungs_reached = Array.length occ);
  check_true "walker accounting"
    (Array.for_all
       (fun s -> s = strides * 5)
       (Shard.steps_done (Ensemble.walker_shard w)))

let () =
  Alcotest.run "ensemble"
    [
      ( "remd",
        [
          Alcotest.test_case "create validation" `Quick
            test_create_validation;
        ] );
      ( "shard",
        [
          Alcotest.test_case "placement and accounting" `Quick
            test_shard_placement;
        ] );
      ( "identity",
        [
          Alcotest.test_case "sharded = sequential (1/2/4 slots)" `Quick
            test_sharded_matches_sequential;
          Alcotest.test_case "per-replica metrics" `Quick
            test_metrics_populated;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "resume continues exactly" `Quick
            test_checkpoint_roundtrip_exact;
          Alcotest.test_case "text format round-trips bitwise" `Quick
            test_checkpoint_file_exact;
          Alcotest.test_case "engine snapshot/restore" `Quick
            test_engine_snapshot_restore;
        ] );
      ( "tempering",
        [
          Alcotest.test_case "concurrent walkers = sequential" `Quick
            test_tempering_walkers;
        ] );
    ]
