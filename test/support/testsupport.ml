(* Shared helpers for the test suites. *)

open Mdsp_util

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.check (Alcotest.float eps) msg expected actual

let check_close ~rel msg expected actual =
  let tol = Float.max (abs_float expected *. rel) 1e-12 in
  if abs_float (expected -. actual) > tol then
    Alcotest.failf "%s: expected %g, got %g (rel tol %g)" msg expected actual
      rel

let check_true msg b = Alcotest.(check bool) msg true b

(* Central-difference gradient of a scalar function of positions, for
   validating analytic forces: returns -dE/dr_i, i.e. the force. *)
let numeric_forces ~h energy positions =
  Array.mapi
    (fun i _ ->
      let perturb axis delta =
        let p = Array.map (fun v -> v) positions in
        let v = p.(i) in
        (p.(i) <-
           (match axis with
           | `X -> Vec3.make (v.Vec3.x +. delta) v.Vec3.y v.Vec3.z
           | `Y -> Vec3.make v.Vec3.x (v.Vec3.y +. delta) v.Vec3.z
           | `Z -> Vec3.make v.Vec3.x v.Vec3.y (v.Vec3.z +. delta)));
        energy p
      in
      let d axis =
        (perturb axis h -. perturb axis (-.h)) /. (2. *. h)
      in
      Vec3.make (-.d `X) (-.d `Y) (-.d `Z))
    positions

let max_vec_diff a b =
  let worst = ref 0. in
  Array.iteri (fun i v -> worst := Float.max !worst (Vec3.dist v b.(i))) a;
  !worst

(* A deterministic random configuration in a cubic box, with a minimum
   separation to avoid singular overlaps. *)
let random_positions ~seed ~n ~box_l ~min_dist =
  let rng = Rng.create seed in
  let box = Pbc.cubic box_l in
  let acc = ref [] in
  let count = ref 0 in
  let attempts = ref 0 in
  while !count < n && !attempts < 100_000 do
    incr attempts;
    let p =
      Vec3.make
        (Rng.uniform_in rng 0. box_l)
        (Rng.uniform_in rng 0. box_l)
        (Rng.uniform_in rng 0. box_l)
    in
    let ok =
      List.for_all (fun q -> Pbc.dist2 box p q >= min_dist *. min_dist) !acc
    in
    if ok then begin
      acc := p :: !acc;
      incr count
    end
  done;
  if !count < n then failwith "random_positions: box too crowded";
  (box, Array.of_list !acc)

let qtest name ?(count = 100) gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count gen prop)

(* A small pre-equilibrated LJ engine for method tests. *)
let lj_engine ?(n = 108) ?(temp = 120.) ?(seed = 42) ?(equil = 500) () =
  let sys = Mdsp_workload.Workloads.lj_fluid ~n () in
  let cfg =
    {
      Mdsp_md.Engine.default_config with
      dt_fs = 2.0;
      temperature = temp;
      thermostat = Mdsp_md.Engine.Langevin { gamma_fs = 0.02 };
    }
  in
  let eng = Mdsp_workload.Workloads.make_engine ~config:cfg ~seed sys in
  Mdsp_md.Engine.run eng equil;
  eng
