#!/usr/bin/env bash
# Tier-1 gate: full build, every test suite (including the parallel
# serial-vs-domains agreement suite), and a smoke run of the timing
# experiment with its JSON dump. Run locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

dune build @all
dune runtest

# e21 exercises the Domains backend end to end and writes the phase
# timings (including the GSE sub-phase keys); keep it cheap but real.
# It also runs the same workload on both data layouts (boxed and flat
# SoA — bitwise-identical results, enforced by test_parallel).
dune exec bench/main.exe -- e21 --json /tmp/mdsp-timings.json
test -s /tmp/mdsp-timings.json
grep -q 'e21\.lr_spread_serial_us' /tmp/mdsp-timings.json
grep -q 'e21\.pair_soa_serial_us' /tmp/mdsp-timings.json
grep -q 'e21\.integrate_serial_us' /tmp/mdsp-timings.json
grep -q 'e21\.constraints_serial_us' /tmp/mdsp-timings.json
grep -q 'e21\.constraints_domains4_us' /tmp/mdsp-timings.json
grep -q 'e21\.thermostat_serial_us' /tmp/mdsp-timings.json

# The SoA hot path must not be slower than the boxed kernels on the pair
# phase, and the Gc-metered serial SoA pair window must allocate exactly
# zero minor words per step.
awk -F': ' '
  /"e21\.soa_pair_speedup"/ {
    v = $2; gsub(/,/, "", v); found = 1
    if (v + 0 < 1.0) { print "ci: SoA pair phase slower than boxed (speedup " v ")"; exit 1 }
  }
  END { if (!found) { print "ci: e21.soa_pair_speedup missing"; exit 1 } }
' /tmp/mdsp-timings.json
grep -Eq '"e21\.soa_pair_minor_words_per_step": 0(,|$)' /tmp/mdsp-timings.json

# Verification gate: interval-analyze every built-in kernel, check every
# compiled table's domain/fit/quantization, race-sanitize all parallel
# phases at 1/2/4 slots, and certify the fixed-point datapaths for the
# registered envelopes. Must exit 0 on a clean tree with per-check JSON
# verdicts; --seed-hazard must fail (the analyzer self-test).
dune exec bin/mdsp.exe -- check --datapath --json /tmp/mdsp-verify.json
test -s /tmp/mdsp-verify.json
grep -q '"verify\.ok": 1' /tmp/mdsp-verify.json
grep -q '"kernel\.flat_bottom": 1' /tmp/mdsp-verify.json
grep -q '"table\.lj": 1' /tmp/mdsp-verify.json
grep -q '"sanitize\.slots4": 1' /tmp/mdsp-verify.json
grep -q '"datapath\.water\.ok": 1' /tmp/mdsp-verify.json
grep -q '"datapath\.water\.force_format": 1' /tmp/mdsp-verify.json
grep -q '"datapath\.water\.coeff_format": 1' /tmp/mdsp-verify.json
grep -q '"datapath\.water6k\.ok": 1' /tmp/mdsp-verify.json
grep -q '"datapath\.chain10k\.ok": 1' /tmp/mdsp-verify.json
if dune exec bin/mdsp.exe -- check --seed-hazard --slots 1 >/dev/null 2>&1; then
  echo "ci: mdsp check --seed-hazard unexpectedly passed" >&2
  exit 1
fi

# Phase-dataflow gate: record every parallel phase's read/write footprint
# through the sanitizer, derive the static happens-before graph, and
# require full coverage of the expected phase set, acyclicity and an
# identical graph shape at every slot count. The DOT render must be
# byte-identical at 1 and 4 slots (the graph is slot-count invariant and
# the emitter is deterministic), and the deliberately racy seeded phase
# must fail (the conflict-matrix self-test).
dune exec bin/mdsp.exe -- check --phases --slots 1 \
  --dot /tmp/mdsp-phases-1.dot --json /tmp/mdsp-phases.json >/dev/null
test -s /tmp/mdsp-phases.json
grep -q '"phases\.ok": 1' /tmp/mdsp-phases.json
grep -q '"phases\.acyclic": 1' /tmp/mdsp-phases.json
grep -q '"phases\.invariant": 1' /tmp/mdsp-phases.json
grep -q '"phases\.coverage": 1' /tmp/mdsp-phases.json
dune exec bin/mdsp.exe -- check --phases --slots 4 \
  --dot /tmp/mdsp-phases-4.dot >/dev/null
cmp /tmp/mdsp-phases-1.dot /tmp/mdsp-phases-4.dot
# The batched constraint sweeps and thermostat sweeps are pool phases now;
# the rendered graph must carry them and their ordering edges.
grep -q '"constraints\.shake"' /tmp/mdsp-phases-1.dot
grep -q '"constraints\.rattle"' /tmp/mdsp-phases-1.dot
grep -q '"thermo\.langevin"' /tmp/mdsp-phases-1.dot
grep -q '"thermo\.scale"' /tmp/mdsp-phases-1.dot
if dune exec bin/mdsp.exe -- check --seed-race --slots 2 >/dev/null 2>&1; then
  echo "ci: mdsp check --seed-race unexpectedly passed" >&2
  exit 1
fi
# The planted cyclic phase pair is race-free, so the only branch that can
# reject it is acyclicity — and it must, even at one slot.
if dune exec bin/mdsp.exe -- check --seed-cycle --slots 1 >/dev/null 2>&1; then
  echo "ci: mdsp check --seed-cycle unexpectedly passed" >&2
  exit 1
fi

# Constraint-schedule gate: plan and certify the coloring schedules the
# parallel SHAKE/RATTLE sweeps run (proper coloring, exactly-once cover,
# cross-slot footprint disjointness, registered cluster/batch envelopes),
# and require the planted same-batch conflict to fail certification.
dune exec bin/mdsp.exe -- check --constraints --slots 1 \
  --json /tmp/mdsp-constraints.json >/dev/null
test -s /tmp/mdsp-constraints.json
grep -q '"constraints\.ok": 1' /tmp/mdsp-constraints.json
grep -q '"constraints\.water6k\.ok": 1' /tmp/mdsp-constraints.json
grep -q '"constraints\.water6k\.disjoint": 1' /tmp/mdsp-constraints.json
grep -q '"constraints\.water6k\.envelope": 1' /tmp/mdsp-constraints.json
grep -q '"constraints\.chain10k\.ok": 1' /tmp/mdsp-constraints.json
if dune exec bin/mdsp.exe -- check --seed-conflict --slots 1 >/dev/null 2>&1; then
  echo "ci: mdsp check --seed-conflict unexpectedly passed" >&2
  exit 1
fi

# Datapath certifier self-test: a deliberately narrowed force format must
# be rejected, with the offending accumulators named in the JSON verdicts.
if dune exec bin/mdsp.exe -- check --seed-narrow --slots 1 \
    --json /tmp/mdsp-verify-narrow.json >/dev/null 2>&1; then
  echo "ci: mdsp check --seed-narrow unexpectedly passed" >&2
  exit 1
fi
grep -q '"datapath\.water\[narrow32\]\.ok": 0' /tmp/mdsp-verify-narrow.json
grep -q '"datapath\.water\[narrow32\]\.force_format": 0' /tmp/mdsp-verify-narrow.json
grep -q '"datapath\.water\.ok": 1' /tmp/mdsp-verify-narrow.json

# Ensemble smoke: the sharded-REMD CLI path end to end, then e22 with its
# JSON dump — e22 also asserts sharded ≡ sequential bitwise internally.
dune exec bin/mdsp.exe -- ensemble --replicas 4 --domains 2 --steps 50
dune exec bench/main.exe -- e22 --json /tmp/e22.json
test -s /tmp/e22.json
grep -q 'e22\.identical' /tmp/e22.json
grep -q 'e22\.shard_sweeps_per_s' /tmp/e22.json
grep -q 'e22\.exchange_bytes_per_step' /tmp/e22.json

# Multi-node smoke: e23 decomposes water6k/chain10k coordinates over
# 8..512-node tori, prices the torus traffic, and must report the
# exactly-once pair assignment verified against the single-node cell
# list on every frame, with finite comm times; the project CLI must
# reach the same verdict end to end.
dune exec bench/main.exe -- e23 --json /tmp/e23.json
test -s /tmp/e23.json
grep -q '"e23\.pair_once_ok": 1' /tmp/e23.json
grep -Eq '"e23\.water6k\.n8\.comm_s": [0-9]' /tmp/e23.json
grep -Eq '"e23\.water6k\.n512\.ns_day": [0-9]' /tmp/e23.json
dune exec bin/mdsp.exe -- project -p water6k --nodes 2,2,2 \
  | grep -q 'exactly-once pair assignment: ok'

# Service smoke: spool a job, pipe a status + blocking result request
# through `mdsp serve` (EOF drains the queue, so the server finishes the
# job before exiting), and verify the job completed, the result carries
# observables, and the spool directory has no orphans (leftover .tmp
# staging files or records without a .job spec).
SPOOL="$(mktemp -d /tmp/mdsp-spool.XXXXXX)"
JOB_ID="$(dune exec bin/mdsp.exe -- submit --dir "$SPOOL" -p lj64 \
  --steps 120 -t 120 --porcelain)"
printf '{"op":"status","id":"%s"}\n{"op":"result","id":"%s"}\n' \
  "$JOB_ID" "$JOB_ID" \
  | dune exec bin/mdsp.exe -- serve --dir "$SPOOL" --quantum 40 \
  > /tmp/mdsp-serve.out
grep -q '"ok":true,"op":"status"' /tmp/mdsp-serve.out
grep -q '"ok":true,"op":"result"' /tmp/mdsp-serve.out
grep -q '"e_total":' /tmp/mdsp-serve.out
dune exec bin/mdsp.exe -- jobs --dir "$SPOOL" | grep -q "^$JOB_ID  *done"
dune exec bin/mdsp.exe -- jobs --dir "$SPOOL" --check \
  | grep -q 'spool clean: no orphans'
rm -rf "$SPOOL"

# e24 drives the scheduler under a 16-client burst at 1/2/4 slots; every
# preempted job must end bitwise identical to its uninterrupted reference
# (e24.identity 1), and the throughput/turnaround keys must be present.
dune exec bench/main.exe -- e24 --json /tmp/e24.json
test -s /tmp/e24.json
grep -q '"e24\.identity": 1' /tmp/e24.json
grep -Eq '"e24\.slots1\.jobs_per_hour": [0-9]' /tmp/e24.json
grep -Eq '"e24\.slots2\.jobs_per_hour": [0-9]' /tmp/e24.json
grep -Eq '"e24\.slots4\.jobs_per_hour": [0-9]' /tmp/e24.json
grep -Eq '"e24\.slots4\.p95_turnaround_s": [0-9]' /tmp/e24.json

# Documentation gate: the odoc comments in the .mli files must stay
# well-formed. Gated on odoc being installed so the script still runs in
# minimal local environments.
if command -v odoc >/dev/null 2>&1; then
  dune build @doc
else
  echo "ci: odoc not installed, skipping dune build @doc"
fi

# Formatting gate, same pattern: only enforced where ocamlformat exists
# AND the repo has committed to a profile via a .ocamlformat file.
if command -v ocamlformat >/dev/null 2>&1 && [ -f .ocamlformat ]; then
  dune build @fmt
else
  echo "ci: ocamlformat not configured, skipping dune build @fmt"
fi

echo "ci: OK"
