#!/usr/bin/env bash
# Tier-1 gate: full build, every test suite (including the parallel
# serial-vs-domains agreement suite), and a smoke run of the timing
# experiment with its JSON dump. Run locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

dune build @all
dune runtest

# e21 exercises the Domains backend end to end and writes the phase
# timings; keep it cheap but real.
dune exec bench/main.exe -- e21 --json /tmp/mdsp-timings.json
test -s /tmp/mdsp-timings.json
echo "ci: OK"
