#!/usr/bin/env bash
# Tier-1 gate: full build, every test suite (including the parallel
# serial-vs-domains agreement suite), and a smoke run of the timing
# experiment with its JSON dump. Run locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

dune build @all
dune runtest

# e21 exercises the Domains backend end to end and writes the phase
# timings (including the GSE sub-phase keys); keep it cheap but real.
dune exec bench/main.exe -- e21 --json /tmp/mdsp-timings.json
test -s /tmp/mdsp-timings.json
grep -q 'e21\.lr_spread_serial_us' /tmp/mdsp-timings.json

# Documentation gate: the odoc comments in the .mli files must stay
# well-formed. Gated on odoc being installed so the script still runs in
# minimal local environments.
if command -v odoc >/dev/null 2>&1; then
  dune build @doc
else
  echo "ci: odoc not installed, skipping dune build @doc"
fi

# Formatting gate, same pattern: only enforced where ocamlformat exists
# AND the repo has committed to a profile via a .ocamlformat file.
if command -v ocamlformat >/dev/null 2>&1 && [ -f .ocamlformat ]; then
  dune build @fmt
else
  echo "ci: ocamlformat not configured, skipping dune build @fmt"
fi

echo "ci: OK"
