(* Experiments E17-E18, E20, E22: ensemble workloads.

   E17: how replica-exchange ensembles map onto machine partitions — the
   throughput trade-off between one big partition and many replicas
   (analytic model).
   E18: free energy from repeated nonequilibrium pulls (Jarzynski), checked
   against the known barrier.
   E20: ion-pair PMF in solvent via umbrella sampling.
   E22: the partition claim of E17 exercised for real — sequential vs
   sharded REMD on the Exec pool, with the bitwise-identity check, the
   aggregate sweep throughput, per-replica metrics, and the exchange bytes
   charged to the machine model. *)

open Bench_common
open Mdsp_machine
module E = Mdsp_md.Engine

(* E17: partitioning the machine across replicas. A 512-node machine can
   run one fast replica or M slower ones; ensemble methods want aggregate
   sampling, so smaller partitions win until communication dominates. *)
let e17 () =
  section "E17" "Replica ensembles on machine partitions";
  let n_atoms = 23_500 in
  let w =
    {
      (Perf.plain_workload ~n_atoms ~density:0.1002 ~cutoff:9.0 ~dt_fs:2.5) with
      Perf.n_constraints = n_atoms;
      fft_grid = Some (64, 64, 64);
      (* replica-exchange messages *)
      method_bytes_per_step = 64.;
    }
  in
  let t =
    T.create
      ~title:
        "512 nodes split into M replica partitions (23.5k atoms each)"
      ~columns:
        [
          ("replicas", T.Right);
          ("partition", T.Left);
          ("ns/day each", T.Right);
          ("aggregate ns/day", T.Right);
          ("vs 1 partition", T.Right);
        ]
  in
  let base = ref 0. in
  List.iter
    (fun (m, nodes) ->
      let cfg = Config.anton_like ~nodes () in
      let each = Perf.ns_per_day cfg w in
      let aggregate = each *. float_of_int m in
      if m = 1 then base := aggregate;
      let px, py, pz = nodes in
      T.row t
        [
          T.cell_i m;
          Printf.sprintf "%dx%dx%d" px py pz;
          T.cell_f ~prec:4 each;
          T.cell_f ~prec:4 aggregate;
          Printf.sprintf "%.2fx" (aggregate /. !base);
        ])
    [
      (1, (8, 8, 8));
      (2, (8, 8, 4));
      (4, (8, 4, 4));
      (8, (4, 4, 4));
      (16, (4, 4, 2));
      (64, (2, 2, 2));
    ];
  T.print t;
  note
    "Ensemble methods recover the machine's lost strong-scaling\n\
     efficiency: many medium partitions deliver several times the\n\
     aggregate sampling of one maximally-parallel run — exactly why the\n\
     extended software supports multi-replica methods natively.\n"

(* E18: Jarzynski free energy from repeated steered-MD pulls on the double
   well: pull from the left minimum to the barrier top; dF should
   approach the 3 kcal/mol barrier from above (dissipation bias). *)
let e18 () =
  section "E18" "Jarzynski equality from repeated SMD pulls";
  let temp = 300. in
  let pulls = 24 in
  let works =
    Array.init pulls (fun k ->
        let eng = double_well_engine ~temp ~seed:(700 + k) () in
        E.run eng 2000;
        (* relax in the left well *)
        let cv = Mdsp_core.Cv.position ~axis:`X ~i:0 in
        let smd =
          Mdsp_core.Smd.create ~cv ~k:15. ~start:(-2.5)
            ~speed_per_step:(2.5 /. 5000.) ()
        in
        Mdsp_core.Smd.attach smd eng;
        E.run eng 5000;
        (* center now at 0: the barrier top *)
        Mdsp_core.Smd.work smd)
  in
  let df, dissipation = Mdsp_analysis.Free_energy.jarzynski ~temp works in
  let mean_w =
    Array.fold_left ( +. ) 0. works /. float_of_int pulls
  in
  let t =
    T.create ~title:"Pulling from the left well (x=-2.5) to the barrier (x=0)"
      ~columns:[ ("quantity", T.Left); ("kcal/mol", T.Right) ]
  in
  T.row t [ "mean work <W>"; T.cell_f ~prec:3 mean_w ];
  T.row t [ "Jarzynski dF estimate"; T.cell_f ~prec:3 df ];
  T.row t [ "inferred dissipation"; T.cell_f ~prec:3 dissipation ];
  T.row t [ "true barrier height"; T.cell_f ~prec:3 3.0 ];
  T.print t;
  note
    "The exponential average pushes the estimate from <W> down toward the\n\
     true dF; residual bias shrinks with more pulls, as the equality\n\
     demands (second-law check: <W> >= dF).\n"

(* E20: potential of mean force of a solvated ion pair — umbrella sampling
   on the ion-ion distance in a many-body environment. Beyond the direct
   Coulomb + LJ interaction, the PMF should pick up solvent-packing
   structure (a solvent-separated shoulder near contact + sigma). *)
let e20 () =
  section "E20" "Ion-pair PMF in solvent (umbrella sampling)";
  let make_engine () =
    let sys =
      Mdsp_workload.Workloads.ion_pair ~charge:0.3 ~separation:4.
        ~n_solvent:120 ()
    in
    let cfg =
      {
        E.default_config with
        dt_fs = 2.0;
        temperature = 150.;
        thermostat = E.Langevin { gamma_fs = 0.02 };
      }
    in
    let eng = Mdsp_workload.Workloads.make_engine ~config:cfg sys in
    E.minimize eng ~steps:100;
    Mdsp_md.State.thermalize (E.state eng) (Mdsp_util.Rng.create 5) ~temp:150.;
    E.refresh_forces eng;
    E.run eng 1500;
    eng
  in
  let cv = Mdsp_core.Cv.distance ~i:0 ~j:1 in
  let centers = Array.init 11 (fun i -> 3.0 +. (0.5 *. float_of_int i)) in
  let plan =
    Mdsp_core.Umbrella.make_plan ~cv ~k:8.0 ~centers ~equil_steps:800
      ~sample_steps:4000 ~sample_stride:5
  in
  let results = Mdsp_core.Umbrella.run plan ~make_engine in
  let p =
    Mdsp_core.Umbrella.solve ~temp:150. ~lo:2.8 ~hi:8.4 ~bins:28 results
  in
  let t =
    T.create ~title:"PMF of a +0.3/-0.3 ion pair in LJ solvent"
      ~columns:
        [ ("r (A)", T.Right); ("W(r) kcal/mol", T.Right); ("bare qq/r + LJ", T.Right) ]
  in
  (* Bare pair interaction for comparison (shift both to zero at 8 A). *)
  let bare r =
    let qq = -.Mdsp_util.Units.coulomb *. 0.09 in
    let lj = Mdsp_ff.Nonbonded.Lennard_jones { epsilon = 0.1; sigma = 2.8 } in
    (qq /. r) +. Mdsp_ff.Nonbonded.energy lj (r *. r)
  in
  let bare_ref = bare 8.0 in
  let pmf_at_8 = ref 0. in
  Array.iteri
    (fun b f ->
      if (not (Float.is_nan f)) && p.Mdsp_analysis.Wham.centers.(b) > 7.8 then
        pmf_at_8 := f)
    p.Mdsp_analysis.Wham.free_energy;
  Array.iteri
    (fun b f ->
      if (not (Float.is_nan f)) && b mod 2 = 0 then begin
        let r = p.Mdsp_analysis.Wham.centers.(b) in
        T.row t
          [
            T.cell_f ~prec:3 r;
            T.cell_f ~prec:3 (f -. !pmf_at_8);
            T.cell_f ~prec:3 (bare r -. bare_ref);
          ]
      end)
    p.Mdsp_analysis.Wham.free_energy;
  T.print t;
  note
    "The PMF tracks the bare interaction at long range and deviates near\n\
     contact where solvent packing matters — the textbook solvated-ion\n\
     shape, produced end to end by the umbrella/WHAM machinery on a\n\
     many-body system.\n"

(* E22: sequential vs sharded REMD. E17 argues from the perf model that
   partitioning the machine into replica shards reclaims strong-scaling
   losses; here the ensemble runner actually executes the shards
   concurrently on the Exec pool and must reproduce the sequential ladder
   bit for bit while reporting real per-replica metrics. *)
let e22 () =
  section "E22" "Sharded REMD on the Exec pool vs sequential";
  let temps = [| 120.; 132.; 145.; 160. |] in
  let n_atoms = 108 in
  let stride = 20 in
  let sweeps = 40 in
  let make_ladder () =
    let engines =
      Array.mapi
        (fun i temp ->
          let sys = Mdsp_workload.Workloads.lj_fluid ~n:n_atoms () in
          let cfg =
            {
              E.default_config with
              dt_fs = 2.0;
              temperature = temp;
              thermostat = E.Langevin { gamma_fs = 0.02 };
            }
          in
          Mdsp_workload.Workloads.make_engine ~config:cfg ~seed:(300 + i) sys)
        temps
    in
    Array.iter (fun e -> E.run e 200) engines;
    Mdsp_core.Remd.create ~engines ~temps ~stride ~seed:11
  in
  (* Sequential reference. *)
  let seq = make_ladder () in
  let t0 = Unix.gettimeofday () in
  Mdsp_core.Remd.run seq ~sweeps;
  let seq_s = Unix.gettimeofday () -. t0 in
  (* Sharded run on a pool. *)
  let slots = 2 in
  let pool = Mdsp_util.Exec.create (Mdsp_util.Exec.Domains { n = slots }) in
  let ladder = make_ladder () in
  let ens = Mdsp_ensemble.Ensemble.create ~exec:pool ladder in
  let t0 = Unix.gettimeofday () in
  Mdsp_ensemble.Ensemble.run ens ~sweeps;
  let shard_s = Unix.gettimeofday () -. t0 in
  Mdsp_util.Exec.shutdown pool;
  (* Bitwise identity: trajectories AND exchange records. *)
  let seq_eng = Mdsp_core.Remd.engines seq in
  let shd_eng = Mdsp_core.Remd.engines ladder in
  let identical =
    Array.for_all2
      (fun a b ->
        Mdsp_md.State.equal (E.state a) (E.state b)
        && E.potential_energy a = E.potential_energy b)
      seq_eng shd_eng
    && Mdsp_core.Remd.replica_of_config seq
       = Mdsp_core.Remd.replica_of_config ladder
    && Mdsp_core.Remd.attempts seq = Mdsp_core.Remd.attempts ladder
    && Mdsp_core.Remd.accepts seq = Mdsp_core.Remd.accepts ladder
  in
  print_string (Mdsp_ensemble.Ensemble.metrics_table ens);
  let seq_sps = float_of_int sweeps /. seq_s in
  let shard_sps = float_of_int sweeps /. shard_s in
  let xbytes =
    Mdsp_core.Remd.method_bytes_per_step seq ~n_atoms
    *. float_of_int (Array.length temps)
  in
  let t =
    T.create ~title:"Sequential vs sharded ladder (whole-ensemble view)"
      ~columns:[ ("quantity", T.Left); ("value", T.Right) ]
  in
  T.row t
    [ "trajectories + exchange records"; (if identical then "bitwise identical" else "MISMATCH") ];
  T.row t [ "sequential sweeps/s"; T.cell_f ~prec:3 seq_sps ];
  T.row t
    [
      Printf.sprintf "sharded sweeps/s (%d slots)" slots;
      T.cell_f ~prec:3 shard_sps;
    ];
  T.row t [ "speedup"; Printf.sprintf "%.2fx" (shard_sps /. seq_sps) ];
  T.row t
    [ "exchange bytes/step (machine model)"; Printf.sprintf "%.1f" xbytes ];
  T.print t;
  record "e22.replicas" (float_of_int (Array.length temps));
  record "e22.slots" (float_of_int slots);
  record "e22.identical" (if identical then 1. else 0.);
  record "e22.seq_sweeps_per_s" seq_sps;
  record "e22.shard_sweeps_per_s" shard_sps;
  record "e22.exchange_bytes_per_step" xbytes;
  List.iter
    (fun (m : Mdsp_ensemble.Ensemble.replica_metrics) ->
      record
        (Printf.sprintf "e22.replica%d_wall_ms" m.Mdsp_ensemble.Ensemble.replica)
        (m.Mdsp_ensemble.Ensemble.wall_s *. 1e3))
    (Mdsp_ensemble.Ensemble.metrics ens);
  note
    "The sharded runner executes the ladder concurrently (one replica per\n\
     Exec slot) yet lands on exactly the sequential trajectories — the\n\
     exchange decisions draw from dedicated per-pair streams, so the\n\
     interleaving cannot leak into the physics. On a multicore host the\n\
     aggregate sweep rate approaches slots x the sequential rate,\n\
     turning E17's modeled partition win into a measured one.\n"
