(* Experiments E1-E3: the table compiler and the machine's functional force
   path (accuracy against the analytic reference, and bit determinism). *)

open Mdsp_util
open Bench_common

let cutoff = 9.0

let forms =
  [
    ("LJ 12-6", Mdsp_ff.Nonbonded.Lennard_jones { epsilon = 0.238; sigma = 3.405 });
    ("Buckingham", Mdsp_ff.Nonbonded.Buckingham { a = 40000.; b = 3.5; c = 300. });
    ("Gaussian", Mdsp_ff.Nonbonded.Gaussian_repulsion { height = 10.; width = 3. });
    ( "soft-core LJ (l=0.5)",
      Mdsp_ff.Nonbonded.Soft_core_lj
        { epsilon = 0.238; sigma = 3.405; alpha = 0.5; lambda = 0.5 } );
    ("erfc-Coulomb", Mdsp_ff.Nonbonded.Coulomb_erfc { qq = 332.; beta = 0.35 });
    ("Morse", Mdsp_ff.Nonbonded.Morse { d_e = 2.; a = 1.5; r0 = 3.5 });
    ("Yukawa", Mdsp_ff.Nonbonded.Yukawa { a = 332.; kappa = 0.4 });
    ("LJ 12-6-4 (ion)", Mdsp_ff.Nonbonded.Lj_12_6_4 { epsilon = 0.238; sigma = 3.405; c4 = 60. });
    ( "LJ + Gaussian",
      Mdsp_ff.Nonbonded.Sum
        [
          Mdsp_ff.Nonbonded.Lennard_jones { epsilon = 0.238; sigma = 3.405 };
          Mdsp_ff.Nonbonded.Gaussian_repulsion { height = 2.; width = 4. };
        ] );
  ]

(* E1 (Table I): arbitrary radial forms compile into the pipelines'
   interpolation tables with bounded error, at constant per-pair cost. *)
let e1 () =
  section "E1" "Functional-form generality of the pair pipelines (Table I)";
  let t =
    T.create ~title:"Max relative force error of compiled tables (quantized)"
      ~columns:
        [
          ("functional form", T.Left);
          ("n=256", T.Right);
          ("n=1024", T.Right);
          ("n=4096", T.Right);
          ("SRAM(n=1024) B", T.Right);
        ]
  in
  List.iter
    (fun (name, form) ->
      let radial = Mdsp_core.Table.of_form form ~cutoff in
      let err n =
        let tab = Mdsp_core.Table.compile ~r_min:2.0 ~r_cut:cutoff ~n radial in
        (Mdsp_core.Table.accuracy tab radial ()).Mdsp_core.Table.max_rel_force
      in
      let sram =
        Mdsp_machine.Interp_table.sram_bytes
          (Mdsp_core.Table.compile ~r_min:2.0 ~r_cut:cutoff ~n:1024 radial)
      in
      T.row t
        [
          name;
          T.cell_f ~prec:2 (err 256);
          T.cell_f ~prec:2 (err 1024);
          T.cell_f ~prec:2 (err 4096);
          T.cell_i sram;
        ])
    forms;
  T.print t;
  note
    "Every form runs at one pair/cycle/pipeline regardless of shape; only\n\
     table SRAM differs. Paper claim reproduced: arbitrary radial forms at\n\
     full hardwired speed with controllable error.\n"

(* E2 (Fig. 1): accuracy vs table width, with and without coefficient
   quantization (the resource/accuracy trade-off curve). *)
let e2 () =
  section "E2" "Table width vs force error (Fig. 1)";
  let lj = List.assoc "LJ 12-6" forms in
  let radial = Mdsp_core.Table.of_form lj ~cutoff in
  let t =
    T.create ~title:"Max relative force error vs interval count (LJ 12-6)"
      ~columns:
        [
          ("intervals", T.Right);
          ("ideal coefficients", T.Right);
          ("quantized (26-bit)", T.Right);
        ]
  in
  List.iter
    (fun n ->
      let err q =
        let tab =
          Mdsp_core.Table.compile ~r_min:2.0 ~r_cut:cutoff ~n ~quantize:q radial
        in
        (Mdsp_core.Table.accuracy tab radial ()).Mdsp_core.Table.max_rel_force
      in
      T.row t
        [ T.cell_i n; T.cell_f ~prec:2 (err false); T.cell_f ~prec:2 (err true) ])
    [ 64; 128; 256; 512; 1024; 2048; 4096; 8192 ];
  T.print t;
  note
    "Cubic-Hermite error falls ~n^-4 until the fixed-point coefficient\n\
     grid floors it; the knee locates the width worth provisioning.\n"

(* E3 (Table II): whole-force-field fidelity of the machine path, plus bit
   determinism under pair reordering. *)
let e3 () =
  section "E3" "Machine force path vs analytic reference (Table II)";
  let t =
    T.create ~title:"Machine (tables + fixed point) vs reference"
      ~columns:
        [
          ("system", T.Left);
          ("atoms", T.Right);
          ("max rel force err", T.Right);
          ("energy rel err", T.Right);
          ("bitwise deterministic", T.Right);
          ("saturations", T.Right);
        ]
  in
  let check sys elec =
    let open Mdsp_workload.Workloads in
    let rc = Float.min cutoff (0.45 *. Pbc.min_edge sys.box) in
    let ts = Mdsp_core.Table.table_set_of_topology sys.topo ~cutoff:rc ~elec ~n:4096 () in
    let types =
      Array.map
        (fun (a : Mdsp_ff.Topology.atom) -> a.Mdsp_ff.Topology.type_id)
        sys.topo.Mdsp_ff.Topology.atoms
    in
    let charges = Mdsp_ff.Topology.charges sys.topo in
    let mach = Mdsp_machine.Htis.evaluator ts ~types ~charges ~cutoff:rc in
    let refe =
      Mdsp_ff.Pair_interactions.of_topology sys.topo ~cutoff:rc
        ~trunc:Mdsp_ff.Nonbonded.Shift ~elec
    in
    let r1 = Mdsp_baseline.Reference.compute sys.topo sys.box sys.positions ~evaluator:refe in
    let r2 = Mdsp_baseline.Reference.compute sys.topo sys.box sys.positions ~evaluator:mach in
    let ferr =
      Mdsp_baseline.Reference.max_force_error r1.Mdsp_baseline.Reference.forces
        r2.Mdsp_baseline.Reference.forces
    in
    let eerr =
      abs_float
        ((r2.Mdsp_baseline.Reference.pair_energy
         -. r1.Mdsp_baseline.Reference.pair_energy)
        /. r1.Mdsp_baseline.Reference.pair_energy)
    in
    (* Determinism: shuffle the pair stream three times. *)
    let nlist =
      Mdsp_space.Neighbor_list.create
        ~exclusions:sys.topo.Mdsp_ff.Topology.exclusions ~cutoff:rc ~skin:1.
        sys.box sys.positions
    in
    let r0 =
      Mdsp_machine.Htis.compute_forces ts ~types ~charges ~cutoff:rc sys.box
        nlist sys.positions
    in
    let rng = Rng.create 4 in
    let np = Mdsp_space.Neighbor_list.length nlist in
    let det = ref true in
    let sats = ref r0.Mdsp_machine.Htis.saturations in
    for _ = 1 to 3 do
      let perm = Array.init np Fun.id in
      Rng.shuffle rng perm;
      let r =
        Mdsp_machine.Htis.compute_forces ~perm ts ~types ~charges ~cutoff:rc
          sys.box nlist sys.positions
      in
      if r.Mdsp_machine.Htis.energy <> r0.Mdsp_machine.Htis.energy then
        det := false;
      sats := !sats + r.Mdsp_machine.Htis.saturations;
      Array.iteri
        (fun i v -> if v <> r0.Mdsp_machine.Htis.forces.(i) then det := false)
        r.Mdsp_machine.Htis.forces
    done;
    T.row t
      [
        sys.label;
        T.cell_i (Mdsp_ff.Topology.n_atoms sys.topo);
        T.cell_f ~prec:2 ferr;
        T.cell_f ~prec:2 eerr;
        (if !det then "yes" else "NO");
        T.cell_i !sats;
      ]
  in
  check
    (Mdsp_workload.Workloads.lj_fluid ~n:500 ())
    Mdsp_ff.Pair_interactions.No_coulomb;
  check
    (Mdsp_workload.Workloads.water_box ~n_side:5 ())
    (Mdsp_ff.Pair_interactions.Reaction_field { epsilon_rf = 78.5 });
  check
    (Mdsp_workload.Workloads.bead_chain ~n_beads:16 ~n_total:300 ())
    Mdsp_ff.Pair_interactions.Cutoff_coulomb;
  T.print t;
  (* Parallel determinism: decomposed across torus sizes, still bitwise. *)
  let sys = Mdsp_workload.Workloads.lj_fluid ~n:300 () in
  let open Mdsp_workload.Workloads in
  let rc = 8.0 in
  let ts =
    Mdsp_core.Table.table_set_of_topology sys.topo ~cutoff:rc
      ~elec:Mdsp_ff.Pair_interactions.No_coulomb ~n:2048 ()
  in
  let types = Array.make 300 0 and charges = Array.make 300 0. in
  let nlist =
    Mdsp_space.Neighbor_list.create ~cutoff:rc ~skin:1. sys.box sys.positions
  in
  let r1 =
    Mdsp_machine.Htis.compute_forces ts ~types ~charges ~cutoff:rc sys.box
      nlist sys.positions
  in
  let all_equal = ref true in
  List.iter
    (fun nodes ->
      let r =
        Mdsp_machine.Machine_sim.compute ~nodes ts ~types ~charges ~cutoff:rc
          sys.box nlist sys.positions
      in
      if r.Mdsp_machine.Machine_sim.energy <> r1.Mdsp_machine.Htis.energy then
        all_equal := false;
      Array.iteri
        (fun i v ->
          if v <> r1.Mdsp_machine.Htis.forces.(i) then all_equal := false)
        r.Mdsp_machine.Machine_sim.forces)
    [ (1, 1, 1); (2, 2, 2); (4, 4, 4); (8, 8, 8) ];
  note
    "Fixed-point accumulation makes the summed forces independent of pair\n\
     order — the machine's bit-reproducibility property. Decomposing the\n\
     same computation across 1, 8, 64, and 512 simulated nodes is also\n\
     bitwise identical: %s.\n"
    (if !all_equal then "verified" else "FAILED")
