(* Shared helpers for the experiment harness. *)

open Mdsp_util

let section id title =
  Printf.printf "\n=== %s: %s ===\n\n" id title

let note fmt = Printf.printf fmt

module T = Table_text

(* A pre-equilibrated LJ engine (shared by several experiments). *)
let lj_engine ?(n = 108) ?(temp = 120.) ?(seed = 42) ?(equil = 1000)
    ?(gamma = 0.02) () =
  let sys = Mdsp_workload.Workloads.lj_fluid ~n () in
  let cfg =
    {
      Mdsp_md.Engine.default_config with
      dt_fs = 2.0;
      temperature = temp;
      thermostat = Mdsp_md.Engine.Langevin { gamma_fs = gamma };
    }
  in
  let eng = Mdsp_workload.Workloads.make_engine ~config:cfg ~seed sys in
  Mdsp_md.Engine.run eng equil;
  eng

let double_well_engine ?(temp = 300.) ?(seed = 42) () =
  let sys = Mdsp_workload.Workloads.double_well () in
  let cfg =
    {
      Mdsp_md.Engine.default_config with
      dt_fs = 2.0;
      temperature = temp;
      thermostat = Mdsp_md.Engine.Langevin { gamma_fs = 0.02 };
    }
  in
  Mdsp_workload.Workloads.make_engine ~config:cfg ~seed sys

(* Named scalar metrics collected during a run; `main --json FILE` dumps
   them for BENCH_*.json trajectory tracking across PRs. *)
let json_records : (string * float) list ref = ref []

let record key value = json_records := (key, value) :: !json_records

let write_json path =
  let oc = open_out path in
  let rows = List.rev !json_records in
  let last = List.length rows - 1 in
  output_string oc "{\n";
  List.iteri
    (fun i (k, v) ->
      Printf.fprintf oc "  %S: %.9g%s\n" k v (if i = last then "" else ","))
    rows;
  output_string oc "}\n";
  close_out oc

(* Count barrier crossings of a 1D trace with hysteresis thresholds. *)
let crossings ?(lo = -0.5) ?(hi = 0.5) trace =
  let n = ref 0 and side = ref 0 in
  List.iter
    (fun x ->
      let s = if x > hi then 1 else if x < lo then -1 else 0 in
      if s <> 0 && !side <> 0 && s <> !side then incr n;
      if s <> 0 then side := s)
    trace;
  !n
