(* Experiment harness: regenerates every table and figure of the
   reproduction (see DESIGN.md for the experiment index and EXPERIMENTS.md
   for recorded results).

   Usage:
     bench/main.exe            run everything
     bench/main.exe e4 e6 a2   run selected experiments
     bench/main.exe --list     list experiment ids *)

let registry =
  [
    ("e1", "table compiler: functional-form generality", Exp_tables.e1);
    ("e2", "table width vs force error", Exp_tables.e2);
    ("e3", "machine force path vs reference + determinism", Exp_tables.e3);
    ("e4", "ns/day vs system size, machine vs cluster", Exp_perf.e4);
    ("e5", "strong scaling", Exp_perf.e5);
    ("e6", "method overheads", Exp_perf.e6);
    ("e7", "per-step resource breakdown", Exp_perf.e7);
    ("e8", "metadynamics free-energy recovery", Exp_sampling.e8);
    ("e9", "simulated tempering + replica exchange", Exp_sampling.e9);
    ("e10", "FEP vs analytic", Exp_sampling.e10);
    ("e11", "string method with swarms", Exp_sampling.e11);
    ("e12", "physics sanity checks", Exp_physics.e12);
    ("e13", "umbrella sampling + WHAM", Exp_sampling.e13);
    ("e14", "TAMD / boost acceleration", Exp_sampling.e14);
    ("e15", "LJ fluid radial distribution function", Exp_structure.e15);
    ("e16", "LJ fluid self-diffusion (MSD)", Exp_structure.e16);
    ("e17", "replica ensembles on machine partitions", Exp_ensemble.e17);
    ("e18", "Jarzynski from repeated SMD pulls", Exp_ensemble.e18);
    ("e19", "supercooled slowdown (Kob-Andersen)", Exp_structure.e19);
    ("e20", "ion-pair PMF in solvent (umbrella)", Exp_ensemble.e20);
    ("a1", "ablation: r vs r^2 table indexing", Exp_ablations.a1);
    ("a2", "ablation: fixed-point accumulator width", Exp_ablations.a2);
    ("a3", "ablation: Verlet skin", Exp_ablations.a3);
    ("a4", "ablation: RESPA inner steps", Exp_ablations.a4);
    ("a5", "ablation: import-region policy", Exp_ablations.a5);
    ("a6", "ablation: truncation scheme vs NVE drift", Exp_ablations.a6);
    ("e21", "execution backends: measured resource breakdown", Exp_perf.e21);
    ("e22", "sharded REMD on the Exec pool vs sequential", Exp_ensemble.e22);
    ("e23", "multi-node strong scaling: decomposition + torus comm", Exp_scale.e23);
    ("e24", "job service under many-client load", Exp_service.e24);
    ("timing", "bechamel micro-benchmarks", Exp_timing.run);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* --json FILE: after the run, dump every metric the experiments recorded
     via Bench_common.record (timing trajectories across PRs). *)
  let rec split_json acc = function
    | "--json" :: path :: rest -> (Some path, List.rev_append acc rest)
    | x :: rest -> split_json (x :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let json, args = split_json [] args in
  (match args with
  | [ "--list" ] ->
      List.iter (fun (id, desc, _) -> Printf.printf "%-8s %s\n" id desc) registry
  | [] ->
      print_endline
        "mdsp experiment harness: reproducing every table/figure (see \
         EXPERIMENTS.md)";
      List.iter (fun (_, _, f) -> f ()) registry
  | ids ->
      List.iter
        (fun id ->
          match List.find_opt (fun (i, _, _) -> i = id) registry with
          | Some (_, _, f) -> f ()
          | None ->
              Printf.eprintf "unknown experiment %S (try --list)\n" id;
              exit 1)
        ids);
  match json with
  | None -> ()
  | Some path ->
      Bench_common.write_json path;
      Printf.printf "timing metrics written to %s\n" path
