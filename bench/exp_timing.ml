(* Bechamel micro-benchmarks of the hot kernels: one Test.make per kernel,
   all in one run. These time the *simulator's own* OCaml implementation
   (useful for development); machine-performance numbers come from the
   analytic model in E4-E7. *)

open Mdsp_util
open Bechamel
open Toolkit

let lj_setup =
  lazy
    (let sys = Mdsp_workload.Workloads.lj_fluid ~n:500 () in
     let cutoff = 8.0 in
     let open Mdsp_workload.Workloads in
     let evaluator =
       Mdsp_ff.Pair_interactions.of_topology sys.topo ~cutoff
         ~trunc:Mdsp_ff.Nonbonded.Shift
         ~elec:Mdsp_ff.Pair_interactions.No_coulomb
     in
     let ts =
       Mdsp_core.Table.table_set_of_topology sys.topo ~cutoff
         ~elec:Mdsp_ff.Pair_interactions.No_coulomb ~n:2048 ()
     in
     let types = Array.make 500 0 in
     let charges = Array.make 500 0. in
     let table_eval =
       Mdsp_machine.Htis.evaluator ts ~types ~charges ~cutoff
     in
     let nlist =
       Mdsp_space.Neighbor_list.create ~cutoff ~skin:1. sys.box sys.positions
     in
     (sys, evaluator, table_eval, nlist))

let test_pair_analytic =
  Test.make ~name:"pair forces: analytic evaluator (LJ-500)"
    (Staged.stage (fun () ->
         let sys, evaluator, _, nlist = Lazy.force lj_setup in
         let acc = Mdsp_ff.Bonded.make_accum 500 in
         ignore
           (Mdsp_ff.Pair_interactions.compute evaluator
              sys.Mdsp_workload.Workloads.box nlist
              sys.Mdsp_workload.Workloads.positions acc)))

let test_pair_table =
  Test.make ~name:"pair forces: interpolation tables (LJ-500)"
    (Staged.stage (fun () ->
         let sys, _, table_eval, nlist = Lazy.force lj_setup in
         let acc = Mdsp_ff.Bonded.make_accum 500 in
         ignore
           (Mdsp_ff.Pair_interactions.compute table_eval
              sys.Mdsp_workload.Workloads.box nlist
              sys.Mdsp_workload.Workloads.positions acc)))

let soa_setup =
  lazy
    (let sys, _, _, nlist = Lazy.force lj_setup in
     let cutoff = 8.0 in
     let pp =
       match
         Mdsp_md.Soa_kernels.pair_params_of_topology
           sys.Mdsp_workload.Workloads.topo ~cutoff
           ~trunc:Mdsp_ff.Nonbonded.Shift
           ~elec:Mdsp_ff.Pair_interactions.No_coulomb
       with
       | Some pp -> pp
       | None -> assert false
     in
     let store = Mdsp_md.Soa.create ~box:sys.Mdsp_workload.Workloads.box 500 in
     Mdsp_md.Soa.load_positions store sys.Mdsp_workload.Workloads.positions;
     let is, js = Mdsp_space.Neighbor_list.raw_pairs nlist in
     let np = Mdsp_space.Neighbor_list.length nlist in
     let sc = Mdsp_md.Soa_kernels.make_scratch () in
     (sys, pp, store, is, js, np, sc))

let test_pair_soa =
  Test.make ~name:"pair forces: flat SoA kernel (LJ-500)"
    (Staged.stage (fun () ->
         let sys, pp, store, is, js, np, sc = Lazy.force soa_setup in
         Mdsp_md.Soa.clear_forces store;
         Mdsp_md.Soa_kernels.reset_scratch sc;
         Mdsp_md.Soa_kernels.pair_range pp sys.Mdsp_workload.Workloads.box
           store ~is ~js 0 np sc))

let test_neighbor_rebuild =
  Test.make ~name:"neighbor-list rebuild (LJ-500)"
    (Staged.stage (fun () ->
         let sys, _, _, nlist = Lazy.force lj_setup in
         ignore
           (Mdsp_space.Neighbor_list.rebuild nlist
              sys.Mdsp_workload.Workloads.positions)))

let test_fft =
  let re = Array.make (32 * 32 * 32) 1. in
  let im = Array.make (32 * 32 * 32) 0. in
  Test.make ~name:"3D FFT 32^3"
    (Staged.stage (fun () ->
         Mdsp_longrange.Fft.fft_3d ~sign:(-1) ~nx:32 ~ny:32 ~nz:32 re im))

let test_table_compile =
  let lj = Mdsp_ff.Nonbonded.Lennard_jones { epsilon = 0.238; sigma = 3.405 } in
  let radial = Mdsp_core.Table.of_form lj ~cutoff:9. in
  Test.make ~name:"table compile (1024 intervals)"
    (Staged.stage (fun () ->
         ignore (Mdsp_core.Table.compile ~r_min:2. ~r_cut:9. ~n:1024 radial)))

let test_kernel_eval =
  let open! Mdsp_core.Kernel in
  let kern =
    create ~name:"posre"
      ~energy:(c 1.5 * (sq (X - c 1.) + sq Y + sq Z))
      ~particles:(Array.init 100 Fun.id)
      ~params:[]
  in
  let bias = to_bias ~time:(fun () -> 0.) kern in
  let box = Pbc.cubic 20. in
  let rng = Rng.create 3 in
  let positions =
    Array.init 100 (fun _ ->
        Vec3.make
          (Rng.uniform_in rng 0. 20.)
          (Rng.uniform_in rng 0. 20.)
          (Rng.uniform_in rng 0. 20.))
  in
  Test.make ~name:"kernel DSL bias (100 particles)"
    (Staged.stage (fun () ->
         let acc = Mdsp_ff.Bonded.make_accum 100 in
         ignore (bias.Mdsp_md.Force_calc.bias_compute box positions acc)))

let test_shake =
  let sys = Mdsp_workload.Workloads.water_box ~n_side:4 () in
  let topo = sys.Mdsp_workload.Workloads.topo in
  let cons = Mdsp_md.Constraints.create topo in
  let rng = Rng.create 4 in
  let base = sys.Mdsp_workload.Workloads.positions in
  let masses = Mdsp_ff.Topology.masses topo in
  Test.make ~name:"SHAKE (64 rigid waters)"
    (Staged.stage (fun () ->
         let distorted =
           Array.map
             (fun p -> Vec3.add p (Vec3.scale 0.02 (Rng.gaussian_vec rng)))
             base
         in
         Mdsp_md.Constraints.shake cons sys.Mdsp_workload.Workloads.box
           ~prev:base distorted ~masses))

let run () =
  Bench_common.section "TIMING" "Bechamel micro-benchmarks (simulator hot paths)";
  let tests =
    [
      test_pair_analytic;
      test_pair_table;
      test_pair_soa;
      test_neighbor_rebuild;
      test_fft;
      test_table_compile;
      test_kernel_eval;
      test_shake;
    ]
  in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) ~kde:(Some 300) () in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg [ instance ]
          (Test.make_grouped ~name:"g" [ test ])
      in
      Hashtbl.iter
        (fun name result ->
          let stats =
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false
                 ~predictors:[| Measure.run |])
              instance result
          in
          match Analyze.OLS.estimates stats with
          | Some [ est ] ->
              Printf.printf "  %-45s %12.1f ns/run\n"
                (String.sub name 2 (String.length name - 2))
                est
          | _ -> Printf.printf "  %-45s (no estimate)\n" name)
        results)
    tests
