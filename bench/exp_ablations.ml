(* Ablations A1-A5: design choices called out in DESIGN.md. *)

open Mdsp_util
open Bench_common
module E = Mdsp_md.Engine

(* A1: interpolation-table indexing in r vs r^2. The hardware indexes by
   squared distance to avoid a square root and to concentrate intervals at
   small r; this ablation fits the same LJ form both ways at equal interval
   budget and compares worst-case force error. *)
let a1 () =
  section "A1" "Ablation: table indexing variable (r vs r^2)";
  let lj = Mdsp_ff.Nonbonded.Lennard_jones { epsilon = 0.238; sigma = 3.405 } in
  let cutoff = 9.0 and r_min = 2.0 in
  let radial = Mdsp_core.Table.of_form lj ~cutoff in
  (* r^2-indexed: the production path. *)
  let err_r2 n =
    let t = Mdsp_core.Table.compile ~r_min ~r_cut:cutoff ~n ~quantize:false radial in
    (Mdsp_core.Table.accuracy t radial ()).Mdsp_core.Table.max_rel_force
  in
  (* r-indexed: cubic Hermite fit over equal r intervals, evaluated on the
     same dense grid. *)
  let err_r n =
    let width = (cutoff -. r_min) /. float_of_int n in
    let knot_val k =
      let r = r_min +. (float_of_int k *. width) in
      let _, g = radial (r *. r) in
      (* dg/dr by central difference *)
      let h = width *. 1e-4 in
      let _, gp = radial ((r +. h) ** 2.) in
      let _, gm = radial ((r -. h) ** 2.) in
      (g, (gp -. gm) /. (2. *. h))
    in
    let coeffs =
      Array.init n (fun i ->
          let f0, d0 = knot_val i and f1, d1 = knot_val (i + 1) in
          Poly.hermite_cubic ~x0:0. ~x1:width ~f0 ~f1 ~d0 ~d1)
    in
    let eval r =
      let x = (r -. r_min) /. width in
      let i = min (n - 1) (max 0 (int_of_float x)) in
      Poly.eval coeffs.(i) (r -. r_min -. (float_of_int i *. width))
    in
    let worst = ref 0. in
    let floor_scale =
      let acc = ref 0. in
      for k = 0 to 99 do
        let r = r_min +. ((cutoff -. r_min) *. (float_of_int k +. 0.5) /. 100.) in
        acc := !acc +. abs_float (snd (radial (r *. r)))
      done;
      !acc /. 100. *. 1e-3
    in
    for k = 0 to 19_999 do
      let r = r_min +. ((cutoff -. r_min) *. (float_of_int k +. 0.5) /. 20_000.) in
      let _, g_ref = radial (r *. r) in
      let g = eval r in
      worst :=
        Float.max !worst
          (abs_float (g -. g_ref) /. Float.max (abs_float g_ref) floor_scale)
    done;
    !worst
  in
  let t =
    T.create ~title:"Max relative force error, LJ 12-6, equal interval budget"
      ~columns:
        [ ("intervals", T.Right); ("r^2-indexed", T.Right); ("r-indexed", T.Right) ]
  in
  List.iter
    (fun n ->
      T.row t [ T.cell_i n; T.cell_f ~prec:2 (err_r2 n); T.cell_f ~prec:2 (err_r n) ])
    [ 64; 256; 1024 ];
  T.print t;
  note
    "r^2 indexing also removes the pipeline square root; with Hermite\n\
     fitting both variants converge, r^2 concentrating error differently\n\
     across the domain.\n"

(* A2: fixed-point force-accumulation width vs error against float. *)
let a2 () =
  section "A2" "Ablation: fixed-point accumulation width";
  let sys = Mdsp_workload.Workloads.lj_fluid ~n:200 () in
  let open Mdsp_workload.Workloads in
  let cutoff = 8.0 in
  let ts =
    Mdsp_core.Table.table_set_of_topology sys.topo ~cutoff
      ~elec:Mdsp_ff.Pair_interactions.No_coulomb ~n:4096 ()
  in
  let types = Array.make 200 0 in
  let charges = Array.make 200 0. in
  let nlist =
    Mdsp_space.Neighbor_list.create ~cutoff ~skin:1. sys.box sys.positions
  in
  (* Float reference through the same tables. *)
  let ev = Mdsp_machine.Htis.evaluator ts ~types ~charges ~cutoff in
  let acc = Mdsp_ff.Bonded.make_accum 200 in
  ignore (Mdsp_ff.Pair_interactions.compute ev sys.box nlist sys.positions acc);
  let rms =
    sqrt
      (Array.fold_left (fun a f -> a +. Vec3.norm2 f) 0. acc.Mdsp_ff.Bonded.forces
      /. 200.)
  in
  let t =
    T.create ~title:"Force error vs accumulator fractional bits (48-bit words)"
      ~columns:
        [ ("frac bits", T.Right); ("max abs err", T.Right); ("rel to RMS force", T.Right) ]
  in
  List.iter
    (fun frac ->
      let format = Fixed.format ~frac_bits:frac ~total_bits:48 in
      let r =
        Mdsp_machine.Htis.compute_forces ~format ts ~types ~charges ~cutoff
          sys.box nlist sys.positions
      in
      let worst = ref 0. in
      Array.iteri
        (fun i v ->
          worst := Float.max !worst (Vec3.dist v acc.Mdsp_ff.Bonded.forces.(i)))
        r.Mdsp_machine.Htis.forces;
      T.row t
        [
          T.cell_i frac;
          T.cell_f ~prec:2 !worst;
          T.cell_f ~prec:2 (!worst /. rms);
        ])
    [ 8; 12; 16; 20; 24; 28; 32 ];
  T.print t;
  note
    "Each extra fractional bit halves the quantization error; ~20+ bits\n\
     put accumulation error far below the table-fit error.\n"

(* A3: neighbor-list skin vs rebuild frequency vs modeled step cost. *)
let a3 () =
  section "A3" "Ablation: Verlet skin radius";
  let t =
    T.create
      ~title:"LJ-256, 2000 steps at 2 fs: skin vs rebuilds vs pair work"
      ~columns:
        [
          ("skin (A)", T.Right);
          ("rebuilds", T.Right);
          ("stored pairs", T.Right);
          ("relative cost", T.Right);
        ]
  in
  let costs =
    List.map
      (fun skin ->
        let sys = Mdsp_workload.Workloads.lj_fluid ~n:256 () in
        let cutoff = 8.0 in
        let evaluator =
          Mdsp_ff.Pair_interactions.of_topology sys.Mdsp_workload.Workloads.topo
            ~cutoff ~trunc:Mdsp_ff.Nonbonded.Shift
            ~elec:Mdsp_ff.Pair_interactions.No_coulomb
        in
        let nlist =
          Mdsp_space.Neighbor_list.create
            ~exclusions:sys.Mdsp_workload.Workloads.topo.Mdsp_ff.Topology.exclusions
            ~cutoff ~skin sys.Mdsp_workload.Workloads.box
            sys.Mdsp_workload.Workloads.positions
        in
        let fc =
          Mdsp_md.Force_calc.create sys.Mdsp_workload.Workloads.topo ~evaluator
            ~longrange:Mdsp_md.Force_calc.Lr_none ~nlist
        in
        let st =
          Mdsp_md.State.create ~positions:sys.Mdsp_workload.Workloads.positions
            ~masses:(Mdsp_ff.Topology.masses sys.Mdsp_workload.Workloads.topo)
            ~box:sys.Mdsp_workload.Workloads.box
        in
        Mdsp_md.State.thermalize st (Rng.create 9) ~temp:120.;
        let cfg =
          {
            E.default_config with
            dt_fs = 2.0;
            temperature = 120.;
            thermostat = E.Langevin { gamma_fs = 0.02 };
          }
        in
        let eng = E.create ~seed:9 sys.Mdsp_workload.Workloads.topo fc st cfg in
        E.run eng 2000;
        let rebuilds = Mdsp_space.Neighbor_list.rebuild_count nlist in
        let pairs = Mdsp_space.Neighbor_list.length nlist in
        (* Cost model: per-step pair evaluations + rebuild cost (a rebuild
           costs ~ one full cell-list pass ~ stored pairs). *)
        let cost =
          (2000. *. float_of_int pairs)
          +. (float_of_int rebuilds *. 3. *. float_of_int pairs)
        in
        (skin, rebuilds, pairs, cost))
      [ 0.25; 0.5; 1.0; 1.5; 2.0; 3.0 ]
  in
  let cost_min =
    List.fold_left (fun a (_, _, _, c) -> Float.min a c) infinity costs
  in
  List.iter
    (fun (skin, rebuilds, pairs, cost) ->
      T.row t
        [
          T.cell_f ~prec:2 skin;
          T.cell_i rebuilds;
          T.cell_i pairs;
          Printf.sprintf "%.2fx" (cost /. cost_min);
        ])
    costs;
  T.print t;
  note
    "Small skins rebuild constantly; large skins carry dead pairs every\n\
     step. The optimum sits in between, as expected.\n"

(* A4: RESPA inner-step count vs drift. *)
let a4 () =
  section "A4" "Ablation: RESPA multiple time stepping";
  let t =
    T.create
      ~title:"Bead chain (bonded fast forces), outer dt = 4 fs, 1 ps"
      ~columns:
        [ ("inner steps", T.Right); ("final T (K)", T.Right); ("stable", T.Right) ]
  in
  List.iter
    (fun inner ->
      let sys = Mdsp_workload.Workloads.bead_chain ~n_beads:12 ~n_total:96 () in
      let cfg =
        {
          E.default_config with
          dt_fs = 4.0;
          temperature = 120.;
          thermostat = E.Langevin { gamma_fs = 0.02 };
          respa_inner = (if inner = 1 then None else Some inner);
        }
      in
      let eng = Mdsp_workload.Workloads.make_engine ~config:cfg sys in
      E.minimize eng ~steps:150;
      Mdsp_md.State.thermalize (E.state eng) (Rng.create 2) ~temp:120.;
      E.refresh_forces eng;
      let blew_up = ref false in
      (try
         E.run eng 250;
         if not (Float.is_finite (E.total_energy eng)) then blew_up := true
       with _ -> blew_up := true);
      T.row t
        [
          T.cell_i inner;
          (if !blew_up then "-" else Printf.sprintf "%.0f" (E.temperature eng));
          (if !blew_up then "NO" else "yes");
        ])
    [ 1; 2; 4; 8 ];
  T.print t;
  note
    "Sub-stepping the stiff bonded forces keeps the long outer step\n\
     usable — the machine runs bonded terms on the flexible subsystem at\n\
     the inner rate.\n"

(* A5: import policy (full vs half shell vs midpoint) communication
   volume. *)
let a5 () =
  section "A5" "Ablation: import region policy (communication)";
  let sys = Mdsp_workload.Workloads.water_box ~n_side:10 () in
  let open Mdsp_workload.Workloads in
  let t =
    T.create ~title:"Mean imported atoms per node, water-3000, cutoff 9 A"
      ~columns:
        [
          ("torus", T.Left);
          ("full shell", T.Right);
          ("half shell", T.Right);
          ("midpoint", T.Right);
          ("mid vs half", T.Right);
        ]
  in
  List.iter
    (fun nodes ->
      let mean policy =
        let d = Mdsp_space.Decomp.create sys.box ~nodes ~cutoff:9.0 ~policy in
        let counts = Mdsp_space.Decomp.import_counts d sys.positions in
        float_of_int (Array.fold_left ( + ) 0 counts)
        /. float_of_int (Array.length counts)
      in
      let full = mean Mdsp_space.Decomp.Full_shell in
      let half = mean Mdsp_space.Decomp.Half_shell in
      let mid = mean Mdsp_space.Decomp.Midpoint in
      let px, py, pz = nodes in
      T.row t
        [
          Printf.sprintf "%dx%dx%d" px py pz;
          T.cell_f ~prec:4 full;
          T.cell_f ~prec:4 half;
          T.cell_f ~prec:4 mid;
          Printf.sprintf "%.0f%%" (100. *. (1. -. (mid /. half)));
        ])
    [ (2, 2, 2); (3, 3, 3); (4, 4, 4) ];
  T.print t;
  note
    "Half-shell import (compute each pair once, return forces) halves the\n\
     import volume; the neutral-territory midpoint region (cutoff/2 shell,\n\
     what Mdsp_machine.Decomp realizes) shrinks it further as home boxes\n\
     shrink against the cutoff.\n"

(* A6: truncation scheme vs energy conservation. Plain truncation leaves a
   force discontinuity at the cutoff that pumps energy; shifting fixes the
   energy jump, switching smooths the force too. *)
let a6 () =
  section "A6" "Ablation: cutoff truncation scheme vs NVE drift";
  let t =
    T.create ~title:"LJ-108, NVE 2 ps at 2 fs after equilibration"
      ~columns:
        [ ("scheme", T.Left); ("max |dE/E|", T.Right); ("drift/ps", T.Right) ]
  in
  List.iter
    (fun (name, trunc) ->
      let sys = Mdsp_workload.Workloads.lj_fluid ~n:108 () in
      let cutoff = 8.0 in
      let evaluator =
        Mdsp_ff.Pair_interactions.of_topology sys.Mdsp_workload.Workloads.topo
          ~cutoff ~trunc ~elec:Mdsp_ff.Pair_interactions.No_coulomb
      in
      let nlist =
        Mdsp_space.Neighbor_list.create ~cutoff ~skin:1.
          sys.Mdsp_workload.Workloads.box sys.Mdsp_workload.Workloads.positions
      in
      let fc =
        Mdsp_md.Force_calc.create sys.Mdsp_workload.Workloads.topo ~evaluator
          ~longrange:Mdsp_md.Force_calc.Lr_none ~nlist
      in
      let st =
        Mdsp_md.State.create ~positions:sys.Mdsp_workload.Workloads.positions
          ~masses:(Mdsp_ff.Topology.masses sys.Mdsp_workload.Workloads.topo)
          ~box:sys.Mdsp_workload.Workloads.box
      in
      Mdsp_md.State.thermalize st (Rng.create 6) ~temp:120.;
      let cfg =
        {
          E.default_config with
          dt_fs = 2.0;
          temperature = 120.;
          thermostat = E.Langevin { gamma_fs = 0.02 };
        }
      in
      let eng = E.create ~seed:6 sys.Mdsp_workload.Workloads.topo fc st cfg in
      E.run eng 2000;
      (* Switch to NVE in place by rebuilding config. *)
      let nve_cfg = { cfg with E.thermostat = E.No_thermostat } in
      let eng2 = E.create ~seed:6 sys.Mdsp_workload.Workloads.topo fc st nve_cfg in
      E.refresh_forces eng2;
      let e0 = E.total_energy eng2 in
      let worst = ref 0. in
      for _ = 1 to 10 do
        E.run eng2 100;
        worst :=
          Float.max !worst
            (abs_float (E.total_energy eng2 -. e0) /. abs_float e0)
      done;
      T.row t
        [
          name;
          T.cell_f ~prec:2 !worst;
          T.cell_f ~prec:2 (!worst /. 2.0);
        ])
    [
      ("hard truncation", Mdsp_ff.Nonbonded.Truncate);
      ("energy shift", Mdsp_ff.Nonbonded.Shift);
      ("CHARMM switch (6-8 A)", Mdsp_ff.Nonbonded.Switch { r_on = 6. });
    ];
  T.print t;
  note
    "Energy shifting removes the potential jump (force discontinuity\n\
     remains but is weak at 8 A); switching smooths both. The compiled\n\
     tables inherit whichever scheme the radial function encodes.\n"
