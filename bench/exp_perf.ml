(* Experiments E4-E7: the machine performance model — absolute rates vs
   the commodity baseline, strong scaling, and per-method overheads. *)

open Bench_common
open Mdsp_machine

let water_density = 0.1002
let dt_fs = 2.5

let workload n =
  {
    (Perf.plain_workload ~n_atoms:n ~density:water_density ~cutoff:9.0 ~dt_fs) with
    Perf.n_constraints = n;
    (* rigid waters: one constraint cluster per 3 atoms -> ~n constraints *)
    fft_grid =
      (let g = Mdsp_longrange.Fft.next_pow2 (int_of_float ((float_of_int n /. water_density) ** (1. /. 3.))) in
       Some (g, g, g));
  }

(* E4 (Fig. 2): simulation rate vs system size, machine vs cluster. *)
let e4 () =
  section "E4" "Simulation rate vs system size (Fig. 2)";
  let machine = Config.anton_like () in
  let cluster = Mdsp_baseline.Cluster.commodity () in
  let t =
    T.create
      ~title:
        "ns/day, water-like systems (512-node machine vs 64-node cluster)"
      ~columns:
        [
          ("atoms", T.Right);
          ("machine ns/day", T.Right);
          ("cluster ns/day", T.Right);
          ("speedup", T.Right);
        ]
  in
  List.iter
    (fun n ->
      let w = workload n in
      let m = Perf.ns_per_day machine w in
      let c = Mdsp_baseline.Cluster.ns_per_day cluster w in
      T.row t
        [
          T.cell_i n;
          T.cell_f ~prec:4 m;
          T.cell_f ~prec:4 c;
          Printf.sprintf "%.0fx" (m /. c);
        ])
    [ 6_000; 12_000; 23_500; 46_000; 92_000; 184_000; 368_000 ];
  T.print t;
  note
    "Shape reproduced: the special-purpose machine wins by one to two\n\
     orders of magnitude, with the edge largest for small systems where\n\
     cluster latency dominates.\n"

(* E5 (Fig. 3): strong scaling at fixed workload. *)
let e5 () =
  section "E5" "Strong scaling, 23.5k-atom system (Fig. 3)";
  let w = workload 23_500 in
  let t =
    T.create ~title:"ns/day vs machine size"
      ~columns:
        [
          ("nodes", T.Right);
          ("ns/day", T.Right);
          ("speedup vs 8", T.Right);
          ("parallel efficiency", T.Right);
        ]
  in
  let base = ref None in
  List.iter
    (fun (nodes, label) ->
      let cfg = Config.anton_like ~nodes () in
      let r = Perf.ns_per_day cfg w in
      let b =
        match !base with
        | None ->
            base := Some (float_of_int label, r);
            (float_of_int label, r)
        | Some b -> b
      in
      let speedup = r /. snd b in
      let ideal = float_of_int label /. fst b in
      T.row t
        [
          T.cell_i label;
          T.cell_f ~prec:4 r;
          Printf.sprintf "%.2fx" speedup;
          Printf.sprintf "%.0f%%" (100. *. speedup /. ideal);
        ])
    [
      ((2, 2, 2), 8);
      ((4, 2, 2), 16);
      ((4, 4, 2), 32);
      ((4, 4, 4), 64);
      ((8, 4, 4), 128);
      ((8, 8, 4), 256);
      ((8, 8, 8), 512);
    ];
  T.print t;
  note
    "Scaling rolls over as per-node work shrinks against fixed\n\
     synchronization and long-range costs — the expected strong-scaling\n\
     shape for a fixed-size problem.\n"

let method_costs () =
  let cv = Mdsp_core.Cv.distance ~i:0 ~j:1 in
  let meta =
    Mdsp_core.Metadynamics.create ~cv ~sigma:0.3 ~height:0.1 ~stride:100
      ~temp:300. ()
  in
  let smd = Mdsp_core.Smd.create ~cv ~k:10. ~start:0. ~speed_per_step:1e-4 () in
  let temper =
    Mdsp_core.Tempering.create ~temps:[| 300.; 320.; 340. |] ~stride:200 ()
  in
  let tamd =
    Mdsp_core.Tamd.create ~cv ~k:50. ~s0:0. ~gamma:0.05 ~s_temp:900. ~seed:1 ()
  in
  let amd = Mdsp_core.Amd.create ~threshold:0. ~alpha:1. in
  let posre =
    Mdsp_core.Restraints.position ~name:"posre"
      ~particles:(Array.init 200 Fun.id) ~k:2.
      ~reference:Mdsp_util.Vec3.zero
  in
  (* A 20-atom dummy solute for the FEP cost model. *)
  let sys20 = Mdsp_workload.Workloads.lj_fluid ~n:20 () in
  let fep_info =
    Mdsp_core.Fep.make_info sys20.Mdsp_workload.Workloads.topo
      ~solute:(Array.init 20 (fun i -> i < 2))
      ~cutoff:9. ~elec:Mdsp_ff.Pair_interactions.No_coulomb
  in
  [
    Mdsp_core.Mapping.plain;
    Mdsp_core.Mapping.of_restraint posre;
    Mdsp_core.Mapping.of_smd smd;
    Mdsp_core.Mapping.of_metadynamics meta;
    Mdsp_core.Mapping.of_tempering temper;
    Mdsp_core.Mapping.of_tamd tamd;
    Mdsp_core.Mapping.of_amd amd ~n_atoms:23_500;
    Mdsp_core.Mapping.of_fep fep_info;
  ]

(* E6 (Table III): per-method performance overhead. *)
let e6 () =
  section "E6" "Method overhead on the machine (Table III)";
  let cfg = Config.anton_like () in
  let base = workload 23_500 in
  let rows = Mdsp_core.Mapping.table cfg base (method_costs ()) in
  let t =
    T.create ~title:"Extended methods vs plain MD, 23.5k atoms, 512 nodes"
      ~columns:
        [ ("method", T.Left); ("ns/day", T.Right); ("overhead", T.Right) ]
  in
  List.iter
    (fun r ->
      T.row t
        [
          r.Mdsp_core.Mapping.name;
          T.cell_f ~prec:4 r.Mdsp_core.Mapping.ns_per_day;
          Printf.sprintf "%.2f%%" r.Mdsp_core.Mapping.overhead_pct;
        ])
    rows;
  T.print t;
  note
    "The headline of the paper: the extended methods ride on the\n\
     programmable cores and per-window tables, so their cost over plain MD\n\
     is small (FEP pays for its extra table pass).\n"

(* E21: the live E7 — run the actual force pipeline on the Serial and
   Domains execution backends, measure wall time per resource phase, and
   set the measured breakdown next to the analytic machine model. *)
let e21 () =
  section "E21"
    "Execution backends: measured per-resource step times (live Fig. 4)";
  let module X = Mdsp_util.Exec in
  let module FC = Mdsp_md.Force_calc in
  let n = 4000 and steps = 10 and ndomains = 4 in
  let sys = Mdsp_workload.Workloads.lj_fluid ~n () in
  let cfg =
    {
      Mdsp_md.Engine.default_config with
      dt_fs = 2.0;
      temperature = 120.;
      thermostat = Mdsp_md.Engine.Langevin { gamma_fs = 0.02 };
    }
  in
  let measure ?(soa = false) exec =
    let eng =
      Mdsp_workload.Workloads.make_engine ~config:cfg ~seed:42 ~exec ~soa sys
    in
    Mdsp_md.Engine.run eng 2;
    (* measure from a warm neighbor list *)
    Mdsp_md.Engine.reset_timings eng;
    let w0 = Gc.minor_words () in
    Mdsp_md.Engine.run eng steps;
    let w1 = Gc.minor_words () in
    let pairs =
      Mdsp_space.Neighbor_list.length
        (FC.nlist (Mdsp_md.Engine.force_calc eng))
    in
    (Mdsp_md.Engine.timings eng, pairs, (w1 -. w0) /. float_of_int steps)
  in
  let tm_serial, npairs, words_boxed = measure X.serial in
  let pool = X.create (X.Domains { n = ndomains }) in
  let tm_par, _, _ = measure pool in
  X.shutdown pool;
  let tm_soa, _, words_soa = measure ~soa:true X.serial in
  let pool = X.create (X.Domains { n = ndomains }) in
  let tm_soa_par, _, _ = measure ~soa:true pool in
  X.shutdown pool;
  let ps = FC.timings_per_call tm_serial and pp = FC.timings_per_call tm_par in
  let t =
    T.create
      ~title:
        (Printf.sprintf
           "measured per-step phase times, %d-atom LJ fluid (%d pairs)" n
           npairs)
      ~columns:
        [
          ("phase", T.Left);
          ("serial (us)", T.Right);
          (Printf.sprintf "%d domains (us)" ndomains, T.Right);
          ("speedup", T.Right);
        ]
  in
  let open FC in
  let phase name a b =
    T.row t
      [
        name;
        T.cell_f ~prec:1 (a *. 1e6);
        T.cell_f ~prec:1 (b *. 1e6);
        (if b > 0. then Printf.sprintf "%.2fx" (a /. b) else "-");
      ]
  in
  phase "pair (pipelines)" ps.pair_s pp.pair_s;
  phase "bonded (flex)" ps.bonded_s pp.bonded_s;
  phase "long-range" ps.longrange_s pp.longrange_s;
  phase "neighbor rebuild" ps.neighbor_s pp.neighbor_s;
  phase "  nbuild (tiled)" ps.nbuild_s pp.nbuild_s;
  phase "integrate (kick/drift)" ps.integrate_s pp.integrate_s;
  phase "thermostat (Langevin O)" ps.thermostat_s pp.thermostat_s;
  phase "total" (timings_total ps) (timings_total pp);
  T.print t;
  (* The flat (SoA) hot path against the boxed reference kernels on the
     same workload: bitwise-identical results (test_parallel proves it),
     so any pair-phase delta is pure data-layout/allocation effect. The
     serial SoA pair window is Gc-metered and must not allocate. *)
  let ss = FC.timings_per_call tm_soa and sp = FC.timings_per_call tm_soa_par in
  let t_soa =
    T.create
      ~title:"flat (SoA) hot path vs boxed kernels, same workload"
      ~columns:
        [
          ("phase", T.Left);
          ("boxed serial (us)", T.Right);
          ("SoA serial (us)", T.Right);
          ("SoA speedup", T.Right);
          (Printf.sprintf "SoA %d domains (us)" ndomains, T.Right);
        ]
  in
  let soa_phase name a b c =
    T.row t_soa
      [
        name;
        T.cell_f ~prec:1 (a *. 1e6);
        T.cell_f ~prec:1 (b *. 1e6);
        (if b > 0. then Printf.sprintf "%.2fx" (a /. b) else "-");
        T.cell_f ~prec:1 (c *. 1e6);
      ]
  in
  soa_phase "pair (pipelines)" ps.pair_s ss.pair_s sp.pair_s;
  soa_phase "bonded (flex)" ps.bonded_s ss.bonded_s sp.bonded_s;
  soa_phase "total" (timings_total ps) (timings_total ss)
    (timings_total sp);
  T.print t_soa;
  let soa_pair_words = ss.pair_words in
  note
    "allocation: %.0f minor words/step boxed vs %.0f SoA (pair window: %.0f\n\
     words/step — the flat loops allocate nothing once warm).\n"
    words_boxed words_soa soa_pair_words;
  (* The sweeps the constraint-coloring certificate lets the pool run: a
     rigid water box drives SHAKE/RATTLE over the fused 3-atom clusters
     (one batch — the schedule [mdsp check --constraints] certifies) plus
     the Berendsen velocity rescale, serial vs domains. Bitwise identity
     between the two columns' trajectories is test_parallel's job; this
     table prices the sweeps. *)
  let cons_steps = 10 in
  let measure_cons exec =
    let sys = Mdsp_workload.Workloads.water_box ~n_side:8 () in
    let eng =
      Mdsp_workload.Workloads.make_engine
        ~config:
          {
            Mdsp_md.Engine.default_config with
            dt_fs = 1.0;
            temperature = 300.;
            thermostat = Mdsp_md.Engine.Berendsen { tau_fs = 100. };
          }
        ~seed:42 ~exec sys
    in
    Mdsp_md.Engine.run eng 2;
    Mdsp_md.Engine.reset_timings eng;
    Mdsp_md.Engine.run eng cons_steps;
    Mdsp_md.Engine.timings eng
  in
  let tm_cons_serial = measure_cons X.serial in
  let pool = X.create (X.Domains { n = ndomains }) in
  let tm_cons_par = measure_cons pool in
  X.shutdown pool;
  let cs = FC.timings_per_call tm_cons_serial in
  let cp = FC.timings_per_call tm_cons_par in
  let t_cons =
    T.create
      ~title:
        "constraint + thermostat sweeps, 1536-atom rigid water box (1 batch)"
      ~columns:
        [
          ("phase", T.Left);
          ("serial (us)", T.Right);
          (Printf.sprintf "%d domains (us)" ndomains, T.Right);
          ("speedup", T.Right);
        ]
  in
  let cons_phase name a b =
    T.row t_cons
      [
        name;
        T.cell_f ~prec:1 (a *. 1e6);
        T.cell_f ~prec:1 (b *. 1e6);
        (if b > 0. then Printf.sprintf "%.2fx" (a /. b) else "-");
      ]
  in
  cons_phase "constraints (SHAKE/RATTLE)" cs.constraints_s cp.constraints_s;
  cons_phase "thermostat (rescale)" cs.thermostat_s cp.thermostat_s;
  cons_phase "integrate (kick/drift)" cs.integrate_s cp.integrate_s;
  T.print t_cons;
  record "e21.constraints_serial_us" (cs.constraints_s *. 1e6);
  record
    (Printf.sprintf "e21.constraints_domains%d_us" ndomains)
    (cp.constraints_s *. 1e6);
  record "e21.constraints_speedup"
    (cs.constraints_s /. Float.max 1e-12 cp.constraints_s);
  record "e21.thermostat_serial_us" (cs.thermostat_s *. 1e6);
  record
    (Printf.sprintf "e21.thermostat_domains%d_us" ndomains)
    (cp.thermostat_s *. 1e6);
  let pair_speedup = ps.pair_s /. Float.max 1e-12 pp.pair_s in
  let cores = X.recommended_domains () in
  if cores < ndomains then
    note
      "NOTE: host reports %d usable core(s); %d domains oversubscribe it,\n\
       so wall-clock speedup cannot manifest here. The tiled decomposition\n\
       and deterministic reduction are validated by test_parallel; rerun on\n\
       a multicore host for the scaling figure.\n"
      cores ndomains;
  record "e21.host_cores" (float_of_int cores);
  record "e21.npairs" (float_of_int npairs);
  record "e21.pair_serial_us" (ps.pair_s *. 1e6);
  record (Printf.sprintf "e21.pair_domains%d_us" ndomains) (pp.pair_s *. 1e6);
  record "e21.pair_speedup" pair_speedup;
  record "e21.step_serial_us" (timings_total ps *. 1e6);
  record (Printf.sprintf "e21.step_domains%d_us" ndomains)
    (timings_total pp *. 1e6);
  record "e21.nbuild_serial_us" (ps.nbuild_s *. 1e6);
  record "e21.integrate_serial_us" (ps.integrate_s *. 1e6);
  record
    (Printf.sprintf "e21.integrate_domains%d_us" ndomains)
    (pp.integrate_s *. 1e6);
  record "e21.integrate_speedup"
    (ps.integrate_s /. Float.max 1e-12 pp.integrate_s);
  record "e21.pair_soa_serial_us" (ss.pair_s *. 1e6);
  record
    (Printf.sprintf "e21.pair_soa_domains%d_us" ndomains)
    (sp.pair_s *. 1e6);
  record "e21.soa_pair_speedup" (ps.pair_s /. Float.max 1e-12 ss.pair_s);
  record "e21.soa_pair_minor_words_per_step" soa_pair_words;
  record "e21.step_minor_words_boxed" words_boxed;
  record "e21.step_minor_words_soa" words_soa;
  (* The GSE grid pipeline — the stage the machine backs with dedicated
     long-range hardware: a charged water box with grid electrostatics,
     serial vs domains, broken into spread/fft/convolve/gather. *)
  let gse_grid = (16, 16, 16) in
  let gse_steps = 6 in
  let measure_gse exec =
    let sys = Mdsp_workload.Workloads.water_box ~n_side:4 () in
    let eng =
      Mdsp_workload.Workloads.make_engine
        ~config:
          {
            Mdsp_md.Engine.default_config with
            dt_fs = 1.0;
            temperature = 300.;
            thermostat = Mdsp_md.Engine.Langevin { gamma_fs = 0.02 };
          }
        ~seed:42 ~exec ~gse_grid sys
    in
    Mdsp_md.Engine.run eng 2;
    Mdsp_md.Engine.reset_timings eng;
    Mdsp_md.Engine.run eng gse_steps;
    (Mdsp_md.Engine.timings eng, sys)
  in
  let tm_gse_serial, gse_sys = measure_gse X.serial in
  let pool = X.create (X.Domains { n = ndomains }) in
  let tm_gse_par, _ = measure_gse pool in
  X.shutdown pool;
  let gs = FC.timings_per_call tm_gse_serial in
  let gp = FC.timings_per_call tm_gse_par in
  let gx, gy, gz = gse_grid in
  let t_gse =
    T.create
      ~title:
        (Printf.sprintf
           "GSE grid pipeline sub-phases, 192-atom water box, %dx%dx%d grid"
           gx gy gz)
      ~columns:
        [
          ("phase", T.Left);
          ("serial (us)", T.Right);
          (Printf.sprintf "%d domains (us)" ndomains, T.Right);
          ("speedup", T.Right);
        ]
  in
  let gse_phase ?key name a b =
    T.row t_gse
      [
        name;
        T.cell_f ~prec:1 (a *. 1e6);
        T.cell_f ~prec:1 (b *. 1e6);
        (if b > 0. then Printf.sprintf "%.2fx" (a /. b) else "-");
      ];
    match key with
    | None -> ()
    | Some key ->
        record (Printf.sprintf "e21.lr_%s_serial_us" key) (a *. 1e6);
        record
          (Printf.sprintf "e21.lr_%s_domains%d_us" key ndomains)
          (b *. 1e6)
  in
  gse_phase ~key:"spread" "spread" gs.lr_spread_s gp.lr_spread_s;
  gse_phase ~key:"fft" "fft" gs.lr_fft_s gp.lr_fft_s;
  gse_phase ~key:"convolve" "convolve" gs.lr_convolve_s gp.lr_convolve_s;
  gse_phase ~key:"gather" "gather" gs.lr_gather_s gp.lr_gather_s;
  gse_phase ~key:"total" "long-range total" gs.longrange_s gp.longrange_s;
  T.print t_gse;
  (* The analytic machine model for the grid workload, next to what we
     actually measured on the host backend — sub-phase rows included on
     both sides. *)
  let w =
    Perf.of_system ~dt_fs:1.0 ~fft_grid:gse_grid
      gse_sys.Mdsp_workload.Workloads.topo gse_sys.Mdsp_workload.Workloads.box
  in
  let b = Perf.step_time (Config.anton_like ()) w in
  let t2 =
    T.create ~title:"analytic 512-node model vs host measurement (per step)"
      ~columns:
        [ ("resource", T.Left); ("model (us)", T.Right); ("measured (us)", T.Right) ]
  in
  List.iter
    (fun r ->
      T.row t2
        [
          r.Perf.resource;
          T.cell_f ~prec:3 (r.Perf.model_s *. 1e6);
          (match r.Perf.measured_s with
          | Some m -> T.cell_f ~prec:1 (m *. 1e6)
          | None -> "-");
        ])
    (Perf.resource_rows b tm_gse_par);
  T.print t2;
  note "%s"
    (Printf.sprintf
       "Pair phase speedup at %d domains: %.2fx. The host runs the same\n\
        tiled pair sum the hardwired pipelines execute; the model columns\n\
        show how far a special-purpose 512-node machine pulls ahead.\n"
       ndomains pair_speedup)

(* E7 (Fig. 4): where the time goes, per method. *)
let e7 () =
  section "E7" "Per-step resource breakdown by method (Fig. 4)";
  let cfg = Config.anton_like () in
  let base = workload 23_500 in
  let t =
    T.create ~title:"Per-step time by machine resource (microseconds)"
      ~columns:
        [
          ("method", T.Left);
          ("pipelines", T.Right);
          ("flex cores", T.Right);
          ("network", T.Right);
          ("long-range", T.Right);
          ("sync", T.Right);
          ("step", T.Right);
        ]
  in
  List.iter
    (fun cost ->
      let w = Mdsp_core.Mapping.apply cost base in
      let b = Perf.step_time cfg w in
      let us x = T.cell_f ~prec:3 (x *. 1e6) in
      T.row t
        [
          cost.Mdsp_core.Mapping.method_name;
          us b.Perf.htis_s;
          us b.Perf.flex_s;
          us b.Perf.comm_s;
          us b.Perf.fft_s;
          us b.Perf.sync_s;
          us b.Perf.step_s;
        ])
    (method_costs ());
  T.print t;
  note
    "Methods perturb mostly the flexible-subsystem column; the hardwired\n\
     pipeline time is untouched except by FEP's extra pass.\n"
