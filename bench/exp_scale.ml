(* E23: multi-node strong scaling from real decomposition frames.

   For each workload and torus size, run the midpoint decomposition
   (Mdsp_machine.Decomp) on the actual coordinates, price the resulting
   import / force-return / grid-transpose traffic on the torus
   (Comm_model), and feed the wire times into the performance model
   (Perf.step_time_decomposed). The table shows where communication
   overtakes computation as per-node work shrinks; the exactly-once
   pair-assignment check runs on every frame against the single-node
   cell list. *)

open Bench_common
module W = Mdsp_workload.Workloads
module Config = Mdsp_machine.Config
module Perf = Mdsp_machine.Perf
module Decomp = Mdsp_machine.Decomp
module Comm_model = Mdsp_machine.Comm_model

let node_grids = [ (2, 2, 2); (4, 4, 4); (8, 8, 4); (8, 8, 8) ]

let limiting (b : Perf.breakdown) =
  if b.Perf.htis_s >= b.Perf.flex_s && b.Perf.htis_s >= b.Perf.comm_s then
    "pair"
  else if b.Perf.flex_s >= b.Perf.comm_s then "flex"
  else "comm"

let scale_one ~label ~grid (sys : W.system) =
  let cutoff = 9.0 in
  let w =
    { (Perf.of_system ~fft_grid:grid sys.W.topo sys.W.box) with Perf.cutoff }
  in
  let t =
    T.create
      ~title:
        (Printf.sprintf "%s (%d atoms): nodes vs compute / comm" label
           (Array.length sys.W.positions))
      ~columns:
        [
          ("nodes", T.Right);
          ("home max", T.Right);
          ("import max", T.Right);
          ("pairs/node max", T.Right);
          ("compute us", T.Right);
          ("comm us", T.Right);
          ("step us", T.Right);
          ("ns/day", T.Right);
          ("limit", T.Left);
        ]
  in
  let all_once = ref true in
  List.iter
    (fun nodes ->
      let d = Decomp.create sys.W.box ~nodes ~cutoff in
      let stats = Decomp.analyze d sys.W.positions in
      all_once := !all_once && stats.Decomp.pair_once_ok;
      let cfg = Config.anton_like ~nodes () in
      let comm = Comm_model.of_stats cfg ~grid stats in
      let b = Perf.step_time_decomposed cfg w ~comm in
      let ns_day = Perf.ns_per_day_decomposed cfg w ~comm in
      let nn = Decomp.node_count d in
      let compute_s = Float.max b.Perf.htis_s b.Perf.flex_s in
      let home_max = Array.fold_left max 0 stats.Decomp.home_atoms in
      let import_max = Array.fold_left max 0 stats.Decomp.import_atoms in
      let key k = Printf.sprintf "e23.%s.n%d.%s" label nn k in
      record (key "compute_s") compute_s;
      record (key "comm_s") b.Perf.comm_s;
      record (key "step_s") b.Perf.step_s;
      record (key "ns_day") ns_day;
      record (key "pairs_node_max")
        (float_of_int (Decomp.max_pairs_per_node stats));
      record (key "pair_once") (if stats.Decomp.pair_once_ok then 1. else 0.);
      T.row t
        [
          T.cell_i nn;
          T.cell_i home_max;
          T.cell_i import_max;
          T.cell_i (Decomp.max_pairs_per_node stats);
          T.cell_f ~prec:3 (compute_s *. 1e6);
          T.cell_f ~prec:3 (b.Perf.comm_s *. 1e6);
          T.cell_f ~prec:3 (b.Perf.step_s *. 1e6);
          T.cell_f ~prec:2 ns_day;
          limiting b;
        ])
    node_grids;
  T.print t;
  !all_once

let e23 () =
  section "E23" "Multi-node strong scaling: decomposition + torus network";
  let ok_water =
    scale_one ~label:"water6k" ~grid:(32, 32, 32) (W.water_box ~n_side:13 ())
  in
  let ok_chain =
    scale_one ~label:"chain10k" ~grid:(32, 32, 32)
      (W.bead_chain ~n_beads:256 ~n_total:10_000 ())
  in
  let ok = ok_water && ok_chain in
  record "e23.pair_once_ok" (if ok then 1. else 0.);
  note
    "Every frame's midpoint pair assignment reproduced the single-node\n\
     cell-list count with zero residency violations: %s.\n\
     Compute shrinks ~linearly with nodes while the comm term is dominated\n\
     by per-node import depth (cutoff/2 shell), which shrinks much slower —\n\
     the limiting term flips from compute to comm as nodes grow.\n"
    (if ok then "ok" else "FAILED")
