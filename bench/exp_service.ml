(* E24: the simulation job service under synthetic many-client load.

   A burst of clients each spool a couple of small jobs; the scheduler
   drains the queue in round-robin slices at 1/2/4 pool slots with a
   quantum small enough that every job is preempted to its checkpoint
   several times. Reports service throughput (jobs/hour) and turnaround
   percentiles, and checks the tentpole invariant: every preempted job's
   final checkpoint and result record are byte-identical to an
   uninterrupted run of the same spec, at every slot count. *)

open Bench_common
module Job = Mdsp_service.Job
module Queue = Mdsp_service.Queue
module Scheduler = Mdsp_service.Scheduler

let n_clients = 16
let jobs_per_client = 2
let job_steps = 160
let quantum = 40 (* 4 slices per job: 3 preemptions before the final one *)

let specs =
  List.concat_map
    (fun client ->
      List.init jobs_per_client (fun k ->
          {
            Job.label = Printf.sprintf "client%02d-%d" client k;
            preset = "lj64";
            steps = job_steps;
            dt_fs = 2.0;
            temperature = 120.;
            seed = (100 * client) + k;
            kind = Job.Single;
          }))
    (List.init n_clients Fun.id)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let rm_rf dir =
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let percentile p sorted =
  let n = Array.length sorted in
  sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

(* Drain the queue at [slots], returning (wall seconds, sorted turnaround
   times, per-job (ckpt bytes, result line)). All jobs arrive at t0 — the
   burst — so turnaround is simply each job's completion stamp. *)
let run_at ~slots =
  let dir = Mdsp_util.Atomic_file.fresh_dir ~prefix:"mdsp_e24" () in
  let queue = Queue.create ~dir in
  let entries =
    List.map
      (fun spec ->
        match Queue.submit queue spec with
        | Ok e -> e
        | Error m -> failwith ("e24 submit: " ^ m))
      specs
  in
  let exec =
    if slots = 1 then Mdsp_util.Exec.serial
    else Mdsp_util.Exec.create (Mdsp_util.Exec.Domains { n = slots })
  in
  let sched = Scheduler.create ~quantum ~exec queue in
  let t0 = Unix.gettimeofday () in
  let finished = Hashtbl.create 64 in
  let rec drain () =
    let advanced = Scheduler.run_slice sched in
    let now = Unix.gettimeofday () in
    List.iter
      (fun (e : Queue.entry) ->
        if e.Queue.status = Queue.Done && not (Hashtbl.mem finished e.Queue.id)
        then Hashtbl.add finished e.Queue.id (now -. t0))
      entries;
    if advanced > 0 then drain ()
  in
  drain ();
  let wall = Unix.gettimeofday () -. t0 in
  Mdsp_util.Exec.shutdown exec;
  let turnarounds =
    Array.of_list
      (List.map (fun (e : Queue.entry) -> Hashtbl.find finished e.Queue.id)
         entries)
  in
  Array.sort compare turnarounds;
  let outputs =
    List.map
      (fun (e : Queue.entry) ->
        ( read_file (Queue.ckpt_path queue e),
          Option.get (Queue.read_result queue e.Queue.id) ))
      entries
  in
  rm_rf dir;
  (wall, turnarounds, outputs)

let e24 () =
  section "E24" "Job service under many-client load";
  let n_jobs = List.length specs in
  note "%d clients x %d jobs: %d lj64 jobs of %d steps, quantum %d\n"
    n_clients jobs_per_client n_jobs job_steps quantum;
  record "e24.clients" (float_of_int n_clients);
  record "e24.jobs" (float_of_int n_jobs);
  (* The no-preemption reference for every spec, once. *)
  let reference =
    List.map
      (fun spec ->
        let ckpt = Filename.temp_file "mdsp_e24_ref" ".ckpt" in
        ignore (Scheduler.uninterrupted spec ~ckpt);
        let bytes = read_file ckpt in
        Sys.remove ckpt;
        bytes)
      specs
  in
  let t =
    T.create ~title:"service throughput vs pool slots"
      ~columns:
        [
          ("slots", T.Right);
          ("wall s", T.Right);
          ("jobs/hour", T.Right);
          ("p50 turnaround s", T.Right);
          ("p95 turnaround s", T.Right);
          ("identity", T.Left);
        ]
  in
  let baseline = ref [] in
  let all_identical = ref true in
  List.iter
    (fun slots ->
      let wall, turnarounds, outputs = run_at ~slots in
      let identical =
        List.for_all2
          (fun ref_ckpt (ckpt, _) -> ckpt = ref_ckpt)
          reference outputs
        && (!baseline = [] || !baseline = outputs)
      in
      if !baseline = [] then baseline := outputs;
      if not identical then all_identical := false;
      let jph = float_of_int n_jobs /. wall *. 3600. in
      let p50 = percentile 0.50 turnarounds in
      let p95 = percentile 0.95 turnarounds in
      record (Printf.sprintf "e24.slots%d.jobs_per_hour" slots) jph;
      record (Printf.sprintf "e24.slots%d.p50_turnaround_s" slots) p50;
      record (Printf.sprintf "e24.slots%d.p95_turnaround_s" slots) p95;
      T.row t
        [
          T.cell_i slots;
          Printf.sprintf "%.2f" wall;
          Printf.sprintf "%.0f" jph;
          Printf.sprintf "%.3f" p50;
          Printf.sprintf "%.3f" p95;
          (if identical then "bitwise" else "MISMATCH");
        ])
    [ 1; 2; 4 ];
  print_string (T.render t);
  record "e24.identity" (if !all_identical then 1. else 0.);
  note
    "(pool slots beyond the %d recommended domain(s) oversubscribe the \
     machine; throughput then measures preemption overhead, not scaling)\n"
    (Mdsp_util.Exec.recommended_domains ());
  note
    "identity: final checkpoints vs uninterrupted reference, and result \
     records across slot counts — %s\n"
    (if !all_identical then "all bitwise identical" else "MISMATCH")
