(* mdsp — command-line front end.

   Subcommands:
     mdsp presets                  list built-in workloads
     mdsp run ...                  run MD on a preset and report
     mdsp ensemble ...             sharded replica-exchange on the Exec pool
     mdsp model ...                machine/cluster performance model
     mdsp project ...              multi-node decomposition + torus network
     mdsp table ...                compile a pair form and report accuracy
     mdsp check ...                verify kernels, tables, parallel phases
     mdsp serve ...                JSON-lines job service over stdin/stdout
     mdsp submit ...               spool a job into a serve directory
     mdsp jobs ...                 list a spool directory, check hygiene *)

open! Cmdliner
module E = Mdsp_md.Engine

(* --- presets --- *)

let presets_cmd =
  let doc = "List the built-in benchmark workloads." in
  let run () =
    Printf.printf "%-10s %8s\n" "name" "atoms";
    List.iter
      (fun p ->
        Printf.printf "%-10s %8d\n" p.Mdsp_workload.Workloads.name
          p.Mdsp_workload.Workloads.atoms)
      Mdsp_workload.Workloads.presets
  in
  Cmd.v (Cmd.info "presets" ~doc) Term.(const run $ const ())

(* --- run --- *)

let preset_arg =
  let doc = "Workload preset (see `mdsp presets'), or lj<N> / water<S> for a\n
             custom LJ fluid of N atoms / water box of S^3 molecules." in
  Arg.(value & opt string "lj1k" & info [ "p"; "preset" ] ~docv:"NAME" ~doc)

let steps_arg =
  Arg.(value & opt int 2000 & info [ "n"; "steps" ] ~docv:"STEPS" ~doc:"MD steps.")

let temp_arg =
  let open! Arg in
  value & opt float 300.
  & info [ "t"; "temperature" ] ~docv:"K" ~doc:"Target temperature (K)."

let dt_arg =
  let open! Arg in
  value & opt float 2.0 & info [ "dt" ] ~docv:"FS" ~doc:"Time step (fs)."

let thermostat_arg =
  Arg.(
    value
    & opt (enum [ ("none", `None); ("langevin", `Langevin); ("nose-hoover", `Nh); ("berendsen", `Ber) ]) `Langevin
    & info [ "thermostat" ] ~docv:"KIND" ~doc:"none | langevin | nose-hoover | berendsen.")

let tables_arg =
  Arg.(
    value & flag
    & info [ "machine-tables" ]
        ~doc:"Run the pair interactions through compiled machine tables.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ]
        ~docv:"N"
        ~doc:
          "Run the pair/bonded force phases on N OCaml domains (1 = serial, \
           0 = one per recommended core).")

let timings_arg =
  Arg.(
    value & flag
    & info [ "timings" ]
        ~doc:"Print the per-resource step-time breakdown after the run.")

let gse_arg =
  Arg.(
    value & opt int 0
    & info [ "gse" ] ~docv:"N"
        ~doc:
          "Grid electrostatics for charged systems: real-space Ewald pairs \
           plus the GSE reciprocal solver on an NxNxN grid (N a power of \
           two; 0 = off). All grid phases run on the --domains backend.")

let soa_arg =
  Arg.(
    value & flag
    & info [ "soa" ]
        ~doc:
          "Run the bonded/1-4/pair force phases on the flat \
           structure-of-arrays fast path (bitwise identical to the boxed \
           reference kernels; ignored when --tables replaces the \
           evaluator).")

let xyz_arg =
  Arg.(
    value & opt (some string) None
    & info [ "xyz" ] ~docv:"FILE" ~doc:"Write an XYZ trajectory to FILE.")

let xyz_stride_arg =
  Arg.(
    value & opt int 100
    & info [ "xyz-stride" ] ~docv:"N" ~doc:"Steps between trajectory frames.")

let checkpoint_arg =
  Arg.(
    value & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:"Write a restart checkpoint to FILE at the end of the run.")

let restart_arg =
  Arg.(
    value & opt (some string) None
    & info [ "restart" ] ~docv:"FILE"
        ~doc:"Resume positions/velocities/box/time from a checkpoint.")

let build_system name = Mdsp_workload.Workloads.of_name name

(* Turn Failure — unknown preset, missing/truncated/mismatched checkpoint,
   malformed job spec — into a one-line diagnostic and a nonzero exit
   instead of a raw exception backtrace. *)
let or_die f =
  try f () with
  | Failure msg | Sys_error msg ->
      Printf.eprintf "mdsp: %s\n" msg;
      exit 1

let print_timings eng =
  let tm = E.timings eng in
  let per = Mdsp_md.Force_calc.timings_per_call tm in
  let open Mdsp_md.Force_calc in
  Printf.printf "per-step force-pipeline breakdown (%d evaluations):\n"
    tm.calls;
  Printf.printf "  pair (pipelines)    %10.3f us\n" (per.pair_s *. 1e6);
  Printf.printf "  bonded (flex)       %10.3f us\n" (per.bonded_s *. 1e6);
  Printf.printf "  bias (flex)         %10.3f us\n" (per.bias_s *. 1e6);
  Printf.printf "  long-range          %10.3f us\n" (per.longrange_s *. 1e6);
  if per.lr_spread_s > 0. || per.lr_fft_s > 0. then begin
    Printf.printf "    spread            %10.3f us\n" (per.lr_spread_s *. 1e6);
    Printf.printf "    fft               %10.3f us\n" (per.lr_fft_s *. 1e6);
    Printf.printf "    convolve          %10.3f us\n"
      (per.lr_convolve_s *. 1e6);
    Printf.printf "    gather            %10.3f us\n" (per.lr_gather_s *. 1e6)
  end;
  Printf.printf "  neighbor rebuild    %10.3f us\n" (per.neighbor_s *. 1e6);
  if per.nbuild_s > 0. then
    Printf.printf "    nbuild            %10.3f us\n" (per.nbuild_s *. 1e6);
  Printf.printf "  integrate           %10.3f us\n" (per.integrate_s *. 1e6);
  if per.constraints_s > 0. then
    Printf.printf "  constraints         %10.3f us\n"
      (per.constraints_s *. 1e6);
  if per.thermostat_s > 0. then
    Printf.printf "  thermostat          %10.3f us\n"
      (per.thermostat_s *. 1e6);
  Printf.printf "  total               %10.3f us\n"
    (timings_total per *. 1e6);
  (* The Gc meter only wraps the serial SoA pair window. *)
  if E.soa_active eng then
    Printf.printf "  pair alloc          %10.1f words/step\n" per.pair_words

let run_cmd =
  let doc = "Run molecular dynamics on a workload and report observables." in
  let run preset steps temp dt thermostat use_tables seed domains gse soa
      timings xyz xyz_stride checkpoint restart =
   or_die @@ fun () ->
    let sys = build_system preset in
    let exec =
      let module X = Mdsp_util.Exec in
      match domains with
      | 1 -> X.serial
      | 0 -> X.create (X.Domains { n = X.recommended_domains () })
      | n -> X.create (X.Domains { n })
    in
    let gse_grid = if gse > 0 then Some (gse, gse, gse) else None in
    let thermostat =
      match thermostat with
      | `None -> E.No_thermostat
      | `Langevin -> E.Langevin { gamma_fs = 0.02 }
      | `Nh -> E.Nose_hoover { tau_fs = 100. }
      | `Ber -> E.Berendsen { tau_fs = 100. }
    in
    let cfg = { E.default_config with dt_fs = dt; temperature = temp; thermostat } in
    let eng =
      Mdsp_workload.Workloads.make_engine ~config:cfg ?gse_grid ~seed ~exec
        ~soa sys
    in
    (match Mdsp_util.Exec.backend exec with
    | Mdsp_util.Exec.Serial -> ()
    | Mdsp_util.Exec.Domains { n } ->
        Printf.printf "execution backend: %d domains\n" n);
    if E.soa_active eng then print_endline "data layout: flat (SoA) hot path";
    (match Mdsp_md.Force_calc.(longrange_kind (E.force_calc eng)) with
    | `Gse (gx, gy, gz) ->
        Printf.printf "long-range: GSE grid %dx%dx%d\n" gx gy gz
    | _ -> ());
    (match restart with
    | None -> ()
    | Some path ->
        let loaded, step =
          Mdsp_md.Trajectory.Checkpoint.load ~expect_preset:preset path
        in
        let st = E.state eng in
        if Mdsp_md.State.n loaded <> Mdsp_md.State.n st then
          failwith
            (Printf.sprintf
               "restart %s: checkpoint has %d atoms but preset %s has %d"
               path (Mdsp_md.State.n loaded) preset (Mdsp_md.State.n st));
        Array.blit loaded.Mdsp_md.State.positions 0 st.Mdsp_md.State.positions
          0 (Mdsp_md.State.n st);
        Array.blit loaded.Mdsp_md.State.velocities 0
          st.Mdsp_md.State.velocities 0 (Mdsp_md.State.n st);
        st.Mdsp_md.State.box <- loaded.Mdsp_md.State.box;
        st.Mdsp_md.State.time <- loaded.Mdsp_md.State.time;
        E.refresh_forces eng;
        Printf.printf "restarted from %s (step %d)\n" path step);
    let traj =
      Option.map
        (fun path ->
          let names =
            Array.map
              (fun (a : Mdsp_ff.Topology.atom) -> a.Mdsp_ff.Topology.name)
              sys.Mdsp_workload.Workloads.topo.Mdsp_ff.Topology.atoms
          in
          let t = Mdsp_md.Trajectory.open_xyz path ~names in
          E.add_post_step eng ~name:"xyz" (fun eng ->
              if E.steps_done eng mod xyz_stride = 0 then begin
                let st = E.state eng in
                Mdsp_md.Trajectory.write_frame t st.Mdsp_md.State.box
                  ~time_fs:(Mdsp_util.Units.to_fs st.Mdsp_md.State.time)
                  st.Mdsp_md.State.positions
              end);
          t)
        xyz
    in
    if use_tables then begin
      let cutoff =
        Mdsp_space.Neighbor_list.cutoff (Mdsp_md.Force_calc.nlist (E.force_calc eng))
      in
      let has_charges =
        Array.exists
          (fun (a : Mdsp_ff.Topology.atom) -> a.Mdsp_ff.Topology.charge <> 0.)
          sys.Mdsp_workload.Workloads.topo.Mdsp_ff.Topology.atoms
      in
      let elec =
        if has_charges then
          Mdsp_ff.Pair_interactions.Reaction_field { epsilon_rf = 78.5 }
        else Mdsp_ff.Pair_interactions.No_coulomb
      in
      let ts =
        Mdsp_core.Table.table_set_of_topology sys.Mdsp_workload.Workloads.topo
          ~cutoff ~elec ~n:2048 ()
      in
      let types =
        Array.map
          (fun (a : Mdsp_ff.Topology.atom) -> a.Mdsp_ff.Topology.type_id)
          sys.Mdsp_workload.Workloads.topo.Mdsp_ff.Topology.atoms
      in
      let charges = Mdsp_ff.Topology.charges sys.Mdsp_workload.Workloads.topo in
      Mdsp_md.Force_calc.set_evaluator (E.force_calc eng)
        (Mdsp_machine.Htis.evaluator ts ~types ~charges ~cutoff);
      E.refresh_forces eng;
      Printf.printf "pair interactions: compiled machine tables (2048 intervals)\n"
    end;
    Printf.printf "%s: %d atoms, %d steps at %.1f fs\n"
      sys.Mdsp_workload.Workloads.label
      (Mdsp_ff.Topology.n_atoms sys.Mdsp_workload.Workloads.topo)
      steps dt;
    let report () =
      Printf.printf
        "  t = %7.2f ps   T = %7.1f K   PE = %12.3f   E = %12.3f   P = %9.1f atm\n%!"
        (Mdsp_util.Units.to_ns (E.state eng).Mdsp_md.State.time *. 1000.)
        (E.temperature eng) (E.potential_energy eng) (E.total_energy eng)
        (E.pressure_atm eng)
    in
    report ();
    let chunk = max 1 (steps / 10) in
    let remaining = ref steps in
    (try
       while !remaining > 0 do
         let todo = min chunk !remaining in
         E.run eng todo;
         remaining := !remaining - todo;
         report ()
       done
     with Mdsp_md.Constraints.Unconverged u ->
       (* The structured payload names the offending cluster; the CLI adds
          the workload context. *)
       Printf.eprintf "mdsp: preset %s: %s\n" preset
         (Mdsp_md.Constraints.unconverged_message u);
       exit 1);
    Option.iter Mdsp_md.Trajectory.close_xyz traj;
    if timings then print_timings eng;
    (match checkpoint with
    | None -> ()
    | Some path ->
        Mdsp_md.Trajectory.Checkpoint.save ~preset path (E.state eng)
          ~step:(E.steps_done eng);
        Printf.printf "checkpoint written to %s\n" path);
    Mdsp_util.Exec.shutdown exec
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ preset_arg $ steps_arg $ temp_arg $ dt_arg $ thermostat_arg
      $ tables_arg $ seed_arg $ domains_arg $ gse_arg $ soa_arg $ timings_arg
      $ xyz_arg $ xyz_stride_arg $ checkpoint_arg $ restart_arg)

(* --- ensemble --- *)

let replicas_arg =
  Arg.(
    value & opt int 4
    & info [ "replicas" ] ~docv:"M" ~doc:"Replica (temperature rung) count.")

let stride_arg =
  Arg.(
    value & opt int 25
    & info [ "stride" ] ~docv:"S" ~doc:"MD steps between exchange attempts.")

let temp_min_arg =
  let open! Arg in
  value & opt float 120.
  & info [ "temp-min" ] ~docv:"K" ~doc:"Bottom rung temperature (K)."

let temp_max_arg =
  let open! Arg in
  value & opt float 160.
  & info [ "temp-max" ] ~docv:"K" ~doc:"Top rung temperature (K)."

let ens_checkpoint_arg =
  Arg.(
    value & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:"Write an exact ensemble checkpoint to FILE after the run.")

let ens_resume_arg =
  Arg.(
    value & opt (some string) None
    & info [ "resume" ] ~docv:"FILE"
        ~doc:
          "Resume an interrupted ensemble from a checkpoint written by \
           --checkpoint; the continued run reproduces the uninterrupted one \
           bit for bit.")

let ensemble_cmd =
  let doc =
    "Run temperature replica exchange with the replicas sharded across the \
     execution pool (one engine per slot, exchange at the barrier) — \
     bitwise identical to the sequential ladder for any --domains count."
  in
  let run preset steps replicas domains stride tmin tmax seed checkpoint
      resume =
   or_die @@ fun () ->
    if replicas < 2 then failwith "ensemble: need --replicas >= 2";
    if stride < 1 then failwith "ensemble: need --stride >= 1";
    if not (tmax > tmin && tmin > 0.) then
      failwith "ensemble: need 0 < --temp-min < --temp-max";
    (* Geometric ladder: uniform acceptance across rungs wants constant
       temperature ratios. *)
    let temps =
      Array.init replicas (fun i ->
          tmin
          *. ((tmax /. tmin)
             ** (float_of_int i /. float_of_int (replicas - 1))))
    in
    let engines =
      Array.mapi
        (fun i temp ->
          let sys = build_system preset in
          let cfg =
            {
              E.default_config with
              dt_fs = 2.0;
              temperature = temp;
              thermostat = E.Langevin { gamma_fs = 0.02 };
            }
          in
          Mdsp_workload.Workloads.make_engine ~config:cfg ~seed:(seed + i)
            sys)
        temps
    in
    let remd = Mdsp_core.Remd.create ~engines ~temps ~stride ~seed in
    let exec =
      let module X = Mdsp_util.Exec in
      match domains with
      | 1 -> X.serial
      | 0 -> X.create (X.Domains { n = X.recommended_domains () })
      | n -> X.create (X.Domains { n })
    in
    let ens = Mdsp_ensemble.Ensemble.create ~exec remd in
    Printf.printf "%s ladder: %d replicas (%.0f-%.0f K) on %d slot(s), \
                   exchange stride %d\n"
      preset replicas tmin tmax
      (Mdsp_ensemble.Shard.n_slots (Mdsp_ensemble.Ensemble.shard ens))
      stride;
    (match resume with
    | None -> ()
    | Some path ->
        Mdsp_ensemble.Ensemble.resume_checkpoint ~expect_preset:preset ens
          path;
        Printf.printf "resumed from %s (sweep %d)\n" path
          (Mdsp_core.Remd.sweeps_done remd));
    let sweeps = max 1 (steps / stride) in
    Mdsp_ensemble.Ensemble.run ens ~sweeps;
    print_string (Mdsp_ensemble.Ensemble.metrics_table ens);
    let acc = Mdsp_core.Remd.acceptance remd in
    Array.iteri
      (fun i a ->
        Printf.printf "exchange %.0fK <-> %.0fK: acceptance %.2f\n"
          temps.(i)
          temps.(i + 1)
          a)
      acc;
    (match checkpoint with
    | None -> ()
    | Some path ->
        Mdsp_ensemble.Ensemble.save_checkpoint ~preset ens path;
        Printf.printf "ensemble checkpoint written to %s (sweep %d)\n" path
          (Mdsp_core.Remd.sweeps_done remd));
    Mdsp_util.Exec.shutdown exec
  in
  Cmd.v (Cmd.info "ensemble" ~doc)
    Term.(
      const run $ preset_arg $ steps_arg $ replicas_arg $ domains_arg
      $ stride_arg $ temp_min_arg $ temp_max_arg $ seed_arg
      $ ens_checkpoint_arg $ ens_resume_arg)

(* --- service: serve / submit / jobs --- *)

let spool_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "dir" ] ~docv:"DIR" ~doc:"Job spool directory.")

let slots_arg =
  Arg.(
    value & opt int 1
    & info [ "slots" ] ~docv:"N"
        ~doc:"Scheduler pool slots (jobs advanced concurrently per slice).")

let quantum_arg =
  Arg.(
    value
    & opt int Mdsp_service.Scheduler.default_quantum
    & info [ "quantum" ] ~docv:"STEPS"
        ~doc:"MD steps a job runs per slice before preempting to a checkpoint.")

let serve_cmd =
  let doc =
    "Serve simulation jobs: JSON-lines requests on stdin, responses on \
     stdout (see Protocol in lib/service). Jobs persist in --dir and \
     survive restarts."
  in
  let run dir slots quantum =
    or_die @@ fun () ->
    Mdsp_service.Server.serve ~quantum ~slots ~dir ~input:Unix.stdin
      ~output:stdout ()
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const run $ spool_arg $ slots_arg $ quantum_arg)

let label_arg =
  Arg.(
    value & opt string ""
    & info [ "label" ] ~docv:"TEXT" ~doc:"Free-form job label (one line).")

let submit_replicas_arg =
  Arg.(
    value & opt int 0
    & info [ "replicas" ] ~docv:"M"
        ~doc:"Make the job an REMD ladder of M replicas (0 = single run).")

let porcelain_arg =
  Arg.(
    value & flag
    & info [ "porcelain" ] ~doc:"Print only the job id (for scripts).")

let submit_cmd =
  let doc = "Spool a job into a serve directory (no server required)." in
  let run dir preset steps temp dt seed label replicas tmin tmax stride
      porcelain =
    or_die @@ fun () ->
    let kind =
      if replicas = 0 then Mdsp_service.Job.Single
      else
        Mdsp_service.Job.Remd
          { replicas; temp_min = tmin; temp_max = tmax; stride }
    in
    let spec =
      {
        Mdsp_service.Job.label;
        preset;
        steps;
        dt_fs = dt;
        temperature = temp;
        seed;
        kind;
      }
    in
    let queue = Mdsp_service.Queue.create ~dir in
    match Mdsp_service.Queue.submit queue spec with
    | Error msg -> failwith ("submit: " ^ msg)
    | Ok e ->
        if porcelain then print_endline e.Mdsp_service.Queue.id
        else
          Printf.printf "%s %s (%s)\n" e.Mdsp_service.Queue.id
            (Mdsp_service.Queue.status_to_string e.Mdsp_service.Queue.status)
            (Mdsp_service.Job.describe spec)
  in
  Cmd.v (Cmd.info "submit" ~doc)
    Term.(
      const run $ spool_arg $ preset_arg $ steps_arg $ temp_arg $ dt_arg
      $ seed_arg $ label_arg $ submit_replicas_arg $ temp_min_arg
      $ temp_max_arg $ stride_arg $ porcelain_arg)

let jobs_check_arg =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "Also scan for spool orphans (leftover .tmp staging files, \
           records without a .job spec); exit 1 if any.")

let jobs_cmd =
  let doc = "List the jobs in a spool directory." in
  let run dir check =
    or_die @@ fun () ->
    let queue = Mdsp_service.Queue.create ~dir in
    Printf.printf "%-18s %-8s %10s %10s  %s\n" "id" "status" "done" "total"
      "label";
    List.iter
      (fun (e : Mdsp_service.Queue.entry) ->
        Printf.printf "%-18s %-8s %10d %10d  %s\n" e.Mdsp_service.Queue.id
          (Mdsp_service.Queue.status_to_string e.Mdsp_service.Queue.status)
          e.Mdsp_service.Queue.steps_done
          e.Mdsp_service.Queue.spec.Mdsp_service.Job.steps
          e.Mdsp_service.Queue.spec.Mdsp_service.Job.label)
      (Mdsp_service.Queue.entries queue);
    if check then begin
      let orphans = Mdsp_service.Queue.orphans ~dir in
      List.iter (fun o -> Printf.printf "orphan: %s\n" o) orphans;
      if orphans <> [] then exit 1;
      print_endline "spool clean: no orphans"
    end
  in
  Cmd.v (Cmd.info "jobs" ~doc) Term.(const run $ spool_arg $ jobs_check_arg)

(* --- model --- *)

let atoms_arg =
  Arg.(value & opt int 23500 & info [ "atoms" ] ~docv:"N" ~doc:"Atom count.")

let nodes_arg =
  Arg.(
    value & opt (t3 int int int) (8, 8, 8)
    & info [ "nodes" ] ~docv:"X,Y,Z" ~doc:"Torus dimensions.")

let model_cmd =
  let doc = "Report the machine and cluster performance models for a workload." in
  let run atoms nodes =
    let g =
      Mdsp_longrange.Fft.next_pow2
        (int_of_float ((float_of_int atoms /. 0.1) ** (1. /. 3.)))
    in
    let w =
      {
        (Mdsp_machine.Perf.plain_workload ~n_atoms:atoms ~density:0.1
           ~cutoff:9.0 ~dt_fs:2.5)
        with
        Mdsp_machine.Perf.n_constraints = atoms;
        fft_grid = Some (g, g, g);
      }
    in
    let cfg = Mdsp_machine.Config.anton_like ~nodes () in
    let b = Mdsp_machine.Perf.step_time cfg w in
    let px, py, pz = nodes in
    Printf.printf "machine %dx%dx%d, %d atoms:\n" px py pz atoms;
    Printf.printf "  pipelines   %8.3f us\n" (b.Mdsp_machine.Perf.htis_s *. 1e6);
    Printf.printf "  flex cores  %8.3f us\n" (b.Mdsp_machine.Perf.flex_s *. 1e6);
    Printf.printf "  network     %8.3f us\n" (b.Mdsp_machine.Perf.comm_s *. 1e6);
    Printf.printf "  long-range  %8.3f us\n" (b.Mdsp_machine.Perf.fft_s *. 1e6);
    Printf.printf "  sync        %8.3f us\n" (b.Mdsp_machine.Perf.sync_s *. 1e6);
    Printf.printf "  step        %8.3f us  ->  %.0f ns/day\n"
      (b.Mdsp_machine.Perf.step_s *. 1e6)
      (Mdsp_machine.Perf.ns_per_day cfg w);
    let cl = Mdsp_baseline.Cluster.commodity () in
    Printf.printf "commodity cluster (64 nodes): %.0f ns/day\n"
      (Mdsp_baseline.Cluster.ns_per_day cl w)
  in
  Cmd.v (Cmd.info "model" ~doc) Term.(const run $ atoms_arg $ nodes_arg)

(* --- project --- *)

let project_steps_arg =
  Arg.(
    value & opt int 200
    & info [ "steps" ] ~docv:"N"
        ~doc:"MD steps for the measured --timings run.")

let project_cmd =
  let module M = Mdsp_machine in
  let module WL = Mdsp_workload.Workloads in
  let doc =
    "Project multi-node performance: decompose a workload over a torus, \
     price the per-step network traffic, and report the resulting step-time \
     breakdown and ns/day."
  in
  let run preset nodes gse domains timings steps =
    let sys = build_system preset in
    let exec =
      let module X = Mdsp_util.Exec in
      match domains with
      | 1 -> X.serial
      | 0 -> X.create (X.Domains { n = X.recommended_domains () })
      | n -> X.create (X.Domains { n })
    in
    let cutoff = Float.min 9.0 (Mdsp_util.Pbc.min_edge sys.WL.box /. 2.) in
    let d = M.Decomp.create sys.WL.box ~nodes ~cutoff in
    let stats = M.Decomp.analyze ~exec d sys.WL.positions in
    let cfg = M.Config.anton_like ~nodes () in
    let grid = if gse > 0 then Some (gse, gse, gse) else None in
    let comm = M.Comm_model.of_stats cfg ?grid stats in
    let w =
      { (M.Perf.of_system ?fft_grid:grid sys.WL.topo sys.WL.box) with
        M.Perf.cutoff }
    in
    let b = M.Perf.step_time_decomposed cfg w ~comm in
    let px, py, pz = nodes in
    let nn = M.Decomp.node_count d in
    let imax a = Array.fold_left max 0 a in
    let isum a = Array.fold_left ( + ) 0 a in
    Printf.printf "decomposition %dx%dx%d (%d nodes), %s (%d atoms), cutoff %.2f A:\n"
      px py pz nn sys.WL.label stats.M.Decomp.n_atoms cutoff;
    Printf.printf "  home atoms   max %6d   mean %8.1f\n"
      (imax stats.M.Decomp.home_atoms)
      (float_of_int stats.M.Decomp.n_atoms /. float_of_int nn);
    Printf.printf "  import atoms max %6d   mean %8.1f\n"
      (imax stats.M.Decomp.import_atoms)
      (float_of_int (isum stats.M.Decomp.import_atoms) /. float_of_int nn);
    Printf.printf "  pairs/node   max %6d   (total %d)\n"
      (M.Decomp.max_pairs_per_node stats)
      stats.M.Decomp.n_pairs;
    Printf.printf "  exactly-once pair assignment: %s\n"
      (if stats.M.Decomp.pair_once_ok then
         "ok (matches single-node cell list, 0 residency violations)"
       else
         Printf.sprintf "FAILED (%d vs %d pairs, %d residency violations)"
           stats.M.Decomp.n_pairs stats.M.Decomp.singlenode_pairs
           stats.M.Decomp.residency_violations);
    Printf.printf "per-step torus traffic:\n";
    List.iter
      (fun (p : M.Comm_model.phase) ->
        Printf.printf
          "  %-16s %6d msgs  %11.0f bytes  hops <= %2d (avg %.2f)  %8.3f us\n"
          p.M.Comm_model.label p.M.Comm_model.messages p.M.Comm_model.bytes
          p.M.Comm_model.max_hops p.M.Comm_model.avg_hops
          (p.M.Comm_model.time_s *. 1e6))
      (M.Comm_model.phases comm);
    Printf.printf "step-time breakdown:\n";
    Printf.printf "  pipelines   %8.3f us\n" (b.M.Perf.htis_s *. 1e6);
    Printf.printf "  flex cores  %8.3f us\n" (b.M.Perf.flex_s *. 1e6);
    Printf.printf "  network     %8.3f us\n" (b.M.Perf.comm_s *. 1e6);
    Printf.printf "  long-range  %8.3f us\n" (b.M.Perf.fft_s *. 1e6);
    Printf.printf "  sync        %8.3f us\n" (b.M.Perf.sync_s *. 1e6);
    Printf.printf "  step        %8.3f us  ->  %.0f ns/day\n"
      (b.M.Perf.step_s *. 1e6)
      (M.Perf.ns_per_day_decomposed cfg w ~comm);
    if timings then begin
      let eng = WL.make_engine ?gse_grid:grid ~exec sys in
      E.run eng steps;
      let tm = E.timings eng in
      Printf.printf
        "model vs measured (per step, %d evaluations, torus phases have no \
         host analogue):\n"
        tm.Mdsp_md.Force_calc.calls;
      List.iter
        (fun (r : M.Perf.resource_row) ->
          Printf.printf "  %-18s %10.3f us  %s\n" r.M.Perf.resource
            (r.M.Perf.model_s *. 1e6)
            (match r.M.Perf.measured_s with
            | Some v -> Printf.sprintf "%10.3f us" (v *. 1e6)
            | None -> "        --"))
        (M.Perf.resource_rows ~comm b tm)
    end
  in
  Cmd.v (Cmd.info "project" ~doc)
    Term.(
      const run $ preset_arg $ nodes_arg $ gse_arg $ domains_arg $ timings_arg
      $ project_steps_arg)

(* --- table --- *)

let form_arg =
  Arg.(
    value
    & opt (enum [ ("lj", `Lj); ("buckingham", `Buck); ("gauss", `Gauss); ("erfc", `Erfc) ]) `Lj
    & info [ "form" ] ~docv:"FORM" ~doc:"lj | buckingham | gauss | erfc.")

let width_arg =
  Arg.(value & opt int 1024 & info [ "width" ] ~docv:"N" ~doc:"Table intervals.")

let table_cmd =
  let doc = "Compile a pair functional form into the machine table format." in
  let run form width =
    let name, f =
      match form with
      | `Lj ->
          ("LJ 12-6", Mdsp_ff.Nonbonded.Lennard_jones { epsilon = 0.238; sigma = 3.405 })
      | `Buck -> ("Buckingham", Mdsp_ff.Nonbonded.Buckingham { a = 40000.; b = 3.5; c = 300. })
      | `Gauss ->
          ("Gaussian", Mdsp_ff.Nonbonded.Gaussian_repulsion { height = 10.; width = 3. })
      | `Erfc -> ("erfc-Coulomb", Mdsp_ff.Nonbonded.Coulomb_erfc { qq = 332.; beta = 0.35 })
    in
    let radial = Mdsp_core.Table.of_form f ~cutoff:9. in
    let t = Mdsp_core.Table.compile ~r_min:2. ~r_cut:9. ~n:width radial in
    let rep = Mdsp_core.Table.accuracy t radial () in
    Printf.printf "%s, %d intervals over [2, 9] A (r^2-indexed):\n" name width;
    Printf.printf "  max |dE|          %.3e kcal/mol\n" rep.Mdsp_core.Table.max_abs_energy;
    Printf.printf "  max |df/r|        %.3e\n" rep.Mdsp_core.Table.max_abs_force;
    Printf.printf "  max rel force err %.3e\n" rep.Mdsp_core.Table.max_rel_force;
    Printf.printf "  rms force err     %.3e\n" rep.Mdsp_core.Table.rms_force;
    Printf.printf "  SRAM              %d bytes\n"
      (Mdsp_machine.Interp_table.sram_bytes t);
    match
      Mdsp_core.Table.width_for_accuracy ~r_min:2. ~r_cut:9. ~target:1e-4 radial
    with
    | Some n -> Printf.printf "  width for 1e-4:   %d intervals\n" n
    | None -> Printf.printf "  width for 1e-4:   not reachable\n"
  in
  Cmd.v (Cmd.info "table" ~doc) Term.(const run $ form_arg $ width_arg)

(* --- check --- *)

let check_json_arg =
  Arg.(
    value & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Also write the per-check verdicts as a flat JSON object.")

let seed_hazard_arg =
  Arg.(
    value & flag
    & info [ "seed-hazard" ]
        ~doc:
          "Additionally check a deliberately hazardous kernel; the command \
           must then fail (a self-test of the analyzer).")

let slots_arg =
  Arg.(
    value
    & opt (list int) [ 1; 2; 4 ]
    & info [ "slots" ] ~docv:"N,..."
        ~doc:"Slot counts for the race-sanitized parallel phase sweep.")

let datapath_arg =
  Arg.(
    value & flag
    & info [ "datapath" ]
        ~doc:
          "Print the full fixed-point datapath certificates (per-accumulator \
           worst cases, limits and margins) instead of only the per-format \
           verdict lines of the summary.")

let seed_narrow_arg =
  Arg.(
    value & flag
    & info [ "seed-narrow" ]
        ~doc:
          "Additionally certify each datapath envelope against a \
           deliberately narrowed force format; the command must then fail \
           (a self-test of the certifier).")

let phases_arg =
  Arg.(
    value & flag
    & info [ "phases" ]
        ~doc:
          "Additionally run the phase-dataflow analysis: record every \
           parallel phase's read/write footprint through the sanitizer, \
           derive the static happens-before graph, and require full phase \
           coverage, acyclicity and an identical graph at every slot count.")

let seed_race_arg =
  Arg.(
    value & flag
    & info [ "seed-race" ]
        ~doc:
          "Additionally drive a deliberately racy phase (tiled writes under \
           a whole-array read) through the dataflow sweep; the command must \
           then fail (a self-test of the conflict matrix). Implies \
           $(b,--phases).")

let dot_arg =
  Arg.(
    value & opt (some string) None
    & info [ "dot" ] ~docv:"FILE"
        ~doc:
          "Write the happens-before graph of the last slot count as a \
           Graphviz DOT file (deterministic output). Implies $(b,--phases). \
           With $(b,--constraints) and without $(b,--phases), writes the \
           constraint-cluster interference graph of the first registered \
           envelope instead.")

let seed_cycle_arg =
  Arg.(
    value & flag
    & info [ "seed-cycle" ]
        ~doc:
          "Additionally drive a race-free but deliberately cyclic phase \
           pair through the dataflow sweep; the command must then fail the \
           acyclicity check (a self-test of the cycle branch). Implies \
           $(b,--phases).")

let constraints_arg =
  Arg.(
    value & flag
    & info [ "constraints" ]
        ~doc:
          "Additionally plan and certify the constraint-cluster schedules \
           of the registered workload envelopes: fuse constraints sharing \
           an atom into clusters, color the cluster interference graph into \
           independent batches, and check the certificate — proper \
           coloring, every constraint covered exactly once, per-batch atom \
           footprints disjoint across slots — plus the registered envelope \
           bounds (max cluster size, batch count).")

let seed_conflict_arg =
  Arg.(
    value & flag
    & info [ "seed-conflict" ]
        ~doc:
          "Additionally certify a deliberately broken schedule (two \
           same-batch units sharing an atom); the command must then fail \
           (a self-test of the schedule certifier). Implies \
           $(b,--constraints).")

let check_cmd =
  let doc =
    "Verify the built-in kernels, tables, parallel phases and datapaths."
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the static-verification passes: interval analysis of every \
         built-in kernel's energy and force expressions over its declared \
         input bounds, domain / fit / quantization checks of every compiled \
         interpolation table, a write-set race sanitization sweep of all \
         parallel force phases, and the fixed-point datapath certifier, \
         which proves every machine accumulator (pair conversion, per-atom \
         force, node partials and reduction tree, whole-system energy, \
         positions, coefficient Horner steps) cannot saturate under the \
         registered workload envelopes. With $(b,--phases), also records \
         every parallel phase's declared read/write footprint and certifies \
         the static happens-before graph: full coverage of the expected \
         phase set, acyclicity, and an identical graph shape at every slot \
         count. With $(b,--constraints), also certifies the constraint-\
         cluster coloring schedules the parallel SHAKE/RATTLE sweeps run \
         (proper coloring, exactly-once cover, cross-slot footprint \
         disjointness, registered envelope bounds). Exits non-zero if any \
         check fails.";
    ]
  in
  let run json seed_hazard slots datapath seed_narrow phases seed_race
      seed_cycle constraints seed_conflict dot =
    let constraints = constraints || seed_conflict in
    let phases =
      phases || seed_race || seed_cycle || (dot <> None && not constraints)
    in
    let s =
      Mdsp_verify.Check.run ~seed_hazard ~seed_narrow ~seed_race ~seed_cycle
        ~seed_conflict ~phases ~constraints ~slots ()
    in
    Format.printf "%a" Mdsp_verify.Check.pp_summary s;
    if datapath then
      List.iter
        (fun r ->
          Format.printf "@[<v>%a@]@." Mdsp_verify.Fixed_check.pp_report r)
        s.Mdsp_verify.Check.datapath;
    (match (dot, s.Mdsp_verify.Check.phases) with
    | None, _ -> ()
    | Some _, _ when not phases -> ()
    | Some _, (None | Some { Mdsp_verify.Dataflow.df_graphs = []; _ }) ->
        prerr_endline "mdsp check: no dataflow graph recorded, no DOT written"
    | Some path, Some { Mdsp_verify.Dataflow.df_graphs = gs; _ } ->
        let g = List.nth gs (List.length gs - 1) in
        let oc = open_out path in
        output_string oc (Mdsp_verify.Dataflow.dot g);
        close_out oc;
        Printf.printf "dataflow graph (%d slots) written to %s\n"
          g.Mdsp_verify.Dataflow.g_slots path);
    (match dot with
    | Some path when constraints && not phases ->
        (* The interference graph of the first registered envelope (the
           schedule the production solver runs), batches as colors. *)
        (match Mdsp_verify.Schedule.builtin_envelopes () with
        | [] -> prerr_endline "mdsp check: no constraint envelope registered"
        | e :: _ ->
            let p =
              Mdsp_verify.Schedule.plan
                ~name:e.Mdsp_verify.Schedule.env_name
                (e.Mdsp_verify.Schedule.env_topo ())
            in
            let oc = open_out path in
            output_string oc (Mdsp_verify.Schedule.dot p);
            close_out oc;
            Printf.printf "constraint interference graph (%s) written to %s\n"
              e.Mdsp_verify.Schedule.env_name path)
    | _ -> ());
    (match json with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Mdsp_verify.Check.to_json s);
        close_out oc);
    if not (Mdsp_verify.Check.ok s) then exit 1
  in
  Cmd.v (Cmd.info "check" ~doc ~man)
    Term.(
      const run $ check_json_arg $ seed_hazard_arg $ slots_arg $ datapath_arg
      $ seed_narrow_arg $ phases_arg $ seed_race_arg $ seed_cycle_arg
      $ constraints_arg $ seed_conflict_arg $ dot_arg)

(* --- analyze --- *)

let traj_arg =
  Arg.(
    required & opt (some string) None
    & info [ "xyz" ] ~docv:"FILE" ~doc:"XYZ trajectory to analyze.")

let rmax_arg =
  let open! Arg in
  value & opt float 8. & info [ "r-max" ] ~docv:"A" ~doc:"g(r) range."

let bins_arg =
  Arg.(value & opt int 40 & info [ "bins" ] ~docv:"N" ~doc:"Histogram bins.")

let analyze_cmd =
  let doc = "Compute the radial distribution function of an XYZ trajectory." in
  let run path r_max bins =
    let frames = Mdsp_md.Trajectory.read_xyz path in
    (match frames with
    | [] -> failwith "empty trajectory"
    | (comment, _) :: _ ->
        (* Parse the box from the Lattice= comment written by the engine. *)
        let box =
          try
            Scanf.sscanf comment "Lattice=\"%f 0 0 0 %f 0 0 0 %f\""
              (fun lx ly lz -> Mdsp_util.Pbc.make ~lx ~ly ~lz)
          with _ -> failwith "could not parse Lattice from the comment line"
        in
        let sd = Mdsp_analysis.Structure.create ~r_max ~bins in
        List.iter
          (fun (_, pos) -> Mdsp_analysis.Structure.sample sd box pos ())
          frames;
        Printf.printf "# %d frames, %d atoms, box %s\n" (List.length frames)
          (Array.length (snd (List.hd frames)))
          (Format.asprintf "%a" Mdsp_util.Pbc.pp box);
        Printf.printf "# r(A)  g(r)\n";
        Array.iter
          (fun (r, g) -> Printf.printf "%8.3f  %8.4f\n" r g)
          (Mdsp_analysis.Structure.g sd);
        let r_peak, g_peak = Mdsp_analysis.Structure.first_peak ~r_min:1. sd in
        Printf.printf "# first peak: r = %.2f A, g = %.2f\n" r_peak g_peak)
  in
  Cmd.v (Cmd.info "analyze" ~doc) Term.(const run $ traj_arg $ rmax_arg $ bins_arg)

let main =
  let doc = "Molecular dynamics on a modeled special-purpose machine." in
  Cmd.group (Cmd.info "mdsp" ~version:"1.0.0" ~doc)
    [
      presets_cmd;
      run_cmd;
      ensemble_cmd;
      model_cmd;
      project_cmd;
      table_cmd;
      check_cmd;
      analyze_cmd;
      serve_cmd;
      submit_cmd;
      jobs_cmd;
    ]

let () = exit (Cmd.eval main)
