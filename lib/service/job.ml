type kind =
  | Single
  | Remd of {
      replicas : int;
      temp_min : float;
      temp_max : float;
      stride : int;
    }

type spec = {
  label : string;
  preset : string;
  steps : int;
  dt_fs : float;
  temperature : float;
  seed : int;
  kind : kind;
}

let validate spec =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if String.contains spec.label '\n' then err "label must be a single line"
  else if spec.preset = "" || String.exists (fun c -> c = ' ' || c = '\n') spec.preset
  then err "preset must be a non-empty word"
  else if spec.steps < 1 then err "steps must be >= 1"
  else if not (spec.dt_fs > 0.) then err "dt must be positive"
  else if not (spec.temperature > 0.) then err "temperature must be positive"
  else
    match spec.kind with
    | Single -> Ok ()
    | Remd r ->
        if r.replicas < 2 then err "remd needs >= 2 replicas"
        else if not (r.temp_max > r.temp_min && r.temp_min > 0.) then
          err "remd needs 0 < temp_min < temp_max"
        else if r.stride < 1 then err "remd needs stride >= 1"
        else Ok ()

let encode spec =
  let b = Buffer.create 128 in
  Buffer.add_string b "mdsp-job 1\n";
  Printf.bprintf b "label %s\n" spec.label;
  Printf.bprintf b "preset %s\n" spec.preset;
  Printf.bprintf b "steps %d\n" spec.steps;
  Printf.bprintf b "dt %.17g\n" spec.dt_fs;
  Printf.bprintf b "temperature %.17g\n" spec.temperature;
  Printf.bprintf b "seed %d\n" spec.seed;
  (match spec.kind with
  | Single -> Buffer.add_string b "kind single\n"
  | Remd r ->
      Printf.bprintf b "kind remd %d %.17g %.17g %d\n" r.replicas r.temp_min
        r.temp_max r.stride);
  Buffer.contents b

let decode text =
  let lines = String.split_on_char '\n' text in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let strip_prefix prefix l =
    let np = String.length prefix in
    if String.length l >= np && String.sub l 0 np = prefix then
      Some (String.sub l np (String.length l - np))
    else None
  in
  match lines with
  | "mdsp-job 1" :: label_l :: preset_l :: steps_l :: dt_l :: temp_l
    :: seed_l :: kind_l :: _ -> (
      let ( let* ) = Result.bind in
      let field prefix l conv =
        match strip_prefix (prefix ^ " ") l with
        | None -> err "expected %S line" prefix
        | Some v -> (
            match conv v with
            | Some x -> Ok x
            | None -> err "bad %s value %S" prefix v)
      in
      let* label = field "label" label_l Option.some in
      let* preset = field "preset" preset_l Option.some in
      let* steps = field "steps" steps_l int_of_string_opt in
      let* dt_fs = field "dt" dt_l float_of_string_opt in
      let* temperature = field "temperature" temp_l float_of_string_opt in
      let* seed = field "seed" seed_l int_of_string_opt in
      let* kind =
        match strip_prefix "kind " kind_l with
        | Some "single" -> Ok Single
        | Some k -> (
            match
              Scanf.sscanf_opt k "remd %d %f %f %d"
                (fun replicas temp_min temp_max stride ->
                  Remd { replicas; temp_min; temp_max; stride })
            with
            | Some r -> Ok r
            | None -> err "bad kind %S" k)
        | None -> err "expected %S line" "kind"
      in
      let spec = { label; preset; steps; dt_fs; temperature; seed; kind } in
      let* () = validate spec in
      Ok spec)
  | header :: _ when header <> "mdsp-job 1" ->
      err "bad header %S (not an mdsp job)" header
  | _ -> err "truncated job description"

(* FNV-1a 64 over the canonical encoding: the id is a pure function of the
   spec, so re-submitting the same job is idempotent by construction. *)
let id spec =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    (encode spec);
  Printf.sprintf "j%016Lx" !h

let describe spec =
  match spec.kind with
  | Single -> Printf.sprintf "%s %d steps" spec.preset spec.steps
  | Remd r ->
      Printf.sprintf "%s %d steps, %d-replica ladder %.0f-%.0f K" spec.preset
        spec.steps r.replicas r.temp_min r.temp_max
