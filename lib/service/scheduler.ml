open Mdsp_util
module E = Mdsp_md.Engine
module Remd = Mdsp_core.Remd
module W = Mdsp_workload.Workloads
module Checkpoint = Mdsp_ensemble.Checkpoint

(* How many MD steps a job advances per slice before it must yield its
   slot. The scheduler preempts only at these checkpoint boundaries, so the
   quantum trades fairness (small) against snapshot/restore overhead
   (large). REMD jobs round it to whole exchange sweeps. *)
let default_quantum = 250

type instance = Single_eng of E.t | Ladder of Remd.t

type t = {
  exec : Exec.t;
  queue : Queue.t;
  quantum : int;
  instances : (string, instance) Hashtbl.t;
}

let create ?(quantum = default_quantum) ~exec queue =
  if quantum < 1 then invalid_arg "Scheduler.create: quantum must be >= 1";
  { exec; queue; quantum; instances = Hashtbl.create 16 }

let quantum t = t.quantum

(* --- job instantiation (caller domain only) --- *)

let langevin = E.Langevin { gamma_fs = 0.02 }

let build_fresh (spec : Job.spec) =
  match spec.kind with
  | Job.Single ->
      let sys = W.of_name spec.preset in
      let cfg =
        {
          E.default_config with
          dt_fs = spec.dt_fs;
          temperature = spec.temperature;
          thermostat = langevin;
        }
      in
      Single_eng (W.make_engine ~config:cfg ~seed:spec.seed sys)
  | Job.Remd r ->
      (* Geometric ladder, replica i seeded seed + i — the same
         construction as `mdsp ensemble`. *)
      let temps =
        Array.init r.replicas (fun i ->
            r.temp_min
            *. ((r.temp_max /. r.temp_min)
               ** (float_of_int i /. float_of_int (r.replicas - 1))))
      in
      let engines =
        Array.mapi
          (fun i temp ->
            let sys = W.of_name spec.preset in
            let cfg =
              {
                E.default_config with
                dt_fs = spec.dt_fs;
                temperature = temp;
                thermostat = langevin;
              }
            in
            W.make_engine ~config:cfg ~seed:(spec.seed + i) sys)
          temps
      in
      Ladder (Remd.create ~engines ~temps ~stride:r.stride ~seed:spec.seed)

let restore_from inst path ~preset =
  match inst with
  | Single_eng eng -> (
      match
        Checkpoint.load ~expect_preset:preset ~expect_replicas:1 path
      with
      | _, [| snap |] -> E.restore eng snap
      | _ -> assert false)
  | Ladder ladder -> (
      let engines = Remd.engines ladder in
      let remd_snap, engine_snaps =
        Checkpoint.load ~expect_preset:preset
          ~expect_replicas:(Array.length engines) path
      in
      match remd_snap with
      | None ->
          failwith
            (Printf.sprintf
               "Ensemble checkpoint %s: single-engine checkpoint cannot \
                resume an REMD job"
               path)
      | Some s ->
          Array.iteri (fun i sn -> E.restore engines.(i) sn) engine_snaps;
          Remd.restore ladder s)

let instance_of t (e : Queue.entry) =
  match Hashtbl.find_opt t.instances e.Queue.id with
  | Some inst -> inst
  | None ->
      let inst = build_fresh e.Queue.spec in
      let ckpt = Queue.ckpt_path t.queue e in
      if Sys.file_exists ckpt then
        restore_from inst ckpt ~preset:e.Queue.spec.Job.preset;
      Hashtbl.add t.instances e.Queue.id inst;
      inst

(* --- progress accounting --- *)

(* An REMD job's budget is whole sweeps, exactly as `mdsp ensemble` rounds
   it: max 1 (steps / stride). *)
let total_sweeps (spec : Job.spec) stride =
  max 1 (spec.Job.steps / stride)

let progress (spec : Job.spec) inst =
  match inst with
  | Single_eng eng -> (E.steps_done eng, spec.Job.steps)
  | Ladder ladder ->
      let stride = Remd.stride ladder in
      let sweeps = total_sweeps spec stride in
      (Remd.sweeps_done ladder * stride, sweeps * stride)

let advance inst ~budget_steps =
  match inst with
  | Single_eng eng -> if budget_steps > 0 then E.run eng budget_steps
  | Ladder ladder ->
      let stride = Remd.stride ladder in
      let sweeps = max 1 (budget_steps / stride) in
      if budget_steps > 0 then Remd.run ladder ~sweeps

let slice_budget t (spec : Job.spec) inst =
  match inst with
  | Single_eng eng -> min t.quantum (spec.Job.steps - E.steps_done eng)
  | Ladder ladder ->
      let stride = Remd.stride ladder in
      let remaining = total_sweeps spec stride - Remd.sweeps_done ladder in
      min (max 1 (t.quantum / stride)) remaining * stride

let save_ckpt t (e : Queue.entry) inst =
  let path = Queue.ckpt_path t.queue e in
  let preset = e.Queue.spec.Job.preset in
  match inst with
  | Single_eng eng ->
      Checkpoint.save ~preset path ~engines:[| E.snapshot eng |] ()
  | Ladder ladder ->
      Checkpoint.save ~preset path ~remd:(Remd.snapshot ladder)
        ~engines:(Array.map E.snapshot (Remd.engines ladder))
        ()

let observables inst =
  match inst with
  | Single_eng eng ->
      [
        ("steps", float_of_int (E.steps_done eng));
        ("e_total", E.total_energy eng);
        ("e_pot", E.potential_energy eng);
        ("temperature", E.temperature eng);
      ]
  | Ladder ladder ->
      let acc = Remd.acceptance ladder in
      let mean =
        if Array.length acc = 0 then 0.
        else Array.fold_left ( +. ) 0. acc /. float_of_int (Array.length acc)
      in
      [
        ("steps", float_of_int (Remd.sweeps_done ladder * Remd.stride ladder));
        ("sweeps", float_of_int (Remd.sweeps_done ladder));
        ("acc_mean", mean);
        ("e_total_r0", E.total_energy (Remd.engines ladder).(0));
      ]

let result_line (e : Queue.entry) obs =
  Json.to_string
    (Json.Obj
       [
         ("id", Json.Str e.Queue.id);
         ("label", Json.Str e.Queue.spec.Job.label);
         ("observables", Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) obs));
       ])

(* --- the slice --- *)

let finalize t (e : Queue.entry) inst =
  save_ckpt t e inst;
  Queue.write_result t.queue e (result_line e (observables inst));
  let done_steps, _ = progress e.Queue.spec inst in
  e.Queue.steps_done <- done_steps;
  Queue.set_status t.queue e Queue.Done;
  Hashtbl.remove t.instances e.Queue.id

let run_slice t =
  let n_slots = Exec.n_slots t.exec in
  let batch =
    (* Instantiate on the caller (engine construction and checkpoint I/O
       stay out of the parallel region); a bad preset or unreadable
       checkpoint fails the job here with the underlying message. *)
    List.filter_map
      (fun (e : Queue.entry) ->
        match instance_of t e with
        | inst ->
            Queue.set_status t.queue e Queue.Running;
            Some (e, inst)
        | exception Failure msg ->
            Queue.set_status t.queue e (Queue.Failed msg);
            Hashtbl.remove t.instances e.Queue.id;
            None)
      (Queue.take_batch t.queue n_slots)
  in
  match batch with
  | [] -> 0
  | _ ->
      let jobs = Array.of_list batch in
      let nb = Array.length jobs in
      ignore
        (Exec.map_slots ~phase:"service.jobs" t.exec (fun slot ->
             if slot < nb then begin
               let e, inst = jobs.(slot) in
               (* A slice advances the slot's own job in place: a
                  read-modify-write of that job's engine state. *)
               Exec.declare_write ~slot ~resource:"service.jobs" ~total:nb
                 ~lo:slot ~hi:(slot + 1) t.exec;
               Exec.declare_read ~slot ~resource:"service.jobs" ~total:nb
                 ~lo:slot ~hi:(slot + 1) t.exec;
               advance inst
                 ~budget_steps:(slice_budget t e.Queue.spec inst)
             end));
      Array.iter
        (fun ((e : Queue.entry), inst) ->
          let done_steps, budget = progress e.Queue.spec inst in
          if done_steps >= budget then finalize t e inst
          else begin
            save_ckpt t e inst;
            e.Queue.steps_done <- done_steps;
            Queue.set_status t.queue e Queue.Paused;
            Queue.requeue t.queue e
          end)
        jobs;
      nb

let drain t =
  while run_slice t > 0 do
    ()
  done

(* The no-preemption reference the identity tests compare against: same
   construction, same budget rounding, one uninterrupted advance. *)
let uninterrupted (spec : Job.spec) ~ckpt =
  let inst = build_fresh spec in
  let _, budget = progress spec inst in
  advance inst ~budget_steps:budget;
  (match inst with
  | Single_eng eng ->
      Checkpoint.save ~preset:spec.Job.preset ckpt
        ~engines:[| E.snapshot eng |] ()
  | Ladder ladder ->
      Checkpoint.save ~preset:spec.Job.preset ckpt
        ~remd:(Remd.snapshot ladder)
        ~engines:(Array.map E.snapshot (Remd.engines ladder))
        ());
  observables inst
