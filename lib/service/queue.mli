(** Persistent on-disk job queue.

    The queue is a spool directory: each job owns up to four files, all
    updated atomically (staged to [.tmp], renamed into place — the
    {!Mdsp_util.Atomic_file} discipline):

    - [<id>.job] — the {!Job.encode} spec, written once at submission;
    - [<id>.state] — the current status / seq / progress record, rewritten
      on every transition;
    - [<id>.ckpt] — the preemption checkpoint ({!Mdsp_ensemble.Checkpoint}
      format), while the job is in flight and after completion;
    - [<id>.result] — one JSON line of final observables, for done jobs.

    Because every record is replaced atomically, a crash at any point
    leaves the directory loadable: {!create} rebuilds the queue from the
    spool, demoting jobs caught in [Running] back to [Paused] (checkpoint
    present — they resume from it) or [Pending] (no checkpoint yet — they
    restart from scratch). *)

type status =
  | Pending  (** never run *)
  | Running  (** in a scheduler slice right now *)
  | Paused  (** preempted at a checkpoint, waiting for its next slice *)
  | Done
  | Failed of string  (** terminal error, including ["cancelled"] *)

type entry = {
  id : string;
  spec : Job.spec;
  mutable seq : int;  (** dispatch order; bumped on requeue *)
  mutable status : status;
  mutable steps_done : int;
}

type t

val status_to_string : status -> string

(** Open (creating if needed) the spool directory and load every job in
    it, applying restart recovery to jobs left [Running]. *)
val create : dir:string -> t

val dir : t -> string

(** All jobs, dispatch (seq) order. *)
val entries : t -> entry list

val find : t -> string -> entry option

(** Validate, assign the deterministic id, and spool. Submitting a spec
    already in the queue returns the existing entry unchanged
    (idempotent). *)
val submit : t -> Job.spec -> (entry, string) result

(** Jobs eligible for a slice ([Pending] or [Paused]), dispatch order. *)
val runnable : t -> entry list

(** The first [n] runnable jobs (fewer when the queue is shorter). *)
val take_batch : t -> int -> entry list

(** Move a preempted job to the back of the dispatch order (persisted) —
    this is what makes scheduling round-robin. *)
val requeue : t -> entry -> unit

val set_status : t -> entry -> status -> unit
val record_progress : t -> entry -> steps_done:int -> unit

(** Cancel a non-terminal job (it becomes [Failed "cancelled"]). *)
val cancel : t -> string -> (entry, string) result

val ckpt_path : t -> entry -> string
val result_path : t -> entry -> string

(** Store / fetch the one-line JSON result record. *)
val write_result : t -> entry -> string -> unit

val read_result : t -> string -> string option

(** Spool-hygiene scan: leftover [.tmp] staging files, state/checkpoint/
    result records without a matching [.job], unreadable specs, and
    unexpected files. Empty on a healthy spool; [mdsp jobs --check] and the
    CI smoke gate on it. *)
val orphans : dir:string -> string list
