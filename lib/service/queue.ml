open Mdsp_util

type status = Pending | Running | Paused | Done | Failed of string

type entry = {
  id : string;
  spec : Job.spec;
  mutable seq : int;
  mutable status : status;
  mutable steps_done : int;
}

type t = { dir : string; mutable entries : entry list; mutable next_seq : int }

let status_to_string = function
  | Pending -> "pending"
  | Running -> "running"
  | Paused -> "paused"
  | Done -> "done"
  | Failed _ -> "failed"

let job_path t id = Filename.concat t.dir (id ^ ".job")
let state_path t id = Filename.concat t.dir (id ^ ".state")
let ckpt_path t e = Filename.concat t.dir (e.id ^ ".ckpt")
let result_path t e = Filename.concat t.dir (e.id ^ ".result")

(* Every state transition lands on disk through the same atomic write the
   checkpoints use: a crash between any two transitions leaves the previous
   record intact, never a torn one. *)
let persist t e =
  let b = Buffer.create 96 in
  Buffer.add_string b "mdsp-job-state 1\n";
  Printf.bprintf b "id %s\n" e.id;
  Printf.bprintf b "seq %d\n" e.seq;
  Printf.bprintf b "status %s\n" (status_to_string e.status);
  Printf.bprintf b "steps_done %d\n" e.steps_done;
  (match e.status with
  | Failed msg ->
      Printf.bprintf b "error %s\n"
        (String.map (fun c -> if c = '\n' then ' ' else c) msg)
  | _ -> ());
  Atomic_file.write_string (state_path t e.id) (Buffer.contents b)

let read_state path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  let lines = List.rev !lines in
  let strip prefix l =
    let np = String.length prefix in
    if String.length l >= np && String.sub l 0 np = prefix then
      Some (String.sub l np (String.length l - np))
    else None
  in
  match lines with
  | header :: rest when header = "mdsp-job-state 1" ->
      let find prefix =
        List.find_map (strip (prefix ^ " ")) rest
      in
      let ( let* ) = Option.bind in
      let* id = find "id" in
      let* seq = Option.bind (find "seq") int_of_string_opt in
      let* status_word = find "status" in
      let* steps_done = Option.bind (find "steps_done") int_of_string_opt in
      let* status =
        match status_word with
        | "pending" -> Some Pending
        | "running" -> Some Running
        | "paused" -> Some Paused
        | "done" -> Some Done
        | "failed" ->
            Some (Failed (Option.value ~default:"unknown" (find "error")))
        | _ -> None
      in
      Some (id, seq, status, steps_done)
  | _ -> None

let sort_entries t =
  t.entries <-
    List.sort (fun a b -> compare a.seq b.seq) t.entries

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let create ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o700;
  if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Queue.create: %s is not a directory" dir);
  let t = { dir; entries = []; next_seq = 0 } in
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".job" then begin
        let id = Filename.chop_suffix f ".job" in
        match Job.decode (read_file (job_path t id)) with
        | Error _ -> () (* corrupt spool file: surfaced by [orphans] *)
        | Ok spec ->
            let e = { id; spec; seq = 0; status = Pending; steps_done = 0 } in
            (let sp = state_path t id in
             if Sys.file_exists sp then
               match read_state sp with
               | Some (sid, seq, status, steps_done) when sid = id ->
                   e.seq <- seq;
                   e.status <- status;
                   e.steps_done <- steps_done
               | _ -> ());
            (* Restart recovery: a job the previous server died holding is
               requeued — from its checkpoint when one landed, from scratch
               otherwise. *)
            (match e.status with
            | Running ->
                e.status <-
                  (if Sys.file_exists (ckpt_path t e) then Paused
                   else Pending);
                persist t e
            | _ -> ());
            t.entries <- e :: t.entries;
            if e.seq >= t.next_seq then t.next_seq <- e.seq + 1
      end)
    (Sys.readdir dir);
  sort_entries t;
  t

let dir t = t.dir
let entries t = t.entries
let find t id = List.find_opt (fun e -> e.id = id) t.entries

let submit t spec =
  match Job.validate spec with
  | Error m -> Error m
  | Ok () -> (
      let id = Job.id spec in
      match find t id with
      | Some e -> Ok e
      | None ->
          let e =
            { id; spec; seq = t.next_seq; status = Pending; steps_done = 0 }
          in
          t.next_seq <- t.next_seq + 1;
          Atomic_file.write_string (job_path t id) (Job.encode spec);
          persist t e;
          t.entries <- t.entries @ [ e ];
          Ok e)

let runnable t =
  List.filter
    (fun e -> match e.status with Pending | Paused -> true | _ -> false)
    t.entries

let take_batch t n =
  let rec take k = function
    | e :: rest when k > 0 -> e :: take (k - 1) rest
    | _ -> []
  in
  take n (runnable t)

(* Send a preempted job to the back of the line: bumping [seq] (persisted)
   is what makes the scheduler's batching round-robin rather than
   head-of-line. *)
let requeue t e =
  e.seq <- t.next_seq;
  t.next_seq <- t.next_seq + 1;
  persist t e;
  sort_entries t

let set_status t e status =
  e.status <- status;
  persist t e

let record_progress t e ~steps_done =
  e.steps_done <- steps_done;
  persist t e

let cancel t id =
  match find t id with
  | None -> Error (Printf.sprintf "no such job %s" id)
  | Some e -> (
      match e.status with
      | Done -> Error (Printf.sprintf "job %s already completed" id)
      | Failed _ -> Error (Printf.sprintf "job %s already terminal" id)
      | Pending | Running | Paused ->
          set_status t e (Failed "cancelled");
          Ok e)

let write_result t e line = Atomic_file.write_string (result_path t e) line

let read_result t id =
  let path = Filename.concat t.dir (id ^ ".result") in
  if Sys.file_exists path then Some (String.trim (read_file path)) else None

let orphans ~dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    let files = Array.to_list (Sys.readdir dir) in
    let has_job id = List.mem (id ^ ".job") files in
    List.filter_map
      (fun f ->
        if Filename.check_suffix f Atomic_file.tmp_suffix then
          Some (f ^ ": leftover staging file")
        else
          let owned suffix =
            if Filename.check_suffix f suffix then
              Some (Filename.chop_suffix f suffix)
            else None
          in
          match
            List.find_map owned [ ".state"; ".ckpt"; ".result" ]
          with
          | Some id when not (has_job id) ->
              Some (f ^ ": no matching .job spec")
          | Some _ -> None
          | None ->
              if Filename.check_suffix f ".job" then
                match Job.decode (read_file (Filename.concat dir f)) with
                | Ok _ -> None
                | Error m -> Some (f ^ ": unreadable (" ^ m ^ ")")
              else Some (f ^ ": unexpected file"))
      files
