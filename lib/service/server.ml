open Mdsp_util

(* The input side reads raw bytes through [Unix.read] (never a buffered
   [in_channel], which cannot be mixed with [Unix.select]): the serve loop
   polls for complete request lines between scheduler slices, so a slow
   client never stalls the jobs and a burst of requests is answered
   between two quanta. *)
type reader = {
  fd : Unix.file_descr;
  chunk : bytes;
  mutable pending : string;
  mutable eof : bool;
}

let make_reader fd =
  { fd; chunk = Bytes.create 4096; pending = ""; eof = false }

let split_lines r =
  let rec go acc =
    match String.index_opt r.pending '\n' with
    | None -> List.rev acc
    | Some i ->
        let line = String.sub r.pending 0 i in
        r.pending <-
          String.sub r.pending (i + 1) (String.length r.pending - i - 1);
        go (line :: acc)
  in
  go []

let poll_lines r ~timeout =
  if r.eof then []
  else
    match Unix.select [ r.fd ] [] [] timeout with
    | [], _, _ -> []
    | _ -> (
        match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
        | 0 ->
            r.eof <- true;
            (* A final unterminated line still counts as a request. *)
            if r.pending = "" then []
            else begin
              let line = r.pending in
              r.pending <- "";
              [ line ]
            end
        | n ->
            r.pending <- r.pending ^ Bytes.sub_string r.chunk 0 n;
            split_lines r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> [])

let result_response queue id =
  match Queue.read_result queue id with
  | None -> Protocol.Error (Printf.sprintf "job %s has no result record" id)
  | Some line -> (
      match
        Result.bind (Json.of_string line) (fun j ->
            match Json.field "observables" j with
            | Some (Json.Obj kvs) ->
                Ok
                  (List.filter_map
                     (fun (k, v) ->
                       Option.map (fun f -> (k, f)) (Json.to_num v))
                     kvs)
            | _ -> Error "no observables")
      with
      | Ok observables -> Protocol.Job_result { r_id = id; observables }
      | Error _ ->
          Protocol.Error (Printf.sprintf "job %s: corrupt result record" id))

let serve ?quantum ?(slots = 1) ~dir ~input ~output () =
  let queue = Queue.create ~dir in
  let exec =
    if slots <= 1 then Exec.serial
    else Exec.create (Exec.Domains { n = slots })
  in
  let sched = Scheduler.create ?quantum ~exec queue in
  let reader = make_reader input in
  (* Result requests for unfinished jobs park here (arrival order) and are
     answered as the jobs turn terminal. *)
  let waiters = ref [] in
  let stop = ref false in
  let respond resp =
    output_string output (Protocol.encode_response resp);
    output_char output '\n';
    flush output
  in
  let handle line =
    if String.trim line <> "" then
      match Protocol.decode_request line with
      | Error msg -> respond (Protocol.Error ("bad request: " ^ msg))
      | Ok (Protocol.Submit spec) -> (
          match Queue.submit queue spec with
          | Ok e -> respond (Protocol.Submitted (Protocol.view_of_entry e))
          | Error msg -> respond (Protocol.Error ("submit: " ^ msg)))
      | Ok (Protocol.Status id) -> (
          match Queue.find queue id with
          | Some e -> respond (Protocol.Job_status (Protocol.view_of_entry e))
          | None -> respond (Protocol.Error (Printf.sprintf "no such job %s" id)))
      | Ok (Protocol.Result id) -> (
          match Queue.find queue id with
          | None -> respond (Protocol.Error (Printf.sprintf "no such job %s" id))
          | Some e -> (
              match e.Queue.status with
              | Queue.Done -> respond (result_response queue id)
              | Queue.Failed msg ->
                  respond
                    (Protocol.Error (Printf.sprintf "job %s failed: %s" id msg))
              | _ -> waiters := !waiters @ [ id ]))
      | Ok (Protocol.Cancel id) -> (
          match Queue.cancel queue id with
          | Ok e -> respond (Protocol.Cancelled e.Queue.id)
          | Error msg -> respond (Protocol.Error msg))
      | Ok Protocol.Jobs ->
          respond
            (Protocol.Job_list
               (List.map Protocol.view_of_entry (Queue.entries queue)))
      | Ok Protocol.Shutdown ->
          respond Protocol.Bye;
          stop := true
  in
  let serve_ready_waiters () =
    waiters :=
      List.filter
        (fun id ->
          match Queue.find queue id with
          | Some { Queue.status = Queue.Done; _ } ->
              respond (result_response queue id);
              false
          | Some { Queue.status = Queue.Failed msg; _ } ->
              respond
                (Protocol.Error (Printf.sprintf "job %s failed: %s" id msg));
              false
          | _ -> true)
        !waiters
  in
  let rec loop () =
    serve_ready_waiters ();
    if not !stop then begin
      let busy = Queue.runnable queue <> [] in
      let timeout = if busy then 0. else 0.05 in
      List.iter handle (poll_lines reader ~timeout);
      if not !stop then begin
        let advanced = Scheduler.run_slice sched in
        (* EOF drains: finish everything already accepted, then exit. *)
        if advanced = 0 && reader.eof && !waiters = [] then ()
        else loop ()
      end
    end
  in
  Fun.protect
    ~finally:(fun () ->
      (* Shutdown abandons parked Result waits; the queue itself persists
         and the jobs resume on the next serve. *)
      List.iter
        (fun id ->
          respond
            (Protocol.Error (Printf.sprintf "job %s: server shutting down" id)))
        !waiters;
      waiters := [];
      Exec.shutdown exec)
    loop
