(** Typed simulation job descriptions.

    A job is either a single MD run or an REMD ladder over a named workload
    preset, with a step budget, timestep, target temperature and seed. Jobs
    carry a deterministic identity: {!id} hashes the canonical text
    encoding (FNV-1a 64), so the same spec always maps to the same id and
    re-submission is idempotent. The text codec ({!encode} / {!decode}) is
    what the {!Queue} spools to disk. *)

type kind =
  | Single
  | Remd of {
      replicas : int;
      temp_min : float;  (** K, bottom rung *)
      temp_max : float;  (** K, top rung *)
      stride : int;  (** steps between exchange attempts *)
    }

type spec = {
  label : string;  (** free-form, single line *)
  preset : string;  (** workload name, resolved by [Workloads.of_name] *)
  steps : int;  (** total MD step budget *)
  dt_fs : float;
  temperature : float;  (** K (REMD jobs use the ladder instead) *)
  seed : int;
  kind : kind;
}

(** Syntactic validity (budgets positive, ladder ordered, label a single
    line). Whether [preset] names a real workload is only known at run
    time; an unknown preset fails the job, not the submission. *)
val validate : spec -> (unit, string) result

(** Canonical line-oriented text form, ["mdsp-job 1"] header. Floats use
    [%.17g] so [decode (encode s) = Ok s] exactly. *)
val encode : spec -> string

(** Parse and {!validate}. *)
val decode : string -> (spec, string) result

(** Deterministic job id, ["j%016x"]-style. *)
val id : spec -> string

(** One-line human summary for listings. *)
val describe : spec -> string
