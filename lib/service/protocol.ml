open Mdsp_util

type request =
  | Submit of Job.spec
  | Status of string
  | Result of string
  | Cancel of string
  | Jobs
  | Shutdown

type job_view = {
  v_id : string;
  v_label : string;
  v_status : string;
  v_steps_done : int;
  v_steps_total : int;
}

type response =
  | Submitted of job_view
  | Job_status of job_view
  | Job_result of { r_id : string; observables : (string * float) list }
  | Cancelled of string
  | Job_list of job_view list
  | Bye
  | Error of string

let view_of_entry (e : Queue.entry) =
  {
    v_id = e.Queue.id;
    v_label = e.Queue.spec.Job.label;
    v_status = Queue.status_to_string e.Queue.status;
    v_steps_done = e.Queue.steps_done;
    v_steps_total = e.Queue.spec.Job.steps;
  }

(* --- encoding --- *)

let num_i n = Json.Num (float_of_int n)

let spec_to_json (s : Job.spec) =
  let base =
    [
      ("label", Json.Str s.Job.label);
      ("preset", Json.Str s.Job.preset);
      ("steps", num_i s.Job.steps);
      ("dt", Json.Num s.Job.dt_fs);
      ("temperature", Json.Num s.Job.temperature);
      ("seed", num_i s.Job.seed);
    ]
  in
  match s.Job.kind with
  | Job.Single -> Json.Obj (base @ [ ("kind", Json.Str "single") ])
  | Job.Remd r ->
      Json.Obj
        (base
        @ [
            ("kind", Json.Str "remd");
            ("replicas", num_i r.replicas);
            ("temp_min", Json.Num r.temp_min);
            ("temp_max", Json.Num r.temp_max);
            ("stride", num_i r.stride);
          ])

let view_to_json v =
  Json.Obj
    [
      ("id", Json.Str v.v_id);
      ("label", Json.Str v.v_label);
      ("status", Json.Str v.v_status);
      ("steps_done", num_i v.v_steps_done);
      ("steps_total", num_i v.v_steps_total);
    ]

let encode_request = function
  | Submit spec ->
      Json.to_string
        (Json.Obj [ ("op", Json.Str "submit"); ("spec", spec_to_json spec) ])
  | Status id ->
      Json.to_string (Json.Obj [ ("op", Json.Str "status"); ("id", Json.Str id) ])
  | Result id ->
      Json.to_string (Json.Obj [ ("op", Json.Str "result"); ("id", Json.Str id) ])
  | Cancel id ->
      Json.to_string (Json.Obj [ ("op", Json.Str "cancel"); ("id", Json.Str id) ])
  | Jobs -> Json.to_string (Json.Obj [ ("op", Json.Str "jobs") ])
  | Shutdown -> Json.to_string (Json.Obj [ ("op", Json.Str "shutdown") ])

let encode_response = function
  | Submitted v ->
      Json.to_string
        (Json.Obj
           [
             ("ok", Json.Bool true);
             ("op", Json.Str "submit");
             ("job", view_to_json v);
           ])
  | Job_status v ->
      Json.to_string
        (Json.Obj
           [
             ("ok", Json.Bool true);
             ("op", Json.Str "status");
             ("job", view_to_json v);
           ])
  | Job_result { r_id; observables } ->
      Json.to_string
        (Json.Obj
           [
             ("ok", Json.Bool true);
             ("op", Json.Str "result");
             ("id", Json.Str r_id);
             ( "observables",
               Json.Obj
                 (List.map (fun (k, v) -> (k, Json.Num v)) observables) );
           ])
  | Cancelled id ->
      Json.to_string
        (Json.Obj
           [
             ("ok", Json.Bool true);
             ("op", Json.Str "cancel");
             ("id", Json.Str id);
           ])
  | Job_list vs ->
      Json.to_string
        (Json.Obj
           [
             ("ok", Json.Bool true);
             ("op", Json.Str "jobs");
             ("jobs", Json.Arr (List.map view_to_json vs));
           ])
  | Bye ->
      Json.to_string
        (Json.Obj [ ("ok", Json.Bool true); ("op", Json.Str "shutdown") ])
  | Error msg ->
      Json.to_string
        (Json.Obj [ ("ok", Json.Bool false); ("error", Json.Str msg) ])

(* --- decoding --- *)

let ( let* ) = Result.bind

let need what conv j name =
  match Option.bind (Json.field name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or bad %S field (%s)" name what)

let spec_of_json j =
  let str = need "string" Json.to_str j in
  let int = need "integer" Json.to_int j in
  let num = need "number" Json.to_num j in
  let* label = str "label" in
  let* preset = str "preset" in
  let* steps = int "steps" in
  let* dt_fs = num "dt" in
  let* temperature = num "temperature" in
  let* seed = int "seed" in
  let* kind =
    match str "kind" with
    | Ok "single" -> Ok Job.Single
    | Ok "remd" ->
        let* replicas = int "replicas" in
        let* temp_min = num "temp_min" in
        let* temp_max = num "temp_max" in
        let* stride = int "stride" in
        Ok (Job.Remd { replicas; temp_min; temp_max; stride })
    | Ok k -> Error (Printf.sprintf "unknown kind %S" k)
    | Error _ as e -> e
  in
  let spec = { Job.label; preset; steps; dt_fs; temperature; seed; kind } in
  let* () = Job.validate spec in
  Ok spec

let view_of_json j =
  let str = need "string" Json.to_str j in
  let int = need "integer" Json.to_int j in
  let* v_id = str "id" in
  let* v_label = str "label" in
  let* v_status = str "status" in
  let* v_steps_done = int "steps_done" in
  let* v_steps_total = int "steps_total" in
  Ok { v_id; v_label; v_status; v_steps_done; v_steps_total }

let decode_request line =
  let* j = Json.of_string line in
  let* op = need "string" Json.to_str j "op" in
  match op with
  | "submit" -> (
      match Json.field "spec" j with
      | None -> Error "submit needs a \"spec\" object"
      | Some sj ->
          let* spec = spec_of_json sj in
          Ok (Submit spec))
  | "status" ->
      let* id = need "string" Json.to_str j "id" in
      Ok (Status id)
  | "result" ->
      let* id = need "string" Json.to_str j "id" in
      Ok (Result id)
  | "cancel" ->
      let* id = need "string" Json.to_str j "id" in
      Ok (Cancel id)
  | "jobs" -> Ok Jobs
  | "shutdown" -> Ok Shutdown
  | op -> Error (Printf.sprintf "unknown op %S" op)

let decode_response line =
  let* j = Json.of_string line in
  match Json.field "ok" j with
  | Some (Json.Bool false) ->
      let* msg = need "string" Json.to_str j "error" in
      Ok (Error msg)
  | Some (Json.Bool true) -> (
      let* op = need "string" Json.to_str j "op" in
      match op with
      | "submit" | "status" -> (
          match Json.field "job" j with
          | None -> Result.Error "missing \"job\" field"
          | Some vj ->
              let* v = view_of_json vj in
              Ok (if op = "submit" then Submitted v else Job_status v))
      | "result" -> (
          let* r_id = need "string" Json.to_str j "id" in
          match Json.field "observables" j with
          | Some (Json.Obj kvs) ->
              let* observables =
                List.fold_right
                  (fun (k, v) acc ->
                    let* acc = acc in
                    match Json.to_num v with
                    | Some f -> Ok ((k, f) :: acc)
                    | None ->
                        Result.Error
                          (Printf.sprintf "observable %S is not a number" k))
                  kvs (Ok [])
              in
              Ok (Job_result { r_id; observables })
          | _ -> Result.Error "missing \"observables\" object")
      | "cancel" ->
          let* id = need "string" Json.to_str j "id" in
          Ok (Cancelled id)
      | "jobs" -> (
          match Json.field "jobs" j with
          | Some (Json.Arr vs) ->
              let* views =
                List.fold_right
                  (fun vj acc ->
                    let* acc = acc in
                    let* v = view_of_json vj in
                    Ok (v :: acc))
                  vs (Ok [])
              in
              Ok (Job_list views)
          | _ -> Result.Error "missing \"jobs\" array")
      | "shutdown" -> Ok Bye
      | op -> Result.Error (Printf.sprintf "unknown op %S" op))
  | _ -> Result.Error "missing \"ok\" field"
