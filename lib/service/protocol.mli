(** The `mdsp serve` wire protocol: JSON lines over stdin/stdout.

    One request per input line, one response per output line. Requests
    carry an ["op"] field; responses carry ["ok"] (with ["error"] on
    failure). Both directions have total codecs — [decode (encode x) =
    Ok x] for every value, the property the protocol fuzz test pins —
    and every number round-trips bit-exactly ({!Mdsp_util.Json}).

    Grammar (one line each):
    {v
    -> {"op":"submit","spec":{"label":..,"preset":..,"steps":N,"dt":F,
        "temperature":F,"seed":N,"kind":"single"}}
       (REMD: "kind":"remd","replicas":N,"temp_min":F,"temp_max":F,"stride":N)
    -> {"op":"status","id":ID} | {"op":"result","id":ID}
       | {"op":"cancel","id":ID} | {"op":"jobs"} | {"op":"shutdown"}
    <- {"ok":true,"op":"submit","job":VIEW} (likewise "status")
    <- {"ok":true,"op":"result","id":ID,"observables":{K:F,..}}
    <- {"ok":true,"op":"cancel","id":ID}
    <- {"ok":true,"op":"jobs","jobs":[VIEW,..]}
    <- {"ok":true,"op":"shutdown"}
    <- {"ok":false,"error":MSG}
    VIEW = {"id":ID,"label":..,"status":..,"steps_done":N,"steps_total":N}
    v} *)

type request =
  | Submit of Job.spec
  | Status of string
  | Result of string  (** blocks until the job is terminal *)
  | Cancel of string
  | Jobs
  | Shutdown

type job_view = {
  v_id : string;
  v_label : string;
  v_status : string;
  v_steps_done : int;
  v_steps_total : int;
}

type response =
  | Submitted of job_view
  | Job_status of job_view
  | Job_result of { r_id : string; observables : (string * float) list }
  | Cancelled of string
  | Job_list of job_view list
  | Bye
  | Error of string

val view_of_entry : Queue.entry -> job_view
val encode_request : request -> string
val decode_request : string -> (request, string) result
val encode_response : response -> string
val decode_response : string -> (response, string) result
