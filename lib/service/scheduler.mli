(** Batched round-robin scheduler over the {!Mdsp_util.Exec} pool.

    Each {!run_slice} takes up to one runnable job per pool slot from the
    {!Queue}, advances every job in the batch concurrently (one job per
    slot, via [Exec.map_slots]) by at most one step quantum, then — at the
    barrier, back on the caller — checkpoints and requeues the unfinished
    jobs and finalizes the finished ones. Because preemption happens only
    through {!Mdsp_md.Engine} / {!Mdsp_core.Remd} snapshots, which restore
    bit-for-bit, a job preempted any number of times (including across a
    server restart, when the instance is rebuilt from its [.ckpt] file)
    produces final state and observables bitwise identical to an
    uninterrupted run — at any slot count. The slot bodies declare their
    per-job write-sets (resource ["service.jobs"]) so a sanitizing pool
    audits the slice like any other parallel phase. *)

type t

(** Steps per slice before a job yields its slot (REMD jobs round to whole
    exchange sweeps). The registered default is 250. *)
val default_quantum : int

(** [create ?quantum ~exec queue]. Raises [Invalid_argument] when
    [quantum < 1]. *)
val create : ?quantum:int -> exec:Mdsp_util.Exec.t -> Queue.t -> t

val quantum : t -> int

(** Run one slice; returns the number of jobs advanced (0 when nothing is
    runnable — the queue is empty or all jobs are terminal). Jobs whose
    preset is unknown or whose checkpoint fails to load become
    [Failed] with the underlying message instead of raising. *)
val run_slice : t -> int

(** Slice until nothing is runnable. *)
val drain : t -> unit

(** The identity reference: build the job fresh, advance its whole budget
    in one go with no preemption, write the final checkpoint to [ckpt] and
    return the observables. Tests and [bench e24] compare the scheduler's
    output against this byte-for-byte. *)
val uninterrupted : Job.spec -> ckpt:string -> (string * float) list
