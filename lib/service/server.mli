(** The `mdsp serve` request loop.

    [serve ~dir ~input ~output ()] opens the spool directory as a
    {!Queue} (recovering any jobs a previous server left running), builds
    a {!Scheduler} on [slots] pool slots, and interleaves two activities
    until told to stop: draining complete JSON request lines from [input]
    (non-blocking — raw [Unix.read] under [Unix.select]) and running
    scheduler slices. Responses go to [output], one line each, flushed.

    [Result] requests for unfinished jobs park until the job turns
    terminal. End of input means "no more requests": the server finishes
    every job already accepted, answers parked waits, and returns. A
    [shutdown] request returns immediately instead — in-flight jobs stay
    checkpointed in the spool and resume on the next serve; parked waits
    are answered with an error. *)
val serve :
  ?quantum:int ->
  ?slots:int ->
  dir:string ->
  input:Unix.file_descr ->
  output:out_channel ->
  unit ->
  unit
