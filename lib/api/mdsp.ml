(** The umbrella namespace: one [open Mdsp] (or qualified [Mdsp.X]) exposes
    the whole library with stable short names. See the README for the
    architecture overview; each module below carries its own interface
    documentation.

    {1 Foundations} *)

module Vec3 = Mdsp_util.Vec3
module Pbc = Mdsp_util.Pbc
module Exec = Mdsp_util.Exec
module Rng = Mdsp_util.Rng
module Units = Mdsp_util.Units
module Fixed = Mdsp_util.Fixed
module Stats = Mdsp_util.Stats
module Histogram = Mdsp_util.Histogram

(** {1 Spatial data structures} *)

module Cell_list = Mdsp_space.Cell_list
module Neighbor_list = Mdsp_space.Neighbor_list
module Exclusions = Mdsp_space.Exclusions
module Decomp = Mdsp_space.Decomp

(** {1 Force field} *)

module Topology = Mdsp_ff.Topology
module Nonbonded = Mdsp_ff.Nonbonded
module Bonded = Mdsp_ff.Bonded
module Pair_interactions = Mdsp_ff.Pair_interactions
module Water = Mdsp_ff.Water

(** {1 Long-range electrostatics} *)

module Ewald = Mdsp_longrange.Ewald
module Gse = Mdsp_longrange.Gse
module Fft = Mdsp_longrange.Fft

(** {1 The MD engine} *)

module State = Mdsp_md.State
module Engine = Mdsp_md.Engine
module Force_calc = Mdsp_md.Force_calc
module Constraints = Mdsp_md.Constraints
module Virtual_sites = Mdsp_md.Virtual_sites
module Trajectory = Mdsp_md.Trajectory

(** {1 The special-purpose machine model} *)

module Machine = struct
  module Config = Mdsp_machine.Config
  module Interp_table = Mdsp_machine.Interp_table
  module Htis = Mdsp_machine.Htis
  module Perf = Mdsp_machine.Perf
  module Flex = Mdsp_machine.Flex
  module Machine_sim = Mdsp_machine.Machine_sim
end

(** {1 The generality layer (the paper's contribution)} *)

module Table = Mdsp_core.Table
module Kernel = Mdsp_core.Kernel
module Cv = Mdsp_core.Cv
module Restraints = Mdsp_core.Restraints
module Smd = Mdsp_core.Smd
module Umbrella = Mdsp_core.Umbrella
module Metadynamics = Mdsp_core.Metadynamics
module Metadynamics2 = Mdsp_core.Metadynamics2
module Tempering = Mdsp_core.Tempering
module Remd = Mdsp_core.Remd
module Tamd = Mdsp_core.Tamd
module Amd = Mdsp_core.Amd
module Fep = Mdsp_core.Fep
module Widom = Mdsp_core.Widom
module String_method = Mdsp_core.String_method
module Mapping = Mdsp_core.Mapping

(** {1 Baselines, workloads, analysis} *)

module Reference = Mdsp_baseline.Reference
module Cluster = Mdsp_baseline.Cluster
module Workloads = Mdsp_workload.Workloads
module Wham = Mdsp_analysis.Wham
module Free_energy = Mdsp_analysis.Free_energy
module Structure = Mdsp_analysis.Structure
module Transport = Mdsp_analysis.Transport
