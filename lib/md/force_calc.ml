open Mdsp_util

type longrange =
  | Lr_none
  | Lr_ewald of Mdsp_longrange.Ewald.t
  | Lr_gse of Mdsp_longrange.Gse.t

type energies = {
  bond : float;
  angle : float;
  dihedral : float;
  pair : float;
  recip : float;
  correction : float;
  bias : float;
}

let total e =
  e.bond +. e.angle +. e.dihedral +. e.pair +. e.recip +. e.correction
  +. e.bias

let zero_energies =
  {
    bond = 0.;
    angle = 0.;
    dihedral = 0.;
    pair = 0.;
    recip = 0.;
    correction = 0.;
    bias = 0.;
  }

type timings = {
  mutable pair_s : float;
  mutable bonded_s : float;
  mutable longrange_s : float;
  mutable lr_spread_s : float;
  mutable lr_fft_s : float;
  mutable lr_convolve_s : float;
  mutable lr_gather_s : float;
  mutable bias_s : float;
  mutable neighbor_s : float;
  mutable calls : int;
}

let zero_timings () =
  {
    pair_s = 0.;
    bonded_s = 0.;
    longrange_s = 0.;
    lr_spread_s = 0.;
    lr_fft_s = 0.;
    lr_convolve_s = 0.;
    lr_gather_s = 0.;
    bias_s = 0.;
    neighbor_s = 0.;
    calls = 0;
  }

let timings_total tm =
  tm.pair_s +. tm.bonded_s +. tm.longrange_s +. tm.bias_s +. tm.neighbor_s

let timings_per_call tm =
  if tm.calls = 0 then zero_timings ()
  else begin
    let c = float_of_int tm.calls in
    {
      pair_s = tm.pair_s /. c;
      bonded_s = tm.bonded_s /. c;
      longrange_s = tm.longrange_s /. c;
      lr_spread_s = tm.lr_spread_s /. c;
      lr_fft_s = tm.lr_fft_s /. c;
      lr_convolve_s = tm.lr_convolve_s /. c;
      lr_gather_s = tm.lr_gather_s /. c;
      bias_s = tm.bias_s /. c;
      neighbor_s = tm.neighbor_s /. c;
      calls = tm.calls;
    }
  end

let now () = Unix.gettimeofday ()

type bias = {
  bias_name : string;
  bias_compute : Pbc.t -> Vec3.t array -> Mdsp_ff.Bonded.accum -> float;
}

type transform = {
  tr_name : string;
  tr_apply : Pbc.t -> Vec3.t array -> Mdsp_ff.Bonded.accum -> float -> float;
}

type t = {
  topo : Mdsp_ff.Topology.t;
  mutable evaluator : Mdsp_ff.Pair_interactions.evaluator;
  longrange : longrange;
  nlist : Mdsp_space.Neighbor_list.t;
  (* Newest-first; every consumer restores registration order. *)
  mutable biases_rev : bias list;
  mutable transform : transform option;
  charges : float array;
  exec : Exec.t;
  slots : Mdsp_ff.Bonded.accum array;
  (* Cached handle for the GSE self/excluded corrections: those depend only
     on beta (self) or on the box passed per call (excluded), so the handle
     never goes stale even under a barostat. *)
  mutable gse_ewald : Mdsp_longrange.Ewald.t option;
  tm : timings;
}

let create ?(exec = Exec.serial) topo ~evaluator ~longrange ~nlist =
  let ns = Exec.n_slots exec in
  {
    topo;
    evaluator;
    longrange;
    nlist;
    biases_rev = [];
    transform = None;
    charges = Mdsp_ff.Topology.charges topo;
    exec;
    slots =
      (if ns > 1 then
         Mdsp_ff.Bonded.make_slots ~slots:ns (Mdsp_ff.Topology.n_atoms topo)
       else [||]);
    gse_ewald = None;
    tm = zero_timings ();
  }

let topology t = t.topo
let nlist t = t.nlist
let exec t = t.exec

let longrange_kind t =
  match t.longrange with
  | Lr_none -> `None
  | Lr_ewald _ -> `Ewald
  | Lr_gse gse -> `Gse (Mdsp_longrange.Gse.grid gse)
let set_evaluator t e = t.evaluator <- e
let add_bias t b = t.biases_rev <- b :: t.biases_rev

let remove_bias t name =
  let before = List.length t.biases_rev in
  t.biases_rev <- List.filter (fun b -> b.bias_name <> name) t.biases_rev;
  List.length t.biases_rev < before

let biases t = List.rev_map (fun b -> b.bias_name) t.biases_rev
let set_transform t tr = t.transform <- tr

let timings t = { t.tm with calls = t.tm.calls }

let reset_timings t =
  t.tm.pair_s <- 0.;
  t.tm.bonded_s <- 0.;
  t.tm.longrange_s <- 0.;
  t.tm.lr_spread_s <- 0.;
  t.tm.lr_fft_s <- 0.;
  t.tm.lr_convolve_s <- 0.;
  t.tm.lr_gather_s <- 0.;
  t.tm.bias_s <- 0.;
  t.tm.neighbor_s <- 0.;
  t.tm.calls <- 0

let compute_biases t box positions acc =
  List.fold_left
    (fun e b -> e +. b.bias_compute box positions acc)
    0.
    (List.rev t.biases_rev)

let gse_correction_handle t gse box =
  match t.gse_ewald with
  | Some ew -> ew
  | None ->
      (* Minimal k list: only the beta-dependent correction terms are used. *)
      let ew =
        Mdsp_longrange.Ewald.create ~beta:(Mdsp_longrange.Gse.beta gse)
          ~kmax:1 box
      in
      t.gse_ewald <- Some ew;
      ew

let compute_longrange t box positions acc =
  match t.longrange with
  | Lr_none -> (0., 0.)
  | Lr_ewald ew ->
      let recip = Mdsp_longrange.Ewald.reciprocal ew t.charges positions acc in
      let corr =
        Mdsp_longrange.Ewald.self_energy ew t.charges
        +. Mdsp_longrange.Ewald.excluded_correction ew box t.charges positions
             t.topo.exclusions acc
      in
      (recip, corr)
  | Lr_gse gse ->
      let ph = Mdsp_longrange.Gse.zero_phases () in
      let recip =
        Mdsp_longrange.Gse.reciprocal ~exec:t.exec ~phases:ph gse t.charges
          positions acc
      in
      let tm = t.tm in
      tm.lr_spread_s <- tm.lr_spread_s +. ph.Mdsp_longrange.Gse.spread_s;
      tm.lr_fft_s <- tm.lr_fft_s +. ph.Mdsp_longrange.Gse.fft_s;
      tm.lr_convolve_s <- tm.lr_convolve_s +. ph.Mdsp_longrange.Gse.convolve_s;
      tm.lr_gather_s <- tm.lr_gather_s +. ph.Mdsp_longrange.Gse.gather_s;
      let ew = gse_correction_handle t gse box in
      let corr =
        Mdsp_longrange.Ewald.self_energy ew t.charges
        +. Mdsp_longrange.Ewald.excluded_correction ew box t.charges positions
             t.topo.exclusions acc
      in
      (recip, corr)

(* Timed phase helper: runs [f ()], charges the elapsed wall time to the
   field selected by [add]. *)
let timed add f =
  let t0 = now () in
  let r = f () in
  add (now () -. t0);
  r

let compute t box positions acc =
  Mdsp_ff.Bonded.reset acc;
  let tm = t.tm in
  ignore
    (timed (fun d -> tm.neighbor_s <- tm.neighbor_s +. d) (fun () ->
         Mdsp_space.Neighbor_list.maybe_rebuild ~box t.nlist positions));
  let bond, angle, dihedral =
    timed (fun d -> tm.bonded_s <- tm.bonded_s +. d) (fun () ->
        Mdsp_ff.Bonded.all ~exec:t.exec ~slots:t.slots box t.topo positions
          acc)
  in
  let pair =
    timed (fun d -> tm.pair_s <- tm.pair_s +. d) (fun () ->
        let pair14 =
          Mdsp_ff.Pair_interactions.compute_pairs14 ~exec:t.exec
            ~slots:t.slots t.topo
            ~cutoff:t.evaluator.Mdsp_ff.Pair_interactions.cutoff box positions
            acc
        in
        pair14
        +. Mdsp_ff.Pair_interactions.compute ~exec:t.exec ~slots:t.slots
             t.evaluator box t.nlist positions acc)
  in
  let recip, correction =
    timed (fun d -> tm.longrange_s <- tm.longrange_s +. d) (fun () ->
        compute_longrange t box positions acc)
  in
  let e =
    timed (fun d -> tm.bias_s <- tm.bias_s +. d) (fun () ->
        let bias = compute_biases t box positions acc in
        let e = { bond; angle; dihedral; pair; recip; correction; bias } in
        match t.transform with
        | None -> e
        | Some tr ->
            let boost = tr.tr_apply box positions acc (total e) in
            { e with bias = e.bias +. boost })
  in
  tm.calls <- tm.calls + 1;
  e

let compute_class t cls box positions acc =
  Mdsp_ff.Bonded.reset acc;
  let tm = t.tm in
  match cls with
  | `Fast ->
      let bond, angle, dihedral =
        timed (fun d -> tm.bonded_s <- tm.bonded_s +. d) (fun () ->
            Mdsp_ff.Bonded.all ~exec:t.exec ~slots:t.slots box t.topo
              positions acc)
      in
      let pair14 =
        timed (fun d -> tm.pair_s <- tm.pair_s +. d) (fun () ->
            Mdsp_ff.Pair_interactions.compute_pairs14 ~exec:t.exec
              ~slots:t.slots t.topo
              ~cutoff:t.evaluator.Mdsp_ff.Pair_interactions.cutoff box
              positions acc)
      in
      let bias =
        timed (fun d -> tm.bias_s <- tm.bias_s +. d) (fun () ->
            compute_biases t box positions acc)
      in
      { zero_energies with bond; angle; dihedral; pair = pair14; bias }
  | `Slow ->
      ignore
        (timed (fun d -> tm.neighbor_s <- tm.neighbor_s +. d) (fun () ->
             Mdsp_space.Neighbor_list.maybe_rebuild ~box t.nlist positions));
      let pair =
        timed (fun d -> tm.pair_s <- tm.pair_s +. d) (fun () ->
            Mdsp_ff.Pair_interactions.compute ~exec:t.exec ~slots:t.slots
              t.evaluator box t.nlist positions acc)
      in
      let recip, correction =
        timed (fun d -> tm.longrange_s <- tm.longrange_s +. d) (fun () ->
            compute_longrange t box positions acc)
      in
      tm.calls <- tm.calls + 1;
      { zero_energies with pair; recip; correction }
