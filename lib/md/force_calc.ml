open Mdsp_util

type longrange =
  | Lr_none
  | Lr_ewald of Mdsp_longrange.Ewald.t
  | Lr_gse of Mdsp_longrange.Gse.t

type energies = {
  bond : float;
  angle : float;
  dihedral : float;
  pair : float;
  recip : float;
  correction : float;
  bias : float;
}

let total e =
  e.bond +. e.angle +. e.dihedral +. e.pair +. e.recip +. e.correction
  +. e.bias

let zero_energies =
  {
    bond = 0.;
    angle = 0.;
    dihedral = 0.;
    pair = 0.;
    recip = 0.;
    correction = 0.;
    bias = 0.;
  }

type timings = {
  mutable pair_s : float;
  mutable bonded_s : float;
  mutable longrange_s : float;
  mutable lr_spread_s : float;
  mutable lr_fft_s : float;
  mutable lr_convolve_s : float;
  mutable lr_gather_s : float;
  mutable bias_s : float;
  mutable neighbor_s : float;
  mutable nbuild_s : float;
  mutable integrate_s : float;
  mutable constraints_s : float;
  mutable thermostat_s : float;
  mutable pair_words : float;
  mutable calls : int;
}

let zero_timings () =
  {
    pair_s = 0.;
    bonded_s = 0.;
    longrange_s = 0.;
    lr_spread_s = 0.;
    lr_fft_s = 0.;
    lr_convolve_s = 0.;
    lr_gather_s = 0.;
    bias_s = 0.;
    neighbor_s = 0.;
    nbuild_s = 0.;
    integrate_s = 0.;
    constraints_s = 0.;
    thermostat_s = 0.;
    pair_words = 0.;
    calls = 0;
  }

let timings_total tm =
  tm.pair_s +. tm.bonded_s +. tm.longrange_s +. tm.bias_s +. tm.neighbor_s
  +. tm.integrate_s +. tm.constraints_s +. tm.thermostat_s

let timings_per_call tm =
  if tm.calls = 0 then zero_timings ()
  else begin
    let c = float_of_int tm.calls in
    {
      pair_s = tm.pair_s /. c;
      bonded_s = tm.bonded_s /. c;
      longrange_s = tm.longrange_s /. c;
      lr_spread_s = tm.lr_spread_s /. c;
      lr_fft_s = tm.lr_fft_s /. c;
      lr_convolve_s = tm.lr_convolve_s /. c;
      lr_gather_s = tm.lr_gather_s /. c;
      bias_s = tm.bias_s /. c;
      neighbor_s = tm.neighbor_s /. c;
      nbuild_s = tm.nbuild_s /. c;
      integrate_s = tm.integrate_s /. c;
      constraints_s = tm.constraints_s /. c;
      thermostat_s = tm.thermostat_s /. c;
      pair_words = tm.pair_words /. c;
      calls = tm.calls;
    }
  end

let now () = Unix.gettimeofday ()

type bias = {
  bias_name : string;
  bias_compute : Pbc.t -> Vec3.t array -> Mdsp_ff.Bonded.accum -> float;
}

type transform = {
  tr_name : string;
  tr_apply : Pbc.t -> Vec3.t array -> Mdsp_ff.Bonded.accum -> float -> float;
}

module K = Soa_kernels

(* SoA fast-path context: the flat particle store, the flattened pair
   parameters, and the per-slot scratch for the parallel phases. Slot
   stores share the position columns with [store] (only their force
   columns are private), so one load serves every phase. *)
type soa_ctx = {
  params : K.pair_params;
  store : Soa.t;
  sc : K.scratch;
  slot_stores : Soa.t array;
  slot_fx : Soa.fa array;
  slot_fy : Soa.fa array;
  slot_fz : Soa.fa array;
  slot_sc : K.scratch array;
  (* Per-phase slot outputs, preallocated; every slot overwrites its entry
     before any read, matching the boxed path's fresh arrays bit for bit. *)
  slot_energy : float array;
  slot_virial : float array;
  eb : float array;
  ea : float array;
  ed : float array;
}

let make_soa_ctx ~exec params natoms =
  let store = Soa.create natoms in
  let ns = Exec.n_slots exec in
  (* Sanitizing runs take the parallel (declaring) branches even at one
     slot, so they need the slot scratch sized. *)
  let nslots = if ns > 1 || Exec.sanitizing exec then ns else 0 in
  let slot_stores =
    Array.init nslots (fun _ ->
        {
          store with
          Soa.fx = Soa.make_fa natoms;
          Soa.fy = Soa.make_fa natoms;
          Soa.fz = Soa.make_fa natoms;
        })
  in
  {
    params;
    store;
    sc = K.make_scratch ();
    slot_stores;
    slot_fx = Array.map (fun s -> s.Soa.fx) slot_stores;
    slot_fy = Array.map (fun s -> s.Soa.fy) slot_stores;
    slot_fz = Array.map (fun s -> s.Soa.fz) slot_stores;
    slot_sc = Array.init nslots (fun _ -> K.make_scratch ());
    slot_energy = Array.make (max nslots 1) 0.;
    slot_virial = Array.make (max nslots 1) 0.;
    eb = Array.make (max nslots 1) 0.;
    ea = Array.make (max nslots 1) 0.;
    ed = Array.make (max nslots 1) 0.;
  }

type t = {
  topo : Mdsp_ff.Topology.t;
  mutable evaluator : Mdsp_ff.Pair_interactions.evaluator;
  longrange : longrange;
  nlist : Mdsp_space.Neighbor_list.t;
  (* Newest-first; every consumer restores registration order. *)
  mutable biases_rev : bias list;
  mutable transform : transform option;
  charges : float array;
  exec : Exec.t;
  slots : Mdsp_ff.Bonded.accum array;
  (* Cached handle for the GSE self/excluded corrections: those depend only
     on beta (self) or on the box passed per call (excluded), so the handle
     never goes stale even under a barostat. *)
  mutable gse_ewald : Mdsp_longrange.Ewald.t option;
  mutable soa : soa_ctx option;
  tm : timings;
}

let create ?(exec = Exec.serial) ?soa topo ~evaluator ~longrange ~nlist =
  let ns = Exec.n_slots exec in
  let natoms = Mdsp_ff.Topology.n_atoms topo in
  {
    topo;
    evaluator;
    longrange;
    nlist;
    biases_rev = [];
    transform = None;
    charges = Mdsp_ff.Topology.charges topo;
    exec;
    slots =
      (if ns > 1 || Exec.sanitizing exec then
         Mdsp_ff.Bonded.make_slots ~slots:ns natoms
       else [||]);
    gse_ewald = None;
    soa =
      (match soa with
      | None -> None
      | Some params -> Some (make_soa_ctx ~exec params natoms));
    tm = zero_timings ();
  }

let topology t = t.topo
let nlist t = t.nlist
let exec t = t.exec

let longrange_kind t =
  match t.longrange with
  | Lr_none -> `None
  | Lr_ewald _ -> `Ewald
  | Lr_gse gse -> `Gse (Mdsp_longrange.Gse.grid gse)
(* A replaced evaluator (tables, FEP lambdas, custom forms) has no flat
   specialization, so swapping it drops the SoA fast path back to boxed. *)
let set_evaluator t e =
  t.evaluator <- e;
  t.soa <- None

let soa_active t = match t.soa with Some _ -> true | None -> false
let add_bias t b = t.biases_rev <- b :: t.biases_rev

let remove_bias t name =
  let before = List.length t.biases_rev in
  t.biases_rev <- List.filter (fun b -> b.bias_name <> name) t.biases_rev;
  List.length t.biases_rev < before

let biases t = List.rev_map (fun b -> b.bias_name) t.biases_rev
let set_transform t tr = t.transform <- tr

let timings t = { t.tm with calls = t.tm.calls }

let reset_timings t =
  t.tm.pair_s <- 0.;
  t.tm.bonded_s <- 0.;
  t.tm.longrange_s <- 0.;
  t.tm.lr_spread_s <- 0.;
  t.tm.lr_fft_s <- 0.;
  t.tm.lr_convolve_s <- 0.;
  t.tm.lr_gather_s <- 0.;
  t.tm.bias_s <- 0.;
  t.tm.neighbor_s <- 0.;
  t.tm.nbuild_s <- 0.;
  t.tm.integrate_s <- 0.;
  t.tm.constraints_s <- 0.;
  t.tm.thermostat_s <- 0.;
  t.tm.pair_words <- 0.;
  t.tm.calls <- 0

(* The integrator sweeps live in Engine, outside any [compute] call, so the
   engine charges their wall time here explicitly. *)
let add_integrate_s t d = t.tm.integrate_s <- t.tm.integrate_s +. d
let add_constraints_s t d = t.tm.constraints_s <- t.tm.constraints_s +. d
let add_thermostat_s t d = t.tm.thermostat_s <- t.tm.thermostat_s +. d

let compute_biases t box positions acc =
  List.fold_left
    (fun e b -> e +. b.bias_compute box positions acc)
    0.
    (List.rev t.biases_rev)

let gse_correction_handle t gse box =
  match t.gse_ewald with
  | Some ew -> ew
  | None ->
      (* Minimal k list: only the beta-dependent correction terms are used. *)
      let ew =
        Mdsp_longrange.Ewald.create ~beta:(Mdsp_longrange.Gse.beta gse)
          ~kmax:1 box
      in
      t.gse_ewald <- Some ew;
      ew

let compute_longrange t box positions acc =
  match t.longrange with
  | Lr_none -> (0., 0.)
  | Lr_ewald ew ->
      let recip = Mdsp_longrange.Ewald.reciprocal ew t.charges positions acc in
      let corr =
        Mdsp_longrange.Ewald.self_energy ew t.charges
        +. Mdsp_longrange.Ewald.excluded_correction ew box t.charges positions
             t.topo.exclusions acc
      in
      (recip, corr)
  | Lr_gse gse ->
      let ph = Mdsp_longrange.Gse.zero_phases () in
      let recip =
        Mdsp_longrange.Gse.reciprocal ~exec:t.exec ~phases:ph gse t.charges
          positions acc
      in
      let tm = t.tm in
      tm.lr_spread_s <- tm.lr_spread_s +. ph.Mdsp_longrange.Gse.spread_s;
      tm.lr_fft_s <- tm.lr_fft_s +. ph.Mdsp_longrange.Gse.fft_s;
      tm.lr_convolve_s <- tm.lr_convolve_s +. ph.Mdsp_longrange.Gse.convolve_s;
      tm.lr_gather_s <- tm.lr_gather_s +. ph.Mdsp_longrange.Gse.gather_s;
      let ew = gse_correction_handle t gse box in
      let corr =
        Mdsp_longrange.Ewald.self_energy ew t.charges
        +. Mdsp_longrange.Ewald.excluded_correction ew box t.charges positions
             t.topo.exclusions acc
      in
      (recip, corr)

(* Timed phase helper: runs [f ()], charges the elapsed wall time to the
   field selected by [add]. *)
let timed add f =
  let t0 = now () in
  let r = f () in
  add (now () -. t0);
  r

(* Neighbor refresh, charged to [neighbor_s]; the slice actually spent
   inside the tiled list build (the [nbuild] sub-phase) is the delta of the
   list's own cumulative build clock. *)
let rebuild_timed t box positions =
  let tm = t.tm in
  let nb0 = Mdsp_space.Neighbor_list.build_seconds t.nlist in
  ignore
    (timed (fun d -> tm.neighbor_s <- tm.neighbor_s +. d) (fun () ->
         Mdsp_space.Neighbor_list.maybe_rebuild ~box t.nlist positions));
  tm.nbuild_s <-
    tm.nbuild_s +. (Mdsp_space.Neighbor_list.build_seconds t.nlist -. nb0)

(* --- SoA fast path -------------------------------------------------- *)

(* Phase mirror of Bonded.all on the flat store: same serial/parallel
   split, same per-term tilings, declares and reduction, so both the
   sanitizer view and the accumulated bits match the boxed path. *)
let soa_bonded t ctx box =
  let topo = t.topo in
  let ns = Exec.n_slots t.exec in
  let store = ctx.store in
  let sc = ctx.sc in
  let nb = Array.length topo.Mdsp_ff.Topology.bonds in
  let na = Array.length topo.Mdsp_ff.Topology.angles in
  let nd = Array.length topo.Mdsp_ff.Topology.dihedrals in
  let ni = Array.length topo.Mdsp_ff.Topology.impropers in
  if
    (ns = 1 && not (Exec.sanitizing t.exec))
    || Mdsp_ff.Bonded.term_count topo = 0
  then begin
    sc.K.energy <- 0.;
    K.bonds_range box topo store 0 nb sc;
    let eb = sc.K.energy in
    sc.K.energy <- 0.;
    K.angles_range box topo store 0 na sc;
    let ea = sc.K.energy in
    sc.K.energy <- 0.;
    K.dihedrals_range box topo store 0 nd sc;
    let e_d = sc.K.energy in
    sc.K.energy <- 0.;
    K.impropers_range box topo store 0 ni sc;
    (eb, ea, e_d +. sc.K.energy)
  end
  else begin
    let b_tiles = Exec.tile_bounds ~total:nb ~ntiles:ns in
    let a_tiles = Exec.tile_bounds ~total:na ~ntiles:ns in
    let d_tiles = Exec.tile_bounds ~total:nd ~ntiles:ns in
    let i_tiles = Exec.tile_bounds ~total:ni ~ntiles:ns in
    let eb = ctx.eb and ea = ctx.ea and ed = ctx.ed in
    let natoms = Soa.n store in
    Exec.parallel_run ~phase:"bonded" t.exec (fun s ->
        let sst = ctx.slot_stores.(s) in
        Soa.clear_forces sst;
        let ssc = ctx.slot_sc.(s) in
        K.reset_scratch ssc;
        let declare resource tiles total =
          let lo, hi = tiles in
          Exec.declare_write ~slot:s ~resource ~total ~lo ~hi t.exec
        in
        declare "bonded.bonds" b_tiles.(s) nb;
        declare "bonded.angles" a_tiles.(s) na;
        declare "bonded.dihedrals" d_tiles.(s) nd;
        declare "bonded.impropers" i_tiles.(s) ni;
        (* Each term reads arbitrary atoms via its index tuples. *)
        Exec.declare_read ~slot:s ~resource:"soa.positions" ~lo:0 ~hi:natoms
          t.exec;
        let lo, hi = b_tiles.(s) in
        ssc.K.energy <- 0.;
        K.bonds_range box topo sst lo hi ssc;
        eb.(s) <- ssc.K.energy;
        let lo, hi = a_tiles.(s) in
        ssc.K.energy <- 0.;
        K.angles_range box topo sst lo hi ssc;
        ea.(s) <- ssc.K.energy;
        let lo, hi = d_tiles.(s) in
        ssc.K.energy <- 0.;
        K.dihedrals_range box topo sst lo hi ssc;
        let e_d = ssc.K.energy in
        let lo, hi = i_tiles.(s) in
        ssc.K.energy <- 0.;
        K.impropers_range box topo sst lo hi ssc;
        ed.(s) <- e_d +. ssc.K.energy;
        ctx.slot_virial.(s) <- ssc.K.virial);
    K.reduce_slots ~exec:t.exec
      ~reads:
        [
          ("bonded.bonds", nb);
          ("bonded.angles", na);
          ("bonded.dihedrals", nd);
          ("bonded.impropers", ni);
        ]
      ~into:store ~slot_fx:ctx.slot_fx ~slot_fy:ctx.slot_fy
      ~slot_fz:ctx.slot_fz ~slot_virial:ctx.slot_virial sc;
    (Exec.sum_tree eb, Exec.sum_tree ea, Exec.sum_tree ed)
  end

(* Parallel 1-4 phase, mirror of Pair_interactions.compute_pairs14 (ns > 1
   path). The skip condition matches the boxed one exactly. *)
let soa_pairs14_par t ctx box =
  let params = ctx.params in
  if not (K.pairs14_active params) then 0.
  else begin
    let np = K.pairs14_count params in
    let ns = Exec.n_slots t.exec in
    let tiles = Exec.tile_bounds ~total:np ~ntiles:ns in
    let energies = ctx.slot_energy in
    let natoms = Soa.n ctx.store in
    Exec.parallel_run ~phase:"pair14" t.exec (fun s ->
        let sst = ctx.slot_stores.(s) in
        Soa.clear_forces sst;
        let ssc = ctx.slot_sc.(s) in
        K.reset_scratch ssc;
        let lo, hi = tiles.(s) in
        Exec.declare_write ~slot:s ~resource:"pair.pairs14" ~total:np ~lo ~hi
          t.exec;
        Exec.declare_read ~slot:s ~resource:"soa.positions" ~lo:0 ~hi:natoms
          t.exec;
        K.pairs14_range params box sst lo hi ssc;
        energies.(s) <- ssc.K.energy;
        ctx.slot_virial.(s) <- ssc.K.virial);
    K.reduce_slots ~exec:t.exec ~reads:[ ("pair.pairs14", np) ]
      ~into:ctx.store ~slot_fx:ctx.slot_fx ~slot_fy:ctx.slot_fy
      ~slot_fz:ctx.slot_fz ~slot_virial:ctx.slot_virial ctx.sc;
    Exec.sum_tree energies
  end

(* Parallel pair phase, mirror of Pair_interactions.compute (ns > 1). *)
let soa_pair_par t ctx box =
  let ns = Exec.n_slots t.exec in
  let is, js = Mdsp_space.Neighbor_list.raw_pairs t.nlist in
  let tiles = Mdsp_space.Neighbor_list.tiles t.nlist ~ntiles:ns in
  let total = snd tiles.(ns - 1) in
  let energies = ctx.slot_energy in
  let natoms = Soa.n ctx.store in
  Exec.parallel_run ~phase:"pair" t.exec (fun s ->
      let sst = ctx.slot_stores.(s) in
      Soa.clear_forces sst;
      let ssc = ctx.slot_sc.(s) in
      K.reset_scratch ssc;
      let lo, hi = tiles.(s) in
      Exec.declare_write ~slot:s ~resource:"pair.tiles" ~total ~lo ~hi t.exec;
      Exec.declare_read ~slot:s ~resource:"nlist.pairs" ~total ~lo ~hi t.exec;
      Exec.declare_read ~slot:s ~resource:"soa.positions" ~lo:0 ~hi:natoms
        t.exec;
      K.pair_range ctx.params box sst ~is ~js lo hi ssc;
      energies.(s) <- ssc.K.energy;
      ctx.slot_virial.(s) <- ssc.K.virial);
  K.reduce_slots ~exec:t.exec ~reads:[ ("pair.tiles", total) ]
    ~into:ctx.store ~slot_fx:ctx.slot_fx ~slot_fy:ctx.slot_fy
    ~slot_fz:ctx.slot_fz ~slot_virial:ctx.slot_virial ctx.sc;
  Exec.sum_tree energies

(* Serial 1-4 + pair kernels with the minor-heap probe around them: the
   window contains only unit-returning kernel calls and float-record field
   traffic, so the LJ pair loop measures exactly zero words. Everything
   that allocates (raw array fetch, result boxing, the timing fields) sits
   outside the [w0, w1] window. *)
let soa_pair_serial t ctx box ~with14 =
  let tm = t.tm in
  let store = ctx.store in
  let sc = ctx.sc in
  let params = ctx.params in
  let is, js = Mdsp_space.Neighbor_list.raw_pairs t.nlist in
  let npairs = Mdsp_space.Neighbor_list.length t.nlist in
  let active14 = with14 && K.pairs14_active params in
  let np14 = K.pairs14_count params in
  let w0 = Gc.minor_words () in
  sc.K.energy <- 0.;
  if active14 then K.pairs14_range params box store 0 np14 sc;
  let pair14 = sc.K.energy in
  sc.K.energy <- 0.;
  K.pair_range params box store ~is ~js 0 npairs sc;
  let w1 = Gc.minor_words () in
  let p = pair14 +. sc.K.energy in
  tm.pair_words <- tm.pair_words +. (w1 -. w0);
  p

(* Load positions into the flat store and reset its accumulators; charged
   to whichever phase runs first on the SoA path. With a multi-slot
   executor this is the declared ["soa.load"] phase. *)
let soa_load t ctx box positions =
  let store = ctx.store in
  store.Soa.box <- box;
  Soa.sync_load ~exec:t.exec store positions;
  K.reset_scratch ctx.sc

(* Flush the flat force sums and the virial into the boxed accumulator.
   Plain overwrite: the kernels accumulated in the boxed order, so this
   reproduces the boxed accumulator bits at the phase boundary. The
   longrange / bias phases then keep adding into [acc] exactly as before —
   this is the gather/spread synchronization point (the declared
   ["soa.store"] phase on a multi-slot executor). *)
let soa_flush t ctx acc =
  Soa.sync_store ~exec:t.exec ctx.store acc;
  acc.Mdsp_ff.Bonded.virial <- ctx.sc.K.virial

let compute_soa t ctx box positions acc =
  Mdsp_ff.Bonded.reset acc;
  let tm = t.tm in
  rebuild_timed t box positions;
  let bond, angle, dihedral =
    timed (fun d -> tm.bonded_s <- tm.bonded_s +. d) (fun () ->
        soa_load t ctx box positions;
        soa_bonded t ctx box)
  in
  let pair =
    timed (fun d -> tm.pair_s <- tm.pair_s +. d) (fun () ->
        let p =
          if Exec.n_slots t.exec = 1 && not (Exec.sanitizing t.exec) then
            soa_pair_serial t ctx box ~with14:true
          else begin
            let pair14 = soa_pairs14_par t ctx box in
            pair14 +. soa_pair_par t ctx box
          end
        in
        soa_flush t ctx acc;
        p)
  in
  let recip, correction =
    timed (fun d -> tm.longrange_s <- tm.longrange_s +. d) (fun () ->
        compute_longrange t box positions acc)
  in
  let e =
    timed (fun d -> tm.bias_s <- tm.bias_s +. d) (fun () ->
        let bias = compute_biases t box positions acc in
        let e = { bond; angle; dihedral; pair; recip; correction; bias } in
        match t.transform with
        | None -> e
        | Some tr ->
            let boost = tr.tr_apply box positions acc (total e) in
            { e with bias = e.bias +. boost })
  in
  tm.calls <- tm.calls + 1;
  e

let compute_boxed t box positions acc =
  Mdsp_ff.Bonded.reset acc;
  let tm = t.tm in
  rebuild_timed t box positions;
  let bond, angle, dihedral =
    timed (fun d -> tm.bonded_s <- tm.bonded_s +. d) (fun () ->
        Mdsp_ff.Bonded.all ~exec:t.exec ~slots:t.slots box t.topo positions
          acc)
  in
  let pair =
    timed (fun d -> tm.pair_s <- tm.pair_s +. d) (fun () ->
        let pair14 =
          Mdsp_ff.Pair_interactions.compute_pairs14 ~exec:t.exec
            ~slots:t.slots t.topo
            ~cutoff:t.evaluator.Mdsp_ff.Pair_interactions.cutoff box positions
            acc
        in
        pair14
        +. Mdsp_ff.Pair_interactions.compute ~exec:t.exec ~slots:t.slots
             t.evaluator box t.nlist positions acc)
  in
  let recip, correction =
    timed (fun d -> tm.longrange_s <- tm.longrange_s +. d) (fun () ->
        compute_longrange t box positions acc)
  in
  let e =
    timed (fun d -> tm.bias_s <- tm.bias_s +. d) (fun () ->
        let bias = compute_biases t box positions acc in
        let e = { bond; angle; dihedral; pair; recip; correction; bias } in
        match t.transform with
        | None -> e
        | Some tr ->
            let boost = tr.tr_apply box positions acc (total e) in
            { e with bias = e.bias +. boost })
  in
  tm.calls <- tm.calls + 1;
  e

let compute t box positions acc =
  match t.soa with
  | Some ctx -> compute_soa t ctx box positions acc
  | None -> compute_boxed t box positions acc

(* RESPA class split on the flat store, mirroring the boxed branches. *)
let compute_class_soa t ctx cls box positions acc =
  Mdsp_ff.Bonded.reset acc;
  let tm = t.tm in
  match cls with
  | `Fast ->
      let bond, angle, dihedral =
        timed (fun d -> tm.bonded_s <- tm.bonded_s +. d) (fun () ->
            soa_load t ctx box positions;
            soa_bonded t ctx box)
      in
      let pair14 =
        timed (fun d -> tm.pair_s <- tm.pair_s +. d) (fun () ->
            let p =
              if Exec.n_slots t.exec = 1 && not (Exec.sanitizing t.exec)
              then begin
                let params = ctx.params in
                let sc = ctx.sc in
                if K.pairs14_active params then begin
                  sc.K.energy <- 0.;
                  K.pairs14_range params box ctx.store 0
                    (K.pairs14_count params) sc;
                  sc.K.energy
                end
                else 0.
              end
              else soa_pairs14_par t ctx box
            in
            soa_flush t ctx acc;
            p)
      in
      let bias =
        timed (fun d -> tm.bias_s <- tm.bias_s +. d) (fun () ->
            compute_biases t box positions acc)
      in
      { zero_energies with bond; angle; dihedral; pair = pair14; bias }
  | `Slow ->
      rebuild_timed t box positions;
      let pair =
        timed (fun d -> tm.pair_s <- tm.pair_s +. d) (fun () ->
            soa_load t ctx box positions;
            let p =
              if Exec.n_slots t.exec = 1 && not (Exec.sanitizing t.exec) then
                soa_pair_serial t ctx box ~with14:false
              else soa_pair_par t ctx box
            in
            soa_flush t ctx acc;
            p)
      in
      let recip, correction =
        timed (fun d -> tm.longrange_s <- tm.longrange_s +. d) (fun () ->
            compute_longrange t box positions acc)
      in
      tm.calls <- tm.calls + 1;
      { zero_energies with pair; recip; correction }

(* Dispatch added below, after the boxed class-split body. *)
let compute_class_boxed t cls box positions acc =
  Mdsp_ff.Bonded.reset acc;
  let tm = t.tm in
  match cls with
  | `Fast ->
      let bond, angle, dihedral =
        timed (fun d -> tm.bonded_s <- tm.bonded_s +. d) (fun () ->
            Mdsp_ff.Bonded.all ~exec:t.exec ~slots:t.slots box t.topo
              positions acc)
      in
      let pair14 =
        timed (fun d -> tm.pair_s <- tm.pair_s +. d) (fun () ->
            Mdsp_ff.Pair_interactions.compute_pairs14 ~exec:t.exec
              ~slots:t.slots t.topo
              ~cutoff:t.evaluator.Mdsp_ff.Pair_interactions.cutoff box
              positions acc)
      in
      let bias =
        timed (fun d -> tm.bias_s <- tm.bias_s +. d) (fun () ->
            compute_biases t box positions acc)
      in
      { zero_energies with bond; angle; dihedral; pair = pair14; bias }
  | `Slow ->
      rebuild_timed t box positions;
      let pair =
        timed (fun d -> tm.pair_s <- tm.pair_s +. d) (fun () ->
            Mdsp_ff.Pair_interactions.compute ~exec:t.exec ~slots:t.slots
              t.evaluator box t.nlist positions acc)
      in
      let recip, correction =
        timed (fun d -> tm.longrange_s <- tm.longrange_s +. d) (fun () ->
            compute_longrange t box positions acc)
      in
      tm.calls <- tm.calls + 1;
      { zero_energies with pair; recip; correction }

let compute_class t cls box positions acc =
  match t.soa with
  | Some ctx -> compute_class_soa t ctx cls box positions acc
  | None -> compute_class_boxed t cls box positions acc
