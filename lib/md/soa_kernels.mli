(** Flat (SoA) force kernels: batched per-tile loops over {!Soa} columns.

    Each kernel is an expression-for-expression mirror of the boxed path
    ({!Mdsp_ff.Pair_interactions}, {!Mdsp_ff.Bonded},
    {!Mdsp_ff.Nonbonded}): same parse trees, same guards, same accumulation
    order, so the results are bitwise identical to the boxed results — not
    merely close. The pair loops additionally allocate nothing on the minor
    heap per pair (no closures, no boxed floats, no tuples), which
    [bench e21] asserts.

    Kernels accumulate energy and virial into a caller-owned {!scratch} and
    forces into flat columns; the caller (Force_calc) owns phase ordering,
    per-slot column management and the energy bookkeeping between terms. *)

open Mdsp_util

(** All-float mutable accumulator: field updates never allocate. *)
type scratch = { mutable energy : float; mutable virial : float }

val make_scratch : unit -> scratch
val reset_scratch : scratch -> unit

(** Analytic pair evaluator flattened into arrays: per-type-pair LJ
    constants (Lorentz-Berthelot precombined, shifts included), per-atom
    charges with the Coulomb prefactor folded in, 1-4 index arrays, and the
    electrostatics kind. Built once per (topology, cutoff, trunc, elec). *)
type pair_params

(** [pair_params_of_topology topo ~cutoff ~trunc ~elec] flattens the
    analytic evaluator. Returns [None] for [Switch] truncation (the boxed
    evaluator stays authoritative there); table and custom evaluators never
    have a flat form. *)
val pair_params_of_topology :
  Mdsp_ff.Topology.t ->
  cutoff:float ->
  trunc:Mdsp_ff.Nonbonded.truncation ->
  elec:Mdsp_ff.Pair_interactions.electrostatics ->
  pair_params option

(** [pair_range pp box s ~is ~js lo hi sc] runs the nonbonded pair kernel
    over pair-list entries [lo, hi) of the flat index arrays [is]/[js]
    (from {!Mdsp_space.Neighbor_list.raw_pairs}), reading positions from and
    accumulating forces into [s]'s columns. Allocation-free. *)
val pair_range :
  pair_params ->
  Pbc.t ->
  Soa.t ->
  is:int array ->
  js:int array ->
  int ->
  int ->
  scratch ->
  unit

(** Number of 1-4 pairs in the parameter set. *)
val pairs14_count : pair_params -> int

(** Mirrors the boxed skip condition: some 1-4 pairs exist and at least one
    of the two 1-4 scale factors is positive. *)
val pairs14_active : pair_params -> bool

(** [pairs14_range pp box s lo hi sc] runs the scaled 1-4 kernel over
    entries [lo, hi) of the topology's 1-4 pair list. *)
val pairs14_range : pair_params -> Pbc.t -> Soa.t -> int -> int -> scratch -> unit

(** Bonded terms over index ranges of the topology's term arrays, exactly
    like [Bonded.*_range] but on flat columns. Energies accumulate into
    [sc.energy] (zero it between terms to recover per-term energies),
    virials into [sc.virial]. *)

val bonds_range :
  Pbc.t -> Mdsp_ff.Topology.t -> Soa.t -> int -> int -> scratch -> unit

val angles_range :
  Pbc.t -> Mdsp_ff.Topology.t -> Soa.t -> int -> int -> scratch -> unit

val dihedrals_range :
  Pbc.t -> Mdsp_ff.Topology.t -> Soa.t -> int -> int -> scratch -> unit

val impropers_range :
  Pbc.t -> Mdsp_ff.Topology.t -> Soa.t -> int -> int -> scratch -> unit

(** [reduce_slots ~exec ~into ~slot_fx ~slot_fy ~slot_fz ~slot_virial sc]
    merges per-slot force columns into [into]'s force columns with the same
    fixed-shape pairwise tree as [Bonded.reduce_slots] (resource
    ["soa.reduce"], the flat mirror of the accumulator's atom space), and
    adds the tree-summed slot virials to [sc.virial]. [reads] lists the
    (resource, extent) iteration spaces whose per-slot partials the
    reduction consumes, for the dataflow graph. *)
val reduce_slots :
  exec:Exec.t ->
  ?reads:(string * int) list ->
  into:Soa.t ->
  slot_fx:Soa.fa array ->
  slot_fy:Soa.fa array ->
  slot_fz:Soa.fa array ->
  slot_virial:float array ->
  scratch ->
  unit
