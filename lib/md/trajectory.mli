(** Trajectory output (XYZ) and exact-restart checkpoints.

    The XYZ writer produces the standard extended-XYZ-flavored text format
    readable by common visualization tools. Checkpoints round-trip the full
    dynamic state (positions, velocities, box, time) in a self-describing
    text format stable across runs; restarting from a checkpoint is exact
    up to the engine's RNG state, which the caller reseeds. *)

open Mdsp_util

(** An open XYZ trajectory file. *)
type xyz

(** [open_xyz path ~names] starts a trajectory with per-atom element/name
    labels. *)
val open_xyz : string -> names:string array -> xyz

(** Append one frame (with the box and time recorded on the comment line). *)
val write_frame : xyz -> Pbc.t -> time_fs:float -> Vec3.t array -> unit

val close_xyz : xyz -> unit

(** [read_xyz path] loads all frames as (comment, positions) pairs. *)
val read_xyz : string -> (string * Vec3.t array) list

module Checkpoint : sig
  (** [save ?preset path state ~step] writes a restart file crash-safely
      (staged to [path ^ ".tmp"], then renamed into place, so an interrupt
      mid-write never destroys an existing checkpoint). [preset] records
      which workload the state came from; {!load} can verify it. *)
  val save : ?preset:string -> string -> State.t -> step:int -> unit

  (** [load ?expect_preset path] returns the state and step count. Raises
      [Failure] with a descriptive message when the file is missing,
      truncated, malformed, or — when both [expect_preset] and the file's
      recorded preset are present — written for a different workload. *)
  val load : ?expect_preset:string -> string -> State.t * int
end
