open Mdsp_util

(* One fused cluster: constraints coupled through shared atoms, solved
   together by Gauss-Seidel iteration. Member constraints keep their
   topology order, so a per-cluster sweep performs exactly the updates the
   old global sweep performed on those atoms (a converged constraint writes
   nothing, and clusters are atom-disjoint), making the batched solver
   bitwise identical to the historical serial one. *)
type cluster = {
  k_pairs : (int * int * float) array;
  k_first : int; (* smallest member constraint index, for diagnostics *)
}

type t = {
  pairs : (int * int * float) array; (* all constraints, topology order *)
  clusters : cluster array;
  batches : int array array; (* color -> cluster ids, ascending *)
  tol : float;
  max_iter : int;
}

type unconverged = {
  uc_solver : string; (* "SHAKE" or "RATTLE" *)
  uc_cluster : int; (* cluster id (topology order) *)
  uc_first_constraint : int; (* smallest constraint index in the cluster *)
  uc_iters : int;
  uc_max_violation : float; (* max |r^2 - d^2| / d^2 over the cluster *)
}

exception Unconverged of unconverged

let unconverged_message u =
  Printf.sprintf
    "Constraints.%s: cluster %d (first constraint %d) did not converge \
     after %d iterations (max relative violation %.3e)"
    (String.lowercase_ascii u.uc_solver)
    u.uc_cluster u.uc_first_constraint u.uc_iters u.uc_max_violation

let () =
  Printexc.register_printer (function
    | Unconverged u -> Some (unconverged_message u)
    | _ -> None)

let create ?(tol = 1e-8) ?(max_iter = 200) (topo : Mdsp_ff.Topology.t) =
  let pairs =
    Array.map
      (fun (c : Mdsp_ff.Topology.constraint_) -> (c.ci, c.cj, c.dist))
      topo.constraints
  in
  let tcls = Mdsp_ff.Topology.constraint_clusters topo in
  let clusters =
    Array.map
      (fun (tc : Mdsp_ff.Topology.cluster) ->
        {
          k_pairs = Array.map (fun k -> pairs.(k)) tc.cl_constraints;
          k_first =
            (if Array.length tc.cl_constraints = 0 then 0
             else tc.cl_constraints.(0));
        })
      tcls
  in
  (* Color the interference graph so same-batch clusters never share an
     atom; fused clusters are already disjoint (one color), but the solver
     trusts the coloring, not the fusion. *)
  let adj = Mdsp_ff.Topology.cluster_adjacency tcls in
  let colors = Coloring.dsatur ~n:(Array.length clusters) ~adj in
  let batches = Coloring.classes colors in
  { pairs; clusters; batches; tol; max_iter }

let none =
  { pairs = [||]; clusters = [||]; batches = [||]; tol = 1e-8; max_iter = 1 }

let count t = Array.length t.pairs
let n_clusters t = Array.length t.clusters
let n_batches t = Array.length t.batches

let max_cluster_size t =
  Array.fold_left
    (fun acc c -> max acc (Array.length c.k_pairs))
    0 t.clusters

let cluster_violation box positions (c : cluster) =
  Array.fold_left
    (fun acc (i, j, d) ->
      let d2 = d *. d in
      let r2 = Pbc.dist2 box positions.(i) positions.(j) in
      Float.max acc (abs_float (r2 -. d2) /. d2))
    0. c.k_pairs

let shake_cluster t box ~prev positions ~masses cid =
  let c = t.clusters.(cid) in
  let iter = ref 0 in
  let converged = ref false in
  while (not !converged) && !iter < t.max_iter do
    converged := true;
    Array.iter
      (fun (i, j, d) ->
        let d2 = d *. d in
        let rij = Pbc.min_image box positions.(i) positions.(j) in
        let diff = Vec3.norm2 rij -. d2 in
        if abs_float diff > t.tol *. d2 then begin
          converged := false;
          (* Displace along the pre-step bond direction (classic SHAKE). *)
          let rij_prev = Pbc.min_image box prev.(i) prev.(j) in
          let inv_mi = 1. /. masses.(i) and inv_mj = 1. /. masses.(j) in
          let denom = 2. *. (inv_mi +. inv_mj) *. Vec3.dot rij rij_prev in
          if abs_float denom < 1e-12 then
            failwith "Constraints.shake: degenerate constraint geometry";
          let g = diff /. denom in
          positions.(i) <-
            Vec3.sub positions.(i) (Vec3.scale (g *. inv_mi) rij_prev);
          positions.(j) <-
            Vec3.add positions.(j) (Vec3.scale (g *. inv_mj) rij_prev)
        end)
      c.k_pairs;
    incr iter
  done;
  if not !converged then
    raise
      (Unconverged
         {
           uc_solver = "SHAKE";
           uc_cluster = cid;
           uc_first_constraint = c.k_first;
           uc_iters = !iter;
           uc_max_violation = cluster_violation box positions c;
         })

let rattle_cluster t box positions velocities ~masses cid =
  let c = t.clusters.(cid) in
  let iter = ref 0 in
  let converged = ref false in
  (* Velocity tolerance scaled by constraint length. *)
  while (not !converged) && !iter < t.max_iter do
    converged := true;
    Array.iter
      (fun (i, j, d) ->
        let rij = Pbc.min_image box positions.(i) positions.(j) in
        let vij = Vec3.sub velocities.(i) velocities.(j) in
        let rv = Vec3.dot rij vij in
        let inv_mi = 1. /. masses.(i) and inv_mj = 1. /. masses.(j) in
        let d2 = d *. d in
        if abs_float rv > t.tol *. d2 *. 10. then begin
          converged := false;
          let k = rv /. (d2 *. (inv_mi +. inv_mj)) in
          velocities.(i) <-
            Vec3.sub velocities.(i) (Vec3.scale (k *. inv_mi) rij);
          velocities.(j) <-
            Vec3.add velocities.(j) (Vec3.scale (k *. inv_mj) rij)
        end)
      c.k_pairs;
    incr iter
  done;
  if not !converged then
    raise
      (Unconverged
         {
           uc_solver = "RATTLE";
           uc_cluster = cid;
           uc_first_constraint = c.k_first;
           uc_iters = !iter;
           uc_max_violation = cluster_violation box positions c;
         })

(* Batch-by-batch sweep: clusters within one batch are atom-disjoint (the
   Schedule certificate), so a batch tiles freely over the pool; the
   barrier between batches orders the (potentially conflicting) colors.
   Cluster footprints are scattered atom sets, not contiguous ranges, so
   the sanitizer declarations cover cluster-index tiles under the cons.*
   labels — the atom-level disjointness inside a batch is the statically
   certified part. *)
let sweep_batches ~exec ~phase t ~read_label ~rw_label body =
  Array.iter
    (fun batch ->
      let nb = Array.length batch in
      if Exec.n_slots exec = 1 && not (Exec.sanitizing exec) then
        Array.iter body batch
      else begin
        let tiles = Exec.tile_bounds ~total:nb ~ntiles:(Exec.n_slots exec) in
        Exec.parallel_run ~phase exec (fun s ->
            let lo, hi = tiles.(s) in
            Exec.declare_read ~slot:s ~resource:read_label ~lo ~hi exec;
            Exec.declare_read ~slot:s ~resource:rw_label ~lo ~hi exec;
            Exec.declare_write ~slot:s ~resource:rw_label ~total:nb ~lo ~hi
              exec;
            for k = lo to hi - 1 do
              body batch.(k)
            done)
      end)
    t.batches

let shake ?(exec = Exec.serial) t box ~prev positions ~masses =
  if Array.length t.pairs > 0 then
    sweep_batches ~exec ~phase:"constraints.shake" t ~read_label:"cons.prev"
      ~rw_label:"cons.pos"
      (shake_cluster t box ~prev positions ~masses)

let rattle ?(exec = Exec.serial) t box positions velocities ~masses =
  if Array.length t.pairs > 0 then
    sweep_batches ~exec ~phase:"constraints.rattle" t ~read_label:"cons.pos"
      ~rw_label:"cons.vel"
      (rattle_cluster t box positions velocities ~masses)

let max_violation t box positions =
  Array.fold_left
    (fun acc (i, j, d) ->
      let d2 = d *. d in
      let r2 = Pbc.dist2 box positions.(i) positions.(j) in
      Float.max acc (abs_float (r2 -. d2) /. d2))
    0. t.pairs
