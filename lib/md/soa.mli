(** Flat (structure-of-arrays) particle store for the hot path.

    The boxed {!State.t} ([Vec3.t array]) stays the checkpoint and ensemble
    representation; this module holds the same data as unboxed
    [(float, float64_elt, c_layout) Bigarray.Array1.t] columns, which the
    tiled pair/bonded kernels ({!Soa_kernels}) walk without allocating.
    Synchronization between the two domains is explicit — load at a phase
    entry, scatter at a phase exit — and {!of_state}/{!to_state} round-trip
    exactly (every copy is a plain float move, no arithmetic). *)

open Mdsp_util

(** 1-D unboxed float column. *)
type fa = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  n : int;
  x : fa;
  y : fa;
  z : fa;  (** positions *)
  vx : fa;
  vy : fa;
  vz : fa;  (** velocities *)
  fx : fa;
  fy : fa;
  fz : fa;  (** force accumulator *)
  masses : float array;
  mutable box : Pbc.t;
  mutable time : float;
}

(** [create ?box n] allocates zeroed columns for [n] particles. *)
val create : ?box:Pbc.t -> int -> t

(** A fresh zeroed column of length [n] — scratch for per-slot force
    accumulators that share a store's position columns. *)
val make_fa : int -> fa

val n : t -> int

(** Copy boxed positions into the flat columns (exact float moves). *)
val load_positions : t -> Vec3.t array -> unit

val load_velocities : t -> Vec3.t array -> unit

(** Zero the force columns. *)
val clear_forces : t -> unit

(** Overwrite the accumulator's forces with the flat force columns. The
    kernels accumulate in the boxed order, so scattering into a freshly
    reset accumulator reproduces the boxed accumulator bit for bit. *)
val scatter_forces : t -> Mdsp_ff.Bonded.accum -> unit

(** [sync_load ?exec t positions] copies boxed positions into the flat
    columns and zeroes the force columns — the phase-entry sync. With a
    multi-slot (or sanitizing) executor it runs as the declared parallel
    phase ["soa.load"] (reads ["state.positions"], writes
    ["soa.positions"] and ["soa.forces"], tiled over atoms); every copy is
    a plain float move, so the parallel sync is bitwise identical to the
    serial one. *)
val sync_load : ?exec:Exec.t -> t -> Vec3.t array -> unit

(** [sync_store ?exec t acc] is {!scatter_forces} as the declared parallel
    phase ["soa.store"] (reads ["soa.forces"], writes ["state.forces"]) —
    the phase-exit sync. *)
val sync_store : ?exec:Exec.t -> t -> Mdsp_ff.Bonded.accum -> unit

(** Exact flat snapshot of a state (positions, velocities, masses, box,
    time). With a multi-slot (or sanitizing) [exec] the position/velocity
    copy runs as phase ["soa.load"] (also reading/writing the velocity
    resources). *)
val of_state : ?exec:Exec.t -> State.t -> t

(** Inverse of {!of_state}: [to_state (of_state st)] equals [st]
    bit for bit (forces are scratch and not part of the state). With a
    multi-slot (or sanitizing) [exec] the velocity copy runs as phase
    ["soa.store"] (resource ["state.velocities"]). *)
val to_state : ?exec:Exec.t -> t -> State.t
