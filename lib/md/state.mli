(** Dynamic state of a simulation: positions, velocities, box, time.

    Positions are wrapped lazily — the arrays may hold unwrapped coordinates;
    all physics goes through minimum-image displacement, and wrapping only
    happens on neighbor-list rebuilds. Internal units throughout (angstrom,
    amu, internal time; see {!Mdsp_util.Units}). *)

open Mdsp_util

type t = {
  positions : Vec3.t array;
  velocities : Vec3.t array;
  masses : float array;
  mutable box : Pbc.t;
  mutable time : float;  (** internal units *)
}

val create :
  positions:Vec3.t array -> masses:float array -> box:Pbc.t -> t

val n : t -> int

(** Kinetic energy, kcal/mol. *)
val kinetic_energy : t -> float

(** Instantaneous temperature for the given number of degrees of freedom. *)
val temperature : t -> dof:int -> float

(** Draw velocities from the Maxwell–Boltzmann distribution at [temp] and
    remove the center-of-mass drift. *)
val thermalize : t -> Rng.t -> temp:float -> unit

(** Remove center-of-mass velocity. *)
val remove_com_velocity : t -> unit

(** Rescale all velocities by a factor. *)
val scale_velocities : t -> float -> unit

(** Deep copy. *)
val copy : t -> t

(** Bitwise equality of the dynamic data (positions, velocities, box, time;
    masses excluded) — the predicate the determinism and restart-exactness
    tests assert. *)
val equal : t -> t -> bool

(** Copy dynamic data of [src] into [dst] (arrays must match in length). *)
val blit : src:t -> dst:t -> unit
