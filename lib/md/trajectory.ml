open Mdsp_util

type xyz = { oc : out_channel; names : string array }

let open_xyz path ~names =
  let oc = open_out path in
  { oc; names }

let write_frame t box ~time_fs positions =
  let n = Array.length positions in
  if n <> Array.length t.names then
    invalid_arg "Trajectory.write_frame: name/position count mismatch";
  Printf.fprintf t.oc "%d\n" n;
  let open Pbc in
  Printf.fprintf t.oc
    "Lattice=\"%.6f 0 0 0 %.6f 0 0 0 %.6f\" time_fs=%.4f\n" box.lx box.ly
    box.lz time_fs;
  Array.iteri
    (fun i (p : Vec3.t) ->
      let w = Pbc.wrap box p in
      Printf.fprintf t.oc "%-4s %12.6f %12.6f %12.6f\n" t.names.(i) w.Vec3.x
        w.Vec3.y w.Vec3.z)
    positions

let close_xyz t = close_out t.oc

let read_xyz path =
  let ic = open_in path in
  let frames = ref [] in
  (try
     while true do
       let n = int_of_string (String.trim (input_line ic)) in
       let comment = input_line ic in
       let pos =
         Array.init n (fun _ ->
             let line = input_line ic in
             Scanf.sscanf line " %s %f %f %f" (fun _ x y z -> Vec3.make x y z))
       in
       frames := (comment, pos) :: !frames
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !frames

module Checkpoint = struct
  (* Version 2 adds a provenance line ("preset <name>", "-" when the caller
     recorded none) right after the header, so a restart can refuse a
     checkpoint taken from a different workload instead of silently loading
     mismatched coordinates. Version 1 files (no preset line) still load. *)
  let save ?preset path (st : State.t) ~step =
    Atomic_file.write path (fun oc ->
        let n = State.n st in
        let open Pbc in
        Printf.fprintf oc "mdsp-checkpoint 2\n";
        Printf.fprintf oc "preset %s\n"
          (match preset with Some p when p <> "" -> p | _ -> "-");
        Printf.fprintf oc "atoms %d\n" n;
        Printf.fprintf oc "step %d\n" step;
        Printf.fprintf oc "time %.17g\n" st.State.time;
        Printf.fprintf oc "box %.17g %.17g %.17g\n" st.State.box.lx
          st.State.box.ly st.State.box.lz;
        for i = 0 to n - 1 do
          let p = st.State.positions.(i) and v = st.State.velocities.(i) in
          Printf.fprintf oc "%.17g %.17g %.17g %.17g %.17g %.17g %.17g\n"
            st.State.masses.(i) p.Vec3.x p.Vec3.y p.Vec3.z v.Vec3.x v.Vec3.y
            v.Vec3.z
        done)

  let load ?expect_preset path =
    let ic =
      try open_in path
      with Sys_error m ->
        failwith (Printf.sprintf "Checkpoint.load %s: cannot open (%s)" path m)
    in
    let exception Bad of string in
    let fail msg =
      close_in ic;
      raise (Bad (Printf.sprintf "Checkpoint.load %s: %s" path msg))
    in
    let line () = try input_line ic with End_of_file -> fail "truncated" in
    (try
       let version =
         match line () with
         | "mdsp-checkpoint 1" -> 1
         | "mdsp-checkpoint 2" -> 2
         | _ -> fail "bad header (not an mdsp checkpoint)"
       in
       let preset =
         if version < 2 then None
         else
           match Scanf.sscanf (line ()) "preset %s" Fun.id with
           | "-" -> None
           | p -> Some p
       in
       (match (expect_preset, preset) with
       | Some want, Some got when want <> got ->
           fail
             (Printf.sprintf
                "checkpoint was written for preset %S, not %S" got want)
       | _ -> ());
       let n = Scanf.sscanf (line ()) "atoms %d" Fun.id in
       let step = Scanf.sscanf (line ()) "step %d" Fun.id in
       let time = Scanf.sscanf (line ()) "time %f" Fun.id in
       let lx, ly, lz =
         Scanf.sscanf (line ()) "box %f %f %f" (fun a b c -> (a, b, c))
       in
       let masses = Array.make n 0. in
       let positions = Array.make n Vec3.zero in
       let velocities = Array.make n Vec3.zero in
       for i = 0 to n - 1 do
         Scanf.sscanf (line ()) " %f %f %f %f %f %f %f"
           (fun m px py pz vx vy vz ->
             masses.(i) <- m;
             positions.(i) <- Vec3.make px py pz;
             velocities.(i) <- Vec3.make vx vy vz)
       done;
       close_in ic;
       let st = State.create ~positions ~masses ~box:(Pbc.make ~lx ~ly ~lz) in
       Array.blit velocities 0 st.State.velocities 0 n;
       st.State.time <- time;
       (st, step)
     with
    | Bad m -> failwith m
    | Scanf.Scan_failure m | Failure m ->
        close_in ic;
        failwith (Printf.sprintf "Checkpoint.load %s: %s" path m))
end
