(** Full force-field evaluation: bonded + short-range pairs + long-range
    electrostatics + externally registered biases.

    The short-range pair part goes through an abstract
    {!Mdsp_ff.Pair_interactions.evaluator}, which is the seam where the
    machine model substitutes its table-driven pipelines for the analytic
    reference. Biases (restraints, metadynamics hills, boost potentials...)
    are closures registered by the sampling methods. *)

open Mdsp_util

type longrange =
  | Lr_none
  | Lr_ewald of Mdsp_longrange.Ewald.t
  | Lr_gse of Mdsp_longrange.Gse.t

type energies = {
  bond : float;
  angle : float;
  dihedral : float;
  pair : float;  (** short-range nonbonded *)
  recip : float;  (** long-range reciprocal *)
  correction : float;  (** Ewald self + excluded-pair corrections *)
  bias : float;  (** all registered biases *)
}

val total : energies -> float
val zero_energies : energies

(** Cumulative wall-clock seconds spent in each force-pipeline phase — the
    live analogue of the machine model's per-resource breakdown
    ({!Mdsp_machine.Perf.breakdown}): [pair_s] is what the hardwired pair
    pipelines would run (neighbor-list pairs + 1-4 terms), [bonded_s] and
    [bias_s] the programmable-core work, [longrange_s] the grid/k-space
    phase, [neighbor_s] the neighbor-list rebuilds. [calls] counts full
    force evaluations ({!compute} and [`Slow] class passes).

    The [lr_*] fields split [longrange_s] into the GSE grid-pipeline
    sub-phases (charge spreading, FFT passes, k-space convolution, force
    gathering — see {!Mdsp_longrange.Gse.phases}); they are a breakdown,
    not additional buckets, so {!timings_total} does not add them again.
    Their sum is slightly below [longrange_s], whose remainder is the
    Ewald self/excluded correction work. All four stay zero when the
    long-range solver is [Lr_none] or direct [Lr_ewald].

    [nbuild_s] is the slice of [neighbor_s] actually spent inside the tiled
    cell-list + pair-list build (a sub-phase, not an additional bucket, so
    {!timings_total} does not add it). [integrate_s] is the integrator's
    position/velocity sweeps (the [integrate.*] phases), charged by the
    engine via {!add_integrate_s}; [constraints_s] (SHAKE/RATTLE batch
    sweeps plus the constraint velocity fold) and [thermostat_s] (Langevin
    O-step, velocity rescales) are charged the same way via
    {!add_constraints_s}/{!add_thermostat_s} — the buckets that are not
    force work.
    [pair_words] is not a time at all:
    it is the cumulative minor-heap allocation (in words, from
    [Gc.minor_words]) of the short-range pair kernels — on the serial SoA
    path the LJ pair loop is allocation-free and this stays exactly 0,
    which [bench e21] asserts. On the boxed path it counts the closure and
    box traffic of the reference kernels. *)
type timings = {
  mutable pair_s : float;
  mutable bonded_s : float;
  mutable longrange_s : float;
  mutable lr_spread_s : float;
  mutable lr_fft_s : float;
  mutable lr_convolve_s : float;
  mutable lr_gather_s : float;
  mutable bias_s : float;
  mutable neighbor_s : float;
  mutable nbuild_s : float;
  mutable integrate_s : float;
  mutable constraints_s : float;
  mutable thermostat_s : float;
  mutable pair_words : float;
  mutable calls : int;
}

val zero_timings : unit -> timings

(** Sum of all phase times. *)
val timings_total : timings -> float

(** Per-evaluation averages (divides each phase by [calls]). *)
val timings_per_call : timings -> timings

(** A bias sees the box and positions and adds forces into the accumulator,
    returning its energy. *)
type bias = {
  bias_name : string;
  bias_compute : Pbc.t -> Vec3.t array -> Mdsp_ff.Bonded.accum -> float;
}

(** A force transform rewrites the already-accumulated forces as a function
    of the pre-transform potential energy — the mechanism behind boost
    potentials (accelerated MD), where F' = F (1 - d(boost)/dV). It returns
    the boost energy to add to the bias total. Applied only by {!compute}
    (not the RESPA class-split path). *)
type transform = {
  tr_name : string;
  tr_apply : Pbc.t -> Vec3.t array -> Mdsp_ff.Bonded.accum -> float -> float;
}

type t

(** [create ?exec ?soa topo ~evaluator ~longrange ~nlist] builds the
    calculator. [exec] (default {!Mdsp_util.Exec.serial}) selects the
    execution backend for the pair and bonded phases; per-slot scratch
    accumulators are sized here and reused across steps.

    [soa] installs the flat (structure-of-arrays) fast path: the bonded,
    1-4 and short-range pair phases then run the {!Soa_kernels} batched
    loops over a {!Soa} store instead of the boxed reference kernels. The
    flat parameters must describe the same (topology, cutoff, truncation,
    electrostatics) as [evaluator] — build them with
    {!Soa_kernels.pair_params_of_topology} at the same call site. Results
    are bitwise identical to the boxed path; long-range, biases and
    transforms always stay boxed (the store syncs back at the pair-phase
    boundary). *)
val create :
  ?exec:Exec.t ->
  ?soa:Soa_kernels.pair_params ->
  Mdsp_ff.Topology.t ->
  evaluator:Mdsp_ff.Pair_interactions.evaluator ->
  longrange:longrange ->
  nlist:Mdsp_space.Neighbor_list.t ->
  t

val topology : t -> Mdsp_ff.Topology.t
val nlist : t -> Mdsp_space.Neighbor_list.t

(** The execution backend the calculator runs on. *)
val exec : t -> Exec.t

(** Which long-range solver is installed ([`Gse] carries its grid dims) —
    lets front ends report the configuration without matching on
    {!longrange}. *)
val longrange_kind : t -> [ `None | `Ewald | `Gse of int * int * int ]

(** Snapshot of the cumulative phase timings since creation or the last
    {!reset_timings}. *)
val timings : t -> timings

val reset_timings : t -> unit

(** [add_integrate_s t d] charges [d] seconds of integrator-sweep wall time
    to [integrate_s]. Called by the engine: the sweeps run outside any
    {!compute} call, so they cannot be timed from inside it. *)
val add_integrate_s : t -> float -> unit

(** Same contract for the SHAKE/RATTLE batch sweeps and the constraint
    velocity fold ([constraints_s]). *)
val add_constraints_s : t -> float -> unit

(** Same contract for the thermostat sweeps — Langevin O-step and velocity
    rescales ([thermostat_s]). *)
val add_thermostat_s : t -> float -> unit

(** Replace the pair evaluator (FEP lambda switching, machine
    substitution). This also disables the SoA fast path if one was
    installed: a swapped-in evaluator has no flat specialization, so the
    calculator falls back to the boxed reference kernels. *)
val set_evaluator : t -> Mdsp_ff.Pair_interactions.evaluator -> unit

(** Whether the flat (SoA) fast path is currently driving the bonded and
    pair phases. *)
val soa_active : t -> bool

val add_bias : t -> bias -> unit

(** Remove a bias by name; returns true if one was removed. *)
val remove_bias : t -> string -> bool

val biases : t -> string list

(** Install or clear the force transform. *)
val set_transform : t -> transform option -> unit

(** [compute t box positions acc] refreshes the neighbor list if needed,
    accumulates all forces and the virial into [acc] (which is reset first)
    and returns the energy breakdown. *)
val compute : t -> Pbc.t -> Vec3.t array -> Mdsp_ff.Bonded.accum -> energies

(** Like {!compute} but restricted to a force class, for RESPA splitting:
    [`Fast] = bonded + biases, [`Slow] = nonbonded (+ long-range). *)
val compute_class :
  t -> [ `Fast | `Slow ] -> Pbc.t -> Vec3.t array -> Mdsp_ff.Bonded.accum ->
  energies
