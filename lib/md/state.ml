open Mdsp_util

type t = {
  positions : Vec3.t array;
  velocities : Vec3.t array;
  masses : float array;
  mutable box : Pbc.t;
  mutable time : float;
}

let create ~positions ~masses ~box =
  let n = Array.length positions in
  if Array.length masses <> n then
    invalid_arg "State.create: positions/masses length mismatch";
  {
    positions = Array.copy positions;
    velocities = Array.make n Vec3.zero;
    masses = Array.copy masses;
    box;
    time = 0.;
  }

let n t = Array.length t.positions

let kinetic_energy t =
  let ke = ref 0. in
  for i = 0 to n t - 1 do
    ke := !ke +. (0.5 *. t.masses.(i) *. Vec3.norm2 t.velocities.(i))
  done;
  !ke

let temperature t ~dof =
  2. *. kinetic_energy t /. (float_of_int dof *. Units.k_b)

let remove_com_velocity t =
  let p = ref Vec3.zero and m = ref 0. in
  for i = 0 to n t - 1 do
    p := Vec3.add !p (Vec3.scale t.masses.(i) t.velocities.(i));
    m := !m +. t.masses.(i)
  done;
  let v_com = Vec3.scale (1. /. !m) !p in
  for i = 0 to n t - 1 do
    t.velocities.(i) <- Vec3.sub t.velocities.(i) v_com
  done

let thermalize t rng ~temp =
  for i = 0 to n t - 1 do
    let sigma = sqrt (Units.k_b *. temp /. t.masses.(i)) in
    t.velocities.(i) <- Vec3.scale sigma (Rng.gaussian_vec rng)
  done;
  remove_com_velocity t

let scale_velocities t f =
  for i = 0 to n t - 1 do
    t.velocities.(i) <- Vec3.scale f t.velocities.(i)
  done

let copy t =
  {
    positions = Array.copy t.positions;
    velocities = Array.copy t.velocities;
    masses = Array.copy t.masses;
    box = t.box;
    time = t.time;
  }

let equal a b =
  n a = n b && a.box = b.box && a.time = b.time
  && a.positions = b.positions
  && a.velocities = b.velocities

let blit ~src ~dst =
  Array.blit src.positions 0 dst.positions 0 (n src);
  Array.blit src.velocities 0 dst.velocities 0 (n src);
  dst.box <- src.box;
  dst.time <- src.time
