open Mdsp_util

type fa = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  n : int;
  x : fa;
  y : fa;
  z : fa;
  vx : fa;
  vy : fa;
  vz : fa;
  fx : fa;
  fy : fa;
  fz : fa;
  masses : float array;
  mutable box : Pbc.t;
  mutable time : float;
}

let make_fa n =
  let a = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
  Bigarray.Array1.fill a 0.;
  a

let create ?(box = Pbc.cubic 1.) n =
  if n < 0 then invalid_arg "Soa.create: negative size";
  {
    n;
    x = make_fa n;
    y = make_fa n;
    z = make_fa n;
    vx = make_fa n;
    vy = make_fa n;
    vz = make_fa n;
    fx = make_fa n;
    fy = make_fa n;
    fz = make_fa n;
    masses = Array.make n 0.;
    box;
    time = 0.;
  }

let n t = t.n

let load_positions t (positions : Vec3.t array) =
  if Array.length positions <> t.n then
    invalid_arg "Soa.load_positions: length mismatch";
  for i = 0 to t.n - 1 do
    let p = positions.(i) in
    t.x.{i} <- p.Vec3.x;
    t.y.{i} <- p.Vec3.y;
    t.z.{i} <- p.Vec3.z
  done

let load_velocities t (velocities : Vec3.t array) =
  if Array.length velocities <> t.n then
    invalid_arg "Soa.load_velocities: length mismatch";
  for i = 0 to t.n - 1 do
    let v = velocities.(i) in
    t.vx.{i} <- v.Vec3.x;
    t.vy.{i} <- v.Vec3.y;
    t.vz.{i} <- v.Vec3.z
  done

let clear_forces t =
  Bigarray.Array1.fill t.fx 0.;
  Bigarray.Array1.fill t.fy 0.;
  Bigarray.Array1.fill t.fz 0.

(* Overwrite (not add): the SoA kernels accumulate the bonded + 1-4 + pair
   force sums in the flat arrays in exactly the boxed accumulation order, so
   writing them into a freshly reset accumulator reproduces the boxed
   accumulator state bit for bit at the phase boundary. *)
let scatter_forces t (acc : Mdsp_ff.Bonded.accum) =
  if Array.length acc.Mdsp_ff.Bonded.forces <> t.n then
    invalid_arg "Soa.scatter_forces: length mismatch";
  let forces = acc.Mdsp_ff.Bonded.forces in
  for i = 0 to t.n - 1 do
    forces.(i) <- Vec3.make t.fx.{i} t.fy.{i} t.fz.{i}
  done

(* The sync phases run tiled on the pool when it has width (or when a
   sanitizing executor is recording the dataflow trace); every copy is a
   plain float move, so the parallel sync is bitwise identical to the
   serial one at any slot count. *)
let parallel_sync exec =
  Exec.n_slots exec > 1 || Exec.sanitizing exec

let sync_load ?(exec = Exec.serial) t (positions : Vec3.t array) =
  if Array.length positions <> t.n then
    invalid_arg "Soa.sync_load: length mismatch";
  if not (parallel_sync exec) then begin
    load_positions t positions;
    clear_forces t
  end
  else begin
    let n = t.n in
    let tiles = Exec.tile_bounds ~total:n ~ntiles:(Exec.n_slots exec) in
    Exec.parallel_run ~phase:"soa.load" exec (fun s ->
        let lo, hi = tiles.(s) in
        Exec.declare_read ~slot:s ~resource:"state.positions" ~lo ~hi exec;
        Exec.declare_write ~slot:s ~resource:"soa.positions" ~total:n ~lo
          ~hi exec;
        Exec.declare_write ~slot:s ~resource:"soa.forces" ~total:n ~lo ~hi
          exec;
        for i = lo to hi - 1 do
          let p = positions.(i) in
          t.x.{i} <- p.Vec3.x;
          t.y.{i} <- p.Vec3.y;
          t.z.{i} <- p.Vec3.z;
          t.fx.{i} <- 0.;
          t.fy.{i} <- 0.;
          t.fz.{i} <- 0.
        done)
  end

let sync_store ?(exec = Exec.serial) t (acc : Mdsp_ff.Bonded.accum) =
  if Array.length acc.Mdsp_ff.Bonded.forces <> t.n then
    invalid_arg "Soa.sync_store: length mismatch";
  if not (parallel_sync exec) then scatter_forces t acc
  else begin
    let n = t.n in
    let forces = acc.Mdsp_ff.Bonded.forces in
    let tiles = Exec.tile_bounds ~total:n ~ntiles:(Exec.n_slots exec) in
    Exec.parallel_run ~phase:"soa.store" exec (fun s ->
        let lo, hi = tiles.(s) in
        Exec.declare_read ~slot:s ~resource:"soa.forces" ~total:n ~lo ~hi
          exec;
        Exec.declare_write ~slot:s ~resource:"state.forces" ~total:n ~lo ~hi
          exec;
        for i = lo to hi - 1 do
          forces.(i) <- Vec3.make t.fx.{i} t.fy.{i} t.fz.{i}
        done)
  end

let of_state ?(exec = Exec.serial) (st : State.t) =
  let m = State.n st in
  let t = create ~box:st.State.box m in
  if not (parallel_sync exec) then begin
    load_positions t st.State.positions;
    load_velocities t st.State.velocities
  end
  else begin
    let positions = st.State.positions and velocities = st.State.velocities in
    let tiles = Exec.tile_bounds ~total:m ~ntiles:(Exec.n_slots exec) in
    Exec.parallel_run ~phase:"soa.load" exec (fun s ->
        let lo, hi = tiles.(s) in
        Exec.declare_read ~slot:s ~resource:"state.positions" ~lo ~hi exec;
        Exec.declare_read ~slot:s ~resource:"state.velocities" ~lo ~hi exec;
        Exec.declare_write ~slot:s ~resource:"soa.positions" ~total:m ~lo
          ~hi exec;
        Exec.declare_write ~slot:s ~resource:"soa.velocities" ~total:m ~lo
          ~hi exec;
        for i = lo to hi - 1 do
          let p = positions.(i) in
          t.x.{i} <- p.Vec3.x;
          t.y.{i} <- p.Vec3.y;
          t.z.{i} <- p.Vec3.z;
          let v = velocities.(i) in
          t.vx.{i} <- v.Vec3.x;
          t.vy.{i} <- v.Vec3.y;
          t.vz.{i} <- v.Vec3.z
        done)
  end;
  Array.blit st.State.masses 0 t.masses 0 m;
  t.time <- st.State.time;
  t

let to_state ?(exec = Exec.serial) t =
  let positions = Array.init t.n (fun i -> Vec3.make t.x.{i} t.y.{i} t.z.{i}) in
  let st = State.create ~positions ~masses:t.masses ~box:t.box in
  if not (parallel_sync exec) then
    for i = 0 to t.n - 1 do
      st.State.velocities.(i) <- Vec3.make t.vx.{i} t.vy.{i} t.vz.{i}
    done
  else begin
    let velocities = st.State.velocities in
    let tiles = Exec.tile_bounds ~total:t.n ~ntiles:(Exec.n_slots exec) in
    Exec.parallel_run ~phase:"soa.store" exec (fun s ->
        let lo, hi = tiles.(s) in
        Exec.declare_read ~slot:s ~resource:"soa.velocities" ~lo ~hi exec;
        Exec.declare_write ~slot:s ~resource:"state.velocities" ~total:t.n
          ~lo ~hi exec;
        for i = lo to hi - 1 do
          velocities.(i) <- Vec3.make t.vx.{i} t.vy.{i} t.vz.{i}
        done)
  end;
  st.State.time <- t.time;
  st
