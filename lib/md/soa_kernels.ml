open Mdsp_util
module Topology = Mdsp_ff.Topology
module Nonbonded = Mdsp_ff.Nonbonded
module Pair_interactions = Mdsp_ff.Pair_interactions

(* Every kernel in this file is an expression-for-expression mirror of the
   boxed path (Pair_interactions / Bonded / Nonbonded): same parse trees,
   same association, same guards, same accumulation order. That is the whole
   contract — SoA results must be bitwise identical to the boxed results, so
   nothing here is "mathematically equal", it is operation-equal. Keep it
   that way when editing: check the boxed source first. *)

type scratch = { mutable energy : float; mutable virial : float }

let make_scratch () = { energy = 0.; virial = 0. }

let reset_scratch s =
  s.energy <- 0.;
  s.virial <- 0.

(* ------------------------------------------------------------------ *)
(* Pair parameters: the analytic evaluator flattened into arrays.      *)
(* ------------------------------------------------------------------ *)

type elec_kind =
  | Ek_none
  | Ek_cutoff
  | Ek_rf of { krf : float; crf : float }
  | Ek_ewald of { beta : float }

type pair_params = {
  cutoff : float;
  rc2 : float;
  ntypes : int;
  type_of : int array;
  (* Per type pair (flattened ntypes x ntypes), Lorentz-Berthelot combined:
     [eps4] = 4 eps, [eps24] = 24 eps, [sig2] = sigma^2 — exactly the
     subexpressions the boxed LJ eval computes per pair, hoisted. *)
  eps4 : float array;
  eps24 : float array;
  sig2 : float array;
  shift : float array;  (* energy shift at the cutoff; 0 for Truncate *)
  shift14 : float array;  (* 1-4 terms always use Shift truncation *)
  q : float array;
  cq : float array;  (* Units.coulomb *. q, the boxed qq prefix *)
  elec : elec_kind;
  p14i : int array;
  p14j : int array;
  scale14_lj : float;
  scale14_coul : float;
}

(* Switch truncation keeps the boxed evaluator (no flat specialization);
   table/custom evaluators never reach this builder. *)
let pair_params_of_topology (topo : Topology.t) ~cutoff
    ~(trunc : Nonbonded.truncation) ~(elec : Pair_interactions.electrostatics)
    =
  match trunc with
  | Switch _ -> None
  | (Truncate | Shift) as trunc ->
      let ntypes = Array.length topo.lj_types in
      let type_of =
        Array.map (fun (a : Topology.atom) -> a.type_id) topo.atoms
      in
      let nt2 = ntypes * ntypes in
      let eps4 = Array.make nt2 0. in
      let eps24 = Array.make nt2 0. in
      let sig2 = Array.make nt2 0. in
      let shift = Array.make nt2 0. in
      let shift14 = Array.make nt2 0. in
      for ti = 0 to ntypes - 1 do
        for tj = 0 to ntypes - 1 do
          let k = (ti * ntypes) + tj in
          let lj =
            Nonbonded.lorentz_berthelot topo.lj_types.(ti) topo.lj_types.(tj)
          in
          (match lj with
          | Nonbonded.Lennard_jones { epsilon; sigma } ->
              eps4.(k) <- 4. *. epsilon;
              eps24.(k) <- 24. *. epsilon;
              sig2.(k) <- sigma *. sigma
          | _ -> assert false);
          (* shift_at is pure, so hoisting it out of the pair loop keeps the
             exact bits the boxed path subtracts per pair. *)
          (match trunc with
          | Nonbonded.Shift -> shift.(k) <- Nonbonded.shift_at lj cutoff
          | _ -> ());
          shift14.(k) <- Nonbonded.shift_at lj cutoff
        done
      done;
      let q = Topology.charges topo in
      let cq = Array.map (fun qi -> Units.coulomb *. qi) q in
      let elec =
        match elec with
        | Pair_interactions.No_coulomb -> Ek_none
        | Pair_interactions.Cutoff_coulomb -> Ek_cutoff
        | Pair_interactions.Reaction_field { epsilon_rf } ->
            (* Same krf/crf arithmetic as Pair_interactions.of_topology. *)
            let k =
              (epsilon_rf -. 1.)
              /. ((2. *. epsilon_rf) +. 1.)
              /. (cutoff *. cutoff *. cutoff)
            in
            Ek_rf { krf = k; crf = (1. /. cutoff) +. (k *. cutoff *. cutoff) }
        | Pair_interactions.Ewald_real { beta } -> Ek_ewald { beta }
      in
      let np14 = Array.length topo.pairs14 in
      let p14i = Array.make np14 0 and p14j = Array.make np14 0 in
      Array.iteri
        (fun k (i, j) ->
          p14i.(k) <- i;
          p14j.(k) <- j)
        topo.pairs14;
      Some
        {
          cutoff;
          rc2 = cutoff *. cutoff;
          ntypes;
          type_of;
          eps4;
          eps24;
          sig2;
          shift;
          shift14;
          q;
          cq;
          elec;
          p14i;
          p14j;
          scale14_lj = topo.scale14_lj;
          scale14_coul = topo.scale14_coul;
        }

(* Same constant expression as Nonbonded.two_over_sqrt_pi (not exported). *)
let two_over_sqrt_pi = 2. /. sqrt Float.pi

(* ------------------------------------------------------------------ *)
(* Pair kernels: one specialized allocation-free loop per elec kind.   *)
(* ------------------------------------------------------------------ *)

(* Each loop body mirrors Pair_interactions.apply_pair + the evaluator:
   min_image via Pbc.mi1 components, norm2 left-associated, the r2 < rc2
   gate, LJ with the hoisted type-pair constants, the qq = 0 gate, then
   energy / force add-sub / virial in the boxed order. The literal [+. 0.]
   in the LJ-only path is the boxed [e_lj +. e_c] with e_c = 0 — do not
   "simplify" it away (it normalizes -0. exactly like the boxed path). *)

let pair_range_none pp (box : Pbc.t) (s : Soa.t) ~(is : int array)
    ~(js : int array) lo hi (sc : scratch) =
  let x = s.Soa.x and y = s.Soa.y and z = s.Soa.z in
  let fx = s.Soa.fx and fy = s.Soa.fy and fz = s.Soa.fz in
  let lx = box.Pbc.lx and ly = box.Pbc.ly and lz = box.Pbc.lz in
  let rc2 = pp.rc2 and ntypes = pp.ntypes in
  let type_of = pp.type_of in
  let eps4 = pp.eps4 and eps24 = pp.eps24 in
  let sig2 = pp.sig2 and shift = pp.shift in
  for k = lo to hi - 1 do
    let i = is.(k) and j = js.(k) in
    let dx0 = x.{i} -. x.{j} in
    let dy0 = y.{i} -. y.{j} in
    let dz0 = z.{i} -. z.{j} in
    let dx = dx0 -. (lx *. Float.round (dx0 /. lx)) in
    let dy = dy0 -. (ly *. Float.round (dy0 /. ly)) in
    let dz = dz0 -. (lz *. Float.round (dz0 /. lz)) in
    let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
    if r2 < rc2 then begin
      let tij = (type_of.(i) * ntypes) + type_of.(j) in
      let sr2 = sig2.(tij) /. r2 in
      let sr6 = sr2 *. sr2 *. sr2 in
      let sr12 = sr6 *. sr6 in
      let e_lj = (eps4.(tij) *. (sr12 -. sr6)) -. shift.(tij) in
      let f_lj = eps24.(tij) *. ((2. *. sr12) -. sr6) /. r2 in
      let e = e_lj +. 0. in
      let fr = f_lj +. 0. in
      sc.energy <- sc.energy +. e;
      let gx = fr *. dx and gy = fr *. dy and gz = fr *. dz in
      fx.{i} <- fx.{i} +. gx;
      fy.{i} <- fy.{i} +. gy;
      fz.{i} <- fz.{i} +. gz;
      fx.{j} <- fx.{j} -. gx;
      fy.{j} <- fy.{j} -. gy;
      fz.{j} <- fz.{j} -. gz;
      sc.virial <- sc.virial +. ((gx *. dx) +. (gy *. dy) +. (gz *. dz))
    end
  done

let pair_range_cutoff pp (box : Pbc.t) (s : Soa.t) ~(is : int array)
    ~(js : int array) lo hi (sc : scratch) =
  let x = s.Soa.x and y = s.Soa.y and z = s.Soa.z in
  let fx = s.Soa.fx and fy = s.Soa.fy and fz = s.Soa.fz in
  let lx = box.Pbc.lx and ly = box.Pbc.ly and lz = box.Pbc.lz in
  let rc2 = pp.rc2 and ntypes = pp.ntypes and cutoff = pp.cutoff in
  let type_of = pp.type_of in
  let eps4 = pp.eps4 and eps24 = pp.eps24 in
  let sig2 = pp.sig2 and shift = pp.shift in
  let q = pp.q and cq = pp.cq in
  for k = lo to hi - 1 do
    let i = is.(k) and j = js.(k) in
    let dx0 = x.{i} -. x.{j} in
    let dy0 = y.{i} -. y.{j} in
    let dz0 = z.{i} -. z.{j} in
    let dx = dx0 -. (lx *. Float.round (dx0 /. lx)) in
    let dy = dy0 -. (ly *. Float.round (dy0 /. ly)) in
    let dz = dz0 -. (lz *. Float.round (dz0 /. lz)) in
    let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
    if r2 < rc2 then begin
      let tij = (type_of.(i) * ntypes) + type_of.(j) in
      let sr2 = sig2.(tij) /. r2 in
      let sr6 = sr2 *. sr2 *. sr2 in
      let sr12 = sr6 *. sr6 in
      let e_lj = (eps4.(tij) *. (sr12 -. sr6)) -. shift.(tij) in
      let f_lj = eps24.(tij) *. ((2. *. sr12) -. sr6) /. r2 in
      let qq = cq.(i) *. q.(j) in
      let r = sqrt r2 in
      let e_c = if qq = 0. then 0. else (qq /. r) -. (qq /. cutoff) in
      let f_c = if qq = 0. then 0. else qq /. (r2 *. r) in
      let e = e_lj +. e_c in
      let fr = f_lj +. f_c in
      sc.energy <- sc.energy +. e;
      let gx = fr *. dx and gy = fr *. dy and gz = fr *. dz in
      fx.{i} <- fx.{i} +. gx;
      fy.{i} <- fy.{i} +. gy;
      fz.{i} <- fz.{i} +. gz;
      fx.{j} <- fx.{j} -. gx;
      fy.{j} <- fy.{j} -. gy;
      fz.{j} <- fz.{j} -. gz;
      sc.virial <- sc.virial +. ((gx *. dx) +. (gy *. dy) +. (gz *. dz))
    end
  done

let pair_range_rf pp ~krf ~crf (box : Pbc.t) (s : Soa.t) ~(is : int array)
    ~(js : int array) lo hi (sc : scratch) =
  let x = s.Soa.x and y = s.Soa.y and z = s.Soa.z in
  let fx = s.Soa.fx and fy = s.Soa.fy and fz = s.Soa.fz in
  let lx = box.Pbc.lx and ly = box.Pbc.ly and lz = box.Pbc.lz in
  let rc2 = pp.rc2 and ntypes = pp.ntypes in
  let type_of = pp.type_of in
  let eps4 = pp.eps4 and eps24 = pp.eps24 in
  let sig2 = pp.sig2 and shift = pp.shift in
  let q = pp.q and cq = pp.cq in
  for k = lo to hi - 1 do
    let i = is.(k) and j = js.(k) in
    let dx0 = x.{i} -. x.{j} in
    let dy0 = y.{i} -. y.{j} in
    let dz0 = z.{i} -. z.{j} in
    let dx = dx0 -. (lx *. Float.round (dx0 /. lx)) in
    let dy = dy0 -. (ly *. Float.round (dy0 /. ly)) in
    let dz = dz0 -. (lz *. Float.round (dz0 /. lz)) in
    let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
    if r2 < rc2 then begin
      let tij = (type_of.(i) * ntypes) + type_of.(j) in
      let sr2 = sig2.(tij) /. r2 in
      let sr6 = sr2 *. sr2 *. sr2 in
      let sr12 = sr6 *. sr6 in
      let e_lj = (eps4.(tij) *. (sr12 -. sr6)) -. shift.(tij) in
      let f_lj = eps24.(tij) *. ((2. *. sr12) -. sr6) /. r2 in
      let qq = cq.(i) *. q.(j) in
      let r = sqrt r2 in
      let e_c =
        if qq = 0. then 0.
        else (qq /. r) +. (qq *. krf *. r2) -. (qq *. crf)
      in
      let f_c =
        if qq = 0. then 0. else (qq /. (r2 *. r)) -. (2. *. qq *. krf)
      in
      let e = e_lj +. e_c in
      let fr = f_lj +. f_c in
      sc.energy <- sc.energy +. e;
      let gx = fr *. dx and gy = fr *. dy and gz = fr *. dz in
      fx.{i} <- fx.{i} +. gx;
      fy.{i} <- fy.{i} +. gy;
      fz.{i} <- fz.{i} +. gz;
      fx.{j} <- fx.{j} -. gx;
      fy.{j} <- fy.{j} -. gy;
      fz.{j} <- fz.{j} -. gz;
      sc.virial <- sc.virial +. ((gx *. dx) +. (gy *. dy) +. (gz *. dz))
    end
  done

let pair_range_ewald pp ~beta (box : Pbc.t) (s : Soa.t) ~(is : int array)
    ~(js : int array) lo hi (sc : scratch) =
  let x = s.Soa.x and y = s.Soa.y and z = s.Soa.z in
  let fx = s.Soa.fx and fy = s.Soa.fy and fz = s.Soa.fz in
  let lx = box.Pbc.lx and ly = box.Pbc.ly and lz = box.Pbc.lz in
  let rc2 = pp.rc2 and ntypes = pp.ntypes in
  let type_of = pp.type_of in
  let eps4 = pp.eps4 and eps24 = pp.eps24 in
  let sig2 = pp.sig2 and shift = pp.shift in
  let q = pp.q and cq = pp.cq in
  for k = lo to hi - 1 do
    let i = is.(k) and j = js.(k) in
    let dx0 = x.{i} -. x.{j} in
    let dy0 = y.{i} -. y.{j} in
    let dz0 = z.{i} -. z.{j} in
    let dx = dx0 -. (lx *. Float.round (dx0 /. lx)) in
    let dy = dy0 -. (ly *. Float.round (dy0 /. ly)) in
    let dz = dz0 -. (lz *. Float.round (dz0 /. lz)) in
    let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
    if r2 < rc2 then begin
      let tij = (type_of.(i) * ntypes) + type_of.(j) in
      let sr2 = sig2.(tij) /. r2 in
      let sr6 = sr2 *. sr2 *. sr2 in
      let sr12 = sr6 *. sr6 in
      let e_lj = (eps4.(tij) *. (sr12 -. sr6)) -. shift.(tij) in
      let f_lj = eps24.(tij) *. ((2. *. sr12) -. sr6) /. r2 in
      let qq = cq.(i) *. q.(j) in
      let r = sqrt r2 in
      let erfc_br = Specfun.erfc (beta *. r) in
      let gauss = two_over_sqrt_pi *. beta *. exp (-.beta *. beta *. r2) in
      let e_c = if qq = 0. then 0. else qq *. erfc_br /. r in
      let f_c =
        if qq = 0. then 0. else qq *. ((erfc_br /. r) +. gauss) /. r2
      in
      let e = e_lj +. e_c in
      let fr = f_lj +. f_c in
      sc.energy <- sc.energy +. e;
      let gx = fr *. dx and gy = fr *. dy and gz = fr *. dz in
      fx.{i} <- fx.{i} +. gx;
      fy.{i} <- fy.{i} +. gy;
      fz.{i} <- fz.{i} +. gz;
      fx.{j} <- fx.{j} -. gx;
      fy.{j} <- fy.{j} -. gy;
      fz.{j} <- fz.{j} -. gz;
      sc.virial <- sc.virial +. ((gx *. dx) +. (gy *. dy) +. (gz *. dz))
    end
  done

let pair_range pp box s ~is ~js lo hi sc =
  match pp.elec with
  | Ek_none -> pair_range_none pp box s ~is ~js lo hi sc
  | Ek_cutoff -> pair_range_cutoff pp box s ~is ~js lo hi sc
  | Ek_rf { krf; crf } -> pair_range_rf pp ~krf ~crf box s ~is ~js lo hi sc
  | Ek_ewald { beta } -> pair_range_ewald pp ~beta box s ~is ~js lo hi sc

(* ------------------------------------------------------------------ *)
(* 1-4 pairs: Shift-truncated LJ + cutoff Coulomb, both scaled.        *)
(* ------------------------------------------------------------------ *)

let pairs14_count pp = Array.length pp.p14i

let pairs14_active pp =
  pairs14_count pp > 0 && not (pp.scale14_lj <= 0. && pp.scale14_coul <= 0.)

let pairs14_range pp (box : Pbc.t) (s : Soa.t) lo hi (sc : scratch) =
  let x = s.Soa.x and y = s.Soa.y and z = s.Soa.z in
  let fx = s.Soa.fx and fy = s.Soa.fy and fz = s.Soa.fz in
  let lx = box.Pbc.lx and ly = box.Pbc.ly and lz = box.Pbc.lz in
  let rc2 = pp.rc2 and ntypes = pp.ntypes and cutoff = pp.cutoff in
  let type_of = pp.type_of in
  let eps4 = pp.eps4 and eps24 = pp.eps24 in
  let sig2 = pp.sig2 and shift14 = pp.shift14 in
  let q = pp.q and cq = pp.cq in
  let s14l = pp.scale14_lj and s14c = pp.scale14_coul in
  let p14i = pp.p14i and p14j = pp.p14j in
  for k = lo to hi - 1 do
    let i = p14i.(k) and j = p14j.(k) in
    let dx0 = x.{i} -. x.{j} in
    let dy0 = y.{i} -. y.{j} in
    let dz0 = z.{i} -. z.{j} in
    let dx = dx0 -. (lx *. Float.round (dx0 /. lx)) in
    let dy = dy0 -. (ly *. Float.round (dy0 /. ly)) in
    let dz = dz0 -. (lz *. Float.round (dz0 /. lz)) in
    let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
    if r2 < rc2 then begin
      let tij = (type_of.(i) * ntypes) + type_of.(j) in
      let sr2 = sig2.(tij) /. r2 in
      let sr6 = sr2 *. sr2 *. sr2 in
      let sr12 = sr6 *. sr6 in
      let e_lj = (eps4.(tij) *. (sr12 -. sr6)) -. shift14.(tij) in
      let f_lj = eps24.(tij) *. ((2. *. sr12) -. sr6) /. r2 in
      let qq = (cq.(i) *. q.(j)) *. s14c in
      let r = sqrt r2 in
      let e_c = if qq = 0. then 0. else (qq /. r) -. (qq /. cutoff) in
      let f_c = if qq = 0. then 0. else qq /. (r2 *. r) in
      let e = (s14l *. e_lj) +. e_c in
      let fr = (s14l *. f_lj) +. f_c in
      sc.energy <- sc.energy +. e;
      let gx = fr *. dx and gy = fr *. dy and gz = fr *. dz in
      fx.{i} <- fx.{i} +. gx;
      fy.{i} <- fy.{i} +. gy;
      fz.{i} <- fz.{i} +. gz;
      fx.{j} <- fx.{j} -. gx;
      fy.{j} <- fy.{j} -. gy;
      fz.{j} <- fz.{j} -. gz;
      sc.virial <- sc.virial +. ((gx *. dx) +. (gy *. dy) +. (gz *. dz))
    end
  done

(* ------------------------------------------------------------------ *)
(* Bonded terms over flat columns (mirrors of Bonded.*_range).         *)
(* ------------------------------------------------------------------ *)

(* The bonded kernels use Vec3 internally exactly like Bonded does — they
   are not allocation-gated (term counts are tiny next to the pair list) and
   reusing the Vec3/Pbc ops verbatim is what guarantees the bitwise match.
   Only the loads and the force stores go through the flat columns. *)

let bonds_range (box : Pbc.t) (topo : Topology.t) (s : Soa.t) lo hi
    (sc : scratch) =
  let x = s.Soa.x and y = s.Soa.y and z = s.Soa.z in
  let fx = s.Soa.fx and fy = s.Soa.fy and fz = s.Soa.fz in
  for t = lo to hi - 1 do
    let b = topo.bonds.(t) in
    let i = b.Topology.i and j = b.Topology.j in
    let pi = Vec3.make x.{i} y.{i} z.{i} in
    let pj = Vec3.make x.{j} y.{j} z.{j} in
    let d = Pbc.min_image box pi pj in
    let r = Vec3.norm d in
    let dr = r -. b.Topology.r0 in
    sc.energy <- sc.energy +. (b.Topology.k *. dr *. dr);
    let fmag = -2. *. b.Topology.k *. dr /. r in
    let f = Vec3.scale fmag d in
    fx.{i} <- fx.{i} +. f.Vec3.x;
    fy.{i} <- fy.{i} +. f.Vec3.y;
    fz.{i} <- fz.{i} +. f.Vec3.z;
    let nf = Vec3.neg f in
    fx.{j} <- fx.{j} +. nf.Vec3.x;
    fy.{j} <- fy.{j} +. nf.Vec3.y;
    fz.{j} <- fz.{j} +. nf.Vec3.z;
    sc.virial <- sc.virial +. Vec3.dot f d
  done

let angles_range (box : Pbc.t) (topo : Topology.t) (s : Soa.t) lo hi
    (sc : scratch) =
  let x = s.Soa.x and y = s.Soa.y and z = s.Soa.z in
  let fx = s.Soa.fx and fy = s.Soa.fy and fz = s.Soa.fz in
  let add i (f : Vec3.t) =
    fx.{i} <- fx.{i} +. f.Vec3.x;
    fy.{i} <- fy.{i} +. f.Vec3.y;
    fz.{i} <- fz.{i} +. f.Vec3.z
  in
  for t = lo to hi - 1 do
    let a = topo.angles.(t) in
    let ai = a.Topology.i and aj = a.Topology.j and ak = a.Topology.k in
    let pi = Vec3.make x.{ai} y.{ai} z.{ai} in
    let pj = Vec3.make x.{aj} y.{aj} z.{aj} in
    let pk = Vec3.make x.{ak} y.{ak} z.{ak} in
    let rij = Pbc.min_image box pi pj in
    let rkj = Pbc.min_image box pk pj in
    let nij = Vec3.norm rij and nkj = Vec3.norm rkj in
    let cos_t =
      Float.max (-1.) (Float.min 1. (Vec3.dot rij rkj /. (nij *. nkj)))
    in
    let theta = acos cos_t in
    let dtheta = theta -. a.Topology.theta0 in
    sc.energy <- sc.energy +. (a.Topology.k_theta *. dtheta *. dtheta);
    let du_dtheta = 2. *. a.Topology.k_theta *. dtheta in
    let sin_t = Float.max 1e-8 (sqrt (1. -. (cos_t *. cos_t))) in
    let coeff = du_dtheta /. sin_t in
    let fi =
      Vec3.scale (coeff /. nij)
        (Vec3.sub (Vec3.scale (1. /. nkj) rkj) (Vec3.scale (cos_t /. nij) rij))
    in
    let fk =
      Vec3.scale (coeff /. nkj)
        (Vec3.sub (Vec3.scale (1. /. nij) rij) (Vec3.scale (cos_t /. nkj) rkj))
    in
    let fj = Vec3.neg (Vec3.add fi fk) in
    add ai fi;
    add aj fj;
    add ak fk;
    sc.virial <- sc.virial +. Vec3.dot fi rij +. Vec3.dot fk rkj
  done

(* Blondel-Karplus torsion gradients, mirroring Bonded.torsion. *)
let torsion (box : Pbc.t) x y z fx fy fz ~i ~j ~k ~l ~du_dphi_of
    (sc : scratch) =
  let add a (f : Vec3.t) =
    Bigarray.Array1.set fx a (Bigarray.Array1.get fx a +. f.Vec3.x);
    Bigarray.Array1.set fy a (Bigarray.Array1.get fy a +. f.Vec3.y);
    Bigarray.Array1.set fz a (Bigarray.Array1.get fz a +. f.Vec3.z)
  in
  let pos a = Vec3.make (Bigarray.Array1.get x a) (Bigarray.Array1.get y a)
      (Bigarray.Array1.get z a)
  in
  let pi = pos i and pj = pos j and pk = pos k and pl = pos l in
  let b1 = Pbc.min_image box pj pi in
  let b2 = Pbc.min_image box pk pj in
  let b3 = Pbc.min_image box pl pk in
  let n1 = Vec3.cross b1 b2 in
  let n2 = Vec3.cross b2 b3 in
  let n1n = Vec3.norm n1 and n2n = Vec3.norm n2 in
  if n1n <= 1e-10 || n2n <= 1e-10 then ()
  else begin
    let b2n = Vec3.norm b2 in
    let m1 = Vec3.cross n1 (Vec3.scale (1. /. b2n) b2) in
    let xc = Vec3.dot n1 n2 /. (n1n *. n2n) in
    let yc = Vec3.dot m1 n2 /. (n1n *. n2n) in
    let phi = atan2 yc xc in
    let du_dphi = du_dphi_of phi in
    let fi = Vec3.scale (-.du_dphi *. b2n /. (n1n *. n1n)) n1 in
    let fl = Vec3.scale (du_dphi *. b2n /. (n2n *. n2n)) n2 in
    let p = -.(Vec3.dot b1 b2) /. (b2n *. b2n) in
    let q = -.(Vec3.dot b3 b2) /. (b2n *. b2n) in
    let sv = Vec3.sub (Vec3.scale p fi) (Vec3.scale q fl) in
    let fj = Vec3.sub sv fi in
    let fk = Vec3.neg (Vec3.add sv fl) in
    add i fi;
    add j fj;
    add k fk;
    add l fl;
    let rij = Vec3.neg b1 in
    let rkj = b2 in
    let rlj = Vec3.add b2 b3 in
    sc.virial <-
      sc.virial +. Vec3.dot fi rij +. Vec3.dot fk rkj +. Vec3.dot fl rlj
  end

let dihedrals_range (box : Pbc.t) (topo : Topology.t) (s : Soa.t) lo hi
    (sc : scratch) =
  let x = s.Soa.x and y = s.Soa.y and z = s.Soa.z in
  let fx = s.Soa.fx and fy = s.Soa.fy and fz = s.Soa.fz in
  for t = lo to hi - 1 do
    let d = topo.dihedrals.(t) in
    torsion box x y z fx fy fz ~i:d.Topology.i ~j:d.Topology.j
      ~k:d.Topology.k ~l:d.Topology.l sc ~du_dphi_of:(fun phi ->
        let arg = (float_of_int d.Topology.mult *. phi) -. d.Topology.phase in
        sc.energy <- sc.energy +. (d.Topology.k_phi *. (1. +. cos arg));
        -.d.Topology.k_phi *. float_of_int d.Topology.mult *. sin arg)
  done

(* Same wrap as Bonded.wrap_angle (module-internal there). *)
let wrap_angle v =
  let two_pi = 2. *. Float.pi in
  let v = Float.rem v two_pi in
  if v > Float.pi then v -. two_pi
  else if v <= -.Float.pi then v +. two_pi
  else v

let impropers_range (box : Pbc.t) (topo : Topology.t) (s : Soa.t) lo hi
    (sc : scratch) =
  let x = s.Soa.x and y = s.Soa.y and z = s.Soa.z in
  let fx = s.Soa.fx and fy = s.Soa.fy and fz = s.Soa.fz in
  for t = lo to hi - 1 do
    let im = topo.impropers.(t) in
    torsion box x y z fx fy fz ~i:im.Topology.ii ~j:im.Topology.ij
      ~k:im.Topology.ik ~l:im.Topology.il sc ~du_dphi_of:(fun phi ->
        let dxi = wrap_angle (phi -. im.Topology.xi0) in
        sc.energy <- sc.energy +. (im.Topology.k_xi *. dxi *. dxi);
        2. *. im.Topology.k_xi *. dxi)
  done

(* ------------------------------------------------------------------ *)
(* Deterministic slot reduction (mirror of Bonded.reduce_slots).       *)
(* ------------------------------------------------------------------ *)

(* Fixed-shape pairwise tree over one column, per atom — the same shape as
   Bonded.tree_force applied componentwise. *)
let rec tree_col (cols : Soa.fa array) i lo hi =
  if hi - lo = 1 then cols.(lo).{i}
  else begin
    let mid = lo + ((hi - lo) / 2) in
    tree_col cols i lo mid +. tree_col cols i mid hi
  end

let reduce_slots ~exec ?(reads = []) ~(into : Soa.t)
    ~(slot_fx : Soa.fa array) ~(slot_fy : Soa.fa array)
    ~(slot_fz : Soa.fa array) ~(slot_virial : float array) (sc : scratch) =
  let nslots = Array.length slot_fx in
  let ifx = into.Soa.fx and ify = into.Soa.fy and ifz = into.Soa.fz in
  let n = into.Soa.n in
  if nslots = 1 && not (Exec.sanitizing exec) then begin
    let sx = slot_fx.(0) and sy = slot_fy.(0) and sz = slot_fz.(0) in
    for i = 0 to n - 1 do
      ifx.{i} <- ifx.{i} +. sx.{i};
      ify.{i} <- ify.{i} +. sy.{i};
      ifz.{i} <- ifz.{i} +. sz.{i}
    done;
    sc.virial <- sc.virial +. slot_virial.(0)
  end
  else if nslots >= 1 then begin
    let bounds = Exec.tile_bounds ~total:n ~ntiles:(Exec.n_slots exec) in
    Exec.parallel_run ~phase:"soa.reduce" exec (fun s ->
        let lo, hi = bounds.(s) in
        (* Writes the shared flat force columns (a read-modify-write of the
           slot's own atom tile) after reading every slot's partials. *)
        Exec.declare_write ~slot:s ~resource:"soa.reduce" ~total:n ~lo ~hi
          exec;
        Exec.declare_read ~slot:s ~resource:"soa.reduce" ~total:n ~lo ~hi
          exec;
        List.iter
          (fun (resource, total) ->
            Exec.declare_read ~slot:s ~resource ~lo:0 ~hi:total exec)
          reads;
        for i = lo to hi - 1 do
          ifx.{i} <- ifx.{i} +. tree_col slot_fx i 0 nslots;
          ify.{i} <- ify.{i} +. tree_col slot_fy i 0 nslots;
          ifz.{i} <- ifz.{i} +. tree_col slot_fz i 0 nslots
        done);
    sc.virial <- sc.virial +. Exec.sum_tree slot_virial
  end
