(** Holonomic distance constraints: SHAKE (positions) and RATTLE
    (velocities).

    Constraints come from the topology (rigid waters, fixed X–H bonds),
    fused into atom-disjoint clusters ({!Mdsp_ff.Topology.constraint_clusters})
    and colored into independent batches with {!Mdsp_util.Coloring} — the
    same decomposition the {!Mdsp_verify.Schedule} certifier proves
    race-free. Each cluster is solved by Gauss–Seidel iteration to its own
    convergence; clusters within one batch share no atoms, so a batch tiles
    over the {!Mdsp_util.Exec} pool with a barrier between batches, and the
    parallel sweep is bitwise identical to the serial one. *)

open Mdsp_util

type t

(** [create topo ~tol ~max_iter] prepares the constraint solver: clusters
    fused, interference graph colored into batches. [tol] is the relative
    tolerance on squared distances (default 1e-8); [max_iter] defaults to
    200. *)
val create : ?tol:float -> ?max_iter:int -> Mdsp_ff.Topology.t -> t

(** No constraints at all (cheap no-op solver). *)
val none : t

val count : t -> int
val n_clusters : t -> int

(** Number of independent batches (colors); 0 without constraints, 1 when
    clusters are atom-disjoint, as fusion guarantees. *)
val n_batches : t -> int

(** Largest cluster, in constraints. *)
val max_cluster_size : t -> int

(** Carried by {!Unconverged}: which cluster failed, after how many
    iterations, and how badly its constraints are still violated. *)
type unconverged = {
  uc_solver : string;  (** ["SHAKE"] or ["RATTLE"] *)
  uc_cluster : int;  (** cluster id, topology order *)
  uc_first_constraint : int;  (** smallest constraint index in the cluster *)
  uc_iters : int;
  uc_max_violation : float;  (** max |r² − d²| / d² over the cluster *)
}

(** Raised when a cluster's iteration fails to converge within [max_iter].
    Structured so the engine and CLI can report the offending cluster with
    workload context instead of a bare message. *)
exception Unconverged of unconverged

(** One-line rendering of an {!unconverged} payload (also registered as the
    exception printer). *)
val unconverged_message : unconverged -> string

(** [shake t box ~prev positions] adjusts [positions] so all constraints
    hold, applying displacements inversely weighted by mass along the
    constraint direction of the *previous* (pre-step) geometry [prev].
    [exec] (default serial) tiles each batch over the pool — bitwise
    identical to the serial sweep at any slot count, with declared
    [cons.prev]/[cons.pos] read/write sets under phase
    ["constraints.shake"]. Raises {!Unconverged} if a cluster does not
    converge. *)
val shake :
  ?exec:Exec.t ->
  t ->
  Pbc.t ->
  prev:Vec3.t array ->
  Vec3.t array ->
  masses:float array ->
  unit

(** [rattle t box positions velocities] projects velocity components along
    the constraint directions out of [velocities]; phase
    ["constraints.rattle"], reads [cons.pos], read-modify-writes
    [cons.vel]. *)
val rattle :
  ?exec:Exec.t ->
  t ->
  Pbc.t ->
  Vec3.t array ->
  Vec3.t array ->
  masses:float array ->
  unit

(** Maximum relative violation max |r^2 - d^2| / d^2 over constraints. *)
val max_violation : t -> Pbc.t -> Vec3.t array -> float
