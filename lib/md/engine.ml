open Mdsp_util

type thermostat =
  | No_thermostat
  | Langevin of { gamma_fs : float }
  | Berendsen of { tau_fs : float }
  | Nose_hoover of { tau_fs : float }

type barostat =
  | No_barostat
  | Berendsen_baro of { tau_fs : float; pressure_atm : float }
  | Monte_carlo_baro of {
      interval : int;
      pressure_atm : float;
      max_dlnv : float;
    }

type config = {
  dt_fs : float;
  temperature : float;
  thermostat : thermostat;
  barostat : barostat;
  respa_inner : int option;
  remove_com_interval : int;
}

let default_config =
  {
    dt_fs = 1.0;
    temperature = 300.;
    thermostat = No_thermostat;
    barostat = No_barostat;
    respa_inner = None;
    remove_com_interval = 0;
  }

(* Nosé–Hoover chain of length 2 (velocities of the chain variables). *)
type nhc = { mutable v1 : float; mutable v2 : float; q1 : float; q2 : float }

type t = {
  topo : Mdsp_ff.Topology.t;
  fc : Force_calc.t;
  st : State.t;
  mutable cfg : config;
  cons : Constraints.t;
  vsites : Virtual_sites.t;
  acc : Mdsp_ff.Bonded.accum;
  fast_acc : Mdsp_ff.Bonded.accum; (* RESPA fast-force accumulator *)
  prev_positions : Vec3.t array; (* scratch for SHAKE *)
  mutable energies : Force_calc.energies;
  rng : Rng.t;
  dof : int;
  mutable nsteps : int;
  mutable nhc : nhc option;
  mutable hooks : (string * (t -> unit)) list;
  mutable mc_baro_accept : int;
  mutable mc_baro_try : int;
  mutable serial_integrator : bool;
  mutable serial_constraints : bool;
}

let now () = Unix.gettimeofday ()

let make_nhc ~dof ~temperature ~tau =
  let kt = Units.kt temperature in
  let q1 = float_of_int dof *. kt *. tau *. tau in
  let q2 = kt *. tau *. tau in
  { v1 = 0.; v2 = 0.; q1; q2 }

let create ?(seed = 7) topo fc st cfg =
  let n = State.n st in
  let dof = Mdsp_ff.Topology.dof topo in
  let t =
    {
      topo;
      fc;
      st;
      cfg;
      cons = Constraints.create topo;
      vsites = Virtual_sites.create topo;
      acc = Mdsp_ff.Bonded.make_accum n;
      fast_acc = Mdsp_ff.Bonded.make_accum n;
      prev_positions = Array.make n Vec3.zero;
      energies = Force_calc.zero_energies;
      rng = Rng.create seed;
      dof;
      nsteps = 0;
      nhc = None;
      hooks = [];
      mc_baro_accept = 0;
      mc_baro_try = 0;
      serial_integrator = false;
      serial_constraints = false;
    }
  in
  (match cfg.thermostat with
  | Nose_hoover { tau_fs } ->
      t.nhc <-
        Some
          (make_nhc ~dof ~temperature:cfg.temperature ~tau:(Units.fs tau_fs))
  | _ -> ());
  Virtual_sites.zero_velocities t.vsites st.State.velocities;
  Virtual_sites.place t.vsites st.State.box st.State.positions;
  t.energies <- Force_calc.compute fc st.State.box st.State.positions t.acc;
  Virtual_sites.spread_forces t.vsites t.acc;
  t

let state t = t.st
let force_calc t = t.fc
let set_serial_integrator t b = t.serial_integrator <- b
let set_serial_constraints t b = t.serial_constraints <- b
let timings t = Force_calc.timings t.fc
let reset_timings t = Force_calc.reset_timings t.fc
let soa_active t = Force_calc.soa_active t.fc
let config t = t.cfg
let rng t = t.rng
let steps_done t = t.nsteps
let energies t = t.energies
let potential_energy t = Force_calc.total t.energies
let kinetic_energy t = State.kinetic_energy t.st
let total_energy t = potential_energy t +. kinetic_energy t
let temperature t = State.temperature t.st ~dof:t.dof
let dof t = t.dof
let constraints t = t.cons

let pressure_atm t =
  let v = Pbc.volume t.st.State.box in
  let p = ((2. *. kinetic_energy t) +. t.acc.virial) /. (3. *. v) in
  Units.pressure_to_atm p

let set_temperature t temp =
  t.cfg <- { t.cfg with temperature = temp };
  match t.nhc with
  | Some _ ->
      (match t.cfg.thermostat with
      | Nose_hoover { tau_fs } ->
          t.nhc <-
            Some (make_nhc ~dof:t.dof ~temperature:temp ~tau:(Units.fs tau_fs))
      | _ -> ())
  | None -> ()

let refresh_forces t =
  Virtual_sites.place t.vsites t.st.State.box t.st.State.positions;
  t.energies <-
    Force_calc.compute t.fc t.st.State.box t.st.State.positions t.acc;
  Virtual_sites.spread_forces t.vsites t.acc

(* --- snapshot / restore --- *)

type snapshot = {
  snap_state : State.t;
  snap_steps : int;
  snap_temperature : float;
  snap_rng : Rng.snapshot;
  snap_nhc : (float * float) option;
  snap_mc_baro : int * int;
  snap_energies : Force_calc.energies;
  snap_forces : Vec3.t array;
  snap_virial : float;
  snap_nlist_box : Pbc.t;
  snap_nlist_ref : Vec3.t array;
}

let snapshot t =
  let nlist = Force_calc.nlist t.fc in
  {
    snap_state = State.copy t.st;
    snap_steps = t.nsteps;
    snap_temperature = t.cfg.temperature;
    snap_rng = Rng.snapshot t.rng;
    snap_nhc = Option.map (fun c -> (c.v1, c.v2)) t.nhc;
    snap_mc_baro = (t.mc_baro_accept, t.mc_baro_try);
    snap_energies = t.energies;
    snap_forces = Array.copy t.acc.Mdsp_ff.Bonded.forces;
    snap_virial = t.acc.Mdsp_ff.Bonded.virial;
    snap_nlist_box = Mdsp_space.Neighbor_list.box nlist;
    snap_nlist_ref = Mdsp_space.Neighbor_list.ref_positions nlist;
  }

let restore t s =
  let n = State.n t.st in
  if State.n s.snap_state <> n then
    invalid_arg "Engine.restore: snapshot atom count mismatch";
  State.blit ~src:s.snap_state ~dst:t.st;
  t.nsteps <- s.snap_steps;
  set_temperature t s.snap_temperature;
  (match (t.nhc, s.snap_nhc) with
  | Some c, Some (v1, v2) ->
      c.v1 <- v1;
      c.v2 <- v2
  | _ -> ());
  let acc, tries = s.snap_mc_baro in
  t.mc_baro_accept <- acc;
  t.mc_baro_try <- tries;
  Rng.restore t.rng s.snap_rng;
  (* Rebuild the neighbor list from the snapshot's reference positions so
     the pair list (content and iteration order) and the skin displacement
     tracking match the interrupted run, then reinstate the forces that were
     in flight instead of recomputing them — the first half-kick after a
     restore must use exactly the forces the uninterrupted run would. *)
  ignore
    (Mdsp_space.Neighbor_list.rebuild ~box:s.snap_nlist_box
       (Force_calc.nlist t.fc) s.snap_nlist_ref);
  Array.blit s.snap_forces 0 t.acc.Mdsp_ff.Bonded.forces 0 n;
  t.acc.Mdsp_ff.Bonded.virial <- s.snap_virial;
  t.energies <- s.snap_energies

let add_post_step t ~name fn = t.hooks <- t.hooks @ [ (name, fn) ]

let remove_post_step t name =
  let before = List.length t.hooks in
  t.hooks <- List.filter (fun (n, _) -> n <> name) t.hooks;
  List.length t.hooks < before

(* --- thermostat pieces --- *)

(* Half-step Nosé–Hoover chain update; returns velocity scale factor. *)
let nhc_half t dt =
  match t.nhc with
  | None -> 1.
  | Some c ->
      let kt = Units.kt t.cfg.temperature in
      let ndf = float_of_int t.dof in
      let ke2 = 2. *. kinetic_energy t in
      let g2 = ((c.q1 *. c.v1 *. c.v1) -. kt) /. c.q2 in
      c.v2 <- c.v2 +. (g2 *. dt /. 4.);
      c.v1 <- c.v1 *. exp (-.c.v2 *. dt /. 8.);
      let g1 = (ke2 -. (ndf *. kt)) /. c.q1 in
      c.v1 <- c.v1 +. (g1 *. dt /. 4.);
      c.v1 <- c.v1 *. exp (-.c.v2 *. dt /. 8.);
      let s = exp (-.c.v1 *. dt /. 2.) in
      (* Rebuild the chain forces with the scaled kinetic energy. *)
      let ke2' = ke2 *. s *. s in
      c.v1 <- c.v1 *. exp (-.c.v2 *. dt /. 8.);
      let g1' = (ke2' -. (ndf *. kt)) /. c.q1 in
      c.v1 <- c.v1 +. (g1' *. dt /. 4.);
      c.v1 <- c.v1 *. exp (-.c.v2 *. dt /. 8.);
      let g2' = ((c.q1 *. c.v1 *. c.v1) -. kt) /. c.q2 in
      c.v2 <- c.v2 +. (g2' *. dt /. 4.);
      s

let berendsen_scale t dt tau =
  let temp = temperature t in
  if temp <= 0. then 1.
  else sqrt (1. +. (dt /. tau *. ((t.cfg.temperature /. temp) -. 1.)))

(* The thermostat and constraint sweeps run on whichever executor the
   engine's force calc carries, unless [serial_constraints] forces the
   serial reference loops — the switch the bitwise-identity tests flip. *)
let constraints_exec t =
  if t.serial_constraints then Exec.serial else Force_calc.exec t.fc

(* Ornstein–Uhlenbeck velocity update (the O in BAOAB). The engine RNG
   yields one key per step; atom i draws its noise from child stream i of
   that key, so the sweep is a per-atom-independent map — order- and
   tiling-invariant, hence bitwise identical serial vs. any slot count. *)
let langevin_o t gamma dt =
  let t0 = now () in
  let c1 = exp (-.gamma *. dt) in
  let kt = Units.kt t.cfg.temperature in
  let v = t.st.State.velocities and m = t.st.State.masses in
  let n = State.n t.st in
  let key = Rng.split_key t.rng in
  let body lo hi =
    for i = lo to hi - 1 do
      if not (Virtual_sites.is_site t.vsites i) then begin
        let c2 = sqrt (kt /. m.(i) *. (1. -. (c1 *. c1))) in
        v.(i) <-
          Vec3.add (Vec3.scale c1 v.(i))
            (Vec3.scale c2 (Rng.gaussian_vec (Rng.derive key i)))
      end
    done
  in
  let exec = constraints_exec t in
  if Exec.n_slots exec = 1 && not (Exec.sanitizing exec) then body 0 n
  else begin
    let tiles = Exec.tile_bounds ~total:n ~ntiles:(Exec.n_slots exec) in
    Exec.parallel_run ~phase:"thermo.langevin" exec (fun s ->
        let lo, hi = tiles.(s) in
        Exec.declare_read ~slot:s ~resource:"state.velocities" ~lo ~hi exec;
        Exec.declare_write ~slot:s ~resource:"state.velocities" ~total:n ~lo
          ~hi exec;
        body lo hi)
  end;
  Force_calc.add_thermostat_s t.fc (now () -. t0)

(* Velocity rescale (NH chain, Berendsen) as a tiled parallel sweep; the
   scalar factor comes from a serial reduction beforehand, so the sweep
   itself is a pure per-atom map. A factor of exactly 1 is the thermostat
   saying "no-op"; skipping it is bitwise-neutral (v *. 1.0 = v). *)
let thermo_scale t s =
  if s <> 1. then begin
    let t0 = now () in
    let v = t.st.State.velocities in
    let n = State.n t.st in
    let exec = constraints_exec t in
    if Exec.n_slots exec = 1 && not (Exec.sanitizing exec) then
      State.scale_velocities t.st s
    else begin
      let tiles = Exec.tile_bounds ~total:n ~ntiles:(Exec.n_slots exec) in
      Exec.parallel_run ~phase:"thermo.scale" exec (fun sl ->
          let lo, hi = tiles.(sl) in
          Exec.declare_read ~slot:sl ~resource:"state.velocities" ~lo ~hi exec;
          Exec.declare_write ~slot:sl ~resource:"state.velocities" ~total:n
            ~lo ~hi exec;
          for i = lo to hi - 1 do
            v.(i) <- Vec3.scale s v.(i)
          done)
    end;
    Force_calc.add_thermostat_s t.fc (now () -. t0)
  end

(* --- integrator pieces --- *)

(* The kick and drift sweeps are per-atom independent (no reductions), so
   the tiled parallel sweeps below are bitwise identical to the serial
   loops at every slot count — the identity the [test_parallel] suite
   certifies against the [serial_integrator] reference, which forces the
   serial loops while the force phases keep their executor. Masses and the
   virtual-site table are immutable parameters and need no read
   declaration. *)
let integrator_exec t =
  if t.serial_integrator then Exec.serial else Force_calc.exec t.fc

let kick ?(phase = "integrate.kick1") t (acc : Mdsp_ff.Bonded.accum) dt =
  let t0 = now () in
  let v = t.st.State.velocities and m = t.st.State.masses in
  let n = State.n t.st in
  let exec = integrator_exec t in
  if Exec.n_slots exec = 1 && not (Exec.sanitizing exec) then
    for i = 0 to n - 1 do
      if not (Virtual_sites.is_site t.vsites i) then
        v.(i) <- Vec3.axpy (dt /. m.(i)) acc.forces.(i) v.(i)
    done
  else begin
    let forces = acc.Mdsp_ff.Bonded.forces in
    let tiles = Exec.tile_bounds ~total:n ~ntiles:(Exec.n_slots exec) in
    Exec.parallel_run ~phase exec (fun s ->
        let lo, hi = tiles.(s) in
        Exec.declare_read ~slot:s ~resource:"state.forces" ~lo ~hi exec;
        Exec.declare_read ~slot:s ~resource:"state.velocities" ~lo ~hi exec;
        Exec.declare_write ~slot:s ~resource:"state.velocities" ~total:n ~lo
          ~hi exec;
        for i = lo to hi - 1 do
          if not (Virtual_sites.is_site t.vsites i) then
            v.(i) <- Vec3.axpy (dt /. m.(i)) forces.(i) v.(i)
        done)
  end;
  Force_calc.add_integrate_s t.fc (now () -. t0)

(* Drift positions by dt, apply SHAKE, and fold the constraint displacement
   back into velocities. Only the position sweep (with its prev-position
   save) is a parallel phase; SHAKE, the velocity fold and virtual-site
   placement stay on the calling domain after the barrier. *)
let drift t dt =
  let t0 = now () in
  let x = t.st.State.positions and v = t.st.State.velocities in
  let n = State.n t.st in
  let exec = integrator_exec t in
  if Exec.n_slots exec = 1 && not (Exec.sanitizing exec) then begin
    Array.blit x 0 t.prev_positions 0 n;
    for i = 0 to n - 1 do
      if not (Virtual_sites.is_site t.vsites i) then
        x.(i) <- Vec3.axpy dt v.(i) x.(i)
    done
  end
  else begin
    let prev = t.prev_positions in
    let tiles = Exec.tile_bounds ~total:n ~ntiles:(Exec.n_slots exec) in
    Exec.parallel_run ~phase:"integrate.drift" exec (fun s ->
        let lo, hi = tiles.(s) in
        Exec.declare_read ~slot:s ~resource:"state.positions" ~lo ~hi exec;
        Exec.declare_read ~slot:s ~resource:"state.velocities" ~lo ~hi exec;
        Exec.declare_write ~slot:s ~resource:"state.positions" ~total:n ~lo
          ~hi exec;
        Exec.declare_write ~slot:s ~resource:"integrate.prev" ~total:n ~lo
          ~hi exec;
        Array.blit x lo prev lo (hi - lo);
        for i = lo to hi - 1 do
          if not (Virtual_sites.is_site t.vsites i) then
            x.(i) <- Vec3.axpy dt v.(i) x.(i)
        done)
  end;
  Force_calc.add_integrate_s t.fc (now () -. t0);
  if Constraints.count t.cons > 0 then begin
    let t1 = now () in
    let cexec = constraints_exec t in
    Constraints.shake ~exec:cexec t.cons t.st.State.box
      ~prev:t.prev_positions x ~masses:t.st.State.masses;
    (* Fold the constraint displacement back into velocities: a per-atom
       map over positions and saved pre-step positions. *)
    let fold lo hi =
      for i = lo to hi - 1 do
        if not (Virtual_sites.is_site t.vsites i) then
          v.(i) <- Vec3.scale (1. /. dt) (Vec3.sub x.(i) t.prev_positions.(i))
      done
    in
    if Exec.n_slots cexec = 1 && not (Exec.sanitizing cexec) then fold 0 n
    else begin
      let tiles = Exec.tile_bounds ~total:n ~ntiles:(Exec.n_slots cexec) in
      Exec.parallel_run ~phase:"constraints.fold" cexec (fun s ->
          let lo, hi = tiles.(s) in
          Exec.declare_read ~slot:s ~resource:"state.positions" ~lo ~hi cexec;
          Exec.declare_read ~slot:s ~resource:"integrate.prev" ~lo ~hi cexec;
          Exec.declare_write ~slot:s ~resource:"state.velocities" ~total:n
            ~lo ~hi cexec;
          fold lo hi)
    end;
    Force_calc.add_constraints_s t.fc (now () -. t1)
  end;
  if Virtual_sites.count t.vsites > 0 then
    Virtual_sites.place t.vsites t.st.State.box x

let rattle t =
  if Constraints.count t.cons > 0 then begin
    let t0 = now () in
    Constraints.rattle ~exec:(constraints_exec t) t.cons t.st.State.box
      t.st.State.positions t.st.State.velocities ~masses:t.st.State.masses;
    Force_calc.add_constraints_s t.fc (now () -. t0)
  end

(* --- barostats --- *)

let scale_system t factor =
  let x = t.st.State.positions in
  for i = 0 to State.n t.st - 1 do
    x.(i) <- Vec3.scale factor x.(i)
  done;
  t.st.State.box <- Pbc.scale t.st.State.box factor

let apply_berendsen_baro t dt tau p0_atm =
  let p = pressure_atm t in
  (* Isothermal compressibility of water, atm^-1. *)
  let kappa = 4.5e-5 in
  let mu3 = 1. -. (kappa *. dt /. tau *. (p0_atm -. p)) in
  let mu = Float.max 0.95 (Float.min 1.05 (mu3 ** (1. /. 3.))) in
  scale_system t mu

let pressure_atm_to_internal p = p /. 68568.4

let attempt_mc_baro t ~pressure_atm ~max_dlnv =
  t.mc_baro_try <- t.mc_baro_try + 1;
  let kt = Units.kt t.cfg.temperature in
  let v_old = Pbc.volume t.st.State.box in
  let e_old = potential_energy t in
  let saved = Array.copy t.st.State.positions in
  let saved_box = t.st.State.box in
  let dlnv = Rng.uniform_in t.rng (-.max_dlnv) max_dlnv in
  let v_new = v_old *. exp dlnv in
  let factor = (v_new /. v_old) ** (1. /. 3.) in
  scale_system t factor;
  ignore
    (Mdsp_space.Neighbor_list.rebuild ~box:t.st.State.box
       (Force_calc.nlist t.fc) t.st.State.positions);
  refresh_forces t;
  let e_new = potential_energy t in
  let p0 = pressure_atm_to_internal pressure_atm in
  let n = float_of_int (State.n t.st) in
  let dh =
    e_new -. e_old
    +. (p0 *. (v_new -. v_old))
    -. ((n +. 1.) *. kt *. dlnv)
  in
  let accept = dh <= 0. || Rng.uniform t.rng < exp (-.dh /. kt) in
  if accept then t.mc_baro_accept <- t.mc_baro_accept + 1
  else begin
    Array.blit saved 0 t.st.State.positions 0 (Array.length saved);
    t.st.State.box <- saved_box;
    ignore
      (Mdsp_space.Neighbor_list.rebuild ~box:saved_box (Force_calc.nlist t.fc)
         t.st.State.positions);
    refresh_forces t
  end

let minimize ?(max_step = 0.2) t ~steps =
  let n = State.n t.st in
  let x = t.st.State.positions in
  let alpha = ref 0.02 in
  let saved = Array.make n Vec3.zero in
  let e = ref (potential_energy t) in
  for _ = 1 to steps do
    Array.blit x 0 saved 0 n;
    Array.blit x 0 t.prev_positions 0 n;
    for i = 0 to n - 1 do
      if not (Virtual_sites.is_site t.vsites i) then begin
        let f = t.acc.forces.(i) in
        let fn = Vec3.norm f in
        if fn > 1e-12 then begin
          let step_len = Float.min (!alpha *. fn) max_step in
          x.(i) <- Vec3.axpy (step_len /. fn) f x.(i)
        end
      end
    done;
    if Constraints.count t.cons > 0 then
      Constraints.shake t.cons t.st.State.box ~prev:t.prev_positions x
        ~masses:t.st.State.masses;
    refresh_forces t;
    let e' = potential_energy t in
    if e' <= !e then begin
      e := e';
      alpha := Float.min 0.5 (!alpha *. 1.2)
    end
    else begin
      (* Reject the move and shrink the step. *)
      Array.blit saved 0 x 0 n;
      alpha := !alpha /. 2.;
      refresh_forces t
    end
  done;
  (* Minimization invalidates velocities only if the caller thermalizes
     afterwards; leave them untouched. *)
  ()

(* --- main step --- *)

let step t =
  let dt = Units.fs t.cfg.dt_fs in
  (match t.cfg.respa_inner with
  | None -> begin
      (* Thermostat half-step (NH). *)
      let s = nhc_half t dt in
      thermo_scale t s;
      (match t.cfg.thermostat with
      | Langevin { gamma_fs } ->
          (* BAOAB: B A O A B. gamma_fs is a rate in 1/fs; the internal
             rate is gamma_fs * (fs per internal time unit). *)
          let gamma_internal = gamma_fs *. Units.time_unit_fs in
          kick t t.acc (dt /. 2.);
          rattle t;
          drift t (dt /. 2.);
          langevin_o t gamma_internal dt;
          rattle t;
          drift t (dt /. 2.);
          t.energies <-
            Force_calc.compute t.fc t.st.State.box t.st.State.positions t.acc;
          Virtual_sites.spread_forces t.vsites t.acc;
          kick ~phase:"integrate.kick2" t t.acc (dt /. 2.);
          rattle t
      | _ ->
          (* Velocity Verlet. *)
          kick t t.acc (dt /. 2.);
          drift t dt;
          t.energies <-
            Force_calc.compute t.fc t.st.State.box t.st.State.positions t.acc;
          Virtual_sites.spread_forces t.vsites t.acc;
          kick ~phase:"integrate.kick2" t t.acc (dt /. 2.);
          rattle t);
      let s2 = nhc_half t dt in
      thermo_scale t s2;
      (match t.cfg.thermostat with
      | Berendsen { tau_fs } ->
          let sc = berendsen_scale t dt (Units.fs tau_fs) in
          thermo_scale t sc
      | _ -> ())
    end
  | Some k ->
      (* RESPA: slow (nonbonded) forces kick at the outer step, fast
         (bonded + bias) forces integrate with k inner steps. *)
      let dt_in = dt /. float_of_int k in
      (* Outer half-kick with the slow forces currently in t.acc. *)
      kick t t.acc (dt /. 2.);
      for _ = 1 to k do
        let fast =
          Force_calc.compute_class t.fc `Fast t.st.State.box
            t.st.State.positions t.fast_acc
        in
        ignore fast;
        Virtual_sites.spread_forces t.vsites t.fast_acc;
        kick t t.fast_acc (dt_in /. 2.);
        drift t dt_in;
        let _ =
          Force_calc.compute_class t.fc `Fast t.st.State.box
            t.st.State.positions t.fast_acc
        in
        Virtual_sites.spread_forces t.vsites t.fast_acc;
        kick ~phase:"integrate.kick2" t t.fast_acc (dt_in /. 2.);
        rattle t
      done;
      let slow =
        Force_calc.compute_class t.fc `Slow t.st.State.box
          t.st.State.positions t.acc
      in
      Virtual_sites.spread_forces t.vsites t.acc;
      kick ~phase:"integrate.kick2" t t.acc (dt /. 2.);
      rattle t;
      (* Record combined energies: recompute fast part at final positions. *)
      let fast =
        Force_calc.compute_class t.fc `Fast t.st.State.box
          t.st.State.positions t.fast_acc
      in
      t.energies <-
        {
          slow with
          bond = fast.Force_calc.bond;
          angle = fast.Force_calc.angle;
          dihedral = fast.Force_calc.dihedral;
          bias = fast.Force_calc.bias;
        };
      (match t.cfg.thermostat with
      | Berendsen { tau_fs } ->
          let sc = berendsen_scale t dt (Units.fs tau_fs) in
          thermo_scale t sc
      | Langevin { gamma_fs } ->
          let gamma_internal = gamma_fs *. Units.time_unit_fs in
          langevin_o t gamma_internal dt
      | _ -> ()));
  (* Barostat. *)
  (match t.cfg.barostat with
  | No_barostat -> ()
  | Berendsen_baro { tau_fs; pressure_atm } ->
      apply_berendsen_baro t dt (Units.fs tau_fs) pressure_atm
  | Monte_carlo_baro { interval; pressure_atm; max_dlnv } ->
      if t.nsteps mod interval = interval - 1 then
        attempt_mc_baro t ~pressure_atm ~max_dlnv);
  t.st.State.time <- t.st.State.time +. dt;
  t.nsteps <- t.nsteps + 1;
  if
    t.cfg.remove_com_interval > 0
    && t.nsteps mod t.cfg.remove_com_interval = 0
  then State.remove_com_velocity t.st;
  List.iter (fun (_, fn) -> fn t) t.hooks

let run t n =
  for _ = 1 to n do
    step t
  done
