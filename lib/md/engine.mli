(** The simulation driver.

    A velocity-Verlet core with optional Langevin (BAOAB), Berendsen, or
    Nosé–Hoover-chain thermostatting, Berendsen or Monte-Carlo barostatting,
    SHAKE/RATTLE constraints, and optional RESPA multiple-time-stepping.

    The driver exposes the plugin surface the generality layer builds on:
    force biases are registered on the {!Force_calc.t}, and per-step logic
    (hill deposition, exchange attempts, pulling schedules) registers as
    post-step hooks. All times at this API are femtoseconds. *)

open Mdsp_util

type thermostat =
  | No_thermostat
  | Langevin of { gamma_fs : float }  (** friction, inverse femtoseconds *)
  | Berendsen of { tau_fs : float }
  | Nose_hoover of { tau_fs : float }

type barostat =
  | No_barostat
  | Berendsen_baro of { tau_fs : float; pressure_atm : float }
      (** isotropic position/box scaling; pair best with constraints-free or
          SHAKE-corrected systems *)
  | Monte_carlo_baro of { interval : int; pressure_atm : float; max_dlnv : float }
      (** stochastic volume moves; intended for unconstrained systems *)

type config = {
  dt_fs : float;
  temperature : float;  (** kelvin; thermostat target *)
  thermostat : thermostat;
  barostat : barostat;
  respa_inner : int option;
      (** when [Some k], bonded (fast) forces are integrated with k inner
          steps per outer step of the nonbonded (slow) forces *)
  remove_com_interval : int;  (** steps between COM-motion removal; 0 = off *)
}

val default_config : config

type t

(** [create ?seed topo force_calc state config] initializes the engine. The
    state should already be thermalized if nonzero initial velocities are
    wanted. *)
val create :
  ?seed:int -> Mdsp_ff.Topology.t -> Force_calc.t -> State.t -> config -> t

val state : t -> State.t
val force_calc : t -> Force_calc.t
val config : t -> config
val rng : t -> Rng.t

(** Number of completed steps. *)
val steps_done : t -> int

(** Energies from the most recent force evaluation. *)
val energies : t -> Force_calc.energies

(** Cumulative per-resource wall-time breakdown aggregated over every force
    evaluation the engine has driven (see {!Force_calc.timings}), including
    the GSE long-range sub-phases (spread / fft / convolve / gather) when a
    grid solver is installed; divide by {!steps_done} or use
    {!Force_calc.timings_per_call} for per-step figures. *)
val timings : t -> Force_calc.timings

val reset_timings : t -> unit

val potential_energy : t -> float
val kinetic_energy : t -> float
val total_energy : t -> float

(** Instantaneous temperature (constraint-corrected dof). *)
val temperature : t -> float

(** Instantaneous pressure from the virial (atm). *)
val pressure_atm : t -> float

(** Change the thermostat's target temperature (simulated tempering, REMD
    after an exchange). *)
val set_temperature : t -> float -> unit

(** Steepest-descent energy minimization with an adaptive step and a
    per-atom displacement cap of [max_step] (default 0.2 A); constraints are
    re-satisfied after every move. Use before dynamics on systems built with
    overlaps. *)
val minimize : ?max_step:float -> t -> steps:int -> unit

(** Advance one step. *)
val step : t -> unit

(** Advance [n] steps. *)
val run : t -> int -> unit

(** Force a fresh force/energy evaluation at the current positions (after
    external position edits, evaluator swaps, or bias changes). *)
val refresh_forces : t -> unit

(** Register a callback run after every completed step. *)
val add_post_step : t -> name:string -> (t -> unit) -> unit

val remove_post_step : t -> string -> bool

(** Degrees of freedom used for temperature (3N - constraints - 3). *)
val dof : t -> int

(** Constraint solver in use (for violation checks in tests). *)
val constraints : t -> Constraints.t
