(** The simulation driver.

    A velocity-Verlet core with optional Langevin (BAOAB), Berendsen, or
    Nosé–Hoover-chain thermostatting, Berendsen or Monte-Carlo barostatting,
    SHAKE/RATTLE constraints, and optional RESPA multiple-time-stepping.

    The driver exposes the plugin surface the generality layer builds on:
    force biases are registered on the {!Force_calc.t}, and per-step logic
    (hill deposition, exchange attempts, pulling schedules) registers as
    post-step hooks. All times at this API are femtoseconds. *)

open Mdsp_util

type thermostat =
  | No_thermostat
  | Langevin of { gamma_fs : float }  (** friction, inverse femtoseconds *)
  | Berendsen of { tau_fs : float }
  | Nose_hoover of { tau_fs : float }

type barostat =
  | No_barostat
  | Berendsen_baro of { tau_fs : float; pressure_atm : float }
      (** isotropic position/box scaling; pair best with constraints-free or
          SHAKE-corrected systems *)
  | Monte_carlo_baro of { interval : int; pressure_atm : float; max_dlnv : float }
      (** stochastic volume moves; intended for unconstrained systems *)

type config = {
  dt_fs : float;
  temperature : float;  (** kelvin; thermostat target *)
  thermostat : thermostat;
  barostat : barostat;
  respa_inner : int option;
      (** when [Some k], bonded (fast) forces are integrated with k inner
          steps per outer step of the nonbonded (slow) forces *)
  remove_com_interval : int;  (** steps between COM-motion removal; 0 = off *)
}

val default_config : config

type t

(** [create ?seed topo force_calc state config] initializes the engine. The
    state should already be thermalized if nonzero initial velocities are
    wanted. *)
val create :
  ?seed:int -> Mdsp_ff.Topology.t -> Force_calc.t -> State.t -> config -> t

val state : t -> State.t
val force_calc : t -> Force_calc.t

(** [set_serial_integrator t true] forces the integrator position/velocity
    sweeps back onto the serial loops while every force phase keeps the
    calculator's executor — the reference the parallel-integrator identity
    test compares against. The sweeps are per-atom independent, so the
    tiled parallel sweeps ([integrate.kick1], [integrate.kick2],
    [integrate.drift]) are bitwise identical to the serial loops at every
    slot count. Default false. *)
val set_serial_integrator : t -> bool -> unit

(** [set_serial_constraints t true] is the same reference switch for the
    constraint and thermostat sweeps: SHAKE/RATTLE batch sweeps
    ([constraints.shake], [constraints.rattle]), the constraint velocity
    fold ([constraints.fold]), the Langevin O-step ([thermo.langevin]) and
    the velocity rescales ([thermo.scale]) run on the calling domain while
    force phases keep the calculator's executor. Same-batch constraint
    clusters are atom-disjoint (the [Mdsp_verify.Schedule] certificate) and
    each cluster converges independently, and the stochastic O-step draws
    from per-atom derived streams, so the parallel sweeps are bitwise
    identical to these serial references at every slot count. Default
    false. *)
val set_serial_constraints : t -> bool -> unit

val config : t -> config
val rng : t -> Rng.t

(** Number of completed steps. *)
val steps_done : t -> int

(** Energies from the most recent force evaluation. *)
val energies : t -> Force_calc.energies

(** Cumulative per-resource wall-time breakdown aggregated over every force
    evaluation the engine has driven (see {!Force_calc.timings}), including
    the GSE long-range sub-phases (spread / fft / convolve / gather) when a
    grid solver is installed; divide by {!steps_done} or use
    {!Force_calc.timings_per_call} for per-step figures. *)
val timings : t -> Force_calc.timings

val reset_timings : t -> unit

(** Whether the force calculator is running the flat (SoA) fast path (see
    {!Force_calc.soa_active}). *)
val soa_active : t -> bool

val potential_energy : t -> float
val kinetic_energy : t -> float
val total_energy : t -> float

(** Instantaneous temperature (constraint-corrected dof). *)
val temperature : t -> float

(** Instantaneous pressure from the virial (atm). *)
val pressure_atm : t -> float

(** Change the thermostat's target temperature (simulated tempering, REMD
    after an exchange). *)
val set_temperature : t -> float -> unit

(** Steepest-descent energy minimization with an adaptive step and a
    per-atom displacement cap of [max_step] (default 0.2 A); constraints are
    re-satisfied after every move. Use before dynamics on systems built with
    overlaps. *)
val minimize : ?max_step:float -> t -> steps:int -> unit

(** Advance one step. *)
val step : t -> unit

(** Advance [n] steps. *)
val run : t -> int -> unit

(** Force a fresh force/energy evaluation at the current positions (after
    external position edits, evaluator swaps, or bias changes). *)
val refresh_forces : t -> unit

(** Everything needed to continue a run bit-for-bit: a deep copy of the
    dynamic {!State}, the step counter, the thermostat target and
    Nosé–Hoover chain velocities, Monte-Carlo barostat counters, the
    engine's RNG stream, the in-flight forces/energies/virial, and the
    neighbor list's reference positions and box. Post-step hooks are not
    captured — re-register them after {!restore}. *)
type snapshot = {
  snap_state : State.t;
  snap_steps : int;
  snap_temperature : float;
  snap_rng : Rng.snapshot;
  snap_nhc : (float * float) option;  (** chain velocities (v1, v2) *)
  snap_mc_baro : int * int;  (** MC barostat (accepts, attempts) *)
  snap_energies : Force_calc.energies;
  snap_forces : Vec3.t array;
  snap_virial : float;
  snap_nlist_box : Pbc.t;
  snap_nlist_ref : Vec3.t array;
}

val snapshot : t -> snapshot

(** [restore t s] rewinds (or fast-forwards) [t] to the snapshot: continuing
    with [step]/[run] afterwards reproduces the run the snapshot was taken
    from exactly, step for step and bit for bit, because the forces in
    flight and the neighbor-list reference are reinstated rather than
    recomputed. [t] must have been built for the same system (atom count,
    topology, thermostat/barostat configuration). Raises [Invalid_argument]
    on an atom-count mismatch. *)
val restore : t -> snapshot -> unit

(** Register a callback run after every completed step. *)
val add_post_step : t -> name:string -> (t -> unit) -> unit

val remove_post_step : t -> string -> bool

(** Degrees of freedom used for temperature (3N - constraints - 3). *)
val dof : t -> int

(** Constraint solver in use (for violation checks in tests). *)
val constraints : t -> Constraints.t
