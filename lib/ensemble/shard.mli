(** Replica sharding over the {!Mdsp_util.Exec} pool.

    A shard assigns [n_replicas] replicas to the executor's slots
    round-robin (replica [r] lives on slot [r mod n_slots]) and steps every
    replica of a slot sequentially inside one {!Mdsp_util.Exec.map_slots}
    collective. The placement is a pure function of [(n_replicas,
    n_slots)], so which replica runs where — and therefore the floating
    point arithmetic each replica performs — never depends on timing: a
    replica's trajectory is bitwise identical whether it is stepped here or
    by a plain sequential loop, because replicas share no mutable state and
    each engine carries its own RNG stream.

    The shard also keeps per-replica accounting (steps advanced, wall
    seconds spent stepping) that the ensemble drivers surface as metrics
    tables. *)

type t

(** [create ~exec ~n_replicas] builds the placement. Raises
    [Invalid_argument] when [n_replicas < 1]. More replicas than slots is
    fine (slots multiplex); more slots than replicas leaves slots idle. *)
val create : exec:Mdsp_util.Exec.t -> n_replicas:int -> t

val n_replicas : t -> int
val n_slots : t -> int

(** The slot replica [r] is pinned to ([r mod n_slots]). *)
val slot_of_replica : t -> int -> int

(** Replicas assigned to a slot, in increasing index order (copy). *)
val replicas_of_slot : t -> int -> int array

(** [run_stride t f] runs [f r] once for every replica [r] — concurrently
    across slots, sequentially (in increasing [r]) within a slot — and
    returns after the pool barrier. [f r] must advance replica [r] and
    return the number of steps it took (recorded in {!steps_done}).
    Exceptions propagate to the caller after the barrier. *)
val run_stride : t -> (int -> int) -> unit

(** Completed {!run_stride} collectives. *)
val strides_done : t -> int

(** Per-replica cumulative steps advanced under {!run_stride} (copy). *)
val steps_done : t -> int array

(** Per-replica cumulative wall seconds spent inside [f] (copy). Wall time
    is measured around each replica's own call, so on a multiplexed slot the
    replicas split the slot's time rather than double-counting it. *)
val wall_seconds : t -> float array
