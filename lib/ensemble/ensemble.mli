(** Ensemble orchestration: run a ladder of replicas concurrently on the
    {!Mdsp_util.Exec} pool with exchange at the barrier.

    The runner reuses the sequential {!Mdsp_core.Remd} machinery for all
    acceptance math: replicas are stepped for one exchange stride inside a
    {!Shard} collective (one engine per pool slot, slots multiplex when
    there are more replicas than slots), then the exchange sweep runs on
    the calling domain at the barrier via {!Mdsp_core.Remd.exchange_sweep}.
    Because each engine owns its RNG stream and exchange decisions draw
    from dedicated per-pair streams (see the draw-order contract in
    [remd.mli]), the sharded run is {e bitwise identical} to the
    sequential {!Mdsp_core.Remd.run} path for any slot count — the
    property [bench e22] and [test_ensemble] enforce. *)

type t

(** [create ~exec remd] shards the ladder's replicas over [exec]'s slots.
    The replica engines should be serial (they each occupy one slot; the
    pool parallelism is across replicas, not within one). *)
val create : exec:Mdsp_util.Exec.t -> Mdsp_core.Remd.t -> t

val remd : t -> Mdsp_core.Remd.t
val shard : t -> Shard.t

(** [run t ~sweeps] advances every replica [sweeps * stride] steps,
    stepping concurrently and exchanging at each barrier. *)
val run : t -> sweeps:int -> unit

(** {2 Checkpoint / restart} *)

(** Write the full ensemble state (every engine's snapshot plus the
    exchange bookkeeping) to a text checkpoint, crash-safely (staged to a
    temp name, renamed into place). [preset] records the workload the
    ladder was built from; {!resume_checkpoint} can verify it. *)
val save_checkpoint : ?preset:string -> t -> string -> unit

(** Restore a checkpoint written by {!save_checkpoint} into an ensemble
    built for the same system and ladder: engines and exchange bookkeeping
    rewind to the saved point, and continuing with {!run} reproduces the
    uninterrupted run exactly. Raises [Failure] with a descriptive message
    on a missing, truncated, or malformed file, a replica-count mismatch,
    or — when both [expect_preset] and the recorded preset are present — a
    workload mismatch. *)
val resume_checkpoint : ?expect_preset:string -> t -> string -> unit

(** {2 Per-replica metrics} *)

type replica_metrics = {
  replica : int;  (** ladder rung index *)
  slot : int;  (** pool slot the replica is pinned to *)
  temp : float;  (** rung temperature, K *)
  steps : int;  (** MD steps advanced under the runner *)
  wall_s : float;  (** wall seconds spent stepping this replica *)
  attempts_up : int;  (** exchange attempts with the rung above *)
  accepts_up : int;  (** accepted exchanges with the rung above *)
  config_at : int;  (** rung currently holding this replica's initial
                        configuration (ladder-mixing diagnostic) *)
}

val metrics : t -> replica_metrics list

(** The metrics as a rendered {!Mdsp_util.Table_text} table (one row per
    replica, [Perf.resource_rows]-style model-vs-measured presentation). *)
val metrics_table : t -> string

(** {2 Simulated-tempering walkers}

    An ensemble of independent tempering walkers: each engine carries its
    own {!Mdsp_core.Tempering} ladder (attached by {!create_tempering}),
    so walkers never share state and the concurrent run is bitwise
    identical to stepping them one after another. *)

type walkers

(** [create_tempering ~exec ~engines ~ladders] attaches ladder [i] to
    engine [i] and shards the walkers over [exec]. Raises
    [Invalid_argument] when the array lengths differ or are empty. *)
val create_tempering :
  exec:Mdsp_util.Exec.t ->
  engines:Mdsp_md.Engine.t array ->
  ladders:Mdsp_core.Tempering.t array ->
  walkers

val walker_shard : walkers -> Shard.t

(** [run_tempering w ~strides] advances every walker [strides] of its own
    ladder stride (rung moves fire from each engine's post-step hook). *)
val run_tempering : walkers -> strides:int -> unit

(** Per-walker rung visit counts, walker-major (copy). *)
val occupancy : walkers -> int array array
