(** Exact text checkpoints for a replica ensemble.

    A checkpoint is an optional {!Mdsp_core.Remd.snapshot} (the exchange
    bookkeeping — absent for single-engine jobs) plus one
    {!Mdsp_md.Engine.snapshot} per replica: everything each engine needs to
    continue bit-for-bit (state, in-flight forces, RNG streams, thermostat
    internals, neighbor-list reference).

    The format is line-oriented text, version 2: a header, a [preset]
    provenance line ("-" when unrecorded), the replica count, then either
    "remd none" or the exchange section, then the replicas. Floats are
    written with [%.17g], which round-trips IEEE binary64 exactly, and the
    RNG words as decimal [int64] — loading a checkpoint therefore
    reconstructs the snapshots bit-identically, and a resumed ensemble
    replays the uninterrupted run exactly
    ({!Ensemble.resume_checkpoint}). Version 1 files (no preset line,
    exchange section mandatory) still load. *)

(** [save ?preset path ?remd ~engines ()] writes the checkpoint
    crash-safely: staged to [path ^ ".tmp"] and renamed into place, so an
    interrupt mid-write never destroys an existing checkpoint. *)
val save :
  ?preset:string ->
  string ->
  ?remd:Mdsp_core.Remd.snapshot ->
  engines:Mdsp_md.Engine.snapshot array ->
  unit ->
  unit

(** [load ?expect_preset ?expect_replicas path] parses a checkpoint back
    into snapshots. Raises [Failure] with a descriptive message (file and
    line) when the file is missing, truncated, or malformed; when
    [expect_preset] disagrees with a recorded preset; or when
    [expect_replicas] disagrees with the replica count. *)
val load :
  ?expect_preset:string ->
  ?expect_replicas:int ->
  string ->
  Mdsp_core.Remd.snapshot option * Mdsp_md.Engine.snapshot array
