(** Exact text checkpoints for a replica ensemble.

    A checkpoint is the pair ({!Mdsp_core.Remd.snapshot}, one
    {!Mdsp_md.Engine.snapshot} per replica): the exchange bookkeeping plus
    everything each engine needs to continue bit-for-bit (state, in-flight
    forces, RNG streams, thermostat internals, neighbor-list reference).

    The format is line-oriented text. Floats are written with [%.17g],
    which round-trips IEEE binary64 exactly, and the RNG words as decimal
    [int64] — loading a checkpoint therefore reconstructs the snapshots
    bit-identically, and a resumed ensemble replays the uninterrupted run
    exactly ({!Ensemble.resume_checkpoint}). *)

(** [save path ~remd ~engines] writes the checkpoint atomically-ish (a plain
    rewrite of [path]; callers wanting durability should write to a temp
    name and rename). *)
val save :
  string ->
  remd:Mdsp_core.Remd.snapshot ->
  engines:Mdsp_md.Engine.snapshot array ->
  unit

(** [load path] parses a checkpoint back into snapshots. Raises [Failure]
    with a position message on a malformed file. *)
val load : string -> Mdsp_core.Remd.snapshot * Mdsp_md.Engine.snapshot array
