open Mdsp_util

type t = {
  exec : Exec.t;
  n_replicas : int;
  slot_of_replica : int array;
  replicas_of_slot : int array array;
  steps : int array;
  wall_s : float array;
  mutable strides : int;
}

let create ~exec ~n_replicas =
  if n_replicas < 1 then
    invalid_arg "Shard.create: need at least one replica";
  let slots = Exec.n_slots exec in
  let slot_of_replica = Array.init n_replicas (fun r -> r mod slots) in
  let replicas_of_slot =
    Array.init slots (fun s ->
        List.init n_replicas Fun.id
        |> List.filter (fun r -> slot_of_replica.(r) = s)
        |> Array.of_list)
  in
  {
    exec;
    n_replicas;
    slot_of_replica;
    replicas_of_slot;
    steps = Array.make n_replicas 0;
    wall_s = Array.make n_replicas 0.;
    strides = 0;
  }

let n_replicas t = t.n_replicas
let n_slots t = Exec.n_slots t.exec
let slot_of_replica t r = t.slot_of_replica.(r)
let replicas_of_slot t s = Array.copy t.replicas_of_slot.(s)

let run_stride t f =
  ignore
    (Exec.map_slots t.exec (fun s ->
         Array.iter
           (fun r ->
             let t0 = Unix.gettimeofday () in
             let advanced = f r in
             t.wall_s.(r) <- t.wall_s.(r) +. Unix.gettimeofday () -. t0;
             t.steps.(r) <- t.steps.(r) + advanced)
           t.replicas_of_slot.(s)));
  t.strides <- t.strides + 1

let strides_done t = t.strides
let steps_done t = Array.copy t.steps
let wall_seconds t = Array.copy t.wall_s
