open Mdsp_util
module E = Mdsp_md.Engine
module State = Mdsp_md.State
module FC = Mdsp_md.Force_calc
module Remd = Mdsp_core.Remd

(* Version 2 adds a provenance line ("preset <name>", "-" when unrecorded)
   and makes the exchange section optional ("remd none"), so the same
   format checkpoints both REMD ladders and single-engine service jobs.
   Version 1 files (no preset line, exchange section mandatory) still
   load. *)
let header_v2 = "mdsp-ensemble-checkpoint 2"
let header_v1 = "mdsp-ensemble-checkpoint 1"

let write_rng oc (r : Rng.snapshot) =
  Printf.fprintf oc "%Ld %Ld %Ld %Ld %.17g %d" r.Rng.sn_s0 r.Rng.sn_s1
    r.Rng.sn_s2 r.Rng.sn_s3 r.Rng.sn_cached_gauss
    (if r.Rng.sn_has_gauss then 1 else 0)

let save ?preset path ?remd ~(engines : E.snapshot array) () =
  Atomic_file.write path (fun oc ->
      Printf.fprintf oc "%s\n" header_v2;
      Printf.fprintf oc "preset %s\n"
        (match preset with Some p when p <> "" -> p | _ -> "-");
      Printf.fprintf oc "replicas %d\n" (Array.length engines);
      (match remd with
      | None -> output_string oc "remd none\n"
      | Some (remd : Remd.snapshot) ->
          let npairs = Array.length remd.Remd.snap_attempts in
          Printf.fprintf oc "remd sweep %d pairs %d\n" remd.Remd.snap_sweep
            npairs;
          for i = 0 to npairs - 1 do
            Printf.fprintf oc "pair %d %d " remd.Remd.snap_attempts.(i)
              remd.Remd.snap_accepts.(i);
            write_rng oc remd.Remd.snap_rngs.(i);
            output_char oc '\n'
          done;
          output_string oc "config";
          Array.iter (fun c -> Printf.fprintf oc " %d" c) remd.Remd.snap_config;
          output_char oc '\n');
      Array.iteri
        (fun i (s : E.snapshot) ->
          let st = s.E.snap_state in
          let n = State.n st in
          Printf.fprintf oc "replica %d\n" i;
          Printf.fprintf oc "steps %d\n" s.E.snap_steps;
          Printf.fprintf oc "temperature %.17g\n" s.E.snap_temperature;
          output_string oc "rng ";
          write_rng oc s.E.snap_rng;
          output_char oc '\n';
          (match s.E.snap_nhc with
          | None -> output_string oc "nhc none\n"
          | Some (v1, v2) -> Printf.fprintf oc "nhc %.17g %.17g\n" v1 v2);
          let acc, tries = s.E.snap_mc_baro in
          Printf.fprintf oc "mc_baro %d %d\n" acc tries;
          let e = s.E.snap_energies in
          Printf.fprintf oc
            "energies %.17g %.17g %.17g %.17g %.17g %.17g %.17g\n" e.FC.bond
            e.FC.angle e.FC.dihedral e.FC.pair e.FC.recip e.FC.correction
            e.FC.bias;
          Printf.fprintf oc "virial %.17g\n" s.E.snap_virial;
          Printf.fprintf oc "atoms %d\n" n;
          Printf.fprintf oc "box %.17g %.17g %.17g\n" st.State.box.Pbc.lx
            st.State.box.Pbc.ly st.State.box.Pbc.lz;
          Printf.fprintf oc "time %.17g\n" st.State.time;
          Printf.fprintf oc "nlist_box %.17g %.17g %.17g\n"
            s.E.snap_nlist_box.Pbc.lx s.E.snap_nlist_box.Pbc.ly
            s.E.snap_nlist_box.Pbc.lz;
          for a = 0 to n - 1 do
            let p = st.State.positions.(a)
            and v = st.State.velocities.(a)
            and f = s.E.snap_forces.(a)
            and r = s.E.snap_nlist_ref.(a) in
            Printf.fprintf oc
              "%.17g %.17g %.17g %.17g %.17g %.17g %.17g %.17g %.17g %.17g \
               %.17g %.17g %.17g\n"
              st.State.masses.(a) p.Vec3.x p.Vec3.y p.Vec3.z v.Vec3.x
              v.Vec3.y v.Vec3.z f.Vec3.x f.Vec3.y f.Vec3.z r.Vec3.x r.Vec3.y
              r.Vec3.z
          done)
        engines)

let load ?expect_preset ?expect_replicas path =
  let ic =
    try open_in path
    with Sys_error m ->
      failwith
        (Printf.sprintf "Ensemble checkpoint %s: cannot open (%s)" path m)
  in
  let lineno = ref 0 in
  let fail msg =
    close_in ic;
    failwith
      (Printf.sprintf "Ensemble checkpoint %s, line %d: %s" path !lineno msg)
  in
  let line () =
    incr lineno;
    try input_line ic
    with End_of_file -> fail "truncated (unexpected end of file)"
  in
  let scan fmt f =
    let l = line () in
    try Scanf.sscanf l fmt f
    with Scanf.Scan_failure m | Failure m -> fail m
  in
  let read_rng s0 s1 s2 s3 g h =
    {
      Rng.sn_s0 = s0;
      sn_s1 = s1;
      sn_s2 = s2;
      sn_s3 = s3;
      sn_cached_gauss = g;
      sn_has_gauss = h <> 0;
    }
  in
  let version =
    match line () with
    | h when h = header_v2 -> 2
    | h when h = header_v1 -> 1
    | _ -> fail "bad header (not an mdsp ensemble checkpoint)"
  in
  let preset =
    if version < 2 then None
    else
      match scan "preset %s" Fun.id with "-" -> None | p -> Some p
  in
  (match (expect_preset, preset) with
  | Some want, Some got when want <> got ->
      fail
        (Printf.sprintf "checkpoint was written for preset %S, not %S" got
           want)
  | _ -> ());
  let m = scan "replicas %d" Fun.id in
  (match expect_replicas with
  | Some want when want <> m ->
      fail
        (Printf.sprintf "checkpoint holds %d replicas but the ladder has %d"
           m want)
  | _ -> ());
  let remd =
    let l = line () in
    if version >= 2 && l = "remd none" then None
    else
      let sweep, npairs =
        try Scanf.sscanf l "remd sweep %d pairs %d" (fun a b -> (a, b))
        with Scanf.Scan_failure m | Failure m -> fail m
      in
      let attempts = Array.make npairs 0 in
      let accepts = Array.make npairs 0 in
      let rngs = Array.make npairs (Rng.snapshot (Rng.create 0)) in
      for i = 0 to npairs - 1 do
        scan "pair %d %d %Ld %Ld %Ld %Ld %f %d"
          (fun at ac s0 s1 s2 s3 g h ->
            attempts.(i) <- at;
            accepts.(i) <- ac;
            rngs.(i) <- read_rng s0 s1 s2 s3 g h)
      done;
      let config =
        let l = line () in
        match String.split_on_char ' ' (String.trim l) with
        | "config" :: rest -> (
            try Array.of_list (List.map int_of_string rest)
            with Failure m -> fail m)
        | _ -> fail "expected config line"
      in
      Some
        {
          Remd.snap_sweep = sweep;
          snap_attempts = attempts;
          snap_accepts = accepts;
          snap_config = config;
          snap_rngs = rngs;
        }
  in
  let engines =
    Array.init m (fun i ->
        let j = scan "replica %d" Fun.id in
        if j <> i then fail (Printf.sprintf "expected replica %d" i);
        let steps = scan "steps %d" Fun.id in
        let temperature = scan "temperature %f" Fun.id in
        let rng = scan "rng %Ld %Ld %Ld %Ld %f %d" read_rng in
        let nhc =
          let l = line () in
          if l = "nhc none" then None
          else
            try Scanf.sscanf l "nhc %f %f" (fun a b -> Some (a, b))
            with Scanf.Scan_failure m | Failure m -> fail m
        in
        let mc_baro = scan "mc_baro %d %d" (fun a b -> (a, b)) in
        let energies =
          scan "energies %f %f %f %f %f %f %f"
            (fun bond angle dihedral pair recip correction bias ->
              {
                FC.bond;
                angle;
                dihedral;
                pair;
                recip;
                correction;
                bias;
              })
        in
        let virial = scan "virial %f" Fun.id in
        let n = scan "atoms %d" Fun.id in
        let box =
          scan "box %f %f %f" (fun lx ly lz -> Pbc.make ~lx ~ly ~lz)
        in
        let time = scan "time %f" Fun.id in
        let nlist_box =
          scan "nlist_box %f %f %f" (fun lx ly lz -> Pbc.make ~lx ~ly ~lz)
        in
        let masses = Array.make n 0. in
        let positions = Array.make n Vec3.zero in
        let velocities = Array.make n Vec3.zero in
        let forces = Array.make n Vec3.zero in
        let nlist_ref = Array.make n Vec3.zero in
        for a = 0 to n - 1 do
          scan " %f %f %f %f %f %f %f %f %f %f %f %f %f"
            (fun ms px py pz vx vy vz fx fy fz rx ry rz ->
              masses.(a) <- ms;
              positions.(a) <- Vec3.make px py pz;
              velocities.(a) <- Vec3.make vx vy vz;
              forces.(a) <- Vec3.make fx fy fz;
              nlist_ref.(a) <- Vec3.make rx ry rz)
        done;
        let st = State.create ~positions ~masses ~box in
        Array.blit velocities 0 st.State.velocities 0 n;
        st.State.time <- time;
        {
          E.snap_state = st;
          snap_steps = steps;
          snap_temperature = temperature;
          snap_rng = rng;
          snap_nhc = nhc;
          snap_mc_baro = mc_baro;
          snap_energies = energies;
          snap_forces = forces;
          snap_virial = virial;
          snap_nlist_box = nlist_box;
          snap_nlist_ref = nlist_ref;
        })
  in
  close_in ic;
  (remd, engines)
