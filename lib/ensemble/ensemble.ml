open Mdsp_util
module E = Mdsp_md.Engine
module Remd = Mdsp_core.Remd
module Tempering = Mdsp_core.Tempering

type t = { shard : Shard.t; remd : Remd.t }

let create ~exec remd =
  let n_replicas = Array.length (Remd.engines remd) in
  { shard = Shard.create ~exec ~n_replicas; remd }

let remd t = t.remd
let shard t = t.shard

let run t ~sweeps =
  let engines = Remd.engines t.remd in
  let stride = Remd.stride t.remd in
  for _ = 1 to sweeps do
    Shard.run_stride t.shard (fun r ->
        E.run engines.(r) stride;
        stride);
    (* Exchange on the calling domain at the barrier: all replica energies
       are now settled, and the per-pair RNG streams make the decisions
       identical to the sequential Remd.run path. *)
    Remd.exchange_sweep t.remd
  done

let save_checkpoint ?preset t path =
  Checkpoint.save ?preset path ~remd:(Remd.snapshot t.remd)
    ~engines:(Array.map E.snapshot (Remd.engines t.remd))
    ()

let resume_checkpoint ?expect_preset t path =
  let engines = Remd.engines t.remd in
  let remd_snap, engine_snaps =
    Checkpoint.load ?expect_preset ~expect_replicas:(Array.length engines)
      path
  in
  let remd_snap =
    match remd_snap with
    | Some s -> s
    | None ->
        failwith
          (Printf.sprintf
             "Ensemble checkpoint %s: no exchange section (written by a \
              single-engine job, not an ensemble)"
             path)
  in
  Array.iteri (fun i s -> E.restore engines.(i) s) engine_snaps;
  Remd.restore t.remd remd_snap

type replica_metrics = {
  replica : int;
  slot : int;
  temp : float;
  steps : int;
  wall_s : float;
  attempts_up : int;
  accepts_up : int;
  config_at : int;
}

let metrics t =
  let temps = Remd.temps t.remd in
  let attempts = Remd.attempts t.remd in
  let accepts = Remd.accepts t.remd in
  let config = Remd.replica_of_config t.remd in
  let steps = Shard.steps_done t.shard in
  let wall = Shard.wall_seconds t.shard in
  let npairs = Array.length attempts in
  List.init (Shard.n_replicas t.shard) (fun r ->
      {
        replica = r;
        slot = Shard.slot_of_replica t.shard r;
        temp = temps.(r);
        steps = steps.(r);
        wall_s = wall.(r);
        attempts_up = (if r < npairs then attempts.(r) else 0);
        accepts_up = (if r < npairs then accepts.(r) else 0);
        config_at = config.(r);
      })

let metrics_table t =
  let tbl =
    Table_text.create
      ~title:
        (Printf.sprintf "ensemble: %d replicas on %d slots, %d sweeps"
           (Shard.n_replicas t.shard) (Shard.n_slots t.shard)
           (Remd.sweeps_done t.remd))
      ~columns:
        [
          ("replica", Table_text.Right);
          ("slot", Table_text.Right);
          ("T (K)", Table_text.Right);
          ("steps", Table_text.Right);
          ("wall ms", Table_text.Right);
          ("exch up", Table_text.Left);
          ("config at", Table_text.Right);
        ]
  in
  List.iter
    (fun m ->
      Table_text.row tbl
        [
          Table_text.cell_i m.replica;
          Table_text.cell_i m.slot;
          Table_text.cell_f ~prec:4 m.temp;
          Table_text.cell_i m.steps;
          Printf.sprintf "%.1f" (m.wall_s *. 1e3);
          (if m.attempts_up = 0 then "-"
           else Printf.sprintf "%d/%d" m.accepts_up m.attempts_up);
          Table_text.cell_i m.config_at;
        ])
    (metrics t);
  Table_text.render tbl

(* --- simulated-tempering walkers --- *)

type walkers = {
  wshard : Shard.t;
  wengines : E.t array;
  ladders : Tempering.t array;
}

let create_tempering ~exec ~engines ~ladders =
  let n = Array.length engines in
  if n = 0 || Array.length ladders <> n then
    invalid_arg
      "Ensemble.create_tempering: need matching, non-empty engines and \
       ladders";
  Array.iteri (fun i l -> Tempering.attach l engines.(i)) ladders;
  { wshard = Shard.create ~exec ~n_replicas:n; wengines = engines; ladders }

let walker_shard w = w.wshard

let run_tempering w ~strides =
  for _ = 1 to strides do
    Shard.run_stride w.wshard (fun r ->
        let s = Tempering.stride w.ladders.(r) in
        E.run w.wengines.(r) s;
        s)
  done

let occupancy w = Array.map Tempering.visits w.ladders
