(** The programmable-core kernel DSL — the other half of the generality
    story.

    Methods that do not fit the pair pipelines run on the flexible
    subsystem. A kernel is a per-particle *energy expression* over the
    particle's coordinates, velocities, per-particle auxiliary slots, the
    simulation time, and named parameters. The compiler differentiates the
    expression symbolically, so registering a kernel yields consistent
    energies and forces automatically, and counts arithmetic operations to
    estimate the flexible-subsystem cycle cost (the machine mapping's
    input).

    Coordinates inside kernel expressions are minimum-image displacements
    from the box center, so kernels are well-defined under PBC. *)

open Mdsp_util

type expr =
  | Const of float
  | Param of string  (** looked up in the kernel's parameter table *)
  | Time  (** simulation time, internal units *)
  | X | Y | Z  (** particle position relative to the box center *)
  | Vx | Vy | Vz
  | Aux of int  (** per-particle auxiliary slot *)
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr
  | Neg of expr
  | Pow_int of expr * int
  | Sqrt of expr
  | Exp of expr
  | Log of expr
  | Cos of expr
  | Sin of expr
  | Min of expr * expr
  | Max of expr * expr

(** Convenience constructors. *)
val ( + ) : expr -> expr -> expr
val ( - ) : expr -> expr -> expr
val ( * ) : expr -> expr -> expr
val ( / ) : expr -> expr -> expr
val c : float -> expr
val sq : expr -> expr

type t

(** [create ~name ~energy ~particles ~params] compiles a kernel applying
    [energy] to each particle index in [particles]. Raises
    [Invalid_argument] if the energy expression references velocities (the
    force is -dE/dx; velocity-dependent "energies" are not conservative) or
    an unbound parameter. *)
val create :
  name:string ->
  energy:expr ->
  particles:int array ->
  params:(string * float) list ->
  t

val name : t -> string

(** Update a named parameter (e.g. a moving restraint center). *)
val set_param : t -> string -> float -> unit

val get_param : t -> string -> float

(** Arithmetic operations per particle per evaluation (energy + 3 force
    gradients, after constant folding). *)
val ops_per_particle : t -> int

(** Flexible-subsystem ops per step contributed by this kernel. *)
val flex_ops : t -> float

(** The compiled (simplified) energy expression — the verification layer's
    input. *)
val energy_expr : t -> expr

(** The three simplified symbolic gradients (dE/dx, dE/dy, dE/dz) the force
    path evaluates — where [Div]/[Sqrt] hazards introduced by {!diff}
    actually live. *)
val force_exprs : t -> expr * expr * expr

(** Current parameter bindings, sorted by name. *)
val params : t -> (string * float) list

(** Pretty-print an expression in conventional infix form, e.g.
    [k * (x - x0)^2] — used by hazard reports to show the offending
    subexpression. *)
val pp_expr : Format.formatter -> expr -> unit

(** [pp_expr] rendered to a string. *)
val expr_to_string : expr -> string

(** Symbolic derivative (exposed for tests). *)
val diff : expr -> [ `X | `Y | `Z ] -> expr

(** Constant-fold / simplify (exposed for tests). *)
val simplify : expr -> expr

(** Operation count of one expression after simplification. *)
val expr_ops : expr -> int

(** Evaluate an expression for a particle (exposed for tests). [aux] is this
    particle's auxiliary vector. *)
val eval_expr :
  expr ->
  params:(string -> float) ->
  time:float ->
  pos:Vec3.t ->
  vel:Vec3.t ->
  aux:float array ->
  float

(** The bias that plugs the kernel into the force calculator. [velocities]
    and [aux] suppliers are optional; time is read from the supplied
    closure. *)
val to_bias :
  ?velocities:(unit -> Vec3.t array) ->
  ?aux:(int -> float array) ->
  time:(unit -> float) ->
  t ->
  Mdsp_md.Force_calc.bias
