open Mdsp_util

type radial = float -> float * float

let of_form ?(shift = true) form ~cutoff =
  let offset = if shift then Mdsp_ff.Nonbonded.shift_at form cutoff else 0. in
  fun r2 ->
    let e, f = Mdsp_ff.Nonbonded.eval form r2 in
    (e -. offset, f)

let compile ~r_min ~r_cut ~n ?(quantize = true) f =
  if n <= 0 then invalid_arg "Table.compile: n must be positive";
  let s0 = r_min *. r_min and s1 = r_cut *. r_cut in
  let width = (s1 -. s0) /. float_of_int n in
  (* Knot values: energy, f_over_r, and their derivatives with respect to
     squared distance. dU/d(r^2) = -f_over_r / 2 exactly; the f_over_r
     derivative is taken by central differences. *)
  let knots = n + 1 in
  let e_v = Array.make knots 0. in
  let g_v = Array.make knots 0. in
  let g_d = Array.make knots 0. in
  for k = 0 to knots - 1 do
    let s = s0 +. (float_of_int k *. width) in
    let e, g = f s in
    e_v.(k) <- e;
    g_v.(k) <- g;
    let h = Float.max (width *. 1e-4) (s *. 1e-7) in
    let sm = Float.max (s0 *. 0.5 +. 1e-12) (s -. h) in
    let sp = s +. h in
    let _, gm = f sm in
    let _, gp = f sp in
    g_d.(k) <- (gp -. gm) /. (sp -. sm)
  done;
  let energy_coeffs =
    Array.init n (fun i ->
        Poly.hermite_cubic ~x0:0. ~x1:width ~f0:e_v.(i) ~f1:e_v.(i + 1)
          ~d0:(-.g_v.(i) /. 2.) ~d1:(-.g_v.(i + 1) /. 2.))
  in
  let force_coeffs =
    Array.init n (fun i ->
        Poly.hermite_cubic ~x0:0. ~x1:width ~f0:g_v.(i) ~f1:g_v.(i + 1)
          ~d0:g_d.(i) ~d1:g_d.(i + 1))
  in
  Mdsp_machine.Interp_table.make ~r_min ~r_cut ~n ~quantize ~energy_coeffs
    ~force_coeffs ()

type error_report = {
  max_abs_energy : float;
  max_abs_force : float;
  max_rel_force : float;
  rms_force : float;
  samples : int;
}

let accuracy table f ?(samples = 20_000) () =
  let r_min = Mdsp_machine.Interp_table.r_min table in
  let r_cut = Mdsp_machine.Interp_table.r_cut table in
  let s0 = r_min *. r_min and s1 = r_cut *. r_cut in
  (* Typical force scale over the domain, used as the relative-error
     floor so that the error at zero crossings stays meaningful. *)
  let floor_scale =
    let acc = ref 0. in
    for k = 0 to 99 do
      let s = s0 +. ((s1 -. s0) *. (float_of_int k +. 0.5) /. 100.) in
      let _, g = f s in
      acc := !acc +. abs_float g
    done;
    Float.max (!acc /. 100. *. 1e-3) 1e-12
  in
  let max_e = ref 0. and max_f = ref 0. and max_rel = ref 0. in
  let sum_f2 = ref 0. in
  for k = 0 to samples - 1 do
    (* Stay strictly inside the domain; the last interval's right edge is
       the cutoff where the table returns zero by construction. *)
    let s = s0 +. ((s1 -. s0) *. (float_of_int k +. 0.5) /. float_of_int samples) in
    let e_ref, g_ref = f s in
    let e_tab, g_tab = Mdsp_machine.Interp_table.eval table s in
    let de = abs_float (e_tab -. e_ref) in
    let dg = abs_float (g_tab -. g_ref) in
    if de > !max_e then max_e := de;
    if dg > !max_f then max_f := dg;
    let rel = dg /. Float.max (abs_float g_ref) floor_scale in
    if rel > !max_rel then max_rel := rel;
    sum_f2 := !sum_f2 +. (dg *. dg)
  done;
  {
    max_abs_energy = !max_e;
    max_abs_force = !max_f;
    max_rel_force = !max_rel;
    rms_force = sqrt (!sum_f2 /. float_of_int samples);
    samples;
  }

let width_for_accuracy ~r_min ~r_cut ~target f =
  let rec go n =
    if n > 65536 then None
    else begin
      let t = compile ~r_min ~r_cut ~n f in
      let rep = accuracy t f ~samples:4096 () in
      if rep.max_rel_force <= target then Some n else go (n * 2)
    end
  in
  go 64

let table_set_of_topology (topo : Mdsp_ff.Topology.t) ~cutoff ~elec ~n
    ?(quantize = true) () =
  let ntypes = Array.length topo.lj_types in
  let r_min = 0.8 in
  let lj =
    Array.init ntypes (fun i ->
        Array.init ntypes (fun j ->
            let form =
              Mdsp_ff.Nonbonded.lorentz_berthelot topo.lj_types.(i)
                topo.lj_types.(j)
            in
            compile ~r_min ~r_cut:cutoff ~n ~quantize
              (of_form form ~cutoff)))
  in
  let electrostatic =
    let shape =
      match elec with
      | Mdsp_ff.Pair_interactions.No_coulomb -> None
      | Cutoff_coulomb ->
          Some
            (fun r2 ->
              let r = sqrt r2 in
              ((1. /. r) -. (1. /. cutoff), 1. /. (r2 *. r)))
      | Reaction_field { epsilon_rf } ->
          let krf =
            (epsilon_rf -. 1.)
            /. ((2. *. epsilon_rf) +. 1.)
            /. (cutoff ** 3.)
          in
          let crf = (1. /. cutoff) +. (krf *. cutoff *. cutoff) in
          Some
            (fun r2 ->
              let r = sqrt r2 in
              ( (1. /. r) +. (krf *. r2) -. crf,
                (1. /. (r2 *. r)) -. (2. *. krf) ))
      | Ewald_real { beta } ->
          Some
            (fun r2 ->
              let e, f =
                Mdsp_ff.Nonbonded.eval
                  (Mdsp_ff.Nonbonded.Coulomb_erfc { qq = 1.; beta })
                  r2
              in
              (e, f))
    in
    Option.map (fun s -> compile ~r_min ~r_cut:cutoff ~n ~quantize s) shape
  in
  { Mdsp_machine.Htis.lj; electrostatic }
