open Mdsp_util

type t = {
  temps : float array;
  weights : float array;  (** dimensionless log-weights a_m *)
  mutable rung : int;
  stride : int;
  mutable wl_delta : float;  (** Wang–Landau adaption increment *)
  mutable adapting : bool;
  visits : int array;
  mutable attempts : int;
  mutable accepts : int;
}

let create ?(wl_delta = 0.5) ~temps ~stride () =
  let m = Array.length temps in
  if m < 2 then invalid_arg "Tempering.create: need at least two rungs";
  for i = 1 to m - 1 do
    if temps.(i) <= temps.(i - 1) then
      invalid_arg "Tempering.create: temperatures must increase"
  done;
  {
    temps;
    weights = Array.make m 0.;
    rung = 0;
    stride;
    wl_delta;
    adapting = true;
    visits = Array.make m 0;
    attempts = 0;
    accepts = 0;
  }

let rung t = t.rung
let stride t = t.stride
let temperature t = t.temps.(t.rung)
let visits t = Array.copy t.visits
let weights t = Array.copy t.weights

let acceptance_rate t =
  if t.attempts = 0 then 0.
  else float_of_int t.accepts /. float_of_int t.attempts

let freeze_adaption t = t.adapting <- false

let attempt t eng =
  let m = t.rung in
  let n =
    if m = 0 then 1
    else if m = Array.length t.temps - 1 then m - 1
    else if Rng.uniform (Mdsp_md.Engine.rng eng) < 0.5 then m - 1
    else m + 1
  in
  t.attempts <- t.attempts + 1;
  let u = Mdsp_md.Engine.potential_energy eng in
  let beta_m = 1. /. Units.kt t.temps.(m) in
  let beta_n = 1. /. Units.kt t.temps.(n) in
  let log_p = ((beta_m -. beta_n) *. u) +. t.weights.(n) -. t.weights.(m) in
  let accept =
    log_p >= 0. || Rng.uniform (Mdsp_md.Engine.rng eng) < exp log_p
  in
  if accept then begin
    t.accepts <- t.accepts + 1;
    let scale = sqrt (t.temps.(n) /. t.temps.(m)) in
    Mdsp_md.State.scale_velocities (Mdsp_md.Engine.state eng) scale;
    Mdsp_md.Engine.set_temperature eng t.temps.(n);
    t.rung <- n
  end

let hook t eng =
  if Mdsp_md.Engine.steps_done eng mod t.stride = 0 then begin
    let m = t.rung in
    t.visits.(m) <- t.visits.(m) + 1;
    if t.adapting then begin
      (* Wang–Landau: penalize the current rung so the walk spreads; the
         increment shrinks once every rung has been visited repeatedly. *)
      t.weights.(m) <- t.weights.(m) -. t.wl_delta;
      let min_visits = Array.fold_left min max_int t.visits in
      if min_visits > 0 && min_visits mod 20 = 0 then
        t.wl_delta <- Float.max 1e-3 (t.wl_delta *. 0.8)
    end;
    attempt t eng
  end

let attach t eng =
  Mdsp_md.Engine.set_temperature eng t.temps.(t.rung);
  Mdsp_md.Engine.add_post_step eng ~name:"tempering" (hook t)

(* Tempering costs one reduction of the potential energy plus a scalar
   Metropolis test: all on the programmable cores / network. *)
let flex_ops_per_step _ = 50.
let method_bytes_per_step _ = 64.
