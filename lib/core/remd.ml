open Mdsp_util

type t = {
  engines : Mdsp_md.Engine.t array;
  temps : float array;
  stride : int;
  exch_rngs : Rng.t array;  (** one dedicated stream per neighbor pair *)
  mutable sweep : int;
  attempts : int array;  (** per neighbor pair (i, i+1) *)
  accepts : int array;
  replica_of_config : int array;
      (** tracks which rung each initial configuration currently occupies *)
}

let create ~engines ~temps ~stride ~seed =
  let m = Array.length engines in
  if Array.length temps <> m then
    invalid_arg
      (Printf.sprintf "Remd.create: %d engines but %d temperatures" m
         (Array.length temps));
  if m < 2 then invalid_arg "Remd.create: need at least two rungs";
  if stride < 1 then invalid_arg "Remd.create: stride must be >= 1";
  Array.iteri
    (fun i temp ->
      if temp <= 0. then
        invalid_arg
          (Printf.sprintf "Remd.create: temperature %d is non-positive (%g K)"
             i temp);
      if i > 0 && temp <= temps.(i - 1) then
        invalid_arg
          (Printf.sprintf
             "Remd.create: ladder must increase strictly (rung %d: %g K <= %g \
              K)"
             i temp temps.(i - 1)))
    temps;
  Array.iteri
    (fun i e ->
      match (Mdsp_md.Engine.config e).Mdsp_md.Engine.thermostat with
      | Mdsp_md.Engine.No_thermostat ->
          invalid_arg
            (Printf.sprintf
               "Remd.create: engine %d has no thermostat to retarget" i)
      | _ -> ())
    engines;
  Array.iteri (fun i e -> Mdsp_md.Engine.set_temperature e temps.(i)) engines;
  (* One child stream per neighbor pair, split off the seed in pair order:
     pair i's k-th decision depends only on (seed, i, k), never on the other
     pairs or on how replica stepping is interleaved. *)
  let master = Rng.create seed in
  {
    engines;
    temps;
    stride;
    exch_rngs = Array.init (m - 1) (fun _ -> Rng.split master);
    sweep = 0;
    attempts = Array.make (m - 1) 0;
    accepts = Array.make (m - 1) 0;
    replica_of_config = Array.init m Fun.id;
  }

let attempt_pair t i =
  let e_lo = t.engines.(i) and e_hi = t.engines.(i + 1) in
  let u_lo = Mdsp_md.Engine.potential_energy e_lo in
  let u_hi = Mdsp_md.Engine.potential_energy e_hi in
  let beta_lo = 1. /. Units.kt t.temps.(i) in
  let beta_hi = 1. /. Units.kt t.temps.(i + 1) in
  let log_p = (beta_lo -. beta_hi) *. (u_lo -. u_hi) in
  t.attempts.(i) <- t.attempts.(i) + 1;
  (* Draw unconditionally so the stream position advances once per attempt
     regardless of the criterion's short-circuit. *)
  let u = Rng.uniform t.exch_rngs.(i) in
  if log_p >= 0. || u < exp log_p then begin
    t.accepts.(i) <- t.accepts.(i) + 1;
    (* Swap configurations (positions + velocities), keeping each engine
       pinned to its rung; rescale velocities to the new temperature. *)
    let st_lo = Mdsp_md.Engine.state e_lo in
    let st_hi = Mdsp_md.Engine.state e_hi in
    let tmp = Mdsp_md.State.copy st_lo in
    Mdsp_md.State.blit ~src:st_hi ~dst:st_lo;
    Mdsp_md.State.blit ~src:tmp ~dst:st_hi;
    let f = sqrt (t.temps.(i) /. t.temps.(i + 1)) in
    Mdsp_md.State.scale_velocities st_lo f;
    Mdsp_md.State.scale_velocities st_hi (1. /. f);
    Mdsp_md.Engine.refresh_forces e_lo;
    Mdsp_md.Engine.refresh_forces e_hi;
    (* Track the walk of the configurations across rungs. *)
    let m = Array.length t.replica_of_config in
    for c = 0 to m - 1 do
      if t.replica_of_config.(c) = i then t.replica_of_config.(c) <- i + 1
      else if t.replica_of_config.(c) = i + 1 then t.replica_of_config.(c) <- i
    done
  end

let exchange_sweep t =
  (* Alternate even/odd neighbor pairs each sweep. *)
  let start = t.sweep mod 2 in
  let i = ref start in
  while !i < Array.length t.engines - 1 do
    attempt_pair t !i;
    i := !i + 2
  done;
  t.sweep <- t.sweep + 1

let run t ~sweeps =
  for _ = 1 to sweeps do
    Array.iter (fun e -> Mdsp_md.Engine.run e t.stride) t.engines;
    exchange_sweep t
  done

let acceptance t =
  Array.init
    (Array.length t.attempts)
    (fun i ->
      if t.attempts.(i) = 0 then 0.
      else float_of_int t.accepts.(i) /. float_of_int t.attempts.(i))

let engines t = t.engines
let temps t = Array.copy t.temps
let stride t = t.stride
let sweeps_done t = t.sweep
let attempts t = Array.copy t.attempts
let accepts t = Array.copy t.accepts
let replica_of_config t = Array.copy t.replica_of_config

(* --- checkpointing of the exchange bookkeeping --- *)

type snapshot = {
  snap_sweep : int;
  snap_attempts : int array;
  snap_accepts : int array;
  snap_config : int array;
  snap_rngs : Rng.snapshot array;
}

let snapshot t =
  {
    snap_sweep = t.sweep;
    snap_attempts = Array.copy t.attempts;
    snap_accepts = Array.copy t.accepts;
    snap_config = Array.copy t.replica_of_config;
    snap_rngs = Array.map Rng.snapshot t.exch_rngs;
  }

let restore t s =
  let m = Array.length t.engines in
  if
    Array.length s.snap_config <> m
    || Array.length s.snap_attempts <> m - 1
    || Array.length s.snap_accepts <> m - 1
    || Array.length s.snap_rngs <> m - 1
  then invalid_arg "Remd.restore: snapshot ladder size mismatch";
  t.sweep <- s.snap_sweep;
  Array.blit s.snap_attempts 0 t.attempts 0 (m - 1);
  Array.blit s.snap_accepts 0 t.accepts 0 (m - 1);
  Array.blit s.snap_config 0 t.replica_of_config 0 m;
  Array.iteri (fun i sn -> Rng.restore t.exch_rngs.(i) sn) s.snap_rngs

(* Machine mapping: each replica occupies a machine partition; an exchange
   is two scalar energies plus a decision broadcast, then a configuration
   swap is avoided by swapping temperatures in the real implementation —
   we charge the conservative configuration-swap bytes. *)
let method_bytes_per_step t ~n_atoms =
  float_of_int (n_atoms * 24) /. float_of_int t.stride
