open Mdsp_util

type expr =
  | Const of float
  | Param of string
  | Time
  | X | Y | Z
  | Vx | Vy | Vz
  | Aux of int
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr
  | Neg of expr
  | Pow_int of expr * int
  | Sqrt of expr
  | Exp of expr
  | Log of expr
  | Cos of expr
  | Sin of expr
  | Min of expr * expr
  | Max of expr * expr

let ( + ) a b = Add (a, b)
let ( - ) a b = Sub (a, b)
let ( * ) a b = Mul (a, b)
let ( / ) a b = Div (a, b)
let c v = Const v
let sq e = Pow_int (e, 2)

let rec uses_velocity = function
  | Vx | Vy | Vz -> true
  | Const _ | Param _ | Time | X | Y | Z | Aux _ -> false
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Min (a, b) | Max (a, b)
    ->
      uses_velocity a || uses_velocity b
  | Neg a | Pow_int (a, _) | Sqrt a | Exp a | Log a | Cos a | Sin a ->
      uses_velocity a

let rec params_of = function
  | Param p -> [ p ]
  | Const _ | Time | X | Y | Z | Vx | Vy | Vz | Aux _ -> []
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Min (a, b) | Max (a, b)
    ->
      params_of a @ params_of b
  | Neg a | Pow_int (a, _) | Sqrt a | Exp a | Log a | Cos a | Sin a ->
      params_of a

(* Min and max are kinked; before differentiating we rewrite them through
   the identity min(a,b) = (a + b - |a-b|)/2 with |x| smoothed as
   sqrt(x^2 + eps). The smoothing error is O(sqrt eps) only within
   ~1e-8 of the kink — in practice Min/Max appear in flat-bottom
   restraints where the kink carries zero force anyway. *)
let smooth_minmax e =
  let eps = Const 1e-16 in
  let abs_smooth x = Sqrt (Add (Mul (x, x), eps)) in
  let rec go = function
    | Min (a, b) ->
        let a = go a and b = go b in
        Div (Sub (Add (a, b), abs_smooth (Sub (a, b))), Const 2.)
    | Max (a, b) ->
        let a = go a and b = go b in
        Div (Add (Add (a, b), abs_smooth (Sub (a, b))), Const 2.)
    | Add (a, b) -> Add (go a, go b)
    | Sub (a, b) -> Sub (go a, go b)
    | Mul (a, b) -> Mul (go a, go b)
    | Div (a, b) -> Div (go a, go b)
    | Neg a -> Neg (go a)
    | Pow_int (a, n) -> Pow_int (go a, n)
    | Sqrt a -> Sqrt (go a)
    | Exp a -> Exp (go a)
    | Log a -> Log (go a)
    | Cos a -> Cos (go a)
    | Sin a -> Sin (go a)
    | (Const _ | Param _ | Time | X | Y | Z | Vx | Vy | Vz | Aux _) as leaf ->
        leaf
  in
  go e

(* Symbolic differentiation with respect to a coordinate. *)
let rec diff e (v : [ `X | `Y | `Z ]) =
  let d x = diff x v in
  match e with
  | Const _ | Param _ | Time | Vx | Vy | Vz | Aux _ -> Const 0.
  | X -> Const (if v = `X then 1. else 0.)
  | Y -> Const (if v = `Y then 1. else 0.)
  | Z -> Const (if v = `Z then 1. else 0.)
  | Add (a, b) -> Add (d a, d b)
  | Sub (a, b) -> Sub (d a, d b)
  | Mul (a, b) -> Add (Mul (d a, b), Mul (a, d b))
  | Div (a, b) -> Div (Sub (Mul (d a, b), Mul (a, d b)), Mul (b, b))
  | Neg a -> Neg (d a)
  | Pow_int (a, n) ->
      if n = 0 then Const 0.
      else Mul (Mul (Const (float_of_int n), Pow_int (a, Stdlib.( - ) n 1)), d a)
  | Sqrt a ->
      (* Guard the 0/0 at a = 0 (e.g. d/dx sqrt(x^2+y^2+z^2) at the
         origin): the epsilon makes the chain-rule limit resolve to 0
         instead of NaN, at a relative error below 1e-15 elsewhere. *)
      Div (d a, Add (Mul (Const 2., Sqrt a), Const 1e-15))
  | Exp a -> Mul (Exp a, d a)
  | Log a -> Div (d a, a)
  | Cos a -> Neg (Mul (Sin a, d a))
  | Sin a -> Mul (Cos a, d a)
  | (Min _ | Max _) as m -> d (smooth_minmax m)

exception Unbound_parameter of string

let rec simplify e =
  match e with
  | Add (a, b) -> begin
      match (simplify a, simplify b) with
      | Const x, Const y -> Const (x +. y)
      | Const 0., s | s, Const 0. -> s
      | a', b' -> Add (a', b')
    end
  | Sub (a, b) -> begin
      match (simplify a, simplify b) with
      | Const x, Const y -> Const (x -. y)
      | s, Const 0. -> s
      | Const 0., s -> Neg s
      | a', b' -> Sub (a', b')
    end
  | Mul (a, b) -> begin
      match (simplify a, simplify b) with
      | Const x, Const y -> Const (x *. y)
      | Const 0., _ | _, Const 0. -> Const 0.
      | Const 1., s | s, Const 1. -> s
      | Const (-1.), s | s, Const (-1.) -> Neg s
      | a', b' -> Mul (a', b')
    end
  | Div (a, b) -> begin
      match (simplify a, simplify b) with
      | Const 0., _ -> Const 0.
      | Const x, Const y when y <> 0. -> Const (x /. y)
      | s, Const 1. -> s
      | a', b' -> Div (a', b')
    end
  | Neg a -> begin
      match simplify a with
      | Const x -> Const (-.x)
      | Neg s -> s
      | s -> Neg s
    end
  | Pow_int (a, n) -> begin
      match (simplify a, n) with
      | _, 0 -> Const 1.
      | s, 1 -> s
      | Const x, _ -> Const (x ** float_of_int n)
      | s, _ -> Pow_int (s, n)
    end
  | Sqrt a -> begin
      match simplify a with
      | Const x when x >= 0. -> Const (sqrt x)
      | s -> Sqrt s
    end
  | Exp a -> begin
      match simplify a with Const x -> Const (exp x) | s -> Exp s
    end
  | Log a -> begin
      match simplify a with
      | Const x when x > 0. -> Const (log x)
      | s -> Log s
    end
  | Cos a -> begin
      match simplify a with Const x -> Const (cos x) | s -> Cos s
    end
  | Sin a -> begin
      match simplify a with Const x -> Const (sin x) | s -> Sin s
    end
  | Min (a, b) -> begin
      match (simplify a, simplify b) with
      | Const x, Const y -> Const (Float.min x y)
      | a', b' -> Min (a', b')
    end
  | Max (a, b) -> begin
      match (simplify a, simplify b) with
      | Const x, Const y -> Const (Float.max x y)
      | a', b' -> Max (a', b')
    end
  | e -> e

let rec expr_ops e =
  let open! Stdlib in
  match e with
  | Const _ | Param _ | Time | X | Y | Z | Vx | Vy | Vz | Aux _ -> 0
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Min (a, b) | Max (a, b)
    ->
      1 + expr_ops a + expr_ops b
  | Neg a -> 1 + expr_ops a
  | Pow_int (a, n) -> max 1 (abs n - 1) + expr_ops a
  | Sqrt a | Exp a | Log a | Cos a | Sin a ->
      (* transcendental units cost several multiply-adds on the cores *)
      4 + expr_ops a

let rec eval_expr e ~params ~time ~(pos : Vec3.t) ~(vel : Vec3.t) ~aux =
  let ev x = eval_expr x ~params ~time ~pos ~vel ~aux in
  match e with
  | Const v -> v
  | Param p -> params p
  | Time -> time
  | X -> pos.Vec3.x
  | Y -> pos.Vec3.y
  | Z -> pos.Vec3.z
  | Vx -> vel.Vec3.x
  | Vy -> vel.Vec3.y
  | Vz -> vel.Vec3.z
  | Aux i -> if i < Array.length aux then aux.(i) else 0.
  | Add (a, b) -> ev a +. ev b
  | Sub (a, b) -> ev a -. ev b
  | Mul (a, b) -> ev a *. ev b
  | Div (a, b) -> ev a /. ev b
  | Neg a -> -.ev a
  | Pow_int (a, n) ->
      let base = ev a in
      let rec pow acc k = if k = 0 then acc else pow (acc *. base) (Stdlib.( - ) k 1) in
      if n >= 0 then pow 1. n else 1. /. pow 1. (Stdlib.( ~- ) n)
  | Sqrt a -> sqrt (ev a)
  | Exp a -> exp (ev a)
  | Log a -> log (ev a)
  | Cos a -> cos (ev a)
  | Sin a -> sin (ev a)
  | Min (a, b) -> Float.min (ev a) (ev b)
  | Max (a, b) -> Float.max (ev a) (ev b)

type t = {
  kname : string;
  energy : expr;
  dx : expr;
  dy : expr;
  dz : expr;
  particles : int array;
  params : (string, float) Hashtbl.t;
  ops : int;
}

let create ~name ~energy ~particles ~params =
  if uses_velocity energy then
    invalid_arg "Kernel.create: energy must not reference velocities";
  let table = Hashtbl.create 8 in
  List.iter (fun (k, v) -> Hashtbl.replace table k v) params;
  List.iter
    (fun p ->
      if not (Hashtbl.mem table p) then
        invalid_arg (Printf.sprintf "Kernel.create: unbound parameter %S" p))
    (params_of energy);
  let smooth = smooth_minmax energy in
  let dx = simplify (diff smooth `X) in
  let dy = simplify (diff smooth `Y) in
  let dz = simplify (diff smooth `Z) in
  let energy = simplify energy in
  let ops =
    Stdlib.( + )
      (Stdlib.( + ) (expr_ops energy) (expr_ops dx))
      (Stdlib.( + ) (expr_ops dy) (expr_ops dz))
  in
  { kname = name; energy; dx; dy; dz; particles; params = table; ops }

let name t = t.kname

let set_param t key v =
  if not (Hashtbl.mem t.params key) then
    invalid_arg (Printf.sprintf "Kernel.set_param: unknown parameter %S" key);
  Hashtbl.replace t.params key v

let get_param t key =
  match Hashtbl.find_opt t.params key with
  | Some v -> v
  | None ->
      invalid_arg (Printf.sprintf "Kernel.get_param: unknown parameter %S" key)

let energy_expr t = t.energy
let force_exprs t = (t.dx, t.dy, t.dz)

let params t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.params []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Infix pretty-printer; [prec] is the binding strength of the context
   (1 additive, 2 multiplicative, 3 prefix minus, 4 power). *)
let rec pp_prec prec fmt e =
  let open Format in
  let wrap p doc = if p < prec then fprintf fmt "(%t)" doc else doc fmt in
  match e with
  | Const v ->
      if v < 0. then wrap 3 (fun f -> fprintf f "%g" v)
      else fprintf fmt "%g" v
  | Param p -> pp_print_string fmt p
  | Time -> pp_print_string fmt "t"
  | X -> pp_print_string fmt "x"
  | Y -> pp_print_string fmt "y"
  | Z -> pp_print_string fmt "z"
  | Vx -> pp_print_string fmt "vx"
  | Vy -> pp_print_string fmt "vy"
  | Vz -> pp_print_string fmt "vz"
  | Aux i -> fprintf fmt "aux[%d]" i
  | Add (a, b) ->
      wrap 1 (fun f -> fprintf f "%a + %a" (pp_prec 1) a (pp_prec 1) b)
  | Sub (a, b) ->
      wrap 1 (fun f -> fprintf f "%a - %a" (pp_prec 1) a (pp_prec 2) b)
  | Mul (a, b) ->
      wrap 2 (fun f -> fprintf f "%a * %a" (pp_prec 2) a (pp_prec 2) b)
  | Div (a, b) ->
      wrap 2 (fun f -> fprintf f "%a / %a" (pp_prec 2) a (pp_prec 3) b)
  | Neg a -> wrap 3 (fun f -> fprintf f "-%a" (pp_prec 4) a)
  | Pow_int (a, n) ->
      wrap 4 (fun f -> fprintf f "%a^%d" (pp_prec 5) a n)
  | Sqrt a -> fprintf fmt "sqrt(%a)" (pp_prec 0) a
  | Exp a -> fprintf fmt "exp(%a)" (pp_prec 0) a
  | Log a -> fprintf fmt "log(%a)" (pp_prec 0) a
  | Cos a -> fprintf fmt "cos(%a)" (pp_prec 0) a
  | Sin a -> fprintf fmt "sin(%a)" (pp_prec 0) a
  | Min (a, b) ->
      fprintf fmt "min(%a, %a)" (pp_prec 0) a (pp_prec 0) b
  | Max (a, b) ->
      fprintf fmt "max(%a, %a)" (pp_prec 0) a (pp_prec 0) b

let pp_expr fmt e = pp_prec 0 fmt e
let expr_to_string e = Format.asprintf "%a" pp_expr e

let ops_per_particle t = t.ops
let flex_ops t = float_of_int (Stdlib.( * ) t.ops (Array.length t.particles))

let to_bias ?velocities ?aux ~time t =
  let lookup p =
    match Hashtbl.find_opt t.params p with
    | Some v -> v
    | None -> raise (Unbound_parameter p)
  in
  let empty_aux = [||] in
  {
    Mdsp_md.Force_calc.bias_name = t.kname;
    bias_compute =
      (fun box positions acc ->
        let open Pbc in
        let center = Vec3.make (box.lx /. 2.) (box.ly /. 2.) (box.lz /. 2.) in
        let now = time () in
        let vels = Option.map (fun f -> f ()) velocities in
        let e_total = ref 0. in
        Array.iter
          (fun i ->
            let pos = Pbc.min_image box positions.(i) center in
            let vel =
              match vels with Some v -> v.(i) | None -> Vec3.zero
            in
            let av = match aux with Some f -> f i | None -> empty_aux in
            let ev ex =
              eval_expr ex ~params:lookup ~time:now ~pos ~vel ~aux:av
            in
            e_total := !e_total +. ev t.energy;
            let f = Vec3.make (-.ev t.dx) (-.ev t.dy) (-.ev t.dz) in
            acc.Mdsp_ff.Bonded.forces.(i) <-
              Vec3.add acc.Mdsp_ff.Bonded.forces.(i) f)
          t.particles;
        !e_total);
  }
