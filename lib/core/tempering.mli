(** Simulated tempering: a single replica performs a random walk on a
    temperature ladder, with Metropolis moves every [stride] steps using the
    instantaneous potential energy and adaptive (Wang–Landau) rung weights.

    The engine must run a thermostat whose target the method can switch
    (any of Langevin / Berendsen / Nosé–Hoover).

    Randomness: all draws (the move direction on interior rungs and the
    Metropolis uniform) come from the {e attached engine's} stream
    ({!Mdsp_md.Engine.rng}), so a ladder walker is self-contained — an
    ensemble of walkers on distinct engines can step concurrently
    ([Mdsp_ensemble.Ensemble.run_tempering]) without any cross-replica RNG
    coupling. *)

type t

val create : ?wl_delta:float -> temps:float array -> stride:int -> unit -> t

(** Register the per-step hook; also sets the engine to the initial rung. *)
val attach : t -> Mdsp_md.Engine.t -> unit

val rung : t -> int

(** Steps between attempted rung moves. *)
val stride : t -> int

val temperature : t -> float
val visits : t -> int array
val weights : t -> float array
val acceptance_rate : t -> float

(** Stop weight adaption (production phase). *)
val freeze_adaption : t -> unit

val flex_ops_per_step : t -> float
val method_bytes_per_step : t -> float
