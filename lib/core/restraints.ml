open Mdsp_util

(* Positional restraint as a kernel: k * ((x-x0)^2 + (y-y0)^2 + (z-z0)^2).
   Coordinates inside kernels are relative to the box center, so reference
   points are too. *)
let position ~name ~particles ~k ~reference =
  let label = name in
  let open! Kernel in
  let e =
    (c k * sq (X - Param "x0"))
    + (c k * sq (Y - Param "y0"))
    + (c k * sq (Z - Param "z0"))
  in
  Kernel.create ~name:label ~energy:e ~particles
    ~params:
      [
        ("x0", reference.Vec3.x);
        ("y0", reference.Vec3.y);
        ("z0", reference.Vec3.z);
      ]

(* Flat-bottom spherical restraint: zero inside radius r0, harmonic wall
   outside: k * max(0, r - r0)^2 with r relative to the box center. *)
let flat_bottom ~name ~particles ~k ~radius =
  let label = name in
  let open! Kernel in
  let r = Sqrt (sq X + sq Y + sq Z) in
  let excess = Max (r - Param "r0", c 0.) in
  Kernel.create ~name:label
    ~energy:(c k * sq excess)
    ~particles
    ~params:[ ("r0", radius) ]

let kernel_bias eng kernel =
  let time () = (Mdsp_md.Engine.state eng).Mdsp_md.State.time in
  Kernel.to_bias ~time kernel

let attach_kernel eng kernel =
  Mdsp_md.Force_calc.add_bias
    (Mdsp_md.Engine.force_calc eng)
    (kernel_bias eng kernel)

(* Distance restraint between two atoms through the CV machinery. *)
let distance ~name ~i ~j ~k ~target =
  Cv.harmonic_bias ~name ~cv:(Cv.distance ~i ~j) ~k ~center:(fun () -> target)

let flex_ops_of_kernel = Kernel.flex_ops
