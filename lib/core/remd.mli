(** Temperature replica exchange (parallel tempering).

    Runs a ladder of engines, one per temperature rung; every [stride] steps
    neighboring rungs attempt a Metropolis configuration exchange
    (alternating even/odd pairs per sweep). Each engine must run a
    thermostat.

    {2 Exchange randomness and draw order}

    {!create} splits one dedicated child stream off the seed per neighbor
    pair, in pair order (pair 0 first). Every attempt of pair [(i, i+1)]
    draws {e exactly one} uniform from stream [i], unconditionally — before
    the Metropolis criterion is evaluated, even when [log_p >= 0] would
    accept without looking at it. The k-th decision of a pair therefore
    depends only on [(seed, i, k)] and the two replica energies: it is
    independent of the other pairs' outcomes and of how replica stepping is
    interleaved, which is what lets the sharded runner
    ([Mdsp_ensemble.Ensemble]) reproduce the sequential {!run} bit for bit
    while stepping replicas concurrently. *)

type t

(** [create ~engines ~temps ~stride ~seed] validates and assembles the
    ladder, retargeting each engine's thermostat to its rung temperature.

    Raises [Invalid_argument] when [engines] and [temps] lengths differ,
    fewer than two rungs are given, [stride < 1], a temperature is
    non-positive, the ladder is not strictly increasing, or an engine has no
    thermostat to retarget. *)
val create :
  engines:Mdsp_md.Engine.t array -> temps:float array -> stride:int ->
  seed:int -> t

(** [run t ~sweeps] advances all replicas [sweeps * stride] steps with
    exchange attempts between sweeps, stepping the ladder sequentially on
    the calling domain. *)
val run : t -> sweeps:int -> unit

(** [exchange_sweep t] performs the exchange attempts of the current sweep
    (even pairs on even sweeps, odd pairs on odd sweeps) and advances the
    sweep counter. {!run} calls this after stepping; the ensemble runner
    calls it at the pool barrier — both paths see identical decisions (see
    the draw-order contract above). *)
val exchange_sweep : t -> unit

(** Per-neighbor-pair acceptance rates. *)
val acceptance : t -> float array

val engines : t -> Mdsp_md.Engine.t array

(** Copy of the rung temperatures (K), in ladder order. *)
val temps : t -> float array

(** Steps between exchange attempts. *)
val stride : t -> int

(** Completed exchange sweeps. *)
val sweeps_done : t -> int

(** Per-neighbor-pair attempt counts (copy). *)
val attempts : t -> int array

(** Per-neighbor-pair acceptance counts (copy). *)
val accepts : t -> int array

(** [replica_of_config t].(c) is the rung currently holding the
    configuration that started at rung [c] — diagnostics for ladder mixing. *)
val replica_of_config : t -> int array

(** The exchange bookkeeping (sweep counter, attempt/accept tallies,
    configuration walk, per-pair RNG streams) as an immutable value. Engine
    state is snapshotted separately ({!Mdsp_md.Engine.snapshot}); together
    they make an exact ensemble checkpoint. *)
type snapshot = {
  snap_sweep : int;
  snap_attempts : int array;
  snap_accepts : int array;
  snap_config : int array;
  snap_rngs : Mdsp_util.Rng.snapshot array;
}

val snapshot : t -> snapshot

(** Raises [Invalid_argument] if the snapshot was taken from a ladder of a
    different size. *)
val restore : t -> snapshot -> unit

(** Extra communication charged per step by the machine mapping. *)
val method_bytes_per_step : t -> n_atoms:int -> float
