(** Workload generators: synthetic systems that exercise the same code paths
    as the paper's biomolecular benchmarks (bonded + nonbonded + long-range +
    constraints) at controllable sizes.

    Each builder returns a {!system}: topology + initial coordinates + box.
    Use {!make_engine} to assemble a ready-to-run {!Mdsp_md.Engine.t}. *)

open Mdsp_util

type system = {
  topo : Mdsp_ff.Topology.t;
  positions : Vec3.t array;
  box : Pbc.t;
  label : string;
}

(** Lennard-Jones fluid (argon-like: eps 0.238 kcal/mol, sigma 3.405 A,
    mass 39.948) on a cubic lattice at reduced density [rho_star]
    (default 0.8). *)
val lj_fluid : ?rho_star:float -> n:int -> unit -> system

(** Kob–Andersen 80:20 binary Lennard-Jones mixture at the canonical
    glass-forming density (rho* = 1.2 in A-A units) — the standard
    supercooled-liquid benchmark. Types: 0 = A (80%), 1 = B (20%). Returns
    the system; note the non-additive cross interactions are installed via
    the returned evaluator maker rather than Lorentz–Berthelot. *)
val kob_andersen : n:int -> unit -> system

(** The Kob–Andersen evaluator with the canonical non-additive parameters
    (AA: 1.0/1.0, AB: 1.5/0.8, BB: 0.5/0.88 in (eps, sigma) relative
    units), scaled to argon-like absolute units. *)
val kob_andersen_evaluator :
  system -> cutoff:float -> Mdsp_ff.Pair_interactions.evaluator

(** Rigid 3-site water box: [n_side]^3 molecules on a lattice at liquid
    density. *)
val water_box : ?seed:int -> n_side:int -> unit -> system

(** Rigid 4-site (TIP4P-class) water box: like {!water_box} but with the
    negative charge on a massless virtual M site — exercises the
    virtual-site machinery end to end. *)
val water_box_tip4p : ?seed:int -> n_side:int -> unit -> system

(** A bead-spring "protein" surrogate: a chain of [n_beads] residues with
    bonds, angles and dihedrals, solvated in an LJ fluid so that the total
    atom count is [n_total] (chain + solvent). Charges alternate +/-q on
    sidechain-like beads when [charged] (default true). *)
val bead_chain :
  ?seed:int -> ?charged:bool -> n_beads:int -> n_total:int -> unit -> system

(** A +q/-q ion pair (default q = 1) solvated in LJ particles; the ions
    start [separation] apart. Used by the umbrella-sampling and steered-MD
    experiments. *)
val ion_pair :
  ?seed:int -> ?separation:float -> ?charge:float -> n_solvent:int -> unit ->
  system

(** One particle in a quartic double-well external potential
    [v(x) = barrier * ((x/half_width)^2 - 1)^2] along x (y, z harmonic).
    The bias implementing the well is registered automatically by
    {!make_engine} when the system was built here. Minima sit at
    [x = +- half_width] relative to the box center. *)
val double_well :
  ?barrier:float -> ?half_width:float -> unit -> system

(** The external-potential bias for {!double_well} (also used standalone by
    the metadynamics and TAMD experiments). Coordinates are relative to the
    box center. *)
val double_well_bias :
  barrier:float -> half_width:float -> Mdsp_md.Force_calc.bias

(** Analytic free energy of the double well along x at temperature [temp]:
    F(x) = v(x) (the y/z parts separate); useful as the metadynamics
    reference. *)
val double_well_energy : barrier:float -> half_width:float -> float -> float

(** One particle in a 2D double-well external potential
    [v = barrier ((x/a)^2 - 1)^2 + ky (y - bow (1 - (x/a)^2))^2 + kz z^2]
    whose minimum free-energy path bows away from the straight line: minima
    at (+-a, 0), saddle near (0, bow). Used by the string-method experiment.
    [make_engine] registers the bias automatically. *)
val double_well_2d :
  ?barrier:float -> ?half_width:float -> ?bow:float -> unit -> system

val double_well_2d_bias :
  barrier:float -> half_width:float -> bow:float -> Mdsp_md.Force_calc.bias

(** The minimum-energy path of {!double_well_2d}: y as a function of x. *)
val double_well_2d_path : half_width:float -> bow:float -> float -> float

(** Named benchmark systems of paper-era sizes. *)
type preset = { name : string; atoms : int; build : unit -> system }

val presets : preset list

(** [of_name s] builds the preset named [s], or parses the parametric
    families [lj<N>] (N atoms) and [water<S>] (S molecules per box edge).
    Raises [Failure] with a descriptive message on an unknown name — the
    single place preset spellings are resolved, shared by the CLI and the
    job service. *)
val of_name : string -> system

(** Assemble an engine with sensible defaults: cutoff 9 A (or less for small
    boxes), reaction-field electrostatics for charged systems, Verlet skin 1
    A. [config] defaults to {!Mdsp_md.Engine.default_config}; [exec]
    (default serial) selects the execution backend the force pipeline runs
    on.

    [gse_grid] switches a charged system to grid electrostatics: real-space
    Ewald pairs ([Ewald_real], beta = 3/cutoff) plus the GSE reciprocal
    solver on the given power-of-two grid, all phases of which run on
    [exec]. Ignored for uncharged systems; an explicit [elec] still wins
    for the pair part.

    [soa] (default false) installs the flat structure-of-arrays fast path
    for the bonded/1-4/pair phases ({!Mdsp_md.Soa_kernels}); results are
    bitwise identical to the boxed reference kernels. The neighbor list
    always runs its tiled rebuild on [exec] regardless. *)
val make_engine :
  ?config:Mdsp_md.Engine.config ->
  ?cutoff:float ->
  ?elec:Mdsp_ff.Pair_interactions.electrostatics ->
  ?gse_grid:int * int * int ->
  ?seed:int ->
  ?exec:Exec.t ->
  ?soa:bool ->
  system ->
  Mdsp_md.Engine.t
