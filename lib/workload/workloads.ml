open Mdsp_util

type system = {
  topo : Mdsp_ff.Topology.t;
  positions : Vec3.t array;
  box : Pbc.t;
  label : string;
}

(* Argon-like LJ parameters. *)
let ar_eps = 0.238
let ar_sigma = 3.405
let ar_mass = 39.948

let cubic_lattice_points n box_l =
  (* Smallest simple cubic lattice holding n points. *)
  let side = int_of_float (ceil (float_of_int n ** (1. /. 3.))) in
  let spacing = box_l /. float_of_int side in
  let pts = ref [] in
  (try
     for x = 0 to side - 1 do
       for y = 0 to side - 1 do
         for z = 0 to side - 1 do
           if List.length !pts >= n then raise Exit;
           pts :=
             Vec3.make
               ((float_of_int x +. 0.5) *. spacing)
               ((float_of_int y +. 0.5) *. spacing)
               ((float_of_int z +. 0.5) *. spacing)
             :: !pts
         done
       done
     done
   with Exit -> ());
  Array.of_list (List.rev !pts)

let lj_fluid ?(rho_star = 0.8) ~n () =
  if n < 2 then invalid_arg "Workloads.lj_fluid: need at least 2 atoms";
  (* rho* = rho sigma^3  =>  box volume = n sigma^3 / rho*. *)
  let vol = float_of_int n *. (ar_sigma ** 3.) /. rho_star in
  let box_l = vol ** (1. /. 3.) in
  let box = Pbc.cubic box_l in
  let positions = cubic_lattice_points n box_l in
  let b = Mdsp_ff.Topology.Builder.create () in
  Mdsp_ff.Topology.Builder.set_lj_types b [| (ar_eps, ar_sigma) |];
  for i = 0 to n - 1 do
    ignore i;
    ignore
      (Mdsp_ff.Topology.Builder.add_atom b ~mass:ar_mass ~charge:0. ~type_id:0
         ~name:"AR")
  done;
  let topo = Mdsp_ff.Topology.Builder.finish b in
  { topo; positions; box; label = Printf.sprintf "lj_fluid_%d" n }

(* Kob-Andersen units: eps_AA = ar_eps, sigma_AA = ar_sigma. *)
let ka_pairs =
  (* (eps, sigma) per (type_i, type_j), canonical KA ratios. *)
  [|
    [| (1.0, 1.0); (1.5, 0.8) |];
    [| (1.5, 0.8); (0.5, 0.88) |];
  |]

let kob_andersen ~n () =
  if n < 10 then invalid_arg "Workloads.kob_andersen: need >= 10 atoms";
  (* rho* = 1.2 in AA units. *)
  let vol = float_of_int n *. (ar_sigma ** 3.) /. 1.2 in
  let box_l = vol ** (1. /. 3.) in
  let box = Pbc.cubic box_l in
  let positions = cubic_lattice_points n box_l in
  let b = Mdsp_ff.Topology.Builder.create () in
  (* Per-type self parameters; cross terms come from the dedicated
     evaluator (KA is non-additive, so LB mixing would be wrong). *)
  Mdsp_ff.Topology.Builder.set_lj_types b
    [| (ar_eps, ar_sigma); (0.5 *. ar_eps, 0.88 *. ar_sigma) |];
  let n_b = n / 5 in
  for i = 0 to n - 1 do
    let is_b = i mod 5 = 4 in
    ignore
      (Mdsp_ff.Topology.Builder.add_atom b ~mass:ar_mass ~charge:0.
         ~type_id:(if is_b then 1 else 0)
         ~name:(if is_b then "B" else "A"))
  done;
  ignore n_b;
  let topo = Mdsp_ff.Topology.Builder.finish b in
  { topo; positions; box; label = Printf.sprintf "ka_%d" n }

let kob_andersen_evaluator sys ~cutoff =
  let topo = sys.topo in
  let types =
    Array.map (fun (a : Mdsp_ff.Topology.atom) -> a.type_id) topo.atoms
  in
  let forms =
    Array.map
      (Array.map (fun (e_rel, s_rel) ->
           Mdsp_ff.Nonbonded.Lennard_jones
             { epsilon = e_rel *. ar_eps; sigma = s_rel *. ar_sigma }))
      ka_pairs
  in
  let rc2 = cutoff *. cutoff in
  let eval i j r2 =
    if r2 >= rc2 then (0., 0.)
    else
      Mdsp_ff.Nonbonded.eval_truncated forms.(types.(i)).(types.(j)) ~cutoff
        ~trunc:Mdsp_ff.Nonbonded.Shift r2
  in
  { Mdsp_ff.Pair_interactions.eval; cutoff }

let water_box ?(seed = 11) ~n_side () =
  if n_side < 2 then invalid_arg "Workloads.water_box: n_side >= 2";
  let n_mol = n_side * n_side * n_side in
  (* Lattice spacing from liquid number density. *)
  let spacing = (1. /. Mdsp_ff.Water.number_density) ** (1. /. 3.) in
  let box_l = spacing *. float_of_int n_side in
  let box = Pbc.cubic box_l in
  let rng = Rng.create seed in
  let b = Mdsp_ff.Topology.Builder.create () in
  (* type 0: water O; type 1: water H (no LJ). *)
  Mdsp_ff.Topology.Builder.set_lj_types b [| Mdsp_ff.Water.o_lj; (0., 1.) |];
  let coords = ref [] in
  for x = 0 to n_side - 1 do
    for y = 0 to n_side - 1 do
      for z = 0 to n_side - 1 do
        let center =
          Vec3.make
            ((float_of_int x +. 0.5) *. spacing)
            ((float_of_int y +. 0.5) *. spacing)
            ((float_of_int z +. 0.5) *. spacing)
        in
        let _, pos =
          Mdsp_ff.Water.add_molecule b ~o_type:0 ~h_type:1 ~center ~orient:rng
        in
        coords := pos :: !coords
      done
    done
  done;
  let positions = Array.concat (List.rev !coords) in
  let topo = Mdsp_ff.Topology.Builder.finish b in
  { topo; positions; box; label = Printf.sprintf "water_%d" (3 * n_mol) }

let water_box_tip4p ?(seed = 11) ~n_side () =
  if n_side < 2 then invalid_arg "Workloads.water_box_tip4p: n_side >= 2";
  let n_mol = n_side * n_side * n_side in
  let spacing = (1. /. Mdsp_ff.Water.number_density) ** (1. /. 3.) in
  let box_l = spacing *. float_of_int n_side in
  let box = Pbc.cubic box_l in
  let rng = Rng.create seed in
  let b = Mdsp_ff.Topology.Builder.create () in
  (* type 0: O; type 1: H and the M virtual site (no LJ). *)
  Mdsp_ff.Topology.Builder.set_lj_types b
    [| Mdsp_ff.Water.Tip4p.o_lj; (0., 1.) |];
  let coords = ref [] in
  for x = 0 to n_side - 1 do
    for y = 0 to n_side - 1 do
      for z = 0 to n_side - 1 do
        let center =
          Vec3.make
            ((float_of_int x +. 0.5) *. spacing)
            ((float_of_int y +. 0.5) *. spacing)
            ((float_of_int z +. 0.5) *. spacing)
        in
        let _, pos =
          Mdsp_ff.Water.Tip4p.add_molecule b ~o_type:0 ~h_type:1 ~m_type:1
            ~center ~orient:rng
        in
        coords := pos :: !coords
      done
    done
  done;
  let positions = Array.concat (List.rev !coords) in
  let topo = Mdsp_ff.Topology.Builder.finish b in
  { topo; positions; box; label = Printf.sprintf "tip4p_%d" (4 * n_mol) }

let bead_chain ?(seed = 13) ?(charged = true) ~n_beads ~n_total () =
  if n_beads < 4 then invalid_arg "Workloads.bead_chain: n_beads >= 4";
  if n_total < n_beads then
    invalid_arg "Workloads.bead_chain: n_total >= n_beads";
  let n_solvent = n_total - n_beads in
  (* Size the box from the solvent LJ fluid density. *)
  let vol =
    float_of_int (max n_total 64) *. (ar_sigma ** 3.) /. 0.7
  in
  let box_l = vol ** (1. /. 3.) in
  let box = Pbc.cubic box_l in
  let rng = Rng.create seed in
  let b = Mdsp_ff.Topology.Builder.create () in
  (* type 0: chain bead; type 1: solvent. *)
  Mdsp_ff.Topology.Builder.set_lj_types b
    [| (0.2, 4.0); (ar_eps, ar_sigma) |];
  let bond_r0 = 3.8 in
  (* Chain as a self-avoiding-ish random walk from the box center. *)
  let chain_pos = Array.make n_beads Vec3.zero in
  chain_pos.(0) <- Vec3.make (box_l /. 2.) (box_l /. 2.) (box_l /. 2.);
  for i = 1 to n_beads - 1 do
    let dir = Rng.unit_vector rng in
    (* Bias the walk to extend, reducing overlaps. *)
    let prev_dir =
      if i = 1 then dir
      else Vec3.normalize (Vec3.sub chain_pos.(i - 1) chain_pos.(i - 2))
    in
    let step = Vec3.normalize (Vec3.add dir (Vec3.scale 1.5 prev_dir)) in
    chain_pos.(i) <- Vec3.add chain_pos.(i - 1) (Vec3.scale bond_r0 step)
  done;
  for i = 0 to n_beads - 1 do
    let charge =
      if charged && i mod 4 = 0 then if i mod 8 = 0 then 0.5 else -0.5 else 0.
    in
    ignore
      (Mdsp_ff.Topology.Builder.add_atom b ~mass:110. ~charge ~type_id:0
         ~name:(Printf.sprintf "B%d" i))
  done;
  for i = 0 to n_beads - 2 do
    Mdsp_ff.Topology.Builder.add_bond b ~i ~j:(i + 1) ~k:100. ~r0:bond_r0
  done;
  for i = 0 to n_beads - 3 do
    Mdsp_ff.Topology.Builder.add_angle b ~i ~j:(i + 1) ~k:(i + 2) ~k_theta:20.
      ~theta0:(110. *. Float.pi /. 180.)
  done;
  for i = 0 to n_beads - 4 do
    Mdsp_ff.Topology.Builder.add_dihedral b ~i ~j:(i + 1) ~k:(i + 2)
      ~l:(i + 3) ~k_phi:1.0 ~mult:3 ~phase:0.
  done;
  (* Solvent on a lattice, skipping sites too close to the chain. *)
  let solvent_sites = cubic_lattice_points (n_solvent * 2) box_l in
  let solvent_pos = ref [] in
  let taken = ref 0 in
  Array.iter
    (fun p ->
      if !taken < n_solvent then begin
        let clash =
          Array.exists (fun c -> Pbc.dist2 box p c < 3.0 *. 3.0) chain_pos
        in
        if not clash then begin
          solvent_pos := p :: !solvent_pos;
          incr taken
        end
      end)
    solvent_sites;
  if !taken < n_solvent then
    invalid_arg "Workloads.bead_chain: box too crowded for requested solvent";
  List.iter
    (fun _ ->
      ignore
        (Mdsp_ff.Topology.Builder.add_atom b ~mass:ar_mass ~charge:0.
           ~type_id:1 ~name:"SOL"))
    !solvent_pos;
  let topo = Mdsp_ff.Topology.Builder.finish b in
  let positions =
    Array.append chain_pos (Array.of_list (List.rev !solvent_pos))
  in
  { topo; positions; box; label = Printf.sprintf "chain%d_%d" n_beads n_total }

let ion_pair ?(seed = 17) ?(separation = 5.) ?(charge = 1.) ~n_solvent () =
  let n = n_solvent + 2 in
  let vol = float_of_int (max n 64) *. (ar_sigma ** 3.) /. 0.7 in
  let box_l = vol ** (1. /. 3.) in
  let box = Pbc.cubic box_l in
  ignore seed;
  let b = Mdsp_ff.Topology.Builder.create () in
  (* type 0: ion; type 1: solvent. *)
  Mdsp_ff.Topology.Builder.set_lj_types b
    [| (0.1, 2.8); (ar_eps, ar_sigma) |];
  let c = box_l /. 2. in
  let ion1 = Vec3.make (c -. (separation /. 2.)) c c in
  let ion2 = Vec3.make (c +. (separation /. 2.)) c c in
  ignore
    (Mdsp_ff.Topology.Builder.add_atom b ~mass:22.99 ~charge ~type_id:0
       ~name:"NA");
  ignore
    (Mdsp_ff.Topology.Builder.add_atom b ~mass:35.45 ~charge:(-.charge)
       ~type_id:0 ~name:"CL");
  let solvent_sites = cubic_lattice_points (n_solvent * 2) box_l in
  let solvent_pos = ref [] in
  let taken = ref 0 in
  Array.iter
    (fun p ->
      if !taken < n_solvent then begin
        if
          Pbc.dist2 box p ion1 > 9. && Pbc.dist2 box p ion2 > 9.
        then begin
          solvent_pos := p :: !solvent_pos;
          incr taken
        end
      end)
    solvent_sites;
  List.iter
    (fun _ ->
      ignore
        (Mdsp_ff.Topology.Builder.add_atom b ~mass:ar_mass ~charge:0.
           ~type_id:1 ~name:"SOL"))
    !solvent_pos;
  let topo = Mdsp_ff.Topology.Builder.finish b in
  let positions =
    Array.append [| ion1; ion2 |] (Array.of_list (List.rev !solvent_pos))
  in
  { topo; positions; box; label = Printf.sprintf "ionpair_%d" n }

let double_well_bias ~barrier ~half_width =
  {
    Mdsp_md.Force_calc.bias_name = "double_well";
    bias_compute =
      (fun box positions acc ->
        let open Pbc in
        let center = Vec3.make (box.lx /. 2.) (box.ly /. 2.) (box.lz /. 2.) in
        let e = ref 0. in
        Array.iteri
          (fun i p ->
            let d = Pbc.min_image box p center in
            let u = d.Vec3.x /. half_width in
            let v = barrier *. (((u *. u) -. 1.) ** 2.) in
            (* dv/dx = barrier * 2(u^2-1) * 2u / half_width *)
            let dv_dx = 4. *. barrier *. u *. ((u *. u) -. 1.) /. half_width in
            (* Harmonic confinement in y and z. *)
            let k_yz = 1.0 in
            let vy = k_yz *. d.Vec3.y *. d.Vec3.y in
            let vz = k_yz *. d.Vec3.z *. d.Vec3.z in
            e := !e +. v +. vy +. vz;
            let f =
              Vec3.make (-.dv_dx)
                (-2. *. k_yz *. d.Vec3.y)
                (-2. *. k_yz *. d.Vec3.z)
            in
            acc.Mdsp_ff.Bonded.forces.(i) <-
              Vec3.add acc.Mdsp_ff.Bonded.forces.(i) f)
          positions;
        !e);
  }

let double_well_energy ~barrier ~half_width x =
  let u = x /. half_width in
  barrier *. (((u *. u) -. 1.) ** 2.)

let dw_defaults = (3.0, 2.5) (* barrier kcal/mol, half width angstrom *)

let double_well ?(barrier = fst dw_defaults) ?(half_width = snd dw_defaults)
    () =
  let box = Pbc.cubic 20. in
  let b = Mdsp_ff.Topology.Builder.create () in
  Mdsp_ff.Topology.Builder.set_lj_types b [| (0., 1.) |];
  ignore
    (Mdsp_ff.Topology.Builder.add_atom b ~mass:12. ~charge:0. ~type_id:0
       ~name:"DW");
  let topo = Mdsp_ff.Topology.Builder.finish b in
  let positions = [| Vec3.make (10. -. half_width) 10. 10. |] in
  ignore barrier;
  { topo; positions; box; label = "double_well" }

let dw2_defaults = (3.0, 2.5, 1.5) (* barrier, half width, bow *)

let double_well_2d_bias ~barrier ~half_width ~bow =
  {
    Mdsp_md.Force_calc.bias_name = "double_well_2d";
    bias_compute =
      (fun box positions acc ->
        let open Pbc in
        let center = Vec3.make (box.lx /. 2.) (box.ly /. 2.) (box.lz /. 2.) in
        let a = half_width in
        let ky = 1.0 and kz = 2.0 in
        let e = ref 0. in
        Array.iteri
          (fun i p ->
            let d = Pbc.min_image box p center in
            let x = d.Vec3.x and y = d.Vec3.y and z = d.Vec3.z in
            let u = x /. a in
            let g = 1. -. (u *. u) in
            (* wells along x *)
            let vx = barrier *. (((u *. u) -. 1.) ** 2.) in
            let dvx_dx = 4. *. barrier *. u *. ((u *. u) -. 1.) /. a in
            (* channel bowing through y = bow * (1 - (x/a)^2) *)
            let dy = y -. (bow *. g) in
            let vy = ky *. dy *. dy in
            let dvy_dy = 2. *. ky *. dy in
            let dvy_dx = 2. *. ky *. dy *. (bow *. 2. *. u /. a) in
            let vz = kz *. z *. z in
            e := !e +. vx +. vy +. vz;
            let f =
              Vec3.make
                (-.(dvx_dx +. dvy_dx))
                (-.dvy_dy)
                (-2. *. kz *. z)
            in
            acc.Mdsp_ff.Bonded.forces.(i) <-
              Vec3.add acc.Mdsp_ff.Bonded.forces.(i) f)
          positions;
        !e);
  }

let double_well_2d_path ~half_width ~bow x =
  bow *. (1. -. ((x /. half_width) ** 2.))

let double_well_2d ?(barrier = 3.0) ?(half_width = 2.5) ?(bow = 1.5) () =
  let box = Pbc.cubic 20. in
  let b = Mdsp_ff.Topology.Builder.create () in
  Mdsp_ff.Topology.Builder.set_lj_types b [| (0., 1.) |];
  ignore
    (Mdsp_ff.Topology.Builder.add_atom b ~mass:12. ~charge:0. ~type_id:0
       ~name:"DW2");
  let topo = Mdsp_ff.Topology.Builder.finish b in
  let positions = [| Vec3.make (10. -. half_width) 10. 10. |] in
  ignore (barrier, bow);
  { topo; positions; box; label = "double_well_2d" }

type preset = { name : string; atoms : int; build : unit -> system }

let presets =
  [
    { name = "lj1k"; atoms = 1000; build = (fun () -> lj_fluid ~n:1000 ()) };
    {
      name = "water6k";
      atoms = 6591;
      build = (fun () -> water_box ~n_side:13 ());
    };
    {
      name = "water23k";
      atoms = 23625;
      build = (fun () -> water_box ~n_side:20 ());
    };
    {
      name = "chain2k";
      atoms = 2048;
      build = (fun () -> bead_chain ~n_beads:64 ~n_total:2048 ());
    };
    {
      name = "chain10k";
      atoms = 10000;
      build = (fun () -> bead_chain ~n_beads:256 ~n_total:10_000 ());
    };
  ]

let of_name name =
  match List.find_opt (fun p -> p.name = name) presets with
  | Some p -> p.build ()
  | None ->
      let numeric_suffix prefix =
        let np = String.length prefix in
        if
          String.length name > np
          && String.sub name 0 np = prefix
        then int_of_string_opt (String.sub name np (String.length name - np))
        else None
      in
      (match (numeric_suffix "lj", numeric_suffix "water") with
      | Some n, _ when n > 0 -> lj_fluid ~n ()
      | _, Some s when s > 0 -> water_box ~n_side:s ()
      | _ ->
          failwith
            (Printf.sprintf
               "unknown preset %S (see `mdsp presets', or lj<N> / water<S>)"
               name))

let make_engine ?(config = Mdsp_md.Engine.default_config) ?cutoff ?elec
    ?gse_grid ?(seed = 23) ?(exec = Exec.serial) ?(soa = false) sys =
  let has_charges =
    Array.exists (fun (a : Mdsp_ff.Topology.atom) -> a.charge <> 0.)
      sys.topo.atoms
  in
  let cutoff =
    match cutoff with
    | Some c -> c
    | None -> Float.min 9. (0.45 *. Pbc.min_edge sys.box)
  in
  let use_gse = has_charges && gse_grid <> None in
  let beta = 3.0 /. cutoff in
  let elec =
    match elec with
    | Some e -> e
    | None ->
        if not has_charges then Mdsp_ff.Pair_interactions.No_coulomb
        else if use_gse then Mdsp_ff.Pair_interactions.Ewald_real { beta }
        else Mdsp_ff.Pair_interactions.Reaction_field { epsilon_rf = 78.5 }
  in
  let evaluator =
    Mdsp_ff.Pair_interactions.of_topology sys.topo ~cutoff
      ~trunc:Mdsp_ff.Nonbonded.Shift ~elec
  in
  let nlist =
    Mdsp_space.Neighbor_list.create ~exclusions:sys.topo.exclusions ~exec
      ~cutoff ~skin:1.0 sys.box sys.positions
  in
  let longrange =
    match gse_grid with
    | Some grid when has_charges ->
        Mdsp_md.Force_calc.Lr_gse
          (Mdsp_longrange.Gse.create ~beta ~grid sys.box)
    | _ -> Mdsp_md.Force_calc.Lr_none
  in
  let soa_params =
    if soa then
      Mdsp_md.Soa_kernels.pair_params_of_topology sys.topo ~cutoff
        ~trunc:Mdsp_ff.Nonbonded.Shift ~elec
    else None
  in
  let fc =
    Mdsp_md.Force_calc.create ~exec ?soa:soa_params sys.topo ~evaluator
      ~longrange ~nlist
  in
  if sys.label = "double_well" then begin
    let barrier, half_width = dw_defaults in
    Mdsp_md.Force_calc.add_bias fc (double_well_bias ~barrier ~half_width)
  end;
  if sys.label = "double_well_2d" then begin
    let barrier, half_width, bow = dw2_defaults in
    Mdsp_md.Force_calc.add_bias fc
      (double_well_2d_bias ~barrier ~half_width ~bow)
  end;
  let st =
    Mdsp_md.State.create ~positions:sys.positions
      ~masses:(Mdsp_ff.Topology.masses sys.topo) ~box:sys.box
  in
  let rng = Rng.create seed in
  Mdsp_md.State.thermalize st rng ~temp:config.Mdsp_md.Engine.temperature;
  Mdsp_md.Engine.create ~seed sys.topo fc st config
