type atom = { mass : float; charge : float; type_id : int; name : string }
type bond = { i : int; j : int; k : float; r0 : float }
type angle = { i : int; j : int; k : int; k_theta : float; theta0 : float }

type dihedral = {
  i : int;
  j : int;
  k : int;
  l : int;
  k_phi : float;
  mult : int;
  phase : float;
}

type improper = {
  ii : int;
  ij : int;
  ik : int;
  il : int;
  k_xi : float;
  xi0 : float;
}

type constraint_ = { ci : int; cj : int; dist : float }

type virtual_site = { vs : int; vparents : (int * float) array }

type t = {
  atoms : atom array;
  bonds : bond array;
  angles : angle array;
  dihedrals : dihedral array;
  impropers : improper array;
  constraints : constraint_ array;
  virtual_sites : virtual_site array;
  exclusions : Mdsp_space.Exclusions.t;
  pairs14 : (int * int) array;
  scale14_lj : float;
  scale14_coul : float;
  lj_types : (float * float) array;
}

let n_atoms t = Array.length t.atoms
let masses t = Array.map (fun a -> a.mass) t.atoms
let charges t = Array.map (fun a -> a.charge) t.atoms
let n_constraints t = Array.length t.constraints
let n_virtual_sites t = Array.length t.virtual_sites

let is_virtual t i =
  Array.exists (fun v -> v.vs = i) t.virtual_sites

let dof t =
  max 1 ((3 * (n_atoms t - n_virtual_sites t)) - n_constraints t - 3)

type cluster = { cl_constraints : int array; cl_atoms : int array }

let constraint_clusters t =
  let nc = Array.length t.constraints in
  (* Union-find over constraint indices, keyed by shared atoms. Union by
     minimum root, so every component's root is its smallest constraint
     index and the cluster order below is the topology order. *)
  let parent = Array.init nc Fun.id in
  let rec find i =
    if parent.(i) = i then i
    else begin
      let r = find parent.(i) in
      parent.(i) <- r;
      r
    end
  in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(max ri rj) <- min ri rj
  in
  let first_on = Hashtbl.create 64 in
  Array.iteri
    (fun k (c : constraint_) ->
      List.iter
        (fun a ->
          match Hashtbl.find_opt first_on a with
          | Some k0 -> union k0 k
          | None -> Hashtbl.add first_on a k)
        [ c.ci; c.cj ])
    t.constraints;
  let members = Hashtbl.create 64 in
  for k = nc - 1 downto 0 do
    let r = find k in
    let tl = try Hashtbl.find members r with Not_found -> [] in
    Hashtbl.replace members r (k :: tl)
  done;
  let roots = ref [] in
  for k = nc - 1 downto 0 do
    if find k = k then roots := k :: !roots
  done;
  Array.of_list
    (List.map
       (fun r ->
         let ks = Array.of_list (Hashtbl.find members r) in
         let atoms = Hashtbl.create 8 in
         Array.iter
           (fun k ->
             let c = t.constraints.(k) in
             Hashtbl.replace atoms c.ci ();
             Hashtbl.replace atoms c.cj ())
           ks;
         let al = Hashtbl.fold (fun a () acc -> a :: acc) atoms [] in
         let aa = Array.of_list al in
         Array.sort compare aa;
         { cl_constraints = ks; cl_atoms = aa })
       !roots)

let cluster_adjacency (clusters : cluster array) =
  let n = Array.length clusters in
  let adj = Array.make n [] in
  let touching = Hashtbl.create 64 in
  (* Any atom shared by two clusters makes them neighbors. Fused clusters
     are atom-disjoint by construction, so this is empty there — but the
     certifier recomputes it rather than assuming it. *)
  Array.iteri
    (fun k c ->
      Array.iter
        (fun a ->
          let prev = try Hashtbl.find touching a with Not_found -> [] in
          Hashtbl.replace touching a (k :: prev))
        c.cl_atoms)
    clusters;
  let edges = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ ks ->
      List.iter
        (fun i ->
          List.iter
            (fun j -> if i <> j then Hashtbl.replace edges (min i j, max i j) ())
            ks)
        ks)
    touching;
  Hashtbl.iter
    (fun (i, j) () ->
      adj.(i) <- j :: adj.(i);
      adj.(j) <- i :: adj.(j))
    edges;
  Array.map (fun l -> List.sort_uniq compare l) adj

module Builder = struct
  type topo = t

  type t = {
    mutable atoms : atom list;
    mutable n : int;
    mutable bonds : bond list;
    mutable angles : angle list;
    mutable dihedrals : dihedral list;
    mutable impropers : improper list;
    mutable constraints : constraint_ list;
    mutable virtual_sites : virtual_site list;
    mutable lj_types : (float * float) array;
    mutable scale14_lj : float;
    mutable scale14_coul : float;
  }

  let create () =
    {
      atoms = [];
      n = 0;
      bonds = [];
      angles = [];
      dihedrals = [];
      impropers = [];
      constraints = [];
      virtual_sites = [];
      lj_types = [||];
      scale14_lj = 0.;
      scale14_coul = 0.;
    }

  let add_atom t ~mass ~charge ~type_id ~name =
    if mass <= 0. then invalid_arg "Topology.add_atom: mass must be positive";
    t.atoms <- { mass; charge; type_id; name } :: t.atoms;
    let idx = t.n in
    t.n <- t.n + 1;
    idx

  let check t idx label =
    if idx < 0 || idx >= t.n then
      invalid_arg (Printf.sprintf "Topology.%s: atom index out of range" label)

  let add_bond t ~i ~j ~k ~r0 =
    check t i "add_bond";
    check t j "add_bond";
    if i = j then invalid_arg "Topology.add_bond: self bond";
    t.bonds <- { i; j; k; r0 } :: t.bonds

  let add_angle t ~i ~j ~k ~k_theta ~theta0 =
    check t i "add_angle";
    check t j "add_angle";
    check t k "add_angle";
    t.angles <- { i; j; k; k_theta; theta0 } :: t.angles

  let add_dihedral t ~i ~j ~k ~l ~k_phi ~mult ~phase =
    check t i "add_dihedral";
    check t l "add_dihedral";
    t.dihedrals <- { i; j; k; l; k_phi; mult; phase } :: t.dihedrals

  let add_improper t ~i ~j ~k ~l ~k_xi ~xi0 =
    check t i "add_improper";
    check t j "add_improper";
    check t k "add_improper";
    check t l "add_improper";
    t.impropers <- { ii = i; ij = j; ik = k; il = l; k_xi; xi0 } :: t.impropers

  let add_constraint t ~i ~j ~dist =
    check t i "add_constraint";
    check t j "add_constraint";
    if i = j then invalid_arg "Topology.add_constraint: self constraint";
    if dist <= 0. then invalid_arg "Topology.add_constraint: distance";
    t.constraints <- { ci = i; cj = j; dist } :: t.constraints

  let add_virtual_site t ~site ~parents =
    check t site "add_virtual_site";
    if Array.length parents = 0 then
      invalid_arg "Topology.add_virtual_site: needs at least one parent";
    Array.iter
      (fun (p, _) ->
        check t p "add_virtual_site";
        if p = site then
          invalid_arg "Topology.add_virtual_site: site cannot parent itself")
      parents;
    let wsum = Array.fold_left (fun a (_, w) -> a +. w) 0. parents in
    if abs_float (wsum -. 1.) > 1e-9 then
      invalid_arg "Topology.add_virtual_site: weights must sum to 1";
    t.virtual_sites <- { vs = site; vparents = parents } :: t.virtual_sites

  let set_lj_types t types = t.lj_types <- types

  let set_scale14 t ~lj ~coul =
    if lj < 0. || coul < 0. then
      invalid_arg "Topology.set_scale14: scales must be nonnegative";
    t.scale14_lj <- lj;
    t.scale14_coul <- coul

  let finish ?(exclude_through = 3) t =
    let atoms = Array.of_list (List.rev t.atoms) in
    (* Validate type ids against the LJ table. *)
    Array.iter
      (fun a ->
        if a.type_id < 0 || a.type_id >= Array.length t.lj_types then
          invalid_arg "Topology.finish: atom type_id outside lj_types table")
      atoms;
    let bond_edges =
      List.map (fun (b : bond) -> (b.i, b.j)) t.bonds
      @ List.map (fun c -> (c.ci, c.cj)) t.constraints
      (* A virtual site shares its parents' exclusions: treat the
         site-parent relation as a bond for exclusion purposes. *)
      @ List.concat_map
          (fun v -> Array.to_list (Array.map (fun (p, _) -> (v.vs, p)) v.vparents))
          t.virtual_sites
    in
    let exclusions =
      Mdsp_space.Exclusions.from_bonds ~n:t.n ~bonds:bond_edges
        ~through:exclude_through
    in
    (* 1-4 pairs: exactly three bonds apart in the covalent graph
       (constraints and virtual-site parent links do not define 1-4s). *)
    let pairs14 =
      if exclude_through < 3 then [||]
      else begin
        let graph = Array.make t.n [] in
        List.iter
          (fun (b : bond) ->
            graph.(b.i) <- b.j :: graph.(b.i);
            graph.(b.j) <- b.i :: graph.(b.j))
          t.bonds;
        let acc = ref [] in
        for i = 0 to t.n - 1 do
          let dist = Hashtbl.create 16 in
          Hashtbl.add dist i 0;
          let frontier = ref [ i ] in
          for d = 1 to 3 do
            let next = ref [] in
            List.iter
              (fun u ->
                List.iter
                  (fun v ->
                    if not (Hashtbl.mem dist v) then begin
                      Hashtbl.add dist v d;
                      next := v :: !next;
                      if d = 3 && v > i then acc := (i, v) :: !acc
                    end)
                  graph.(u))
              !frontier;
            frontier := !next
          done
        done;
        Array.of_list (List.rev !acc)
      end
    in
    {
      atoms;
      bonds = Array.of_list (List.rev t.bonds);
      angles = Array.of_list (List.rev t.angles);
      dihedrals = Array.of_list (List.rev t.dihedrals);
      impropers = Array.of_list (List.rev t.impropers);
      constraints = Array.of_list (List.rev t.constraints);
      virtual_sites = Array.of_list (List.rev t.virtual_sites);
      exclusions;
      pairs14;
      scale14_lj = t.scale14_lj;
      scale14_coul = t.scale14_coul;
      lj_types = t.lj_types;
    }
end
