(** Molecular topology: atoms, bonded terms, exclusions, constraints.

    A topology is the static description of a system; particle positions and
    velocities live in [Mdsp_md.State]. Indices refer to the global atom
    array. *)

type atom = {
  mass : float;  (** amu *)
  charge : float;  (** units of e *)
  type_id : int;  (** index into the nonbonded type table *)
  name : string;
}

type bond = { i : int; j : int; k : float; r0 : float }
    (** harmonic: k (r - r0)^2 (k includes the 1/2 by convention: energy is
        k*(r-r0)^2) *)

type angle = { i : int; j : int; k : int; k_theta : float; theta0 : float }
    (** harmonic in the angle at j: k_theta (theta - theta0)^2 *)

type dihedral = {
  i : int;
  j : int;
  k : int;
  l : int;
  k_phi : float;
  mult : int;
  phase : float;
}
    (** periodic: k_phi (1 + cos(mult*phi - phase)) *)

type improper = {
  ii : int;
  ij : int;
  ik : int;
  il : int;
  k_xi : float;
  xi0 : float;
}
    (** harmonic improper torsion: k_xi (xi - xi0)^2 with xi the
        i-j-k-l dihedral angle, used to keep planar centers planar *)

type constraint_ = { ci : int; cj : int; dist : float }
    (** holonomic distance constraint solved by SHAKE/RATTLE *)

type virtual_site = {
  vs : int;  (** the massless site *)
  vparents : (int * float) array;
      (** (parent atom, weight); weights sum to 1. The site's position is
          the weighted combination of its parents' positions, and forces on
          it are spread back with the same weights — the linear
          ("TIP4P-style") virtual-site construction. *)
}

type t = {
  atoms : atom array;
  bonds : bond array;
  angles : angle array;
  dihedrals : dihedral array;
  impropers : improper array;
  constraints : constraint_ array;
  virtual_sites : virtual_site array;
  exclusions : Mdsp_space.Exclusions.t;
  pairs14 : (int * int) array;
      (** atom pairs exactly three bonds apart, for scaled 1-4 terms *)
  scale14_lj : float;  (** LJ scale on 1-4 pairs (0 = fully excluded) *)
  scale14_coul : float;  (** Coulomb scale on 1-4 pairs *)
  lj_types : (float * float) array;
      (** per-type (epsilon, sigma); combined by Lorentz–Berthelot *)
}

val n_atoms : t -> int
val masses : t -> float array
val charges : t -> float array

(** Total number of constrained degrees of freedom (one per constraint). *)
val n_constraints : t -> int

val n_virtual_sites : t -> int

(** True if atom [i] is a virtual site. *)
val is_virtual : t -> int -> bool

(** Degrees of freedom for temperature:
    3 (N - n_virtual_sites) - n_constraints - 3 (COM). *)
val dof : t -> int

(** A maximal set of constraints coupled through shared atoms (a rigid
    water is one 3-constraint, 3-atom cluster). [cl_constraints] indexes
    into [constraints], ascending; [cl_atoms] is the sorted union of the
    member endpoints — the cluster's SHAKE/RATTLE read/write footprint. *)
type cluster = { cl_constraints : int array; cl_atoms : int array }

(** Fuse constraints sharing an atom into clusters (union-find). Clusters
    are returned in topology order (by smallest member constraint index),
    so the decomposition is deterministic. Distinct clusters are
    atom-disjoint by construction. *)
val constraint_clusters : t -> cluster array

(** Interference adjacency over an arbitrary cluster set: clusters are
    neighbors iff their atom footprints intersect. Sorted neighbor lists.
    On the output of {!constraint_clusters} this is edgeless; the schedule
    certifier recomputes it instead of assuming so. *)
val cluster_adjacency : cluster array -> int list array

(** A builder for assembling topologies incrementally. *)
module Builder : sig
  type topo = t
  type t

  val create : unit -> t

  (** Returns the new atom's index. *)
  val add_atom :
    t -> mass:float -> charge:float -> type_id:int -> name:string -> int

  val add_bond : t -> i:int -> j:int -> k:float -> r0:float -> unit
  val add_angle : t -> i:int -> j:int -> k:int -> k_theta:float -> theta0:float -> unit

  val add_dihedral :
    t -> i:int -> j:int -> k:int -> l:int -> k_phi:float -> mult:int ->
    phase:float -> unit

  val add_improper :
    t -> i:int -> j:int -> k:int -> l:int -> k_xi:float -> xi0:float -> unit

  val add_constraint : t -> i:int -> j:int -> dist:float -> unit

  (** [add_virtual_site t ~site ~parents] declares [site] (which must have
      been added as an atom, conventionally with a tiny placeholder mass)
      to be a massless interaction site at the weighted combination of
      [parents]. Weights must sum to 1 (within 1e-9). The site is excluded
      from integration; the engine places it and spreads its forces. *)
  val add_virtual_site : t -> site:int -> parents:(int * float) array -> unit

  (** [set_lj_types t types] supplies the per-type (epsilon, sigma) table. *)
  val set_lj_types : t -> (float * float) array -> unit

  (** [set_scale14 t ~lj ~coul] enables scaled 1-4 interactions (AMBER-style
      fudge factors): 1-4 pairs stay out of the nonbonded sum but are
      evaluated separately at these scales. Default 0 (fully excluded). *)
  val set_scale14 : t -> lj:float -> coul:float -> unit

  (** [finish t ~exclude_through] derives exclusions from the bond +
      constraint graph ([exclude_through] bonds deep, typically 3) and
      returns the immutable topology, recording 1-4 pairs for the scaled
      path when [exclude_through >= 3]. *)
  val finish : ?exclude_through:int -> t -> topo
end
