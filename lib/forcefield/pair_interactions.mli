(** Short-range nonbonded evaluation over a neighbor list.

    The central abstraction is an {!evaluator}: a function from an atom pair
    and squared distance to (energy, f_over_r). The reference evaluator is
    built analytically from the topology; the machine model substitutes an
    evaluator backed by quantized interpolation tables. Everything downstream
    (energies, forces, virial) is agnostic to which one it is given. *)

open Mdsp_util

(** How the electrostatic part of the short-range sum is handled. *)
type electrostatics =
  | No_coulomb
  | Cutoff_coulomb
  | Reaction_field of { epsilon_rf : float }
      (** Tironi reaction field with the given dielectric beyond the cutoff *)
  | Ewald_real of { beta : float }
      (** real-space part of an Ewald decomposition *)

type evaluator = {
  eval : int -> int -> float -> float * float;
      (** [eval i j r2] is [(energy, f_over_r)] for the atom pair *)
  cutoff : float;
}

(** Analytic reference evaluator for a topology. [trunc] applies to the LJ
    part; electrostatics are handled per the [electrostatics] choice. *)
val of_topology :
  Topology.t ->
  cutoff:float ->
  trunc:Nonbonded.truncation ->
  elec:electrostatics ->
  evaluator

(** [compute eval box nlist positions acc] accumulates forces and virial for
    all neighbor-list pairs and returns the potential energy. With a
    parallel [exec], the pair list is cut into static contiguous tiles
    ({!Mdsp_space.Neighbor_list.tiles}), each execution slot accumulates
    into its own scratch accumulator (from [slots] when it matches the slot
    count, else freshly allocated), and partial forces/virial/energy are
    tree-reduced into [acc] deterministically. *)
val compute :
  ?exec:Exec.t -> ?slots:Bonded.accum array ->
  evaluator -> Pbc.t -> Mdsp_space.Neighbor_list.t -> Vec3.t array ->
  Bonded.accum -> float

(** Scaled 1-4 interactions: for each pair in [topo.pairs14], evaluates
    Lorentz-Berthelot LJ scaled by [topo.scale14_lj] plus shifted-cutoff
    Coulomb scaled by [topo.scale14_coul]. Returns the energy; forces and
    virial go into the accumulator. On the machine these terms run with the
    bonded work on the programmable cores. Parallelizes over [exec] like
    {!compute}, tiling the 1-4 pair array. *)
val compute_pairs14 :
  ?exec:Exec.t -> ?slots:Bonded.accum array ->
  Topology.t -> cutoff:float -> Pbc.t -> Vec3.t array -> Bonded.accum -> float

(** All-pairs O(N^2) version used as a test oracle (ignores no pairs; applies
    exclusions from the topology if given). *)
val compute_all_pairs :
  ?exclusions:Mdsp_space.Exclusions.t ->
  evaluator -> Pbc.t -> Vec3.t array -> Bonded.accum -> float
