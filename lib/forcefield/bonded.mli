(** Bonded-term evaluation: harmonic bonds, harmonic angles, periodic
    dihedrals.

    Forces are accumulated into the caller's array; each function returns the
    term's potential energy and adds its contribution to the scalar virial
    [W = sum_i f_i . r_i] (computed with minimum-image internal geometry so
    it is box-consistent). On the machine model these terms execute on the
    programmable (flexible) subsystem. *)

open Mdsp_util

type accum = {
  forces : Vec3.t array;
  mutable virial : float;
}

val make_accum : int -> accum
val reset : accum -> unit

(** Per-slot scratch accumulators for domain-parallel evaluation: one
    [accum] of size [n] per execution slot. *)
val make_slots : slots:int -> int -> accum array

(** [reduce_slots ?exec ~into slots] adds every slot's forces and virial
    into [into] using a fixed-shape pairwise tree over the slots, so the
    result is deterministic for a given slot count. The per-atom sums are
    themselves parallelized over [exec] (disjoint atom tiles). Slot contents
    are left untouched. [phase] names the barrier for the dataflow trace
    (default ["bonded.reduce"]); [reads] lists the (resource, extent)
    iteration spaces whose per-slot partials this reduction consumes, so
    the happens-before graph gets a producer → reduce edge. *)
val reduce_slots :
  ?exec:Exec.t -> ?phase:string -> ?reads:(string * int) list -> into:accum ->
  accum array -> unit

(** Evaluate all bonds; returns the total bond energy. *)
val bonds : Pbc.t -> Topology.t -> Vec3.t array -> accum -> float

(** Evaluate all angles; returns the total angle energy. *)
val angles : Pbc.t -> Topology.t -> Vec3.t array -> accum -> float

(** Evaluate all dihedrals; returns the total dihedral energy. *)
val dihedrals : Pbc.t -> Topology.t -> Vec3.t array -> accum -> float

(** Evaluate all harmonic improper torsions. *)
val impropers : Pbc.t -> Topology.t -> Vec3.t array -> accum -> float

(** All bonded terms. Returns (bond_e, angle_e, dihedral_e + improper_e).
    With a parallel [exec], each term array is cut into static contiguous
    tiles, each slot accumulates into its own scratch accumulator (from
    [slots], or freshly allocated when absent or mismatched), and the
    partials are tree-reduced into [acc] deterministically. *)
val all :
  ?exec:Exec.t -> ?slots:accum array -> Pbc.t -> Topology.t -> Vec3.t array ->
  accum -> float * float * float

(** Count of bonded interactions, used by the machine performance model. *)
val term_count : Topology.t -> int
