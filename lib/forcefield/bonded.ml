open Mdsp_util

type accum = { forces : Vec3.t array; mutable virial : float }

let make_accum n = { forces = Array.make n Vec3.zero; virial = 0. }

let reset acc =
  Array.fill acc.forces 0 (Array.length acc.forces) Vec3.zero;
  acc.virial <- 0.

let add_force acc i f = acc.forces.(i) <- Vec3.add acc.forces.(i) f

(* --- per-slot scratch and deterministic reduction --- *)

let make_slots ~slots n = Array.init slots (fun _ -> make_accum n)

(* Fixed-shape pairwise tree over the slot contributions for one atom; the
   order depends only on the slot count, so the reduced force is
   deterministic regardless of which domain produced which partial. *)
let rec tree_force slots i lo hi =
  if hi - lo = 1 then slots.(lo).forces.(i)
  else begin
    let mid = lo + ((hi - lo) / 2) in
    Vec3.add (tree_force slots i lo mid) (tree_force slots i mid hi)
  end

let reduce_slots ?(exec = Exec.serial) ?(phase = "bonded.reduce")
    ?(reads = []) ~into slots =
  let nslots = Array.length slots in
  if nslots = 1 && not (Exec.sanitizing exec) then begin
    let src = slots.(0) in
    let n = Array.length into.forces in
    for i = 0 to n - 1 do
      into.forces.(i) <- Vec3.add into.forces.(i) src.forces.(i)
    done;
    into.virial <- into.virial +. src.virial
  end
  else if nslots >= 1 then begin
    let n = Array.length into.forces in
    let bounds = Exec.tile_bounds ~total:n ~ntiles:(Exec.n_slots exec) in
    Exec.parallel_run ~phase exec (fun s ->
        let lo, hi = bounds.(s) in
        (* This phase writes the *shared* accumulator, so the declared
           resource is the atom index space itself. It reads every slot's
           partials — [reads] names the iteration-space resources the
           producing phase declared — and read-modifies its own tile of
           the accumulator. *)
        Exec.declare_write ~slot:s ~resource:"bonded.reduce" ~total:n ~lo ~hi
          exec;
        Exec.declare_read ~slot:s ~resource:"bonded.reduce" ~total:n ~lo ~hi
          exec;
        List.iter
          (fun (resource, total) ->
            Exec.declare_read ~slot:s ~resource ~lo:0 ~hi:total exec)
          reads;
        for i = lo to hi - 1 do
          into.forces.(i) <-
            Vec3.add into.forces.(i) (tree_force slots i 0 nslots)
        done);
    into.virial <-
      into.virial +. Exec.sum_tree (Array.map (fun a -> a.virial) slots)
  end

(* --- bonded terms, over an index range so tiles can run in parallel --- *)

let bonds_range box (topo : Topology.t) positions acc lo hi =
  let e = ref 0. in
  for t = lo to hi - 1 do
    let b = topo.bonds.(t) in
    let d = Pbc.min_image box positions.(b.i) positions.(b.j) in
    let r = Vec3.norm d in
    let dr = r -. b.r0 in
    e := !e +. (b.k *. dr *. dr);
    (* F_i = -dU/dr * d/r, with dU/dr = 2 k dr *)
    let fmag = -2. *. b.k *. dr /. r in
    let f = Vec3.scale fmag d in
    add_force acc b.i f;
    add_force acc b.j (Vec3.neg f);
    acc.virial <- acc.virial +. Vec3.dot f d
  done;
  !e

let bonds box topo positions acc =
  bonds_range box topo positions acc 0 (Array.length topo.Topology.bonds)

let angles_range box (topo : Topology.t) positions acc lo hi =
  let e = ref 0. in
  for t = lo to hi - 1 do
    let a = topo.angles.(t) in
    (* Vectors from the central atom j to i and k. *)
    let rij = Pbc.min_image box positions.(a.i) positions.(a.j) in
    let rkj = Pbc.min_image box positions.(a.k) positions.(a.j) in
    let nij = Vec3.norm rij and nkj = Vec3.norm rkj in
    let cos_t =
      Float.max (-1.) (Float.min 1. (Vec3.dot rij rkj /. (nij *. nkj)))
    in
    let theta = acos cos_t in
    let dtheta = theta -. a.theta0 in
    e := !e +. (a.k_theta *. dtheta *. dtheta);
    let du_dtheta = 2. *. a.k_theta *. dtheta in
    (* F_i = -dU/dr_i = (dU/dtheta / sin theta) * dcos(theta)/dr_i. Guard
       collinear geometry where sin(theta) -> 0. *)
    let sin_t = Float.max 1e-8 (sqrt (1. -. (cos_t *. cos_t))) in
    let coeff = du_dtheta /. sin_t in
    let fi =
      Vec3.scale (coeff /. nij)
        (Vec3.sub (Vec3.scale (1. /. nkj) rkj)
           (Vec3.scale (cos_t /. nij) rij))
    in
    let fk =
      Vec3.scale (coeff /. nkj)
        (Vec3.sub (Vec3.scale (1. /. nij) rij)
           (Vec3.scale (cos_t /. nkj) rkj))
    in
    let fj = Vec3.neg (Vec3.add fi fk) in
    add_force acc a.i fi;
    add_force acc a.j fj;
    add_force acc a.k fk;
    (* Virial with atom j as local origin; forces sum to zero. *)
    acc.virial <- acc.virial +. Vec3.dot fi rij +. Vec3.dot fk rkj
  done;
  !e

let angles box topo positions acc =
  angles_range box topo positions acc 0 (Array.length topo.Topology.angles)

(* Shared torsion machinery: computes the dihedral angle phi of the atom
   quadruple (i, j, k, l) and applies the Blondel-Karplus gradients for a
   caller-supplied dU/dphi. Returns the angle, or None for degenerate
   (collinear) geometry. *)
let torsion box positions acc ~i ~j ~k ~l ~du_dphi_of =
  let b1 = Pbc.min_image box positions.(j) positions.(i) in
  let b2 = Pbc.min_image box positions.(k) positions.(j) in
  let b3 = Pbc.min_image box positions.(l) positions.(k) in
  let n1 = Vec3.cross b1 b2 in
  let n2 = Vec3.cross b2 b3 in
  let n1n = Vec3.norm n1 and n2n = Vec3.norm n2 in
  if n1n <= 1e-10 || n2n <= 1e-10 then None
  else begin
    let b2n = Vec3.norm b2 in
    let m1 = Vec3.cross n1 (Vec3.scale (1. /. b2n) b2) in
    let x = Vec3.dot n1 n2 /. (n1n *. n2n) in
    let y = Vec3.dot m1 n2 /. (n1n *. n2n) in
    let phi = atan2 y x in
    let du_dphi = du_dphi_of phi in
    (* Blondel-Karplus gradients: with F = ri - rj = -b1, G = rj - rk =
       -b2, H = rl - rk = b3, A = n1, B = n2:
         F_i = -|G| U' A/|A|^2, F_l = +|G| U' B/|B|^2,
         sv = p F_i - q F_l, F_j = sv - F_i, F_k = -sv - F_l
       with p = r_ij.r_kj/|r_kj|^2 and q = r_kl.r_kj/|r_kj|^2. *)
    let fi = Vec3.scale (-.du_dphi *. b2n /. (n1n *. n1n)) n1 in
    let fl = Vec3.scale (du_dphi *. b2n /. (n2n *. n2n)) n2 in
    let p = -.(Vec3.dot b1 b2) /. (b2n *. b2n) in
    let q = -.(Vec3.dot b3 b2) /. (b2n *. b2n) in
    let sv = Vec3.sub (Vec3.scale p fi) (Vec3.scale q fl) in
    let fj = Vec3.sub sv fi in
    let fk = Vec3.neg (Vec3.add sv fl) in
    add_force acc i fi;
    add_force acc j fj;
    add_force acc k fk;
    add_force acc l fl;
    (* Virial relative to atom j. *)
    let rij = Vec3.neg b1 in
    let rkj = b2 in
    let rlj = Vec3.add b2 b3 in
    acc.virial <-
      acc.virial +. Vec3.dot fi rij +. Vec3.dot fk rkj +. Vec3.dot fl rlj;
    Some phi
  end

let dihedrals_range box (topo : Topology.t) positions acc lo hi =
  let e = ref 0. in
  for t = lo to hi - 1 do
    let d = topo.dihedrals.(t) in
    match
      torsion box positions acc ~i:d.i ~j:d.j ~k:d.k ~l:d.l
        ~du_dphi_of:(fun phi ->
          let arg = (float_of_int d.mult *. phi) -. d.phase in
          e := !e +. (d.k_phi *. (1. +. cos arg));
          -.d.k_phi *. float_of_int d.mult *. sin arg)
    with
    | Some _ | None -> ()
  done;
  !e

let dihedrals box topo positions acc =
  dihedrals_range box topo positions acc 0
    (Array.length topo.Topology.dihedrals)

(* Wrap an angle difference into (-pi, pi]. *)
let wrap_angle x =
  let two_pi = 2. *. Float.pi in
  let x = Float.rem x two_pi in
  if x > Float.pi then x -. two_pi
  else if x <= -.Float.pi then x +. two_pi
  else x

let impropers_range box (topo : Topology.t) positions acc lo hi =
  let e = ref 0. in
  for t = lo to hi - 1 do
    let im = topo.impropers.(t) in
    match
      torsion box positions acc ~i:im.ii ~j:im.ij ~k:im.ik ~l:im.il
        ~du_dphi_of:(fun phi ->
          let dxi = wrap_angle (phi -. im.xi0) in
          e := !e +. (im.k_xi *. dxi *. dxi);
          2. *. im.k_xi *. dxi)
    with
    | Some _ | None -> ()
  done;
  !e

let impropers box topo positions acc =
  impropers_range box topo positions acc 0
    (Array.length topo.Topology.impropers)

let all_serial box topo positions acc =
  let eb = bonds box topo positions acc in
  let ea = angles box topo positions acc in
  let ed = dihedrals box topo positions acc +. impropers box topo positions acc in
  (eb, ea, ed)

let term_count (topo : Topology.t) =
  Array.length topo.bonds + Array.length topo.angles
  + Array.length topo.dihedrals + Array.length topo.impropers

let all ?(exec = Exec.serial) ?slots box (topo : Topology.t) positions acc =
  let ns = Exec.n_slots exec in
  if (ns = 1 && not (Exec.sanitizing exec)) || term_count topo = 0 then
    all_serial box topo positions acc
  else begin
    let slots =
      match slots with
      | Some s when Array.length s = ns -> s
      | _ -> make_slots ~slots:ns (Array.length acc.forces)
    in
    let b_tiles = Exec.tile_bounds ~total:(Array.length topo.bonds) ~ntiles:ns in
    let a_tiles = Exec.tile_bounds ~total:(Array.length topo.angles) ~ntiles:ns in
    let d_tiles =
      Exec.tile_bounds ~total:(Array.length topo.dihedrals) ~ntiles:ns
    in
    let i_tiles =
      Exec.tile_bounds ~total:(Array.length topo.impropers) ~ntiles:ns
    in
    let eb = Array.make ns 0. and ea = Array.make ns 0. in
    let ed = Array.make ns 0. in
    let natoms = Array.length positions in
    Exec.parallel_run ~phase:"bonded" exec (fun s ->
        let a = slots.(s) in
        reset a;
        let declare resource tiles total =
          let lo, hi = tiles in
          Exec.declare_write ~slot:s ~resource ~total ~lo ~hi exec
        in
        (* Bond endpoints are arbitrary atom indices, so every slot reads
           the whole position array. *)
        Exec.declare_read ~slot:s ~resource:"state.positions" ~lo:0
          ~hi:natoms exec;
        declare "bonded.bonds" b_tiles.(s) (Array.length topo.bonds);
        declare "bonded.angles" a_tiles.(s) (Array.length topo.angles);
        declare "bonded.dihedrals" d_tiles.(s) (Array.length topo.dihedrals);
        declare "bonded.impropers" i_tiles.(s) (Array.length topo.impropers);
        let lo, hi = b_tiles.(s) in
        eb.(s) <- bonds_range box topo positions a lo hi;
        let lo, hi = a_tiles.(s) in
        ea.(s) <- angles_range box topo positions a lo hi;
        let lo, hi = d_tiles.(s) in
        let e_d = dihedrals_range box topo positions a lo hi in
        let lo, hi = i_tiles.(s) in
        ed.(s) <- e_d +. impropers_range box topo positions a lo hi);
    reduce_slots ~exec
      ~reads:
        [
          ("bonded.bonds", Array.length topo.bonds);
          ("bonded.angles", Array.length topo.angles);
          ("bonded.dihedrals", Array.length topo.dihedrals);
          ("bonded.impropers", Array.length topo.impropers);
        ]
      ~into:acc slots;
    (Exec.sum_tree eb, Exec.sum_tree ea, Exec.sum_tree ed)
  end
