open Mdsp_util

type electrostatics =
  | No_coulomb
  | Cutoff_coulomb
  | Reaction_field of { epsilon_rf : float }
  | Ewald_real of { beta : float }

type evaluator = {
  eval : int -> int -> float -> float * float;
  cutoff : float;
}

let of_topology (topo : Topology.t) ~cutoff ~trunc ~elec =
  let charges = Topology.charges topo in
  let types = Array.map (fun (a : Topology.atom) -> a.type_id) topo.atoms in
  let ntypes = Array.length topo.lj_types in
  (* Precombine LJ for every type pair. *)
  let lj_table =
    Array.init ntypes (fun i ->
        Array.init ntypes (fun j ->
            Nonbonded.lorentz_berthelot topo.lj_types.(i) topo.lj_types.(j)))
  in
  let rc2 = cutoff *. cutoff in
  (* Reaction-field constants (Tironi et al.): krf and crf. *)
  let krf, crf =
    match elec with
    | Reaction_field { epsilon_rf } ->
        let k =
          (epsilon_rf -. 1.)
          /. ((2. *. epsilon_rf) +. 1.)
          /. (cutoff *. cutoff *. cutoff)
        in
        (k, (1. /. cutoff) +. (k *. cutoff *. cutoff))
    | _ -> (0., 0.)
  in
  let eval i j r2 =
    if r2 >= rc2 then (0., 0.)
    else begin
      let lj = lj_table.(types.(i)).(types.(j)) in
      let e_lj, f_lj = Nonbonded.eval_truncated lj ~cutoff ~trunc r2 in
      let qq = Units.coulomb *. charges.(i) *. charges.(j) in
      let e_c, f_c =
        if qq = 0. then (0., 0.)
        else
          match elec with
          | No_coulomb -> (0., 0.)
          | Cutoff_coulomb ->
              let r = sqrt r2 in
              (* Shifted so the energy is continuous at the cutoff. *)
              ((qq /. r) -. (qq /. cutoff), qq /. (r2 *. r))
          | Reaction_field _ ->
              let r = sqrt r2 in
              let e = (qq /. r) +. (qq *. krf *. r2) -. (qq *. crf) in
              let f_over_r = (qq /. (r2 *. r)) -. (2. *. qq *. krf) in
              (e, f_over_r)
          | Ewald_real { beta } ->
              Nonbonded.eval (Nonbonded.Coulomb_erfc { qq; beta }) r2
      in
      (e_lj +. e_c, f_lj +. f_c)
    end
  in
  { eval; cutoff }

let apply_pair evaluator box positions (acc : Bonded.accum) energy i j =
  let d = Pbc.min_image box positions.(i) positions.(j) in
  let r2 = Vec3.norm2 d in
  if r2 < evaluator.cutoff *. evaluator.cutoff then begin
    let e, f_over_r = evaluator.eval i j r2 in
    energy := !energy +. e;
    let f = Vec3.scale f_over_r d in
    acc.forces.(i) <- Vec3.add acc.forces.(i) f;
    acc.forces.(j) <- Vec3.sub acc.forces.(j) f;
    acc.virial <- acc.virial +. Vec3.dot f d
  end

(* Slot scratch for the parallel paths: reuse the caller's per-slot accums
   when they match the executor width, else allocate fresh ones. *)
let ensure_slots slots ~ns ~n =
  match slots with
  | Some s when Array.length s = ns -> s
  | _ -> Bonded.make_slots ~slots:ns n

let compute ?(exec = Exec.serial) ?slots evaluator box nlist positions acc =
  let ns = Exec.n_slots exec in
  if ns = 1 && not (Exec.sanitizing exec) then begin
    let energy = ref 0. in
    Mdsp_space.Neighbor_list.iter nlist (fun i j ->
        apply_pair evaluator box positions acc energy i j);
    !energy
  end
  else begin
    let slots = ensure_slots slots ~ns ~n:(Array.length acc.Bonded.forces) in
    let tiles = Mdsp_space.Neighbor_list.tiles nlist ~ntiles:ns in
    let total = snd tiles.(ns - 1) in
    let natoms = Array.length positions in
    let energies = Array.make ns 0. in
    Exec.parallel_run ~phase:"pair" exec (fun s ->
        let a = slots.(s) in
        Bonded.reset a;
        let energy = ref 0. in
        let lo, hi = tiles.(s) in
        Exec.declare_write ~slot:s ~resource:"pair.tiles" ~total ~lo ~hi exec;
        (* Each slot reads its own pair range of the neighbor list and, via
           the pair indices, arbitrary positions. *)
        Exec.declare_read ~slot:s ~resource:"nlist.pairs" ~total ~lo ~hi exec;
        Exec.declare_read ~slot:s ~resource:"state.positions" ~lo:0
          ~hi:natoms exec;
        Mdsp_space.Neighbor_list.iter_range nlist lo hi (fun i j ->
            apply_pair evaluator box positions a energy i j);
        energies.(s) <- !energy);
    Bonded.reduce_slots ~exec ~reads:[ ("pair.tiles", total) ] ~into:acc
      slots;
    Exec.sum_tree energies
  end

let apply_pair14 (topo : Topology.t) ~charges ~types ~cutoff box positions
    (acc : Bonded.accum) energy i j =
  let d = Pbc.min_image box positions.(i) positions.(j) in
  let r2 = Vec3.norm2 d in
  if r2 < cutoff *. cutoff then begin
    let lj =
      Nonbonded.lorentz_berthelot topo.lj_types.(types.(i))
        topo.lj_types.(types.(j))
    in
    let e_lj, f_lj =
      Nonbonded.eval_truncated lj ~cutoff ~trunc:Nonbonded.Shift r2
    in
    let qq =
      Units.coulomb *. charges.(i) *. charges.(j) *. topo.scale14_coul
    in
    let e_c, f_c =
      if qq = 0. then (0., 0.)
      else begin
        let r = sqrt r2 in
        ((qq /. r) -. (qq /. cutoff), qq /. (r2 *. r))
      end
    in
    let e = (topo.scale14_lj *. e_lj) +. e_c in
    let f_over_r = (topo.scale14_lj *. f_lj) +. f_c in
    energy := !energy +. e;
    let f = Vec3.scale f_over_r d in
    acc.forces.(i) <- Vec3.add acc.forces.(i) f;
    acc.forces.(j) <- Vec3.sub acc.forces.(j) f;
    acc.virial <- acc.virial +. Vec3.dot f d
  end

let compute_pairs14 ?(exec = Exec.serial) ?slots (topo : Topology.t) ~cutoff
    box positions (acc : Bonded.accum) =
  let npairs = Array.length topo.pairs14 in
  if npairs = 0 || (topo.scale14_lj <= 0. && topo.scale14_coul <= 0.) then 0.
  else begin
    let charges = Topology.charges topo in
    let types = Array.map (fun (a : Topology.atom) -> a.type_id) topo.atoms in
    let ns = Exec.n_slots exec in
    if ns = 1 && not (Exec.sanitizing exec) then begin
      let energy = ref 0. in
      Array.iter
        (fun (i, j) ->
          apply_pair14 topo ~charges ~types ~cutoff box positions acc energy
            i j)
        topo.pairs14;
      !energy
    end
    else begin
      let slots =
        ensure_slots slots ~ns ~n:(Array.length acc.Bonded.forces)
      in
      let tiles = Exec.tile_bounds ~total:npairs ~ntiles:ns in
      let natoms = Array.length positions in
      let energies = Array.make ns 0. in
      Exec.parallel_run ~phase:"pair14" exec (fun s ->
          let a = slots.(s) in
          Bonded.reset a;
          let energy = ref 0. in
          let lo, hi = tiles.(s) in
          Exec.declare_write ~slot:s ~resource:"pair.pairs14" ~total:npairs
            ~lo ~hi exec;
          Exec.declare_read ~slot:s ~resource:"state.positions" ~lo:0
            ~hi:natoms exec;
          for k = lo to hi - 1 do
            let i, j = topo.pairs14.(k) in
            apply_pair14 topo ~charges ~types ~cutoff box positions a energy
              i j
          done;
          energies.(s) <- !energy);
      Bonded.reduce_slots ~exec ~reads:[ ("pair.pairs14", npairs) ] ~into:acc
        slots;
      Exec.sum_tree energies
    end
  end

let compute_all_pairs ?exclusions evaluator box positions acc =
  let energy = ref 0. in
  let n = Array.length positions in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let skip =
        match exclusions with
        | Some ex -> Mdsp_space.Exclusions.excluded ex i j
        | None -> false
      in
      if not skip then apply_pair evaluator box positions acc energy i j
    done
  done;
  !energy
