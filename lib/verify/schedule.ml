open Mdsp_util
module T = Mdsp_ff.Topology

type plan = {
  pl_name : string;
  pl_n_constraints : int;
  pl_units : T.cluster array;
  pl_colors : int array;
  pl_batches : int array array;
}

let plan ?(fuse = true) ~name (topo : T.t) =
  let units =
    if fuse then T.constraint_clusters topo
    else
      (* One unit per constraint: the interference graph keeps its edges
         (a rigid water becomes a triangle) instead of fusing them away —
         the mode that actually exercises the coloring. *)
      Array.mapi
        (fun k (c : T.constraint_) ->
          {
            T.cl_constraints = [| k |];
            cl_atoms =
              (if c.ci <= c.cj then [| c.ci; c.cj |] else [| c.cj; c.ci |]);
          })
        topo.constraints
  in
  let adj = T.cluster_adjacency units in
  let colors = Coloring.dsatur ~n:(Array.length units) ~adj in
  {
    pl_name = name;
    pl_n_constraints = Array.length topo.constraints;
    pl_units = units;
    pl_colors = colors;
    pl_batches = Coloring.classes colors;
  }

type certificate = {
  crt_proper : bool;
  crt_once : bool;
  crt_disjoint : bool;
  crt_slots : int list;
  crt_violations : string list;
}

let cert_ok c = c.crt_proper && c.crt_once && c.crt_disjoint

(* The certificate re-derives everything from the units' atom footprints —
   it never trusts the plan's own adjacency or the fusion step. *)
let certify ?(slots = [ 1; 2; 4 ]) p =
  let violations = ref [] in
  let note fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  (* Proper coloring: recomputed adjacency, no edge within a color. *)
  let adj = T.cluster_adjacency p.pl_units in
  let proper = ref true in
  Array.iteri
    (fun i ns ->
      List.iter
        (fun j ->
          if i < j && p.pl_colors.(i) = p.pl_colors.(j) then begin
            proper := false;
            note
              "units %d and %d share an atom but both landed in batch %d" i
              j p.pl_colors.(i)
          end)
        ns)
    adj;
  (* Exactly-once cover: the batches partition the constraint set. *)
  let seen = Array.make p.pl_n_constraints 0 in
  let in_range = ref true in
  Array.iter
    (fun batch ->
      Array.iter
        (fun u ->
          Array.iter
            (fun k ->
              if k < 0 || k >= p.pl_n_constraints then begin
                in_range := false;
                note "unit %d names constraint %d outside the topology" u k
              end
              else seen.(k) <- seen.(k) + 1)
            p.pl_units.(u).T.cl_constraints)
        batch)
    p.pl_batches;
  let once = ref !in_range in
  Array.iteri
    (fun k c ->
      if c <> 1 then begin
        once := false;
        note "constraint %d scheduled %d times" k c
      end)
    seen;
  (* Per-batch slot disjointness: tile each batch the way the solver will
     at every slot count and demand the tiles' atom footprints (read and
     written alike — SHAKE/RATTLE read-modify-write their cluster atoms)
     never intersect across slots. *)
  let disjoint = ref true in
  List.iter
    (fun nslots ->
      Array.iteri
        (fun b batch ->
          let tiles =
            Exec.tile_bounds ~total:(Array.length batch) ~ntiles:nslots
          in
          let owner = Hashtbl.create 64 in
          Array.iteri
            (fun s (lo, hi) ->
              for k = lo to hi - 1 do
                Array.iter
                  (fun a ->
                    match Hashtbl.find_opt owner a with
                    | Some s0 when s0 <> s ->
                        disjoint := false;
                        note
                          "batch %d at %d slots: atom %d touched by slots \
                           %d and %d"
                          b nslots a s0 s
                    | Some _ -> ()
                    | None -> Hashtbl.add owner a s)
                  p.pl_units.(batch.(k)).T.cl_atoms
              done)
            tiles)
        p.pl_batches)
    slots;
  {
    crt_proper = !proper;
    crt_once = !once;
    crt_disjoint = !disjoint;
    crt_slots = slots;
    crt_violations = List.rev !violations;
  }

(* A plan the certifier must reject: two single-constraint units sharing an
   atom, planted in the same batch. Exercises both the proper-coloring and
   the slot-disjointness branches. *)
let seed_conflict_plan () =
  let b = T.Builder.create () in
  T.Builder.set_lj_types b [| (0.1, 1.0) |];
  for _ = 1 to 3 do
    ignore (T.Builder.add_atom b ~mass:1. ~charge:0. ~type_id:0 ~name:"X")
  done;
  T.Builder.add_constraint b ~i:0 ~j:1 ~dist:1.;
  T.Builder.add_constraint b ~i:1 ~j:2 ~dist:1.;
  let topo = T.Builder.finish b in
  let p = plan ~fuse:false ~name:"seeded-conflict" topo in
  {
    p with
    pl_colors = Array.map (fun _ -> 0) p.pl_colors;
    pl_batches = [| Array.init (Array.length p.pl_units) Fun.id |];
  }

type report = {
  rp_name : string;
  rp_n_constraints : int;
  rp_n_clusters : int;
  rp_n_batches : int;
  rp_max_cluster : int;  (* constraints in the largest cluster *)
  rp_max_cluster_atoms : int;
  rp_cert : certificate;
  rp_env_ok : bool;
  rp_env_notes : string list;
}

let report_ok r = cert_ok r.rp_cert && r.rp_env_ok

(* Registered constraint envelopes (ROADMAP maintenance rule): the cluster
   decomposition a workload is allowed to have. A bigger cluster or an
   extra batch after a topology change is a schedule regression the gate
   should catch, exactly like the pair-budget pins in [Check]. *)
type envelope = {
  env_name : string;
  env_topo : unit -> T.t;
  env_max_cluster_size : int;
  env_n_batches : int;
}

let builtin_envelopes () =
  [
    {
      env_name = "water6k";
      env_topo =
        (fun () ->
          (Mdsp_workload.Workloads.water_box ~n_side:13 ())
            .Mdsp_workload.Workloads.topo);
      (* Rigid SPC/E water: 3 constraints per molecule, fused into one
         3-atom cluster; clusters are disjoint, so one batch. *)
      env_max_cluster_size = 3;
      env_n_batches = 1;
    };
    {
      env_name = "chain10k";
      env_topo =
        (fun () ->
          (Mdsp_workload.Workloads.bead_chain ~n_beads:256 ~n_total:10_000 ())
            .Mdsp_workload.Workloads.topo);
      (* Flexible chain + solvent: no constraints at all — the certificate
         is the (exactly-once, vacuously proper) empty schedule. *)
      env_max_cluster_size = 0;
      env_n_batches = 0;
    };
  ]

let report_of_plan ?slots ?(env : envelope option) p =
  let cert = certify ?slots p in
  let max_cluster =
    Array.fold_left
      (fun acc u -> max acc (Array.length u.T.cl_constraints))
      0 p.pl_units
  in
  let max_cluster_atoms =
    Array.fold_left
      (fun acc u -> max acc (Array.length u.T.cl_atoms))
      0 p.pl_units
  in
  let n_batches = Array.length p.pl_batches in
  let env_ok, env_notes =
    match env with
    | None -> (true, [])
    | Some e ->
        let notes = ref [] in
        if max_cluster > e.env_max_cluster_size then
          notes :=
            Printf.sprintf
              "largest cluster has %d constraints, envelope allows %d"
              max_cluster e.env_max_cluster_size
            :: !notes;
        if n_batches > e.env_n_batches then
          notes :=
            Printf.sprintf "schedule needs %d batches, envelope allows %d"
              n_batches e.env_n_batches
            :: !notes;
        (!notes = [], List.rev !notes)
  in
  {
    rp_name = p.pl_name;
    rp_n_constraints = p.pl_n_constraints;
    rp_n_clusters = Array.length p.pl_units;
    rp_n_batches = n_batches;
    rp_max_cluster = max_cluster;
    rp_max_cluster_atoms = max_cluster_atoms;
    rp_cert = cert;
    rp_env_ok = env_ok;
    rp_env_notes = env_notes;
  }

let run ?slots ?(seed_conflict = false) () =
  let reports =
    List.map
      (fun e ->
        let p = plan ~name:e.env_name (e.env_topo ()) in
        report_of_plan ?slots ~env:e p)
      (builtin_envelopes ())
  in
  if seed_conflict then
    reports @ [ report_of_plan ?slots (seed_conflict_plan ()) ]
  else reports

let ok reports = List.for_all report_ok reports

let pp_report fmt r =
  Format.fprintf fmt
    "constraints %s: %d constraints, %d clusters (max %d cons / %d atoms), \
     %d batch%s: %s@,"
    r.rp_name r.rp_n_constraints r.rp_n_clusters r.rp_max_cluster
    r.rp_max_cluster_atoms r.rp_n_batches
    (if r.rp_n_batches = 1 then "" else "es")
    (if report_ok r then "certified"
     else "FAILED " ^ String.concat "; " (r.rp_cert.crt_violations @ r.rp_env_notes));
  if not (cert_ok r.rp_cert) then
    List.iter
      (fun v -> Format.fprintf fmt "  %s@," v)
      r.rp_cert.crt_violations

let json_rows reports =
  ("constraints.ok", ok reports)
  :: List.concat_map
       (fun r ->
         [
           (Printf.sprintf "constraints.%s.ok" r.rp_name, report_ok r);
           (Printf.sprintf "constraints.%s.proper" r.rp_name,
            r.rp_cert.crt_proper);
           (Printf.sprintf "constraints.%s.once" r.rp_name, r.rp_cert.crt_once);
           (Printf.sprintf "constraints.%s.disjoint" r.rp_name,
            r.rp_cert.crt_disjoint);
           (Printf.sprintf "constraints.%s.envelope" r.rp_name, r.rp_env_ok);
         ])
       reports

(* Graphviz rendering of the interference graph, batch as color class.
   Deterministic: units and edges in index order. *)
let dot p =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "graph \"constraints:%s\" {\n" p.pl_name);
  Array.iteri
    (fun i u ->
      Buffer.add_string buf
        (Printf.sprintf "  u%d [label=\"u%d b%d (%dc/%da)\"];\n" i i
           p.pl_colors.(i)
           (Array.length u.T.cl_constraints)
           (Array.length u.T.cl_atoms)))
    p.pl_units;
  let adj = T.cluster_adjacency p.pl_units in
  Array.iteri
    (fun i ns ->
      List.iter
        (fun j ->
          if i < j then
            Buffer.add_string buf (Printf.sprintf "  u%d -- u%d;\n" i j))
        ns)
    adj;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
