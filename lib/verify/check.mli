(** The verification registry: every built-in kernel, workload bias and
    compiled table, plus the race-sanitized parallel phases, checked in one
    call — the engine behind [mdsp check] and the CI gate.

    The registry is deliberately closed-world: it enumerates the kernels the
    restraint layer ships, the workload biases re-expressed in the kernel
    DSL, and the interpolation tables the CLI and the water pipeline
    compile. Adding a kernel or table to the code base means adding it here,
    so the gate keeps proving the whole surface. *)

(** Outcome of one sanitized phase sweep at a given slot count. *)
type sanitize_result = {
  slots : int;
  phases : string list;  (** phase labels exercised (empty on failure) *)
  failure : string option;  (** the {!Mdsp_util.Exec.Race} message, if any *)
}

type summary = {
  kernels : Kernel_check.report list;
  tables : Table_check.report list;
  sanitize : sanitize_result list;
  datapath : Fixed_check.report list;
  phases : Dataflow.report option;
      (** the phase-dataflow certificate, when requested *)
  constraints : Schedule.report list option;
      (** the constraint-schedule certificates, when requested *)
}

(** The built-in kernel surface: the restraint kernels and the double-well
    workload biases re-expressed in the kernel DSL (same functional forms
    and parameter values as [Mdsp_workload.Workloads]). *)
val builtin_kernels : unit -> Mdsp_core.Kernel.t list

(** A kernel that must fail verification — [1/x] plus [log x] over a box
    whose coordinate interval spans zero. Used by [mdsp check --seed-hazard]
    and the tests to prove the analyzer cannot be green by accident. *)
val hazardous_kernel : unit -> Mdsp_core.Kernel.t

(** The built-in datapath envelopes the certifier proves: the small water
    pipeline (same topology, cutoff and tables as the ["water.*"] table
    entries, first in the list), a 6591-atom water box and a 10^4-atom
    bead-chain polymer in LJ solvent. The macromolecule-scale envelopes pin
    [max_pairs_per_atom] by building the runtime's tiled Verlet list on the
    generated coordinates and taking the maximum per-atom degree (plus
    headroom), rather than the trivial [n_atoms - 1] budget. *)
val builtin_envelopes : unit -> Fixed_check.envelope list

(** A force format at the default resolution but too narrow for the water
    per-atom accumulator; certifying against it must fail. Used by
    [mdsp check --seed-narrow] and CI to prove the certifier cannot be
    green by accident. *)
val narrow_format : Mdsp_util.Fixed.format

(** [run ?seed_hazard ?seed_narrow ?seed_race ?phases ?slots ()] checks
    every registered kernel (interval pass over energy and gradients),
    every registered table (domain / fit / quantization pass), certifies
    every registered datapath envelope (fixed-point saturation pass), and
    drives the sanitized parallel phases at each slot count in [slots]
    (default [[1; 2; 4]]). [phases] (default false) additionally runs the
    {!Dataflow} analysis at the same slot counts — coverage, acyclicity and
    slot-count invariance of the happens-before graph. [constraints]
    (default false) additionally plans and certifies the registered
    constraint-schedule envelopes ({!Schedule.run}). [seed_hazard]
    (default false) additionally runs {!hazardous_kernel}; [seed_narrow]
    (default false) additionally certifies each envelope against
    {!narrow_format}; [seed_race] (default false) implies [phases] and
    appends the deliberately unsound dataflow window; [seed_cycle] (default
    false) implies [phases] and appends the race-free cyclic phase pair
    that must fail acyclicity; [seed_conflict] (default false) implies
    [constraints] and appends the planted same-batch conflict plan — every
    seeded report is included in the summary and makes it fail. *)
val run :
  ?seed_hazard:bool ->
  ?seed_narrow:bool ->
  ?seed_race:bool ->
  ?seed_cycle:bool ->
  ?seed_conflict:bool ->
  ?phases:bool ->
  ?constraints:bool ->
  ?slots:int list ->
  unit ->
  summary

val ok : summary -> bool
val pp_summary : Format.formatter -> summary -> unit

(** Flat JSON object in the bench-metrics style: ["verify.ok"] plus one
    0/1 verdict per ["kernel.<name>"], ["table.<name>"],
    ["sanitize.slots<n>"], ["datapath.<workload>.ok"] and
    ["datapath.<workload>.<format>"] key, plus the {!Dataflow.json_rows}
    ["phases.*"] keys when the dataflow pass ran and the
    {!Schedule.json_rows} ["constraints.*"] keys when the schedule pass
    ran. *)
val to_json : summary -> string
