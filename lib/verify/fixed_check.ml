module Fixed = Mdsp_util.Fixed
module Units = Mdsp_util.Units
module It = Mdsp_machine.Interp_table
module Htis = Mdsp_machine.Htis
module Msim = Mdsp_machine.Machine_sim
module FI = Fixed_interval

type envelope = {
  env_name : string;
  n_atoms : int;
  max_pairs_per_atom : int;
  max_pairs_per_node : int;
  min_separation : float;
  max_abs_charge : float;
  cutoff : float;
  nodes : int * int * int;
  tables : Htis.table_set;
  position_extent : float;
}

type acc_report = {
  acc : string;
  format_name : string;
  fmt : Fixed.format;
  worst : float;
  limit : float;
  margin_bits : float;
  pair_bound : int;
  min_safe_bits : int option;
  safe : bool;
  detail : string option;
}

type report = { workload : string; accs : acc_report list }

let mag (iv : Interval.t) =
  Float.max (abs_float iv.Interval.lo) (abs_float iv.Interval.hi)

(* --- sound per-interval output bounds of a compiled table --- *)

(* |energy| and |f_over_r| bounds per interval, from an interval-Horner
   pass over the stored (already block-quantized) coefficients with the
   local variable u ranging over the whole interval [0, width]. *)
type profile = {
  p_n : int;
  p_r_min2 : float;
  p_r_cut2 : float;
  p_width : float;
  e_abs : float array;
  f_abs : float array;
}

let horner_range ~u c0 c1 c2 c3 =
  let open Interval in
  let s = add (point c2) (mul u (point c3)) in
  let s = add (point c1) (mul u s) in
  add (point c0) (mul u s)

let profile_of_table table =
  let n = It.n_intervals table in
  let r_min2, r_cut2 = It.domain2 table in
  let width = It.width table in
  let u = Interval.make 0. width in
  let blocks = It.coeff_blocks table in
  let e_abs = Array.make n 0. and f_abs = Array.make n 0. in
  Array.iteri
    (fun i b ->
      e_abs.(i) <- mag (horner_range ~u b.(0) b.(1) b.(2) b.(3));
      f_abs.(i) <- mag (horner_range ~u b.(4) b.(5) b.(6) b.(7)))
    blocks;
  { p_n = n; p_r_min2 = r_min2; p_r_cut2 = r_cut2; p_width = width; e_abs; f_abs }

(* Bound (|e|, |f_over_r|) of a profiled table over r2 in [a, b). Beyond
   r_cut2 the pipeline emits zero; below r_min2 it clamps to the first
   knot, which interval 0's bound covers. Index fuzz rounds outward, so a
   shell can only pick up an extra neighboring interval — sound. *)
let profile_bounds p a b =
  if a >= p.p_r_cut2 then (0., 0.)
  else begin
    let b = Float.min b p.p_r_cut2 in
    let idx x = int_of_float ((x -. p.p_r_min2) /. p.p_width) in
    let i_lo = if a <= p.p_r_min2 then 0 else min (p.p_n - 1) (max 0 (idx a)) in
    let i_hi = min (p.p_n - 1) (max 0 (idx b)) in
    let e = ref 0. and f = ref 0. in
    for i = i_lo to i_hi do
      e := Float.max !e p.e_abs.(i);
      f := Float.max !f p.f_abs.(i)
    done;
    (!e, !f)
  end

(* --- radial shells with packing capacities --- *)

(* Atoms pairwise separated by at least s: spheres of radius s/2 around
   the neighbors (and the center) pack disjointly into the ball of radius
   r + s/2, so an atom has at most (2r/s + 1)^3 - 1 neighbors within r.
   The per-shell capacity is what makes the accumulator bounds realistic:
   only a couple of dozen pairs can sit at the steep close-contact end of
   a table at once, so the worst case is far below
   pairs_per_atom * max |force|. *)
let packing_cap ~min_separation r =
  let x = (2. *. r /. min_separation) +. 1. in
  max 0 (int_of_float (x *. x *. x) - 1)

type shell = {
  sh_r2_hi : float;
  sh_cap : int; (* cumulative: max pairs of one atom within sqrt r2_hi *)
  sh_g : float; (* per-pair |force component| bound on the shell *)
  sh_e : float; (* per-pair |energy| bound on the shell *)
}

let shells_of_envelope env =
  let ts = env.tables in
  let lo2 = env.min_separation *. env.min_separation in
  let hi2 = env.cutoff *. env.cutoff in
  let profiles_lj = Array.map (Array.map profile_of_table) ts.Htis.lj in
  let profile_es = Option.map profile_of_table ts.Htis.electrostatic in
  let knots = ref [ lo2; hi2 ] in
  let add_knots p =
    for i = 0 to p.p_n do
      let k = p.p_r_min2 +. (float_of_int i *. p.p_width) in
      if k > lo2 && k < hi2 then knots := k :: !knots
    done
  in
  Array.iter (Array.iter add_knots) profiles_lj;
  Option.iter add_knots profile_es;
  let knots = Array.of_list (List.sort_uniq compare !knots) in
  let qq = Units.coulomb *. env.max_abs_charge *. env.max_abs_charge in
  let ntypes = Array.length ts.Htis.lj in
  Array.init
    (Array.length knots - 1)
    (fun k ->
      let a = knots.(k) and b = knots.(k + 1) in
      let es_e, es_f =
        match profile_es with
        | None -> (0., 0.)
        | Some p -> profile_bounds p a b
      in
      let e_w = ref 0. and f_w = ref 0. in
      for ti = 0 to ntypes - 1 do
        for tj = ti to ntypes - 1 do
          let lj_e, lj_f = profile_bounds profiles_lj.(ti).(tj) a b in
          e_w := Float.max !e_w (lj_e +. (qq *. es_e));
          f_w := Float.max !f_w (lj_f +. (qq *. es_f))
        done
      done;
      let r_hi = sqrt b in
      {
        sh_r2_hi = b;
        sh_cap =
          min env.max_pairs_per_atom
            (packing_cap ~min_separation:env.min_separation r_hi);
        (* per-component force: |f_over_r * d_x| <= |f_over_r| * r *)
        sh_g = !f_w *. r_hi;
        sh_e = !e_w;
      })

(* Maximize sum n_k w_k subject to the cumulative capacities: for every
   shell k, the pairs at or inside it number at most cap_k. Capacities are
   nondecreasing in r, so the feasible set is a polymatroid and the greedy
   assignment in decreasing-weight order attains the exact maximum — a
   sound (and tight) worst case. *)
let worst_sum shells weight =
  let s = Array.length shells in
  let w = Array.init s (fun i -> weight shells.(i)) in
  let order = Array.init s Fun.id in
  Array.sort (fun a b -> compare w.(b) w.(a)) order;
  let prefix = Array.make s 0 in
  let total_w = ref 0. and total_n = ref 0 in
  Array.iter
    (fun k ->
      let slack = ref max_int in
      for j = k to s - 1 do
        slack := min !slack (shells.(j).sh_cap - prefix.(j))
      done;
      let add = max 0 !slack in
      if add > 0 then begin
        for j = k to s - 1 do
          prefix.(j) <- prefix.(j) + add
        done;
        total_w := !total_w +. (float_of_int add *. w.(k));
        total_n := !total_n + add
      end)
    order;
  (!total_w, !total_n)

(* --- Horner-step certificate for the coefficient mantissa datapath --- *)

(* Re-derive each reachable block's mantissas (coefficients over the
   shared power-of-two exponent, as quantize_block stores them) and bound
   every intermediate of the pipeline's Horner evaluation
   s3 = c3; s_k = c_k + u s_{k+1} with u in [0, width]. *)
let horner_step_worst table ~lo2 ~hi2 =
  let n = It.n_intervals table in
  let r_min2, r_cut2 = It.domain2 table in
  let width = It.width table in
  if lo2 >= r_cut2 then None
  else begin
    let idx x = int_of_float ((x -. r_min2) /. width) in
    let i_lo = if lo2 <= r_min2 then 0 else min (n - 1) (max 0 (idx lo2)) in
    let i_hi = min (n - 1) (max 0 (idx (Float.min hi2 r_cut2))) in
    let u = Interval.make 0. width in
    let worst = ref 0. and where = ref "" in
    let blocks = It.coeff_blocks table in
    for i = i_lo to i_hi do
      let b = blocks.(i) in
      let m = Array.fold_left (fun a c -> Float.max a (abs_float c)) 0. b in
      if m > 0. && Float.is_finite m then begin
        let scale = ldexp 1. (snd (frexp m)) in
        let step base label =
          let c d = b.(base + d) /. scale in
          let s = ref (Interval.point (c 3)) in
          for d = 2 downto 0 do
            s := Interval.add (Interval.point (c d)) (Interval.mul u !s);
            if mag !s > !worst then begin
              worst := mag !s;
              where := Printf.sprintf "interval %d, %s step s%d" i label d
            end
          done
        in
        (* s3 itself is a stored mantissa, <= 1 by construction. *)
        step 0 "energy";
        step 4 "force"
      end
    done;
    Some (!worst, !where)
  end

(* --- the certificate --- *)

let acc_entry ~acc ~format_name ~fmt ~pair_bound ?detail elt =
  {
    acc;
    format_name;
    fmt;
    worst = FI.worst_magnitude elt;
    limit = Fixed.max_value fmt;
    margin_bits = FI.margin_bits fmt elt;
    pair_bound;
    min_safe_bits = FI.min_safe_total_bits fmt elt;
    safe = FI.fits fmt elt;
    detail;
  }

let certify ?format env =
  let fmt, efmt = Htis.formats_used ?format () in
  let qerr = Fixed.quantization_error fmt in
  let shells = shells_of_envelope env in
  let g_max = Array.fold_left (fun a s -> Float.max a s.sh_g) 0. shells in
  let g_sum, g_pairs = worst_sum shells (fun s -> s.sh_g) in
  let e_sum, e_pairs = worst_sum shells (fun s -> s.sh_e) in
  (* Whole-system pair count: every atom's neighbor budget, halved because
     each pair has two endpoints. *)
  let total_pairs = (env.n_atoms * e_pairs + 1) / 2 in
  let force_elt =
    { (FI.of_magnitude g_sum) with FI.err = float_of_int g_pairs *. qerr }
  in
  let energy_elt =
    {
      (FI.of_magnitude (float_of_int env.n_atoms *. e_sum /. 2.)) with
      FI.err = float_of_int total_pairs *. Fixed.quantization_error efmt;
    }
  in
  let depth = Msim.reduction_depth ~nodes:env.nodes in
  let force_rows =
    [
      acc_entry ~acc:"pair force component (conversion)"
        ~format_name:"force_format" ~fmt ~pair_bound:1
        (FI.quantize fmt (FI.of_magnitude g_max));
      acc_entry ~acc:"HTIS per-atom component accumulator"
        ~format_name:"force_format" ~fmt ~pair_bound:g_pairs force_elt;
      acc_entry ~acc:"machine-sim node partial" ~format_name:"force_format"
        ~fmt ~pair_bound:g_pairs force_elt;
      acc_entry ~acc:"machine-sim torus reduction" ~format_name:"force_format"
        ~fmt ~pair_bound:g_pairs
        ~detail:
          (Printf.sprintf "%d level%s over %d node partials; disjoint pair \
                           sets keep every level within the per-atom bound"
             depth
             (if depth = 1 then "" else "s")
             (let x, y, z = env.nodes in
              x * y * z))
        force_elt;
    ]
  in
  (* One node's energy partial under the midpoint decomposition: at most
     [max_pairs_per_node] pair terms land on any node, each bounded by the
     single steepest shell; a subset of same-sign worst-case terms can
     never exceed the whole-system bound either, so take the min. *)
  let e_max = Array.fold_left (fun a s -> Float.max a s.sh_e) 0. shells in
  let node_pairs = min env.max_pairs_per_node total_pairs in
  let node_energy_elt =
    {
      (FI.of_magnitude
         (Float.min
            (float_of_int env.n_atoms *. e_sum /. 2.)
            (float_of_int node_pairs *. e_max)))
      with
      FI.err = float_of_int node_pairs *. Fixed.quantization_error efmt;
    }
  in
  let energy_rows =
    [
      acc_entry ~acc:"HTIS energy accumulator" ~format_name:"energy_format"
        ~fmt:efmt ~pair_bound:total_pairs energy_elt;
      acc_entry ~acc:"machine-sim node energy partial"
        ~format_name:"energy_format" ~fmt:efmt ~pair_bound:node_pairs
        ~detail:
          (Printf.sprintf
             "midpoint decomposition pins <= %d pairs on any one node"
             env.max_pairs_per_node)
        node_energy_elt;
      acc_entry ~acc:"machine-sim energy reduction"
        ~format_name:"energy_format" ~fmt:efmt ~pair_bound:total_pairs
        ~detail:(Printf.sprintf "%d reduction levels" depth)
        energy_elt;
    ]
  in
  let pf = Fixed.position_format in
  let position_rows =
    [
      acc_entry ~acc:"position coordinate (box fraction)"
        ~format_name:"position_format" ~fmt:pf ~pair_bound:0
        (FI.quantize pf (FI.of_magnitude env.position_extent));
      acc_entry ~acc:"min-image displacement" ~format_name:"position_format"
        ~fmt:pf ~pair_bound:0
        (FI.quantize pf
           (FI.quantize pf (FI.of_magnitude (env.position_extent /. 2.))));
    ]
  in
  (* Coefficient datapath: the worst Horner intermediate over every table
     in the set, in mantissa units. *)
  let lo2 = env.min_separation *. env.min_separation in
  let hi2 = env.cutoff *. env.cutoff in
  let coeff_row =
    let worst = ref None in
    let consider name table =
      match horner_step_worst table ~lo2 ~hi2 with
      | None -> ()
      | Some (w, where) ->
          let margin =
            FI.margin_bits (It.format_of table) (FI.of_magnitude w)
          in
          (match !worst with
          | Some (_, _, _, m) when m <= margin -> ()
          | _ -> worst := Some (name, table, where, margin))
    in
    let ts = env.tables in
    Array.iteri
      (fun i row ->
        Array.iteri
          (fun j t -> if j >= i then consider (Printf.sprintf "lj[%d][%d]" i j) t)
          row)
      ts.Htis.lj;
    Option.iter (consider "electrostatic") ts.Htis.electrostatic;
    match !worst with
    | None -> []
    | Some (name, table, where, _) ->
        let w, _ = Option.get (horner_step_worst table ~lo2 ~hi2) in
        [
          acc_entry ~acc:"coefficient Horner step (mantissa)"
            ~format_name:"coeff_format" ~fmt:(It.format_of table) ~pair_bound:0
            ~detail:(Printf.sprintf "table %s, %s" name where)
            (FI.of_magnitude w);
        ]
  in
  {
    workload = env.env_name;
    accs = force_rows @ energy_rows @ position_rows @ coeff_row;
  }

let proved r = List.for_all (fun a -> a.safe) r.accs

let format_names r =
  List.fold_left
    (fun acc a -> if List.mem a.format_name acc then acc else acc @ [ a.format_name ])
    [] r.accs

let format_ok r name =
  List.for_all (fun a -> a.format_name <> name || a.safe) r.accs

let format_margin r name =
  List.fold_left
    (fun m a -> if a.format_name = name then Float.min m a.margin_bits else m)
    infinity r.accs

let pp_acc ppf a =
  Format.fprintf ppf "  %-38s worst %11.5g  limit %11.5g  margin %6.2f bits"
    a.acc a.worst a.limit a.margin_bits;
  if a.pair_bound > 0 then Format.fprintf ppf "  [%d pairs]" a.pair_bound;
  if not a.safe then begin
    match a.min_safe_bits with
    | Some tb -> Format.fprintf ppf "  SATURABLE: needs total_bits >= %d" tb
    | None -> Format.fprintf ppf "  SATURABLE: no width up to 63 bits suffices"
  end;
  (match a.detail with
  | Some d -> Format.fprintf ppf "@,      (%s)" d
  | None -> ());
  Format.fprintf ppf "@,"

let pp_verdict ppf r =
  let fmt_verdict name =
    if format_ok r name then
      Printf.sprintf "%s %.2f bits" name (format_margin r name)
    else
      let bad =
        List.filter (fun a -> a.format_name = name && not a.safe) r.accs
      in
      Printf.sprintf "%s SATURABLE (%s)" name
        (String.concat "; " (List.map (fun a -> a.acc) bad))
  in
  Format.fprintf ppf "datapath %S: %s@,  margins: %s@," r.workload
    (if proved r then "proved safe" else "SATURATION POSSIBLE")
    (String.concat ", " (List.map fmt_verdict (format_names r)))

let pp_report ppf r =
  Format.fprintf ppf "datapath certificate for %S: %s@," r.workload
    (if proved r then "proved safe" else "SATURATION POSSIBLE");
  List.iter
    (fun name ->
      let rows = List.filter (fun a -> a.format_name = name) r.accs in
      let f = (List.hd rows).fmt in
      Format.fprintf ppf " %s (%d bits, %d fractional): %s@," name
        f.Fixed.total_bits f.Fixed.frac_bits
        (if format_ok r name then
           Printf.sprintf "proved safe, margin %.2f bits" (format_margin r name)
         else "SATURATION POSSIBLE");
      List.iter (pp_acc ppf) rows)
    (format_names r)
