open Mdsp_util
module SMap = Map.Make (String)

(* Every named parallel phase the stack ships. The analysis fails if any
   of these never shows up in a recording sweep, so adding a phase to the
   code base means adding it here — the same closed-world rule the kernel
   and table registries follow. *)
let expected_phases =
  [
    "bonded";
    "bonded.reduce";
    "cell.bin";
    "constraints.fold";
    "constraints.rattle";
    "constraints.shake";
    "decomp.owner";
    "decomp.pairs";
    "decomp.resident";
    "exec.map_slots";
    "gse.combine";
    "gse.convolve";
    "gse.fft_fwd.x";
    "gse.fft_fwd.y";
    "gse.fft_fwd.z";
    "gse.fft_inv.x";
    "gse.fft_inv.y";
    "gse.fft_inv.z";
    "gse.gather";
    "gse.phi_scale";
    "gse.spread";
    "integrate.drift";
    "integrate.kick1";
    "integrate.kick2";
    "nbuild";
    "pair";
    "pair14";
    "service.jobs";
    "soa.load";
    "soa.reduce";
    "soa.store";
    "thermo.langevin";
    "thermo.scale";
  ]

(* Several phases declare their accesses under phase-local labels that
   alias the same underlying memory — the per-atom reductions accumulate
   into the force array, the whole grid pipeline transforms one grid in
   place, the pair phase reads the list the rebuild wrote. Mapping those
   labels onto the canonical resource is what turns per-phase footprints
   into dataflow edges. *)
let canon = function
  | "bonded.reduce" | "gse.gather" -> "state.forces"
  | "cons.pos" -> "state.positions"
  | "cons.vel" -> "state.velocities"
  | "cons.prev" -> "integrate.prev"
  | "soa.reduce" -> "soa.forces"
  | "nlist.pairs" -> "nlist.tiles"
  | "gse.grid_combine" | "gse.convolve" | "gse.phi_scale" | "fft.x_lines"
  | "fft.y_lines" | "fft.z_lines" ->
      "gse.grid"
  | r -> r

type phase = {
  ph_name : string;
  ph_reads : (string * (int * int)) list;
  ph_writes : (string * (int * int)) list;
  ph_barriers : int;
}

type graph = {
  g_slots : int;
  g_phases : phase list;
  g_edges : (string * string * string) list;
  g_unlabeled : int;
}

type report = {
  df_graphs : graph list;
  df_missing : string list;
  df_unexpected : string list;
  df_no_reads : string list;
  df_no_writes : string list;
  df_acyclic : bool;
  df_invariant : bool;
  df_failure : string option;
  df_seeded : bool;
}

(* --- recording ------------------------------------------------------- *)

type acc = {
  mutable a_reads : (int * int) SMap.t;
  mutable a_writes : (int * int) SMap.t;
  mutable a_barriers : int;
}

type recorder = {
  r_phases : (string, acc) Hashtbl.t;
  r_edges : (string * string * string, unit) Hashtbl.t;
  (* Canonical resource -> phase that last wrote it, reset per window. *)
  r_last_writer : (string, string) Hashtbl.t;
  mutable r_unlabeled : int;
}

let hull m r lo hi =
  match SMap.find_opt r m with
  | None -> SMap.add r (lo, hi) m
  | Some (l, h) -> SMap.add r (min l lo, max h hi) m

let observe rc (br : Exec.barrier_record) =
  match br.Exec.br_phase with
  | None -> rc.r_unlabeled <- rc.r_unlabeled + 1
  | Some name ->
      let acc =
        match Hashtbl.find_opt rc.r_phases name with
        | Some a -> a
        | None ->
            let a =
              { a_reads = SMap.empty; a_writes = SMap.empty; a_barriers = 0 }
            in
            Hashtbl.add rc.r_phases name a;
            a
      in
      acc.a_barriers <- acc.a_barriers + 1;
      (* Reads first, against the previous writer: a phase that both reads
         and writes a resource (read-modify-write) depends on the writer
         before it, not on itself. Self-edges are dropped — a phase
         following its own earlier barrier is plain sequencing, not a
         cross-phase ordering constraint. *)
      List.iter
        (fun (a : Exec.access) ->
          let r = canon a.Exec.acc_resource in
          acc.a_reads <- hull acc.a_reads r a.Exec.acc_lo a.Exec.acc_hi;
          match Hashtbl.find_opt rc.r_last_writer r with
          | Some w when w <> name -> Hashtbl.replace rc.r_edges (w, name, r) ()
          | _ -> ())
        br.Exec.br_reads;
      List.iter
        (fun (a : Exec.access) ->
          let r = canon a.Exec.acc_resource in
          acc.a_writes <- hull acc.a_writes r a.Exec.acc_lo a.Exec.acc_hi;
          Hashtbl.replace rc.r_last_writer r name)
        br.Exec.br_writes

(* A deliberately unsound phase: every slot writes its own tile while
   claiming to read the whole array. Sound at one slot (same-slot
   read-modify-write); a cross-slot read-write conflict at two or more —
   the gate that proves the conflict matrix cannot be green by accident. *)
let seed_race_window ~exec () =
  let n = 64 in
  let a = Array.make n 0. in
  fun () ->
    let ns = Exec.n_slots exec in
    let tiles = Exec.tile_bounds ~total:n ~ntiles:ns in
    Exec.parallel_run ~phase:"seed.race" exec (fun s ->
        let lo, hi = tiles.(s) in
        Exec.declare_write ~slot:s ~resource:"seed.race" ~total:n ~lo ~hi
          exec;
        Exec.declare_read ~slot:s ~resource:"seed.race" ~lo:0 ~hi:n exec;
        for i = lo to hi - 1 do
          a.(i) <- a.(i) +. 1.
        done)

(* A deliberately cyclic phase pair: each phase's writes are properly
   tiled (no races at any slot count — the conflict matrix stays green),
   but A reads what B last wrote and vice versa, so the derived
   happens-before graph contains A -> B -> A. This must fail the
   acyclicity branch of the certifier — the branch [seed.race] never
   reaches. Both phases also fail the closed-world registry, but the
   seeded report asserts the cycle specifically. *)
let seed_cycle_window ~exec () =
  let n = 64 in
  let x = Array.make n 0. and y = Array.make n 0. in
  let half name ~writes ~reads src dst =
    let ns = Exec.n_slots exec in
    let tiles = Exec.tile_bounds ~total:n ~ntiles:ns in
    Exec.parallel_run ~phase:name exec (fun s ->
        let lo, hi = tiles.(s) in
        Exec.declare_read ~slot:s ~resource:reads ~lo ~hi exec;
        Exec.declare_write ~slot:s ~resource:writes ~total:n ~lo ~hi exec;
        for i = lo to hi - 1 do
          dst.(i) <- src.(i) +. 1.
        done)
  in
  fun () ->
    half "seed.cycle.a" ~writes:"seed.x" ~reads:"seed.y" y x;
    half "seed.cycle.b" ~writes:"seed.y" ~reads:"seed.x" x y;
    half "seed.cycle.a" ~writes:"seed.x" ~reads:"seed.y" y x

let graph_of rc ~slots =
  let phases =
    Hashtbl.fold
      (fun name a l ->
        {
          ph_name = name;
          ph_reads = SMap.bindings a.a_reads;
          ph_writes = SMap.bindings a.a_writes;
          ph_barriers = a.a_barriers;
        }
        :: l)
      rc.r_phases []
  in
  {
    g_slots = slots;
    g_phases =
      List.sort (fun p q -> compare p.ph_name q.ph_name) phases;
    g_edges =
      List.sort compare
        (Hashtbl.fold (fun e () l -> e :: l) rc.r_edges []);
    g_unlabeled = rc.r_unlabeled;
  }

let run_at ~slots ~seed_race ~seed_cycle =
  let exec = Phase_check.make_exec ~slots in
  let rc =
    {
      r_phases = Hashtbl.create 64;
      r_edges = Hashtbl.create 64;
      r_last_writer = Hashtbl.create 32;
      r_unlabeled = 0;
    }
  in
  Fun.protect
    ~finally:(fun () -> Exec.shutdown exec)
    (fun () ->
      let windows =
        Phase_check.windows
        @ (if seed_race then [ ("seed.race", seed_race_window) ] else [])
        @
        if seed_cycle then [ ("seed.cycle", seed_cycle_window) ] else []
      in
      List.iter
        (fun (_name, window) ->
          (* Setup (engine construction and its force evaluation) runs
             unobserved; only the body is recorded, with a fresh
             last-writer table per window. *)
          let body = window ~exec () in
          Hashtbl.reset rc.r_last_writer;
          Exec.set_observer exec (Some (observe rc));
          Fun.protect
            ~finally:(fun () -> Exec.set_observer exec None)
            body)
        windows);
  graph_of rc ~slots

(* --- analysis -------------------------------------------------------- *)

let acyclic g =
  (* Kahn's algorithm over the phase names. *)
  let indeg = Hashtbl.create 64 in
  List.iter (fun p -> Hashtbl.replace indeg p.ph_name 0) g.g_phases;
  List.iter
    (fun (_, b, _) ->
      match Hashtbl.find_opt indeg b with
      | Some d -> Hashtbl.replace indeg b (d + 1)
      | None -> ())
    g.g_edges;
  let queue = Queue.create () in
  Hashtbl.iter (fun n d -> if d = 0 then Queue.add n queue) indeg;
  let removed = ref 0 in
  while not (Queue.is_empty queue) do
    let n = Queue.pop queue in
    incr removed;
    List.iter
      (fun (a, b, _) ->
        if a = n then begin
          let d = Hashtbl.find indeg b - 1 in
          Hashtbl.replace indeg b d;
          if d = 0 then Queue.add b queue
        end)
      g.g_edges
  done;
  !removed = List.length g.g_phases

(* The shape compared across slot counts: phase names with their read and
   write resource-name sets, plus the edge triples. Ranges are excluded on
   purpose — footprint extents legitimately vary with the slot count (the
   scheduler batches as many jobs as there are slots), the *structure*
   must not. *)
let shape g =
  ( List.map
      (fun p ->
        ( p.ph_name,
          List.map fst p.ph_reads,
          List.map fst p.ph_writes ))
      g.g_phases,
    g.g_edges )

let run ?(slots = [ 1; 2; 4 ]) ?(seed_race = false) ?(seed_cycle = false) () =
  let rec sweep acc = function
    | [] -> (List.rev acc, None)
    | s :: rest -> (
        match run_at ~slots:s ~seed_race ~seed_cycle with
        | g -> sweep (g :: acc) rest
        | exception Exec.Race msg ->
            (List.rev acc, Some (Printf.sprintf "slots=%d: %s" s msg)))
  in
  let graphs, failure = sweep [] slots in
  let recorded =
    List.concat_map (fun g -> List.map (fun p -> p.ph_name) g.g_phases) graphs
    |> List.sort_uniq compare
  in
  let missing =
    if failure <> None then []
    else List.filter (fun p -> not (List.mem p recorded)) expected_phases
  in
  (* The closed world cuts both ways: a recorded phase that is not
     registered in [expected_phases] fails the report just like a
     registered phase that never ran. *)
  let unexpected =
    if failure <> None then []
    else List.filter (fun p -> not (List.mem p expected_phases)) recorded
  in
  let coverage sel =
    List.concat_map
      (fun g ->
        List.filter_map
          (fun p -> if sel p = [] then Some p.ph_name else None)
          g.g_phases)
      graphs
    |> List.sort_uniq compare
  in
  let invariant =
    match graphs with
    | [] -> failure = None
    | g0 :: rest -> List.for_all (fun g -> shape g = shape g0) rest
  in
  {
    df_graphs = graphs;
    df_missing = missing;
    df_unexpected = unexpected;
    df_no_reads = coverage (fun p -> p.ph_reads);
    df_no_writes = coverage (fun p -> p.ph_writes);
    df_acyclic = List.for_all acyclic graphs;
    df_invariant = invariant;
    df_failure = failure;
    df_seeded = seed_race || seed_cycle;
  }

let ok r =
  r.df_failure = None
  && r.df_missing = [] && r.df_unexpected = []
  && r.df_no_reads = [] && r.df_no_writes = []
  && r.df_acyclic && r.df_invariant
  && List.for_all (fun g -> g.g_unlabeled = 0) r.df_graphs
  && r.df_graphs <> []

(* --- output ---------------------------------------------------------- *)

let dot g =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "digraph phases {\n";
  Buffer.add_string buf "  rankdir=LR;\n";
  Buffer.add_string buf "  node [shape=box, fontsize=10];\n";
  List.iter
    (fun p -> Buffer.add_string buf (Printf.sprintf "  %S;\n" p.ph_name))
    g.g_phases;
  List.iter
    (fun (a, b, r) ->
      Buffer.add_string buf
        (Printf.sprintf "  %S -> %S [label=%S, fontsize=8];\n" a b r))
    g.g_edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp_footprint fmt l =
  Format.fprintf fmt "%s"
    (String.concat ", "
       (List.map (fun (r, (lo, hi)) -> Printf.sprintf "%s[%d,%d)" r lo hi) l))

let pp_report fmt r =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun g ->
      Format.fprintf fmt
        "phases (%d slot%s): %d phases, %d edges, %s@," g.g_slots
        (if g.g_slots = 1 then "" else "s")
        (List.length g.g_phases) (List.length g.g_edges)
        (if acyclic g then "acyclic" else "CYCLIC"))
    r.df_graphs;
  (match r.df_graphs with
  | g :: _ ->
      List.iter
        (fun p ->
          Format.fprintf fmt "  %-16s reads %a | writes %a@," p.ph_name
            pp_footprint p.ph_reads pp_footprint p.ph_writes)
        g.g_phases;
      List.iter
        (fun (a, b, res) ->
          Format.fprintf fmt "  %s -> %s  [%s]@," a b res)
        g.g_edges
  | [] -> ());
  (match r.df_failure with
  | Some msg -> Format.fprintf fmt "phases: RACE@,  %s@," msg
  | None -> ());
  if r.df_missing <> [] then
    Format.fprintf fmt "phases: MISSING %s@,"
      (String.concat ", " r.df_missing);
  if r.df_unexpected <> [] then
    Format.fprintf fmt "phases: UNREGISTERED %s@,"
      (String.concat ", " r.df_unexpected);
  if r.df_no_reads <> [] then
    Format.fprintf fmt "phases: NO READ-SET %s@,"
      (String.concat ", " r.df_no_reads);
  if r.df_no_writes <> [] then
    Format.fprintf fmt "phases: NO WRITE-SET %s@,"
      (String.concat ", " r.df_no_writes);
  if not r.df_invariant then
    Format.fprintf fmt "phases: graph shape DIFFERS across slot counts@,";
  Format.fprintf fmt "phases: %s@,@]"
    (if ok r then "dataflow graph certified" else "FAILED")

let json_rows r =
  ("phases.ok", ok r)
  :: ("phases.acyclic", r.df_acyclic)
  :: ("phases.invariant", r.df_invariant)
  :: ("phases.coverage",
      r.df_missing = [] && r.df_unexpected = []
      && r.df_no_reads = [] && r.df_no_writes = [])
  :: List.map
       (fun g ->
         (Printf.sprintf "phases.slots%d" g.g_slots, acyclic g))
       r.df_graphs
