(** Exec race sanitization driver — the third verification pass.

    Runs representative workloads through every parallel phase in the force
    stack and the engine — pair tiles, 1-4 pairs, bonded tiles, per-atom
    reductions, the GSE grid pipeline (spread / combine / FFT sweeps /
    convolve / phi scale / gather), the boxed<->SoA sync, the integrator
    kick/drift sweeps, the batched SHAKE/RATTLE cluster sweeps with the
    constraint velocity fold, the thermostat sweeps (Langevin O-step,
    velocity rescale), the decomposition scans, service-scheduler batches
    and the bare collective — on a pool created with
    [Exec.create ~sanitize:true]. In that mode each slot declares the index
    ranges it writes and reads, and every barrier checks the full conflict
    matrix: write ranges from different slots must be pairwise disjoint, no
    read range on one slot may overlap a write range on another slot, and
    declared extents must be covered. Any violation raises
    {!Mdsp_util.Exec.Race} naming the resource and the offending slots.

    A clean run is evidence that the static tiling really partitions the
    work: no two slots can race on any cell, at this slot count, on these
    phases. *)

open Mdsp_util

(** The named workload windows, shared with {!Dataflow}. Each window's
    function performs its setup (engine or queue construction — including
    the force evaluation engine creation runs) immediately, and returns the
    body to execute as the recorded unit of work. Recording setup in the
    same window as the body would thread stale cross-evaluation orderings
    through the per-name happens-before graph, so {!Dataflow} installs its
    observer only around the body. *)
val windows : (string * (exec:Exec.t -> unit -> unit -> unit)) list

(** [make_exec ~slots] builds a sanitizing executor: a serial one at one
    slot, a domains pool otherwise. Raises [Invalid_argument] for
    [slots < 1]. The caller must [Exec.shutdown] it. *)
val make_exec : slots:int -> Exec.t

(** [run_phases ~slots] drives every window on a sanitizing pool of
    [slots] domains. Returns the declared resource labels exercised.
    Raises {!Mdsp_util.Exec.Race} on any conflict-matrix violation. *)
val run_phases : slots:int -> string list
