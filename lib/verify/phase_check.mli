(** Exec race sanitization driver — the third verification pass.

    Runs representative workloads through every parallel phase in the force
    stack — pair tiles, 1-4 pairs, bonded tiles, per-atom reduction, the GSE
    grid pipeline (spread / FFT sweeps / convolve / phi scale / gather) —
    on a pool created with [Exec.create ~sanitize:true]. In that mode each
    slot declares the index ranges it writes and every barrier asserts
    pairwise disjointness across slots and full coverage of each declared
    resource; any violation raises {!Mdsp_util.Exec.Race} naming the
    resource and the offending slots.

    A clean run is evidence that the static tiling really partitions the
    work: no two slots can race on an output cell, at this slot count, on
    these phases. *)

(** [run_phases ~slots] drives a solvated water box with grid (GSE)
    electrostatics plus a charged bead chain (bonds, angles, dihedrals,
    1-4 pairs, reaction-field) through full force evaluations, plus a batch
    of preempted service jobs through the {!Mdsp_service.Scheduler} slice
    loop, on a sanitizing pool of [slots] domains. Returns the phase labels
    exercised. Raises {!Mdsp_util.Exec.Race} on any write-set violation. *)
val run_phases : slots:int -> string list
