module Fixed = Mdsp_util.Fixed

type t = { value : Interval.t; err : float }

let exact value = { value; err = 0. }
let of_magnitude m = { value = Interval.make (-.(abs_float m)) (abs_float m); err = 0. }

let mag (iv : Interval.t) =
  Float.max (abs_float iv.Interval.lo) (abs_float iv.Interval.hi)

let quantize fmt t = { t with err = t.err +. Fixed.quantization_error fmt }
let add a b = { value = Interval.add a.value b.value; err = a.err +. b.err }
let neg a = { value = Interval.neg a.value; err = a.err }

let mul fmt a b =
  (* |a'b' - ab| <= |a| eb + |b| ea + ea eb, plus the product's own
     round-to-nearest step in [fmt]. *)
  let value = Interval.mul a.value b.value in
  let err =
    (mag a.value *. b.err)
    +. (mag b.value *. a.err)
    +. (a.err *. b.err)
    +. Fixed.quantization_error fmt
  in
  { value; err }

let repeat_add ~count t =
  if count < 0 then invalid_arg "Fixed_interval.repeat_add: negative count";
  let c = float_of_int count in
  {
    value = Interval.mul (Interval.point c) t.value;
    err = c *. t.err;
  }

let worst_magnitude t = mag t.value +. t.err
let fits fmt t = worst_magnitude t <= Fixed.max_value fmt

let margin_bits fmt t =
  let w = worst_magnitude t in
  if w <= 0. then infinity else Float.log2 (Fixed.max_value fmt /. w)

let min_safe_total_bits fmt t =
  let w = worst_magnitude t in
  let rec go tb =
    if tb > 63 then None
    else if w <= Fixed.max_value (Fixed.format ~frac_bits:fmt.Fixed.frac_bits ~total_bits:tb)
    then Some tb
    else go (tb + 1)
  in
  go (max 2 (fmt.Fixed.frac_bits + 1))

let pp ppf t =
  Format.fprintf ppf "%a (+/- %g quantization)" Interval.pp t.value t.err
