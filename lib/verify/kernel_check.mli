(** Abstract interpretation of kernel expressions over intervals — the
    first verification pass.

    The kernel DSL ({!Mdsp_core.Kernel}) happily compiles [Div], [Sqrt],
    [Log] and [Exp] expressions whose symbolic derivatives can blow up at
    runtime. Given box bounds, parameter ranges, a time horizon and aux
    bounds, this pass bounds every subexpression of the energy *and of its
    three symbolic derivatives* (the force path is where hazards introduced
    by {!Mdsp_core.Kernel.diff} live) and reports:

    - each [Div] whose denominator interval contains zero (including
      negative [Pow_int] with a zero-containing base),
    - [Sqrt] over an interval reaching below zero and [Log] over an
      interval reaching [<= 0],
    - [Exp] whose argument can overflow to infinity,
    - constant subexpressions that fold to NaN or infinity,

    each with the offending subexpression pretty-printed. A report with no
    hazards is a proof: no evaluation of the kernel inside the declared
    bounds can divide by zero, leave a domain, or overflow. *)

open Mdsp_core

(** Value bounds for every kernel input. *)
type env = {
  x : Interval.t;
  y : Interval.t;
  z : Interval.t;  (** position relative to the box center *)
  vx : Interval.t;
  vy : Interval.t;
  vz : Interval.t;
  time : Interval.t;  (** simulation time horizon, internal units *)
  param : string -> Interval.t;
  aux : int -> Interval.t;
}

(** [env ?box ?coord ?vel ?time ?aux ?ranges params] bounds kernel inputs:
    coordinates span [+-l/2] of [box] when given, else [coord] (default
    [+-1e3] A); [time] defaults to [[0, 1e9]] internal units; [aux] and
    [vel] default to [+-1e6]. Parameters take their range from [ranges]
    when listed there, else the point interval at their binding in
    [params] (pass a range for any parameter the run will move, e.g. a
    steered-restraint center). *)
val env :
  ?box:Mdsp_util.Pbc.t ->
  ?coord:Interval.t ->
  ?vel:Interval.t ->
  ?time:Interval.t ->
  ?aux:Interval.t ->
  ?ranges:(string * Interval.t) list ->
  (string * float) list ->
  env

type hazard =
  | Div_by_zero of Kernel.expr * Interval.t
      (** denominator (or negative-power base) and its interval *)
  | Sqrt_domain of Kernel.expr * Interval.t
  | Log_domain of Kernel.expr * Interval.t
  | Exp_overflow of Kernel.expr * Interval.t
  | Non_finite_constant of Kernel.expr

val pp_hazard : Format.formatter -> hazard -> unit
val hazard_message : hazard -> string

(** [analyze env e] is the interval bounding [e] over [env], plus every
    hazard encountered (deduplicated by message). *)
val analyze : env -> Kernel.expr -> Interval.t * hazard list

(** Per-expression result: the energy or one gradient. *)
type expr_report = {
  label : string;  (** ["energy"], ["dE/dx"], ... *)
  expr : Kernel.expr;
  range : Interval.t;
  hazards : hazard list;
}

type report = { kernel : string; exprs : expr_report list }

(** Analyze a compiled kernel: its energy expression and all three force
    gradients. *)
val check_kernel : env:env -> Kernel.t -> report

val report_ok : report -> bool
val report_hazards : report -> (string * hazard) list
val pp_report : Format.formatter -> report -> unit
