module It = Mdsp_machine.Interp_table
module Table = Mdsp_core.Table
module Fixed = Mdsp_util.Fixed

type report = {
  table : string;
  n : int;
  source_finite : bool;
  fit : Table.error_report;
  fit_ok : bool;
  r_min_ok : bool;
  quant_ok : bool;
  messages : string list;
}

let default_max_rel_force = 5e-3
let samples = 4096

(* Sample the analytic radial densely over the table domain; a single
   non-finite energy or f_over_r value means the Hermite fit interpolated
   garbage somewhere. *)
let source_finite_on table radial =
  let r_min2 = It.r_min table *. It.r_min table in
  let r_cut2 = It.r_cut table *. It.r_cut table in
  let bad = ref None in
  for i = 0 to samples - 1 do
    if !bad = None then begin
      let r2 =
        r_min2
        +. ((r_cut2 -. r_min2) *. float_of_int i /. float_of_int (samples - 1))
      in
      let e, f = radial r2 in
      if not (Float.is_finite e && Float.is_finite f) then bad := Some r2
    end
  done;
  !bad

(* Re-derive each block's shared power-of-two exponent exactly as
   Interp_table.quantize_block does and prove every mantissa fits the
   table's own coefficient format without saturating: of_float_exn raises
   where of_float would silently clamp. *)
let quantization_failure table =
  let fmt = It.format_of table in
  let bad = ref None in
  Array.iteri
    (fun i block ->
      if !bad = None then begin
        let m =
          Array.fold_left (fun a c -> Float.max a (abs_float c)) 0. block
        in
        if not (Float.is_finite m) then
          bad := Some (i, "non-finite coefficient")
        else if m > 0. then begin
          let scale = ldexp 1. (snd (frexp m)) in
          Array.iter
            (fun c ->
              if !bad = None then
                try ignore (Fixed.of_float_exn fmt (c /. scale))
                with Fixed.Overflow v ->
                  bad :=
                    Some
                      ( i,
                        Printf.sprintf "mantissa %g saturates the %d-bit format"
                          v fmt.Fixed.total_bits ))
            block
        end
      end)
    (It.coeff_blocks table);
  !bad

let check ~name ?min_separation ?(max_rel_force = default_max_rel_force)
    ~table ~radial () =
  let messages = ref [] in
  let fail msg = messages := msg :: !messages in
  let source_finite =
    match source_finite_on table radial with
    | None -> true
    | Some r2 ->
        fail
          (Printf.sprintf
             "source form is non-finite at r = %g A (inside [r_min, r_cut])"
             (sqrt r2));
        false
  in
  let fit = Table.accuracy table radial ~samples () in
  let fit_ok =
    (* A non-finite source makes the error report meaningless; only judge
       the fit when the source itself is sound. *)
    source_finite && Float.is_finite fit.Table.max_rel_force
    && fit.Table.max_rel_force <= max_rel_force
  in
  if source_finite && not fit_ok then
    fail
      (Printf.sprintf
         "fit error: max relative force error %.3g exceeds the %.3g bound"
         fit.Table.max_rel_force max_rel_force);
  let r_min_ok =
    match min_separation with
    | None -> true
    | Some s ->
        let ok = It.r_min table <= s in
        if not ok then
          fail
            (Printf.sprintf
               "r_min = %g A is above the workload's minimum separation %g A: \
                the below-range clamp can fire on a physical pair"
               (It.r_min table) s);
        ok
  in
  let quant_ok =
    match quantization_failure table with
    | None -> true
    | Some (i, why) ->
        fail (Printf.sprintf "quantization: interval %d: %s" i why);
        false
  in
  {
    table = name;
    n = It.n_intervals table;
    source_finite;
    fit;
    fit_ok;
    r_min_ok;
    quant_ok;
    messages = List.rev !messages;
  }

let report_ok r = r.messages = []

let pp_report fmt r =
  Format.fprintf fmt "table %S (%d intervals): %s@," r.table r.n
    (if report_ok r then "sound on its domain" else "UNSOUND");
  Format.fprintf fmt "  max rel force err %.3g, rms %.3g over %d samples@,"
    r.fit.Table.max_rel_force r.fit.Table.rms_force r.fit.Table.samples;
  List.iter (fun m -> Format.fprintf fmt "  problem: %s@," m) r.messages
