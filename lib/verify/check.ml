open Mdsp_core
module K = Kernel

(* Kernel inputs are bounded by a box comfortably larger than any
   registered workload's: a proof over this env covers the shipped runs. *)
let kernel_box = Mdsp_util.Pbc.cubic 24.

(* The double-well workload biases, re-expressed in the kernel DSL with the
   parameter values the workloads use — so the interval pass covers the
   biases even though Workloads implements them as plain closures. *)
let dsl_double_well_x () =
  let open! K in
  create ~name:"double_well_x"
    ~energy:
      ((Param "barrier" * sq (sq (X / Param "half_width") - c 1.))
      + (Param "k_yz" * (sq Y + sq Z)))
    ~particles:[| 0 |]
    ~params:[ ("barrier", 1.0); ("half_width", 4.0); ("k_yz", 1.0) ]

let dsl_double_well_2d () =
  let open! K in
  let xa = X / Param "half_width" in
  let dy = Y - (Param "bow" * (c 1. - sq xa)) in
  create ~name:"double_well_2d"
    ~energy:
      ((Param "barrier" * sq (sq xa - c 1.))
      + (Param "ky" * sq dy)
      + (Param "kz" * sq Z))
    ~particles:[| 0 |]
    ~params:
      [
        ("barrier", 1.0);
        ("half_width", 4.0);
        ("bow", 2.0);
        ("ky", 1.0);
        ("kz", 2.0);
      ]

let builtin_kernels () =
  [
    Restraints.position ~name:"position_restraint" ~particles:[| 0 |] ~k:10.
      ~reference:(Mdsp_util.Vec3.make 1. 2. 3.);
    Restraints.flat_bottom ~name:"flat_bottom" ~particles:[| 0 |] ~k:5.
      ~radius:8.;
    dsl_double_well_x ();
    dsl_double_well_2d ();
  ]

let hazardous_kernel () =
  let open! K in
  create ~name:"seeded_hazard"
    ~energy:((Param "a" / X) + Log X)
    ~particles:[| 0 |]
    ~params:[ ("a", 1.0) ]

(* --- table registry --- *)

type table_entry = {
  t_name : string;
  min_separation : float option;
  max_rel_force : float option;
  table : Mdsp_machine.Interp_table.t;
  radial : Table.radial;
}

(* The four analytic forms the CLI compiles ([mdsp table]), at the CLI's
   default domain. *)
let cli_tables () =
  let mk t_name form =
    let radial = Table.of_form form ~cutoff:9. in
    {
      t_name;
      min_separation = Some 2.5;
      max_rel_force = None;
      table = Table.compile ~r_min:2. ~r_cut:9. ~n:1024 radial;
      radial;
    }
  in
  [
    mk "lj" (Mdsp_ff.Nonbonded.Lennard_jones { epsilon = 0.238; sigma = 3.405 });
    mk "buckingham"
      (Mdsp_ff.Nonbonded.Buckingham { a = 40000.; b = 3.5; c = 300. });
    mk "gaussian"
      (Mdsp_ff.Nonbonded.Gaussian_repulsion { height = 10.; width = 3. });
    mk "erfc" (Mdsp_ff.Nonbonded.Coulomb_erfc { qq = 332.; beta = 0.35 });
  ]

(* The reaction-field shape Table.table_set_of_topology compiles for the
   electrostatic table (unit charge product; the pipeline multiplies by
   q_i q_j). *)
let rf_radial ~epsilon_rf ~cutoff r2 =
  let krf =
    (epsilon_rf -. 1.) /. ((2. *. epsilon_rf) +. 1.) /. (cutoff ** 3.)
  in
  let crf = (1. /. cutoff) +. (krf *. cutoff *. cutoff) in
  let r = sqrt r2 in
  ((1. /. r) +. (krf *. r2) -. crf, (1. /. (r2 *. r)) -. (2. *. krf))

(* The water pipeline's full table set ([mdsp run --tables]): one LJ table
   per type pair plus the shared reaction-field shape, compiled through the
   real table_set_of_topology path. Closest nonbonded approach in rigid
   water is the intermolecular hydrogen bond at ~1.6 A; 1.5 A is the
   margin the r_min check enforces. *)
let water_tables () =
  let sys = Mdsp_workload.Workloads.water_box ~n_side:2 () in
  let topo = sys.Mdsp_workload.Workloads.topo in
  let cutoff = 9. and n = 2048 in
  let epsilon_rf = 78.5 in
  let elec = Mdsp_ff.Pair_interactions.Reaction_field { epsilon_rf } in
  let set = Table.table_set_of_topology topo ~cutoff ~elec ~n () in
  let lj_types = topo.Mdsp_ff.Topology.lj_types in
  let ntypes = Array.length lj_types in
  let ljs = ref [] in
  for i = ntypes - 1 downto 0 do
    for j = ntypes - 1 downto i do
      let form =
        Mdsp_ff.Nonbonded.lorentz_berthelot lj_types.(i) lj_types.(j)
      in
      ljs :=
        {
          t_name = Printf.sprintf "water.lj_%d%d" i j;
          min_separation = Some 1.5;
          max_rel_force = None;
          table = set.Mdsp_machine.Htis.lj.(i).(j);
          radial = Table.of_form form ~cutoff;
        }
        :: !ljs
    done
  done;
  let elec_entry =
    match set.Mdsp_machine.Htis.electrostatic with
    | None -> []
    | Some table ->
        [
          {
            t_name = "water.elec_rf";
            min_separation = Some 1.5;
            max_rel_force = None;
            table;
            radial = rf_radial ~epsilon_rf ~cutoff;
          };
        ]
  in
  !ljs @ elec_entry

let builtin_tables () = cli_tables () @ water_tables ()

(* --- datapath envelopes --- *)

(* Static envelope of the water pipeline, matching water_tables above: the
   same topology, cutoff and table resolution, so the certificate covers
   exactly what [mdsp run --tables] executes. max_pairs_per_atom is the
   trivial static budget (every other atom); the shell capacities inside
   Fixed_check tighten it per radius. *)
let water_envelope () =
  let sys = Mdsp_workload.Workloads.water_box ~n_side:2 () in
  let topo = sys.Mdsp_workload.Workloads.topo in
  let cutoff = 9. and n = 2048 in
  let elec = Mdsp_ff.Pair_interactions.Reaction_field { epsilon_rf = 78.5 } in
  let tables = Table.table_set_of_topology topo ~cutoff ~elec ~n () in
  let n_atoms = Mdsp_ff.Topology.n_atoms topo in
  let max_abs_charge =
    Array.fold_left
      (fun a q -> Float.max a (abs_float q))
      0.
      (Mdsp_ff.Topology.charges topo)
  in
  {
    Fixed_check.env_name = "water";
    n_atoms;
    max_pairs_per_atom = n_atoms - 1;
    (* The box is too small against the cutoff to decompose (the midpoint
       rule needs cutoff <= min_edge / 2), so the per-node budget stays
       the trivial whole-system pair count. *)
    max_pairs_per_node = n_atoms * (n_atoms - 1) / 2;
    min_separation = 1.5;
    max_abs_charge;
    cutoff;
    nodes = (2, 2, 2);
    tables;
    position_extent = 1.0;
  }

(* Macromolecule-scale envelopes: the neighbor budget is not the trivial
   [n_atoms - 1] (useless at 10^4 atoms) but is pinned by the runtime's own
   tiled cell-list build — construct the Verlet list on the generated
   coordinates at the engine's cutoff/skin and take the maximum per-atom
   degree, with headroom (x1.25 + 8) for density fluctuations during
   dynamics. *)
let measured_pair_budget ?(cutoff = 9.) ?(skin = 1.) sys =
  let open Mdsp_workload.Workloads in
  let n = Mdsp_ff.Topology.n_atoms sys.topo in
  let nl =
    Mdsp_space.Neighbor_list.create ~cutoff ~skin sys.box sys.positions
  in
  let deg = Array.make n 0 in
  Mdsp_space.Neighbor_list.iter nl (fun i j ->
      deg.(i) <- deg.(i) + 1;
      deg.(j) <- deg.(j) + 1);
  let max_deg = Array.fold_left max 0 deg in
  max_deg + (max_deg / 4) + 8

(* Per-node pair budget, pinned the same way: run the real midpoint
   decomposition (Mdsp_machine.Decomp) on the generated coordinates at the
   envelope's torus dims and take the busiest node's assigned pair count,
   with headroom (x1.25 + 64) for density fluctuations during dynamics. *)
let measured_node_pair_budget ?(cutoff = 9.) ~nodes sys =
  let open Mdsp_workload.Workloads in
  let d = Mdsp_machine.Decomp.create sys.box ~nodes ~cutoff in
  let stats = Mdsp_machine.Decomp.analyze d sys.positions in
  let m = Mdsp_machine.Decomp.max_pairs_per_node stats in
  m + (m / 4) + 64

let max_abs_charge_of topo =
  Array.fold_left
    (fun a q -> Float.max a (abs_float q))
    0.
    (Mdsp_ff.Topology.charges topo)

(* A large solvated water box (13^3 molecules, 6591 atoms) — the same
   pipeline as [water_envelope] at macromolecule scale, where the measured
   neighbor budget (not the atom count) is what keeps the per-atom
   accumulator provable. *)
let water6k_envelope () =
  let sys = Mdsp_workload.Workloads.water_box ~n_side:13 () in
  let topo = sys.Mdsp_workload.Workloads.topo in
  let cutoff = 9. and n = 2048 in
  let elec = Mdsp_ff.Pair_interactions.Reaction_field { epsilon_rf = 78.5 } in
  let tables = Table.table_set_of_topology topo ~cutoff ~elec ~n () in
  {
    Fixed_check.env_name = "water6k";
    n_atoms = Mdsp_ff.Topology.n_atoms topo;
    max_pairs_per_atom = measured_pair_budget ~cutoff sys;
    max_pairs_per_node = measured_node_pair_budget ~cutoff ~nodes:(4, 4, 4) sys;
    min_separation = 1.5;
    max_abs_charge = max_abs_charge_of topo;
    cutoff;
    nodes = (4, 4, 4);
    tables;
    position_extent = 1.0;
  }

(* A 10^4-atom bead-chain polymer in LJ solvent with reaction-field
   electrostatics. Closest approaches are LJ-core limited (solvent is
   placed >= 3 A from the chain; bead/solvent sigmas are 4.0/3.4 A), so
   2.5 A is the certified floor. *)
let chain10k_envelope () =
  let sys =
    Mdsp_workload.Workloads.bead_chain ~n_beads:256 ~n_total:10_000 ()
  in
  let topo = sys.Mdsp_workload.Workloads.topo in
  let cutoff = 9. and n = 2048 in
  let elec = Mdsp_ff.Pair_interactions.Reaction_field { epsilon_rf = 78.5 } in
  let tables = Table.table_set_of_topology topo ~cutoff ~elec ~n () in
  {
    Fixed_check.env_name = "chain10k";
    n_atoms = Mdsp_ff.Topology.n_atoms topo;
    max_pairs_per_atom = measured_pair_budget ~cutoff sys;
    max_pairs_per_node = measured_node_pair_budget ~cutoff ~nodes:(4, 4, 4) sys;
    min_separation = 2.5;
    max_abs_charge = max_abs_charge_of topo;
    cutoff;
    nodes = (4, 4, 4);
    tables;
    position_extent = 1.0;
  }

let builtin_envelopes () =
  [ water_envelope (); water6k_envelope (); chain10k_envelope () ]

(* A deliberately narrowed force format that the certifier must reject:
   same resolution, not enough integer bits for the per-atom accumulator.
   [mdsp check --seed-narrow] and CI use it to prove the certifier cannot
   be green by accident. *)
let narrow_format =
  { Mdsp_util.Fixed.force_format with Mdsp_util.Fixed.total_bits = 32 }

(* --- the registry run --- *)

type sanitize_result = {
  slots : int;
  phases : string list;
  failure : string option;
}

type summary = {
  kernels : Kernel_check.report list;
  tables : Table_check.report list;
  sanitize : sanitize_result list;
  datapath : Fixed_check.report list;
  phases : Dataflow.report option;
  constraints : Schedule.report list option;
}

let check_one_kernel k =
  let env = Kernel_check.env ~box:kernel_box (K.params k) in
  Kernel_check.check_kernel ~env k

let check_one_table e =
  Table_check.check ~name:e.t_name ?min_separation:e.min_separation
    ?max_rel_force:e.max_rel_force ~table:e.table ~radial:e.radial ()

let sanitize_at slots =
  match Phase_check.run_phases ~slots with
  | phases -> { slots; phases; failure = None }
  | exception Mdsp_util.Exec.Race msg ->
      { slots; phases = []; failure = Some msg }

let run ?(seed_hazard = false) ?(seed_narrow = false) ?(seed_race = false)
    ?(seed_cycle = false) ?(seed_conflict = false) ?(phases = false)
    ?(constraints = false) ?(slots = [ 1; 2; 4 ]) () =
  let ks = builtin_kernels () in
  let ks = if seed_hazard then ks @ [ hazardous_kernel () ] else ks in
  let envs = builtin_envelopes () in
  let datapath = List.map (fun e -> Fixed_check.certify e) envs in
  let datapath =
    if seed_narrow then
      datapath
      @ List.map
          (fun e ->
            let r = Fixed_check.certify ~format:narrow_format e in
            {
              r with
              Fixed_check.workload =
                Printf.sprintf "%s[narrow%d]" r.Fixed_check.workload
                  narrow_format.Mdsp_util.Fixed.total_bits;
            })
          envs
    else datapath
  in
  {
    kernels = List.map check_one_kernel ks;
    tables = List.map check_one_table (builtin_tables ());
    sanitize = List.map sanitize_at slots;
    datapath;
    phases =
      (if phases || seed_race || seed_cycle then
         Some (Dataflow.run ~slots ~seed_race ~seed_cycle ())
       else None);
    constraints =
      (if constraints || seed_conflict then
         Some (Schedule.run ~slots ~seed_conflict ())
       else None);
  }

let ok s =
  List.for_all Kernel_check.report_ok s.kernels
  && List.for_all Table_check.report_ok s.tables
  && List.for_all (fun r -> r.failure = None) s.sanitize
  && List.for_all Fixed_check.proved s.datapath
  && (match s.phases with None -> true | Some r -> Dataflow.ok r)
  && match s.constraints with None -> true | Some rs -> Schedule.ok rs

let pp_summary fmt s =
  Format.fprintf fmt "@[<v>";
  List.iter (Kernel_check.pp_report fmt) s.kernels;
  List.iter (Table_check.pp_report fmt) s.tables;
  List.iter
    (fun r ->
      match r.failure with
      | None ->
          Format.fprintf fmt
            "sanitize (%d slot%s): %d parallel phases race-free@," r.slots
            (if r.slots = 1 then "" else "s")
            (List.length r.phases)
      | Some msg ->
          Format.fprintf fmt "sanitize (%d slots): RACE@,  %s@," r.slots msg)
    s.sanitize;
  List.iter (Fixed_check.pp_verdict fmt) s.datapath;
  Option.iter (fun r -> Dataflow.pp_report fmt r) s.phases;
  Option.iter (List.iter (Schedule.pp_report fmt)) s.constraints;
  Format.fprintf fmt "verify: %s@]@."
    (if ok s then "all checks passed" else "FAILED")

let to_json s =
  let rows =
    (("verify.ok", ok s)
     ::
     List.map
       (fun (r : Kernel_check.report) ->
         ("kernel." ^ r.Kernel_check.kernel, Kernel_check.report_ok r))
       s.kernels)
    @ List.map
        (fun (r : Table_check.report) ->
          ("table." ^ r.Table_check.table, Table_check.report_ok r))
        s.tables
    @ List.map
        (fun r ->
          (Printf.sprintf "sanitize.slots%d" r.slots, r.failure = None))
        s.sanitize
    @ List.concat_map
        (fun (r : Fixed_check.report) ->
          let w = r.Fixed_check.workload in
          ("datapath." ^ w ^ ".ok", Fixed_check.proved r)
          :: List.map
               (fun name ->
                 ( Printf.sprintf "datapath.%s.%s" w name,
                   Fixed_check.format_ok r name ))
               (Fixed_check.format_names r))
        s.datapath
    @ (match s.phases with None -> [] | Some r -> Dataflow.json_rows r)
    @ (match s.constraints with
      | None -> []
      | Some rs -> Schedule.json_rows rs)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{\n";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf "  %S: %d" k (if v then 1 else 0)))
    rows;
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf
