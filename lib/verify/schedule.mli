(** Static constraint-schedule analysis: the interference graph over
    constraint clusters, a deterministic DSATUR coloring into independent
    batches, and a machine-checkable certificate that the batched parallel
    SHAKE/RATTLE sweeps in [Mdsp_md.Constraints] are race-free.

    Constraints sharing an atom fuse into clusters
    ({!Mdsp_ff.Topology.constraint_clusters}); clusters whose atom
    footprints intersect are adjacent ({!Mdsp_ff.Topology.cluster_adjacency});
    a proper coloring of that graph is a schedule in which no two
    same-batch clusters touch a common atom. The certificate re-derives
    the adjacency from the footprints and checks three things — the
    coloring is proper, every constraint is covered exactly once, and the
    per-batch atom footprints stay disjoint across slots under the exact
    static tiling the solver uses — so a planted conflict
    ({!seed_conflict_plan}, [mdsp check --seed-conflict]) cannot pass. *)

type plan = {
  pl_name : string;
  pl_n_constraints : int;
  pl_units : Mdsp_ff.Topology.cluster array;  (** schedulable units *)
  pl_colors : int array;  (** batch of each unit *)
  pl_batches : int array array;  (** batch -> unit ids, ascending *)
}

(** [plan ~name topo] builds the schedule. With [fuse] (default true) units
    are the fused atom-disjoint clusters — the production decomposition,
    whose interference graph is edgeless and colors in one batch. With
    [fuse:false] every constraint is its own unit, keeping the interference
    edges (a rigid water is a triangle needing 3 colors) — the mode the
    qcheck proper-coloring property and the seeded conflict exercise.
    Deterministic either way. *)
val plan : ?fuse:bool -> name:string -> Mdsp_ff.Topology.t -> plan

type certificate = {
  crt_proper : bool;  (** no two adjacent units share a batch *)
  crt_once : bool;  (** batches partition the constraint set exactly *)
  crt_disjoint : bool;
      (** per batch, per slot count, the statically tiled atom footprints
          are pairwise disjoint across slots *)
  crt_slots : int list;  (** slot counts the disjointness was checked at *)
  crt_violations : string list;  (** human-readable failures *)
}

(** [certify p] checks [p] against its own unit footprints (recomputing the
    adjacency — the certificate does not trust the planner). [slots]
    defaults to [[1; 2; 4]], matching the identity tests. *)
val certify : ?slots:int list -> plan -> certificate

val cert_ok : certificate -> bool

(** A deliberately broken plan: two single-constraint units sharing an
    atom, planted in the same batch. {!certify} must fail it. *)
val seed_conflict_plan : unit -> plan

type report = {
  rp_name : string;
  rp_n_constraints : int;
  rp_n_clusters : int;
  rp_n_batches : int;
  rp_max_cluster : int;  (** constraints in the largest cluster *)
  rp_max_cluster_atoms : int;
  rp_cert : certificate;
  rp_env_ok : bool;  (** within the registered envelope *)
  rp_env_notes : string list;
}

val report_ok : report -> bool

(** A registered constraint envelope: the largest cluster and batch count a
    workload's schedule is allowed to have (the ROADMAP maintenance rule —
    a topology change that grows a cluster or adds a batch is a schedule
    regression the gate catches). *)
type envelope = {
  env_name : string;
  env_topo : unit -> Mdsp_ff.Topology.t;
  env_max_cluster_size : int;
  env_n_batches : int;
}

(** The shipped envelopes: water6k (2197 rigid waters — 3-constraint
    clusters, one batch) and chain10k (no constraints — the empty
    schedule). *)
val builtin_envelopes : unit -> envelope list

(** Plan + certify one workload, checking the envelope bounds if given. *)
val report_of_plan : ?slots:int list -> ?env:envelope -> plan -> report

(** [run ()] plans and certifies every builtin envelope;
    [seed_conflict:true] appends the planted-conflict plan, which must
    fail. *)
val run : ?slots:int list -> ?seed_conflict:bool -> unit -> report list

val ok : report list -> bool
val pp_report : Format.formatter -> report -> unit

(** Flat verdict rows for the [mdsp check] JSON: ["constraints.ok"] plus
    per-workload [".ok"/".proper"/".once"/".disjoint"/".envelope"] rows. *)
val json_rows : report list -> (string * bool) list

(** Graphviz DOT rendering of the interference graph, units labeled with
    their batch. Deterministic (index order). *)
val dot : plan -> string
