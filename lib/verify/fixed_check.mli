(** Fixed-point datapath certifier: prove the machine model cannot
    saturate.

    Given a workload's static envelope — atom count, neighbor budget,
    minimum physical separation, charge extrema, and the compiled table
    set — this module propagates {!Fixed_interval} elements through every
    accumulator of the fixed-point force pipeline and certifies, per
    format, that no input within the envelope can drive the datapath to
    its representable maximum:

    - the per-pair force-component conversion and the HTIS per-atom
      accumulator in [force_format];
    - each {!Mdsp_machine.Machine_sim} node partial and every level of
      its fixed-shape reduction tree;
    - the whole-system energy accumulator in the widened
      [Fixed.energy_format];
    - position coordinates and min-image displacements in
      [position_format];
    - every Horner intermediate of per-block coefficient evaluation in
      the table's own mantissa format.

    The accumulator bounds are not the naive [pairs * max |force|]: atoms
    separated by at least [min_separation] obey a sphere-packing capacity
    per radial shell, so only a handful of pairs can sit at the steep
    close-contact end of a table at once. The certifier maximizes the
    accumulated sum over all shell occupancies consistent with those
    capacities (the greedy assignment is exact on this polymatroid),
    which is what makes default formats provable at realistic margins.

    A format verdict is either {e proved safe} (with its margin in bits)
    or {e saturation possible} (with the offending accumulator, the pair
    count realizing the bound, and the minimal [total_bits] that would be
    safe). *)

type envelope = {
  env_name : string;  (** workload label for reports *)
  n_atoms : int;
  max_pairs_per_atom : int;
      (** static neighbor-list budget: pairs any one atom can appear in *)
  max_pairs_per_node : int;
      (** static per-node budget: pairs the midpoint decomposition can
          assign to any one torus node ({!Mdsp_machine.Decomp}); bounds
          the node energy partial before the torus reduction *)
  min_separation : float;
      (** certified minimum inter-atom distance, in angstroms; restricts
          the reachable table domain and caps shell occupancies *)
  max_abs_charge : float;  (** bound on |q_i|, in elementary charges *)
  cutoff : float;  (** interaction cutoff, in angstroms *)
  nodes : int * int * int;  (** machine-sim torus the reduction runs on *)
  tables : Mdsp_machine.Htis.table_set;  (** the compiled tables *)
  position_extent : float;
      (** bound on |coordinate| in box fractions (1.0 for wrapped
          positions) *)
}

type acc_report = {
  acc : string;  (** which accumulator / datapath stage *)
  format_name : string;
      (** "force_format" | "energy_format" | "position_format" |
          "coeff_format" *)
  fmt : Mdsp_util.Fixed.format;
  worst : float;  (** certified worst-case |value| + error bound *)
  limit : float;  (** the format's representable maximum *)
  margin_bits : float;  (** [log2 (limit / worst)]; negative = saturable *)
  pair_bound : int;
      (** number of pair terms realizing the bound (0 when not
          pair-driven) *)
  min_safe_bits : int option;
      (** smallest safe [total_bits] at the same resolution *)
  safe : bool;
  detail : string option;
}

type report = { workload : string; accs : acc_report list }

(** [certify ?format env] runs the abstract interpretation over the whole
    datapath. [?format] is the force accumulation format the runtime
    would use (default {!Mdsp_util.Fixed.force_format}); the energy rows
    use [Fixed.widen format], exactly as {!Mdsp_machine.Htis.formats_used}
    reports — so narrowing [format] here predicts what a narrowed runtime
    run will do. *)
val certify : ?format:Mdsp_util.Fixed.format -> envelope -> report

(** Every accumulator proved safe. *)
val proved : report -> bool

(** Distinct format names, in report order. *)
val format_names : report -> string list

(** All accumulators of the named format proved safe. *)
val format_ok : report -> string -> bool

(** Minimum margin over the named format's accumulators ([infinity] if the
    report has none). *)
val format_margin : report -> string -> float

(** One-line-per-format verdict with margins — what [Check.pp_summary]
    prints. Composes inside an open vertical box. *)
val pp_verdict : Format.formatter -> report -> unit

(** The full certificate: every accumulator row with its worst case, limit,
    margin and (when saturable) minimal safe width — what
    [mdsp check --datapath] prints. Composes inside an open vertical box. *)
val pp_report : Format.formatter -> report -> unit
