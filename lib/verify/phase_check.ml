open Mdsp_util
module E = Mdsp_md.Engine
module FC = Mdsp_md.Force_calc
module W = Mdsp_workload.Workloads

(* Each window is a named unit of recorded work: [setup] builds whatever
   the window drives (engines, queues) while no observer watches, then the
   returned thunk is the body the race sweep executes and the dataflow
   analysis records. The split matters for the happens-before graph:
   engine creation runs a full force evaluation, and recording it in the
   same window as the step that follows would thread a stale
   gather -> kick1 ordering through the per-name graph and manufacture a
   cycle that no single step contains. *)

(* One velocity-Verlet step of a solvated water box on the SoA hot path
   with the GSE grid solver: the integrator sweeps (kick1 / drift / kick2),
   the boxed<->SoA sync, the SoA bonded / 1-4 / pair tiles with their
   per-atom reduction, and every grid-pipeline phase (spread / combine /
   both FFT passes / convolve / phi scale / gather). *)
let step_soa ~exec () =
  let eng =
    W.make_engine ~seed:13 ~exec ~gse_grid:(16, 16, 16) ~soa:true
      (W.water_box ~n_side:3 ())
  in
  fun () -> E.step eng

(* The stock bead chain fully excludes its 1-4 pairs; turning on
   AMBER-style scaling makes the pair14 phase run, so the sweep covers
   it. *)
let scaled14_chain () =
  let sys = W.bead_chain ~n_beads:16 ~n_total:256 () in
  {
    sys with
    W.topo =
      {
        sys.W.topo with
        Mdsp_ff.Topology.scale14_lj = 0.5;
        scale14_coul = 1. /. 1.2;
      };
  }

(* One step of a charged bead chain on the boxed reference path: bond /
   angle / dihedral tiles, 1-4 and reaction-field pair tiles, the boxed
   per-atom reduction, and the integrator sweeps. *)
let step_boxed ~exec () =
  let eng = W.make_engine ~seed:5 ~exec (scaled14_chain ()) in
  fun () -> E.step eng

(* Forced neighbor rebuild followed by a full SoA force evaluation: the
   tiled cell-list bin and pair-list build run first, so the pair phase's
   read of the fresh list appears as an in-window nbuild -> pair edge. *)
let rebuild_soa ~exec () =
  let eng =
    W.make_engine ~seed:5 ~exec ~soa:true
      (W.bead_chain ~n_beads:16 ~n_total:256 ())
  in
  let st = E.state eng in
  let acc = Mdsp_ff.Bonded.make_accum (Mdsp_md.State.n st) in
  let fc = E.force_calc eng in
  fun () ->
    ignore
      (Mdsp_space.Neighbor_list.rebuild (FC.nlist fc)
         st.Mdsp_md.State.positions);
    ignore (FC.compute fc st.Mdsp_md.State.box st.Mdsp_md.State.positions acc)

(* The boxed<->SoA sync pair on its own: [of_state] (phase soa.load, with
   the velocity columns) into [to_state] (phase soa.store). *)
let soa_sync ~exec () =
  let sys = W.bead_chain ~n_beads:8 ~n_total:64 () in
  let st =
    Mdsp_md.State.create ~positions:sys.W.positions
      ~masses:(Mdsp_ff.Topology.masses sys.W.topo)
      ~box:sys.W.box
  in
  fun () ->
    let s = Mdsp_md.Soa.of_state ~exec st in
    ignore (Mdsp_md.Soa.to_state ~exec s)

(* One multi-node decomposition frame of a small water box: the per-atom
   owner scan, the per-atom resident-set scan and the tiled midpoint pair
   assignment; the cell-list build inside declares cell.bin against the
   decomp's own position resource. The cutoff obeys the midpoint rule's
   cutoff <= min_edge / 2 bound for this ~9.3 A box. *)
let decomp_frame ~exec () =
  let sys = W.water_box ~n_side:3 () in
  let d =
    Mdsp_machine.Decomp.create sys.W.box ~nodes:(2, 2, 2) ~cutoff:4.5
  in
  fun () -> ignore (Mdsp_machine.Decomp.analyze ~exec d sys.W.positions)

(* A few tiny jobs through the service scheduler: every slice advances one
   job per slot inside [Exec.map_slots], and each slot declares its
   per-job read and write (resource "service.jobs") — so the sanitizer
   audits scheduler batches exactly like force-pipeline phases. The
   quantum is smaller than the budgets, forcing checkpoint preemption
   mid-sweep. *)
let service_slice ~exec () =
  let dir = Atomic_file.fresh_dir ~prefix:"mdsp_phase_service" () in
  let queue = Mdsp_service.Queue.create ~dir in
  let sched = Mdsp_service.Scheduler.create ~quantum:20 ~exec queue in
  List.iter
    (fun seed ->
      match
        Mdsp_service.Queue.submit queue
          {
            Mdsp_service.Job.label = Printf.sprintf "phase-%d" seed;
            preset = "lj32";
            steps = 50;
            dt_fs = 2.0;
            temperature = 120.;
            seed;
            kind = Mdsp_service.Job.Single;
          }
      with
      | Ok _ -> ()
      | Error m -> failwith ("Phase_check.service_slice: " ^ m))
    [ 1; 2; 3 ];
  fun () ->
    Mdsp_service.Scheduler.drain sched;
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    Sys.rmdir dir

(* The bare collective: [Exec.map_slots] declares the read and write of
   each slot's own result cell. *)
let collective ~exec () = fun () -> ignore (Exec.map_slots exec (fun s -> s))

(* One velocity-Verlet step of a rigid water box with a Berendsen
   thermostat on the boxed path: the batched SHAKE/RATTLE cluster sweeps,
   the constraint velocity fold, and the end-of-step thermostat velocity
   rescale. (step.soa covers the same constraint phases on the SoA path,
   but never rescales — No_thermostat.) *)
let step_thermo ~exec () =
  let cfg =
    {
      E.default_config with
      E.dt_fs = 1.0;
      temperature = 300.;
      thermostat = E.Berendsen { tau_fs = 100. };
    }
  in
  let eng = W.make_engine ~config:cfg ~seed:3 ~exec (W.water_box ~n_side:2 ()) in
  fun () -> E.step eng

(* One BAOAB Langevin step of an unconstrained LJ fluid: the stochastic
   O-step sweep with its per-atom derived streams. Constraint-free on
   purpose — BAOAB runs RATTLE both before and after the O-step, so a
   constrained system would put rattle on both sides of the drift in one
   window and manufacture a by-name cycle no single sweep contains. *)
let step_langevin ~exec () =
  let cfg =
    {
      E.default_config with
      E.dt_fs = 2.0;
      temperature = 120.;
      thermostat = E.Langevin { gamma_fs = 0.02 };
    }
  in
  let eng = W.make_engine ~config:cfg ~seed:17 ~exec (W.lj_fluid ~n:64 ()) in
  fun () -> E.step eng

let windows =
  [
    ("step.soa", step_soa);
    ("step.boxed", step_boxed);
    ("step.thermo", step_thermo);
    ("step.langevin", step_langevin);
    ("rebuild.soa", rebuild_soa);
    ("soa.sync", soa_sync);
    ("decomp.frame", decomp_frame);
    ("service.slice", service_slice);
    ("collective", collective);
  ]

(* Must track the [Exec.declare_write] resource names in the force stack
   and the engine. *)
let phase_labels =
  [
    "cell.bin";
    "nlist.tiles";
    "pair.tiles";
    "pair.pairs14";
    "bonded.bonds";
    "bonded.angles";
    "bonded.dihedrals";
    "bonded.impropers";
    "bonded.reduce";
    "soa.positions";
    "soa.velocities";
    "soa.forces";
    "soa.reduce";
    "gse.spread";
    "gse.grid_combine";
    "gse.convolve";
    "gse.phi_scale";
    "gse.gather";
    "fft.x_lines";
    "fft.y_lines";
    "fft.z_lines";
    "state.positions";
    "state.velocities";
    "state.forces";
    "integrate.prev";
    "cons.pos";
    "cons.vel";
    "cons.prev";
    "decomp.owner";
    "decomp.resident";
    "decomp.pairs";
    "service.jobs";
    "exec.map_slots";
  ]

let make_exec ~slots =
  if slots < 1 then invalid_arg "Phase_check: slots must be >= 1"
  else if slots = 1 then Exec.create ~sanitize:true Exec.Serial
  else Exec.create ~sanitize:true (Exec.Domains { n = slots })

let run_phases ~slots =
  let exec = make_exec ~slots in
  Fun.protect
    ~finally:(fun () -> Exec.shutdown exec)
    (fun () ->
      List.iter
        (fun (_name, window) ->
          let body = window ~exec () in
          body ())
        windows);
  phase_labels
