open Mdsp_util
module E = Mdsp_md.Engine
module FC = Mdsp_md.Force_calc
module W = Mdsp_workload.Workloads

(* One force evaluation of a solvated water box with the GSE grid solver:
   exercises pair tiles, bonded tiles, the per-atom reduction, and every
   grid-pipeline phase (spread / FFT sweeps / convolve / phi scale /
   gather). *)
let gse_box ~exec () =
  let eng = W.make_engine ~seed:13 ~exec ~gse_grid:(16, 16, 16)
      (W.water_box ~n_side:3 ())
  in
  let st = E.state eng in
  let acc = Mdsp_ff.Bonded.make_accum (Mdsp_md.State.n st) in
  ignore
    (FC.compute (E.force_calc eng) st.Mdsp_md.State.box
       st.Mdsp_md.State.positions acc)

(* A charged bead chain: bond / angle / dihedral tiles, 1-4 pair tiles and
   reaction-field pair tiles. *)
let bead_chain ~exec () =
  let eng =
    W.make_engine ~seed:5 ~exec (W.bead_chain ~n_beads:16 ~n_total:256 ())
  in
  let st = E.state eng in
  let acc = Mdsp_ff.Bonded.make_accum (Mdsp_md.State.n st) in
  ignore
    (FC.compute (E.force_calc eng) st.Mdsp_md.State.box
       st.Mdsp_md.State.positions acc)

(* The same bead chain on the flat (SoA) hot path: the SoA pair, 1-4,
   bonded and per-atom-reduction phases declare their own write-sets over
   the flat force columns; a neighbor rebuild is forced so the tiled
   cell-list bin + pair-list build phases run under the sanitizer too. *)
let bead_chain_soa ~exec () =
  let eng =
    W.make_engine ~seed:5 ~exec ~soa:true
      (W.bead_chain ~n_beads:16 ~n_total:256 ())
  in
  let st = E.state eng in
  let acc = Mdsp_ff.Bonded.make_accum (Mdsp_md.State.n st) in
  let fc = E.force_calc eng in
  ignore (FC.compute fc st.Mdsp_md.State.box st.Mdsp_md.State.positions acc);
  ignore
    (Mdsp_space.Neighbor_list.rebuild (FC.nlist fc)
       st.Mdsp_md.State.positions)

(* One multi-node decomposition frame of a small water box: the per-atom
   owner scan, the per-atom resident-set scan and the tiled midpoint pair
   assignment each declare their write-sets; the cell-list build inside
   declares cell.bin. The cutoff obeys the midpoint rule's
   cutoff <= min_edge / 2 bound for this ~9.3 A box. *)
let decomp_frame ~exec () =
  let sys = W.water_box ~n_side:3 () in
  let d =
    Mdsp_machine.Decomp.create sys.W.box ~nodes:(2, 2, 2) ~cutoff:4.5
  in
  ignore (Mdsp_machine.Decomp.analyze ~exec d sys.W.positions)

(* A few tiny jobs through the service scheduler: every slice advances one
   job per slot inside [Exec.map_slots], and each slot declares its
   per-job write-set (resource "service.jobs") — so the sanitizer audits
   scheduler batches exactly like force-pipeline phases. The quantum is
   smaller than the budgets, forcing checkpoint preemption mid-sweep. *)
let service_slice ~exec () =
  let dir = Atomic_file.fresh_dir ~prefix:"mdsp_phase_service" () in
  let queue = Mdsp_service.Queue.create ~dir in
  let sched = Mdsp_service.Scheduler.create ~quantum:20 ~exec queue in
  List.iter
    (fun seed ->
      match
        Mdsp_service.Queue.submit queue
          {
            Mdsp_service.Job.label = Printf.sprintf "phase-%d" seed;
            preset = "lj32";
            steps = 50;
            dt_fs = 2.0;
            temperature = 120.;
            seed;
            kind = Mdsp_service.Job.Single;
          }
      with
      | Ok _ -> ()
      | Error m -> failwith ("Phase_check.service_slice: " ^ m))
    [ 1; 2; 3 ];
  Mdsp_service.Scheduler.drain sched;
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

(* Must track the [Exec.declare_write] resource names in the force stack. *)
let phase_labels =
  [
    "cell.bin";
    "nlist.tiles";
    "pair.tiles";
    "pair.pairs14";
    "bonded.bonds";
    "bonded.angles";
    "bonded.dihedrals";
    "bonded.impropers";
    "bonded.reduce";
    "gse.spread";
    "gse.grid_combine";
    "gse.convolve";
    "gse.phi_scale";
    "gse.gather";
    "fft.x_lines";
    "fft.y_lines";
    "fft.z_lines";
    "decomp.owner";
    "decomp.resident";
    "decomp.pairs";
    "service.jobs";
  ]

let run_phases ~slots =
  if slots < 1 then invalid_arg "Phase_check.run_phases: slots must be >= 1";
  let exec =
    if slots = 1 then Exec.create ~sanitize:true Exec.Serial
    else Exec.create ~sanitize:true (Exec.Domains { n = slots })
  in
  Fun.protect
    ~finally:(fun () -> Exec.shutdown exec)
    (fun () ->
      gse_box ~exec ();
      bead_chain ~exec ();
      bead_chain_soa ~exec ();
      decomp_frame ~exec ();
      service_slice ~exec ());
  phase_labels
