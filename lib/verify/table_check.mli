(** Table-domain proofs — the second verification pass.

    A compiled {!Mdsp_machine.Interp_table} only behaves like the source
    functional form if four properties hold over its whole domain
    [[r_min^2, r_cut^2]]; this pass checks each and reports them together:

    - {b finiteness}: the source radial is finite everywhere the pipeline
      can sample it (a pole inside the domain makes the Hermite fit, and
      then the forces, garbage);
    - {b fit error}: the maximum relative force error of the fit stays
      below a bound (defaults to the accuracy class the E1/E2 experiments
      establish for production widths);
    - {b r_min margin}: [r_min] sits at or below the workload's minimum
      physical separation, so the hardware's below-range clamp can never
      fire on a physical pair;
    - {b quantization headroom}: every stored coefficient block survives
      the fixed-point round trip without saturating
      ({!Mdsp_machine.Interp_table.coeff_format}). *)

type report = {
  table : string;
  n : int;  (** interval count *)
  source_finite : bool;
  fit : Mdsp_core.Table.error_report;
  fit_ok : bool;
  r_min_ok : bool;
  quant_ok : bool;
  messages : string list;  (** one per failed property *)
}

(** [check ~name ?min_separation ?max_rel_force ~table ~radial ()] runs all
    four properties. [min_separation] (A) enables the r_min margin check;
    [max_rel_force] (default [5e-3]) bounds the fit's maximum relative
    force error. *)
val check :
  name:string ->
  ?min_separation:float ->
  ?max_rel_force:float ->
  table:Mdsp_machine.Interp_table.t ->
  radial:Mdsp_core.Table.radial ->
  unit ->
  report

val report_ok : report -> bool
val pp_report : Format.formatter -> report -> unit
