(** Interval arithmetic over the extended reals — the abstract domain the
    kernel analyzer interprets {!Mdsp_core.Kernel.expr} in.

    An interval [{ lo; hi }] with [lo <= hi] over-approximates the set of
    values a subexpression can take; bounds may be infinite. Every
    operation is *sound*: the result interval contains every value the
    concrete operation can produce on inputs drawn from the operand
    intervals (NaN-producing inputs widen the result to {!top} rather than
    poisoning it). Partial operations ([div] by an interval containing
    zero, [sqrt]/[log] reaching outside their domain) return a sound
    over-approximation of the *defined* part; flagging the domain violation
    itself is the analyzer's job ({!Kernel_check}). *)

type t = private { lo : float; hi : float }

(** [make lo hi] normalizes: swaps inverted bounds, maps NaN bounds to
    {!top}. *)
val make : float -> float -> t

(** The degenerate interval [v, v]. *)
val point : float -> t

(** The whole extended real line. *)
val top : t

val contains : t -> float -> bool
val contains_zero : t -> bool

(** Both bounds finite. *)
val is_finite : t -> bool

(** Smallest interval containing both arguments. *)
val hull : t -> t -> t

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t

(** [div a b] is {!top} when [b] contains zero (the analyzer reports the
    hazard); otherwise the exact interval quotient. *)
val div : t -> t -> t

(** Tight integer power: even exponents fold the sign ([pow_int [-2,1] 2 =
    [0,4]]), odd exponents are monotone, negative exponents go through
    {!div}. *)
val pow_int : t -> int -> t

(** Square root of the non-negative part of the interval ([0,0] if the
    interval is entirely negative). *)
val sqrt_ : t -> t

val exp_ : t -> t

(** Logarithm of the positive part; {!top} if nothing is positive. *)
val log_ : t -> t

val cos_ : t -> t
val sin_ : t -> t
val min_ : t -> t -> t
val max_ : t -> t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
