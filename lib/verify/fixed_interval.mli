(** Abstract domain for fixed-point datapaths: a value interval paired
    with an accumulated quantization-error bound.

    The machine converts each real-arithmetic term to fixed point
    (round-to-nearest, half-a-resolution error) and then accumulates
    {e exactly}; an element [{ value; err }] over-approximates both the
    real value a signal can take ([value], in physical units) and how far
    the fixed-point representation can have drifted from it ([err]).
    Saturation analysis asks whether [|value| + err] can reach the
    format's representable maximum — the error bound matters because a
    datapath at the edge of its range can be pushed over it by rounding
    alone.

    Soundness mirrors {!Interval}: every operation's result contains every
    (fixed-point value, error) pair reachable from operands drawn from the
    operand elements. *)

type t = {
  value : Interval.t;  (** bounds of the ideal real value, physical units *)
  err : float;  (** bound on |fixed-point value - ideal value| *)
}

(** An exactly-known real quantity (no fixed-point error yet). *)
val exact : Interval.t -> t

(** [of_magnitude m] is the symmetric element [[-|m|, |m|]] with no error. *)
val of_magnitude : float -> t

(** One round-to-nearest conversion into [fmt]: adds half a resolution to
    the error bound. Fixed-point {e addition} is exact, so conversion and
    multiplication are the only error sources. *)
val quantize : Mdsp_util.Fixed.format -> t -> t

(** Exact fixed-point addition: values add, error bounds add. *)
val add : t -> t -> t

val neg : t -> t

(** Fixed-point product rounded into [fmt]: propagates both operands'
    errors through the product and adds the rounding step. *)
val mul : Mdsp_util.Fixed.format -> t -> t -> t

(** [repeat_add ~count t] bounds an accumulator fed [count] terms each
    drawn from [t] — the per-atom force and whole-system energy
    accumulators. *)
val repeat_add : count:int -> t -> t

(** [mag value + err]: the magnitude the fixed-point signal can reach. *)
val worst_magnitude : t -> float

(** True when the worst-case magnitude is representable in [fmt] — the
    accumulator provably cannot saturate. *)
val fits : Mdsp_util.Fixed.format -> t -> bool

(** [log2 (max_value fmt / worst_magnitude t)]: headroom in bits; negative
    when saturation is possible, infinite for an identically-zero signal. *)
val margin_bits : Mdsp_util.Fixed.format -> t -> float

(** Smallest [total_bits] (same fractional bits) that would make the
    element fit, or [None] if even 63 bits cannot hold it. *)
val min_safe_total_bits : Mdsp_util.Fixed.format -> t -> int option

val pp : Format.formatter -> t -> unit
