type t = { lo : float; hi : float }

let top = { lo = neg_infinity; hi = infinity }

let make lo hi =
  if Float.is_nan lo || Float.is_nan hi then top
  else if lo <= hi then { lo; hi }
  else { lo = hi; hi = lo }

let point v = make v v
let contains t v = t.lo <= v && v <= t.hi
let contains_zero t = contains t 0.
let is_finite t = Float.is_finite t.lo && Float.is_finite t.hi
let hull a b = make (Float.min a.lo b.lo) (Float.max a.hi b.hi)

let add a b = make (a.lo +. b.lo) (a.hi +. b.hi)
let neg a = make (-.a.hi) (-.a.lo)
let sub a b = add a (neg b)

(* Bound product with the interval convention 0 * inf = 0: a zero bound is
   an attained finite value, not a limit, so it annihilates. *)
let bmul x y = if x = 0. || y = 0. then 0. else x *. y

let mul a b =
  let p1 = bmul a.lo b.lo and p2 = bmul a.lo b.hi in
  let p3 = bmul a.hi b.lo and p4 = bmul a.hi b.hi in
  make
    (Float.min (Float.min p1 p2) (Float.min p3 p4))
    (Float.max (Float.max p1 p2) (Float.max p3 p4))

let inv b =
  if contains_zero b then top else make (1. /. b.hi) (1. /. b.lo)

let div a b = if contains_zero b then top else mul a (inv b)

let rec pow_int a n =
  if n = 0 then point 1.
  else if n < 0 then div (point 1.) (pow_int a (-n))
  else begin
    let pl = a.lo ** float_of_int n and ph = a.hi ** float_of_int n in
    if n land 1 = 1 || a.lo >= 0. then make pl ph
    else if a.hi <= 0. then make ph pl
    else make 0. (Float.max pl ph)
  end

let sqrt_ a =
  let lo = if a.lo <= 0. then 0. else sqrt a.lo in
  let hi = if a.hi <= 0. then 0. else sqrt a.hi in
  make lo hi

let exp_ a = make (exp a.lo) (exp a.hi)

let log_ a =
  if a.hi <= 0. then top
  else
    make (if a.lo <= 0. then neg_infinity else log a.lo) (log a.hi)

(* cos over [lo, hi]: endpoint values, widened to +-1 wherever a multiple
   of pi falls inside the interval. Unbounded or >= 2pi wide intervals get
   the full range. *)
let cos_ a =
  let two_pi = 2. *. Float.pi in
  if (not (is_finite a)) || a.hi -. a.lo >= two_pi then make (-1.) 1.
  else begin
    let cl = cos a.lo and ch = cos a.hi in
    let lo = ref (Float.min cl ch) and hi = ref (Float.max cl ch) in
    let k = ref (Float.ceil (a.lo /. Float.pi)) in
    while !k <= Float.floor (a.hi /. Float.pi) do
      if Float.rem !k 2. = 0. then hi := 1. else lo := -1.;
      k := !k +. 1.
    done;
    make !lo !hi
  end

let sin_ a = cos_ (sub a (point (Float.pi /. 2.)))

let min_ a b = make (Float.min a.lo b.lo) (Float.min a.hi b.hi)
let max_ a b = make (Float.max a.lo b.lo) (Float.max a.hi b.hi)

let pp fmt t = Format.fprintf fmt "[%g, %g]" t.lo t.hi
let to_string t = Format.asprintf "%a" pp t
