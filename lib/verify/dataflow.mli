(** Static phase-dataflow analysis — the happens-before graph over the
    stack's parallel phases.

    Every parallel phase declares its write-set and read-set to the
    {!Mdsp_util.Exec} sanitizer; this module records those footprints
    through the sanitizer's barrier observer while driving the
    {!Phase_check} workload windows, and derives the static happens-before
    DAG: phase B depends on phase A iff B reads a resource A last wrote
    (within a window; windows isolate independent units of work such as one
    engine step, so repeated evaluations cannot alias into by-name cycles).
    Phase-local resource labels that alias the same memory — the per-atom
    reductions, the in-place grid pipeline, the pair list — are mapped onto
    canonical resource names first.

    The certificate is fourfold: the observed phase set equals
    {!expected_phases} exactly — nothing missing, nothing unregistered —
    with both a read-set and a write-set per phase (coverage), the graph is
    acyclic, its shape (phase names, resource-name sets, edges — footprint
    extents excluded, they legitimately vary with slot count) is identical
    at every slot count, and no barrier raced. *)

(** Every named parallel phase the stack ships; the analysis fails if one
    never appears. Closed-world: adding a parallel phase to the code base
    means adding its name here. *)
val expected_phases : string list

(** Map a declared resource label to its canonical resource (e.g.
    ["bonded.reduce"] and ["gse.gather"] both accumulate into
    ["state.forces"]; the FFT line sweeps, combine, convolve and phi-scale
    all transform ["gse.grid"] in place). Identity for labels that already
    name their memory. *)
val canon : string -> string

(** One phase's accumulated footprint: per canonical resource, the hull of
    all declared index ranges across barriers and slots. *)
type phase = {
  ph_name : string;
  ph_reads : (string * (int * int)) list;
  ph_writes : (string * (int * int)) list;
  ph_barriers : int;  (** barriers observed under this name *)
}

(** The derived graph at one slot count. [g_edges] are
    [(writer, reader, resource)] triples, sorted; phases sorted by name —
    both deterministic for a given slot count. [g_unlabeled] counts
    barriers that declared accesses without a phase label (must be 0). *)
type graph = {
  g_slots : int;
  g_phases : phase list;
  g_edges : (string * string * string) list;
  g_unlabeled : int;
}

type report = {
  df_graphs : graph list;  (** one per slot count, in sweep order *)
  df_missing : string list;  (** expected phases never observed *)
  df_unexpected : string list;
      (** observed phases not registered in {!expected_phases} *)
  df_no_reads : string list;  (** phases observed without a read-set *)
  df_no_writes : string list;  (** phases observed without a write-set *)
  df_acyclic : bool;
  df_invariant : bool;  (** same shape at every slot count *)
  df_failure : string option;  (** the {!Mdsp_util.Exec.Race}, if any *)
  df_seeded : bool;  (** a seeded race or cycle window was included *)
}

(** [run ?slots ?seed_race ?seed_cycle ()] drives every
    {!Phase_check.windows} workload window on a sanitizing executor at each
    slot count in [slots] (default [[1; 2; 4]]), recording footprints and
    edges. [seed_race] (default false) appends a deliberately unsound
    window — tiled writes with a whole-array read on every slot — which
    must trip the conflict matrix at two or more slots; the resulting
    failure is captured in [df_failure] and makes the report fail.
    [seed_cycle] (default false) appends a race-free but deliberately
    cyclic phase pair (each reads what the other last wrote), which must
    fail the acyclicity branch — [df_acyclic] goes false at every slot
    count, including 1. *)
val run :
  ?slots:int list -> ?seed_race:bool -> ?seed_cycle:bool -> unit -> report

(** Kahn's-algorithm acyclicity check on one graph. *)
val acyclic : graph -> bool

val ok : report -> bool
val pp_report : Format.formatter -> report -> unit

(** Graphviz DOT rendering of one graph. Output is deterministic: nodes
    and edges are sorted, so two runs at any slot counts with the same
    phase structure render byte-identical files. *)
val dot : graph -> string

(** Flat verdict rows for the [mdsp check] JSON: ["phases.ok"],
    ["phases.acyclic"], ["phases.invariant"], ["phases.coverage"] and one
    ["phases.slots<n>"] per graph. *)
val json_rows : report -> (string * bool) list
