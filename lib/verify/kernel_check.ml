open Mdsp_core
module I = Interval

type env = {
  x : I.t;
  y : I.t;
  z : I.t;
  vx : I.t;
  vy : I.t;
  vz : I.t;
  time : I.t;
  param : string -> I.t;
  aux : int -> I.t;
}

let env ?box ?(coord = I.make (-1e3) 1e3) ?(vel = I.make (-1e6) 1e6)
    ?(time = I.make 0. 1e9) ?(aux = I.make (-1e6) 1e6) ?(ranges = [])
    params =
  let x, y, z =
    match box with
    | Some b ->
        let open Mdsp_util.Pbc in
        (* Kernel coordinates are minimum-image displacements from the box
           center, so each axis spans half a box edge either way. *)
        ( I.make (-.b.lx /. 2.) (b.lx /. 2.),
          I.make (-.b.ly /. 2.) (b.ly /. 2.),
          I.make (-.b.lz /. 2.) (b.lz /. 2.) )
    | None -> (coord, coord, coord)
  in
  let param name =
    match List.assoc_opt name ranges with
    | Some r -> r
    | None -> (
        match List.assoc_opt name params with
        | Some v -> I.point v
        | None -> I.top)
  in
  { x; y; z; vx = vel; vy = vel; vz = vel; time; param; aux = (fun _ -> aux) }

type hazard =
  | Div_by_zero of Kernel.expr * I.t
  | Sqrt_domain of Kernel.expr * I.t
  | Log_domain of Kernel.expr * I.t
  | Exp_overflow of Kernel.expr * I.t
  | Non_finite_constant of Kernel.expr

let pp_hazard fmt = function
  | Div_by_zero (e, iv) ->
      Format.fprintf fmt "division by zero: denominator %a ranges over %a"
        Kernel.pp_expr e I.pp iv
  | Sqrt_domain (e, iv) ->
      Format.fprintf fmt "sqrt of a negative value: %a ranges over %a"
        Kernel.pp_expr e I.pp iv
  | Log_domain (e, iv) ->
      Format.fprintf fmt "log of a non-positive value: %a ranges over %a"
        Kernel.pp_expr e I.pp iv
  | Exp_overflow (e, iv) ->
      Format.fprintf fmt "exp overflow: %a ranges over %a" Kernel.pp_expr e
        I.pp iv
  | Non_finite_constant e ->
      Format.fprintf fmt "constant subexpression folds to %a" Kernel.pp_expr
        e

let hazard_message h = Format.asprintf "%a" pp_hazard h

(* exp arguments above this overflow a double to infinity. *)
let exp_max_arg = log Float.max_float

let analyze env e =
  let hazards = ref [] in
  let flag h =
    let msg = hazard_message h in
    if not (List.exists (fun h' -> hazard_message h' = msg) !hazards) then
      hazards := h :: !hazards
  in
  let rec go (e : Kernel.expr) =
    match e with
    | Const v ->
        if not (Float.is_finite v) then flag (Non_finite_constant e);
        I.point v
    | Param p -> env.param p
    | Time -> env.time
    | X -> env.x
    | Y -> env.y
    | Z -> env.z
    | Vx -> env.vx
    | Vy -> env.vy
    | Vz -> env.vz
    | Aux i -> env.aux i
    | Add (a, b) -> I.add (go a) (go b)
    | Sub (a, b) -> I.sub (go a) (go b)
    | Mul (a, b) when a = b ->
        (* x * x is a square: the naive interval product of [-l, h] with
           itself dips negative (the classic dependency problem), which
           would flag sqrt((e - r0)^2 + eps) guards as unsound. *)
        I.pow_int (go a) 2
    | Mul (a, b) -> I.mul (go a) (go b)
    | Div (a, b) ->
        let ia = go a and ib = go b in
        if I.contains_zero ib then flag (Div_by_zero (b, ib));
        I.div ia ib
    | Neg a -> I.neg (go a)
    | Pow_int (a, n) ->
        let ia = go a in
        if n < 0 && I.contains_zero ia then flag (Div_by_zero (a, ia));
        I.pow_int ia n
    | Sqrt a ->
        let ia = go a in
        if ia.I.lo < 0. then flag (Sqrt_domain (a, ia));
        I.sqrt_ ia
    | Exp a ->
        let ia = go a in
        if ia.I.hi > exp_max_arg then flag (Exp_overflow (a, ia));
        I.exp_ ia
    | Log a ->
        let ia = go a in
        if ia.I.lo <= 0. then flag (Log_domain (a, ia));
        I.log_ ia
    | Cos a -> I.cos_ (go a)
    | Sin a -> I.sin_ (go a)
    | Min (a, b) -> I.min_ (go a) (go b)
    | Max (a, b) -> I.max_ (go a) (go b)
  in
  let range = go e in
  (range, List.rev !hazards)

type expr_report = {
  label : string;
  expr : Kernel.expr;
  range : I.t;
  hazards : hazard list;
}

type report = { kernel : string; exprs : expr_report list }

let check_expr env label expr =
  let range, hazards = analyze env expr in
  { label; expr; range; hazards }

let check_kernel ~env:e k =
  let dx, dy, dz = Kernel.force_exprs k in
  {
    kernel = Kernel.name k;
    exprs =
      [
        check_expr e "energy" (Kernel.energy_expr k);
        check_expr e "dE/dx" dx;
        check_expr e "dE/dy" dy;
        check_expr e "dE/dz" dz;
      ];
  }

let report_ok r = List.for_all (fun er -> er.hazards = []) r.exprs

let report_hazards r =
  List.concat_map (fun er -> List.map (fun h -> (er.label, h)) er.hazards)
    r.exprs

let pp_report fmt r =
  Format.fprintf fmt "kernel %S: %s@," r.kernel
    (if report_ok r then "safe over the declared bounds" else "HAZARDOUS");
  List.iter
    (fun er ->
      Format.fprintf fmt "  %-6s in %a" er.label I.pp er.range;
      List.iter
        (fun h -> Format.fprintf fmt "@,    hazard: %a" pp_hazard h)
        er.hazards;
      Format.fprintf fmt "@,")
    r.exprs
