(** Gaussian-split Ewald (GSE)–style grid electrostatics.

    This is the machine-friendly long-range solver — the stage the
    special-purpose machine backs with dedicated hardware. Charges are
    spread onto a regular grid with Gaussians of width [sigma_s], the
    Poisson equation is solved in k-space by FFT with a modified influence
    function, and forces are interpolated back with the gradient of the
    same Gaussians. Combined with the real-space [erfc] pair term this
    reproduces classic Ewald up to controllable grid/spreading error —
    which is what the E3 experiment quantifies. The reciprocal scalar
    virial is accumulated (the total k-space kernel equals Ewald's, so the
    same per-mode formula applies), enabling constant-pressure runs with
    grid electrostatics.

    {2 Units}

    Positions and box lengths are in Angstrom, charges in elementary
    charges, [beta] in 1/Angstrom; energies returned in kcal/mol and forces
    in kcal/mol/Angstrom (the Coulomb constant is applied internally via
    {!Mdsp_util.Units.coulomb}).

    {2 Execution and determinism}

    Every stage of {!reciprocal} can run on an execution backend
    ({!Mdsp_util.Exec.t}): charge spreading uses one private scratch grid
    per pool slot combined by a fixed-shape tree reduction, the FFT sweeps
    tile their independent 1-D lines over the pool, the k-space convolution
    tiles grid points with tree-combined energy/virial partials, and force
    gathering tiles particles (disjoint per-particle writes, no reduction).
    Consequences:

    - for a fixed slot count, parallel runs are {e bitwise reproducible}
      (static tiles, fixed reduction shapes);
    - serial and parallel results differ only by floating-point summation
      order in the spread and convolve reductions — relative differences at
      rounding level (the test suite enforces <= 1e-10);
    - the serial path ([Exec.serial]) is bitwise identical to the
      historical serial implementation.

    Grid dimensions must be powers of two. *)

open Mdsp_util

type t

(** Wall-clock seconds spent in each grid-pipeline stage of one or more
    {!reciprocal} calls; both FFT passes charge [fft_s], the Ghat scaling,
    energy/virial accumulation and potential-grid rescale charge
    [convolve_s]. Fields are {e incremented} by each call, so a zeroed
    record passed to a single call reads back that call's times. *)
type phases = {
  mutable spread_s : float;  (** charge spreading onto the grid *)
  mutable fft_s : float;  (** forward + inverse 3D FFT *)
  mutable convolve_s : float;  (** k-space scale-by-Ghat + energy/virial *)
  mutable gather_s : float;  (** per-particle force interpolation *)
}

(** A fresh all-zero {!phases} record. *)
val zero_phases : unit -> phases

(** Sum of the four phase buckets. *)
val phases_total : phases -> float

(** [create ~beta ~grid:(nx, ny, nz) ?sigma_s ?support box]. [sigma_s]
    defaults to [1 / (2 sqrt 2 beta)] (must be <= 1/(2 beta)); [support] is
    the spreading truncation radius in units of [sigma_s], default 4.
    Precomputes the influence function; cost O(nx ny nz). *)
val create :
  beta:float -> grid:int * int * int -> ?sigma_s:float -> ?support:float ->
  Pbc.t -> t

(** [reciprocal ?exec ?phases t charges positions acc] adds
    reciprocal-space forces and the reciprocal virial into [acc] and
    returns the reciprocal energy in kcal/mol (self/excluded corrections
    not included — use {!Ewald.self_energy} and
    {!Ewald.excluded_correction}, which depend only on [beta]).

    [exec] (default {!Mdsp_util.Exec.serial}) runs every stage — spread,
    FFT, convolve, gather — on the pool as described above; [phases]
    accumulates per-stage wall time when provided. Per-slot scratch grids
    are cached inside [t] and reused across calls. *)
val reciprocal :
  ?exec:Exec.t -> ?phases:phases ->
  t -> float array -> Vec3.t array -> Mdsp_ff.Bonded.accum -> float

(** The Ewald splitting parameter (1/Angstrom) this solver was built for. *)
val beta : t -> float

(** Grid dimensions [(nx, ny, nz)]. *)
val grid : t -> int * int * int

(** Number of grid points each charge spreads to (cost model input). *)
val support_points : t -> int
