open Mdsp_util

type t = {
  beta_ : float;
  sigma : float;
  support : float;
  nx : int;
  ny : int;
  nz : int;
  box : Pbc.t;
  ghat : float array;  (** influence function, indexed like the grid *)
  k2s : float array;  (** squared wavevector per grid point *)
  (* Per-slot scratch grids for domain-parallel charge spreading, sized
     lazily to the executor actually used and reused across steps. *)
  mutable scratch : float array array;
}

type phases = {
  mutable spread_s : float;
  mutable fft_s : float;
  mutable convolve_s : float;
  mutable gather_s : float;
}

let zero_phases () =
  { spread_s = 0.; fft_s = 0.; convolve_s = 0.; gather_s = 0. }

let phases_total p = p.spread_s +. p.fft_s +. p.convolve_s +. p.gather_s

let create ~beta ~grid:(nx, ny, nz) ?sigma_s ?(support = 4.) box =
  if beta <= 0. then invalid_arg "Gse.create: beta must be positive";
  if not (Fft.is_pow2 nx && Fft.is_pow2 ny && Fft.is_pow2 nz) then
    invalid_arg "Gse.create: grid dims must be powers of two";
  let sigma =
    match sigma_s with
    | Some s -> s
    | None -> 1. /. (2. *. sqrt 2. *. beta)
  in
  if sigma > 1. /. (2. *. beta) +. 1e-12 then
    invalid_arg "Gse.create: sigma_s must be <= 1/(2 beta)";
  let open Pbc in
  let two_pi = 2. *. Float.pi in
  let freq n l m =
    let m' = if m <= n / 2 then m else m - n in
    two_pi *. float_of_int m' /. l
  in
  (* Remaining k-space Gaussian after two real-space spreads of width
     sigma: exp(-k^2 (1/(4 beta^2) - sigma^2)). The guard above keeps
     [rem >= -1e-12]: for the default sigma = 1/(2 sqrt 2 beta) it is
     exactly 1/(8 beta^2) > 0, and it reaches 0 only at the admissible
     extreme sigma = 1/(2 beta). Floating-point rounding near that extreme
     (the 1e-12 slack in the guard) can leave [rem] a hair negative, which
     merely makes exp(-k^2 rem) marginally exceed 1 for large k — a bounded,
     harmless perturbation of the influence function, not a blow-up, since
     |rem| k^2 stays tiny for every representable grid wavevector. *)
  let rem = (1. /. (4. *. beta *. beta)) -. (sigma *. sigma) in
  let ghat = Array.make (nx * ny * nz) 0. in
  let k2s = Array.make (nx * ny * nz) 0. in
  for mz = 0 to nz - 1 do
    for my = 0 to ny - 1 do
      for mx = 0 to nx - 1 do
        let kx = freq nx box.lx mx in
        let ky = freq ny box.ly my in
        let kz = freq nz box.lz mz in
        let k2 = (kx *. kx) +. (ky *. ky) +. (kz *. kz) in
        let idx = mx + (nx * (my + (ny * mz))) in
        k2s.(idx) <- k2;
        if k2 > 0. then
          ghat.(idx) <- 4. *. Float.pi *. exp (-.k2 *. rem) /. k2
      done
    done
  done;
  { beta_ = beta; sigma; support; nx; ny; nz; box; ghat; k2s; scratch = [||] }

let beta t = t.beta_
let grid t = (t.nx, t.ny, t.nz)

let support_cells t =
  let open Pbc in
  let dx = t.box.lx /. float_of_int t.nx in
  let dy = t.box.ly /. float_of_int t.ny in
  let dz = t.box.lz /. float_of_int t.nz in
  let r = t.support *. t.sigma in
  ( int_of_float (ceil (r /. dx)),
    int_of_float (ceil (r /. dy)),
    int_of_float (ceil (r /. dz)) )

let support_points t =
  let sx, sy, sz = support_cells t in
  ((2 * sx) + 1) * ((2 * sy) + 1) * ((2 * sz) + 1)

(* Iterate over the grid points within the spreading support of position p,
   calling [f idx gauss dx dy dz]. The position is first wrapped into the
   primary box ([Pbc.wrap]) to find its home cell (cx, cy, cz); the stencil
   then walks unwrapped neighbor coordinates cx+ox, ... whose *indices* are
   reduced mod n into the periodic grid while the *displacement* is taken
   against the unwrapped coordinate float_of_int (cx+ox) * dx. As long as
   the support radius is below half the box (enforced in practice by any
   sensible grid), that unwrapped neighbor is the nearest periodic image of
   grid point (gx, gy, gz), so no additional minimum-image step is needed —
   and the same weight is produced for a particle and its wrapped copy,
   which is what makes spreading translation-consistent under PBC. *)
let iter_support t (p : Vec3.t) f =
  let open Pbc in
  let dx = t.box.lx /. float_of_int t.nx in
  let dy = t.box.ly /. float_of_int t.ny in
  let dz = t.box.lz /. float_of_int t.nz in
  let sx, sy, sz = support_cells t in
  let w = Pbc.wrap t.box p in
  let cx = int_of_float (w.Vec3.x /. dx) in
  let cy = int_of_float (w.Vec3.y /. dy) in
  let cz = int_of_float (w.Vec3.z /. dz) in
  let norm = (2. *. Float.pi *. t.sigma *. t.sigma) ** (-1.5) in
  let inv_2s2 = 1. /. (2. *. t.sigma *. t.sigma) in
  let r_max2 = (t.support *. t.sigma) ** 2. in
  for oz = -sz to sz do
    for oy = -sy to sy do
      for ox = -sx to sx do
        let gx = ((cx + ox) mod t.nx + t.nx) mod t.nx in
        let gy = ((cy + oy) mod t.ny + t.ny) mod t.ny in
        let gz = ((cz + oz) mod t.nz + t.nz) mod t.nz in
        let rx = float_of_int (cx + ox) *. dx in
        let ry = float_of_int (cy + oy) *. dy in
        let rz = float_of_int (cz + oz) *. dz in
        let ddx = w.Vec3.x -. rx in
        let ddy = w.Vec3.y -. ry in
        let ddz = w.Vec3.z -. rz in
        let r2 = (ddx *. ddx) +. (ddy *. ddy) +. (ddz *. ddz) in
        if r2 <= r_max2 then begin
          let g = norm *. exp (-.r2 *. inv_2s2) in
          let idx = gx + (t.nx * (gy + (t.ny * gz))) in
          f idx g ddx ddy ddz
        end
      done
    done
  done

let now () = Unix.gettimeofday ()

(* Charge [sel]'s phase bucket with the wall time of [f ()]. *)
let timed phases sel f =
  match phases with
  | None -> f ()
  | Some ph ->
      let t0 = now () in
      let r = f () in
      sel ph (now () -. t0);
      r

(* Fixed-shape pairwise tree over the per-slot spread grids at one grid
   point — same recursion shape as Bonded's per-atom force reduction, so
   the combined charge density is deterministic regardless of which domain
   produced which partial grid. *)
let rec tree_cell grids g lo hi =
  if hi - lo = 1 then grids.(lo).(g)
  else begin
    let mid = lo + ((hi - lo) / 2) in
    tree_cell grids g lo mid +. tree_cell grids g mid hi
  end

let scratch_grids t ns =
  let total = t.nx * t.ny * t.nz in
  if Array.length t.scratch <> ns
     || (ns > 0 && Array.length t.scratch.(0) <> total)
  then t.scratch <- Array.init ns (fun _ -> Array.make total 0.);
  t.scratch

(* 1. Spread charges. Serial: accumulate directly into [re] in particle
   order (bitwise identical to the historical serial path). Parallel: each
   slot spreads its contiguous particle tile into a private scratch grid,
   then the grids are combined point-wise with the fixed-shape tree,
   itself tiled over the pool. *)
let spread ~exec t charges positions re =
  let n = Array.length positions in
  let ns = Exec.n_slots exec in
  if ns = 1 && not (Exec.sanitizing exec) then
    for i = 0 to n - 1 do
      let q = charges.(i) in
      if q <> 0. then
        iter_support t positions.(i) (fun idx g _ _ _ ->
            re.(idx) <- re.(idx) +. (q *. g))
    done
  else begin
    let grids = scratch_grids t ns in
    let p_tiles = Exec.tile_bounds ~total:n ~ntiles:ns in
    Exec.parallel_run ~phase:"gse.spread" exec (fun s ->
        let grid = grids.(s) in
        Array.fill grid 0 (Array.length grid) 0.;
        let lo, hi = p_tiles.(s) in
        (* Each slot spreads a particle tile into its private scratch grid;
           the racing surface is the particle partition. *)
        Exec.declare_write ~slot:s ~resource:"gse.spread" ~total:n ~lo ~hi
          exec;
        Exec.declare_read ~slot:s ~resource:"state.positions" ~lo ~hi exec;
        for i = lo to hi - 1 do
          let q = charges.(i) in
          if q <> 0. then
            iter_support t positions.(i) (fun idx g _ _ _ ->
                grid.(idx) <- grid.(idx) +. (q *. g))
        done);
    let total = t.nx * t.ny * t.nz in
    let g_tiles = Exec.tile_bounds ~total ~ntiles:ns in
    Exec.parallel_run ~phase:"gse.combine" exec (fun s ->
        let lo, hi = g_tiles.(s) in
        Exec.declare_write ~slot:s ~resource:"gse.grid_combine" ~total ~lo
          ~hi exec;
        (* The tree combine reads every slot's partial grid, i.e. the whole
           particle footprint the spread phase declared. *)
        Exec.declare_read ~slot:s ~resource:"gse.spread" ~lo:0 ~hi:n exec;
        for g = lo to hi - 1 do
          re.(g) <- tree_cell grids g 0 ns
        done)
  end

let reciprocal ?(exec = Exec.serial) ?phases t charges positions
    (acc : Mdsp_ff.Bonded.accum) =
  let n = Array.length positions in
  let ns = Exec.n_slots exec in
  let total = t.nx * t.ny * t.nz in
  let re = Array.make total 0. in
  let im = Array.make total 0. in
  (* 1. Spread charges onto the grid. *)
  timed phases
    (fun p d -> p.spread_s <- p.spread_s +. d)
    (fun () -> spread ~exec t charges positions re);
  (* 2. Forward transform to k-space. *)
  timed phases
    (fun p d -> p.fft_s <- p.fft_s +. d)
    (fun () -> Fft.fft_3d ~exec ~sign:(-1) ~nx:t.nx ~ny:t.ny ~nz:t.nz re im);
  let vol = Pbc.volume t.box in
  let cell_vol = vol /. float_of_int total in
  (* Energy = 1/(2V) sum_k Ghat |rho_hat|^2 with rho_hat = cell_vol * DFT. *)
  let e_scale = cell_vol *. cell_vol /. (2. *. vol) *. Units.coulomb in
  let inv_2b2 = 1. /. (2. *. t.beta_ *. t.beta_) in
  (* 3. Convolve: scale each mode by Ghat and accumulate per-slot energy
     and virial partials over contiguous k tiles, combined with the
     fixed-shape tree so the parallel sum is deterministic. *)
  let energy, virial =
    timed phases
      (fun p d -> p.convolve_s <- p.convolve_s +. d)
      (fun () ->
        let e_slot = Array.make ns 0. and w_slot = Array.make ns 0. in
        let k_tiles = Exec.tile_bounds ~total ~ntiles:ns in
        Exec.parallel_run ~phase:"gse.convolve" exec (fun s ->
            let energy = ref 0. and virial = ref 0. in
            let lo, hi = k_tiles.(s) in
            Exec.declare_write ~slot:s ~resource:"gse.convolve" ~total ~lo
              ~hi exec;
            Exec.declare_read ~slot:s ~resource:"gse.convolve" ~total ~lo
              ~hi exec;
            for k = lo to hi - 1 do
              let s2 = (re.(k) *. re.(k)) +. (im.(k) *. im.(k)) in
              let e_k = t.ghat.(k) *. s2 in
              energy := !energy +. e_k;
              (* The total k-space kernel equals Ewald's, so the reciprocal
                 virial takes the same per-mode form:
                 W_k = E_k (1 - k^2 / (2 beta^2)). *)
              virial := !virial +. (e_k *. (1. -. (t.k2s.(k) *. inv_2b2)));
              re.(k) <- re.(k) *. t.ghat.(k);
              im.(k) <- im.(k) *. t.ghat.(k)
            done;
            e_slot.(s) <- !energy;
            w_slot.(s) <- !virial);
        (Exec.sum_tree e_slot, Exec.sum_tree w_slot))
  in
  acc.Mdsp_ff.Bonded.virial <-
    acc.Mdsp_ff.Bonded.virial +. (virial *. e_scale);
  let energy = energy *. e_scale in
  (* 4. Back-transform to the potential grid: phi = (1/N) * IDFT scaled. *)
  timed phases
    (fun p d -> p.fft_s <- p.fft_s +. d)
    (fun () -> Fft.fft_3d ~exec ~sign:1 ~nx:t.nx ~ny:t.ny ~nz:t.nz re im);
  let phi_scale = cell_vol /. vol in
  (* phi(r_g) = (cell_vol / V) * Finv[Ghat * F[rho]]_g  (= (1/N) * ... ). *)
  timed phases
    (fun p d -> p.convolve_s <- p.convolve_s +. d)
    (fun () ->
      let g_tiles = Exec.tile_bounds ~total ~ntiles:ns in
      Exec.parallel_run ~phase:"gse.phi_scale" exec (fun s ->
          let lo, hi = g_tiles.(s) in
          Exec.declare_write ~slot:s ~resource:"gse.phi_scale" ~total ~lo
            ~hi exec;
          Exec.declare_read ~slot:s ~resource:"gse.phi_scale" ~total ~lo
            ~hi exec;
          for k = lo to hi - 1 do
            re.(k) <- re.(k) *. phi_scale
          done));
  (* 5. Gather forces: F_i = q_i cell_vol / sigma^2 *
        sum_g phi_g (r_i - r_g) gauss. Particles are tiled over the pool;
     each slot writes only its own particles' force entries, so no scratch
     accumulators or reduction are needed and the per-particle arithmetic
     is identical to serial. *)
  let inv_s2 = 1. /. (t.sigma *. t.sigma) in
  timed phases
    (fun p d -> p.gather_s <- p.gather_s +. d)
    (fun () ->
      let p_tiles = Exec.tile_bounds ~total:n ~ntiles:ns in
      Exec.parallel_run ~phase:"gse.gather" exec (fun s ->
          let lo, hi = p_tiles.(s) in
          Exec.declare_write ~slot:s ~resource:"gse.gather" ~total:n ~lo ~hi
            exec;
          (* Accumulates into the slot's own force entries (same-slot
             read-modify-write). *)
          Exec.declare_read ~slot:s ~resource:"gse.gather" ~total:n ~lo ~hi
            exec;
          (* The support stencil strides the whole potential grid and the
             slot reads its own particles' positions. *)
          Exec.declare_read ~slot:s ~resource:"gse.grid" ~lo:0 ~hi:total
            exec;
          Exec.declare_read ~slot:s ~resource:"state.positions" ~lo ~hi
            exec;
          for i = lo to hi - 1 do
            let q = charges.(i) in
            if q <> 0. then begin
              let fx = ref 0. and fy = ref 0. and fz = ref 0. in
              iter_support t positions.(i) (fun idx g dx dy dz ->
                  let w = re.(idx) *. g in
                  fx := !fx +. (w *. dx);
                  fy := !fy +. (w *. dy);
                  fz := !fz +. (w *. dz));
              let c = q *. cell_vol *. inv_s2 *. Units.coulomb in
              acc.forces.(i) <-
                Vec3.add acc.forces.(i)
                  (Vec3.make (c *. !fx) (c *. !fy) (c *. !fz))
            end
          done));
  energy
