(** Self-contained complex FFT (iterative radix-2) and a 3D transform.

    Sufficient for the grid sizes used by the Gaussian-split-Ewald solver
    (all dimensions must be powers of two). Data layout: separate [re]/[im]
    float arrays; the 3D transform uses row-major order with x fastest.

    The 3D transform can run on an execution backend
    ({!Mdsp_util.Exec.t}): each of its three sweeps consists of independent
    1-D lines that are statically tiled over the pool slots. Because every
    line's arithmetic is unchanged and lines write disjoint grid regions,
    the parallel transform is {e bitwise identical} to the serial one —
    unlike the tiled pair sums, no summation-order difference is
    introduced here. *)

open Mdsp_util

(** [fft_1d ~sign re im] transforms one length-[n] line in place ([n] a
    power of two). [sign] is [-1] for the forward transform, [+1] for the
    inverse; the inverse is unscaled (caller divides by [n]). Always runs
    on the calling domain. *)
val fft_1d : sign:int -> float array -> float array -> unit

(** [fft_3d ?exec ~sign ~nx ~ny ~nz re im] transforms in place; unscaled.
    [exec] (default {!Mdsp_util.Exec.serial}) tiles the 1-D lines of each
    of the three sweeps over the pool; results are bitwise independent of
    the backend. Three pool barriers per call (one per sweep). *)
val fft_3d :
  ?exec:Exec.t ->
  sign:int -> nx:int -> ny:int -> nz:int -> float array -> float array -> unit

(** True if [n] is a power of two (and positive). *)
val is_pow2 : int -> bool

(** Smallest power of two >= n. *)
val next_pow2 : int -> int
