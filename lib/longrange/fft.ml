open Mdsp_util

let is_pow2 n = n > 0 && n land (n - 1) = 0

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let fft_1d ~sign re im =
  let n = Array.length re in
  if Array.length im <> n then invalid_arg "Fft.fft_1d: length mismatch";
  if not (is_pow2 n) then invalid_arg "Fft.fft_1d: length must be a power of 2";
  (* Bit-reversal permutation. *)
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let tr = re.(i) in
      re.(i) <- re.(!j);
      re.(!j) <- tr;
      let ti = im.(i) in
      im.(i) <- im.(!j);
      im.(!j) <- ti
    end;
    let m = ref (n lsr 1) in
    while !m >= 1 && !j land !m <> 0 do
      j := !j lxor !m;
      m := !m lsr 1
    done;
    j := !j lor !m
  done;
  (* Danielson–Lanczos butterflies. *)
  let mmax = ref 1 in
  while !mmax < n do
    let istep = !mmax * 2 in
    let theta = float_of_int sign *. Float.pi /. float_of_int !mmax in
    let wpr = -2. *. (sin (0.5 *. theta) ** 2.) in
    let wpi = sin theta in
    let wr = ref 1. and wi = ref 0. in
    for m = 0 to !mmax - 1 do
      let i = ref m in
      while !i < n do
        let k = !i + !mmax in
        let tr = (!wr *. re.(k)) -. (!wi *. im.(k)) in
        let ti = (!wr *. im.(k)) +. (!wi *. re.(k)) in
        re.(k) <- re.(!i) -. tr;
        im.(k) <- im.(!i) -. ti;
        re.(!i) <- re.(!i) +. tr;
        im.(!i) <- im.(!i) +. ti;
        i := !i + istep
      done;
      let wtemp = !wr in
      wr := (!wr *. (1. +. wpr)) -. (!wi *. wpi);
      wi := (!wi *. (1. +. wpr)) +. (wtemp *. wpi)
    done;
    mmax := istep
  done

(* The 3D transform is three sweeps of independent 1-D lines; each line is
   read into a per-slot scratch buffer, transformed, and written back to a
   disjoint region of the grid. Lines are statically tiled over the pool,
   so the parallel result is bitwise identical to the serial one: every
   line's arithmetic is untouched, only which domain runs it changes. *)
let fft_3d ?(exec = Exec.serial) ~sign ~nx ~ny ~nz re im =
  let total = nx * ny * nz in
  if Array.length re <> total || Array.length im <> total then
    invalid_arg "Fft.fft_3d: array size mismatch";
  let idx x y z = x + (nx * (y + (ny * z))) in
  let ns = Exec.n_slots exec in
  (* The forward and inverse transforms are distinct dataflow phases: the
     convolve stage sits between them, so sharing one phase name per sweep
     would put a cycle in the happens-before graph. *)
  let prefix = if sign < 0 then "gse.fft_fwd" else "gse.fft_inv" in
  (* Transform along x (contiguous): one line per (y, z). *)
  let x_tiles = Exec.tile_bounds ~total:(ny * nz) ~ntiles:ns in
  Exec.parallel_run ~phase:(prefix ^ ".x") exec (fun s ->
      let bx_re = Array.make nx 0. and bx_im = Array.make nx 0. in
      let lo, hi = x_tiles.(s) in
      (* Each sweep's racing surface is its line-index space — strided
         element ranges interleave across slots, line indices don't. The
         read declaration mirrors the write: a line transform is a
         read-modify-write of the slot's own lines. *)
      Exec.declare_write ~slot:s ~resource:"fft.x_lines" ~total:(ny * nz)
        ~lo ~hi exec;
      Exec.declare_read ~slot:s ~resource:"fft.x_lines" ~total:(ny * nz)
        ~lo ~hi exec;
      for l = lo to hi - 1 do
        let z = l / ny and y = l mod ny in
        let base = idx 0 y z in
        Array.blit re base bx_re 0 nx;
        Array.blit im base bx_im 0 nx;
        fft_1d ~sign bx_re bx_im;
        Array.blit bx_re 0 re base nx;
        Array.blit bx_im 0 im base nx
      done);
  (* Along y: one strided line per (x, z). *)
  let y_tiles = Exec.tile_bounds ~total:(nx * nz) ~ntiles:ns in
  Exec.parallel_run ~phase:(prefix ^ ".y") exec (fun s ->
      let by_re = Array.make ny 0. and by_im = Array.make ny 0. in
      let lo, hi = y_tiles.(s) in
      Exec.declare_write ~slot:s ~resource:"fft.y_lines" ~total:(nx * nz)
        ~lo ~hi exec;
      Exec.declare_read ~slot:s ~resource:"fft.y_lines" ~total:(nx * nz)
        ~lo ~hi exec;
      for l = lo to hi - 1 do
        let z = l / nx and x = l mod nx in
        for y = 0 to ny - 1 do
          let k = idx x y z in
          by_re.(y) <- re.(k);
          by_im.(y) <- im.(k)
        done;
        fft_1d ~sign by_re by_im;
        for y = 0 to ny - 1 do
          let k = idx x y z in
          re.(k) <- by_re.(y);
          im.(k) <- by_im.(y)
        done
      done);
  (* Along z: one strided line per (x, y). *)
  let z_tiles = Exec.tile_bounds ~total:(nx * ny) ~ntiles:ns in
  Exec.parallel_run ~phase:(prefix ^ ".z") exec (fun s ->
      let bz_re = Array.make nz 0. and bz_im = Array.make nz 0. in
      let lo, hi = z_tiles.(s) in
      Exec.declare_write ~slot:s ~resource:"fft.z_lines" ~total:(nx * ny)
        ~lo ~hi exec;
      Exec.declare_read ~slot:s ~resource:"fft.z_lines" ~total:(nx * ny)
        ~lo ~hi exec;
      for l = lo to hi - 1 do
        let y = l / nx and x = l mod nx in
        for z = 0 to nz - 1 do
          let k = idx x y z in
          bz_re.(z) <- re.(k);
          bz_im.(z) <- im.(k)
        done;
        fft_1d ~sign bz_re bz_im;
        for z = 0 to nz - 1 do
          let k = idx x y z in
          re.(k) <- bz_re.(z);
          im.(k) <- bz_im.(z)
        done
      done)
