(** Classic Ewald summation — the long-range electrostatics reference.

    The Coulomb sum is split with parameter [beta]: the short-range part
    [qq erfc(beta r)/r] is evaluated by the pair machinery
    ([Mdsp_ff.Pair_interactions] with [Ewald_real]); this module provides the
    reciprocal-space part (direct sum over k vectors), the self-energy
    correction, and the correction for excluded pairs. Exact up to the [kmax]
    truncation; used as the oracle the grid-based GSE solver is tested
    against and to compute Madelung constants in the test suite.

    {2 Units}

    Positions and the box are in Angstrom, charges in elementary charge
    units, [beta] in 1/Angstrom; energies are returned in kcal/mol and
    forces accumulated in kcal/mol/Angstrom (the Coulomb constant is
    applied internally, as everywhere in the force field).

    {2 Execution and determinism}

    This reference implementation is deliberately serial: every sum runs on
    the calling domain in a fixed order, so results are bitwise reproducible
    across runs and independent of any {!Mdsp_util.Exec} backend the rest of
    the force pipeline uses. For the pool-parallel production solver, use
    [Mdsp_longrange.Gse]. *)

open Mdsp_util

type t

(** [create ~beta ~kmax box] prepares the k-vector list: all integer triples
    with 0 < |n|^2 <= kmax^2. *)
val create : beta:float -> kmax:int -> Pbc.t -> t

(** [reciprocal t charges positions acc] adds reciprocal-space forces and
    virial and returns the reciprocal energy. *)
val reciprocal :
  t -> float array -> Vec3.t array -> Mdsp_ff.Bonded.accum -> float

(** Self-energy correction: [-beta/sqrt(pi) * sum q_i^2]. Constant; no
    forces. *)
val self_energy : t -> float array -> float

(** Correction removing the reciprocal-space interaction of excluded pairs:
    subtracts [qq erf(beta r)/r] for each excluded pair (with forces). *)
val excluded_correction :
  t -> Pbc.t -> float array -> Vec3.t array ->
  Mdsp_space.Exclusions.t -> Mdsp_ff.Bonded.accum -> float

(** Total energy of a neutral point-charge system: reciprocal + self +
    real-space (computed internally over all pairs with minimum image; for
    testing on small systems only). *)
val total_reference :
  t -> Pbc.t -> float array -> Vec3.t array -> float

val beta : t -> float
val k_count : t -> int
