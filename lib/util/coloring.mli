(** Deterministic DSATUR graph coloring.

    Colors an undirected graph given as adjacency lists. The selection rule
    (maximum saturation, ties to maximum degree, then lowest vertex id,
    smallest available color) is a total order, so the coloring — and any
    schedule built from it — is a pure function of the graph: identical
    across runs, slot counts and machines. Used by
    {!Mdsp_verify.Schedule} to batch constraint clusters into
    independent sets. *)

(** [dsatur ~n ~adj] colors vertices [0..n-1]; [adj.(v)] lists the
    neighbors of [v] (symmetric, no self-loops). Returns the color of each
    vertex, colors numbered from 0. Raises [Invalid_argument] if
    [Array.length adj <> n]. *)
val dsatur : n:int -> adj:int list array -> int array

(** Number of distinct colors used (max color + 1; 0 for an empty graph). *)
val n_colors : int array -> int

(** [proper ~adj colors] checks no edge joins two same-colored vertices. *)
val proper : adj:int list array -> int array -> bool

(** [classes colors] groups vertices by color: [classes.(c)] holds the
    vertices of color [c], ascending. *)
val classes : int array -> int array array
