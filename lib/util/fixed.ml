type format = { frac_bits : int; total_bits : int }

exception Overflow of float

let format ~frac_bits ~total_bits =
  if total_bits > 63 || total_bits < 2 then
    invalid_arg "Fixed.format: total_bits must be in [2, 63]";
  if frac_bits < 0 || frac_bits >= total_bits then
    invalid_arg "Fixed.format: frac_bits must be in [0, total_bits)";
  { frac_bits; total_bits }

let position_format = { frac_bits = 26; total_bits = 32 }
let force_format = { frac_bits = 22; total_bits = 48 }
let accumulator_widening = 10

let widen fmt =
  { fmt with total_bits = min 63 (fmt.total_bits + accumulator_widening) }

let energy_format = widen force_format
let scale fmt = ldexp 1. fmt.frac_bits
let resolution fmt = ldexp 1. (-fmt.frac_bits)

let max_raw fmt =
  Int64.sub (Int64.shift_left 1L (fmt.total_bits - 1)) 1L

let min_raw fmt = Int64.neg (Int64.shift_left 1L (fmt.total_bits - 1))
let max_value fmt = Int64.to_float (max_raw fmt) /. scale fmt

let of_float_checked fmt x =
  let r = Float.round (x *. scale fmt) in
  if r >= Int64.to_float (max_raw fmt) then (max_raw fmt, r > Int64.to_float (max_raw fmt))
  else if r <= Int64.to_float (min_raw fmt) then (min_raw fmt, r < Int64.to_float (min_raw fmt))
  else (Int64.of_float r, false)

let of_float fmt x = fst (of_float_checked fmt x)

let of_float_exn fmt x =
  let r = Float.round (x *. scale fmt) in
  if r > Int64.to_float (max_raw fmt) || r < Int64.to_float (min_raw fmt) then
    raise (Overflow x)
  else Int64.of_float r

let to_float fmt v = Int64.to_float v /. scale fmt

let clamp fmt v =
  if Int64.compare v (max_raw fmt) > 0 then max_raw fmt
  else if Int64.compare v (min_raw fmt) < 0 then min_raw fmt
  else v

let add_checked fmt a b =
  (* Operands are in range, so the int64 sum cannot wrap (total_bits <= 63);
     the clamp is the saturation event itself. *)
  let s = Int64.add a b in
  let c = clamp fmt s in
  (c, not (Int64.equal c s))

let add fmt a b = fst (add_checked fmt a b)

let mul_checked fmt a b =
  (* Widen through float for the high part; adequate for <= 48-bit formats
     used here, and rounding matches the conversion path. *)
  let p = Float.round (Int64.to_float a *. Int64.to_float b /. scale fmt) in
  if p >= Int64.to_float (max_raw fmt) then (max_raw fmt, p > Int64.to_float (max_raw fmt))
  else if p <= Int64.to_float (min_raw fmt) then (min_raw fmt, p < Int64.to_float (min_raw fmt))
  else (Int64.of_float p, false)

let mul fmt a b = fst (mul_checked fmt a b)

let quantize fmt x = to_float fmt (of_float fmt x)
let quantization_error fmt = 0.5 *. resolution fmt

let sum fmt xs =
  let acc = ref 0L in
  Array.iter (fun x -> acc := add fmt !acc (of_float fmt x)) xs;
  to_float fmt !acc
