type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
  mutable cached_gauss : float;
  mutable has_gauss : bool;
}

(* splitmix64, used to expand a seed into the four state words; recommended
   seeding procedure for the xoshiro family. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3; cached_gauss = 0.; has_gauss = false }

let copy t = { t with s0 = t.s0 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

type snapshot = {
  sn_s0 : int64;
  sn_s1 : int64;
  sn_s2 : int64;
  sn_s3 : int64;
  sn_cached_gauss : float;
  sn_has_gauss : bool;
}

let snapshot t =
  {
    sn_s0 = t.s0;
    sn_s1 = t.s1;
    sn_s2 = t.s2;
    sn_s3 = t.s3;
    sn_cached_gauss = t.cached_gauss;
    sn_has_gauss = t.has_gauss;
  }

let restore t s =
  t.s0 <- s.sn_s0;
  t.s1 <- s.sn_s1;
  t.s2 <- s.sn_s2;
  t.s3 <- s.sn_s3;
  t.cached_gauss <- s.sn_cached_gauss;
  t.has_gauss <- s.sn_has_gauss

let split t =
  (* Derive a child seed from the parent stream, then re-expand through
     splitmix64 so parent and child decorrelate. *)
  let seed = Int64.to_int (bits64 t) in
  create (seed lxor 0x5851F42D)

let split_key t = bits64 t

let derive key i =
  (* Mix the index in with an odd multiplier before the splitmix64
     expansion so neighboring indices land in uncorrelated streams. The
     child depends only on (key, i) — never on who asks first — which is
     what makes per-atom sweeps order- and tiling-independent. *)
  let st =
    ref
      (Int64.logxor key
         (Int64.mul (Int64.add (Int64.of_int i) 1L) 0xD1B54A32D192ED03L))
  in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3; cached_gauss = 0.; has_gauss = false }

let uniform t =
  (* 53 random bits into [0,1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. (1. /. 9007199254740992.)

let uniform_in t a b = a +. ((b -. a) *. uniform t)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is negligible for n << 2^63
     but we reject to keep streams exactly uniform. *)
  let bound = Int64.of_int n in
  let rec go () =
    let r = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem r bound in
    if Int64.sub r v > Int64.sub Int64.max_int (Int64.sub bound 1L) then go ()
    else Int64.to_int v
  in
  go ()

let rec gaussian t =
  if t.has_gauss then begin
    t.has_gauss <- false;
    t.cached_gauss
  end
  else begin
    let u = (2. *. uniform t) -. 1. in
    let v = (2. *. uniform t) -. 1. in
    let s = (u *. u) +. (v *. v) in
    if s >= 1. || s = 0. then gaussian t
    else begin
      let f = sqrt (-2. *. log s /. s) in
      t.cached_gauss <- v *. f;
      t.has_gauss <- true;
      u *. f
    end
  end

let gaussian_ms t ~mean ~sigma = mean +. (sigma *. gaussian t)

let rec unit_vector t =
  let v =
    Vec3.make (uniform_in t (-1.) 1.) (uniform_in t (-1.) 1.)
      (uniform_in t (-1.) 1.)
  in
  let n2 = Vec3.norm2 v in
  if n2 > 1. || n2 < 1e-12 then unit_vector t
  else Vec3.scale (1. /. sqrt n2) v

let gaussian_vec t =
  let x = gaussian t in
  let y = gaussian t in
  let z = gaussian t in
  Vec3.make x y z

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
