(** Deterministic pseudo-random number generation.

    A self-contained xoshiro256** generator. Every stochastic component of the
    code base (Langevin thermostats, Monte-Carlo barostats, replica exchange,
    workload builders) takes an explicit [Rng.t] so that simulations are
    reproducible and independent streams can be split for parallel replicas. *)

type t

(** [create seed] builds a generator from a 64-bit seed via splitmix64. *)
val create : int -> t

(** Copy the generator state (the copy evolves independently). *)
val copy : t -> t

(** [split t] derives a statistically independent child stream and advances
    the parent. Used to give each replica / domain its own stream. *)
val split : t -> t

(** [split_key t] draws one 64-bit key from the parent stream (advancing it
    exactly once). Feed it to {!derive} to mint any number of independent
    child streams without touching the parent again. *)
val split_key : t -> int64

(** [derive key i] builds the [i]-th child stream of [key] via splitmix64
    expansion. A pure function of [(key, i)] — the same child regardless of
    evaluation order — so per-atom stochastic sweeps (the Langevin O-step)
    stay bitwise identical under any tiling of the atom range. *)
val derive : int64 -> int -> t

(** The complete generator state — the four xoshiro words plus the Box–Muller
    cache — as an immutable value for checkpointing. Restoring a snapshot
    makes the stream continue bit-for-bit where the snapshot was taken. *)
type snapshot = {
  sn_s0 : int64;
  sn_s1 : int64;
  sn_s2 : int64;
  sn_s3 : int64;
  sn_cached_gauss : float;
  sn_has_gauss : bool;
}

val snapshot : t -> snapshot

(** [restore t s] overwrites [t]'s state with the snapshot [s]. *)
val restore : t -> snapshot -> unit

(** Next raw 64-bit value. *)
val bits64 : t -> int64

(** Uniform float in [0, 1). *)
val uniform : t -> float

(** Uniform float in [a, b). *)
val uniform_in : t -> float -> float -> float

(** Uniform integer in [0, n). Raises [Invalid_argument] if [n <= 0]. *)
val int : t -> int -> int

(** Standard normal deviate (polar Box–Muller with caching). *)
val gaussian : t -> float

(** Normal deviate with given mean and standard deviation. *)
val gaussian_ms : t -> mean:float -> sigma:float -> float

(** Random unit vector, uniform on the sphere. *)
val unit_vector : t -> Vec3.t

(** Vector of three independent standard normal deviates. *)
val gaussian_vec : t -> Vec3.t

(** Fisher–Yates shuffle in place. *)
val shuffle : t -> 'a array -> unit
