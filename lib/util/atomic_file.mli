(** Crash-safe file replacement.

    [write path f] runs [f] on an output channel bound to [path ^ ".tmp"]
    and renames the finished file over [path]. A crash (or an exception
    from [f]) while writing leaves the previous contents of [path] intact;
    the rename is atomic on POSIX filesystems, so no reader ever sees a
    partially written file. Checkpoints and the job-queue state records are
    all written through this helper. *)

(** Suffix of the staging file (".tmp"); directory scans treat leftovers
    carrying it as crash debris, never as live records. *)
val tmp_suffix : string

(** [write path f] writes atomically via [f]; on exception the staging file
    is removed and the exception re-raised. *)
val write : string -> (out_channel -> unit) -> unit

(** [write_string path s] is [write] of a fixed payload. *)
val write_string : string -> string -> unit

(** [fresh_dir ()] creates (and returns the path of) a new unique
    directory under the system temp dir — spool directories for tests,
    benchmarks and the sanitizer sweep. *)
val fresh_dir : ?prefix:string -> unit -> string
