type backend =
  | Serial
  | Domains of { n : int }

(* Pool protocol: the caller installs a job and bumps [epoch]; each worker
   runs the job for its own slot exactly once per epoch and decrements
   [pending]. The caller participates as slot 0, then waits for
   [pending = 0]. Workers park on [work] between jobs. *)
type pool = {
  size : int;
  mutex : Mutex.t;
  work : Condition.t;
  finished : Condition.t;
  mutable job : (int -> unit) option;
  mutable epoch : int;
  mutable pending : int;
  mutable quit : bool;
  mutable failure : exn option;
  mutable workers : unit Domain.t list;
}

type t = { bk : backend; pool : pool option }

let serial = { bk = Serial; pool = None }

let backend t = t.bk
let n_slots t = match t.bk with Serial -> 1 | Domains { n } -> max 1 n

let worker_loop pool slot =
  let last_epoch = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.mutex;
    while (not pool.quit) && pool.epoch = !last_epoch do
      Condition.wait pool.work pool.mutex
    done;
    if pool.quit then begin
      Mutex.unlock pool.mutex;
      running := false
    end
    else begin
      last_epoch := pool.epoch;
      let job = pool.job in
      Mutex.unlock pool.mutex;
      (match job with
      | None -> ()
      | Some f -> (
          try f slot
          with e ->
            Mutex.lock pool.mutex;
            if pool.failure = None then pool.failure <- Some e;
            Mutex.unlock pool.mutex));
      Mutex.lock pool.mutex;
      pool.pending <- pool.pending - 1;
      if pool.pending = 0 then Condition.signal pool.finished;
      Mutex.unlock pool.mutex
    end
  done

let shutdown t =
  match t.pool with
  | None -> ()
  | Some p ->
      Mutex.lock p.mutex;
      let workers = p.workers in
      p.workers <- [];
      p.quit <- true;
      Condition.broadcast p.work;
      Mutex.unlock p.mutex;
      List.iter Domain.join workers

let create = function
  | Serial -> serial
  | Domains { n } when n <= 1 -> { bk = Domains { n = 1 }; pool = None }
  | Domains { n } ->
      let pool =
        {
          size = n;
          mutex = Mutex.create ();
          work = Condition.create ();
          finished = Condition.create ();
          job = None;
          epoch = 0;
          pending = 0;
          quit = false;
          failure = None;
          workers = [];
        }
      in
      pool.workers <-
        List.init (n - 1) (fun i ->
            Domain.spawn (fun () -> worker_loop pool (i + 1)));
      let t = { bk = Domains { n }; pool = Some pool } in
      (* Workers otherwise block forever on [work] and keep the runtime from
         exiting cleanly. *)
      at_exit (fun () -> shutdown t);
      t

let parallel_run t f =
  match t.pool with
  | None -> f 0
  | Some p ->
      Mutex.lock p.mutex;
      if p.quit then begin
        Mutex.unlock p.mutex;
        invalid_arg "Exec.parallel_run: pool is shut down"
      end;
      p.job <- Some f;
      p.pending <- p.size - 1;
      p.failure <- None;
      p.epoch <- p.epoch + 1;
      Condition.broadcast p.work;
      Mutex.unlock p.mutex;
      let main_failure = (try f 0; None with e -> Some e) in
      Mutex.lock p.mutex;
      while p.pending > 0 do
        Condition.wait p.finished p.mutex
      done;
      p.job <- None;
      let worker_failure = p.failure in
      p.failure <- None;
      Mutex.unlock p.mutex;
      (match main_failure with Some e -> raise e | None -> ());
      (match worker_failure with Some e -> raise e | None -> ())

let map_slots t f =
  let n = n_slots t in
  let out = Array.make n None in
  parallel_run t (fun s -> out.(s) <- Some (f s));
  Array.map
    (function
      | Some v -> v
      | None -> invalid_arg "Exec.map_slots: a slot produced no value")
    out

let tile_bounds ~total ~ntiles =
  if total < 0 then invalid_arg "Exec.tile_bounds: total";
  if ntiles < 1 then invalid_arg "Exec.tile_bounds: ntiles";
  Array.init ntiles (fun k ->
      (total * k / ntiles, total * (k + 1) / ntiles))

let reduce_tree f a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Exec.reduce_tree: empty array";
  let b = Array.copy a in
  let stride = ref 1 in
  while !stride < n do
    let i = ref 0 in
    while !i + !stride < n do
      b.(!i) <- f b.(!i) b.(!i + !stride);
      i := !i + (2 * !stride)
    done;
    stride := 2 * !stride
  done;
  b.(0)

let sum_tree a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Exec.sum_tree: empty array";
  let b = Array.copy a in
  let stride = ref 1 in
  while !stride < n do
    let i = ref 0 in
    while !i + !stride < n do
      b.(!i) <- b.(!i) +. b.(!i + !stride);
      i := !i + (2 * !stride)
    done;
    stride := 2 * !stride
  done;
  b.(0)

let recommended_domains () = max 1 (Domain.recommended_domain_count ())
