type backend =
  | Serial
  | Domains of { n : int }

(* Pool protocol: the caller installs a job and bumps [epoch]; each worker
   runs the job for its own slot exactly once per epoch and decrements
   [pending]. The caller participates as slot 0, then waits for
   [pending = 0]. Workers park on [work] between jobs. *)
type pool = {
  size : int;
  mutex : Mutex.t;
  work : Condition.t;
  finished : Condition.t;
  mutable job : (int -> unit) option;
  mutable epoch : int;
  mutable pending : int;
  mutable quit : bool;
  mutable failure : exn option;
  mutable workers : unit Domain.t list;
}

exception Race of string

type access = {
  acc_slot : int;
  acc_resource : string;
  acc_lo : int;
  acc_hi : int;
  acc_total : int option;
}

type barrier_record = {
  br_phase : string option;
  br_reads : access list;
  br_writes : access list;
}

type akind = KRead | KWrite

(* Sanitizer state: slot [s] appends only to [decls.(s)], so the buffers
   need no locking; the caller drains them after the barrier (the pool
   mutex orders the writes before the read). Each entry is
   (kind, resource, lo, hi, total). *)
type sanitizer = {
  decls : (akind * string * int * int * int option) list array;
  mutable observer : (barrier_record -> unit) option;
}

type t = { bk : backend; pool : pool option; san : sanitizer option }

let serial = { bk = Serial; pool = None; san = None }

let backend t = t.bk
let n_slots t = match t.bk with Serial -> 1 | Domains { n } -> max 1 n

let sanitizing t = t.san <> None

let declare kind ~slot ~resource ?total ~lo ~hi t =
  match t.san with
  | None -> ()
  | Some s ->
      if slot < 0 || slot >= Array.length s.decls then
        raise
          (Race
             (Printf.sprintf
                "Exec sanitizer: resource %S: slot %d out of range [0, %d)"
                resource slot (Array.length s.decls)));
      if lo < 0 || hi < lo then
        raise
          (Race
             (Printf.sprintf
                "Exec sanitizer: resource %S: slot %d declared a malformed \
                 range [%d, %d)"
                resource slot lo hi));
      s.decls.(slot) <- (kind, resource, lo, hi, total) :: s.decls.(slot)

let declare_write ~slot ~resource ?total ~lo ~hi t =
  declare KWrite ~slot ~resource ?total ~lo ~hi t

let declare_read ~slot ~resource ?total ~lo ~hi t =
  declare KRead ~slot ~resource ?total ~lo ~hi t

let set_observer t obs =
  match t.san with None -> () | Some s -> s.observer <- obs

(* Barrier-time validation — the full conflict matrix. Per resource:
   - write ranges from different slots must be pairwise disjoint;
   - a read range on one slot must not overlap a write range on another
     slot (same-slot read-modify-write is fine: the slot owns the range);
   - overlapping reads are always allowed;
   - when any slot declared the resource's extent, the union of the write
     ranges must cover [0, total) exactly, and no declared range (read or
     write) may reach beyond it.
   The scan sorts all ranges by [lo] and walks them carrying the
   furthest-reaching write seen so far plus the furthest-reaching read of
   each of the two furthest-reaching slots. One carried write suffices:
   cross-slot write overlaps raise the moment the second write arrives, so
   any write surviving the walk overlaps only its own slot's writes and
   carries their slot identity. Reads are different — they overlap each
   other freely, so the single max-hi read may belong to a later writer's
   own slot and mask a shorter cross-slot read underneath it. Carrying the
   top read of the top two distinct slots closes that hole: at most one of
   the two can be the writer's own, and the other reaches at least as far
   as any read the trim dropped. *)
let check_decls san =
  let by_resource : (string, (akind * int * int * int) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let totals : (string, int * int) Hashtbl.t = Hashtbl.create 16 in
  Array.iteri
    (fun slot ds ->
      List.iter
        (fun (kind, res, lo, hi, total) ->
          (match total with
          | None -> ()
          | Some tot -> (
              match Hashtbl.find_opt totals res with
              | Some (tot', slot') when tot' <> tot ->
                  raise
                    (Race
                       (Printf.sprintf
                          "Exec sanitizer: resource %S: slot %d declares \
                           extent %d but slot %d declared %d"
                          res slot tot slot' tot'))
              | Some _ -> ()
              | None -> Hashtbl.replace totals res (tot, slot)));
          if hi > lo then begin
            let cell =
              match Hashtbl.find_opt by_resource res with
              | Some l -> l
              | None ->
                  let l = ref [] in
                  Hashtbl.replace by_resource res l;
                  l
            in
            cell := (kind, slot, lo, hi) :: !cell
          end)
        ds)
    san.decls;
  Hashtbl.iter
    (fun res ranges ->
      let sorted =
        List.sort
          (fun (_, _, lo1, _) (_, _, lo2, _) -> compare lo1 lo2)
          !ranges
      in
      let conflict verb slot lo hi verb0 slot0 lo0 hi0 =
        raise
          (Race
             (Printf.sprintf
                "Exec sanitizer: resource %S: slot %d %s [%d, %d) \
                 overlapping slot %d's %s [%d, %d)"
                res slot verb lo hi slot0 verb0 lo0 hi0))
      in
      let rec scan active_w active_rs = function
        | [] -> ()
        | (kind, slot, lo, hi) :: rest ->
            (match (kind, active_w) with
            | KWrite, Some (slot0, lo0, hi0) when lo < hi0 && slot0 <> slot
              ->
                conflict "writes" slot lo hi "write" slot0 lo0 hi0
            | KRead, Some (slot0, lo0, hi0) when lo < hi0 && slot0 <> slot
              ->
                conflict "reads" slot lo hi "write" slot0 lo0 hi0
            | _ -> ());
            if kind = KWrite then
              List.iter
                (fun (slot0, lo0, hi0) ->
                  if lo < hi0 && slot0 <> slot then
                    conflict "writes" slot lo hi "read" slot0 lo0 hi0)
                active_rs;
            let active_w, active_rs =
              match kind with
              | KWrite ->
                  let active_w =
                    match active_w with
                    | Some (_, _, hi0) when hi0 >= hi -> active_w
                    | _ -> Some (slot, lo, hi)
                  in
                  (active_w, active_rs)
              | KRead ->
                  (* Per-slot max first, then keep the two furthest-reaching
                     entries — necessarily from distinct slots. *)
                  let mine =
                    match
                      List.find_opt (fun (s, _, _) -> s = slot) active_rs
                    with
                    | Some ((_, _, hi0) as r) when hi0 >= hi -> r
                    | _ -> (slot, lo, hi)
                  in
                  let merged =
                    mine
                    :: List.filter (fun (s, _, _) -> s <> slot) active_rs
                  in
                  let top2 =
                    match
                      List.sort
                        (fun (_, _, h1) (_, _, h2) -> compare h2 h1)
                        merged
                    with
                    | a :: b :: _ -> [ a; b ]
                    | l -> l
                  in
                  (active_w, top2)
            in
            scan active_w active_rs rest
      in
      scan None [] sorted;
      match Hashtbl.find_opt totals res with
      | None -> ()
      | Some (total, _) ->
          List.iter
            (fun (kind, slot, lo, hi) ->
              if kind = KRead && hi > total then
                raise
                  (Race
                     (Printf.sprintf
                        "Exec sanitizer: resource %S: slot %d reads \
                         [%d, %d) beyond the declared extent %d"
                        res slot lo hi total)))
            sorted;
          let writes =
            List.filter (fun (kind, _, _, _) -> kind = KWrite) sorted
          in
          let covered =
            List.fold_left
              (fun reached (_, slot, lo, hi) ->
                if lo > reached then
                  raise
                    (Race
                       (Printf.sprintf
                          "Exec sanitizer: resource %S: no slot writes \
                           [%d, %d) of the declared extent %d"
                          res reached lo total));
                if hi > total then
                  raise
                    (Race
                       (Printf.sprintf
                          "Exec sanitizer: resource %S: slot %d writes \
                           [%d, %d) beyond the declared extent %d"
                          res slot lo hi total));
                max reached hi)
              0 writes
          in
          if writes <> [] && covered <> total then
            raise
              (Race
                 (Printf.sprintf
                    "Exec sanitizer: resource %S: declared writes cover \
                     only [0, %d) of the declared extent %d"
                    res covered total)))
    by_resource

let reset_write_sets t =
  match t.san with
  | None -> ()
  | Some s -> Array.fill s.decls 0 (Array.length s.decls) []

(* Validate the barrier's declarations, then deliver them (in slot order,
   declaration order within a slot) to the observer so the dataflow layer
   can accumulate per-phase footprints. *)
let validate_write_sets ?phase t =
  match t.san with
  | None -> ()
  | Some s ->
      check_decls s;
      (match s.observer with
      | None -> ()
      | Some notify ->
          let reads = ref [] and writes = ref [] in
          for slot = Array.length s.decls - 1 downto 0 do
            List.iter
              (fun (kind, res, lo, hi, total) ->
                let a =
                  {
                    acc_slot = slot;
                    acc_resource = res;
                    acc_lo = lo;
                    acc_hi = hi;
                    acc_total = total;
                  }
                in
                match kind with
                | KRead -> reads := a :: !reads
                | KWrite -> writes := a :: !writes)
              s.decls.(slot)
          done;
          if !reads <> [] || !writes <> [] then
            notify
              { br_phase = phase; br_reads = !reads; br_writes = !writes })

let worker_loop pool slot =
  let last_epoch = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.mutex;
    while (not pool.quit) && pool.epoch = !last_epoch do
      Condition.wait pool.work pool.mutex
    done;
    if pool.quit then begin
      Mutex.unlock pool.mutex;
      running := false
    end
    else begin
      last_epoch := pool.epoch;
      let job = pool.job in
      Mutex.unlock pool.mutex;
      (match job with
      | None -> ()
      | Some f -> (
          try f slot
          with e ->
            Mutex.lock pool.mutex;
            if pool.failure = None then pool.failure <- Some e;
            Mutex.unlock pool.mutex));
      Mutex.lock pool.mutex;
      pool.pending <- pool.pending - 1;
      if pool.pending = 0 then Condition.signal pool.finished;
      Mutex.unlock pool.mutex
    end
  done

let shutdown t =
  match t.pool with
  | None -> ()
  | Some p ->
      Mutex.lock p.mutex;
      let workers = p.workers in
      p.workers <- [];
      p.quit <- true;
      Condition.broadcast p.work;
      Mutex.unlock p.mutex;
      List.iter Domain.join workers

let create ?(sanitize = false) bk =
  let san n =
    if sanitize then Some { decls = Array.make n []; observer = None }
    else None
  in
  match bk with
  | Serial -> if sanitize then { serial with san = san 1 } else serial
  | Domains { n } when n <= 1 ->
      { bk = Domains { n = 1 }; pool = None; san = san 1 }
  | Domains { n } ->
      let pool =
        {
          size = n;
          mutex = Mutex.create ();
          work = Condition.create ();
          finished = Condition.create ();
          job = None;
          epoch = 0;
          pending = 0;
          quit = false;
          failure = None;
          workers = [];
        }
      in
      pool.workers <-
        List.init (n - 1) (fun i ->
            Domain.spawn (fun () -> worker_loop pool (i + 1)));
      let t = { bk = Domains { n }; pool = Some pool; san = san n } in
      (* Workers otherwise block forever on [work] and keep the runtime from
         exiting cleanly. *)
      at_exit (fun () -> shutdown t);
      t

let parallel_run ?phase t f =
  reset_write_sets t;
  match t.pool with
  | None ->
      f 0;
      validate_write_sets ?phase t
  | Some p ->
      Mutex.lock p.mutex;
      if p.quit then begin
        Mutex.unlock p.mutex;
        invalid_arg "Exec.parallel_run: pool is shut down"
      end;
      p.job <- Some f;
      p.pending <- p.size - 1;
      p.failure <- None;
      p.epoch <- p.epoch + 1;
      Condition.broadcast p.work;
      Mutex.unlock p.mutex;
      let main_failure = (try f 0; None with e -> Some e) in
      Mutex.lock p.mutex;
      while p.pending > 0 do
        Condition.wait p.finished p.mutex
      done;
      p.job <- None;
      let worker_failure = p.failure in
      p.failure <- None;
      Mutex.unlock p.mutex;
      (match main_failure with Some e -> raise e | None -> ());
      (match worker_failure with Some e -> raise e | None -> ());
      (* Only a barrier that every slot completed can be audited; a failed
         job leaves the declarations incomplete and has already raised. *)
      validate_write_sets ?phase t

let map_slots ?(phase = "exec.map_slots") t f =
  let n = n_slots t in
  let out = Array.make n None in
  parallel_run ~phase t (fun s ->
      out.(s) <- Some (f s);
      (* Each slot both reads its own cell (the closure environment and any
         per-slot state [f] consults) and writes its result there. *)
      declare_read ~slot:s ~resource:"exec.map_slots" ~total:n ~lo:s
        ~hi:(s + 1) t;
      declare_write ~slot:s ~resource:"exec.map_slots" ~total:n ~lo:s
        ~hi:(s + 1) t);
  Array.map
    (function
      | Some v -> v
      | None -> invalid_arg "Exec.map_slots: a slot produced no value")
    out

let tile_bounds ~total ~ntiles =
  if total < 0 then invalid_arg "Exec.tile_bounds: total";
  if ntiles < 1 then invalid_arg "Exec.tile_bounds: ntiles";
  Array.init ntiles (fun k ->
      (total * k / ntiles, total * (k + 1) / ntiles))

let reduce_tree f a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Exec.reduce_tree: empty array";
  let b = Array.copy a in
  let stride = ref 1 in
  while !stride < n do
    let i = ref 0 in
    while !i + !stride < n do
      b.(!i) <- f b.(!i) b.(!i + !stride);
      i := !i + (2 * !stride)
    done;
    stride := 2 * !stride
  done;
  b.(0)

let sum_tree a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Exec.sum_tree: empty array";
  let b = Array.copy a in
  let stride = ref 1 in
  while !stride < n do
    let i = ref 0 in
    while !i + !stride < n do
      b.(!i) <- b.(!i) +. b.(!i + !stride);
      i := !i + (2 * !stride)
    done;
    stride := 2 * !stride
  done;
  b.(0)

let recommended_domains () = max 1 (Domain.recommended_domain_count ())
