(** Execution backends: where force-pipeline work runs.

    The special-purpose machine routes each force class onto a dedicated
    resource (hardwired pair pipelines, programmable cores). On commodity
    hardware the analogous seam is an execution backend: [Serial] runs
    everything on the calling domain, [Domains] fans tiled work out over a
    persistent pool of OCaml 5 domains.

    Scheduling is static (no work stealing): a task index set is cut into
    contiguous tiles, one per slot, and slot [s] always receives tile [s].
    Combined with fixed-shape tree reductions ({!reduce_tree}), this makes
    parallel runs bit-for-bit deterministic: two runs on the same pool size
    produce identical floating-point results. Serial and parallel results
    differ only by summation order (relative differences at rounding level).

    A pool is cheap to keep around and is reused across steps; workers block
    on a condition variable between jobs. Pools are shut down explicitly with
    {!shutdown} or automatically at program exit.

    Phases that run on the pool when an executor with [n >= 2] slots is
    threaded through the engine ([mdsp run --domains N]): neighbor-list pair
    sums and 1-4 pairs ([Mdsp_ff.Pair_interactions]), bonded terms
    ([Mdsp_ff.Bonded.all]) and their slot reduction
    ([Mdsp_ff.Bonded.reduce_slots]), and the whole GSE grid pipeline —
    charge spreading over per-slot scratch grids, both 3D FFT passes (tiled
    over independent 1-D lines), the k-space convolution, and the
    per-particle force gather ([Mdsp_longrange.Gse.reciprocal],
    [Mdsp_longrange.Fft.fft_3d]). Neighbor-list rebuilds, constraints,
    integration and biases stay on the calling domain. *)

type backend =
  | Serial  (** everything on the calling domain *)
  | Domains of { n : int }
      (** a persistent pool of [n] slots: the caller plus [n - 1] spawned
          domains; [n <= 1] degrades to [Serial] behavior *)

type t

(** The shared serial executor (no pool, no spawned domains, no
    sanitizer). *)
val serial : t

(** Raised by the write-set sanitizer (see {!create} and {!declare_write})
    at the barrier when a parallel schedule is unsound: two slots declared
    overlapping writes to the same resource, a declared range falls outside
    the resource, slots disagree about a resource's extent, or the declared
    ranges fail to cover a resource whose full extent was announced. The
    message names the resource, the slots involved and the offending index
    range. *)
exception Race of string

(** [create ?sanitize backend] builds an executor. For [Domains { n }] with
    [n >= 2] this spawns [n - 1] worker domains that persist until
    {!shutdown} (or program exit, via an [at_exit] hook).

    With [sanitize:true] (default false) the executor runs in instrumented
    mode: slot bodies passed to {!parallel_run} may register the index
    ranges they write via {!declare_write}, and after every barrier the
    executor asserts that, per resource, ranges from different slots are
    pairwise disjoint and (when an extent was declared) that they cover it
    completely — turning a silent determinism violation into an immediate,
    attributed {!Race}. Sanitizing costs a per-barrier scan of the declared
    ranges (not of the data), so it is cheap enough for tests and
    verification runs but off by default in production. *)
val create : ?sanitize:bool -> backend -> t

(** True if the executor was created with [sanitize:true]. *)
val sanitizing : t -> bool

(** [declare_write ~slot ~resource ?total ~lo ~hi t] registers, from inside
    a {!parallel_run} slot body, that slot [slot] writes the half-open index
    range [lo, hi) of the named [resource] during the current parallel
    region. [total], when given, declares the resource's full extent
    [0, total): after the barrier the union of all declared ranges must
    equal it exactly (no gaps, nothing out of bounds). No-op on executors
    built without [sanitize:true], so phases declare unconditionally.

    Each slot must only declare its own writes ([slot] is the index the
    slot body received); declarations are buffered per slot without
    locking and validated on the caller after the barrier. *)
val declare_write :
  slot:int -> resource:string -> ?total:int -> lo:int -> hi:int -> t -> unit

val backend : t -> backend

(** Number of parallel slots: 1 for [Serial], [max 1 n] for [Domains]. *)
val n_slots : t -> int

(** [parallel_run t f] runs [f s] for every slot [s] in [0 .. n_slots - 1],
    slot 0 on the calling domain, and returns when all slots finish. Slots
    must write to disjoint state. Exceptions raised by any slot are re-raised
    on the caller after the barrier. Serial executors just call [f 0]. *)
val parallel_run : t -> (int -> unit) -> unit

(** [map_slots t f] runs [f s] on every slot (like {!parallel_run}, with the
    same barrier) and returns the results as a slot-indexed array — the
    collective primitive the ensemble layer schedules replicas with. The
    array order depends only on the slot count, never on timing. *)
val map_slots : t -> (int -> 'a) -> 'a array

(** [tile_bounds ~total ~ntiles] statically partitions [0 .. total - 1] into
    [ntiles] contiguous half-open ranges [(lo, hi)] whose sizes differ by at
    most one. Empty ranges are possible when [total < ntiles]. *)
val tile_bounds : total:int -> ntiles:int -> (int * int) array

(** Fixed-shape pairwise tree reduction (stride doubling): the combination
    order depends only on the array length, never on timing, so the result
    is deterministic. Raises [Invalid_argument] on an empty array. *)
val reduce_tree : ('a -> 'a -> 'a) -> 'a array -> 'a

(** [reduce_tree ( +. )] specialized to floats without closure allocation. *)
val sum_tree : float array -> float

(** Stop the pool's workers and join them. Idempotent; [Serial] executors
    are unaffected. Using {!parallel_run} after shutdown raises. *)
val shutdown : t -> unit

(** [Domain.recommended_domain_count], clamped to at least 1 — a sensible
    default for [Domains { n }]. *)
val recommended_domains : unit -> int
