(** Execution backends: where force-pipeline work runs.

    The special-purpose machine routes each force class onto a dedicated
    resource (hardwired pair pipelines, programmable cores). On commodity
    hardware the analogous seam is an execution backend: [Serial] runs
    everything on the calling domain, [Domains] fans tiled work out over a
    persistent pool of OCaml 5 domains.

    Scheduling is static (no work stealing): a task index set is cut into
    contiguous tiles, one per slot, and slot [s] always receives tile [s].
    Combined with fixed-shape tree reductions ({!reduce_tree}), this makes
    parallel runs bit-for-bit deterministic: two runs on the same pool size
    produce identical floating-point results. Serial and parallel results
    differ only by summation order (relative differences at rounding level).

    A pool is cheap to keep around and is reused across steps; workers block
    on a condition variable between jobs. Pools are shut down explicitly with
    {!shutdown} or automatically at program exit.

    Phases that run on the pool when an executor with [n >= 2] slots is
    threaded through the engine ([mdsp run --domains N]): neighbor-list pair
    sums and 1-4 pairs ([Mdsp_ff.Pair_interactions]), bonded terms
    ([Mdsp_ff.Bonded.all]) and their slot reduction
    ([Mdsp_ff.Bonded.reduce_slots]), the whole GSE grid pipeline —
    charge spreading over per-slot scratch grids, both 3D FFT passes (tiled
    over independent 1-D lines), the k-space convolution, and the
    per-particle force gather ([Mdsp_longrange.Gse.reciprocal],
    [Mdsp_longrange.Fft.fft_3d]) — the neighbor-list rebuild, the boxed↔SoA
    sync, the integrator position/velocity sweeps, the batched SHAKE/RATTLE
    cluster sweeps scheduled by the [Mdsp_verify.Schedule] coloring
    certificate, and the thermostat sweeps — the Langevin O-step on
    per-atom derived streams and the velocity rescales
    ([Mdsp_md.Engine.step]). *)

type backend =
  | Serial  (** everything on the calling domain *)
  | Domains of { n : int }
      (** a persistent pool of [n] slots: the caller plus [n - 1] spawned
          domains; [n <= 1] degrades to [Serial] behavior *)

type t

(** The shared serial executor (no pool, no spawned domains, no
    sanitizer). *)
val serial : t

(** Raised by the access-set sanitizer (see {!create}, {!declare_write} and
    {!declare_read}) at the barrier when a parallel schedule is unsound:
    two slots declared overlapping writes to the same resource, a read on
    one slot overlaps a write on another slot (a read-write race), a
    declared range falls outside the resource, slots disagree about a
    resource's extent, or the declared writes fail to cover a resource
    whose full extent was announced. The message names the resource, the
    slots involved and the offending index ranges. *)
exception Race of string

(** [create ?sanitize backend] builds an executor. For [Domains { n }] with
    [n >= 2] this spawns [n - 1] worker domains that persist until
    {!shutdown} (or program exit, via an [at_exit] hook).

    With [sanitize:true] (default false) the executor runs in instrumented
    mode: slot bodies passed to {!parallel_run} register the index ranges
    they write via {!declare_write} and read via {!declare_read}, and after
    every barrier the executor checks the full conflict matrix — per
    resource, write ranges from different slots must be pairwise disjoint,
    no read range on one slot may overlap a write range on another slot
    (same-slot read-modify-write is allowed, overlapping reads are always
    allowed), and when an extent was declared the writes must cover it
    completely — turning a silent determinism violation into an immediate,
    attributed {!Race}. Sanitizing costs a per-barrier scan of the declared
    ranges (not of the data), so it is cheap enough for tests and
    verification runs but off by default in production.

    Phases that bypass the pool at one slot for speed must still take the
    declaring path when [sanitizing] is true, so the sanitized sweep and
    the {!set_observer} dataflow trace see every phase at every slot
    count. *)
val create : ?sanitize:bool -> backend -> t

(** True if the executor was created with [sanitize:true]. *)
val sanitizing : t -> bool

(** [declare_write ~slot ~resource ?total ~lo ~hi t] registers, from inside
    a {!parallel_run} slot body, that slot [slot] writes the half-open index
    range [lo, hi) of the named [resource] during the current parallel
    region. [total], when given, declares the resource's full extent
    [0, total): after the barrier the union of all declared write ranges
    must equal it exactly (no gaps, nothing out of bounds). No-op on
    executors built without [sanitize:true], so phases declare
    unconditionally.

    Each slot must only declare its own accesses ([slot] is the index the
    slot body received); declarations are buffered per slot without
    locking and validated on the caller after the barrier. *)
val declare_write :
  slot:int -> resource:string -> ?total:int -> lo:int -> hi:int -> t -> unit

(** [declare_read ~slot ~resource ?total ~lo ~hi t] registers, from inside
    a {!parallel_run} slot body, that slot [slot] reads [lo, hi) of the
    named [resource] during the current parallel region. Reads may overlap
    each other freely; a read overlapping another slot's declared write in
    the same barrier is a {!Race}. Same API and buffering as
    {!declare_write}. *)
val declare_read :
  slot:int -> resource:string -> ?total:int -> lo:int -> hi:int -> t -> unit

(** One declared access, as delivered to the barrier observer. *)
type access = {
  acc_slot : int;
  acc_resource : string;
  acc_lo : int;
  acc_hi : int;
  acc_total : int option;
}

(** Everything one barrier declared: the phase label passed to
    {!parallel_run} and the read/write access lists in slot order. *)
type barrier_record = {
  br_phase : string option;
  br_reads : access list;
  br_writes : access list;
}

(** [set_observer t (Some f)] installs a barrier observer on a sanitizing
    executor: after each successfully validated barrier that declared at
    least one access, [f] receives the {!barrier_record}. The dataflow
    analysis ([Mdsp_verify.Dataflow]) uses this to accumulate per-phase
    read/write footprints and derive the happens-before graph. No-op on
    executors built without [sanitize:true]. [None] uninstalls. *)
val set_observer : t -> (barrier_record -> unit) option -> unit

val backend : t -> backend

(** Number of parallel slots: 1 for [Serial], [max 1 n] for [Domains]. *)
val n_slots : t -> int

(** [parallel_run ?phase t f] runs [f s] for every slot [s] in
    [0 .. n_slots - 1], slot 0 on the calling domain, and returns when all
    slots finish. Slots must write to disjoint state. Exceptions raised by
    any slot are re-raised on the caller after the barrier. Serial
    executors just call [f 0]. [phase] names the barrier for the sanitizer
    observer and the dataflow phase graph; every production phase passes
    its registered name. *)
val parallel_run : ?phase:string -> t -> (int -> unit) -> unit

(** [map_slots t f] runs [f s] on every slot (like {!parallel_run}, with the
    same barrier) and returns the results as a slot-indexed array — the
    collective primitive the ensemble layer schedules replicas with. The
    array order depends only on the slot count, never on timing. Each slot
    declares both the read and the write of its own result cell, so the
    collective passes the conflict matrix without a special case. [phase]
    defaults to ["exec.map_slots"]. *)
val map_slots : ?phase:string -> t -> (int -> 'a) -> 'a array

(** [tile_bounds ~total ~ntiles] statically partitions [0 .. total - 1] into
    [ntiles] contiguous half-open ranges [(lo, hi)] whose sizes differ by at
    most one. Empty ranges are possible when [total < ntiles]. *)
val tile_bounds : total:int -> ntiles:int -> (int * int) array

(** Fixed-shape pairwise tree reduction (stride doubling): the combination
    order depends only on the array length, never on timing, so the result
    is deterministic. Raises [Invalid_argument] on an empty array. *)
val reduce_tree : ('a -> 'a -> 'a) -> 'a array -> 'a

(** [reduce_tree ( +. )] specialized to floats without closure allocation. *)
val sum_tree : float array -> float

(** Stop the pool's workers and join them. Idempotent; [Serial] executors
    are unaffected. Using {!parallel_run} after shutdown raises. *)
val shutdown : t -> unit

(** [Domain.recommended_domain_count], clamped to at least 1 — a sensible
    default for [Domains { n }]. *)
val recommended_domains : unit -> int
