(* Deterministic DSATUR graph coloring.

   The classic heuristic: repeatedly color the uncolored vertex with the
   highest saturation (number of distinct colors among its neighbors),
   breaking ties by higher degree and then by lower vertex id, always
   assigning the smallest color absent from its neighborhood. Every rule is
   a total order on vertices, so the coloring is a pure function of the
   adjacency structure — two runs (or two machines) produce the same
   batches, which is what lets the schedule certificate be byte-stable. *)

let dsatur ~n ~(adj : int list array) =
  if Array.length adj <> n then invalid_arg "Coloring.dsatur: adj size";
  let colors = Array.make n (-1) in
  let degree = Array.map List.length adj in
  (* Per-vertex set of neighbor colors, as a growable bitmap over color
     ids; n colors always suffice. *)
  let neigh_colors = Array.make_matrix n (max n 1) false in
  let saturation = Array.make n 0 in
  for _ = 1 to n do
    (* Pick: max saturation, then max degree, then min id. *)
    let best = ref (-1) in
    for v = 0 to n - 1 do
      if colors.(v) < 0 then
        let better =
          !best < 0
          || saturation.(v) > saturation.(!best)
          || (saturation.(v) = saturation.(!best)
             && degree.(v) > degree.(!best))
        in
        if better then best := v
    done;
    let v = !best in
    (* Smallest color not used by a neighbor. *)
    let c = ref 0 in
    while neigh_colors.(v).(!c) do incr c done;
    colors.(v) <- !c;
    List.iter
      (fun u ->
        if colors.(u) < 0 && not neigh_colors.(u).(!c) then begin
          neigh_colors.(u).(!c) <- true;
          saturation.(u) <- saturation.(u) + 1
        end)
      adj.(v)
  done;
  colors

let n_colors colors =
  Array.fold_left (fun acc c -> max acc (c + 1)) 0 colors

let proper ~adj colors =
  try
    Array.iteri
      (fun v ns ->
        List.iter (fun u -> if colors.(v) = colors.(u) then raise Exit) ns)
      adj;
    true
  with Exit -> false

let classes colors =
  let nc = n_colors colors in
  let sizes = Array.make nc 0 in
  Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) colors;
  let out = Array.init nc (fun c -> Array.make sizes.(c) 0) in
  let fill = Array.make nc 0 in
  (* Ascending vertex id within each class. *)
  Array.iteri
    (fun v c ->
      out.(c).(fill.(c)) <- v;
      fill.(c) <- fill.(c) + 1)
    colors;
  out
