(* Minimal JSON: just enough for the service protocol's one-line
   request/response records. Numbers are IEEE binary64 and are printed with
   %.17g (integers as %.0f), so encode/decode round-trips values exactly —
   the property the protocol fuzz tests pin. Strings are byte strings:
   control characters, quotes and backslashes are escaped, bytes >= 0x20
   pass through verbatim (UTF-8 stays UTF-8). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- printing --- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string v =
  if Float.is_nan v || Float.is_integer v = false || abs_float v >= 1e15 then
    Printf.sprintf "%.17g" v
  else Printf.sprintf "%.0f" v

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num v -> Buffer.add_string buf (number_to_string v)
  | Str s -> escape buf s
  | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  emit buf v;
  Buffer.contents buf

(* --- parsing (recursive descent) --- *)

exception Parse of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then fail "truncated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' -> Buffer.add_char buf '"'; go ()
          | '\\' -> Buffer.add_char buf '\\'; go ()
          | '/' -> Buffer.add_char buf '/'; go ()
          | 'n' -> Buffer.add_char buf '\n'; go ()
          | 'r' -> Buffer.add_char buf '\r'; go ()
          | 't' -> Buffer.add_char buf '\t'; go ()
          | 'b' -> Buffer.add_char buf '\b'; go ()
          | 'f' -> Buffer.add_char buf '\012'; go ()
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with Failure _ -> fail "bad \\u escape"
              in
              (* We only emit \u for control characters; decode the
                 ASCII range and refuse the rest rather than guess. *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else fail "non-ASCII \\u escape unsupported";
              go ()
          | _ -> fail "unknown escape")
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected a value";
    let lit = String.sub s start (!pos - start) in
    match float_of_string_opt lit with
    | Some v -> Num v
    | None -> fail (Printf.sprintf "bad number %S" lit)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          Arr (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let items = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := field () :: !items;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !items)
        end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse msg -> Error msg

(* --- accessors --- *)

let field name = function
  | Obj kvs -> List.assoc_opt name kvs
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_num = function Num v -> Some v | _ -> None

let to_int = function
  | Num v when Float.is_integer v && abs_float v < 1e15 ->
      Some (int_of_float v)
  | _ -> None
