(** Minimal JSON values for the service protocol's one-line records.

    [to_string] emits a single line (no newlines, no pretty-printing);
    [of_string] parses it back. Numbers are printed with enough digits
    ([%.17g], integers as [%.0f]) that [of_string (to_string v)]
    reconstructs every finite float bit for bit — the round-trip property
    the protocol relies on for exact observables. Strings are byte strings:
    bytes [>= 0x20] pass through verbatim (so UTF-8 survives), control
    characters and ["\\\""] are escaped. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** One-line rendering. *)
val to_string : t -> string

(** Parse a complete JSON value; [Error msg] carries the byte offset of the
    first problem. Rejects trailing garbage. *)
val of_string : string -> (t, string) result

(** [field name v] looks up an object member ([None] on non-objects and
    missing keys). *)
val field : string -> t -> t option

val to_str : t -> string option
val to_num : t -> float option

(** [to_int] succeeds only on integral numbers small enough to be exact. *)
val to_int : t -> int option
