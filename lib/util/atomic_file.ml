(* Crash-safe file replacement: write the full content to a sibling
   temporary name, then rename into place. POSIX rename is atomic within a
   filesystem, so readers observe either the old file or the complete new
   one — never a torn write. *)

let tmp_suffix = ".tmp"

let write path f =
  let tmp = path ^ tmp_suffix in
  let oc = open_out tmp in
  (match f oc with
  | () -> close_out oc
  | exception e ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e);
  Sys.rename tmp path

let write_string path s = write path (fun oc -> output_string oc s)

let fresh_dir ?(prefix = "mdsp") () =
  (* temp_file reserves a unique name; recycle it as a directory. *)
  let path = Filename.temp_file prefix ".dir" in
  Sys.remove path;
  Sys.mkdir path 0o700;
  path
