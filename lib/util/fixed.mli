(** Fixed-point arithmetic model of the special-purpose machine's datapaths.

    Anton-class machines keep positions and accumulate forces in fixed point:
    addition is exact and associative, which makes parallel force accumulation
    bit-reproducible regardless of summation order — a property floating point
    lacks. This module models a two's-complement signed fixed-point format
    with a configurable number of fractional bits and total width, with
    saturation on overflow.

    Values are carried in an [int64]; formats up to 63 bits total are
    supported. *)

type format = {
  frac_bits : int;  (** number of fractional bits *)
  total_bits : int;  (** total width including sign, <= 63 *)
}

(** Raised by [of_float_exn] when the value cannot be represented. *)
exception Overflow of float

val format : frac_bits:int -> total_bits:int -> format

(** Default position format: 32-bit, 26 fractional bits (box fractions). *)
val position_format : format

(** Default force-accumulation format: 48-bit, 22 fractional bits. *)
val force_format : format

(** Extra integer bits a whole-system scalar accumulator (energy, virial)
    gets over the per-atom force format — see {!widen}. *)
val accumulator_widening : int

(** [widen fmt] is [fmt] with {!accumulator_widening} more total bits
    (same resolution, capped at 63). Whole-system scalars sum over every
    pair rather than one atom's neighbors, so their worst case is larger
    by a factor of the atom count; the widened format absorbs it. *)
val widen : format -> format

(** [widen force_format]: the energy-accumulation format (58-bit, 22
    fractional bits). Same resolution as {!force_format}, so quantization
    behavior is unchanged — only the saturation point moves. *)
val energy_format : format

(** Smallest representable increment. *)
val resolution : format -> float

(** Largest representable magnitude. *)
val max_value : format -> float

(** Round-to-nearest conversion, saturating at the format bounds. *)
val of_float : format -> float -> int64

(** Like {!of_float}, but also reports whether the value was clamped —
    the silent-saturation event the datapath certifier reasons about. *)
val of_float_checked : format -> float -> int64 * bool

(** Round-to-nearest conversion; raises {!Overflow} instead of saturating. *)
val of_float_exn : format -> float -> int64

val to_float : format -> int64 -> float

(** Exact saturating addition of two fixed-point values of the same format. *)
val add : format -> int64 -> int64 -> int64

(** {!add} that also reports whether the sum saturated. *)
val add_checked : format -> int64 -> int64 -> int64 * bool

(** Fixed-point multiplication (result in the same format, rounded). *)
val mul : format -> int64 -> int64 -> int64

(** {!mul} that also reports whether the product saturated. *)
val mul_checked : format -> int64 -> int64 -> int64 * bool

(** [quantize fmt x] is the float obtained by a round trip through the
    format — the machine's view of [x]. *)
val quantize : format -> float -> float

(** Maximum absolute round-trip error of the format: half a resolution. *)
val quantization_error : format -> float

(** [sum fmt xs] converts each float, accumulates exactly in fixed point,
    and converts back. The result is independent of array order. *)
val sum : format -> float array -> float
