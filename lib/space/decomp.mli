(** Spatial domain decomposition for the machine model.

    The box is split into a grid of home boxes, one per node of the machine's
    3D torus. Each node owns the particles in its home box and imports the
    particles it needs from neighboring nodes. Three import policies are
    modeled:

    - [Full_shell]: import everything within the cutoff of the home box (each
      pair computed twice, no pair-result communication);
    - [Half_shell]: import only the half-space shell (each pair computed
      once; forces for imported particles are communicated back);
    - [Midpoint]: neutral-territory — a pair is computed on the node owning
      its minimum-image midpoint, so only particles within [cutoff / 2] of
      the home box are imported (a full shell of half the depth, the
      smallest region of the three when home boxes are small against the
      cutoff; forces are returned like [Half_shell]).

    Half-shell-class methods are what Anton-class machines use; the policy
    difference is the A5 communication ablation. The [Midpoint] region is
    also exactly the import region [Mdsp_machine.Decomp] realizes
    atom-by-atom in the multi-node machine model; this module keeps the
    analytic/counting view of it for the performance model. *)

open Mdsp_util

type policy = Full_shell | Half_shell | Midpoint

type t

(** [create box ~nodes ~cutoff ~policy] decomposes for a torus of dimensions
    [nodes = (px, py, pz)]. *)
val create : Pbc.t -> nodes:int * int * int -> cutoff:float -> policy:policy -> t

val node_count : t -> int
val dims : t -> int * int * int

(** Node that owns a position. *)
val owner : t -> Vec3.t -> int

(** [assign t positions] returns [home.(node)] = indices owned by each node. *)
val assign : t -> Vec3.t array -> int array array

(** [import_counts t positions] returns, per node, the number of remote
    particles the node must import under the configured policy. *)
val import_counts : t -> Vec3.t array -> int array

(** Volume of a single home box. *)
val home_volume : t -> float

(** Analytic import volume per node (for the performance model): the volume
    of the import region around one home box under the policy. *)
val import_volume : t -> float

val policy : t -> policy
