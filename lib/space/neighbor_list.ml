open Mdsp_util

type t = {
  cutoff : float;
  skin : float;
  exclusions : Exclusions.t option;
  exec : Exec.t;
  mutable box : Pbc.t;
  mutable ref_positions : Vec3.t array; (* snapshot at last rebuild *)
  mutable is : int array;
  mutable js : int array;
  mutable npairs : int;
  mutable rebuilds : int;
  mutable build_s : float; (* cumulative wall time spent in do_build *)
}

(* The pair generation is cut into a fixed number of tiles — contiguous
   ranges of Cell_list tiling units — chosen independently of the executor
   width. Each tile fills its own buffer; buffers are concatenated in tile
   order. The resulting pair list is therefore a pure function of the
   positions: bitwise identical whether the build ran serial or on 1, 2 or
   4 pool slots (slots just own contiguous tile ranges). *)
let max_build_tiles = 64

(* One tile's growable pair buffer. *)
type buf = { mutable bi : int array; mutable bj : int array; mutable cnt : int }

let buf_push b i j =
  let cap = Array.length b.bi in
  if b.cnt >= cap then begin
    let cap' = max 64 (cap * 2) in
    let bi' = Array.make cap' 0 and bj' = Array.make cap' 0 in
    Array.blit b.bi 0 bi' 0 b.cnt;
    Array.blit b.bj 0 bj' 0 b.cnt;
    b.bi <- bi';
    b.bj <- bj'
  end;
  b.bi.(b.cnt) <- (if i < j then i else j);
  b.bj.(b.cnt) <- (if i < j then j else i);
  b.cnt <- b.cnt + 1

let do_build t positions =
  let t0 = Unix.gettimeofday () in
  let r = t.cutoff +. t.skin in
  let r2 = r *. r in
  let exec = t.exec in
  let cl = Cell_list.build ~exec t.box positions ~cutoff:r in
  let units = Cell_list.tile_units cl in
  let ntiles = max 1 (min units max_build_tiles) in
  let tile_ranges = Exec.tile_bounds ~total:units ~ntiles in
  let bufs =
    Array.init ntiles (fun _ -> { bi = [||]; bj = [||]; cnt = 0 })
  in
  let ns = Exec.n_slots exec in
  let slot_tiles = Exec.tile_bounds ~total:ntiles ~ntiles:ns in
  let n = Array.length positions in
  Exec.parallel_run ~phase:"nbuild" exec (fun s ->
      let tlo, thi = slot_tiles.(s) in
      (* Each slot owns a contiguous run of tile buffers. The pair scan
         walks the whole CSR cell structure and, through it, arbitrary
         positions. *)
      Exec.declare_write ~slot:s ~resource:"nlist.tiles" ~total:ntiles
        ~lo:tlo ~hi:thi exec;
      Exec.declare_read ~slot:s ~resource:"cell.bin" ~total:n ~lo:0 ~hi:n
        exec;
      Exec.declare_read ~slot:s ~resource:"state.positions" ~lo:0 ~hi:n
        exec;
      for tile = tlo to thi - 1 do
        let b = bufs.(tile) in
        let lo, hi = tile_ranges.(tile) in
        Cell_list.iter_range_pairs cl lo hi (fun i j ->
            if Pbc.dist2 t.box positions.(i) positions.(j) <= r2 then begin
              let skip =
                match t.exclusions with
                | Some ex -> Exclusions.excluded ex i j
                | None -> false
              in
              if not skip then buf_push b i j
            end)
      done);
  (* Concatenate in tile order (serial: a handful of blits). *)
  let total = Array.fold_left (fun a b -> a + b.cnt) 0 bufs in
  if Array.length t.is < total then begin
    let cap = max 64 total in
    t.is <- Array.make cap 0;
    t.js <- Array.make cap 0
  end;
  let off = ref 0 in
  Array.iter
    (fun b ->
      Array.blit b.bi 0 t.is !off b.cnt;
      Array.blit b.bj 0 t.js !off b.cnt;
      off := !off + b.cnt)
    bufs;
  t.npairs <- total;
  t.ref_positions <- Array.copy positions;
  t.rebuilds <- t.rebuilds + 1;
  t.build_s <- t.build_s +. (Unix.gettimeofday () -. t0)

let create ?exclusions ?(exec = Exec.serial) ~cutoff ~skin box positions =
  if cutoff <= 0. then invalid_arg "Neighbor_list.create: cutoff";
  if skin < 0. then invalid_arg "Neighbor_list.create: skin";
  let t =
    {
      cutoff;
      skin;
      exclusions;
      exec;
      box;
      ref_positions = [||];
      is = [||];
      js = [||];
      npairs = 0;
      rebuilds = -1;
      build_s = 0.;
    }
  in
  do_build t positions;
  t

let pairs t = Array.init t.npairs (fun k -> (t.is.(k), t.js.(k)))
let length t = t.npairs
let raw_pairs t = (t.is, t.js)

let iter t f =
  for k = 0 to t.npairs - 1 do
    f t.is.(k) t.js.(k)
  done

let tiles t ~ntiles = Exec.tile_bounds ~total:t.npairs ~ntiles

let iter_range t lo hi f =
  if lo < 0 || hi > t.npairs || lo > hi then
    invalid_arg "Neighbor_list.iter_range";
  for k = lo to hi - 1 do
    f t.is.(k) t.js.(k)
  done

let needs_rebuild t positions =
  let limit2 = t.skin *. t.skin /. 4. in
  let n = Array.length positions in
  if n <> Array.length t.ref_positions then true
  else begin
    let moved = ref false in
    let i = ref 0 in
    while (not !moved) && !i < n do
      if Pbc.dist2 t.box positions.(!i) t.ref_positions.(!i) > limit2 then
        moved := true;
      incr i
    done;
    !moved
  end

let rebuild ?box t positions =
  (match box with Some b -> t.box <- b | None -> ());
  do_build t positions;
  t.rebuilds

let maybe_rebuild ?box t positions =
  let box_changed =
    match box with
    | Some b -> b <> t.box
    | None -> false
  in
  if box_changed || needs_rebuild t positions then begin
    ignore (rebuild ?box t positions);
    true
  end
  else false

let rebuild_count t = t.rebuilds
let build_seconds t = t.build_s
let ref_positions t = Array.copy t.ref_positions
let cutoff t = t.cutoff
let skin t = t.skin
let box t = t.box
