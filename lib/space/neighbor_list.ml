open Mdsp_util

type t = {
  cutoff : float;
  skin : float;
  exclusions : Exclusions.t option;
  mutable box : Pbc.t;
  mutable ref_positions : Vec3.t array; (* snapshot at last rebuild *)
  mutable is : int array;
  mutable js : int array;
  mutable npairs : int;
  mutable rebuilds : int;
}

let do_build t positions =
  let r = t.cutoff +. t.skin in
  let r2 = r *. r in
  let cl = Cell_list.build t.box positions ~cutoff:r in
  let cap = ref (max 64 (Array.length t.is)) in
  let is = ref (Array.make !cap 0) in
  let js = ref (Array.make !cap 0) in
  let n = ref 0 in
  let push i j =
    if !n >= !cap then begin
      cap := !cap * 2;
      let is' = Array.make !cap 0 and js' = Array.make !cap 0 in
      Array.blit !is 0 is' 0 !n;
      Array.blit !js 0 js' 0 !n;
      is := is';
      js := js'
    end;
    !is.(!n) <- (if i < j then i else j);
    !js.(!n) <- (if i < j then j else i);
    incr n
  in
  Cell_list.iter_pairs cl (fun i j ->
      if Pbc.dist2 t.box positions.(i) positions.(j) <= r2 then begin
        let skip =
          match t.exclusions with
          | Some ex -> Exclusions.excluded ex i j
          | None -> false
        in
        if not skip then push i j
      end);
  t.is <- !is;
  t.js <- !js;
  t.npairs <- !n;
  t.ref_positions <- Array.copy positions;
  t.rebuilds <- t.rebuilds + 1

let create ?exclusions ~cutoff ~skin box positions =
  if cutoff <= 0. then invalid_arg "Neighbor_list.create: cutoff";
  if skin < 0. then invalid_arg "Neighbor_list.create: skin";
  let t =
    {
      cutoff;
      skin;
      exclusions;
      box;
      ref_positions = [||];
      is = [||];
      js = [||];
      npairs = 0;
      rebuilds = -1;
    }
  in
  do_build t positions;
  t

let pairs t = Array.init t.npairs (fun k -> (t.is.(k), t.js.(k)))
let length t = t.npairs

let iter t f =
  for k = 0 to t.npairs - 1 do
    f t.is.(k) t.js.(k)
  done

let tiles t ~ntiles = Exec.tile_bounds ~total:t.npairs ~ntiles

let iter_range t lo hi f =
  if lo < 0 || hi > t.npairs || lo > hi then
    invalid_arg "Neighbor_list.iter_range";
  for k = lo to hi - 1 do
    f t.is.(k) t.js.(k)
  done

let needs_rebuild t positions =
  let limit2 = t.skin *. t.skin /. 4. in
  let n = Array.length positions in
  if n <> Array.length t.ref_positions then true
  else begin
    let moved = ref false in
    let i = ref 0 in
    while (not !moved) && !i < n do
      if Pbc.dist2 t.box positions.(!i) t.ref_positions.(!i) > limit2 then
        moved := true;
      incr i
    done;
    !moved
  end

let rebuild ?box t positions =
  (match box with Some b -> t.box <- b | None -> ());
  do_build t positions;
  t.rebuilds

let maybe_rebuild ?box t positions =
  let box_changed =
    match box with
    | Some b -> b <> t.box
    | None -> false
  in
  if box_changed || needs_rebuild t positions then begin
    ignore (rebuild ?box t positions);
    true
  end
  else false

let rebuild_count t = t.rebuilds
let ref_positions t = Array.copy t.ref_positions
let cutoff t = t.cutoff
let skin t = t.skin
let box t = t.box
