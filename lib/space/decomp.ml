open Mdsp_util

type policy = Full_shell | Half_shell | Midpoint

type t = {
  box : Pbc.t;
  px : int;
  py : int;
  pz : int;
  cutoff : float;
  policy : policy;
}

let create box ~nodes:(px, py, pz) ~cutoff ~policy =
  if px <= 0 || py <= 0 || pz <= 0 then
    invalid_arg "Decomp.create: node dims must be positive";
  if cutoff <= 0. then invalid_arg "Decomp.create: cutoff must be positive";
  { box; px; py; pz; cutoff; policy }

let node_count t = t.px * t.py * t.pz
let dims t = (t.px, t.py, t.pz)

let coords t (v : Vec3.t) =
  let f = Pbc.to_fractional t.box v in
  let clamp hi x = if x >= hi then hi - 1 else if x < 0 then 0 else x in
  let cx = clamp t.px (int_of_float (f.Vec3.x *. float_of_int t.px)) in
  let cy = clamp t.py (int_of_float (f.Vec3.y *. float_of_int t.py)) in
  let cz = clamp t.pz (int_of_float (f.Vec3.z *. float_of_int t.pz)) in
  (cx, cy, cz)

let owner t v =
  let cx, cy, cz = coords t v in
  cx + (t.px * (cy + (t.py * cz)))

let assign t positions =
  let buckets = Array.make (node_count t) [] in
  Array.iteri
    (fun i p ->
      let o = owner t p in
      buckets.(o) <- i :: buckets.(o))
    positions;
  Array.map (fun l -> Array.of_list (List.rev l)) buckets

let home_volume t =
  Pbc.volume t.box /. float_of_int (node_count t)

(* Home box edge lengths. *)
let edges t =
  let open Pbc in
  ( t.box.lx /. float_of_int t.px,
    t.box.ly /. float_of_int t.py,
    t.box.lz /. float_of_int t.pz )

(* Volume of the region within r of a box of dims (hx,hy,hz), minus the
   box itself: faces + quarter-cylinder edges + eighth-sphere corners. *)
let shell_volume (hx, hy, hz) r =
  let faces = 2. *. r *. ((hx *. hy) +. (hy *. hz) +. (hx *. hz)) in
  let edges_v = Float.pi *. r *. r *. (hx +. hy +. hz) in
  let corners = 4. /. 3. *. Float.pi *. (r ** 3.) in
  faces +. edges_v +. corners

let import_volume t =
  let e = edges t in
  match t.policy with
  | Full_shell -> shell_volume e t.cutoff
  | Half_shell -> shell_volume e t.cutoff /. 2.
  | Midpoint ->
      (* Neutral-territory: a pair is computed where its midpoint lives,
         so a node needs only the atoms within cutoff/2 of its home box —
         a full shell of half the depth. *)
      shell_volume e (t.cutoff /. 2.)

let import_counts t positions =
  let n_nodes = node_count t in
  let counts = Array.make n_nodes 0 in
  let hx, hy, hz = edges t in
  let r =
    match t.policy with
    | Midpoint -> t.cutoff /. 2.
    | Full_shell | Half_shell -> t.cutoff
  in
  (* For each particle, find all nodes whose home box it is within r of
     (other than its owner); those nodes import it. Under Half_shell each
     node imports only from its positive half-space neighborhood, halving
     the count on average; we model that by counting ordered imports and
     halving for Half_shell. *)
  let reach_x = 1 + int_of_float (ceil (r /. hx)) in
  let reach_y = 1 + int_of_float (ceil (r /. hy)) in
  let reach_z = 1 + int_of_float (ceil (r /. hz)) in
  let wrap v n = ((v mod n) + n) mod n in
  Array.iter
    (fun p ->
      let cx, cy, cz = coords t p in
      let own = cx + (t.px * (cy + (t.py * cz))) in
      for dz = -reach_z to reach_z do
        for dy = -reach_y to reach_y do
          for dx = -reach_x to reach_x do
            if not (dx = 0 && dy = 0 && dz = 0) then begin
              let nx = wrap (cx + dx) t.px
              and ny = wrap (cy + dy) t.py
              and nz = wrap (cz + dz) t.pz in
              let node = nx + (t.px * (ny + (t.py * nz))) in
              if node <> own then begin
                (* Distance from p to the neighbor's home box (min-image). *)
                let box_lo_x = float_of_int nx *. hx in
                let box_lo_y = float_of_int ny *. hy in
                let box_lo_z = float_of_int nz *. hz in
                let f = Pbc.wrap t.box p in
                let axis_dist lo len l x =
                  (* distance from x to interval [lo, lo+len] under period l *)
                  let d1 = x -. (lo +. len) and d2 = lo -. x in
                  let inside = x >= lo && x <= lo +. len in
                  if inside then 0.
                  else begin
                    let d = Float.min (abs_float d1) (abs_float d2) in
                    Float.min d (l -. Float.max (abs_float d1) (abs_float d2))
                  end
                in
                let ddx = axis_dist box_lo_x hx t.box.Pbc.lx f.Vec3.x in
                let ddy = axis_dist box_lo_y hy t.box.Pbc.ly f.Vec3.y in
                let ddz = axis_dist box_lo_z hz t.box.Pbc.lz f.Vec3.z in
                if (ddx *. ddx) +. (ddy *. ddy) +. (ddz *. ddz) <= r *. r then
                  counts.(node) <- counts.(node) + 1
              end
            end
          done
        done
      done)
    positions;
  match t.policy with
  | Full_shell | Midpoint -> counts
  | Half_shell -> Array.map (fun c -> (c + 1) / 2) counts

let policy t = t.policy
