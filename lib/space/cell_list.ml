open Mdsp_util

(* Compressed (CSR) cell list: particles are counting-sorted by cell into
   [order], with [cell_start] giving each cell's half-open slice. Compared
   to the previous head/next linked lists this walks contiguous index runs
   (the flat-array layout the SoA kernels want) and gives the rebuild a
   natural tiling: a tile is a contiguous range of home cells, and every
   candidate pair is owned by exactly one home cell. *)
type t = {
  nx : int;
  ny : int;
  nz : int;
  n : int;  (** particle count *)
  ncells : int;
  cell_start : int array;  (** length ncells + 1; cell c spans
                               [cell_start.(c), cell_start.(c+1)) of order *)
  order : int array;  (** particle indices sorted by cell, ascending index
                          within each cell (stable counting sort) *)
  cell_of : int array;
  degenerate : bool;  (** fewer than 3 cells along some axis *)
}

(* Floored-division binning: map an *unwrapped* coordinate onto its periodic
   cell. [Float.floor] rounds toward negative infinity (unlike the previous
   truncate-and-clamp, which parked barely-negative coordinates in cell 0 or
   cell n-1 depending on how [Float.rem] rounded), and the double modulo
   brings any out-of-box excursion back to the right periodic image. *)
let bin_axis ~l ~ncell x =
  let c = int_of_float (Float.floor (x /. l *. float_of_int ncell)) in
  ((c mod ncell) + ncell) mod ncell

let build ?(exec = Exec.serial) ?(positions_resource = "state.positions")
    box positions ~cutoff =
  if cutoff <= 0. then invalid_arg "Cell_list.build: cutoff must be positive";
  let open Pbc in
  let dims l = max 1 (int_of_float (l /. cutoff)) in
  let nx = dims box.lx and ny = dims box.ly and nz = dims box.lz in
  let n = Array.length positions in
  let ncells = nx * ny * nz in
  let cell_of = Array.make n 0 in
  (* Bin phase: pure per-atom work, tiled over the pool. The write-set is
     the atom slice of [cell_of], declared so the race sanitizer covers the
     rebuild like any other parallel phase. *)
  let ns = Exec.n_slots exec in
  let tiles = Exec.tile_bounds ~total:n ~ntiles:ns in
  Exec.parallel_run ~phase:"cell.bin" exec (fun s ->
      let lo, hi = tiles.(s) in
      Exec.declare_write ~slot:s ~resource:"cell.bin" ~total:n ~lo ~hi exec;
      (* Binning reads exactly its own atom tile; [positions_resource]
         names whose positions these are (engine state vs decomposition
         working copy) for the dataflow graph. *)
      Exec.declare_read ~slot:s ~resource:positions_resource ~lo ~hi exec;
      for i = lo to hi - 1 do
        let p = positions.(i) in
        let cx = bin_axis ~l:box.lx ~ncell:nx p.Vec3.x in
        let cy = bin_axis ~l:box.ly ~ncell:ny p.Vec3.y in
        let cz = bin_axis ~l:box.lz ~ncell:nz p.Vec3.z in
        cell_of.(i) <- cx + (nx * (cy + (ny * cz)))
      done);
  (* Counting sort (serial: O(n + ncells), trivially cheap next to the pair
     scan). Placing particles in ascending index order keeps the sort
     stable, so the structure is a pure function of the positions —
     independent of the executor that built it. *)
  let cell_start = Array.make (ncells + 1) 0 in
  for i = 0 to n - 1 do
    let c = cell_of.(i) in
    cell_start.(c + 1) <- cell_start.(c + 1) + 1
  done;
  for c = 1 to ncells do
    cell_start.(c) <- cell_start.(c) + cell_start.(c - 1)
  done;
  let fill = Array.sub cell_start 0 ncells in
  let order = Array.make n 0 in
  for i = 0 to n - 1 do
    let c = cell_of.(i) in
    order.(fill.(c)) <- i;
    fill.(c) <- fill.(c) + 1
  done;
  {
    nx;
    ny;
    nz;
    n;
    ncells;
    cell_start;
    order;
    cell_of;
    degenerate = nx < 3 || ny < 3 || nz < 3;
  }

let dims t = (t.nx, t.ny, t.nz)
let cell_of t i = t.cell_of.(i)
let degenerate t = t.degenerate

(* The 13 half-space offsets: all (dx,dy,dz) with dz>0, or dz=0 && dy>0, or
   dz=0 && dy=0 && dx>0. Together with intra-cell pairs this enumerates each
   unordered cell pair once. *)
let half_offsets =
  [|
    (1, 0, 0);
    (-1, 1, 0); (0, 1, 0); (1, 1, 0);
    (-1, -1, 1); (0, -1, 1); (1, -1, 1);
    (-1, 0, 1); (0, 0, 1); (1, 0, 1);
    (-1, 1, 1); (0, 1, 1); (1, 1, 1);
  |]

(* Tiling units: each unordered pair is owned by exactly one unit, so a
   partition of the unit range partitions the pair enumeration. With enough
   cells the unit is the home cell; degenerate boxes fall back to all-pairs
   with the first index as the owner. *)
let tile_units t = if t.degenerate then t.n else t.ncells

let iter_cell_pair t ca cb f =
  (* All pairs (i in ca, j in cb), ca <> cb. *)
  let sa = t.cell_start.(ca) and ea = t.cell_start.(ca + 1) in
  let sb = t.cell_start.(cb) and eb = t.cell_start.(cb + 1) in
  for a = sa to ea - 1 do
    let i = t.order.(a) in
    for b = sb to eb - 1 do
      f i t.order.(b)
    done
  done

let iter_intra t c f =
  let s = t.cell_start.(c) and e = t.cell_start.(c + 1) in
  for a = s to e - 1 do
    let i = t.order.(a) in
    for b = a + 1 to e - 1 do
      f i t.order.(b)
    done
  done

let wrap v n = ((v mod n) + n) mod n

let iter_range_pairs t lo hi f =
  if lo < 0 || hi > tile_units t || lo > hi then
    invalid_arg "Cell_list.iter_range_pairs";
  if t.degenerate then
    (* Too few cells for the offset scheme to avoid duplicates; fall back to
       all-pairs owned by the first index, which is correct and only hits
       tiny systems. *)
    for i = lo to hi - 1 do
      for j = i + 1 to t.n - 1 do
        f i j
      done
    done
  else
    for c = lo to hi - 1 do
      let cx = c mod t.nx in
      let cy = c / t.nx mod t.ny in
      let cz = c / (t.nx * t.ny) in
      iter_intra t c f;
      Array.iter
        (fun (dx, dy, dz) ->
          let nx' = wrap (cx + dx) t.nx
          and ny' = wrap (cy + dy) t.ny
          and nz' = wrap (cz + dz) t.nz in
          let c' = nx' + (t.nx * (ny' + (t.ny * nz'))) in
          iter_cell_pair t c c' f)
        half_offsets
    done

let iter_pairs t f = iter_range_pairs t 0 (tile_units t) f

let iter_neighbors t i f =
  if t.degenerate then
    for j = 0 to t.n - 1 do
      if j <> i then f j
    done
  else begin
    let c = t.cell_of.(i) in
    let cx = c mod t.nx in
    let cy = c / t.nx mod t.ny in
    let cz = c / (t.nx * t.ny) in
    for dz = -1 to 1 do
      for dy = -1 to 1 do
        for dx = -1 to 1 do
          let c' =
            wrap (cx + dx) t.nx
            + (t.nx * (wrap (cy + dy) t.ny + (t.ny * wrap (cz + dz) t.nz)))
          in
          let s = t.cell_start.(c') and e = t.cell_start.(c' + 1) in
          for a = s to e - 1 do
            let j = t.order.(a) in
            if j <> i then f j
          done
        done
      done
    done
  end
