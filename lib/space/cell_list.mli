(** Spatial binning over an orthorhombic periodic box, stored compressed
    (CSR): particles are counting-sorted by cell, so each cell is a
    contiguous slice of one flat index array — the layout the SoA force
    kernels and the tiled neighbor-list rebuild consume directly.

    Particles are binned into cells of edge at least the interaction cutoff,
    so all pairs within the cutoff are found by scanning each cell and its 26
    periodic neighbors (half of them, for half-enumeration). Binning uses
    floored division and a positive modulo, so coordinates outside the
    primary box (constraint drift, chain random walks) land in the correct
    periodic cell instead of being clamped to a boundary cell. *)

open Mdsp_util

type t

(** [build ?exec box positions ~cutoff] bins the positions (wrapped or not).
    The cell edge is the smallest length >= cutoff that divides each box
    edge evenly; if a box edge is shorter than [3 * cutoff] the structure
    still works but degenerates toward all-pairs in that dimension.

    The per-atom bin phase runs tiled on [exec] (default serial) and
    declares its write-set (resource ["cell.bin"]) plus its per-tile read
    of the positions for the race sanitizer; [positions_resource] (default
    ["state.positions"]) names the position array in the dataflow graph —
    the decomposition layer passes its own working copy's name.
    The result is a pure function of [box], [positions] and [cutoff] —
    identical for any executor or slot count. *)
val build :
  ?exec:Exec.t -> ?positions_resource:string -> Pbc.t -> Vec3.t array ->
  cutoff:float -> t

(** Number of cells along each axis. *)
val dims : t -> int * int * int

(** True if some axis has fewer than 3 cells, forcing the all-pairs
    fallback. *)
val degenerate : t -> bool

(** Number of tiling units for {!iter_range_pairs}: the cell count, or the
    particle count for degenerate boxes. Every unordered candidate pair is
    owned by exactly one unit, so a partition of [0, tile_units t) into
    ranges partitions the pair enumeration. *)
val tile_units : t -> int

(** [iter_range_pairs t lo hi f] calls [f i j] exactly once for every
    candidate pair owned by a unit in [lo, hi) — the tile primitive the
    parallel neighbor-list rebuild is built on. [iter_range_pairs t 0
    (tile_units t)] enumerates every pair exactly once. *)
val iter_range_pairs : t -> int -> int -> (int -> int -> unit) -> unit

(** [iter_pairs t f] calls [f i j] exactly once for every unordered pair of
    distinct particles whose minimum-image distance may be within the cutoff
    (i.e. all pairs in the same or neighboring cells, i < j not guaranteed,
    but each unordered pair exactly once). *)
val iter_pairs : t -> (int -> int -> unit) -> unit

(** [iter_neighbors t i f] calls [f j] for each candidate neighbor [j <> i]
    of particle [i] (both orders; a given unordered pair appears in both
    particles' neighbor scans). *)
val iter_neighbors : t -> int -> (int -> unit) -> unit

(** Cell index assigned to particle [i]. *)
val cell_of : t -> int -> int
