(** Verlet neighbor lists with a skin radius.

    The list stores all non-excluded pairs within [cutoff + skin]; it stays
    valid until some particle has moved more than [skin / 2] since the last
    rebuild, at which point [maybe_rebuild] rebuilds it. This is the standard
    trade-off the A3 ablation experiment sweeps.

    The rebuild is a tiled cluster-pair build: bin (CSR counting sort in
    {!Cell_list}), then per-tile candidate-pair generation with the cutoff
    and exclusion filters, each tile filling its own buffer, concatenated in
    tile order. The tile count is fixed (independent of the executor width),
    so the stored pair list is a pure function of the positions — bitwise
    identical across serial and any pool size — while the work runs as a
    sanitized parallel [Exec] phase (resources ["cell.bin"] and
    ["nlist.tiles"]). *)

open Mdsp_util

(** [create ?exclusions ?exec ~cutoff ~skin box positions] builds the list.
    [exec] (default serial) is the executor every rebuild runs on; the pair
    list content does not depend on it. *)

type t

val create :
  ?exclusions:Exclusions.t -> ?exec:Exec.t -> cutoff:float -> skin:float ->
  Pbc.t -> Vec3.t array -> t

(** Pairs currently in the list, as parallel arrays (i, j) with i < j. *)
val pairs : t -> (int * int) array

(** Number of stored pairs. *)
val length : t -> int

(** The underlying flat index arrays ([i]s and [j]s, parallel, i < j; only
    indices below {!length} are meaningful). Shared with the list and
    invalidated by the next rebuild; read-only by convention. The SoA pair
    kernels iterate these directly so their inner loop stays closure- and
    allocation-free. *)
val raw_pairs : t -> int array * int array

(** [iter t f] applies [f i j] to every stored pair. *)
val iter : t -> (int -> int -> unit) -> unit

(** Tiled view of the pair list for static domain-parallel scheduling:
    [tiles t ~ntiles] cuts the pairs into [ntiles] contiguous half-open
    ranges of near-equal size (see {!Mdsp_util.Exec.tile_bounds}). The
    ranges are only valid until the next rebuild. *)
val tiles : t -> ntiles:int -> (int * int) array

(** [iter_range t lo hi f] applies [f i j] to the stored pairs with indices
    in [lo, hi) — one tile of {!tiles}. *)
val iter_range : t -> int -> int -> (int -> int -> unit) -> unit

(** True if some particle moved more than skin/2 since the last build. *)
val needs_rebuild : t -> Vec3.t array -> bool

(** Rebuild unconditionally for the given positions (and possibly new box,
    for barostats). Returns the number of rebuilds performed so far. *)
val rebuild : ?box:Pbc.t -> t -> Vec3.t array -> int

(** Rebuild only if [needs_rebuild]; returns true if a rebuild happened. *)
val maybe_rebuild : ?box:Pbc.t -> t -> Vec3.t array -> bool

(** Total rebuild count (for the ablation bench). *)
val rebuild_count : t -> int

(** Cumulative wall-clock seconds spent inside rebuilds since creation —
    the [nbuild] sub-phase surfaced by [Force_calc.timings]. *)
val build_seconds : t -> float

(** Copy of the positions the list was last built from. Checkpoints record
    these so a restart can {!rebuild} from the same reference and reproduce
    both the pair list (content and order) and the displacement tracking of
    the interrupted run exactly. *)
val ref_positions : t -> Vec3.t array

val cutoff : t -> float
val skin : t -> float
val box : t -> Pbc.t
