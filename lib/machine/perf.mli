(** Per-step performance model.

    Converts a workload description into per-step times for each machine
    resource (pair pipelines, flexible subsystem, network, long-range FFT)
    and an aggregate ns/day figure. The machine overlaps communication with
    computation; a step is bounded by its slowest resource plus a global
    synchronization term. All per-resource costs are exposed so the E7
    cycle-breakdown experiment can report them. *)

type workload = {
  n_atoms : int;
  density : float;  (** atoms per cubic angstrom *)
  cutoff : float;
  dt_fs : float;
  bonded_terms : int;
  n_constraints : int;
  flex_ops_per_step : float;
      (** extra programmable-core work added by methods (kernel DSL cost) *)
  pair_passes : float;
      (** multiplier on the pair workload; 1.0 for plain MD, e.g. 2.0 for a
          dual-topology FEP pass *)
  fft_grid : (int * int * int) option;
  method_bytes_per_step : float;
      (** extra per-step communication a method needs (e.g. REMD exchange) *)
}

val plain_workload :
  n_atoms:int -> density:float -> cutoff:float -> dt_fs:float -> workload

(** Derive a workload from an actual system. *)
val of_system :
  ?dt_fs:float -> ?fft_grid:int * int * int ->
  Mdsp_ff.Topology.t -> Mdsp_util.Pbc.t -> workload

type breakdown = {
  htis_s : float;  (** pair pipelines *)
  flex_s : float;  (** programmable cores: bonded + integration + methods *)
  comm_s : float;  (** import/export + method communication *)
  fft_s : float;  (** long-range grid work incl. transposes *)
  lr_spread_s : float;  (** long-range sub-phase: charge spreading *)
  lr_fft_s : float;  (** long-range sub-phase: FFT passes + transposes *)
  lr_convolve_s : float;  (** long-range sub-phase: k-space scale-by-Ghat *)
  lr_gather_s : float;  (** long-range sub-phase: force interpolation *)
  sync_s : float;  (** global synchronization *)
  step_s : float;  (** resulting step time *)
}

val step_time : Config.t -> workload -> breakdown

(** Nanoseconds of simulated time per wall-clock day. *)
val ns_per_day : Config.t -> workload -> float

(** [step_time_decomposed cfg w ~comm] is {!step_time} with the network
    terms taken from a priced {!Comm_model.step} (a real decomposition
    frame's import/force-return wire times and, when present, its
    transpose phase replacing the analytic transpose estimate) instead of
    the analytic half-shell import volume. [cfg.nodes] should match the
    node grid [comm] was priced on for the compute terms to be
    consistent. *)
val step_time_decomposed :
  Config.t -> workload -> comm:Comm_model.step -> breakdown

(** ns/day from {!step_time_decomposed}. *)
val ns_per_day_decomposed :
  Config.t -> workload -> comm:Comm_model.step -> float

(** Pairs within the cutoff per step (half counting), from density. *)
val pair_count : workload -> float

(** One line of the model-vs-measurement comparison: the analytic per-step
    time {!step_time} assigns to a machine resource next to the measured
    per-step wall time of the execution-backend phase that plays the same
    role on the host ({!Mdsp_md.Force_calc.timings}). *)
type resource_row = {
  resource : string;
  model_s : float;  (** analytic per-step seconds from {!step_time} *)
  measured_s : float option;  (** measured per-step seconds, when mapped *)
}

(** [resource_rows breakdown timings] pairs each modeled resource with the
    measured phase: pair pipelines <- pair + 1-4 phase, flex cores <-
    bonded + bias, long-range <- k-space/grid, network <- neighbor
    rebuilds. The long-range row is followed by four indented sub-rows
    (spread / fft / convolve / gather) breaking down both the modeled and
    the measured grid pipeline ({!Mdsp_md.Force_calc.timings} [lr_*]
    fields). [sync] has no host analogue; [measured_s] is [None] there and
    everywhere when [timings.calls = 0].

    [?comm] appends the priced torus phases (import / force return /
    grid transpose, from {!Comm_model.phases}) as indented sub-rows of
    the network row; wire times have no host analogue, so their
    [measured_s] is [None]. *)
val resource_rows :
  ?comm:Comm_model.step ->
  breakdown -> Mdsp_md.Force_calc.timings -> resource_row list
