(** Functional model of the high-throughput interaction subsystem.

    The HTIS evaluates tabulated radial functions for every in-range pair:
    one table per LJ type pair, plus a single charge-scaled electrostatic
    shape table ([q_i q_j *\ table(r^2)]). Forces are accumulated in exact
    fixed point, which makes the result independent of pair order — the
    machine's bit-reproducibility property, exercised by the E3 experiment
    and the determinism tests. *)

open Mdsp_util

type table_set = {
  lj : Interp_table.t array array;  (** indexed by (type_i, type_j) *)
  electrostatic : Interp_table.t option;
      (** shape table for qq * f(r2); [None] for chargeless systems *)
}

(** Build a pair evaluator backed by the tables — a drop-in replacement for
    the analytic evaluator, letting the whole MD engine "run on the
    machine". *)
val evaluator :
  table_set -> types:int array -> charges:float array ->
  cutoff:float -> Mdsp_ff.Pair_interactions.evaluator

type result = {
  forces : Vec3.t array;
  energy : float;
  saturations : int;
      (** number of fixed-point conversions or additions that clamped —
          zero on any run the datapath certifier proved safe *)
}

(** The (force, energy) accumulation formats a run with [?format] uses:
    forces accumulate per atom in [format] itself, the whole-system energy
    in [Fixed.widen format]. The datapath certifier calls this so its
    verdicts cover exactly the formats the runtime executes. *)
val formats_used :
  ?format:Mdsp_util.Fixed.format -> unit ->
  Mdsp_util.Fixed.format * Mdsp_util.Fixed.format

(** [compute_forces ?perm ?format ts ~types ~charges ~cutoff box nlist
    positions] evaluates all neighbor-list pairs in the order given by
    [perm] (a permutation of pair indices; identity if omitted) and
    accumulates each force component in [format] (default
    {!Mdsp_util.Fixed.force_format}; exposed for the accumulation-width
    ablation) and the energy in [Fixed.widen format]. Because fixed-point
    addition is exact, the forces are bitwise identical for every [perm] —
    the determinism property. [result.saturations] counts every silent
    clamp the run hit. *)
val compute_forces :
  ?perm:int array ->
  ?format:Mdsp_util.Fixed.format ->
  table_set ->
  types:int array ->
  charges:float array ->
  cutoff:float ->
  Pbc.t ->
  Mdsp_space.Neighbor_list.t ->
  Vec3.t array ->
  result

(** Pipeline cycles to process [pairs] pair interactions on one node. *)
val cycles : Config.t -> pairs:int -> float

(** Total SRAM footprint of a table set, in bytes (every node stores the
    full set). *)
val table_set_bytes : table_set -> int

(** True if the set fits one node's table SRAM
    ({!Config.t.table_sram_bytes}). *)
val tables_fit : Config.t -> table_set -> bool
