type workload = {
  n_atoms : int;
  density : float;
  cutoff : float;
  dt_fs : float;
  bonded_terms : int;
  n_constraints : int;
  flex_ops_per_step : float;
  pair_passes : float;
  fft_grid : (int * int * int) option;
  method_bytes_per_step : float;
}

let plain_workload ~n_atoms ~density ~cutoff ~dt_fs =
  {
    n_atoms;
    density;
    cutoff;
    dt_fs;
    bonded_terms = 0;
    n_constraints = 0;
    flex_ops_per_step = 0.;
    pair_passes = 1.0;
    fft_grid = None;
    method_bytes_per_step = 0.;
  }

let of_system ?(dt_fs = 2.0) ?fft_grid (topo : Mdsp_ff.Topology.t) box =
  let n = Mdsp_ff.Topology.n_atoms topo in
  {
    n_atoms = n;
    density = float_of_int n /. Mdsp_util.Pbc.volume box;
    cutoff = 9.0;
    dt_fs;
    bonded_terms = Mdsp_ff.Bonded.term_count topo;
    n_constraints = Mdsp_ff.Topology.n_constraints topo;
    flex_ops_per_step = 0.;
    pair_passes = 1.0;
    fft_grid;
    method_bytes_per_step = 0.;
  }

let pair_count w =
  let vol_sphere = 4. /. 3. *. Float.pi *. (w.cutoff ** 3.) in
  float_of_int w.n_atoms *. w.density *. vol_sphere /. 2. *. w.pair_passes

(* Flexible-subsystem op costs (arithmetic ops per item). These encode the
   relative expense of each stage on the programmable cores. *)
let ops_per_bonded_term = 60.
let ops_per_atom_integration = 40.
let ops_per_constraint = 50.
let ops_per_grid_point = 12. (* spreading + gather work per grid pt, amortized *)

(* Partition of [ops_per_grid_point] across the grid-pipeline stages, used
   only for the modeled sub-phase rows; their sum must equal the total so
   the sub-model stays consistent with [fft_s]. *)
let ops_spread = 5.
let ops_convolve = 2.
let ops_gather = 5.

type breakdown = {
  htis_s : float;
  flex_s : float;
  comm_s : float;
  fft_s : float;
  lr_spread_s : float;
  lr_fft_s : float;
  lr_convolve_s : float;
  lr_gather_s : float;
  sync_s : float;
  step_s : float;
}

(* Analytic estimate of the two all-to-all FFT transpose passes; the
   decomposed path replaces exactly this term with a priced
   Comm_model.transpose phase. *)
let transpose_time cfg w =
  match w.fft_grid with
  | None -> 0.
  | Some (gx, gy, gz) ->
      let nodes = float_of_int (Config.node_count cfg) in
      let inject_bw =
        cfg.Config.link_gb_s *. 1e9 *. float_of_int cfg.Config.links_per_node
      in
      let transpose_bytes = float_of_int (gx * gy * gz) /. nodes *. 16. *. 2. in
      (transpose_bytes /. inject_bw)
      +. (2. *. float_of_int (Config.max_hops cfg)
         *. cfg.Config.hop_latency_ns *. 1e-9)

let step_time cfg w =
  let nodes = float_of_int (Config.node_count cfg) in
  let clock_hz = cfg.Config.clock_ghz *. 1e9 in
  (* --- pair pipelines --- *)
  let pairs_per_node = pair_count w /. nodes in
  let htis_cycles =
    pairs_per_node
    /. (float_of_int cfg.Config.ppips_per_node
       *. cfg.Config.ppip_pairs_per_cycle)
  in
  let htis_s = htis_cycles /. clock_hz in
  (* --- flexible subsystem --- *)
  let flex_ops =
    (float_of_int w.bonded_terms *. ops_per_bonded_term)
    +. (float_of_int w.n_atoms *. ops_per_atom_integration)
    +. (float_of_int w.n_constraints *. ops_per_constraint)
    +. w.flex_ops_per_step
  in
  let flex_node_throughput =
    float_of_int cfg.Config.flex_cores_per_node
    *. cfg.Config.flex_ops_per_cycle *. clock_hz
  in
  let flex_s = flex_ops /. nodes /. flex_node_throughput in
  (* --- import/export communication --- *)
  let px, py, pz = cfg.Config.nodes in
  let vol = float_of_int w.n_atoms /. w.density in
  let box_edge = vol ** (1. /. 3.) in
  let hx = box_edge /. float_of_int px
  and hy = box_edge /. float_of_int py
  and hz = box_edge /. float_of_int pz in
  let r = w.cutoff in
  let import_volume =
    (* half-shell import region around one home box *)
    (2. *. r *. ((hx *. hy) +. (hy *. hz) +. (hx *. hz))
    +. (Float.pi *. r *. r *. (hx +. hy +. hz))
    +. (4. /. 3. *. Float.pi *. (r ** 3.)))
    /. 2.
  in
  let import_atoms = w.density *. import_volume in
  let import_bytes =
    import_atoms *. float_of_int cfg.Config.bytes_per_atom *. 2.
    (* positions in + forces back *)
  in
  let inject_bw =
    cfg.Config.link_gb_s *. 1e9 *. float_of_int cfg.Config.links_per_node
  in
  let comm_s =
    ((import_bytes +. (w.method_bytes_per_step /. nodes)) /. inject_bw)
    +. (cfg.Config.hop_latency_ns *. 1e-9
       *. ceil (r /. Float.min hx (Float.min hy hz)))
  in
  (* --- long-range FFT --- *)
  let fft_s, lr_spread_s, lr_fft_s, lr_convolve_s, lr_gather_s =
    match w.fft_grid with
    | None -> (0., 0., 0., 0., 0.)
    | Some (gx, gy, gz) ->
        let k = float_of_int (gx * gy * gz) in
        let compute =
          (k /. nodes)
          *. (Float.max 1. (log (k) /. log 2.) *. 2. +. ops_per_grid_point)
          /. flex_node_throughput
        in
        (* Two all-to-all transpose passes of the (complex) grid. *)
        let transpose = transpose_time cfg w in
        (* Sub-phase attribution: the butterflies and transposes are the
           FFT proper; ops_per_grid_point splits across spread, convolve
           (scale by Ghat) and gather, so the four sum to [fft_s]. *)
        let per_pt ops = k /. nodes *. ops /. flex_node_throughput in
        ( compute +. transpose,
          per_pt ops_spread,
          (k /. nodes *. (Float.max 1. (log k /. log 2.) *. 2.)
           /. flex_node_throughput)
          +. transpose,
          per_pt ops_convolve,
          per_pt ops_gather )
  in
  (* --- synchronization --- *)
  let sync_s =
    cfg.Config.sync_latency_ns *. 1e-9
    *. Float.max 1. (log nodes /. log 2.)
  in
  (* The machine overlaps aggressively: a step is bounded by its slowest
     resource, plus the serial long-range phase and the barrier. *)
  let step_s = Float.max htis_s (Float.max flex_s comm_s) +. fft_s +. sync_s in
  {
    htis_s;
    flex_s;
    comm_s;
    fft_s;
    lr_spread_s;
    lr_fft_s;
    lr_convolve_s;
    lr_gather_s;
    sync_s;
    step_s;
  }

let ns_per_day cfg w =
  let b = step_time cfg w in
  let steps_per_day = 86400. /. b.step_s in
  steps_per_day *. w.dt_fs *. 1e-6

(* --- decomposition-driven variant ---

   Same compute terms as [step_time], but the network terms come from a
   priced Comm_model.step (real per-node import/force-return traffic and
   hop distances from a Decomp frame) instead of the analytic half-shell
   volume: comm_s becomes the import + force-return wire times (plus the
   method bytes), and the FFT's analytic transpose estimate is replaced by
   the priced transpose phase when one is present. *)

let step_time_decomposed cfg w ~(comm : Comm_model.step) =
  let b = step_time cfg w in
  let nodes = float_of_int (Config.node_count cfg) in
  let inject_bw =
    cfg.Config.link_gb_s *. 1e9 *. float_of_int cfg.Config.links_per_node
  in
  let comm_s =
    comm.Comm_model.import.Comm_model.time_s
    +. comm.Comm_model.force_return.Comm_model.time_s
    +. (w.method_bytes_per_step /. nodes /. inject_bw)
  in
  let fft_s, lr_fft_s =
    match comm.Comm_model.transpose with
    | Some tp when w.fft_grid <> None ->
        let delta = tp.Comm_model.time_s -. transpose_time cfg w in
        (b.fft_s +. delta, b.lr_fft_s +. delta)
    | _ -> (b.fft_s, b.lr_fft_s)
  in
  let step_s = Float.max b.htis_s (Float.max b.flex_s comm_s) +. fft_s +. b.sync_s in
  { b with comm_s; fft_s; lr_fft_s; step_s }

let ns_per_day_decomposed cfg w ~comm =
  let b = step_time_decomposed cfg w ~comm in
  86400. /. b.step_s *. w.dt_fs *. 1e-6

(* --- model vs measurement ---

   The live force pipeline records wall time per phase
   (Mdsp_md.Force_calc.timings); each phase maps onto the machine resource
   that would execute it: neighbor-list pairs + 1-4 terms -> pair
   pipelines, bonded terms + biases -> programmable cores, the k-space /
   grid phase -> long-range, neighbor rebuilds -> the import/communication
   machinery. *)

type resource_row = {
  resource : string;
  model_s : float;  (** analytic per-step seconds from {!step_time} *)
  measured_s : float option;  (** measured per-step seconds, when mapped *)
}

let resource_rows ?comm b (tm : Mdsp_md.Force_calc.timings) =
  let per = Mdsp_md.Force_calc.timings_per_call tm in
  let m v = if tm.Mdsp_md.Force_calc.calls = 0 then None else Some v in
  (* Torus-phase sub-rows of the network row, present when a priced
     Comm_model.step is supplied. Wire times have no host analogue, so
     [measured_s] stays [None]. *)
  let comm_rows =
    match comm with
    | None -> []
    | Some (c : Comm_model.step) ->
        List.map
          (fun (p : Comm_model.phase) ->
            {
              resource = "  " ^ p.Comm_model.label;
              model_s = p.Comm_model.time_s;
              measured_s = None;
            })
          (Comm_model.phases c)
  in
  [
    { resource = "pair pipelines"; model_s = b.htis_s; measured_s = m per.pair_s };
    {
      resource = "flex cores";
      model_s = b.flex_s;
      measured_s = m (per.bonded_s +. per.bias_s);
    };
    { resource = "long-range"; model_s = b.fft_s; measured_s = m per.longrange_s };
    (* GSE grid-pipeline sub-phases: a breakdown of the long-range row
       (model and measurement both), indented in table output. *)
    {
      resource = "  spread";
      model_s = b.lr_spread_s;
      measured_s = m per.lr_spread_s;
    };
    { resource = "  fft"; model_s = b.lr_fft_s; measured_s = m per.lr_fft_s };
    {
      resource = "  convolve";
      model_s = b.lr_convolve_s;
      measured_s = m per.lr_convolve_s;
    };
    {
      resource = "  gather";
      model_s = b.lr_gather_s;
      measured_s = m per.lr_gather_s;
    };
    { resource = "network"; model_s = b.comm_s; measured_s = m per.neighbor_s };
    (* Neighbor-list sub-phase: the tiled cell-list + pair-list build slice
       of the network row (import/export walks dominate the remainder). *)
    { resource = "  nbuild"; model_s = b.comm_s; measured_s = m per.nbuild_s };
  ]
  @ comm_rows
  @ [
      { resource = "sync"; model_s = b.sync_s; measured_s = None };
      {
        resource = "step";
        model_s = b.step_s;
        measured_s = m (Mdsp_md.Force_calc.timings_total per);
      };
    ]
