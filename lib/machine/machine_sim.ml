open Mdsp_util

type result = {
  forces : Vec3.t array;
  energy : float;
  pairs_per_node : int array;
  saturations : int;
}

let reduction_depth ~nodes:(px, py, pz) =
  let rec go d m = if m <= 1 then d else go (d + 1) ((m + 1) / 2) in
  go 0 (px * py * pz)

let compute ?(format = Fixed.force_format) ~nodes ts ~types ~charges ~cutoff
    box nlist positions =
  let n = Array.length positions in
  let decomp =
    Mdsp_space.Decomp.create box ~nodes ~cutoff
      ~policy:Mdsp_space.Decomp.Half_shell
  in
  let n_nodes = Mdsp_space.Decomp.node_count decomp in
  (* Assign each pair to the node owning its first atom (the simplified
     ownership rule; any deterministic rule preserves the property). *)
  let pairs = Mdsp_space.Neighbor_list.pairs nlist in
  let node_pairs = Array.make n_nodes [] in
  Array.iter
    (fun (i, j) ->
      let node = Mdsp_space.Decomp.owner decomp positions.(i) in
      node_pairs.(node) <- (i, j) :: node_pairs.(node))
    pairs;
  (* Per-node fixed-point accumulation; the energy in the widened
     whole-system format. *)
  let fmt, efmt = Htis.formats_used ~format () in
  let sats = ref 0 in
  let conv f x =
    let v, s = Fixed.of_float_checked f x in
    if s then incr sats;
    v
  in
  let acc f a b =
    let v, s = Fixed.add_checked f a b in
    if s then incr sats;
    v
  in
  let pairs_per_node = Array.make n_nodes 0 in
  let rc2 = cutoff *. cutoff in
  let partials =
    Array.mapi
      (fun node plist ->
        pairs_per_node.(node) <- List.length plist;
        (* Node-local accumulators. *)
        let fx = Array.make n 0L in
        let fy = Array.make n 0L in
        let fz = Array.make n 0L in
        let e_acc = ref 0L in
        List.iter
          (fun (i, j) ->
            let d = Pbc.min_image box positions.(i) positions.(j) in
            let r2 = Vec3.norm2 d in
            if r2 < rc2 then begin
              let e, f_over_r =
                let e_lj, f_lj =
                  Interp_table.eval ts.Htis.lj.(types.(i)).(types.(j)) r2
                in
                match ts.Htis.electrostatic with
                | None -> (e_lj, f_lj)
                | Some es ->
                    let qq = Units.coulomb *. charges.(i) *. charges.(j) in
                    if qq = 0. then (e_lj, f_lj)
                    else begin
                      let e_es, f_es = Interp_table.eval es r2 in
                      (e_lj +. (qq *. e_es), f_lj +. (qq *. f_es))
                    end
              in
              let gx = conv fmt (f_over_r *. d.Vec3.x) in
              let gy = conv fmt (f_over_r *. d.Vec3.y) in
              let gz = conv fmt (f_over_r *. d.Vec3.z) in
              fx.(i) <- acc fmt fx.(i) gx;
              fy.(i) <- acc fmt fy.(i) gy;
              fz.(i) <- acc fmt fz.(i) gz;
              fx.(j) <- acc fmt fx.(j) (Int64.neg gx);
              fy.(j) <- acc fmt fy.(j) (Int64.neg gy);
              fz.(j) <- acc fmt fz.(j) (Int64.neg gz);
              e_acc := acc efmt !e_acc (conv efmt e)
            end)
          plist;
        (fx, fy, fz, e_acc))
      node_pairs
  in
  (* "Network reduction": combine node partials pairwise in a fixed-shape
     binary tree, still in fixed point — the torus reduction the certifier
     bounds level by level. Exact adds make the shape irrelevant to the
     result; the tree matches how the hardware actually combines them. *)
  let stride = ref 1 in
  while !stride < n_nodes do
    let i = ref 0 in
    while !i + !stride < n_nodes do
      let fx, fy, fz, e = partials.(!i) in
      let gx, gy, gz, e' = partials.(!i + !stride) in
      for a = 0 to n - 1 do
        fx.(a) <- acc fmt fx.(a) gx.(a);
        fy.(a) <- acc fmt fy.(a) gy.(a);
        fz.(a) <- acc fmt fz.(a) gz.(a)
      done;
      e := acc efmt !e !e';
      i := !i + (2 * !stride)
    done;
    stride := 2 * !stride
  done;
  let totals_x, totals_y, totals_z, total_e = partials.(0) in
  let forces =
    Array.init n (fun i ->
        Vec3.make
          (Fixed.to_float fmt totals_x.(i))
          (Fixed.to_float fmt totals_y.(i))
          (Fixed.to_float fmt totals_z.(i)))
  in
  {
    forces;
    energy = Fixed.to_float efmt !total_e;
    pairs_per_node;
    saturations = !sats;
  }

let imbalance r =
  let n = Array.length r.pairs_per_node in
  if n = 0 then 1.
  else begin
    let total = Array.fold_left ( + ) 0 r.pairs_per_node in
    let mean = float_of_int total /. float_of_int n in
    if mean = 0. then 1.
    else
      float_of_int (Array.fold_left max 0 r.pairs_per_node) /. mean
  end
