(** Per-step 3D-torus communication model.

    Converts one frame's {!Decomp.stats} into the three per-step traffic
    phases of the multi-node machine and their wire times under a
    machine's link parameters ({!Config.t}: [link_gb_s] per link and
    direction, [links_per_node] usable for injection, [hop_latency_ns]
    per traversed link, [bytes_per_atom] payload):

    - {e position import}: each node sends its home atoms that fall in a
      neighbor's import region ([stats.imports] edges, [src -> dst]);
    - {e force return}: the same edges reversed — one force record per
      imported atom travels back ([dst -> src]), so its byte volume
      equals the import phase's exactly (conservation);
    - {e grid transpose} (optional): the two all-to-all row/column passes
      of the distributed long-range FFT, [grid_points / nodes] complex
      (16-byte) values per node per pass.

    Units: [bytes] are bytes on the wire per step, [time_s] seconds,
    hops are link traversals. A phase's time is the busiest node's
    injection/ejection serialization ([max_node_bytes] over the
    aggregate link bandwidth) plus the worst-case hop latency — links
    are modeled as contention-free beyond the endpoint serialization.

    Everything here is arithmetic on {!Decomp.stats}; it inherits that
    record's determinism (identical for any executor or slot count). *)

type phase = {
  label : string;
  messages : int;  (** distinct point-to-point transfers per step *)
  bytes : float;  (** total bytes on the network per step *)
  sent_bytes : float array;  (** per source rank: bytes injected *)
  recv_bytes : float array;  (** per destination rank: bytes ejected *)
  max_node_bytes : float;
      (** busiest node: max over ranks of max (sent, received) *)
  max_hops : int;  (** longest route used, in link traversals *)
  avg_hops : float;  (** byte-weighted mean route length *)
  time_s : float;  (** modeled phase time, seconds *)
}

type step = {
  import : phase;  (** position import, [src -> dst] *)
  force_return : phase;  (** force return, [dst -> src] *)
  transpose : phase option;  (** FFT transposes, when a grid is given *)
  total_s : float;  (** sum of the phase times, seconds *)
}

(** The phases of a step in order (import, force return, transpose when
    present). *)
val phases : step -> phase list

(** [of_stats cfg ?grid stats] prices one decomposition frame on the
    machine [cfg]. The torus dimensions come from [stats] (so a 64-node
    decomposition is priced on a 64-node torus even if [cfg.nodes]
    differs); [cfg] supplies only the link parameters. [grid], when
    given, adds the long-range transpose phase for an FFT of that many
    points distributed over the decomposition's nodes. *)
val of_stats : Config.t -> ?grid:int * int * int -> Decomp.stats -> step
