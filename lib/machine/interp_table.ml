open Mdsp_util

(* 26-bit signed mantissa with a per-interval block exponent: the
   "pseudo-floating-point" table-entry format. *)
let coeff_format = Fixed.format ~frac_bits:24 ~total_bits:26

type t = {
  r_min : float;
  r_cut : float;
  n : int;
  width : float; (* interval width in r^2 *)
  r_min2 : float;
  r_cut2 : float;
  (* Flattened [n][4] coefficient arrays. *)
  e_coeffs : float array;
  f_coeffs : float array;
  quantized : bool;
  cfmt : Fixed.format; (* mantissa format the blocks were quantized to *)
}

(* Block quantization: scale the interval's 8 coefficients by the largest
   magnitude (rounded up to a power of two, like a shared exponent), then
   round each to the mantissa grid. *)
let quantize_block cfmt coeffs =
  let m = Array.fold_left (fun a c -> Float.max a (abs_float c)) 0. coeffs in
  if m = 0. then coeffs
  else begin
    let scale = ldexp 1. (snd (frexp m)) in
    Array.map (fun c -> Fixed.quantize cfmt (c /. scale) *. scale) coeffs
  end

let make ?(coeff_format = coeff_format) ~r_min ~r_cut ~n ~quantize
    ~energy_coeffs ~force_coeffs () =
  if n <= 0 then invalid_arg "Interp_table.make: n must be positive";
  if r_cut <= r_min || r_min < 0. then
    invalid_arg "Interp_table.make: need 0 <= r_min < r_cut";
  if Array.length energy_coeffs <> n || Array.length force_coeffs <> n then
    invalid_arg "Interp_table.make: coefficient count mismatch";
  let r_min2 = r_min *. r_min and r_cut2 = r_cut *. r_cut in
  let width = (r_cut2 -. r_min2) /. float_of_int n in
  let e_coeffs = Array.make (4 * n) 0. in
  let f_coeffs = Array.make (4 * n) 0. in
  for i = 0 to n - 1 do
    let ec = energy_coeffs.(i) and fc = force_coeffs.(i) in
    if Array.length ec <> 4 || Array.length fc <> 4 then
      invalid_arg "Interp_table.make: each interval needs 4 coefficients";
    let block = Array.append ec fc in
    let block = if quantize then quantize_block coeff_format block else block in
    for d = 0 to 3 do
      e_coeffs.((4 * i) + d) <- block.(d);
      f_coeffs.((4 * i) + d) <- block.(4 + d)
    done
  done;
  { r_min; r_cut; n; width; r_min2; r_cut2; e_coeffs; f_coeffs;
    quantized = quantize; cfmt = coeff_format }

let n_intervals t = t.n
let r_min t = t.r_min
let r_cut t = t.r_cut
let quantized t = t.quantized
let width t = t.width
let domain2 t = (t.r_min2, t.r_cut2)
let format_of t = t.cfmt

let eval t r2 =
  if r2 >= t.r_cut2 then (0., 0.)
  else begin
    let r2c = if r2 < t.r_min2 then t.r_min2 else r2 in
    let x = (r2c -. t.r_min2) /. t.width in
    let i = min (t.n - 1) (int_of_float x) in
    let u = r2c -. t.r_min2 -. (float_of_int i *. t.width) in
    let base = 4 * i in
    let horner c =
      c.(base)
      +. (u
          *. (c.(base + 1) +. (u *. (c.(base + 2) +. (u *. c.(base + 3))))))
    in
    (horner t.e_coeffs, horner t.f_coeffs)
  end

let coeff_blocks t =
  Array.init t.n (fun i ->
      Array.init 8 (fun d ->
          if d < 4 then t.e_coeffs.((4 * i) + d)
          else t.f_coeffs.((4 * i) + d - 4)))

let sram_bytes t =
  (* 8 coefficients per interval, each mantissa stored in whole bytes
     (the default 26-bit format occupies 32-bit words), plus the shared
     block exponent. *)
  let word = ((t.cfmt.Fixed.total_bits + 7) / 8 + 3) / 4 * 4 in
  t.n * ((8 * word) + 1)
