open Mdsp_util
module Cell_list = Mdsp_space.Cell_list

type t = { box : Pbc.t; px : int; py : int; pz : int; cutoff : float }

let create box ~nodes:(px, py, pz) ~cutoff =
  if px <= 0 || py <= 0 || pz <= 0 then
    invalid_arg "Decomp.create: node dims must be positive";
  if cutoff <= 0. then invalid_arg "Decomp.create: cutoff must be positive";
  if cutoff > Pbc.min_edge box /. 2. then
    invalid_arg "Decomp.create: cutoff must be <= half the shortest box edge";
  { box; px; py; pz; cutoff }

let dims t = (t.px, t.py, t.pz)
let node_count t = t.px * t.py * t.pz
let torus t = Torus.create (dims t)

let edges t =
  let open Pbc in
  ( t.box.lx /. float_of_int t.px,
    t.box.ly /. float_of_int t.py,
    t.box.lz /. float_of_int t.pz )

let coords t (v : Vec3.t) =
  let f = Pbc.to_fractional t.box v in
  let clamp hi x = if x >= hi then hi - 1 else if x < 0 then 0 else x in
  let cx = clamp t.px (int_of_float (f.Vec3.x *. float_of_int t.px)) in
  let cy = clamp t.py (int_of_float (f.Vec3.y *. float_of_int t.py)) in
  let cz = clamp t.pz (int_of_float (f.Vec3.z *. float_of_int t.pz)) in
  (cx, cy, cz)

let owner t v =
  let cx, cy, cz = coords t v in
  cx + (t.px * (cy + (t.py * cz)))

let pair_owner t a b =
  let d = Pbc.min_image t.box a b in
  owner t (Pbc.wrap t.box (Vec3.add b (Vec3.scale 0.5 d)))

(* Distance from coordinate [x] to the interval [lo, lo + len] on a ring of
   period [l] (same helper as Mdsp_space.Decomp). *)
let axis_dist lo len l x =
  let d1 = x -. (lo +. len) and d2 = lo -. x in
  if x >= lo && x <= lo +. len then 0.
  else
    let d = Float.min (abs_float d1) (abs_float d2) in
    Float.min d (l -. Float.max (abs_float d1) (abs_float d2))

let wrap v n = ((v mod n) + n) mod n

(* Ranks on which a (wrapped) position is resident: its owner plus every
   node whose home box lies within cutoff/2. The epsilon pad keeps pairs at
   exactly the cutoff resident despite rounding in the box-distance test;
   it can only enlarge the import region (sound for the residency
   invariant, negligible for traffic). Offsets are clamped so each torus
   node is visited at most once even when the import reach wraps around a
   short axis. *)
let resident_nodes t (p : Vec3.t) own =
  let hx, hy, hz = edges t in
  let rr = (t.cutoff /. 2.) +. 1e-9 in
  let rr2 = rr *. rr in
  let reach len = 1 + int_of_float (ceil (rr /. len)) in
  let lo_off r dim = -min r (dim / 2) and hi_off r dim = min r ((dim - 1) / 2) in
  let f = Pbc.wrap t.box p in
  let cx, cy, cz = coords t f in
  let rx = reach hx and ry = reach hy and rz = reach hz in
  let acc = ref [] in
  for dz = lo_off rz t.pz to hi_off rz t.pz do
    for dy = lo_off ry t.py to hi_off ry t.py do
      for dx = lo_off rx t.px to hi_off rx t.px do
        let nx = wrap (cx + dx) t.px
        and ny = wrap (cy + dy) t.py
        and nz = wrap (cz + dz) t.pz in
        let node = nx + (t.px * (ny + (t.py * nz))) in
        if node <> own then begin
          let ddx = axis_dist (float_of_int nx *. hx) hx t.box.Pbc.lx f.Vec3.x in
          let ddy = axis_dist (float_of_int ny *. hy) hy t.box.Pbc.ly f.Vec3.y in
          let ddz = axis_dist (float_of_int nz *. hz) hz t.box.Pbc.lz f.Vec3.z in
          if (ddx *. ddx) +. (ddy *. ddy) +. (ddz *. ddz) <= rr2 then
            acc := node :: !acc
        end
      done
    done
  done;
  Array.of_list (own :: List.rev !acc)

type stats = {
  nodes : int * int * int;
  n_atoms : int;
  owner_of_atom : int array;
  home_atoms : int array;
  import_atoms : int array;
  pairs_per_node : int array;
  imports : (int * int * int) array;
  n_pairs : int;
  singlenode_pairs : int;
  residency_violations : int;
  pair_once_ok : bool;
}

let mem v (a : int array) =
  let n = Array.length a in
  let rec go i = i < n && (a.(i) = v || go (i + 1)) in
  go 0

(* Fixed tile count for the pair-assignment phase, independent of the pool
   width (same idiom as the neighbor-list rebuild): slots own contiguous
   tile runs, and per-slot partials merge by integer addition, so the
   result is identical at any slot count. *)
let pair_tiles = 64

let analyze ?(exec = Exec.serial) t positions =
  let n = Array.length positions in
  let nn = node_count t in
  let wp = Array.map (Pbc.wrap t.box) positions in
  let slots = Exec.n_slots exec in
  let atom_tiles = Exec.tile_bounds ~total:n ~ntiles:slots in
  (* Phase 1: home owners (pure per atom). *)
  let owner_of_atom = Array.make n 0 in
  Exec.parallel_run ~phase:"decomp.owner" exec (fun s ->
      let lo, hi = atom_tiles.(s) in
      Exec.declare_write ~slot:s ~resource:"decomp.owner" ~total:n ~lo ~hi exec;
      Exec.declare_read ~slot:s ~resource:"decomp.positions" ~lo ~hi exec;
      for i = lo to hi - 1 do
        owner_of_atom.(i) <- owner t wp.(i)
      done);
  (* Phase 2: resident sets (pure per atom). *)
  let atom_nodes = Array.make n [||] in
  Exec.parallel_run ~phase:"decomp.resident" exec (fun s ->
      let lo, hi = atom_tiles.(s) in
      Exec.declare_write ~slot:s ~resource:"decomp.resident" ~total:n ~lo ~hi
        exec;
      Exec.declare_read ~slot:s ~resource:"decomp.positions" ~lo ~hi exec;
      Exec.declare_read ~slot:s ~resource:"decomp.owner" ~total:n ~lo ~hi
        exec;
      for i = lo to hi - 1 do
        atom_nodes.(i) <- resident_nodes t wp.(i) owner_of_atom.(i)
      done);
  (* Serial aggregation of residency into per-node and per-edge counts. *)
  let home_atoms = Array.make nn 0 in
  Array.iter (fun o -> home_atoms.(o) <- home_atoms.(o) + 1) owner_of_atom;
  let import_atoms = Array.make nn 0 in
  let imports_tbl = Hashtbl.create 256 in
  for i = 0 to n - 1 do
    let own = owner_of_atom.(i) in
    Array.iter
      (fun v ->
        if v <> own then begin
          import_atoms.(v) <- import_atoms.(v) + 1;
          let key = (v, own) in
          let c = Option.value ~default:0 (Hashtbl.find_opt imports_tbl key) in
          Hashtbl.replace imports_tbl key (c + 1)
        end)
      atom_nodes.(i)
  done;
  let imports =
    Hashtbl.fold (fun (d, s) c acc -> (d, s, c) :: acc) imports_tbl []
    |> List.sort compare |> Array.of_list
  in
  (* Phase 3: midpoint pair assignment over the cell list's tiling units
     (the build itself is the sanitized "cell.bin" phase). *)
  let cell =
    Cell_list.build ~exec ~positions_resource:"decomp.positions" t.box wp
      ~cutoff:t.cutoff
  in
  let units = Cell_list.tile_units cell in
  let unit_tiles = Exec.tile_bounds ~total:units ~ntiles:pair_tiles in
  let tile_runs = Exec.tile_bounds ~total:pair_tiles ~ntiles:slots in
  let counts = Array.init slots (fun _ -> Array.make nn 0) in
  let viol = Array.make slots 0 in
  let r2 = t.cutoff *. t.cutoff in
  Exec.parallel_run ~phase:"decomp.pairs" exec (fun s ->
      let tlo, thi = tile_runs.(s) in
      Exec.declare_write ~slot:s ~resource:"decomp.pairs" ~total:pair_tiles
        ~lo:tlo ~hi:thi exec;
      (* The pair scan walks the whole cell structure, both endpoints of
         arbitrary pairs and every atom's resident set. *)
      Exec.declare_read ~slot:s ~resource:"cell.bin" ~total:n ~lo:0 ~hi:n
        exec;
      Exec.declare_read ~slot:s ~resource:"decomp.positions" ~lo:0 ~hi:n
        exec;
      Exec.declare_read ~slot:s ~resource:"decomp.resident" ~total:n ~lo:0
        ~hi:n exec;
      let c = counts.(s) in
      for tile = tlo to thi - 1 do
        let ulo, uhi = unit_tiles.(tile) in
        Cell_list.iter_range_pairs cell ulo uhi (fun i j ->
            if Pbc.dist2 t.box wp.(i) wp.(j) <= r2 then begin
              let v = pair_owner t wp.(i) wp.(j) in
              c.(v) <- c.(v) + 1;
              if not (mem v atom_nodes.(i) && mem v atom_nodes.(j)) then
                viol.(s) <- viol.(s) + 1
            end)
      done);
  let pairs_per_node = Array.make nn 0 in
  for s = 0 to slots - 1 do
    let c = counts.(s) in
    for v = 0 to nn - 1 do
      pairs_per_node.(v) <- pairs_per_node.(v) + c.(v)
    done
  done;
  let n_pairs = Array.fold_left ( + ) 0 pairs_per_node in
  let residency_violations = Array.fold_left ( + ) 0 viol in
  (* Independent serial recount of interacting pairs on the calling
     domain: the single-node reference the assignment must reproduce. *)
  let singlenode_pairs = ref 0 in
  Cell_list.iter_pairs cell (fun i j ->
      if Pbc.dist2 t.box wp.(i) wp.(j) <= r2 then incr singlenode_pairs);
  let singlenode_pairs = !singlenode_pairs in
  {
    nodes = dims t;
    n_atoms = n;
    owner_of_atom;
    home_atoms;
    import_atoms;
    pairs_per_node;
    imports;
    n_pairs;
    singlenode_pairs;
    residency_violations;
    pair_once_ok = n_pairs = singlenode_pairs && residency_violations = 0;
  }

let max_pairs_per_node stats = Array.fold_left max 0 stats.pairs_per_node

let brute_pairs t positions =
  let n = Array.length positions in
  let r2 = t.cutoff *. t.cutoff in
  let c = ref 0 in
  for i = 0 to n - 2 do
    for j = i + 1 to n - 1 do
      if Pbc.dist2 t.box positions.(i) positions.(j) <= r2 then incr c
    done
  done;
  !c
