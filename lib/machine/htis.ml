open Mdsp_util

type table_set = {
  lj : Interp_table.t array array;
  electrostatic : Interp_table.t option;
}

let eval_pair ts types charges i j r2 =
  let e_lj, f_lj = Interp_table.eval ts.lj.(types.(i)).(types.(j)) r2 in
  match ts.electrostatic with
  | None -> (e_lj, f_lj)
  | Some es ->
      let qq = Units.coulomb *. charges.(i) *. charges.(j) in
      if qq = 0. then (e_lj, f_lj)
      else begin
        let e_es, f_es = Interp_table.eval es r2 in
        (e_lj +. (qq *. e_es), f_lj +. (qq *. f_es))
      end

let evaluator ts ~types ~charges ~cutoff =
  {
    Mdsp_ff.Pair_interactions.eval = (fun i j r2 -> eval_pair ts types charges i j r2);
    cutoff;
  }

type result = {
  forces : Vec3.t array;
  energy : float;
  saturations : int;
}

let formats_used ?(format = Fixed.force_format) () = (format, Fixed.widen format)

let compute_forces ?perm ?(format = Fixed.force_format) ts ~types ~charges
    ~cutoff box nlist positions =
  let n = Array.length positions in
  let fmt, efmt = formats_used ~format () in
  (* Per-atom, per-component fixed-point accumulators. *)
  let fx = Array.make n 0L in
  let fy = Array.make n 0L in
  let fz = Array.make n 0L in
  let e_acc = ref 0L in
  let sats = ref 0 in
  let conv f x =
    let v, s = Fixed.of_float_checked f x in
    if s then incr sats;
    v
  in
  let acc f a b =
    let v, s = Fixed.add_checked f a b in
    if s then incr sats;
    v
  in
  let pairs = Mdsp_space.Neighbor_list.pairs nlist in
  let order =
    match perm with
    | Some p ->
        if Array.length p <> Array.length pairs then
          invalid_arg "Htis.compute_forces: permutation length mismatch";
        p
    | None -> Array.init (Array.length pairs) Fun.id
  in
  let rc2 = cutoff *. cutoff in
  Array.iter
    (fun k ->
      let i, j = pairs.(k) in
      let d = Pbc.min_image box positions.(i) positions.(j) in
      let r2 = Vec3.norm2 d in
      if r2 < rc2 then begin
        let e, f_over_r = eval_pair ts types charges i j r2 in
        (* The pipeline emits the pair force; accumulation is exact fixed
           point, hence order-independent. *)
        let gx = conv fmt (f_over_r *. d.Vec3.x) in
        let gy = conv fmt (f_over_r *. d.Vec3.y) in
        let gz = conv fmt (f_over_r *. d.Vec3.z) in
        fx.(i) <- acc fmt fx.(i) gx;
        fy.(i) <- acc fmt fy.(i) gy;
        fz.(i) <- acc fmt fz.(i) gz;
        fx.(j) <- acc fmt fx.(j) (Int64.neg gx);
        fy.(j) <- acc fmt fy.(j) (Int64.neg gy);
        fz.(j) <- acc fmt fz.(j) (Int64.neg gz);
        e_acc := acc efmt !e_acc (conv efmt e)
      end)
    order;
  let forces =
    Array.init n (fun i ->
        Vec3.make
          (Fixed.to_float fmt fx.(i))
          (Fixed.to_float fmt fy.(i))
          (Fixed.to_float fmt fz.(i)))
  in
  { forces; energy = Fixed.to_float efmt !e_acc; saturations = !sats }

let cycles cfg ~pairs =
  float_of_int pairs
  /. (float_of_int cfg.Config.ppips_per_node *. cfg.Config.ppip_pairs_per_cycle)

let table_set_bytes ts =
  let lj =
    Array.fold_left
      (fun acc row ->
        Array.fold_left
          (fun acc t -> acc + Interp_table.sram_bytes t)
          acc row)
      0 ts.lj
  in
  let es =
    match ts.electrostatic with
    | None -> 0
    | Some t -> Interp_table.sram_bytes t
  in
  lj + es

let tables_fit cfg ts = table_set_bytes ts <= cfg.Config.table_sram_bytes
