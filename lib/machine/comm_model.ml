type phase = {
  label : string;
  messages : int;
  bytes : float;
  sent_bytes : float array;
  recv_bytes : float array;
  max_node_bytes : float;
  max_hops : int;
  avg_hops : float;
  time_s : float;
}

type step = {
  import : phase;
  force_return : phase;
  transpose : phase option;
  total_s : float;
}

let phases s =
  [ s.import; s.force_return ]
  @ match s.transpose with None -> [] | Some p -> [ p ]

let inject_bw cfg =
  cfg.Config.link_gb_s *. 1e9 *. float_of_int cfg.Config.links_per_node

let phase_time cfg ~max_node_bytes ~max_hops =
  (max_node_bytes /. inject_bw cfg)
  +. (float_of_int max_hops *. cfg.Config.hop_latency_ns *. 1e-9)

(* Price the directed import edges; [reverse] swaps the roles of every
   (dst, src) edge, which is exactly the force-return phase — same byte
   volume by construction. *)
let edge_phase cfg torus ~label ~reverse (stats : Decomp.stats) =
  let nn = Torus.node_count torus in
  let bytes_per_atom = float_of_int cfg.Config.bytes_per_atom in
  let sent = Array.make nn 0. and recv = Array.make nn 0. in
  let total = ref 0. and hop_bytes = ref 0. in
  let max_hops = ref 0 and messages = ref 0 in
  Array.iter
    (fun (dst, src, atoms) ->
      let dst, src = if reverse then (src, dst) else (dst, src) in
      let b = float_of_int atoms *. bytes_per_atom in
      sent.(src) <- sent.(src) +. b;
      recv.(dst) <- recv.(dst) +. b;
      total := !total +. b;
      let h = Torus.hops torus src dst in
      if h > !max_hops then max_hops := h;
      hop_bytes := !hop_bytes +. (b *. float_of_int h);
      incr messages)
    stats.Decomp.imports;
  let max_node_bytes = ref 0. in
  for v = 0 to nn - 1 do
    max_node_bytes := Float.max !max_node_bytes (Float.max sent.(v) recv.(v))
  done;
  {
    label;
    messages = !messages;
    bytes = !total;
    sent_bytes = sent;
    recv_bytes = recv;
    max_node_bytes = !max_node_bytes;
    max_hops = !max_hops;
    avg_hops = (if !total > 0. then !hop_bytes /. !total else 0.);
    time_s = phase_time cfg ~max_node_bytes:!max_node_bytes ~max_hops:!max_hops;
  }

(* Mean wrap-around distance between distinct positions on a ring of [n]. *)
let mean_ring n =
  if n <= 1 then 0.
  else begin
    let s = ref 0 in
    for d = 1 to n - 1 do
      s := !s + min d (n - d)
    done;
    float_of_int !s /. float_of_int (n - 1)
  end

(* The distributed FFT exchanges the node-local grid slab once per
   decomposed axis (row pass along x, column pass along y): an all-to-all
   within each torus line of [grid_points / nodes] complex (16-byte)
   values per node per pass. Axes of extent 1 need no pass. *)
let transpose_phase cfg torus ~grid:(gx, gy, gz) =
  let nx, ny, _ = Torus.dims torus in
  let nn = Torus.node_count torus in
  let k = float_of_int (gx * gy * gz) in
  let passes = List.filter (fun n -> n > 1) [ nx; ny ] in
  let per_node =
    k /. float_of_int nn *. 16. *. float_of_int (List.length passes)
  in
  let max_hops = List.fold_left (fun a n -> a + (n / 2)) 0 passes in
  let avg_hops =
    match passes with
    | [] -> 0.
    | _ ->
        List.fold_left (fun a n -> a +. mean_ring n) 0. passes
        /. float_of_int (List.length passes)
  in
  {
    label = "grid transpose";
    messages = nn * List.fold_left (fun a n -> a + (n - 1)) 0 passes;
    bytes = per_node *. float_of_int nn;
    sent_bytes = Array.make nn per_node;
    recv_bytes = Array.make nn per_node;
    max_node_bytes = per_node;
    max_hops;
    avg_hops;
    time_s = phase_time cfg ~max_node_bytes:per_node ~max_hops;
  }

let of_stats cfg ?grid (stats : Decomp.stats) =
  let torus = Torus.create stats.Decomp.nodes in
  let import = edge_phase cfg torus ~label:"position import" ~reverse:false stats in
  let force_return =
    edge_phase cfg torus ~label:"force return" ~reverse:true stats
  in
  let transpose = Option.map (fun grid -> transpose_phase cfg torus ~grid) grid in
  let total_s =
    import.time_s +. force_return.time_s
    +. match transpose with None -> 0. | Some p -> p.time_s
  in
  { import; force_return; transpose; total_s }
