(** Multi-node spatial decomposition with midpoint-cell pair assignment.

    Splits a workload's periodic box into an [nx * ny * nz] grid of home
    boxes, one per node of the machine's 3D torus ({!Torus}; owner rank
    linearization is x-fastest, identical to [Torus.rank]). Each node owns
    the atoms inside its home box and {e imports} the atoms within
    [cutoff / 2] of it — the neutral-territory (midpoint) import region,
    which is smaller than a half shell of full-cutoff depth.

    {2 Exactly-once pair assignment}

    An interacting pair [(i, j)] is assigned to the node whose home box
    contains the minimum-image midpoint of [i] and [j] (GENESIS
    SPDYN-style midpoint-cell rule). Because the midpoint is a pure
    function of the two positions, every pair has exactly one owner; and
    because each endpoint lies within [cutoff / 2] of the midpoint, both
    endpoints are guaranteed resident (home or import) on that owner.
    {!analyze} checks both properties on real coordinates: the per-node
    assignment totals must reproduce an independent single-node cell-list
    pair count ([singlenode_pairs]), and every assigned pair's endpoints
    must be resident on its owner ([residency_violations = 0]); the
    conjunction is [pair_once_ok].

    {2 Determinism contract}

    [analyze] runs its three phases on the {!Mdsp_util.Exec} pool
    (per-atom owner scan, per-atom resident-set scan, tiled pair
    assignment over the cell list's units), each declaring its write-set
    for the race sanitizer (resources ["decomp.owner"],
    ["decomp.resident"], ["decomp.pairs"]; the cell-list build itself
    declares ["cell.bin"]). Per-slot partial counts are merged by integer
    addition, so the resulting {!stats} is a pure function of the box,
    node grid, cutoff, and positions — bit-identical for any executor or
    slot count.

    Distances are in angstroms throughout; counts are atoms or pairs. *)

open Mdsp_util

type t

(** [create box ~nodes ~cutoff] prepares a decomposition of [box] over a
    [nodes = (nx, ny, nz)] torus with interaction cutoff [cutoff]
    (angstroms). Raises [Invalid_argument] if any dimension or the cutoff
    is non-positive, or if [cutoff] exceeds half the shortest box edge
    (the minimum-image regime the midpoint rule relies on). *)
val create : Pbc.t -> nodes:int * int * int -> cutoff:float -> t

val dims : t -> int * int * int
val node_count : t -> int

(** The torus the decomposition maps onto (same rank numbering). *)
val torus : t -> Torus.t

(** Home-box edge lengths [(hx, hy, hz)], angstroms. *)
val edges : t -> float * float * float

(** Rank of the node whose home box contains the (wrapped) position. *)
val owner : t -> Vec3.t -> int

(** [pair_owner t a b] is the rank owning the minimum-image midpoint of
    [a] and [b] — the node that computes this pair. *)
val pair_owner : t -> Vec3.t -> Vec3.t -> int

(** Everything {!analyze} measures on one set of coordinates. *)
type stats = {
  nodes : int * int * int;  (** the torus dims the frame was decomposed on *)
  n_atoms : int;
  owner_of_atom : int array;  (** home rank per atom index *)
  home_atoms : int array;  (** per rank: atoms whose home box it is *)
  import_atoms : int array;
      (** per rank: remote atoms within [cutoff / 2] of its home box
          (the midpoint import region), i.e. atoms it must receive *)
  pairs_per_node : int array;
      (** per rank: interacting pairs assigned by the midpoint rule *)
  imports : (int * int * int) array;
      (** per directed import edge [(dst, src, atoms)]: node [src] sends
          [atoms] of its home atoms to node [dst]; sorted, counts > 0 *)
  n_pairs : int;  (** total pairs assigned across all nodes *)
  singlenode_pairs : int;
      (** independent serial single-node cell-list count of interacting
          pairs — the reference for the exactly-once check *)
  residency_violations : int;
      (** assigned pairs with an endpoint not resident on the owner
          (must be 0) *)
  pair_once_ok : bool;
      (** [n_pairs = singlenode_pairs && residency_violations = 0] *)
}

(** [analyze ?exec t positions] decomposes one frame: owners, resident
    sets, per-node pair assignment, import traffic, and the exactly-once
    validation. Positions may be wrapped or not (wrapping is applied).
    See the determinism contract above; [exec] defaults to
    {!Exec.serial}. *)
val analyze : ?exec:Exec.t -> t -> Vec3.t array -> stats

(** Largest per-node pair count — the quantity the {!Mdsp_verify}
    datapath envelopes pin per-node accumulator budgets with. *)
val max_pairs_per_node : stats -> int

(** O(n{^ 2}) reference: interacting pair count by brute-force
    minimum-image distance test. For tests on small boxes. *)
val brute_pairs : t -> Vec3.t array -> int
