(** Whole-machine functional simulation of the parallel force computation.

    Pairs are assigned to nodes by spatial decomposition (the home box of
    the pair's first atom, standing in for the half-shell ownership rule);
    each node accumulates its partial forces in fixed point; node partials
    are then combined in fixed point, mimicking the deterministic reduction
    over the torus. Because every addition is exact, the result is
    **bitwise identical for any node count and any per-node pair order** —
    the machine's parallel-determinism property, strictly stronger than the
    single-stream order independence of {!Htis.compute_forces}. *)

open Mdsp_util

type result = {
  forces : Vec3.t array;
  energy : float;
  pairs_per_node : int array;  (** load distribution diagnostic *)
  saturations : int;
      (** fixed-point conversions/additions that clamped across all nodes
          and reduction levels — zero on certifier-proved workloads *)
}

(** Number of levels in the fixed-shape binary reduction tree that
    combines node partials ([ceil log2] of the node count) — the static
    envelope the datapath certifier bounds per level. *)
val reduction_depth : nodes:int * int * int -> int

(** [compute ?format ~nodes ts ~types ~charges ~cutoff box nlist positions]
    runs the decomposed computation on a simulated torus of dimensions
    [nodes]. Forces accumulate per node in [format], the energy in
    [Fixed.widen format]; node partials combine in a fixed-shape binary
    tree ({!reduction_depth} levels). *)
val compute :
  ?format:Fixed.format ->
  nodes:int * int * int ->
  Htis.table_set ->
  types:int array ->
  charges:float array ->
  cutoff:float ->
  Pbc.t ->
  Mdsp_space.Neighbor_list.t ->
  Vec3.t array ->
  result

(** Load imbalance of a run: max node pair count over the mean. *)
val imbalance : result -> float
