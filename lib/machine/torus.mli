(** 3D-torus topology of the multi-node machine.

    Pure geometry: node naming and hop distances on an [nx * ny * nz]
    wrap-around grid. Ranks are linearized x-fastest
    ([rank = x + nx * (y + ny * z)]), matching the home-box owner
    convention of {!Decomp} and {!Mdsp_space.Decomp}, so a decomposition
    owner index is directly a torus rank.

    All functions are total over valid ranks and allocation-free; results
    depend only on the grid dimensions, never on timing or executor
    state. *)

type t

(** [create (nx, ny, nz)] builds a torus with the given dimensions.
    Raises [Invalid_argument] unless all three are positive. *)
val create : int * int * int -> t

val dims : t -> int * int * int

(** [nx * ny * nz]. *)
val node_count : t -> int

(** [rank t (x, y, z)] linearizes coordinates (each taken modulo its
    dimension, so out-of-range and negative coordinates wrap). *)
val rank : t -> int * int * int -> int

(** Inverse of {!rank} for ranks in [0, node_count). Raises
    [Invalid_argument] outside that range. *)
val coords : t -> int -> int * int * int

(** [axis_hops n a b] is the wrap-around distance between positions [a]
    and [b] on a ring of [n] nodes: [min (|a - b| mod n, n - |a - b| mod
    n)]. Hops are link traversals (dimensionless counts). *)
val axis_hops : int -> int -> int -> int

(** [hops t a b] is the minimal number of link traversals between ranks
    [a] and [b]: the Manhattan sum of per-axis wrap-around distances
    (dimension-ordered routing is minimal on a torus). Symmetric:
    [hops t a b = hops t b a]; zero iff [a = b]. *)
val hops : t -> int -> int -> int

(** Maximum of {!hops} over all node pairs: [nx/2 + ny/2 + nz/2]. *)
val diameter : t -> int
