(** The hardwired pipelines' interpolation-table format.

    A pairwise point-interaction pipeline (PPIP) evaluates one radial
    function per pair per cycle by piecewise-cubic interpolation in squared
    distance: the table covers [r_min^2, r_cut^2] with [n] equal intervals;
    each interval holds four fixed-point coefficients for the energy and four
    for [f_over_r]. This module is the *format and evaluator* (hardware
    semantics); fitting arbitrary functional forms into it is the job of the
    generality layer's table compiler ({!Mdsp_core.Table}).

    Indexing in r^2 (not r) matches the hardware: it avoids a square root in
    the pipeline and concentrates resolution at small separations where
    potentials are steep. *)

type t

(** Default coefficient fixed-point format: a 26-bit signed mantissa with
    24 fractional bits (the per-interval block exponent restores scale). *)
val coeff_format : Mdsp_util.Fixed.format

(** [make ?coeff_format ~r_min ~r_cut ~n ~quantize ~energy_coeffs
    ~force_coeffs ()] builds a table from per-interval cubic coefficients
    (in the local variable [u = r2 - knot_i], increasing degree).
    [quantize] applies block fixed-point quantization in [coeff_format]
    (default {!coeff_format}) to model the hardware datapath; the compiler
    turns it off to measure pure interpolation error. *)
val make :
  ?coeff_format:Mdsp_util.Fixed.format ->
  r_min:float ->
  r_cut:float ->
  n:int ->
  quantize:bool ->
  energy_coeffs:float array array ->
  force_coeffs:float array array ->
  unit ->
  t

val n_intervals : t -> int
val r_min : t -> float
val r_cut : t -> float
val quantized : t -> bool

(** Interval width in r^2 units — with {!domain2}, the static envelope of
    the Horner local variable [u in [0, width]] the certifier bounds. *)
val width : t -> float

(** The table's domain in squared distance, [(r_min^2, r_cut^2)]. *)
val domain2 : t -> float * float

(** The mantissa format this table's blocks were quantized to (the value
    of [?coeff_format] at {!make} time, whether or not [quantize] was
    set). *)
val format_of : t -> Mdsp_util.Fixed.format

(** [eval t r2] is [(energy, f_over_r)]; zero beyond [r_cut^2], and clamped
    to the first interval below [r_min^2] (the hardware saturates there; the
    compiler chooses [r_min] below any physical separation). *)
val eval : t -> float -> float * float

(** Bytes of SRAM the table occupies (8 coefficients per interval at the
    coefficient width) — a resource-model input. *)
val sram_bytes : t -> int

(** Per-interval coefficient blocks as stored ([n] rows of 8: the four
    energy then the four [f_over_r] coefficients, increasing degree) —
    exposed for the verification layer's quantization audit. *)
val coeff_blocks : t -> float array array
