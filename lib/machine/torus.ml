type t = { nx : int; ny : int; nz : int }

let create (nx, ny, nz) =
  if nx <= 0 || ny <= 0 || nz <= 0 then
    invalid_arg "Torus.create: dimensions must be positive";
  { nx; ny; nz }

let dims t = (t.nx, t.ny, t.nz)
let node_count t = t.nx * t.ny * t.nz

let wrap v n = ((v mod n) + n) mod n

let rank t (x, y, z) =
  let x = wrap x t.nx and y = wrap y t.ny and z = wrap z t.nz in
  x + (t.nx * (y + (t.ny * z)))

let coords t r =
  if r < 0 || r >= node_count t then invalid_arg "Torus.coords: rank out of range";
  (r mod t.nx, r / t.nx mod t.ny, r / (t.nx * t.ny))

let axis_hops n a b =
  let d = wrap (a - b) n in
  min d (n - d)

let hops t a b =
  let ax, ay, az = coords t a and bx, by, bz = coords t b in
  axis_hops t.nx ax bx + axis_hops t.ny ay by + axis_hops t.nz az bz

let diameter t = (t.nx / 2) + (t.ny / 2) + (t.nz / 2)
