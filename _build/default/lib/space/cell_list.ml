open Mdsp_util

type t = {
  nx : int;
  ny : int;
  nz : int;
  n : int;  (** particle count *)
  head : int array;  (** first particle in cell, -1 if empty *)
  next : int array;  (** next particle in same cell, -1 at end *)
  cell_of : int array;
  degenerate : bool;  (** fewer than 3 cells along some axis *)
}

let build box positions ~cutoff =
  if cutoff <= 0. then invalid_arg "Cell_list.build: cutoff must be positive";
  let open Pbc in
  let dims l = max 1 (int_of_float (l /. cutoff)) in
  let nx = dims box.lx and ny = dims box.ly and nz = dims box.lz in
  let n = Array.length positions in
  let ncells = nx * ny * nz in
  let head = Array.make ncells (-1) in
  let next = Array.make n (-1) in
  let cell_of = Array.make n 0 in
  let clampi hi v = if v >= hi then hi - 1 else if v < 0 then 0 else v in
  for i = 0 to n - 1 do
    let f = Pbc.to_fractional box positions.(i) in
    let cx = clampi nx (int_of_float (f.Vec3.x *. float_of_int nx)) in
    let cy = clampi ny (int_of_float (f.Vec3.y *. float_of_int ny)) in
    let cz = clampi nz (int_of_float (f.Vec3.z *. float_of_int nz)) in
    let c = cx + (nx * (cy + (ny * cz))) in
    cell_of.(i) <- c;
    next.(i) <- head.(c);
    head.(c) <- i
  done;
  { nx; ny; nz; n; head; next; cell_of; degenerate = nx < 3 || ny < 3 || nz < 3 }

let dims t = (t.nx, t.ny, t.nz)
let cell_of t i = t.cell_of.(i)

(* The 13 half-space offsets: all (dx,dy,dz) with dz>0, or dz=0 && dy>0, or
   dz=0 && dy=0 && dx>0. Together with intra-cell pairs this enumerates each
   unordered cell pair once. *)
let half_offsets =
  [|
    (1, 0, 0);
    (-1, 1, 0); (0, 1, 0); (1, 1, 0);
    (-1, -1, 1); (0, -1, 1); (1, -1, 1);
    (-1, 0, 1); (0, 0, 1); (1, 0, 1);
    (-1, 1, 1); (0, 1, 1); (1, 1, 1);
  |]

let iter_cell_pair t ca cb f =
  (* All pairs (i in ca, j in cb), ca <> cb. *)
  let i = ref t.head.(ca) in
  while !i >= 0 do
    let j = ref t.head.(cb) in
    while !j >= 0 do
      f !i !j;
      j := t.next.(!j)
    done;
    i := t.next.(!i)
  done

let iter_intra t c f =
  let i = ref t.head.(c) in
  while !i >= 0 do
    let j = ref t.next.(!i) in
    while !j >= 0 do
      f !i !j;
      j := t.next.(!j)
    done;
    i := t.next.(!i)
  done

let iter_pairs t f =
  if t.degenerate then
    (* Too few cells for the offset scheme to avoid duplicates; fall back to
       all-pairs, which is correct and only hits tiny systems. *)
    for i = 0 to t.n - 1 do
      for j = i + 1 to t.n - 1 do
        f i j
      done
    done
  else begin
    let wrap v n = ((v mod n) + n) mod n in
    for cz = 0 to t.nz - 1 do
      for cy = 0 to t.ny - 1 do
        for cx = 0 to t.nx - 1 do
          let c = cx + (t.nx * (cy + (t.ny * cz))) in
          iter_intra t c f;
          Array.iter
            (fun (dx, dy, dz) ->
              let nx' = wrap (cx + dx) t.nx
              and ny' = wrap (cy + dy) t.ny
              and nz' = wrap (cz + dz) t.nz in
              let c' = nx' + (t.nx * (ny' + (t.ny * nz'))) in
              iter_cell_pair t c c' f)
            half_offsets
        done
      done
    done
  end

let iter_neighbors t i f =
  if t.degenerate then
    for j = 0 to t.n - 1 do
      if j <> i then f j
    done
  else begin
    let c = t.cell_of.(i) in
    let cx = c mod t.nx in
    let cy = c / t.nx mod t.ny in
    let cz = c / (t.nx * t.ny) in
    let wrap v n = ((v mod n) + n) mod n in
    for dz = -1 to 1 do
      for dy = -1 to 1 do
        for dx = -1 to 1 do
          let c' =
            wrap (cx + dx) t.nx
            + (t.nx * (wrap (cy + dy) t.ny + (t.ny * wrap (cz + dz) t.nz)))
          in
          let j = ref t.head.(c') in
          while !j >= 0 do
            if !j <> i then f !j;
            j := t.next.(!j)
          done
        done
      done
    done
  end
