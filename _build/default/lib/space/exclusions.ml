type t = { adj : int array array; npairs : int }

let of_pairs ~n pairs =
  let sets = Array.make n [] in
  let seen = Hashtbl.create 64 in
  let add i j =
    if i <> j then begin
      let key = if i < j then (i, j) else (j, i) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        sets.(i) <- j :: sets.(i);
        sets.(j) <- i :: sets.(j)
      end
    end
  in
  List.iter
    (fun (i, j) ->
      if i < 0 || i >= n || j < 0 || j >= n then
        invalid_arg "Exclusions.of_pairs: atom index out of range";
      add i j)
    pairs;
  let adj =
    Array.map
      (fun l ->
        let a = Array.of_list l in
        Array.sort compare a;
        a)
      sets
  in
  { adj; npairs = Hashtbl.length seen }

let empty ~n = { adj = Array.make n [||]; npairs = 0 }

let from_bonds ~n ~bonds ~through =
  if through < 1 || through > 3 then
    invalid_arg "Exclusions.from_bonds: through must be 1, 2 or 3";
  let graph = Array.make n [] in
  List.iter
    (fun (i, j) ->
      if i < 0 || i >= n || j < 0 || j >= n then
        invalid_arg "Exclusions.from_bonds: atom index out of range";
      graph.(i) <- j :: graph.(i);
      graph.(j) <- i :: graph.(j))
    bonds;
  (* BFS out to [through] bonds from each atom. *)
  let pairs = ref [] in
  for i = 0 to n - 1 do
    let dist = Hashtbl.create 16 in
    Hashtbl.add dist i 0;
    let frontier = ref [ i ] in
    for d = 1 to through do
      let next = ref [] in
      List.iter
        (fun u ->
          List.iter
            (fun v ->
              if not (Hashtbl.mem dist v) then begin
                Hashtbl.add dist v d;
                next := v :: !next;
                if v > i then pairs := (i, v) :: !pairs
              end)
            graph.(u))
        !frontier;
      frontier := !next
    done
  done;
  of_pairs ~n !pairs

let excluded t i j =
  let a = t.adj.(i) in
  let lo = ref 0 and hi = ref (Array.length a - 1) in
  let found = ref false in
  while !lo <= !hi && not !found do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) = j then found := true
    else if a.(mid) < j then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let count t = t.npairs

let pairs t =
  let acc = ref [] in
  Array.iteri
    (fun i a -> Array.iter (fun j -> if j > i then acc := (i, j) :: !acc) a)
    t.adj;
  List.rev !acc
