(** Nonbonded exclusion bookkeeping.

    Bonded atoms (1-2), atoms separated by two bonds (1-3), and optionally
    three bonds (1-4) are excluded from — or scaled in — the nonbonded sum.
    Exclusions are stored as sorted per-atom arrays for O(log k) lookup. *)

type t

(** [of_pairs ~n pairs] builds the exclusion set for [n] atoms from a list of
    excluded (i, j) pairs. Symmetric; self-pairs and duplicates ignored. *)
val of_pairs : n:int -> (int * int) list -> t

(** [from_bonds ~n ~bonds ~through] derives exclusions from the bond graph:
    [through = 2] excludes 1-2 and 1-3; [through = 3] also excludes 1-4. *)
val from_bonds : n:int -> bonds:(int * int) list -> through:int -> t

val excluded : t -> int -> int -> bool
val count : t -> int

(** All excluded pairs (i < j). *)
val pairs : t -> (int * int) list

(** The empty exclusion set for [n] atoms. *)
val empty : n:int -> t
