lib/space/cell_list.mli: Mdsp_util Pbc Vec3
