lib/space/decomp.mli: Mdsp_util Pbc Vec3
