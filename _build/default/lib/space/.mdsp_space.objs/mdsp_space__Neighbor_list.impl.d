lib/space/neighbor_list.ml: Array Cell_list Exclusions Mdsp_util Pbc Vec3
