lib/space/exclusions.ml: Array Hashtbl List
