lib/space/exclusions.mli:
