lib/space/decomp.ml: Array Float List Mdsp_util Pbc Vec3
