lib/space/neighbor_list.mli: Exclusions Mdsp_util Pbc Vec3
