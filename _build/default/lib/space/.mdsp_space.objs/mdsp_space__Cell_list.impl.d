lib/space/cell_list.ml: Array Mdsp_util Pbc Vec3
