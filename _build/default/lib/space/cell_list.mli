(** Linked-cell spatial binning over an orthorhombic periodic box.

    Particles are binned into cells of edge at least the interaction cutoff,
    so all pairs within the cutoff are found by scanning each cell and its 26
    periodic neighbors (half of them, for half-enumeration). *)

open Mdsp_util

type t

(** [build box positions ~cutoff] bins the (wrapped) positions. The cell edge
    is the smallest length >= cutoff that divides each box edge evenly; if a
    box edge is shorter than [3 * cutoff] the structure still works but
    degenerates toward all-pairs in that dimension. *)
val build : Pbc.t -> Vec3.t array -> cutoff:float -> t

(** Number of cells along each axis. *)
val dims : t -> int * int * int

(** [iter_pairs t f] calls [f i j] exactly once for every unordered pair of
    distinct particles whose minimum-image distance may be within the cutoff
    (i.e. all pairs in the same or neighboring cells, i < j not guaranteed,
    but each unordered pair exactly once). *)
val iter_pairs : t -> (int -> int -> unit) -> unit

(** [iter_neighbors t i f] calls [f j] for each candidate neighbor [j <> i]
    of particle [i] (both orders; a given unordered pair appears in both
    particles' neighbor scans). *)
val iter_neighbors : t -> int -> (int -> unit) -> unit

(** Cell index assigned to particle [i]. *)
val cell_of : t -> int -> int
