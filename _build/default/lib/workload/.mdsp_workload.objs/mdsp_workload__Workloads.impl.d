lib/workload/workloads.ml: Array Float List Mdsp_ff Mdsp_md Mdsp_space Mdsp_util Pbc Printf Rng Vec3
