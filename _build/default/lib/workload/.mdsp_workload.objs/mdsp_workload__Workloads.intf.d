lib/workload/workloads.mli: Mdsp_ff Mdsp_md Mdsp_util Pbc Vec3
