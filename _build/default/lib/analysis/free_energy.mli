(** Free-energy difference estimators for alchemical (FEP) calculations. *)

(** Exponential averaging (Zwanzig): [dF = -kT ln <exp(-beta dU)>_0] from
    forward energy differences [du = U_1 - U_0] sampled in state 0. *)
val exp_averaging : temp:float -> float array -> float

(** Bennett acceptance ratio from forward differences ([U1 - U0] in state 0)
    and backward differences ([U0 - U1] in state 1). Solved by bisection on
    the self-consistency equation; returns dF = F1 - F0. *)
val bar : temp:float -> forward:float array -> backward:float array -> float

(** Thermodynamic-integration estimate from <dU/dlambda> means at given
    lambda points (trapezoidal). Pairs are (lambda, mean_du_dlambda). *)
val ti_trapezoid : (float * float) list -> float

(** Jarzynski equality: [dF = -kT ln <exp(-beta W)>] over repeated
    nonequilibrium work values (e.g. steered-MD pulls). Biased high for few
    samples; the dissipation estimate [(mean W - dF)] is also returned. *)
val jarzynski : temp:float -> float array -> float * float

(** Widom test-particle insertion: excess chemical potential
    [mu_ex = -kT ln <exp(-beta dU)>] over insertion energies [du] of ghost
    particles placed uniformly at random. *)
val widom : temp:float -> float array -> float
