lib/analysis/free_energy.mli:
