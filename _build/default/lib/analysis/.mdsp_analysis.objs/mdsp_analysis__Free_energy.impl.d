lib/analysis/free_energy.ml: Array Float List Mdsp_util Units
