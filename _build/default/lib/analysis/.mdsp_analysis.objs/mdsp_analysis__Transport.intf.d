lib/analysis/transport.mli: Mdsp_util Vec3
