lib/analysis/structure.ml: Array Float Fun Mdsp_util Pbc
