lib/analysis/structure.mli: Mdsp_util Pbc Vec3
