lib/analysis/wham.mli:
