lib/analysis/wham.ml: Array Float Histogram List Mdsp_util Units
