lib/analysis/transport.ml: Array List Mdsp_util Stats Units Vec3
