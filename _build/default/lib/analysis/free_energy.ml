open Mdsp_util

let exp_averaging ~temp du =
  if Array.length du = 0 then invalid_arg "Free_energy.exp_averaging: empty";
  let kt = Units.kt temp in
  let beta = 1. /. kt in
  (* Log-sum-exp for numerical stability. *)
  let m = Array.fold_left (fun a x -> Float.min a x) infinity du in
  let n = float_of_int (Array.length du) in
  let s =
    Array.fold_left (fun a x -> a +. exp (-.beta *. (x -. m))) 0. du
  in
  m -. (kt *. log (s /. n))

let bar ~temp ~forward ~backward =
  if Array.length forward = 0 || Array.length backward = 0 then
    invalid_arg "Free_energy.bar: empty samples";
  let kt = Units.kt temp in
  let beta = 1. /. kt in
  let nf = float_of_int (Array.length forward) in
  let nb = float_of_int (Array.length backward) in
  let log_ratio = log (nf /. nb) in
  let fermi x = 1. /. (1. +. exp x) in
  (* Self-consistency residual for trial df: mean_f fermi(beta(du_f - df) +
     lnQ) - mean_b fermi(-beta(du_b' + df) - lnQ) = 0 formulated as the
     standard BAR implicit equation. *)
  let residual df =
    let sf =
      Array.fold_left
        (fun a du -> a +. fermi ((beta *. (du -. df)) +. log_ratio))
        0. forward
      /. nf
    in
    let sb =
      Array.fold_left
        (fun a du -> a +. fermi ((beta *. (du +. df)) -. log_ratio))
        0. backward
      /. nb
    in
    sf -. sb
  in
  (* Bracket the root. *)
  let lo = ref (-500.) and hi = ref 500. in
  let r_lo = residual !lo and r_hi = residual !hi in
  if r_lo *. r_hi > 0. then
    (* Degenerate sampling; fall back to exponential averaging. *)
    exp_averaging ~temp forward
  else begin
    for _ = 1 to 200 do
      let mid = 0.5 *. (!lo +. !hi) in
      if residual !lo *. residual mid <= 0. then hi := mid else lo := mid
    done;
    0.5 *. (!lo +. !hi)
  end

let jarzynski ~temp works =
  if Array.length works = 0 then invalid_arg "Free_energy.jarzynski: empty";
  let df = exp_averaging ~temp works in
  let mean_w =
    Array.fold_left ( +. ) 0. works /. float_of_int (Array.length works)
  in
  (df, mean_w -. df)

let widom ~temp du = exp_averaging ~temp du

let ti_trapezoid points =
  match points with
  | [] | [ _ ] -> invalid_arg "Free_energy.ti_trapezoid: need >= 2 points"
  | _ ->
      let pts = List.sort (fun (a, _) (b, _) -> compare a b) points in
      let rec go acc = function
        | (l1, g1) :: ((l2, g2) :: _ as rest) ->
            go (acc +. (0.5 *. (g1 +. g2) *. (l2 -. l1))) rest
        | _ -> acc
      in
      go 0. pts
