(** Structural observables: radial distribution functions.

    The accumulator is fed snapshots during a run (e.g. from a post-step
    hook) and normalized at the end. *)

open Mdsp_util

type t

(** [create ~r_max ~bins] prepares a g(r) accumulator. [r_max] must not
    exceed half the box edge at sampling time. *)
val create : r_max:float -> bins:int -> t

(** [sample t box positions ?subset ()] accumulates one frame. With
    [subset], only pairs within the index subset are counted (e.g. the
    oxygens of a water box). *)
val sample : t -> Pbc.t -> Vec3.t array -> ?subset:int array -> unit -> unit

(** Number of frames accumulated. *)
val frames : t -> int

(** [g t] is [(r, g(r))] pairs, normalized against the ideal gas at the
    mean density of the sampled frames. *)
val g : t -> (float * float) array

(** Position of the first maximum of g(r) beyond [r_min] (default 0.5). *)
val first_peak : ?r_min:float -> t -> float * float

(** Coordination number: 4 pi rho * integral of g(r) r^2 dr up to
    [r_cut]. *)
val coordination_number : t -> r_cut:float -> float
