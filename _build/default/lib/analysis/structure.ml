open Mdsp_util

type t = {
  r_max : float;
  bins : int;
  width : float;
  counts : float array;
  mutable frames : int;
  mutable pair_norm : float;  (** accumulated n_pairs_counted per frame *)
  mutable density_sum : float;  (** accumulated particle density *)
}

let create ~r_max ~bins =
  if r_max <= 0. || bins <= 0 then invalid_arg "Structure.create";
  {
    r_max;
    bins;
    width = r_max /. float_of_int bins;
    counts = Array.make bins 0.;
    frames = 0;
    pair_norm = 0.;
    density_sum = 0.;
  }

let sample t box positions ?subset () =
  if t.r_max > 0.5 *. Pbc.min_edge box +. 1e-9 then
    invalid_arg "Structure.sample: r_max exceeds half the box edge";
  let idx =
    match subset with
    | Some s -> s
    | None -> Array.init (Array.length positions) Fun.id
  in
  let n = Array.length idx in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      let r = Pbc.dist box positions.(idx.(a)) positions.(idx.(b)) in
      if r < t.r_max then begin
        let bin = int_of_float (r /. t.width) in
        let bin = min bin (t.bins - 1) in
        t.counts.(bin) <- t.counts.(bin) +. 2.
        (* each pair counts for both particles *)
      end
    done
  done;
  t.frames <- t.frames + 1;
  t.pair_norm <- t.pair_norm +. float_of_int n;
  t.density_sum <- t.density_sum +. (float_of_int n /. Pbc.volume box)

let frames t = t.frames

let g t =
  if t.frames = 0 then invalid_arg "Structure.g: no frames";
  let rho = t.density_sum /. float_of_int t.frames in
  Array.init t.bins (fun b ->
      let r_lo = float_of_int b *. t.width in
      let r_hi = r_lo +. t.width in
      let r = 0.5 *. (r_lo +. r_hi) in
      let shell_vol = 4. /. 3. *. Float.pi *. ((r_hi ** 3.) -. (r_lo ** 3.)) in
      (* counts per particle per frame, normalized by ideal-gas shell. *)
      let per_particle = t.counts.(b) /. t.pair_norm in
      (r, per_particle /. (rho *. shell_vol)))

let first_peak ?(r_min = 0.5) t =
  let gr = g t in
  Array.fold_left
    (fun (best_r, best_g) (r, gv) ->
      if r >= r_min && gv > best_g then (r, gv) else (best_r, best_g))
    (0., neg_infinity) gr

let coordination_number t ~r_cut =
  let gr = g t in
  let rho = t.density_sum /. float_of_int (max 1 t.frames) in
  Array.fold_left
    (fun acc (r, gv) ->
      if r <= r_cut then
        acc +. (4. *. Float.pi *. rho *. gv *. r *. r *. t.width)
      else acc)
    0. gr
