(** Weighted-histogram analysis method (1D), for umbrella sampling.

    Given biased histograms of a reaction coordinate collected in windows
    with known bias potentials, iterate the WHAM equations to the unbiased
    free-energy profile. *)

type window = {
  bias : float -> float;  (** bias energy at coordinate x, kcal/mol *)
  samples : float array;  (** observed coordinate values *)
}

type profile = {
  centers : float array;
  free_energy : float array;  (** kcal/mol, min shifted to zero *)
  window_offsets : float array;  (** converged per-window f_i *)
  iterations : int;
}

(** [solve ~temp ~lo ~hi ~bins ~tol ~max_iter windows]. Bins with zero total
    count get [nan] free energy. *)
val solve :
  temp:float -> lo:float -> hi:float -> bins:int -> ?tol:float ->
  ?max_iter:int -> window list -> profile
