open Mdsp_util

type window = { bias : float -> float; samples : float array }

type profile = {
  centers : float array;
  free_energy : float array;
  window_offsets : float array;
  iterations : int;
}

let solve ~temp ~lo ~hi ~bins ?(tol = 1e-7) ?(max_iter = 50_000) windows =
  if windows = [] then invalid_arg "Wham.solve: no windows";
  let kt = Units.kt temp in
  let beta = 1. /. kt in
  let nw = List.length windows in
  let windows = Array.of_list windows in
  let width = (hi -. lo) /. float_of_int bins in
  let centers =
    Array.init bins (fun b -> lo +. ((float_of_int b +. 0.5) *. width))
  in
  (* Histogram each window. *)
  let hists =
    Array.map
      (fun w ->
        let h = Histogram.create ~lo ~hi ~bins in
        Array.iter (fun x -> Histogram.add h x) w.samples;
        Histogram.counts h)
      windows
  in
  let n_k =
    Array.map (fun h -> Array.fold_left ( +. ) 0. h) hists
  in
  (* Total counts per bin. *)
  let total = Array.make bins 0. in
  Array.iter (Array.iteri (fun b c -> total.(b) <- total.(b) +. c)) hists;
  (* Precompute bias factors exp(-beta * U_k(x_b)). *)
  let bias_fact =
    Array.map
      (fun w -> Array.map (fun x -> exp (-.beta *. w.bias x)) centers)
      windows
  in
  let f = Array.make nw 0. in
  let p = Array.make bins 0. in
  let iter = ref 0 in
  let converged = ref false in
  while (not !converged) && !iter < max_iter do
    (* Unbiased probability estimate. *)
    for b = 0 to bins - 1 do
      let denom = ref 0. in
      for k = 0 to nw - 1 do
        denom := !denom +. (n_k.(k) *. exp (beta *. f.(k)) *. bias_fact.(k).(b))
      done;
      p.(b) <- (if !denom > 0. then total.(b) /. !denom else 0.)
    done;
    (* Update window offsets. *)
    let max_change = ref 0. in
    for k = 0 to nw - 1 do
      let z = ref 0. in
      for b = 0 to bins - 1 do
        z := !z +. (p.(b) *. bias_fact.(k).(b))
      done;
      let f_new = if !z > 0. then -.kt *. log !z else f.(k) in
      max_change := Float.max !max_change (abs_float (f_new -. f.(k)));
      f.(k) <- f_new
    done;
    (* Anchor the gauge freedom. *)
    let f0 = f.(0) in
    for k = 0 to nw - 1 do
      f.(k) <- f.(k) -. f0
    done;
    if !max_change < tol then converged := true;
    incr iter
  done;
  let free_energy =
    Array.map (fun pi -> if pi > 0. then -.kt *. log pi else Float.nan) p
  in
  (* Shift the minimum to zero. *)
  let fmin =
    Array.fold_left
      (fun acc v -> if Float.is_nan v then acc else Float.min acc v)
      infinity free_energy
  in
  let free_energy = Array.map (fun v -> v -. fmin) free_energy in
  { centers; free_energy; window_offsets = f; iterations = !iter }
