open Mdsp_util

type frame = { time : float; pos : Vec3.t array; vel : Vec3.t array }

type t = { n : int; mutable frames : frame list (* reversed *) }

let create ~n =
  if n <= 0 then invalid_arg "Transport.create";
  { n; frames = [] }

let record t ~time pos vel =
  if Array.length pos <> t.n || Array.length vel <> t.n then
    invalid_arg "Transport.record: array size mismatch";
  t.frames <-
    { time; pos = Array.copy pos; vel = Array.copy vel } :: t.frames

let n_frames t = List.length t.frames

let frames_array t = Array.of_list (List.rev t.frames)

let lag_average ?(origin_stride = 1) t f =
  let fr = frames_array t in
  let nf = Array.length fr in
  if nf < 4 then invalid_arg "Transport: need at least 4 frames";
  let max_lag = nf / 2 in
  Array.init max_lag (fun lag ->
      let lag = lag + 1 in
      let acc = ref 0. and count = ref 0 in
      let o = ref 0 in
      while !o + lag < nf do
        acc := !acc +. f fr.(!o) fr.(!o + lag);
        incr count;
        o := !o + origin_stride
      done;
      let dt = fr.(lag).time -. fr.(0).time in
      (dt, !acc /. float_of_int !count))

let msd ?origin_stride t =
  lag_average ?origin_stride t (fun a b ->
      let s = ref 0. in
      for i = 0 to t.n - 1 do
        s := !s +. Vec3.dist2 b.pos.(i) a.pos.(i)
      done;
      !s /. float_of_int t.n)

let diffusion_coefficient ?origin_stride t =
  let m = msd ?origin_stride t in
  let nm = Array.length m in
  if nm < 4 then invalid_arg "Transport.diffusion_coefficient: too few lags";
  (* Fit the second half, away from the ballistic regime. *)
  let tail = Array.sub m (nm / 2) (nm - (nm / 2)) in
  let xs = Array.map fst tail and ys = Array.map snd tail in
  let slope, _ = Stats.linear_fit xs ys in
  slope /. 6.

let d_cm2_s d =
  (* A^2 per internal time -> cm^2/s: 1 A^2 = 1e-16 cm^2; 1 internal time
     = time_unit_fs * 1e-15 s. *)
  d *. 1e-16 /. (Units.time_unit_fs *. 1e-15)

let vacf ?origin_stride t =
  let fr = frames_array t in
  if Array.length fr < 4 then invalid_arg "Transport.vacf: need frames";
  let dot_frame a b =
    let s = ref 0. in
    for i = 0 to t.n - 1 do
      s := !s +. Vec3.dot a.vel.(i) b.vel.(i)
    done;
    !s /. float_of_int t.n
  in
  let c0 = dot_frame fr.(0) fr.(0) in
  let c0 = if c0 = 0. then 1. else c0 in
  lag_average ?origin_stride t (fun a b -> dot_frame a b /. c0)
