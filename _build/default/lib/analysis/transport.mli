(** Transport observables: mean-squared displacement, self-diffusion, and
    the velocity autocorrelation function.

    Positions must be unwrapped (the engine never wraps its position
    arrays, so feeding engine positions directly is correct). Times are in
    internal units; the diffusion coefficient is returned in A^2 per
    internal time unit and in cm^2/s via {!val-d_cm2_s}. *)

open Mdsp_util

type t

(** [create ~n] prepares a recorder for [n] particles. *)
val create : n:int -> t

(** Record a frame (positions and velocities at the given time). *)
val record : t -> time:float -> Vec3.t array -> Vec3.t array -> unit

val n_frames : t -> int

(** Mean-squared displacement vs lag: [(dt, msd)] for lags up to half the
    trajectory (averaged over time origins with the given stride). *)
val msd : ?origin_stride:int -> t -> (float * float) array

(** Self-diffusion coefficient from the long-time MSD slope (Einstein:
    MSD = 6 D t), fit over the second half of available lags. Internal
    units: A^2 / internal-time. *)
val diffusion_coefficient : ?origin_stride:int -> t -> float

(** Convert a diffusion coefficient from internal units to cm^2/s. *)
val d_cm2_s : float -> float

(** Normalized velocity autocorrelation function vs lag. *)
val vacf : ?origin_stride:int -> t -> (float * float) array
