(** Holonomic distance constraints: SHAKE (positions) and RATTLE
    (velocities).

    Constraints come from the topology (rigid waters, fixed X–H bonds). The
    iterative solvers converge geometrically for the small coupled clusters
    that appear in practice (a rigid water is a 3-constraint cluster). *)

open Mdsp_util

type t

(** [create topo ~tol ~max_iter] prepares the constraint solver. [tol] is
    the relative tolerance on squared distances (default 1e-8); [max_iter]
    defaults to 200. *)
val create : ?tol:float -> ?max_iter:int -> Mdsp_ff.Topology.t -> t

(** No constraints at all (cheap no-op solver). *)
val none : t

val count : t -> int

(** [shake t box ~prev positions] adjusts [positions] so all constraints
    hold, applying displacements inversely weighted by mass along the
    constraint direction of the *previous* (pre-step) geometry [prev].
    Raises [Failure] if the iteration does not converge. *)
val shake :
  t -> Pbc.t -> prev:Vec3.t array -> Vec3.t array -> masses:float array -> unit

(** [rattle t box positions velocities] projects velocity components along
    the constraint directions out of [velocities]. *)
val rattle :
  t -> Pbc.t -> Vec3.t array -> Vec3.t array -> masses:float array -> unit

(** Maximum relative violation max |r^2 - d^2| / d^2 over constraints. *)
val max_violation : t -> Pbc.t -> Vec3.t array -> float
