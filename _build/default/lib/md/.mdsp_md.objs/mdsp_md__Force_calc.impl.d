lib/md/force_calc.ml: List Mdsp_ff Mdsp_longrange Mdsp_space Mdsp_util Pbc Vec3
