lib/md/engine.mli: Constraints Force_calc Mdsp_ff Mdsp_util Rng State
