lib/md/virtual_sites.ml: Array Mdsp_ff Mdsp_util Pbc Vec3
