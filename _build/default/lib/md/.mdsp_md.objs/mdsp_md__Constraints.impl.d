lib/md/constraints.ml: Array Float Mdsp_ff Mdsp_util Pbc Vec3
