lib/md/engine.ml: Array Constraints Float Force_calc List Mdsp_ff Mdsp_space Mdsp_util Pbc Rng State Units Vec3 Virtual_sites
