lib/md/state.mli: Mdsp_util Pbc Rng Vec3
