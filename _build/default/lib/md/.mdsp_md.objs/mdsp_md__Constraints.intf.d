lib/md/constraints.mli: Mdsp_ff Mdsp_util Pbc Vec3
