lib/md/observables.mli: Engine
