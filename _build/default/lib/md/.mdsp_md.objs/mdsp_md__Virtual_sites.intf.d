lib/md/virtual_sites.mli: Mdsp_ff Mdsp_util Pbc Vec3
