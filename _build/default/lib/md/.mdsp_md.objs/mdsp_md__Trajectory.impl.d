lib/md/trajectory.ml: Array Fun List Mdsp_util Pbc Printf Scanf State String Vec3
