lib/md/trajectory.mli: Mdsp_util Pbc State Vec3
