lib/md/observables.ml: Array Engine List Mdsp_util Printf Stats
