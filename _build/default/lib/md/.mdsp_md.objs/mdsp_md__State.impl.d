lib/md/state.ml: Array Mdsp_util Pbc Rng Units Vec3
