open Mdsp_util

type t = {
  sites : Mdsp_ff.Topology.virtual_site array;
  is_site : bool array;
}

let create (topo : Mdsp_ff.Topology.t) =
  let n = Mdsp_ff.Topology.n_atoms topo in
  let is_site = Array.make n false in
  Array.iter
    (fun (v : Mdsp_ff.Topology.virtual_site) ->
      is_site.(v.Mdsp_ff.Topology.vs) <- true)
    topo.virtual_sites;
  { sites = topo.virtual_sites; is_site }

let count t = Array.length t.sites
let is_site t i = t.is_site.(i)

let place t box positions =
  Array.iter
    (fun (v : Mdsp_ff.Topology.virtual_site) ->
      let anchor_idx, _ = v.vparents.(0) in
      let anchor = positions.(anchor_idx) in
      let acc = ref Vec3.zero in
      Array.iter
        (fun (p, w) ->
          let d = Pbc.min_image box positions.(p) anchor in
          acc := Vec3.axpy w d !acc)
        v.vparents;
      positions.(v.vs) <- Vec3.add anchor !acc)
    t.sites

let spread_forces t (acc : Mdsp_ff.Bonded.accum) =
  Array.iter
    (fun (v : Mdsp_ff.Topology.virtual_site) ->
      let f = acc.forces.(v.vs) in
      Array.iter
        (fun (p, w) -> acc.forces.(p) <- Vec3.axpy w f acc.forces.(p))
        v.vparents;
      acc.forces.(v.vs) <- Vec3.zero)
    t.sites

let zero_velocities t velocities =
  Array.iter
    (fun (v : Mdsp_ff.Topology.virtual_site) ->
      velocities.(v.Mdsp_ff.Topology.vs) <- Vec3.zero)
    t.sites
