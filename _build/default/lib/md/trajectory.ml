open Mdsp_util

type xyz = { oc : out_channel; names : string array }

let open_xyz path ~names =
  let oc = open_out path in
  { oc; names }

let write_frame t box ~time_fs positions =
  let n = Array.length positions in
  if n <> Array.length t.names then
    invalid_arg "Trajectory.write_frame: name/position count mismatch";
  Printf.fprintf t.oc "%d\n" n;
  let open Pbc in
  Printf.fprintf t.oc
    "Lattice=\"%.6f 0 0 0 %.6f 0 0 0 %.6f\" time_fs=%.4f\n" box.lx box.ly
    box.lz time_fs;
  Array.iteri
    (fun i (p : Vec3.t) ->
      let w = Pbc.wrap box p in
      Printf.fprintf t.oc "%-4s %12.6f %12.6f %12.6f\n" t.names.(i) w.Vec3.x
        w.Vec3.y w.Vec3.z)
    positions

let close_xyz t = close_out t.oc

let read_xyz path =
  let ic = open_in path in
  let frames = ref [] in
  (try
     while true do
       let n = int_of_string (String.trim (input_line ic)) in
       let comment = input_line ic in
       let pos =
         Array.init n (fun _ ->
             let line = input_line ic in
             Scanf.sscanf line " %s %f %f %f" (fun _ x y z -> Vec3.make x y z))
       in
       frames := (comment, pos) :: !frames
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !frames

module Checkpoint = struct
  let save path (st : State.t) ~step =
    let oc = open_out path in
    let n = State.n st in
    let open Pbc in
    Printf.fprintf oc "mdsp-checkpoint 1\n";
    Printf.fprintf oc "atoms %d\n" n;
    Printf.fprintf oc "step %d\n" step;
    Printf.fprintf oc "time %.17g\n" st.State.time;
    Printf.fprintf oc "box %.17g %.17g %.17g\n" st.State.box.lx
      st.State.box.ly st.State.box.lz;
    for i = 0 to n - 1 do
      let p = st.State.positions.(i) and v = st.State.velocities.(i) in
      Printf.fprintf oc "%.17g %.17g %.17g %.17g %.17g %.17g %.17g\n"
        st.State.masses.(i) p.Vec3.x p.Vec3.y p.Vec3.z v.Vec3.x v.Vec3.y
        v.Vec3.z
    done;
    close_out oc

  let load path =
    let ic = open_in path in
    let fail msg =
      close_in ic;
      failwith (Printf.sprintf "Checkpoint.load %s: %s" path msg)
    in
    let line () = try input_line ic with End_of_file -> fail "truncated" in
    (try
       let header = line () in
       if header <> "mdsp-checkpoint 1" then fail "bad header";
       let n = Scanf.sscanf (line ()) "atoms %d" Fun.id in
       let step = Scanf.sscanf (line ()) "step %d" Fun.id in
       let time = Scanf.sscanf (line ()) "time %f" Fun.id in
       let lx, ly, lz =
         Scanf.sscanf (line ()) "box %f %f %f" (fun a b c -> (a, b, c))
       in
       let masses = Array.make n 0. in
       let positions = Array.make n Vec3.zero in
       let velocities = Array.make n Vec3.zero in
       for i = 0 to n - 1 do
         Scanf.sscanf (line ()) " %f %f %f %f %f %f %f"
           (fun m px py pz vx vy vz ->
             masses.(i) <- m;
             positions.(i) <- Vec3.make px py pz;
             velocities.(i) <- Vec3.make vx vy vz)
       done;
       close_in ic;
       let st = State.create ~positions ~masses ~box:(Pbc.make ~lx ~ly ~lz) in
       Array.blit velocities 0 st.State.velocities 0 n;
       st.State.time <- time;
       (st, step)
     with
    | Scanf.Scan_failure m -> fail m
    | Failure m -> fail m)
end
