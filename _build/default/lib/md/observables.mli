(** Scalar-observable recording during a run.

    Attach named samplers to an engine; each records a time series of a
    scalar (built-ins: temperature, pressure, energies; or any custom
    function of the engine) every [stride] steps via a post-step hook.
    Summaries come back as mean / stddev / standard error with a
    correlation-aware block estimate. *)

type t

(** [attach eng ~stride] registers the recorder on the engine. *)
val attach : Engine.t -> stride:int -> t

(** Built-in channels. *)
val temperature : t -> unit

val pressure : t -> unit
val potential_energy : t -> unit
val total_energy : t -> unit

(** [custom t ~name f] records [f engine] each sampling step. *)
val custom : t -> name:string -> (Engine.t -> float) -> unit

(** Recorded series for a channel, in time order. Raises [Not_found] for an
    unknown channel. *)
val series : t -> string -> float array

type summary = {
  name : string;
  n : int;
  mean : float;
  stddev : float;
  stderr : float;  (** block-averaged standard error where possible *)
}

(** One summary per channel, in registration order. *)
val summaries : t -> summary list

(** Stop recording (removes the hook). *)
val detach : t -> unit
