open Mdsp_util

type longrange =
  | Lr_none
  | Lr_ewald of Mdsp_longrange.Ewald.t
  | Lr_gse of Mdsp_longrange.Gse.t

type energies = {
  bond : float;
  angle : float;
  dihedral : float;
  pair : float;
  recip : float;
  correction : float;
  bias : float;
}

let total e =
  e.bond +. e.angle +. e.dihedral +. e.pair +. e.recip +. e.correction
  +. e.bias

let zero_energies =
  {
    bond = 0.;
    angle = 0.;
    dihedral = 0.;
    pair = 0.;
    recip = 0.;
    correction = 0.;
    bias = 0.;
  }

type bias = {
  bias_name : string;
  bias_compute : Pbc.t -> Vec3.t array -> Mdsp_ff.Bonded.accum -> float;
}

type transform = {
  tr_name : string;
  tr_apply : Pbc.t -> Vec3.t array -> Mdsp_ff.Bonded.accum -> float -> float;
}

type t = {
  topo : Mdsp_ff.Topology.t;
  mutable evaluator : Mdsp_ff.Pair_interactions.evaluator;
  longrange : longrange;
  nlist : Mdsp_space.Neighbor_list.t;
  mutable biases : bias list;
  mutable transform : transform option;
  charges : float array;
}

let create topo ~evaluator ~longrange ~nlist =
  {
    topo;
    evaluator;
    longrange;
    nlist;
    biases = [];
    transform = None;
    charges = Mdsp_ff.Topology.charges topo;
  }

let topology t = t.topo
let nlist t = t.nlist
let set_evaluator t e = t.evaluator <- e
let add_bias t b = t.biases <- t.biases @ [ b ]

let remove_bias t name =
  let before = List.length t.biases in
  t.biases <- List.filter (fun b -> b.bias_name <> name) t.biases;
  List.length t.biases < before

let biases t = List.map (fun b -> b.bias_name) t.biases
let set_transform t tr = t.transform <- tr

let compute_biases t box positions acc =
  List.fold_left (fun e b -> e +. b.bias_compute box positions acc) 0. t.biases

let compute_longrange t box positions acc =
  match t.longrange with
  | Lr_none -> (0., 0.)
  | Lr_ewald ew ->
      let recip = Mdsp_longrange.Ewald.reciprocal ew t.charges positions acc in
      let corr =
        Mdsp_longrange.Ewald.self_energy ew t.charges
        +. Mdsp_longrange.Ewald.excluded_correction ew box t.charges positions
             t.topo.exclusions acc
      in
      (recip, corr)
  | Lr_gse gse ->
      let recip = Mdsp_longrange.Gse.reciprocal gse t.charges positions acc in
      (* Self and excluded corrections depend only on beta; reuse Ewald's
         via a throwaway handle with a minimal k list. *)
      let ew =
        Mdsp_longrange.Ewald.create ~beta:(Mdsp_longrange.Gse.beta gse)
          ~kmax:1 box
      in
      let corr =
        Mdsp_longrange.Ewald.self_energy ew t.charges
        +. Mdsp_longrange.Ewald.excluded_correction ew box t.charges positions
             t.topo.exclusions acc
      in
      (recip, corr)

let compute t box positions acc =
  Mdsp_ff.Bonded.reset acc;
  ignore (Mdsp_space.Neighbor_list.maybe_rebuild ~box t.nlist positions);
  let bond, angle, dihedral = Mdsp_ff.Bonded.all box t.topo positions acc in
  let pair14 =
    Mdsp_ff.Pair_interactions.compute_pairs14 t.topo
      ~cutoff:t.evaluator.Mdsp_ff.Pair_interactions.cutoff box positions acc
  in
  let pair =
    pair14
    +. Mdsp_ff.Pair_interactions.compute t.evaluator box t.nlist positions acc
  in
  let recip, correction = compute_longrange t box positions acc in
  let bias = compute_biases t box positions acc in
  let e = { bond; angle; dihedral; pair; recip; correction; bias } in
  match t.transform with
  | None -> e
  | Some tr ->
      let boost = tr.tr_apply box positions acc (total e) in
      { e with bias = e.bias +. boost }

let compute_class t cls box positions acc =
  Mdsp_ff.Bonded.reset acc;
  match cls with
  | `Fast ->
      let bond, angle, dihedral =
        Mdsp_ff.Bonded.all box t.topo positions acc
      in
      let pair14 =
        Mdsp_ff.Pair_interactions.compute_pairs14 t.topo
          ~cutoff:t.evaluator.Mdsp_ff.Pair_interactions.cutoff box positions
          acc
      in
      let bias = compute_biases t box positions acc in
      { zero_energies with bond; angle; dihedral; pair = pair14; bias }
  | `Slow ->
      ignore (Mdsp_space.Neighbor_list.maybe_rebuild ~box t.nlist positions);
      let pair =
        Mdsp_ff.Pair_interactions.compute t.evaluator box t.nlist positions acc
      in
      let recip, correction = compute_longrange t box positions acc in
      { zero_energies with pair; recip; correction }
