open Mdsp_util

type channel = {
  name : string;
  f : Engine.t -> float;
  mutable values : float list; (* reversed *)
  mutable count : int;
}

type t = {
  eng : Engine.t;
  stride : int;
  mutable channels : channel list; (* reversed registration order *)
  hook_name : string;
}

let counter = ref 0

let attach eng ~stride =
  if stride <= 0 then invalid_arg "Observables.attach: stride must be positive";
  incr counter;
  let t =
    {
      eng;
      stride;
      channels = [];
      hook_name = Printf.sprintf "observables_%d" !counter;
    }
  in
  Engine.add_post_step eng ~name:t.hook_name (fun eng ->
      if Engine.steps_done eng mod t.stride = 0 then
        List.iter
          (fun ch ->
            ch.values <- ch.f eng :: ch.values;
            ch.count <- ch.count + 1)
          t.channels);
  t

let custom t ~name f =
  if List.exists (fun c -> c.name = name) t.channels then
    invalid_arg (Printf.sprintf "Observables.custom: duplicate channel %S" name);
  t.channels <- { name; f; values = []; count = 0 } :: t.channels

let temperature t = custom t ~name:"temperature" Engine.temperature
let pressure t = custom t ~name:"pressure" Engine.pressure_atm
let potential_energy t = custom t ~name:"potential" Engine.potential_energy
let total_energy t = custom t ~name:"total" Engine.total_energy

let series t name =
  match List.find_opt (fun c -> c.name = name) t.channels with
  | Some c -> Array.of_list (List.rev c.values)
  | None -> raise Not_found

type summary = {
  name : string;
  n : int;
  mean : float;
  stddev : float;
  stderr : float;
}

let summaries t =
  List.rev_map
    (fun c ->
      let xs = Array.of_list (List.rev c.values) in
      let n = Array.length xs in
      if n = 0 then
        { name = c.name; n = 0; mean = nan; stddev = nan; stderr = nan }
      else begin
        let mean = Stats.mean xs in
        let stddev = Stats.stddev xs in
        (* Blocked standard error when we have enough data; otherwise the
           naive (correlation-blind) one. *)
        let stderr =
          if n >= 40 then Stats.block_standard_error ~block:(n / 20) xs
          else stddev /. sqrt (float_of_int (max 1 n))
        in
        { name = c.name; n; mean; stddev; stderr }
      end)
    t.channels

let detach t = ignore (Engine.remove_post_step t.eng t.hook_name)
