open Mdsp_util

type t = {
  pairs : (int * int * float) array; (* (i, j, target distance) *)
  tol : float;
  max_iter : int;
}

let create ?(tol = 1e-8) ?(max_iter = 200) (topo : Mdsp_ff.Topology.t) =
  let pairs =
    Array.map
      (fun (c : Mdsp_ff.Topology.constraint_) -> (c.ci, c.cj, c.dist))
      topo.constraints
  in
  { pairs; tol; max_iter }

let none = { pairs = [||]; tol = 1e-8; max_iter = 1 }
let count t = Array.length t.pairs

let shake t box ~prev positions ~masses =
  if Array.length t.pairs > 0 then begin
    let iter = ref 0 in
    let converged = ref false in
    while (not !converged) && !iter < t.max_iter do
      converged := true;
      Array.iter
        (fun (i, j, d) ->
          let d2 = d *. d in
          let rij = Pbc.min_image box positions.(i) positions.(j) in
          let diff = Vec3.norm2 rij -. d2 in
          if abs_float diff > t.tol *. d2 then begin
            converged := false;
            (* Displace along the pre-step bond direction (classic SHAKE). *)
            let rij_prev = Pbc.min_image box prev.(i) prev.(j) in
            let inv_mi = 1. /. masses.(i) and inv_mj = 1. /. masses.(j) in
            let denom =
              2. *. (inv_mi +. inv_mj) *. Vec3.dot rij rij_prev
            in
            if abs_float denom < 1e-12 then
              failwith "Constraints.shake: degenerate constraint geometry";
            let g = diff /. denom in
            positions.(i) <-
              Vec3.sub positions.(i) (Vec3.scale (g *. inv_mi) rij_prev);
            positions.(j) <-
              Vec3.add positions.(j) (Vec3.scale (g *. inv_mj) rij_prev)
          end)
        t.pairs;
      incr iter
    done;
    if not !converged then failwith "Constraints.shake: did not converge"
  end

let rattle t box positions velocities ~masses =
  if Array.length t.pairs > 0 then begin
    let iter = ref 0 in
    let converged = ref false in
    (* Velocity tolerance scaled by constraint length. *)
    while (not !converged) && !iter < t.max_iter do
      converged := true;
      Array.iter
        (fun (i, j, d) ->
          let rij = Pbc.min_image box positions.(i) positions.(j) in
          let vij = Vec3.sub velocities.(i) velocities.(j) in
          let rv = Vec3.dot rij vij in
          let inv_mi = 1. /. masses.(i) and inv_mj = 1. /. masses.(j) in
          let d2 = d *. d in
          if abs_float rv > t.tol *. d2 *. 10. then begin
            converged := false;
            let k = rv /. (d2 *. (inv_mi +. inv_mj)) in
            velocities.(i) <-
              Vec3.sub velocities.(i) (Vec3.scale (k *. inv_mi) rij);
            velocities.(j) <-
              Vec3.add velocities.(j) (Vec3.scale (k *. inv_mj) rij)
          end)
        t.pairs;
      incr iter
    done;
    if not !converged then failwith "Constraints.rattle: did not converge"
  end

let max_violation t box positions =
  Array.fold_left
    (fun acc (i, j, d) ->
      let d2 = d *. d in
      let r2 = Pbc.dist2 box positions.(i) positions.(j) in
      Float.max acc (abs_float (r2 -. d2) /. d2))
    0. t.pairs
