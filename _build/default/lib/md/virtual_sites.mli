(** Virtual interaction sites (massless, e.g. the TIP4P M site).

    A virtual site's position is a fixed weighted combination of its parent
    atoms; it carries charge and/or LJ parameters but no mass. The engine
    calls {!place} after every position update and {!spread_forces} after
    every force evaluation (transferring the site's force onto its parents
    with the same weights — exact for linear constructions). Virtual sites
    are skipped by integration. *)

open Mdsp_util

type t

(** Compile the topology's virtual-site table. *)
val create : Mdsp_ff.Topology.t -> t

(** No virtual sites (no-op). *)
val count : t -> int

(** [is_site t i] is true if atom [i] is a virtual site. *)
val is_site : t -> int -> bool

(** Recompute site positions from their parents (minimum-image anchored at
    the first parent, so molecules spanning the boundary stay intact). *)
val place : t -> Pbc.t -> Vec3.t array -> unit

(** Move each site's accumulated force onto its parents and zero the
    site's entry. *)
val spread_forces : t -> Mdsp_ff.Bonded.accum -> unit

(** Zero the velocities of all sites (used after thermalization). *)
val zero_velocities : t -> Vec3.t array -> unit
